#include "nassc/passes/decompose_swaps.h"

namespace nassc {

int
decompose_swaps(QuantumCircuit &qc, bool orientation_aware)
{
    int expanded = 0;
    QuantumCircuit out(qc.num_qubits());
    for (const Gate &g : qc.gates()) {
        if (g.kind != OpKind::kSwap) {
            out.append(g);
            continue;
        }
        ++expanded;
        int a = g.qubits[0];
        int b = g.qubits[1];
        bool second = orientation_aware && g.swap_orient == SwapOrient::kSecond;
        if (second) {
            out.cx(b, a);
            out.cx(a, b);
            out.cx(b, a);
        } else {
            out.cx(a, b);
            out.cx(b, a);
            out.cx(a, b);
        }
    }
    qc = std::move(out);
    return expanded;
}

} // namespace nassc
