#ifndef NASSC_PASSES_BASIS_TRANSLATION_H
#define NASSC_PASSES_BASIS_TRANSLATION_H

/**
 * @file
 * Gate decomposition passes (step 1 of the compilation flow, Fig. 2).
 *
 * decompose_to_2q() lowers >=3-qubit gates (ccx, ccz, cswap, mcx) into
 * one- and two-qubit gates so routing can run; translate_to_basis()
 * lowers everything into the IBM basis {rz, sx, x, cx}, synthesizing
 * non-CX two-qubit gates through the KAK engine so each costs its minimal
 * number of CNOTs.
 */

#include "nassc/ir/circuit.h"
#include "nassc/synth/euler1q.h"

namespace nassc {

/** Expand all gates acting on three or more qubits into 1q/2q gates. */
QuantumCircuit decompose_to_2q(const QuantumCircuit &qc);

/**
 * Translate a (<= 2-qubit) circuit into {rz, sx, x, cx} (+ measure /
 * barrier).  SWAP gates must have been expanded by decompose_swaps first.
 */
QuantumCircuit translate_to_basis(const QuantumCircuit &qc);

/** True if every gate is in the IBM basis or non-unitary. */
bool is_basis_circuit(const QuantumCircuit &qc);

} // namespace nassc

#endif // NASSC_PASSES_BASIS_TRANSLATION_H
