#include "nassc/passes/optimize_1q.h"

namespace nassc {

int
run_optimize_1q(QuantumCircuit &qc, Basis1q basis)
{
    return optimize_1q_runs(qc.mutable_gates(), qc.num_qubits(), basis);
}

} // namespace nassc
