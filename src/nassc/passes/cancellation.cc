#include "nassc/passes/cancellation.h"

#include <cmath>
#include <map>

#include "nassc/passes/commutation.h"

namespace nassc {

namespace {

bool
is_z_rotation_like(OpKind k)
{
    switch (k) {
      case OpKind::kZ:
      case OpKind::kS:
      case OpKind::kSdg:
      case OpKind::kT:
      case OpKind::kTdg:
      case OpKind::kRZ:
      case OpKind::kP:
        return true;
      default:
        return false;
    }
}

double
z_angle(const Gate &g)
{
    switch (g.kind) {
      case OpKind::kZ: return M_PI;
      case OpKind::kS: return M_PI / 2.0;
      case OpKind::kSdg: return -M_PI / 2.0;
      case OpKind::kT: return M_PI / 4.0;
      case OpKind::kTdg: return -M_PI / 4.0;
      case OpKind::kRZ:
      case OpKind::kP:
        return g.params[0];
      default:
        return 0.0;
    }
}

double
norm_angle(double a)
{
    a = std::fmod(a, 2.0 * M_PI);
    if (a <= -M_PI)
        a += 2.0 * M_PI;
    if (a > M_PI)
        a -= 2.0 * M_PI;
    return a;
}

} // namespace

int
run_commutative_cancellation(QuantumCircuit &qc)
{
    CommutationInfo info = analyze_commutation(qc);
    size_t n_gates = qc.size();
    std::vector<bool> removed(n_gates, false);
    std::vector<bool> rewritten(n_gates, false);
    std::map<int, Gate> replacement;
    int removed_count = 0;

    // --- self-inverse pair cancellation -----------------------------------
    // Candidates grouped within each commute set of each wire; a pair
    // cancels when both gates sit in the same commute set on *every* wire
    // they act on.
    auto same_sets_everywhere = [&](int i, int j) {
        const Gate &g = qc.gate(i);
        for (int w : g.qubits) {
            if (info.set_of(w, i) != info.set_of(w, j))
                return false;
        }
        return true;
    };

    for (int w = 0; w < qc.num_qubits(); ++w) {
        for (const std::vector<int> &set : info.wire_sets[w]) {
            // Collect self-inverse gates keyed by (kind, qubits).
            std::map<std::pair<int, QubitVec>, std::vector<int>> groups;
            for (int idx : set) {
                const Gate &g = qc.gate(idx);
                if (removed[idx] || !is_self_inverse(g.kind))
                    continue;
                // Handle each gate from its first wire only, so a 2q gate
                // is not processed twice.
                if (g.qubits[0] != w)
                    continue;
                groups[{static_cast<int>(g.kind), g.qubits}].push_back(idx);
            }
            for (auto &[key, idxs] : groups) {
                // Cancel adjacent-in-set pairs greedily.
                size_t i = 0;
                while (i + 1 < idxs.size()) {
                    int a = idxs[i], b = idxs[i + 1];
                    if (!removed[a] && !removed[b] &&
                        same_sets_everywhere(a, b)) {
                        removed[a] = removed[b] = true;
                        removed_count += 2;
                        i += 2;
                    } else {
                        ++i;
                    }
                }
            }
        }
    }

    // --- z-rotation merging -------------------------------------------------
    for (int w = 0; w < qc.num_qubits(); ++w) {
        for (const std::vector<int> &set : info.wire_sets[w]) {
            std::vector<int> zs;
            for (int idx : set) {
                const Gate &g = qc.gate(idx);
                if (!removed[idx] && !rewritten[idx] &&
                    g.num_qubits() == 1 && g.qubits[0] == w &&
                    is_z_rotation_like(g.kind))
                    zs.push_back(idx);
            }
            if (zs.size() < 2)
                continue;
            double total = 0.0;
            for (int idx : zs)
                total += z_angle(qc.gate(idx));
            total = norm_angle(total);
            for (size_t i = 1; i < zs.size(); ++i) {
                removed[zs[i]] = true;
                ++removed_count;
            }
            if (std::abs(total) < 1e-12) {
                removed[zs[0]] = true;
                ++removed_count;
            } else {
                replacement[zs[0]] = Gate::one_q(OpKind::kRZ, w, total);
                rewritten[zs[0]] = true;
            }
        }
    }

    // Rebuild the circuit.
    QuantumCircuit out(qc.num_qubits());
    for (size_t i = 0; i < n_gates; ++i) {
        if (removed[i])
            continue;
        if (rewritten[i])
            out.append(replacement[static_cast<int>(i)]);
        else
            out.append(qc.gate(i));
    }
    qc = std::move(out);
    return removed_count;
}

int
run_commutative_cancellation_to_fixpoint(QuantumCircuit &qc, int max_rounds)
{
    int total = 0;
    for (int round = 0; round < max_rounds; ++round) {
        int r = run_commutative_cancellation(qc);
        total += r;
        if (r == 0)
            break;
    }
    return total;
}

} // namespace nassc
