#include "nassc/passes/basis_translation.h"

#include <stdexcept>

#include "nassc/ir/matrices.h"
#include "nassc/synth/kak2q.h"
#include "nassc/synth/mct.h"

namespace nassc {

QuantumCircuit
decompose_to_2q(const QuantumCircuit &qc)
{
    QuantumCircuit out(qc.num_qubits());
    // MCX expansion may introduce fresh CCX gates, so iterate to fixpoint
    // (two rounds suffice: mcx -> ccx -> 2q).
    QuantumCircuit cur = qc;
    for (int round = 0; round < 8; ++round) {
        bool changed = false;
        out = QuantumCircuit(qc.num_qubits());
        for (const Gate &g : cur.gates()) {
            switch (g.kind) {
              case OpKind::kCCX:
                for (Gate &d :
                     decompose_ccx(g.qubits[0], g.qubits[1], g.qubits[2]))
                    out.append(std::move(d));
                changed = true;
                break;
              case OpKind::kCCZ:
                for (Gate &d :
                     decompose_ccz(g.qubits[0], g.qubits[1], g.qubits[2]))
                    out.append(std::move(d));
                changed = true;
                break;
              case OpKind::kCSwap:
                for (Gate &d :
                     decompose_cswap(g.qubits[0], g.qubits[1], g.qubits[2]))
                    out.append(std::move(d));
                changed = true;
                break;
              case OpKind::kMCX: {
                std::vector<int> controls(g.qubits.begin(),
                                          g.qubits.end() - 1);
                for (Gate &d : decompose_mcx(controls, g.qubits.back(),
                                             qc.num_qubits()))
                    out.append(std::move(d));
                changed = true;
                break;
              }
              default:
                out.append(g);
            }
        }
        if (!changed)
            return out;
        cur = out;
    }
    throw std::logic_error("decompose_to_2q did not converge");
}

QuantumCircuit
translate_to_basis(const QuantumCircuit &qc)
{
    QuantumCircuit out(qc.num_qubits());
    for (const Gate &g : qc.gates()) {
        if (g.kind == OpKind::kMeasure || g.kind == OpKind::kBarrier ||
            g.kind == OpKind::kCX) {
            out.append(g);
            continue;
        }
        if (is_one_qubit(g.kind)) {
            // Leave 1q gates in place; the closing Optimize1qGates pass
            // merges runs and rewrites them into {rz, sx, x}.
            for (Gate &d :
                 synth_1q(gate_matrix1(g), g.qubits[0], Basis1q::kZsx))
                out.append(std::move(d));
            continue;
        }
        if (g.num_qubits() == 2) {
            // Synthesize through KAK: minimal CX count by construction.
            Mat4 u = gate_matrix2(g);
            for (Gate &d :
                 synth_2q_kak(u, g.qubits[0], g.qubits[1], Basis1q::kZsx))
                out.append(std::move(d));
            continue;
        }
        throw std::invalid_argument(
            std::string("translate_to_basis: decompose ") + op_name(g.kind) +
            " first");
    }
    return out;
}

bool
is_basis_circuit(const QuantumCircuit &qc)
{
    for (const Gate &g : qc.gates()) {
        switch (g.kind) {
          case OpKind::kRZ:
          case OpKind::kSX:
          case OpKind::kX:
          case OpKind::kCX:
          case OpKind::kMeasure:
          case OpKind::kBarrier:
            break;
          default:
            return false;
        }
    }
    return true;
}

} // namespace nassc
