#ifndef NASSC_PASSES_COMMUTATION_H
#define NASSC_PASSES_COMMUTATION_H

/**
 * @file
 * Gate-level commutation oracle and the CommutationAnalysis pass.
 *
 * CommutationAnalysis groups, for every wire, maximal runs of gates that
 * pairwise commute ("commute sets", paper Sec. IV-E).  The NASSC router
 * and the CommutativeCancellation pass consume these sets.
 */

#include <vector>

#include "nassc/ir/circuit.h"

namespace nassc {

/**
 * Do two gates commute as operators?  Fast paths cover the common
 * CX/rotation cases; everything else falls back to an exact (cached)
 * matrix check on the union of their wires.
 */
bool gates_commute(const Gate &a, const Gate &b);

/** Per-wire commute sets of a circuit. */
struct CommutationInfo
{
    /**
     * wire_sets[w] is the ordered list of commute sets on wire w; each
     * set holds gate indices (ascending).
     */
    std::vector<std::vector<std::vector<int>>> wire_sets;

    /** set_index[w][k] = ordinal of the set containing the k-th gate *on
     *  wire w* (parallel to wire_gates[w]). */
    std::vector<std::vector<int>> set_index;

    /** Gate indices on each wire, in circuit order. */
    std::vector<std::vector<int>> wire_gates;

    /** Ordinal of the set that contains gate `gate_idx` on wire w, or -1. */
    int set_of(int wire, int gate_idx) const;
};

/** Run the analysis. */
CommutationInfo analyze_commutation(const QuantumCircuit &qc);

} // namespace nassc

#endif // NASSC_PASSES_COMMUTATION_H
