#include "nassc/passes/pass_manager.h"

#include <chrono>

namespace nassc {

void
PassManager::add(std::string name, PassFn fn)
{
    passes_.push_back({std::move(name), std::move(fn)});
}

void
PassManager::run(QuantumCircuit &qc)
{
    for (const Entry &e : passes_) {
        PassReport r;
        r.name = e.name;
        r.gates_before = static_cast<int>(qc.size());
        r.cx_before = qc.cx_count();
        auto t0 = std::chrono::steady_clock::now();
        e.fn(qc);
        auto t1 = std::chrono::steady_clock::now();
        r.seconds = std::chrono::duration<double>(t1 - t0).count();
        r.gates_after = static_cast<int>(qc.size());
        r.cx_after = qc.cx_count();
        reports_.push_back(std::move(r));
    }
}

int
PassManager::run_to_fixpoint(QuantumCircuit &qc, int max_rounds)
{
    size_t last = qc.size() + 1;
    int rounds = 0;
    while (rounds < max_rounds && qc.size() < last) {
        last = qc.size();
        run(qc);
        ++rounds;
        if (qc.size() == last)
            break;
    }
    return rounds;
}

double
PassManager::total_seconds() const
{
    double t = 0.0;
    for (const PassReport &r : reports_)
        t += r.seconds;
    return t;
}

} // namespace nassc
