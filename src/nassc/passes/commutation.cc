#include "nassc/passes/commutation.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <sstream>

#include "nassc/ir/matrices.h"
#include "nassc/sim/unitary.h"

namespace nassc {

namespace {

/** Exact commutation check on the union of wires (<= 4 qubits). */
bool
matrix_commute(const Gate &a, const Gate &b)
{
    // Collect the union of wires and relabel densely.
    std::vector<int> wires;
    for (int q : a.qubits)
        wires.push_back(q);
    for (int q : b.qubits)
        wires.push_back(q);
    std::sort(wires.begin(), wires.end());
    wires.erase(std::unique(wires.begin(), wires.end()), wires.end());

    auto relabel = [&](const Gate &g) {
        Gate r = g;
        for (int &q : r.qubits)
            q = static_cast<int>(std::lower_bound(wires.begin(), wires.end(),
                                                  q) -
                                 wires.begin());
        return r;
    };

    int n = static_cast<int>(wires.size());
    QuantumCircuit ab(n), ba(n);
    ab.append(relabel(a));
    ab.append(relabel(b));
    ba.append(relabel(b));
    ba.append(relabel(a));
    MatN uab = unitary_of_circuit(ab);
    MatN uba = unitary_of_circuit(ba);
    return frobenius_distance(uab, uba) < 1e-9;
}

/** Cache key: structural description with quantized parameters. */
std::string
commute_key(const Gate &a, const Gate &b)
{
    // Relabel shared wires to canonical small integers.
    std::map<int, int> label;
    auto lab = [&](int q) {
        auto it = label.find(q);
        if (it != label.end())
            return it->second;
        int v = static_cast<int>(label.size());
        label[q] = v;
        return v;
    };
    std::ostringstream os;
    os << static_cast<int>(a.kind);
    for (int q : a.qubits)
        os << "." << lab(q);
    for (double p : a.params)
        os << "," << static_cast<long long>(p * 1e9);
    os << "|" << static_cast<int>(b.kind);
    for (int q : b.qubits)
        os << "." << lab(q);
    for (double p : b.params)
        os << "," << static_cast<long long>(p * 1e9);
    return os.str();
}

bool
is_z_axis_1q(OpKind k)
{
    return k == OpKind::kZ || k == OpKind::kS || k == OpKind::kSdg ||
           k == OpKind::kT || k == OpKind::kTdg || k == OpKind::kRZ ||
           k == OpKind::kP || k == OpKind::kId;
}

bool
is_x_axis_1q(OpKind k)
{
    return k == OpKind::kX || k == OpKind::kSX || k == OpKind::kSXdg ||
           k == OpKind::kRX || k == OpKind::kId;
}

} // namespace

bool
gates_commute(const Gate &a, const Gate &b)
{
    if (a.kind == OpKind::kBarrier || b.kind == OpKind::kBarrier)
        return false;
    if (a.kind == OpKind::kMeasure || b.kind == OpKind::kMeasure) {
        // Measures commute with ops on other wires only.
        for (int q : a.qubits)
            if (b.acts_on(q))
                return false;
        return true;
    }

    // Disjoint supports always commute.
    bool overlap = false;
    for (int q : a.qubits)
        if (b.acts_on(q))
            overlap = true;
    if (!overlap)
        return true;

    // Fast paths for the dominant CX/CX and CX/1q cases.
    if (a.kind == OpKind::kCX && b.kind == OpKind::kCX) {
        int ac = a.qubits[0], at = a.qubits[1];
        int bc = b.qubits[0], bt = b.qubits[1];
        // Sharing only controls or only targets commutes; a control
        // meeting a target does not.
        if (ac == bt || at == bc)
            return false;
        return true;
    }
    if (a.kind == OpKind::kCX && is_one_qubit(b.kind)) {
        if (b.qubits[0] == a.qubits[0])
            return is_z_axis_1q(b.kind);
        if (b.qubits[0] == a.qubits[1])
            return is_x_axis_1q(b.kind);
    }
    if (b.kind == OpKind::kCX && is_one_qubit(a.kind))
        return gates_commute(b, a);
    if (is_diagonal(a.kind) && is_diagonal(b.kind))
        return true;

    // Exact fallback with memoization.  The memo is process-wide and
    // read by every concurrent transpile (batch workers, the async
    // service), so it is guarded by a shared_mutex: reads dominate
    // after warm-up and take the shared lock; a miss computes OUTSIDE
    // any lock (matrix_commute is pure) and publishes under the
    // exclusive lock.  Two racing computations of one key agree, so
    // last-writer-wins is harmless.
    static std::shared_mutex cache_mu;
    static std::map<std::string, bool> cache;
    std::string key = commute_key(a, b);
    {
        std::shared_lock<std::shared_mutex> lock(cache_mu);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    bool r = matrix_commute(a, b);
    std::unique_lock<std::shared_mutex> lock(cache_mu);
    if (cache.size() < 200000)
        cache[key] = r;
    return r;
}

int
CommutationInfo::set_of(int wire, int gate_idx) const
{
    const std::vector<int> &gates = wire_gates[wire];
    auto it = std::lower_bound(gates.begin(), gates.end(), gate_idx);
    if (it == gates.end() || *it != gate_idx)
        return -1;
    return set_index[wire][it - gates.begin()];
}

CommutationInfo
analyze_commutation(const QuantumCircuit &qc)
{
    CommutationInfo info;
    int n = qc.num_qubits();
    info.wire_sets.resize(n);
    info.set_index.resize(n);
    info.wire_gates.resize(n);

    for (int w = 0; w < n; ++w) {
        std::vector<int> current;
        auto close = [&]() {
            if (!current.empty()) {
                info.wire_sets[w].push_back(current);
                current.clear();
            }
        };
        for (size_t i = 0; i < qc.size(); ++i) {
            const Gate &g = qc.gate(i);
            if (!g.acts_on(w))
                continue;
            info.wire_gates[w].push_back(static_cast<int>(i));
            bool fits = true;
            for (int j : current) {
                if (!gates_commute(qc.gate(j), g)) {
                    fits = false;
                    break;
                }
            }
            if (!fits)
                close();
            current.push_back(static_cast<int>(i));
            info.set_index[w].push_back(
                static_cast<int>(info.wire_sets[w].size()));
        }
        close();
    }
    return info;
}

} // namespace nassc
