#ifndef NASSC_PASSES_CANCELLATION_H
#define NASSC_PASSES_CANCELLATION_H

/**
 * @file
 * CommutativeCancellation: cancel pairs of identical self-inverse gates
 * that can be brought together through commutation, and merge z-axis
 * rotations inside a commute set (paper Sec. II-C / III).
 */

#include "nassc/ir/circuit.h"

namespace nassc {

/**
 * Run the pass once; returns the number of gates removed.  Call in a loop
 * (or use run_commutative_cancellation_to_fixpoint) for cascaded
 * cancellations.
 */
int run_commutative_cancellation(QuantumCircuit &qc);

/** Iterate the pass until no further gates are removed. */
int run_commutative_cancellation_to_fixpoint(QuantumCircuit &qc,
                                             int max_rounds = 10);

} // namespace nassc

#endif // NASSC_PASSES_CANCELLATION_H
