#ifndef NASSC_PASSES_DECOMPOSE_SWAPS_H
#define NASSC_PASSES_DECOMPOSE_SWAPS_H

/**
 * @file
 * SWAP-gate expansion into three CNOTs.
 *
 * The fixed template (SABRE baseline) always orients the first CNOT with
 * the control on the gate's first operand.  The optimization-aware mode
 * honours the SwapOrient flag the NASSC router attached, so the first /
 * last CNOT faces the cancellation partner the router identified
 * (paper Sec. IV-E, Figs. 7-8).
 */

#include "nassc/ir/circuit.h"

namespace nassc {

/**
 * Expand every SWAP; returns the number of SWAPs expanded.
 *
 * @param orientation_aware honour Gate::swap_orient flags (NASSC mode)
 */
int decompose_swaps(QuantumCircuit &qc, bool orientation_aware);

} // namespace nassc

#endif // NASSC_PASSES_DECOMPOSE_SWAPS_H
