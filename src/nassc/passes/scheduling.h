#ifndef NASSC_PASSES_SCHEDULING_H
#define NASSC_PASSES_SCHEDULING_H

/**
 * @file
 * Gate scheduling (the final compiler stage in the paper's Fig. 2).
 *
 * ASAP/ALAP list scheduling with per-gate durations from the backend
 * calibration: CX durations are per-edge, single-qubit gates use a fixed
 * default, rz is free (virtual-Z convention of IBM backends).  The
 * schedule yields the wall-clock duration metric that complements depth.
 */

#include <vector>

#include "nassc/ir/circuit.h"
#include "nassc/topo/backends.h"

namespace nassc {

/** One scheduled gate. */
struct ScheduledGate
{
    int gate_index = 0;
    double start_ns = 0.0;
    double duration_ns = 0.0;
};

/** Result of scheduling a circuit. */
struct Schedule
{
    std::vector<ScheduledGate> gates; ///< circuit order
    double total_ns = 0.0;            ///< makespan
};

/** Duration model derived from a backend. */
struct DurationModel
{
    double one_q_ns = 35.0; ///< sx / x pulse length
    double rz_ns = 0.0;     ///< virtual Z
    double measure_ns = 700.0;
    double default_cx_ns = 400.0;

    /** Duration of a gate on a given backend. */
    double gate_ns(const Gate &g, const Backend &backend) const;
};

/** Schedule every gate as soon as its wires are free (ASAP). */
Schedule schedule_asap(const QuantumCircuit &qc, const Backend &backend,
                       const DurationModel &model = {});

/** Schedule every gate as late as possible (ALAP), same makespan. */
Schedule schedule_alap(const QuantumCircuit &qc, const Backend &backend,
                       const DurationModel &model = {});

} // namespace nassc

#endif // NASSC_PASSES_SCHEDULING_H
