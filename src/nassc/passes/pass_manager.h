#ifndef NASSC_PASSES_PASS_MANAGER_H
#define NASSC_PASSES_PASS_MANAGER_H

/**
 * @file
 * A small pass-pipeline runner with per-pass instrumentation, mirroring
 * the role of Qiskit's PassManager in the paper's Fig. 2/5 flow.
 *
 * Passes are named callables mutating a QuantumCircuit.  The manager
 * records per-pass wall time and gate/CX deltas, which the benchmarks use
 * to attribute savings to individual optimizations.
 */

#include <functional>
#include <string>
#include <vector>

#include "nassc/ir/circuit.h"

namespace nassc {

/** Record of one executed pass. */
struct PassReport
{
    std::string name;
    double seconds = 0.0;
    int gates_before = 0;
    int gates_after = 0;
    int cx_before = 0;
    int cx_after = 0;
};

/** Ordered, instrumented pass pipeline. */
class PassManager
{
  public:
    using PassFn = std::function<void(QuantumCircuit &)>;

    /** Append a pass to the pipeline. */
    void add(std::string name, PassFn fn);

    /** Run every pass once, in order. */
    void run(QuantumCircuit &qc);

    /**
     * Run the pipeline repeatedly until the circuit stops shrinking or
     * `max_rounds` is reached; returns the number of rounds executed.
     */
    int run_to_fixpoint(QuantumCircuit &qc, int max_rounds = 8);

    /** Reports of every pass execution, in order. */
    const std::vector<PassReport> &reports() const { return reports_; }

    /** Drop accumulated reports. */
    void clear_reports() { reports_.clear(); }

    /** Total wall time across recorded executions. */
    double total_seconds() const;

  private:
    struct Entry
    {
        std::string name;
        PassFn fn;
    };
    std::vector<Entry> passes_;
    std::vector<PassReport> reports_;
};

} // namespace nassc

#endif // NASSC_PASSES_PASS_MANAGER_H
