#ifndef NASSC_PASSES_COLLECT_BLOCKS_H
#define NASSC_PASSES_COLLECT_BLOCKS_H

/**
 * @file
 * Collect2qBlocks + ConsolidateBlocks/UnitarySynthesis.
 *
 * A two-qubit block is a maximal uninterrupted run of gates confined to
 * one qubit pair (1q gates on those wires included).  Consolidation
 * multiplies each block into a 4x4 unitary and re-synthesizes it through
 * the KAK engine, replacing the block when that lowers the CNOT-
 * equivalent cost (paper Sec. III / IV-D).  SWAP gates participate like
 * any other two-qubit gate, which is how a SWAP adjacent to a rich block
 * becomes cheap or even free.
 */

#include <vector>

#include "nassc/ir/circuit.h"
#include "nassc/synth/euler1q.h"

namespace nassc {

/** One collected block. */
struct TwoQubitBlock
{
    int q0 = -1, q1 = -1;          ///< the wire pair (q0 < q1)
    std::vector<int> gate_indices; ///< member gates, circuit order
    int num_2q = 0;                ///< member two-qubit gate count
};

/** Find all two-qubit blocks (including pure-1q runs as 1-wire blocks is
 *  NOT done here; only pair blocks with >= 1 two-qubit gate). */
std::vector<TwoQubitBlock> collect_2q_blocks(const QuantumCircuit &qc);

/** Statistics of one consolidation run. */
struct ConsolidateStats
{
    int blocks_considered = 0;
    int blocks_replaced = 0;
    int cx_before = 0; ///< CX-equivalent count of considered blocks
    int cx_after = 0;  ///< CX-equivalent count after resynthesis
};

/**
 * Re-synthesize profitable blocks in place.
 *
 * @param basis 1q basis for the synthesized replacement
 */
ConsolidateStats consolidate_2q_blocks(QuantumCircuit &qc,
                                       Basis1q basis = Basis1q::kUGate);

/** CX-equivalent cost of one gate when translated individually. */
int cx_equivalent_cost(const Gate &g);

} // namespace nassc

#endif // NASSC_PASSES_COLLECT_BLOCKS_H
