#include "nassc/passes/collect_blocks.h"

#include <algorithm>

#include "nassc/math/weyl.h"
#include "nassc/synth/kak2q.h"

namespace nassc {

namespace {

struct Builder
{
    // Open block per wire: index into `blocks`, or -1.
    std::vector<int> open;
    // 1q gates waiting for a block on each wire.
    std::vector<std::vector<int>> pending_1q;
    std::vector<TwoQubitBlock> blocks;

    explicit Builder(int n) : open(n, -1), pending_1q(n) {}

    void
    close_wire(int q)
    {
        if (open[q] >= 0) {
            TwoQubitBlock &blk = blocks[open[q]];
            open[blk.q0] = -1;
            open[blk.q1] = -1;
        }
        pending_1q[q].clear();
    }
};

} // namespace

int
cx_equivalent_cost(const Gate &g)
{
    switch (g.kind) {
      case OpKind::kCX:
      case OpKind::kCZ:
      case OpKind::kCY:
        return 1;
      case OpKind::kSwap:
        return 3;
      case OpKind::kISwap:
      case OpKind::kCH:
      case OpKind::kCP:
      case OpKind::kCRX:
      case OpKind::kCRY:
      case OpKind::kCRZ:
      case OpKind::kRZZ:
      case OpKind::kRXX:
        return 2;
      default:
        return 0;
    }
}

std::vector<TwoQubitBlock>
collect_2q_blocks(const QuantumCircuit &qc)
{
    Builder b(qc.num_qubits());

    for (size_t i = 0; i < qc.size(); ++i) {
        const Gate &g = qc.gate(i);
        int idx = static_cast<int>(i);

        if (is_one_qubit(g.kind)) {
            int q = g.qubits[0];
            if (b.open[q] >= 0)
                b.blocks[b.open[q]].gate_indices.push_back(idx);
            else
                b.pending_1q[q].push_back(idx);
            continue;
        }
        if (g.num_qubits() == 2 && is_unitary_op(g.kind)) {
            int a = g.qubits[0], q0 = std::min(a, g.qubits[1]);
            int q1 = std::max(a, g.qubits[1]);
            int cur = b.open[q0];
            if (cur >= 0 && cur == b.open[q1] && b.blocks[cur].q0 == q0 &&
                b.blocks[cur].q1 == q1) {
                b.blocks[cur].gate_indices.push_back(idx);
                ++b.blocks[cur].num_2q;
                continue;
            }
            // Close whatever the wires were doing, open a fresh block and
            // absorb the pending 1q prefixes.
            TwoQubitBlock blk;
            blk.q0 = q0;
            blk.q1 = q1;
            std::vector<int> prefix;
            for (int q : {q0, q1})
                for (int p : b.pending_1q[q])
                    prefix.push_back(p);
            std::sort(prefix.begin(), prefix.end());
            b.close_wire(q0);
            b.close_wire(q1);
            blk.gate_indices = std::move(prefix);
            blk.gate_indices.push_back(idx);
            blk.num_2q = 1;
            b.blocks.push_back(std::move(blk));
            b.open[q0] = static_cast<int>(b.blocks.size()) - 1;
            b.open[q1] = b.open[q0];
            continue;
        }
        // Barrier / measure / >=3q gate: hard break on all touched wires.
        for (int q : g.qubits)
            b.close_wire(q);
    }
    return b.blocks;
}

ConsolidateStats
consolidate_2q_blocks(QuantumCircuit &qc, Basis1q basis)
{
    ConsolidateStats stats;
    std::vector<TwoQubitBlock> blocks = collect_2q_blocks(qc);

    // Decide replacements.
    size_t n = qc.size();
    std::vector<bool> removed(n, false);
    // Replacement gate lists anchored at a block's *last* gate index so
    // the new gates appear where the block ended.
    std::vector<std::vector<Gate>> anchored(n);

    for (const TwoQubitBlock &blk : blocks) {
        if (blk.num_2q == 0)
            continue;
        ++stats.blocks_considered;

        int old_cost = 0;
        int old_total = static_cast<int>(blk.gate_indices.size());
        std::vector<Gate> member_gates;
        member_gates.reserve(blk.gate_indices.size());
        for (int idx : blk.gate_indices) {
            member_gates.push_back(qc.gate(idx));
            old_cost += cx_equivalent_cost(qc.gate(idx));
        }
        stats.cx_before += old_cost;

        Mat4 u = unitary_of_2q_gates(member_gates, blk.q0, blk.q1);
        std::vector<Gate> synth = synth_2q_kak(u, blk.q0, blk.q1, basis);
        int new_cost = 0;
        for (const Gate &g : synth)
            new_cost += cx_equivalent_cost(g);

        bool better =
            new_cost < old_cost ||
            (new_cost == old_cost &&
             static_cast<int>(synth.size()) < old_total);
        if (!better) {
            stats.cx_after += old_cost;
            continue;
        }
        ++stats.blocks_replaced;
        stats.cx_after += new_cost;
        for (int idx : blk.gate_indices)
            removed[idx] = true;
        anchored[blk.gate_indices.back()] = std::move(synth);
    }

    QuantumCircuit out(qc.num_qubits());
    for (size_t i = 0; i < n; ++i) {
        if (!anchored[i].empty()) {
            for (Gate &g : anchored[i])
                out.append(std::move(g));
            continue;
        }
        if (!removed[i])
            out.append(qc.gate(i));
    }
    qc = std::move(out);
    return stats;
}

} // namespace nassc
