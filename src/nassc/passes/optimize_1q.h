#ifndef NASSC_PASSES_OPTIMIZE_1Q_H
#define NASSC_PASSES_OPTIMIZE_1Q_H

/**
 * @file
 * Qiskit-style Optimize1qGates pass: merge runs of single-qubit gates and
 * re-synthesize each run in the chosen basis.
 */

#include "nassc/ir/circuit.h"
#include "nassc/synth/euler1q.h"

namespace nassc {

/** Run the pass in place; returns number of gates removed. */
int run_optimize_1q(QuantumCircuit &qc, Basis1q basis = Basis1q::kZsx);

} // namespace nassc

#endif // NASSC_PASSES_OPTIMIZE_1Q_H
