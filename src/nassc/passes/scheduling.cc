#include "nassc/passes/scheduling.h"

#include <algorithm>

namespace nassc {

double
DurationModel::gate_ns(const Gate &g, const Backend &backend) const
{
    switch (g.kind) {
      case OpKind::kBarrier:
        return 0.0;
      case OpKind::kMeasure:
        return measure_ns;
      case OpKind::kRZ:
      case OpKind::kP:
      case OpKind::kZ:
      case OpKind::kS:
      case OpKind::kSdg:
      case OpKind::kT:
      case OpKind::kTdg:
      case OpKind::kId:
        return rz_ns;
      default:
        break;
    }
    if (g.num_qubits() == 1)
        return one_q_ns;
    if (g.num_qubits() == 2) {
        const auto &dur = backend.calibration.duration_cx;
        int a = std::min(g.qubits[0], g.qubits[1]);
        int b = std::max(g.qubits[0], g.qubits[1]);
        auto it = dur.find({a, b});
        return it != dur.end() ? it->second : default_cx_ns;
    }
    return default_cx_ns; // multi-qubit gates should be decomposed first
}

Schedule
schedule_asap(const QuantumCircuit &qc, const Backend &backend,
              const DurationModel &model)
{
    Schedule sched;
    std::vector<double> free_at(qc.num_qubits(), 0.0);
    sched.gates.reserve(qc.size());
    for (size_t i = 0; i < qc.size(); ++i) {
        const Gate &g = qc.gate(i);
        double start = 0.0;
        for (int q : g.qubits)
            start = std::max(start, free_at[q]);
        double dur = model.gate_ns(g, backend);
        for (int q : g.qubits)
            free_at[q] = start + dur;
        sched.gates.push_back({static_cast<int>(i), start, dur});
        sched.total_ns = std::max(sched.total_ns, start + dur);
    }
    return sched;
}

Schedule
schedule_alap(const QuantumCircuit &qc, const Backend &backend,
              const DurationModel &model)
{
    // Schedule the reversed circuit ASAP, then mirror the time axis.
    std::vector<double> free_at(qc.num_qubits(), 0.0);
    std::vector<double> rev_start(qc.size(), 0.0);
    std::vector<double> durs(qc.size(), 0.0);
    double makespan = 0.0;
    for (size_t k = 0; k < qc.size(); ++k) {
        size_t i = qc.size() - 1 - k;
        const Gate &g = qc.gate(i);
        double start = 0.0;
        for (int q : g.qubits)
            start = std::max(start, free_at[q]);
        double dur = model.gate_ns(g, backend);
        for (int q : g.qubits)
            free_at[q] = start + dur;
        rev_start[i] = start;
        durs[i] = dur;
        makespan = std::max(makespan, start + dur);
    }
    Schedule sched;
    sched.total_ns = makespan;
    sched.gates.reserve(qc.size());
    for (size_t i = 0; i < qc.size(); ++i) {
        double start = makespan - rev_start[i] - durs[i];
        sched.gates.push_back({static_cast<int>(i), start, durs[i]});
    }
    return sched;
}

} // namespace nassc
