#include "nassc/sim/verify.h"

#include <stdexcept>

#include "nassc/sim/unitary.h"

namespace nassc {

bool
verify_transpilation(const QuantumCircuit &logical,
                     const TranspileResult &result, int num_states,
                     double tol)
{
    const QuantumCircuit &physical = result.circuit;

    // Collect active physical wires: everything the circuit touches plus
    // every layout slot.
    std::vector<int> phys_to_compact(physical.num_qubits(), -1);
    std::vector<int> active;
    auto touch = [&](int p) {
        if (p >= 0 && phys_to_compact[p] < 0) {
            phys_to_compact[p] = static_cast<int>(active.size());
            active.push_back(p);
        }
    };
    for (int p : result.initial_l2p)
        touch(p);
    for (int p : result.final_l2p)
        touch(p);
    for (const Gate &g : physical.gates())
        for (int q : g.qubits)
            touch(q);

    if (active.size() > 20)
        throw std::invalid_argument(
            "verify_transpilation: too many active wires");

    QuantumCircuit compact(static_cast<int>(active.size()));
    for (const Gate &g : physical.gates()) {
        Gate cg = g;
        for (int &q : cg.qubits)
            q = phys_to_compact[q];
        compact.append(std::move(cg));
    }

    std::vector<int> initial(result.initial_l2p.size());
    std::vector<int> final_map(result.final_l2p.size());
    for (size_t l = 0; l < initial.size(); ++l)
        initial[l] = phys_to_compact[result.initial_l2p[l]];
    for (size_t l = 0; l < final_map.size(); ++l)
        final_map[l] = phys_to_compact[result.final_l2p[l]];

    return equivalent_with_layout(logical, compact, initial, final_map,
                                  num_states, tol);
}

} // namespace nassc
