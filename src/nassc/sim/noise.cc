#include "nassc/sim/noise.h"

#include <algorithm>
#include <stdexcept>

#include "nassc/sim/statevector.h"

namespace nassc {

NoiseModel
NoiseModel::from_backend(const Backend &backend)
{
    NoiseModel nm;
    int n = backend.coupling.num_qubits();
    nm.p1_ = backend.calibration.error_1q;
    nm.ro_ = backend.calibration.readout_error;
    nm.p2_.assign(n, std::vector<double>(n, 0.0));
    for (auto &[edge, err] : backend.calibration.error_cx) {
        nm.p2_[edge.first][edge.second] = err;
        nm.p2_[edge.second][edge.first] = err;
    }
    return nm;
}

double
NoiseModel::p2(int a, int b) const
{
    return p2_[a][b];
}

uint64_t
ideal_outcome(const QuantumCircuit &logical)
{
    Statevector sv(logical.num_qubits());
    sv.apply_circuit(logical.without_non_unitary());
    return sv.argmax();
}

SuccessRate
monte_carlo_success(const QuantumCircuit &physical, const NoiseModel &noise,
                    const std::vector<int> &final_l2p, uint64_t ideal_logical,
                    int trials, unsigned seed)
{
    // Compress to the active wires so 27-qubit devices stay simulable.
    std::vector<int> phys_to_compact(physical.num_qubits(), -1);
    std::vector<int> active;
    auto touch = [&](int p) {
        if (phys_to_compact[p] < 0) {
            phys_to_compact[p] = static_cast<int>(active.size());
            active.push_back(p);
        }
    };
    for (const Gate &g : physical.gates())
        if (is_unitary_op(g.kind))
            for (int q : g.qubits)
                touch(q);
    for (int p : final_l2p)
        touch(p);

    int n = static_cast<int>(active.size());
    if (n > 24)
        throw std::invalid_argument("too many active wires to simulate");

    QuantumCircuit compact(n);
    for (const Gate &g : physical.gates()) {
        if (!is_unitary_op(g.kind))
            continue;
        Gate cg = g;
        for (int &q : cg.qubits)
            q = phys_to_compact[q];
        compact.append(std::move(cg));
    }

    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_int_distribution<int> pauli1(1, 3);
    std::uniform_int_distribution<int> pauli2(1, 15);

    SuccessRate out;
    out.trials = trials;
    int nl = static_cast<int>(final_l2p.size());

    for (int t = 0; t < trials; ++t) {
        Statevector sv(n);
        for (const Gate &g : compact.gates()) {
            sv.apply(g);
            if (g.num_qubits() == 1) {
                int p_orig = active[g.qubits[0]];
                if (coin(rng) < noise.p1(p_orig))
                    sv.apply_pauli(pauli1(rng), g.qubits[0]);
            } else if (g.num_qubits() == 2) {
                int pa = active[g.qubits[0]];
                int pb = active[g.qubits[1]];
                if (coin(rng) < noise.p2(pa, pb)) {
                    int pp = pauli2(rng); // 2-qubit Pauli, not identity
                    int first = pp & 3;
                    int second = (pp >> 2) & 3;
                    if (first)
                        sv.apply_pauli(first, g.qubits[0]);
                    if (second)
                        sv.apply_pauli(second, g.qubits[1]);
                }
            }
        }
        uint64_t shot = sv.sample(rng);
        // Readout flips on the measured wires.
        uint64_t outcome = 0;
        bool ok = true;
        for (int l = 0; l < nl; ++l) {
            int compact_wire = phys_to_compact[final_l2p[l]];
            int bit = (shot >> compact_wire) & 1;
            if (coin(rng) < noise.readout(final_l2p[l]))
                bit ^= 1;
            if (bit)
                outcome |= uint64_t(1) << l;
        }
        if (ok && outcome == ideal_logical)
            ++out.hits;
    }
    out.rate = static_cast<double>(out.hits) / trials;
    return out;
}

} // namespace nassc
