#ifndef NASSC_SIM_STATEVECTOR_H
#define NASSC_SIM_STATEVECTOR_H

/**
 * @file
 * Dense statevector simulator.
 *
 * Supports every unitary OpKind natively (including CCX/CSwap/MCX without
 * prior decomposition), Pauli error injection for the noise model, and
 * sampling.  Used for end-to-end transpiler verification and for the
 * Fig. 11 success-rate experiments.
 */

#include <cstdint>
#include <random>
#include <vector>

#include "nassc/ir/circuit.h"
#include "nassc/math/complex_mat.h"

namespace nassc {

/** A 2^n-amplitude pure state. */
class Statevector
{
  public:
    /** Initialize to |0...0>. */
    explicit Statevector(int num_qubits);

    int num_qubits() const { return num_qubits_; }

    const std::vector<Cx> &amplitudes() const { return amps_; }
    std::vector<Cx> &mutable_amplitudes() { return amps_; }

    /** Apply a unitary gate (measure/barrier are no-ops). */
    void apply(const Gate &g);

    /** Apply every gate of a circuit. */
    void apply_circuit(const QuantumCircuit &qc);

    /** Apply a single Pauli (1 = X, 2 = Y, 3 = Z) on one qubit. */
    void apply_pauli(int pauli, int q);

    Cx amplitude(uint64_t basis) const { return amps_[basis]; }
    double probability(uint64_t basis) const;

    /** Basis state with the highest probability. */
    uint64_t argmax() const;

    /** Sample a basis state from the output distribution. */
    uint64_t sample(std::mt19937 &rng) const;

    /** |<this|other>|^2. */
    double fidelity(const Statevector &other) const;

    /** Squared norm (should stay 1 within rounding). */
    double norm2() const;

  private:
    int num_qubits_;
    std::vector<Cx> amps_;
};

/**
 * Apply a gate to a raw amplitude vector over `num_qubits` qubits.
 * Shared kernel between Statevector and the unitary builder.
 */
void apply_gate_to_amplitudes(std::vector<Cx> &amps, int num_qubits,
                              const Gate &g);

} // namespace nassc

#endif // NASSC_SIM_STATEVECTOR_H
