#ifndef NASSC_SIM_VERIFY_H
#define NASSC_SIM_VERIFY_H

/**
 * @file
 * Transpilation verification that scales to large devices.
 *
 * equivalent_with_layout() needs a statevector over every device wire;
 * on a 27-qubit backend that is prohibitive when the circuit only
 * touches a handful of wires.  verify_transpilation() compacts the
 * physical circuit onto its active wires first, then performs the same
 * random-state unitary comparison.
 */

#include "nassc/transpile/transpile.h"

namespace nassc {

/**
 * Check that a transpile() result implements the logical circuit.
 *
 * @param logical   the pre-transpilation circuit
 * @param result    transpile() output (circuit + layouts)
 * @param num_states random product states to probe with
 * @return true when every probe matches up to global phase
 * @throws std::invalid_argument if the active wire count exceeds 20
 */
bool verify_transpilation(const QuantumCircuit &logical,
                          const TranspileResult &result,
                          int num_states = 4, double tol = 1e-6);

} // namespace nassc

#endif // NASSC_SIM_VERIFY_H
