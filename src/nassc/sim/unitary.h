#ifndef NASSC_SIM_UNITARY_H
#define NASSC_SIM_UNITARY_H

/**
 * @file
 * Dense unitary construction and circuit-equivalence checks used by the
 * test suite and the transpiler's internal verification.
 */

#include <vector>

#include "nassc/ir/circuit.h"
#include "nassc/math/complex_mat.h"

namespace nassc {

/**
 * Build the full 2^n x 2^n unitary of a circuit (measures/barriers
 * skipped).  Guarded to n <= 12.
 */
MatN unitary_of_circuit(const QuantumCircuit &qc);

/** True if the circuits implement the same unitary up to global phase. */
bool circuits_equivalent(const QuantumCircuit &a, const QuantumCircuit &b,
                         double tol = 1e-7);

/**
 * Verify a routed/physical circuit against its logical source.
 *
 * `initial_l2p[l]` is the physical qubit initially holding logical l, and
 * `final_l2p[l]` the physical qubit holding it after routing (SWAPs move
 * logical qubits).  Checks, on a set of random product input states, that
 *
 *   physical(embed_initial(|psi>)) == embed_final(logical(|psi>))
 *
 * up to global phase, with ancilla wires in |0>.
 */
bool equivalent_with_layout(const QuantumCircuit &logical,
                            const QuantumCircuit &physical,
                            const std::vector<int> &initial_l2p,
                            const std::vector<int> &final_l2p,
                            int num_random_states = 4, double tol = 1e-6,
                            unsigned seed = 7);

} // namespace nassc

#endif // NASSC_SIM_UNITARY_H
