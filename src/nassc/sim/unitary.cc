#include "nassc/sim/unitary.h"

#include <cmath>
#include <random>
#include <stdexcept>

#include "nassc/sim/statevector.h"

namespace nassc {

MatN
unitary_of_circuit(const QuantumCircuit &qc)
{
    int n = qc.num_qubits();
    if (n > 12)
        throw std::invalid_argument("unitary_of_circuit limited to 12 qubits");
    uint64_t dim = uint64_t(1) << n;

    // Evolve every basis state; columns of the unitary.
    MatN u(static_cast<int>(dim));
    std::vector<Cx> col(dim);
    for (uint64_t c = 0; c < dim; ++c) {
        std::fill(col.begin(), col.end(), Cx(0.0, 0.0));
        col[c] = 1.0;
        for (const Gate &g : qc.gates())
            apply_gate_to_amplitudes(col, n, g);
        for (uint64_t r = 0; r < dim; ++r)
            u(static_cast<int>(r), static_cast<int>(c)) = col[r];
    }
    return u;
}

bool
circuits_equivalent(const QuantumCircuit &a, const QuantumCircuit &b,
                    double tol)
{
    if (a.num_qubits() != b.num_qubits())
        return false;
    MatN ua = unitary_of_circuit(a);
    MatN ub = unitary_of_circuit(b);
    return equal_up_to_phase(ua, ub, tol);
}

namespace {

/** Random product state over n qubits (keeps simulation cheap). */
std::vector<std::pair<double, double>>
random_bloch_angles(int n, std::mt19937 &rng)
{
    std::uniform_real_distribution<double> d(0.0, 2.0 * M_PI);
    std::vector<std::pair<double, double>> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i)
        out.emplace_back(d(rng), d(rng));
    return out;
}

} // namespace

bool
equivalent_with_layout(const QuantumCircuit &logical,
                       const QuantumCircuit &physical,
                       const std::vector<int> &initial_l2p,
                       const std::vector<int> &final_l2p,
                       int num_random_states, double tol, unsigned seed)
{
    int nl = logical.num_qubits();
    int np = physical.num_qubits();
    if (static_cast<int>(initial_l2p.size()) != nl ||
        static_cast<int>(final_l2p.size()) != nl)
        return false;

    std::mt19937 rng(seed);
    for (int trial = 0; trial < num_random_states; ++trial) {
        auto angles = random_bloch_angles(nl, rng);

        // Logical side: prepare |psi>, run the logical circuit.
        Statevector lhs(nl);
        for (int q = 0; q < nl; ++q) {
            lhs.apply(Gate::one_q(OpKind::kRY, q, angles[q].first));
            lhs.apply(Gate::one_q(OpKind::kRZ, q, angles[q].second));
        }
        lhs.apply_circuit(logical.without_non_unitary());

        // Physical side: prepare the same state on the initial layout.
        Statevector rhs(np);
        for (int q = 0; q < nl; ++q) {
            rhs.apply(
                Gate::one_q(OpKind::kRY, initial_l2p[q], angles[q].first));
            rhs.apply(
                Gate::one_q(OpKind::kRZ, initial_l2p[q], angles[q].second));
        }
        rhs.apply_circuit(physical.without_non_unitary());

        // Compare amplitudes: every basis state of the logical register
        // must match the physical state at the final layout positions,
        // with ancillas remaining |0>.
        uint64_t nl_dim = uint64_t(1) << nl;
        auto map_index = [&](uint64_t i) {
            uint64_t p = 0;
            for (int q = 0; q < nl; ++q)
                if (i & (uint64_t(1) << q))
                    p |= uint64_t(1) << final_l2p[q];
            return p;
        };

        // Align global phase on the logical state's largest amplitude.
        uint64_t imax = 0;
        double amax = -1.0;
        for (uint64_t i = 0; i < nl_dim; ++i) {
            if (std::abs(lhs.amplitude(i)) > amax) {
                amax = std::abs(lhs.amplitude(i));
                imax = i;
            }
        }
        Cx phase = rhs.amplitude(map_index(imax)) / lhs.amplitude(imax);
        if (std::abs(std::abs(phase) - 1.0) > tol)
            return false;

        double err = 0.0;
        double covered = 0.0;
        for (uint64_t i = 0; i < nl_dim; ++i) {
            Cx al = lhs.amplitude(i);
            Cx ap = rhs.amplitude(map_index(i));
            covered += std::norm(ap);
            err += std::norm(ap - phase * al);
        }
        // All probability mass must live on the mapped subspace.
        if (std::abs(covered - 1.0) > tol)
            return false;
        if (std::sqrt(err) > tol * (1 << nl))
            return false;
    }
    return true;
}

} // namespace nassc
