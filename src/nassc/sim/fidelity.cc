#include "nassc/sim/fidelity.h"

namespace nassc {

double
estimate_success_probability(const QuantumCircuit &physical,
                             const Backend &backend)
{
    double p = 1.0;
    for (const Gate &g : physical.gates()) {
        switch (g.kind) {
          case OpKind::kBarrier:
            break;
          case OpKind::kMeasure:
            p *= 1.0 - backend.calibration.readout_error[g.qubits[0]];
            break;
          case OpKind::kRZ:
          case OpKind::kP:
          case OpKind::kZ:
          case OpKind::kS:
          case OpKind::kSdg:
          case OpKind::kT:
          case OpKind::kTdg:
          case OpKind::kId:
            break; // virtual Z: error-free
          default:
            if (g.num_qubits() == 1) {
                p *= 1.0 - backend.calibration.error_1q[g.qubits[0]];
            } else if (g.num_qubits() == 2) {
                p *= 1.0 - backend.calibration.cx_error(g.qubits[0],
                                                        g.qubits[1]);
            }
            break;
        }
    }
    return p;
}

} // namespace nassc
