#ifndef NASSC_SIM_NOISE_H
#define NASSC_SIM_NOISE_H

/**
 * @file
 * Depolarizing + readout noise model and the Monte-Carlo success-rate
 * protocol of the paper's Sec. VI-D (Fig. 11): 8192 noisy trials, success
 * = fraction of trials measuring the ideal output bitstring.
 */

#include <cstdint>

#include "nassc/ir/circuit.h"
#include "nassc/topo/backends.h"

namespace nassc {

/** Stochastic Pauli (depolarizing) + readout-flip noise. */
class NoiseModel
{
  public:
    /** Derive from a backend's calibration data. */
    static NoiseModel from_backend(const Backend &backend);

    double p1(int q) const { return p1_[q]; }
    double p2(int a, int b) const;
    double readout(int q) const { return ro_[q]; }
    int num_qubits() const { return static_cast<int>(p1_.size()); }

  private:
    std::vector<double> p1_;
    std::vector<double> ro_;
    std::vector<std::vector<double>> p2_;
};

/** Noiseless most-likely outcome of a circuit (basis-state index). */
uint64_t ideal_outcome(const QuantumCircuit &logical);

/** Result of a Monte-Carlo run. */
struct SuccessRate
{
    double rate = 0.0;
    int trials = 0;
    int hits = 0;
};

/**
 * Estimate the success rate of a *physical* (routed) circuit.
 *
 * @param physical      routed basis circuit on device wires
 * @param noise         device noise model
 * @param final_l2p     physical wire holding logical qubit l at the end
 * @param ideal_logical ideal logical outcome (from ideal_outcome())
 * @param trials        number of noisy shots (paper: 8192)
 *
 * Only the wires the circuit actually touches are simulated, so large
 * devices stay cheap.
 */
SuccessRate monte_carlo_success(const QuantumCircuit &physical,
                                const NoiseModel &noise,
                                const std::vector<int> &final_l2p,
                                uint64_t ideal_logical, int trials = 8192,
                                unsigned seed = 1234);

} // namespace nassc

#endif // NASSC_SIM_NOISE_H
