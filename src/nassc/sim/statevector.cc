#include "nassc/sim/statevector.h"

#include <cmath>
#include <stdexcept>

#include "nassc/ir/matrices.h"

namespace nassc {

namespace {

void
apply_mat2(std::vector<Cx> &amps, int q, const Mat2 &m)
{
    const uint64_t bit = uint64_t(1) << q;
    const uint64_t n = amps.size();
    for (uint64_t i = 0; i < n; ++i) {
        if (i & bit)
            continue;
        uint64_t j = i | bit;
        Cx a0 = amps[i];
        Cx a1 = amps[j];
        amps[i] = m(0, 0) * a0 + m(0, 1) * a1;
        amps[j] = m(1, 0) * a0 + m(1, 1) * a1;
    }
}

void
apply_mat4(std::vector<Cx> &amps, int q0, int q1, const Mat4 &m)
{
    const uint64_t b0 = uint64_t(1) << q0;
    const uint64_t b1 = uint64_t(1) << q1;
    const uint64_t n = amps.size();
    for (uint64_t i = 0; i < n; ++i) {
        if ((i & b0) || (i & b1))
            continue;
        uint64_t idx[4] = {i, i | b0, i | b1, i | b0 | b1};
        Cx in[4] = {amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]};
        for (int r = 0; r < 4; ++r) {
            Cx s = 0.0;
            for (int c = 0; c < 4; ++c)
                s += m(r, c) * in[c];
            amps[idx[r]] = s;
        }
    }
}

} // namespace

void
apply_gate_to_amplitudes(std::vector<Cx> &amps, int num_qubits, const Gate &g)
{
    switch (g.kind) {
      case OpKind::kBarrier:
      case OpKind::kMeasure:
        return;
      case OpKind::kCCX:
      case OpKind::kMCX: {
        // Flip target amplitude pairs when all controls are 1.
        uint64_t cmask = 0;
        for (size_t i = 0; i + 1 < g.qubits.size(); ++i)
            cmask |= uint64_t(1) << g.qubits[i];
        uint64_t tbit = uint64_t(1) << g.qubits.back();
        const uint64_t n = amps.size();
        for (uint64_t i = 0; i < n; ++i) {
            if ((i & cmask) == cmask && !(i & tbit))
                std::swap(amps[i], amps[i | tbit]);
        }
        return;
      }
      case OpKind::kCCZ: {
        uint64_t mask = 0;
        for (int q : g.qubits)
            mask |= uint64_t(1) << q;
        const uint64_t n = amps.size();
        for (uint64_t i = 0; i < n; ++i)
            if ((i & mask) == mask)
                amps[i] = -amps[i];
        return;
      }
      case OpKind::kCSwap: {
        uint64_t cbit = uint64_t(1) << g.qubits[0];
        uint64_t abit = uint64_t(1) << g.qubits[1];
        uint64_t bbit = uint64_t(1) << g.qubits[2];
        const uint64_t n = amps.size();
        for (uint64_t i = 0; i < n; ++i) {
            // Swap |..a=1, b=0..> with |..a=0, b=1..> under control.
            if ((i & cbit) && (i & abit) && !(i & bbit))
                std::swap(amps[i], amps[(i & ~abit) | bbit]);
        }
        return;
      }
      default:
        break;
    }
    if (g.num_qubits() == 1) {
        apply_mat2(amps, g.qubits[0], gate_matrix1(g));
        return;
    }
    if (g.num_qubits() == 2) {
        apply_mat4(amps, g.qubits[0], g.qubits[1], gate_matrix2(g));
        return;
    }
    throw std::invalid_argument(std::string("statevector: unsupported gate ") +
                                op_name(g.kind));
    (void)num_qubits;
}

Statevector::Statevector(int num_qubits)
    : num_qubits_(num_qubits), amps_(uint64_t(1) << num_qubits, Cx(0.0, 0.0))
{
    if (num_qubits < 0 || num_qubits > 26)
        throw std::invalid_argument("statevector limited to 26 qubits");
    amps_[0] = 1.0;
}

void
Statevector::apply(const Gate &g)
{
    apply_gate_to_amplitudes(amps_, num_qubits_, g);
}

void
Statevector::apply_circuit(const QuantumCircuit &qc)
{
    if (qc.num_qubits() != num_qubits_)
        throw std::invalid_argument("statevector: register size mismatch");
    for (const Gate &g : qc.gates())
        apply(g);
}

void
Statevector::apply_pauli(int pauli, int q)
{
    switch (pauli) {
      case 1: apply_mat2(amps_, q, pauli_x()); break;
      case 2: apply_mat2(amps_, q, pauli_y()); break;
      case 3: apply_mat2(amps_, q, pauli_z()); break;
      default: throw std::invalid_argument("pauli must be 1..3");
    }
}

double
Statevector::probability(uint64_t basis) const
{
    return std::norm(amps_[basis]);
}

uint64_t
Statevector::argmax() const
{
    uint64_t best = 0;
    double mag = -1.0;
    for (uint64_t i = 0; i < amps_.size(); ++i) {
        double p = std::norm(amps_[i]);
        if (p > mag) {
            mag = p;
            best = i;
        }
    }
    return best;
}

uint64_t
Statevector::sample(std::mt19937 &rng) const
{
    std::uniform_real_distribution<double> d(0.0, 1.0);
    double r = d(rng);
    double acc = 0.0;
    for (uint64_t i = 0; i < amps_.size(); ++i) {
        acc += std::norm(amps_[i]);
        if (r <= acc)
            return i;
    }
    return amps_.size() - 1;
}

double
Statevector::fidelity(const Statevector &other) const
{
    Cx ip = 0.0;
    for (uint64_t i = 0; i < amps_.size(); ++i)
        ip += std::conj(amps_[i]) * other.amps_[i];
    return std::norm(ip);
}

double
Statevector::norm2() const
{
    double s = 0.0;
    for (const Cx &a : amps_)
        s += std::norm(a);
    return s;
}

} // namespace nassc
