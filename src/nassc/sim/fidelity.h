#ifndef NASSC_SIM_FIDELITY_H
#define NASSC_SIM_FIDELITY_H

/**
 * @file
 * Closed-form success-probability estimation: the product of per-gate
 * survival probabilities (1 - error) over a physical circuit, the model
 * behind hardware-aware routing cost functions [Niu et al., HA].
 * Cheaper than Monte-Carlo simulation and monotone in the CNOT count,
 * which is exactly why reducing CNOTs (NASSC) raises fidelity.
 */

#include "nassc/ir/circuit.h"
#include "nassc/topo/backends.h"

namespace nassc {

/**
 * Estimated success probability of a routed circuit on a backend:
 *   prod over 1q gates (1 - e1q) * prod over 2q gates (1 - ecx)
 *   * prod over measures (1 - readout)
 * rz-type gates are free (virtual Z).
 */
double estimate_success_probability(const QuantumCircuit &physical,
                                    const Backend &backend);

} // namespace nassc

#endif // NASSC_SIM_FIDELITY_H
