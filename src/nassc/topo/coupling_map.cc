#include "nassc/topo/coupling_map.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "nassc/ir/fnv1a.h"

namespace nassc {

CouplingMap::CouplingMap(int num_qubits,
                         std::vector<std::pair<int, int>> edges)
    : num_qubits_(num_qubits)
{
    adj_.assign(num_qubits, std::vector<bool>(num_qubits, false));
    nbrs_.assign(num_qubits, {});
    for (auto [a, b] : edges) {
        if (a < 0 || b < 0 || a >= num_qubits || b >= num_qubits)
            throw std::out_of_range("coupling edge outside register");
        if (a == b)
            throw std::invalid_argument("self-loop in coupling map");
        if (a > b)
            std::swap(a, b);
        if (adj_[a][b])
            continue;
        adj_[a][b] = adj_[b][a] = true;
        edges_.emplace_back(a, b);
        nbrs_[a].push_back(b);
        nbrs_[b].push_back(a);
    }
    for (auto &n : nbrs_)
        std::sort(n.begin(), n.end());
    std::sort(edges_.begin(), edges_.end());

    // BFS all-pairs distances.
    const int inf = num_qubits + 1;
    dist_.assign(num_qubits, std::vector<int>(num_qubits, inf));
    for (int s = 0; s < num_qubits; ++s) {
        dist_[s][s] = 0;
        std::queue<int> q;
        q.push(s);
        while (!q.empty()) {
            int u = q.front();
            q.pop();
            for (int v : nbrs_[u]) {
                if (dist_[s][v] > dist_[s][u] + 1) {
                    dist_[s][v] = dist_[s][u] + 1;
                    q.push(v);
                }
            }
        }
    }
}

DistanceMatrix
CouplingMap::distance_matrix_double() const
{
    DistanceMatrix d(num_qubits_);
    for (int i = 0; i < num_qubits_; ++i)
        for (int j = 0; j < num_qubits_; ++j)
            d(i, j) = dist_[i][j];
    return d;
}

std::uint64_t
CouplingMap::fingerprint() const
{
    Fnv1a mix;
    mix.u64(static_cast<std::uint64_t>(num_qubits_));
    for (auto [a, b] : edges_) {
        mix.u64(static_cast<std::uint64_t>(a));
        mix.u64(static_cast<std::uint64_t>(b));
    }
    return mix.value();
}

int
CouplingMap::diameter() const
{
    int d = 0;
    for (int i = 0; i < num_qubits_; ++i)
        for (int j = 0; j < num_qubits_; ++j)
            d = std::max(d, dist_[i][j]);
    return d;
}

bool
CouplingMap::is_connected_graph() const
{
    for (int i = 0; i < num_qubits_; ++i)
        for (int j = 0; j < num_qubits_; ++j)
            if (dist_[i][j] > num_qubits_)
                return false;
    return true;
}

} // namespace nassc
