#include "nassc/topo/coupling_map.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "nassc/ir/fnv1a.h"

namespace nassc {

CouplingMap::CouplingMap(int num_qubits,
                         std::vector<std::pair<int, int>> edges,
                         int dense_limit)
    : num_qubits_(num_qubits)
{
    for (auto &[a, b] : edges) {
        if (a < 0 || b < 0 || a >= num_qubits || b >= num_qubits)
            throw std::out_of_range("coupling edge outside register");
        if (a == b)
            throw std::invalid_argument("self-loop in coupling map");
        if (a > b)
            std::swap(a, b);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    edges_ = std::move(edges);

    nbrs_.assign(num_qubits, {});
    for (auto [a, b] : edges_) {
        nbrs_[a].push_back(b);
        nbrs_[b].push_back(a);
    }
    for (auto &n : nbrs_)
        std::sort(n.begin(), n.end());

    const bool dense = num_qubits <= dense_limit;
    if (dense) {
        adj_.assign(num_qubits, std::vector<bool>(num_qubits, false));
        for (auto [a, b] : edges_)
            adj_[a][b] = adj_[b][a] = true;

        // BFS all-pairs distances.
        const int inf = num_qubits + 1;
        dist_.assign(num_qubits, std::vector<int>(num_qubits, inf));
        for (int s = 0; s < num_qubits; ++s) {
            dist_[s][s] = 0;
            std::queue<int> q;
            q.push(s);
            while (!q.empty()) {
                int u = q.front();
                q.pop();
                for (int v : nbrs_[u]) {
                    if (dist_[s][v] > dist_[s][u] + 1) {
                        dist_[s][v] = dist_[s][u] + 1;
                        q.push(v);
                    }
                }
            }
        }
    }
}

std::vector<int>
CouplingMap::hop_row(int src) const
{
    const int inf = num_qubits_ + 1;
    std::vector<int> d(num_qubits_, inf);
    d[src] = 0;
    std::queue<int> q;
    q.push(src);
    while (!q.empty()) {
        int u = q.front();
        q.pop();
        for (int v : nbrs_[u]) {
            if (d[v] > d[u] + 1) {
                d[v] = d[u] + 1;
                q.push(v);
            }
        }
    }
    return d;
}

int
CouplingMap::distance(int a, int b) const
{
    if (!dist_.empty())
        return dist_[a][b];
    if (a == b)
        return 0;
    // Early-exit BFS from a.
    const int inf = num_qubits_ + 1;
    std::vector<int> d(num_qubits_, inf);
    d[a] = 0;
    std::queue<int> q;
    q.push(a);
    while (!q.empty()) {
        int u = q.front();
        q.pop();
        for (int v : nbrs_[u]) {
            if (d[v] > d[u] + 1) {
                d[v] = d[u] + 1;
                if (v == b)
                    return d[v];
                q.push(v);
            }
        }
    }
    return inf;
}

const std::vector<std::vector<int>> &
CouplingMap::distance_matrix() const
{
    if (dist_.empty())
        throw std::logic_error(
            "dense distance table not materialized above "
            "CouplingMap dense limit; use hop_row()/DistanceProvider");
    return dist_;
}

DistanceMatrix
CouplingMap::distance_matrix_double() const
{
    DistanceMatrix d(num_qubits_);
    if (!dist_.empty()) {
        for (int i = 0; i < num_qubits_; ++i)
            for (int j = 0; j < num_qubits_; ++j)
                d(i, j) = dist_[i][j];
        return d;
    }
    for (int i = 0; i < num_qubits_; ++i) {
        std::vector<int> row = hop_row(i);
        for (int j = 0; j < num_qubits_; ++j)
            d(i, j) = row[j];
    }
    return d;
}

std::uint64_t
CouplingMap::fingerprint() const
{
    Fnv1a mix;
    mix.u64(static_cast<std::uint64_t>(num_qubits_));
    for (auto [a, b] : edges_) {
        mix.u64(static_cast<std::uint64_t>(a));
        mix.u64(static_cast<std::uint64_t>(b));
    }
    return mix.value();
}

int
CouplingMap::diameter() const
{
    if (!dist_.empty()) {
        int d = 0;
        for (int i = 0; i < num_qubits_; ++i)
            for (int j = 0; j < num_qubits_; ++j)
                d = std::max(d, dist_[i][j]);
        return d;
    }
    if (num_qubits_ == 0)
        return 0;
    // Double-sweep pseudo-diameter: BFS from 0, then BFS from the
    // farthest reachable qubit; exact on trees and a lower bound in
    // general (unreachable sentinels are ignored here — a disconnected
    // graph reports the largest eccentricity seen within 0's component).
    auto farthest = [this](int src, int &best_d) {
        std::vector<int> row = hop_row(src);
        int best = src;
        best_d = 0;
        for (int i = 0; i < num_qubits_; ++i)
            if (row[i] <= num_qubits_ && row[i] > best_d) {
                best_d = row[i];
                best = i;
            }
        return best;
    };
    int d1 = 0, d2 = 0;
    int far = farthest(0, d1);
    farthest(far, d2);
    return std::max(d1, d2);
}

bool
CouplingMap::is_connected_graph() const
{
    if (!dist_.empty()) {
        for (int i = 0; i < num_qubits_; ++i)
            for (int j = 0; j < num_qubits_; ++j)
                if (dist_[i][j] > num_qubits_)
                    return false;
        return true;
    }
    if (num_qubits_ == 0)
        return true;
    std::vector<int> row = hop_row(0);
    for (int i = 0; i < num_qubits_; ++i)
        if (row[i] > num_qubits_)
            return false;
    return true;
}

} // namespace nassc
