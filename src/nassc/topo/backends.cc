#include "nassc/topo/backends.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <stdexcept>

#include "nassc/ir/fnv1a.h"

namespace nassc {

namespace {

/** Deterministic synthetic calibration for a topology. */
Calibration
make_calibration(const CouplingMap &cm, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> cx_err(0.005, 0.03);
    std::uniform_real_distribution<double> one_err(0.0002, 0.001);
    std::uniform_real_distribution<double> ro_err(0.01, 0.04);
    std::uniform_real_distribution<double> dur(250.0, 550.0);

    Calibration cal;
    cal.error_1q.resize(cm.num_qubits());
    cal.readout_error.resize(cm.num_qubits());
    for (int q = 0; q < cm.num_qubits(); ++q) {
        cal.error_1q[q] = one_err(rng);
        cal.readout_error[q] = ro_err(rng);
    }
    for (auto e : cm.edges()) {
        cal.error_cx[e] = cx_err(rng);
        cal.duration_cx[e] = dur(rng);
    }
    return cal;
}

/** FNV-1a over the calibration's raw double values. */
std::uint64_t
calibration_fingerprint(const Calibration &cal)
{
    Fnv1a mix;
    for (double e : cal.error_1q)
        mix.f64(e);
    for (double e : cal.readout_error)
        mix.f64(e);
    for (const auto &[edge, err] : cal.error_cx)
        mix.f64(err);
    for (const auto &[edge, dur] : cal.duration_cx)
        mix.f64(dur);
    return mix.value();
}

} // namespace

std::string
Backend::cache_key() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "|%016llx|%016llx",
                  static_cast<unsigned long long>(coupling.fingerprint()),
                  static_cast<unsigned long long>(
                      calibration_fingerprint(calibration)));
    return name + buf;
}

double
Calibration::cx_error(int a, int b) const
{
    if (a > b)
        std::swap(a, b);
    auto it = error_cx.find({a, b});
    if (it == error_cx.end())
        throw std::out_of_range("no calibration for edge");
    return it->second;
}

double
Calibration::cx_duration(int a, int b) const
{
    if (a > b)
        std::swap(a, b);
    auto it = duration_cx.find({a, b});
    if (it == duration_cx.end())
        throw std::out_of_range("no calibration for edge");
    return it->second;
}

Backend
montreal_backend()
{
    // Undirected edge list of the 27-qubit IBM heavy-hex lattice
    // (Falcon r4, used by ibmq_montreal / mumbai / toronto).
    std::vector<std::pair<int, int>> edges = {
        {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},
        {5, 8},   {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12},
        {11, 14}, {12, 13}, {12, 15}, {13, 14}, {14, 16}, {15, 18},
        {16, 19}, {17, 18}, {18, 21}, {19, 20}, {19, 22}, {21, 23},
        {22, 25}, {23, 24}, {24, 25}, {25, 26},
    };
    Backend b;
    b.name = "ibmq_montreal";
    b.coupling = CouplingMap(27, std::move(edges));
    b.calibration = make_calibration(b.coupling, 0x4d6f6e74); // "Mont"
    return b;
}

Backend
linear_backend(int n)
{
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i + 1 < n; ++i)
        edges.emplace_back(i, i + 1);
    Backend b;
    b.name = "linear_" + std::to_string(n);
    b.coupling = CouplingMap(n, std::move(edges));
    b.calibration = make_calibration(b.coupling, 0x4c696e00 + n);
    return b;
}

Backend
grid_backend(int rows, int cols)
{
    std::vector<std::pair<int, int>> edges;
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                edges.emplace_back(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                edges.emplace_back(id(r, c), id(r + 1, c));
        }
    }
    Backend b;
    b.name = "grid_" + std::to_string(rows) + "x" + std::to_string(cols);
    b.coupling = CouplingMap(rows * cols, std::move(edges));
    b.calibration = make_calibration(b.coupling, 0x47726900 + rows * cols);
    return b;
}

Backend
fully_connected_backend(int n)
{
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            edges.emplace_back(i, j);
    Backend b;
    b.name = "full_" + std::to_string(n);
    b.coupling = CouplingMap(n, std::move(edges));
    b.calibration = make_calibration(b.coupling, 0x46756c00 + n);
    return b;
}

Backend
heavy_hex_backend(int distance)
{
    if (distance < 3 || distance % 2 == 0)
        throw std::invalid_argument(
            "heavy_hex distance must be odd and >= 3");

    const int d = distance;
    const int cols = 2 * d + 1;
    auto row_id = [cols](int r, int c) { return r * cols + c; };

    std::vector<std::pair<int, int>> edges;
    // Row chains.
    for (int r = 0; r < d; ++r)
        for (int c = 0; c + 1 < cols; ++c)
            edges.emplace_back(row_id(r, c), row_id(r, c + 1));
    // Degree-2 bridge qubits between adjacent rows, every four columns,
    // offset by two columns on alternating row pairs (the heavy-hex
    // unit cell).  Bridges are numbered after all row qubits.
    int next = d * cols;
    for (int r = 0; r + 1 < d; ++r) {
        const int offset = 2 * (r % 2);
        for (int c = offset; c < cols; c += 4) {
            int bridge = next++;
            edges.emplace_back(row_id(r, c), bridge);
            edges.emplace_back(bridge, row_id(r + 1, c));
        }
    }

    Backend b;
    b.name = "heavy_hex_d" + std::to_string(d);
    b.coupling = CouplingMap(next, std::move(edges));
    b.calibration = make_calibration(b.coupling, 0x48480000u + d); // "HH"
    return b;
}

Backend
grid_of_grids_backend(int tiles_r, int tiles_c, int tile_rows, int tile_cols)
{
    if (tiles_r < 1 || tiles_c < 1 || tile_rows < 1 || tile_cols < 1)
        throw std::invalid_argument(
            "grid_of_grids parameters must all be >= 1");

    const int tile_n = tile_rows * tile_cols;
    auto id = [&](int tr, int tc, int r, int c) {
        return (tr * tiles_c + tc) * tile_n + r * tile_cols + c;
    };

    std::vector<std::pair<int, int>> edges;
    for (int tr = 0; tr < tiles_r; ++tr) {
        for (int tc = 0; tc < tiles_c; ++tc) {
            // In-tile 2D grid.
            for (int r = 0; r < tile_rows; ++r)
                for (int c = 0; c < tile_cols; ++c) {
                    if (c + 1 < tile_cols)
                        edges.emplace_back(id(tr, tc, r, c),
                                           id(tr, tc, r, c + 1));
                    if (r + 1 < tile_rows)
                        edges.emplace_back(id(tr, tc, r, c),
                                           id(tr, tc, r + 1, c));
                }
            // One bridge edge to each right/down neighbor tile, from
            // the middle of the facing border.
            if (tc + 1 < tiles_c)
                edges.emplace_back(
                    id(tr, tc, tile_rows / 2, tile_cols - 1),
                    id(tr, tc + 1, tile_rows / 2, 0));
            if (tr + 1 < tiles_r)
                edges.emplace_back(
                    id(tr, tc, tile_rows - 1, tile_cols / 2),
                    id(tr + 1, tc, 0, tile_cols / 2));
        }
    }

    Backend b;
    b.name = "gog_" + std::to_string(tiles_r) + "x" + std::to_string(tiles_c) +
             "_" + std::to_string(tile_rows) + "x" + std::to_string(tile_cols);
    b.coupling = CouplingMap(tiles_r * tiles_c * tile_n, std::move(edges));
    b.calibration = make_calibration(
        b.coupling, 0x476f4700u + static_cast<unsigned>(tiles_r * tiles_c) *
                                      static_cast<unsigned>(tile_n));
    return b;
}

std::vector<double>
noise_edge_weights(const Backend &backend, double alpha1, double alpha2,
                   double alpha3)
{
    const CouplingMap &cm = backend.coupling;
    double max_err = 0.0, max_dur = 0.0;
    for (auto e : cm.edges()) {
        max_err = std::max(max_err, backend.calibration.error_cx.at(e));
        max_dur = std::max(max_dur, backend.calibration.duration_cx.at(e));
    }
    if (max_err <= 0.0)
        max_err = 1.0;
    if (max_dur <= 0.0)
        max_dur = 1.0;

    std::vector<double> w;
    w.reserve(cm.edges().size());
    for (auto e : cm.edges())
        w.push_back(alpha1 * backend.calibration.error_cx.at(e) / max_err +
                    alpha2 * backend.calibration.duration_cx.at(e) / max_dur +
                    alpha3);
    return w;
}

DistanceMatrix
noise_aware_distance(const Backend &backend, double alpha1, double alpha2,
                     double alpha3)
{
    const CouplingMap &cm = backend.coupling;
    int n = cm.num_qubits();

    std::vector<double> weights = noise_edge_weights(backend, alpha1, alpha2,
                                                     alpha3);

    const double inf = 1e18;
    DistanceMatrix d(n, inf);
    for (int i = 0; i < n; ++i)
        d(i, i) = 0.0;
    for (std::size_t k = 0; k < cm.edges().size(); ++k) {
        auto e = cm.edges()[k];
        double w = weights[k];
        d(e.first, e.second) = std::min(d(e.first, e.second), w);
        d(e.second, e.first) = d(e.first, e.second);
    }
    // Floyd-Warshall over the flat rows (device sizes are small).
    for (int k = 0; k < n; ++k) {
        const double *row_k = d[k];
        for (int i = 0; i < n; ++i) {
            double *row_i = d[i];
            const double d_ik = row_i[k];
            for (int j = 0; j < n; ++j)
                if (d_ik + row_k[j] < row_i[j])
                    row_i[j] = d_ik + row_k[j];
        }
    }
    return d;
}

DistanceMatrix
hop_distance(const CouplingMap &cm)
{
    return cm.distance_matrix_double();
}

} // namespace nassc
