#include "nassc/topo/distance_provider.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>

namespace nassc {

DistanceProvider::~DistanceProvider() = default;

// ---------------------------------------------------------------------------
// DenseDistanceProvider

DenseDistanceProvider::DenseDistanceProvider(DistanceMatrix matrix)
    : matrix_(std::make_shared<const DistanceMatrix>(std::move(matrix)))
{
}

DenseDistanceProvider::DenseDistanceProvider(
    std::shared_ptr<const DistanceMatrix> matrix)
    : matrix_(std::move(matrix))
{
}

DenseDistanceProvider
DenseDistanceProvider::borrowed(const DistanceMatrix &matrix)
{
    // Empty-deleter alias: the caller owns the matrix and guarantees
    // it outlives the provider.
    return DenseDistanceProvider(std::shared_ptr<const DistanceMatrix>(
        &matrix, [](const DistanceMatrix *) {}));
}

DistanceRow
DenseDistanceProvider::row(int src) const
{
    return DistanceRow{(*matrix_)[src],
                       std::shared_ptr<const void>(matrix_)};
}

DistanceProviderStats
DenseDistanceProvider::stats() const
{
    DistanceProviderStats s;
    const std::size_t n = static_cast<std::size_t>(matrix_->num_qubits());
    s.rows_computed = n;
    s.resident_bytes = n * n * sizeof(double);
    s.peak_bytes = s.resident_bytes;
    return s;
}

// ---------------------------------------------------------------------------
// SparseDistanceProvider

void
SparseDistanceProvider::init_adjacency(const CouplingMap &cm)
{
    n_ = cm.num_qubits();
    row_off_.assign(static_cast<std::size_t>(n_) + 1, 0);
    for (int q = 0; q < n_; ++q)
        row_off_[q + 1] =
            row_off_[q] + static_cast<int>(cm.neighbors(q).size());
    adj_.resize(row_off_[n_]);
    for (int q = 0; q < n_; ++q)
        std::copy(cm.neighbors(q).begin(), cm.neighbors(q).end(),
                  adj_.begin() + row_off_[q]);
    rows_.assign(n_, nullptr);
    lru_pos_.assign(n_, lru_.end());
}

SparseDistanceProvider::SparseDistanceProvider(const CouplingMap &cm,
                                               std::size_t row_budget_bytes)
    : noise_(false), budget_(row_budget_bytes)
{
    init_adjacency(cm);
}

SparseDistanceProvider::SparseDistanceProvider(const Backend &backend,
                                               double alpha1, double alpha2,
                                               double alpha3,
                                               std::size_t row_budget_bytes)
    : noise_(true), budget_(row_budget_bytes)
{
    const CouplingMap &cm = backend.coupling;
    init_adjacency(cm);

    // Expand the per-edge eq. 3 weights into the CSR layout so a
    // Dijkstra relaxation is one indexed read.  Parallel edges cannot
    // occur (CouplingMap dedups), so a plain per-edge assignment works.
    std::vector<double> weights =
        noise_edge_weights(backend, alpha1, alpha2, alpha3);
    w_.assign(adj_.size(), 0.0);
    std::vector<int> cursor(row_off_.begin(), row_off_.end() - 1);
    for (std::size_t k = 0; k < cm.edges().size(); ++k) {
        auto [a, b] = cm.edges()[k];
        // neighbors() lists are sorted, matching sorted edges() order
        // per source, so cursors fill each CSR row in ascending order.
        while (adj_[cursor[a]] != b)
            ++cursor[a];
        w_[cursor[a]] = weights[k];
        int pos = row_off_[b];
        while (adj_[pos] != a)
            ++pos;
        w_[pos] = weights[k];
    }
}

std::vector<double>
SparseDistanceProvider::compute_row(int src) const
{
    std::vector<double> d;
    if (!noise_) {
        // BFS; identical values (and unreachable sentinel n + 1) to the
        // dense CouplingMap table.
        const double inf = n_ + 1;
        d.assign(n_, inf);
        d[src] = 0.0;
        std::queue<int> q;
        q.push(src);
        while (!q.empty()) {
            int u = q.front();
            q.pop();
            for (int k = row_off_[u]; k < row_off_[u + 1]; ++k) {
                int v = adj_[k];
                if (d[v] > d[u] + 1.0) {
                    d[v] = d[u] + 1.0;
                    q.push(v);
                }
            }
        }
        return d;
    }

    // Per-source Dijkstra over the eq. 3 edge weights (non-negative by
    // construction).  Lazy deletion via the done[] marks.
    const double inf = 1e18;
    d.assign(n_, inf);
    d[src] = 0.0;
    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    pq.push({0.0, src});
    std::vector<char> done(n_, 0);
    while (!pq.empty()) {
        auto [du, u] = pq.top();
        pq.pop();
        if (done[u])
            continue;
        done[u] = 1;
        for (int k = row_off_[u]; k < row_off_[u + 1]; ++k) {
            int v = adj_[k];
            double nd = du + w_[k];
            if (nd < d[v]) {
                d[v] = nd;
                pq.push({nd, v});
            }
        }
    }
    return d;
}

DistanceRow
SparseDistanceProvider::publish(int src, std::vector<double> values) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (RowStorage &slot = rows_[src]) {
        // Lost the publish race; the winner's row is authoritative
        // (values are deterministic, so they match anyway).
        ++stats_.row_hits;
        lru_.splice(lru_.begin(), lru_, lru_pos_[src]);
        return DistanceRow{slot->data(), slot};
    }
    RowStorage stored = std::make_shared<const std::vector<double>>(
        std::move(values));
    rows_[src] = stored;
    lru_.push_front(src);
    lru_pos_[src] = lru_.begin();
    ++stats_.rows_computed;
    stats_.resident_bytes += row_bytes();
    stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.resident_bytes);
    // Evict LRU-last rows over budget, but never the row just
    // published (a budget smaller than one row must still make
    // progress).  Pinned handles keep evicted storage alive for their
    // holders; the provider just forgets it.
    if (budget_ != 0) {
        while (stats_.resident_bytes > budget_ && lru_.size() > 1) {
            int victim = lru_.back();
            lru_.pop_back();
            lru_pos_[victim] = lru_.end();
            rows_[victim] = nullptr;
            stats_.resident_bytes -= row_bytes();
            ++stats_.rows_evicted;
        }
    }
    return DistanceRow{stored->data(), stored};
}

DistanceRow
SparseDistanceProvider::row(int src) const
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (RowStorage &slot = rows_[src]) {
            ++stats_.row_hits;
            lru_.splice(lru_.begin(), lru_, lru_pos_[src]);
            return DistanceRow{slot->data(), slot};
        }
    }
    // Compute outside the lock; racing threads may duplicate the work
    // but publish() installs exactly one result.
    return publish(src, compute_row(src));
}

DistanceProviderStats
SparseDistanceProvider::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

// ---------------------------------------------------------------------------

SharedDistanceProviderPtr
make_distance_provider(const Backend &backend, bool noise_aware,
                       double alpha1, double alpha2, double alpha3,
                       bool sparse, std::size_t row_budget_bytes)
{
    if (sparse) {
        if (noise_aware)
            return std::make_shared<SparseDistanceProvider>(
                backend, alpha1, alpha2, alpha3, row_budget_bytes);
        return std::make_shared<SparseDistanceProvider>(backend.coupling,
                                                        row_budget_bytes);
    }
    if (noise_aware)
        return std::make_shared<DenseDistanceProvider>(
            noise_aware_distance(backend, alpha1, alpha2, alpha3));
    return std::make_shared<DenseDistanceProvider>(
        hop_distance(backend.coupling));
}

} // namespace nassc
