#ifndef NASSC_TOPO_DISTANCE_MATRIX_H
#define NASSC_TOPO_DISTANCE_MATRIX_H

/**
 * @file
 * Flat row-major all-pairs distance matrix.
 *
 * The routers read D[p][q] in their innermost scoring loop, so the
 * storage is a single contiguous std::vector<double> with a row stride
 * instead of a vector-of-vectors: one indirection, no per-row
 * allocations, and adjacent columns share cache lines.  operator[]
 * returns a row pointer so existing `d[i][j]` call sites keep working.
 */

#include <cstddef>
#include <vector>

namespace nassc {

/** All-pairs distances, indexed [physical][physical]. */
class DistanceMatrix
{
  public:
    DistanceMatrix() = default;

    /** n x n matrix filled with `fill`. */
    explicit DistanceMatrix(int n, double fill = 0.0)
        : n_(n), data_(static_cast<std::size_t>(n) * n, fill)
    {
    }

    /** Number of rows (= columns = physical qubits). */
    int num_qubits() const { return n_; }

    bool empty() const { return n_ == 0; }

    double operator()(int i, int j) const { return data_[idx(i, j)]; }
    double &operator()(int i, int j) { return data_[idx(i, j)]; }

    /** Row pointer; enables d[i][j] and row-contiguous scans. */
    const double *operator[](int i) const { return data_.data() + idx(i, 0); }
    double *operator[](int i) { return data_.data() + idx(i, 0); }

    const double *data() const { return data_.data(); }

    /** Exact element-wise equality (used by cache tests). */
    friend bool
    operator==(const DistanceMatrix &a, const DistanceMatrix &b)
    {
        return a.n_ == b.n_ && a.data_ == b.data_;
    }

    friend bool
    operator!=(const DistanceMatrix &a, const DistanceMatrix &b)
    {
        return !(a == b);
    }

  private:
    std::size_t
    idx(int i, int j) const
    {
        return static_cast<std::size_t>(i) * n_ + j;
    }

    int n_ = 0;
    std::vector<double> data_;
};

} // namespace nassc

#endif // NASSC_TOPO_DISTANCE_MATRIX_H
