#ifndef NASSC_TOPO_COUPLING_MAP_H
#define NASSC_TOPO_COUPLING_MAP_H

/**
 * @file
 * Undirected device-connectivity graph with all-pairs hop distances.
 *
 * Small maps (n <= dense_limit, default kDenseDistanceLimit) keep the
 * historical dense structures: an adjacency matrix and an eagerly
 * computed all-pairs BFS table, so connected()/distance() are O(1) and
 * behave bit-identically to every prior release.  Above the limit both
 * O(n^2) structures are skipped — connected() binary-searches the
 * sorted neighbor list and distance() runs an on-demand BFS — which is
 * what makes 1000+-qubit heavy-hex/grid-of-grids devices constructible
 * at all (a 4243-qubit map would otherwise eat ~18M adjacency bits plus
 * 72 MB of distance ints before the router ever ran).
 */

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "nassc/topo/distance_matrix.h"

namespace nassc {

/** Qubit connectivity of a backend. */
class CouplingMap
{
  public:
    /**
     * Largest register for which the dense adjacency matrix and eager
     * all-pairs distance table are built.  512 qubits keeps every
     * Table-I device (and anything near it) on the historical dense
     * path while capping the tables at ~2 MB.
     */
    static constexpr int kDenseDistanceLimit = 512;

    CouplingMap() = default;

    /** Build from an undirected edge list (duplicates are ignored). */
    CouplingMap(int num_qubits, std::vector<std::pair<int, int>> edges,
                int dense_limit = kDenseDistanceLimit);

    int num_qubits() const { return num_qubits_; }

    /** Unique undirected edges with a < b. */
    const std::vector<std::pair<int, int>> &edges() const { return edges_; }

    bool connected(int a, int b) const
    {
        if (!adj_.empty())
            return adj_[a][b];
        const std::vector<int> &na = nbrs_[a];
        return std::binary_search(na.begin(), na.end(), b);
    }

    const std::vector<int> &neighbors(int q) const { return nbrs_[q]; }

    /**
     * Hop distance.  O(1) from the dense table when materialized;
     * an on-demand early-exit BFS otherwise.  Unreachable pairs report
     * the num_qubits + 1 sentinel in both modes.
     */
    int distance(int a, int b) const;

    /** True when the eager dense distance table was built. */
    bool has_dense_distances() const { return !dist_.empty(); }

    /**
     * All-pairs hop distance table; only available in dense mode
     * (throws std::logic_error above the dense limit — large-n callers
     * go through DistanceProvider rows instead).
     */
    const std::vector<std::vector<int>> &distance_matrix() const;

    /** All-pairs hop distances widened to double (the router's format). */
    DistanceMatrix distance_matrix_double() const;

    /**
     * Longest shortest path.  Exact in dense mode; above the dense
     * limit a double-sweep BFS lower bound (exact on trees, and on the
     * generators shipped here in practice) — its only in-pipeline use
     * is the router's forced-swap safety valve, which just needs the
     * right order of magnitude.
     */
    int diameter() const;

    /** True when every qubit can reach every other. */
    bool is_connected_graph() const;

    /** Per-source hop-distance row (BFS), usable in either mode. */
    std::vector<int> hop_row(int src) const;

    /**
     * Stable FNV-1a hash of (num_qubits, edge list).  Two maps with the
     * same fingerprint have identical hop-distance matrices; used by
     * DistanceCache keys so caches can outlive any one Backend value.
     */
    std::uint64_t fingerprint() const;

  private:
    int num_qubits_ = 0;
    std::vector<std::pair<int, int>> edges_;
    std::vector<std::vector<bool>> adj_;  ///< empty above dense limit
    std::vector<std::vector<int>> nbrs_;
    std::vector<std::vector<int>> dist_; ///< empty above dense limit
};

} // namespace nassc

#endif // NASSC_TOPO_COUPLING_MAP_H
