#ifndef NASSC_TOPO_COUPLING_MAP_H
#define NASSC_TOPO_COUPLING_MAP_H

/**
 * @file
 * Undirected device-connectivity graph with all-pairs hop distances.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "nassc/topo/distance_matrix.h"

namespace nassc {

/** Qubit connectivity of a backend. */
class CouplingMap
{
  public:
    CouplingMap() = default;

    /** Build from an undirected edge list (duplicates are ignored). */
    CouplingMap(int num_qubits, std::vector<std::pair<int, int>> edges);

    int num_qubits() const { return num_qubits_; }

    /** Unique undirected edges with a < b. */
    const std::vector<std::pair<int, int>> &edges() const { return edges_; }

    bool connected(int a, int b) const { return adj_[a][b]; }

    const std::vector<int> &neighbors(int q) const { return nbrs_[q]; }

    /** Hop distance (BFS); throws if the graph is disconnected. */
    int distance(int a, int b) const { return dist_[a][b]; }

    /** All-pairs hop distance matrix. */
    const std::vector<std::vector<int>> &distance_matrix() const
    {
        return dist_;
    }

    /** All-pairs hop distances widened to double (the router's format). */
    DistanceMatrix distance_matrix_double() const;

    /** Longest shortest path in the graph. */
    int diameter() const;

    /** True when every qubit can reach every other. */
    bool is_connected_graph() const;

    /**
     * Stable FNV-1a hash of (num_qubits, edge list).  Two maps with the
     * same fingerprint have identical hop-distance matrices; used by
     * DistanceCache keys so caches can outlive any one Backend value.
     */
    std::uint64_t fingerprint() const;

  private:
    int num_qubits_ = 0;
    std::vector<std::pair<int, int>> edges_;
    std::vector<std::vector<bool>> adj_;
    std::vector<std::vector<int>> nbrs_;
    std::vector<std::vector<int>> dist_;
};

} // namespace nassc

#endif // NASSC_TOPO_COUPLING_MAP_H
