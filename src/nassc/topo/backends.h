#ifndef NASSC_TOPO_BACKENDS_H
#define NASSC_TOPO_BACKENDS_H

/**
 * @file
 * Device models used in the paper's evaluation (Sec. V, Fig. 10):
 * the 27-qubit heavy-hex `ibmq_montreal`, a 25-qubit linear nearest
 * neighbour chain, a 5x5 2D grid, and a fully connected reference.
 *
 * Real calibration data is not redistributable, so each backend carries a
 * deterministic synthetic calibration whose ranges mimic published
 * Falcon-generation numbers (CX error 0.5-3%, 1q error 0.02-0.1%,
 * readout 1-4%).  The HA noise-aware distance matrix (paper eq. 3) is
 * derived from it.
 */

#include <map>
#include <string>

#include "nassc/topo/coupling_map.h"

namespace nassc {

/** Synthetic device calibration. */
struct Calibration
{
    std::vector<double> error_1q;      ///< per-qubit 1q gate error
    std::vector<double> readout_error; ///< per-qubit readout flip prob
    /** Per-edge CX error, keyed by (min, max) qubit pair. */
    std::map<std::pair<int, int>, double> error_cx;
    /** Per-edge CX duration in ns. */
    std::map<std::pair<int, int>, double> duration_cx;

    double cx_error(int a, int b) const;
    double cx_duration(int a, int b) const;
};

/** A topology plus its calibration. */
struct Backend
{
    std::string name;
    CouplingMap coupling;
    Calibration calibration;

    /**
     * Stable identity for caching derived per-backend data (distance
     * matrices, layouts): name plus fingerprints of the topology and
     * calibration, so editing either produces a distinct key.
     */
    std::string cache_key() const;
};

/** 27-qubit heavy-hex lattice of ibmq_montreal. */
Backend montreal_backend();

/** Linear nearest-neighbour chain. */
Backend linear_backend(int n = 25);

/** rows x cols 2D grid. */
Backend grid_backend(int rows = 5, int cols = 5);

/** Fully connected device (routing becomes a no-op). */
Backend fully_connected_backend(int n);

/**
 * Parameterized IBM-style heavy-hex lattice of distance `d` (odd,
 * >= 3): d rows of 2d+1 qubits connected in chains, with degree-2
 * bridge qubits between adjacent rows every four columns, offset by
 * two columns on alternating rows.  Qubit counts land on the published
 * device generations: d=7 -> 129 (~Eagle 127), d=13 -> 435
 * (~Osprey 433), d=21 -> 1123 (~Condor 1121), d=41 -> 4243.
 * Throws std::invalid_argument when d is even or < 3 (an even
 * distance has no heavy-hex unit cell and silently yields a
 * disconnected lattice).
 */
Backend heavy_hex_backend(int distance);

/**
 * Grid of grids: tiles_r x tiles_c tiles, each a tile_rows x tile_cols
 * 2D grid, with a single bridge edge between the middles of facing
 * tile borders — the sparse-interconnect multi-chip-module shape.
 * All four parameters must be >= 1 (throws std::invalid_argument
 * otherwise; zero tiles would silently produce an empty or
 * disconnected map).
 */
Backend grid_of_grids_backend(int tiles_r, int tiles_c, int tile_rows,
                              int tile_cols);

/**
 * Noise-aware all-pairs distance matrix (paper eq. 3):
 * edge weight alpha1 * eps_hat + alpha2 * T_hat + alpha3, with eps/T
 * normalized by their maxima, expanded to all pairs by shortest path.
 * With (alpha1, alpha2, alpha3) = (0, 0, 1) this reduces to hop distance.
 */
DistanceMatrix noise_aware_distance(const Backend &backend,
                                    double alpha1 = 0.5, double alpha2 = 0.0,
                                    double alpha3 = 0.5);

/** Plain hop-distance matrix as doubles (the SABRE default). */
DistanceMatrix hop_distance(const CouplingMap &cm);

/**
 * Per-edge HA weights (paper eq. 3) in coupling.edges() order:
 * alpha1 * eps_hat + alpha2 * T_hat + alpha3 with eps/T normalized by
 * their maxima.  This is the single source of edge weights for both
 * the dense Floyd-Warshall expansion above and the sparse per-source
 * Dijkstra rows, so the two metrics agree on every edge bit-for-bit.
 */
std::vector<double> noise_edge_weights(const Backend &backend, double alpha1,
                                       double alpha2, double alpha3);

} // namespace nassc

#endif // NASSC_TOPO_BACKENDS_H
