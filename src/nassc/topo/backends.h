#ifndef NASSC_TOPO_BACKENDS_H
#define NASSC_TOPO_BACKENDS_H

/**
 * @file
 * Device models used in the paper's evaluation (Sec. V, Fig. 10):
 * the 27-qubit heavy-hex `ibmq_montreal`, a 25-qubit linear nearest
 * neighbour chain, a 5x5 2D grid, and a fully connected reference.
 *
 * Real calibration data is not redistributable, so each backend carries a
 * deterministic synthetic calibration whose ranges mimic published
 * Falcon-generation numbers (CX error 0.5-3%, 1q error 0.02-0.1%,
 * readout 1-4%).  The HA noise-aware distance matrix (paper eq. 3) is
 * derived from it.
 */

#include <map>
#include <string>

#include "nassc/topo/coupling_map.h"

namespace nassc {

/** Synthetic device calibration. */
struct Calibration
{
    std::vector<double> error_1q;      ///< per-qubit 1q gate error
    std::vector<double> readout_error; ///< per-qubit readout flip prob
    /** Per-edge CX error, keyed by (min, max) qubit pair. */
    std::map<std::pair<int, int>, double> error_cx;
    /** Per-edge CX duration in ns. */
    std::map<std::pair<int, int>, double> duration_cx;

    double cx_error(int a, int b) const;
    double cx_duration(int a, int b) const;
};

/** A topology plus its calibration. */
struct Backend
{
    std::string name;
    CouplingMap coupling;
    Calibration calibration;

    /**
     * Stable identity for caching derived per-backend data (distance
     * matrices, layouts): name plus fingerprints of the topology and
     * calibration, so editing either produces a distinct key.
     */
    std::string cache_key() const;
};

/** 27-qubit heavy-hex lattice of ibmq_montreal. */
Backend montreal_backend();

/** Linear nearest-neighbour chain. */
Backend linear_backend(int n = 25);

/** rows x cols 2D grid. */
Backend grid_backend(int rows = 5, int cols = 5);

/** Fully connected device (routing becomes a no-op). */
Backend fully_connected_backend(int n);

/**
 * Noise-aware all-pairs distance matrix (paper eq. 3):
 * edge weight alpha1 * eps_hat + alpha2 * T_hat + alpha3, with eps/T
 * normalized by their maxima, expanded to all pairs by shortest path.
 * With (alpha1, alpha2, alpha3) = (0, 0, 1) this reduces to hop distance.
 */
DistanceMatrix noise_aware_distance(const Backend &backend,
                                    double alpha1 = 0.5, double alpha2 = 0.0,
                                    double alpha3 = 0.5);

/** Plain hop-distance matrix as doubles (the SABRE default). */
DistanceMatrix hop_distance(const CouplingMap &cm);

} // namespace nassc

#endif // NASSC_TOPO_BACKENDS_H
