#ifndef NASSC_TOPO_DISTANCE_PROVIDER_H
#define NASSC_TOPO_DISTANCE_PROVIDER_H

/**
 * @file
 * Row-oriented access to all-pairs distances, dense or sparse.
 *
 * Every router layer historically scored through a fully materialized
 * DistanceMatrix — O(n^2) doubles per (backend, metric) pair, which is
 * ~8 MB at 1k qubits and 128 MB at 4k, recomputed in full on every
 * calibration rotation.  DistanceProvider abstracts the storage:
 *
 *  - DenseDistanceProvider wraps the existing flat DistanceMatrix.
 *    dense_data() exposes the contiguous n*n block, so the router's
 *    AVX2 gather kernels run verbatim on the dense path — bit-identical
 *    to passing the matrix directly, zero new branches per element.
 *  - SparseDistanceProvider computes per-source rows on demand (BFS for
 *    hop distances, Dijkstra for the HA noise-aware metric of paper
 *    eq. 3) and caches them with thread-safe publish and byte-bounded
 *    LRU eviction.  Memory scales with the rows a workload actually
 *    touches, not with n^2.
 *
 * Rows are handed out as pinned DistanceRow handles: the shared_ptr pin
 * keeps the row alive for the holder even after the provider evicts it
 * from its own cache, so a router mid-pass can never read freed memory.
 *
 * Numerical contract: sparse hop rows are bit-identical to the dense
 * hop matrix (both are BFS over the same adjacency, including the
 * num_qubits + 1 unreachable sentinel).  Sparse noise rows agree with
 * the dense Floyd-Warshall matrix only to ~1 ulp per path hop (the two
 * algorithms associate the path sums differently); callers that need
 * exact dense reproduction use the dense provider, which is why
 * provider selection is thresholded on qubit count rather than always
 * sparse.
 */

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "nassc/topo/backends.h"
#include "nassc/topo/coupling_map.h"
#include "nassc/topo/distance_matrix.h"

namespace nassc {

/**
 * Pinned read-only distance row: data[j] is the distance from the
 * row's source qubit to physical qubit j.  The pin keeps the storage
 * alive independent of the provider's cache (eviction cannot free a
 * row someone still holds).
 */
struct DistanceRow
{
    const double *data = nullptr;
    std::shared_ptr<const void> pin;

    double operator[](int j) const { return data[j]; }
    explicit operator bool() const { return data != nullptr; }
};

/** Row-level counters of one provider (all monotone except resident). */
struct DistanceProviderStats
{
    std::size_t rows_computed = 0; ///< rows actually computed
    std::size_t row_hits = 0;      ///< row() calls served from cache
    std::size_t rows_evicted = 0;  ///< rows dropped by the byte budget
    std::size_t resident_bytes = 0; ///< row payload bytes cached now
    std::size_t peak_bytes = 0;     ///< high-water mark of resident_bytes
};

/** Read-only distance oracle over one (topology, metric) pair. */
class DistanceProvider
{
  public:
    virtual ~DistanceProvider();

    virtual int num_qubits() const = 0;

    /**
     * Flat row-major n*n storage when the provider is fully
     * materialized, nullptr otherwise.  The router keys its fast path
     * off this once per pass: non-null means the AVX2 gather kernels
     * (and the historical scalar loops) read it directly.
     */
    virtual const double *dense_data() const = 0;

    /** Pinned distance row from `src` to every physical qubit. */
    virtual DistanceRow row(int src) const = 0;

    /** Single distance; sparse providers resolve it through row(i). */
    virtual double at(int i, int j) const = 0;

    virtual DistanceProviderStats stats() const = 0;
};

/** Shared read-only provider handle (what DistanceCache hands out). */
using SharedDistanceProviderPtr = std::shared_ptr<const DistanceProvider>;

/** Fully materialized provider over a flat DistanceMatrix. */
class DenseDistanceProvider final : public DistanceProvider
{
  public:
    /** Owning: moves the matrix in. */
    explicit DenseDistanceProvider(DistanceMatrix matrix);

    /** Shared: aliases an already-shared matrix (no copy). */
    explicit DenseDistanceProvider(
        std::shared_ptr<const DistanceMatrix> matrix);

    /**
     * Non-owning view; the caller guarantees `matrix` outlives the
     * provider.  Used by the compatibility constructors that accept a
     * bare DistanceMatrix reference.
     */
    static DenseDistanceProvider borrowed(const DistanceMatrix &matrix);

    const DistanceMatrix &matrix() const { return *matrix_; }
    std::shared_ptr<const DistanceMatrix> shared_matrix() const
    {
        return matrix_;
    }

    int num_qubits() const override { return matrix_->num_qubits(); }
    const double *dense_data() const override { return matrix_->data(); }
    DistanceRow row(int src) const override;
    double at(int i, int j) const override { return (*matrix_)(i, j); }
    DistanceProviderStats stats() const override;

  private:
    std::shared_ptr<const DistanceMatrix> matrix_;
};

/**
 * Lazy per-source-row provider.  Rows are computed on first request
 * (BFS for hops, Dijkstra over the HA edge weights for the noise
 * metric), published under a mutex, and evicted LRU-first when the
 * optional byte budget is exceeded.  The adjacency (and edge weights)
 * are copied at construction, so the provider is self-contained and
 * safe to outlive the Backend it was built from.
 *
 * Thread safety: row()/at()/stats() are safe to call concurrently.
 * Two threads racing on the same cold row may both compute it; exactly
 * one result is published (and counted) — benign duplicated work
 * instead of a lock held across the whole computation.
 */
class SparseDistanceProvider final : public DistanceProvider
{
  public:
    /** Hop-distance rows over `cm` (BFS, sentinel = num_qubits + 1). */
    explicit SparseDistanceProvider(const CouplingMap &cm,
                                    std::size_t row_budget_bytes = 0);

    /** Noise-aware rows (paper eq. 3 weights, per-source Dijkstra). */
    SparseDistanceProvider(const Backend &backend, double alpha1,
                           double alpha2, double alpha3,
                           std::size_t row_budget_bytes = 0);

    int num_qubits() const override { return n_; }
    const double *dense_data() const override { return nullptr; }
    DistanceRow row(int src) const override;
    double at(int i, int j) const override { return row(i)[j]; }
    DistanceProviderStats stats() const override;

    /** Row payload bytes one cached row costs (n * sizeof(double)). */
    std::size_t row_bytes() const
    {
        return static_cast<std::size_t>(n_) * sizeof(double);
    }

  private:
    using RowStorage = std::shared_ptr<const std::vector<double>>;

    void init_adjacency(const CouplingMap &cm);
    std::vector<double> compute_row(int src) const;
    DistanceRow publish(int src, std::vector<double> values) const;

    int n_ = 0;
    bool noise_ = false;
    std::size_t budget_ = 0; ///< 0 = unbounded

    // CSR adjacency copied from the coupling map; w_ parallels adj_ for
    // the noise metric (empty for hops).
    std::vector<int> row_off_;
    std::vector<int> adj_;
    std::vector<double> w_;

    mutable std::mutex mu_;
    mutable std::vector<RowStorage> rows_;       ///< slot per source
    mutable std::list<int> lru_;                 ///< MRU at front
    mutable std::vector<std::list<int>::iterator> lru_pos_;
    mutable DistanceProviderStats stats_;
};

/**
 * Build the provider a (backend, metric) pair calls for: dense wraps
 * hop_distance()/noise_aware_distance() exactly as the historical
 * pipeline computed them; sparse builds the lazy row provider.
 */
SharedDistanceProviderPtr
make_distance_provider(const Backend &backend, bool noise_aware,
                       double alpha1, double alpha2, double alpha3,
                       bool sparse, std::size_t row_budget_bytes);

} // namespace nassc

#endif // NASSC_TOPO_DISTANCE_PROVIDER_H
