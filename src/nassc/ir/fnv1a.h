#ifndef NASSC_IR_FNV1A_H
#define NASSC_IR_FNV1A_H

/**
 * @file
 * The one FNV-1a implementation.
 *
 * Four subsystems hash with FNV-1a — backend/calibration fingerprints
 * (cache keys), batch job-seed derivation, and layout trial-seed
 * derivation — and each used to carry its own copy of the offset
 * basis, prime, and byte-mix loop.  The seed derivations in particular
 * must stay stable (they are part of the deterministic-output
 * contract), so they all fold through this single accumulator now.
 */

#include <cstdint>
#include <cstring>
#include <string>

namespace nassc {

/** Incremental FNV-1a accumulator over heterogeneous inputs. */
struct Fnv1a
{
    std::uint64_t h = 14695981039346656037ull; ///< offset basis

    void
    byte(unsigned char b)
    {
        h ^= b;
        h *= 1099511628211ull; ///< FNV prime
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            byte(static_cast<unsigned char>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<unsigned char>(v >> (8 * i)));
    }

    void
    f64(double x)
    {
        std::uint64_t v;
        std::memcpy(&v, &x, sizeof(v));
        u64(v);
    }

    void
    str(const std::string &s)
    {
        for (char c : s)
            byte(static_cast<unsigned char>(c));
    }

    std::uint64_t value() const { return h; }

    /** 64 -> 32 bit fold (xor-shift), for unsigned seed outputs. */
    std::uint32_t
    fold32() const
    {
        return static_cast<std::uint32_t>(h ^ (h >> 32));
    }
};

} // namespace nassc

#endif // NASSC_IR_FNV1A_H
