#include "nassc/ir/matrices.h"

#include <cmath>
#include <stdexcept>

#include "nassc/math/weyl.h"

namespace nassc {

bool
has_matrix1(const Gate &g)
{
    return is_one_qubit(g.kind);
}

bool
has_matrix2(const Gate &g)
{
    return is_two_qubit(g.kind) && is_unitary_op(g.kind);
}

Mat2
gate_matrix1(const Gate &g)
{
    switch (g.kind) {
      case OpKind::kId: return Mat2::identity();
      case OpKind::kX: return pauli_x();
      case OpKind::kY: return pauli_y();
      case OpKind::kZ: return pauli_z();
      case OpKind::kH: return hadamard();
      case OpKind::kS: return s_gate();
      case OpKind::kSdg: return sdg_gate();
      case OpKind::kT: return t_gate();
      case OpKind::kTdg: return tdg_gate();
      case OpKind::kSX: return sx_gate();
      case OpKind::kSXdg: return sxdg_gate();
      case OpKind::kRX: return rx_gate(g.params[0]);
      case OpKind::kRY: return ry_gate(g.params[0]);
      case OpKind::kRZ: return rz_gate(g.params[0]);
      case OpKind::kP: return phase_gate(g.params[0]);
      case OpKind::kU: return u3_gate(g.params[0], g.params[1], g.params[2]);
      default:
        throw std::invalid_argument(std::string("no 1q matrix for ") +
                                    op_name(g.kind));
    }
}

Mat4
controlled_mat(const Mat2 &u)
{
    // Basis index (t << 1) | c; control c = bit 0.
    Mat4 m;
    m(0, 0) = 1.0;
    m(2, 2) = 1.0;
    m(1, 1) = u(0, 0);
    m(1, 3) = u(0, 1);
    m(3, 1) = u(1, 0);
    m(3, 3) = u(1, 1);
    return m;
}

Mat4
gate_matrix2(const Gate &g)
{
    switch (g.kind) {
      case OpKind::kCX: return cx_mat();
      case OpKind::kCY: return controlled_mat(pauli_y());
      case OpKind::kCZ: return cz_mat();
      case OpKind::kCH: return controlled_mat(hadamard());
      case OpKind::kCP: return controlled_mat(phase_gate(g.params[0]));
      case OpKind::kCRX: return controlled_mat(rx_gate(g.params[0]));
      case OpKind::kCRY: return controlled_mat(ry_gate(g.params[0]));
      case OpKind::kCRZ: return controlled_mat(rz_gate(g.params[0]));
      case OpKind::kRZZ: {
        const Cx i(0.0, 1.0);
        double t = g.params[0] / 2.0;
        Mat4 m;
        m(0, 0) = std::exp(-i * t);
        m(1, 1) = std::exp(i * t);
        m(2, 2) = std::exp(i * t);
        m(3, 3) = std::exp(-i * t);
        return m;
      }
      case OpKind::kRXX:
        // exp(-i theta/2 XX) = N(-theta/2, 0, 0).
        return canonical_gate(-g.params[0] / 2.0, 0.0, 0.0);
      case OpKind::kSwap: return swap_mat();
      case OpKind::kISwap: return iswap_mat();
      default:
        throw std::invalid_argument(std::string("no 2q matrix for ") +
                                    op_name(g.kind));
    }
}

} // namespace nassc
