#ifndef NASSC_IR_DAG_H
#define NASSC_IR_DAG_H

/**
 * @file
 * Dependency DAG over the gates of a circuit.
 *
 * Node i represents gate i of the source circuit; an edge i -> j exists
 * when gate j is the next gate after i on one of i's wires.  The DAG is
 * immutable; consumers that "execute" gates (e.g. the routers) keep their
 * own frontier bookkeeping on top of it.
 */

#include <vector>

#include "nassc/ir/circuit.h"

namespace nassc {

/** Immutable gate-dependency DAG of a QuantumCircuit. */
class DagCircuit
{
  public:
    explicit DagCircuit(const QuantumCircuit &qc);

    int num_qubits() const { return num_qubits_; }
    int num_nodes() const { return static_cast<int>(gates_.size()); }

    const Gate &gate(int id) const { return gates_[id]; }

    /** Predecessor node per operand position (-1 when first on wire). */
    const std::vector<int> &preds(int id) const { return preds_[id]; }

    /** Successor node per operand position (-1 when last on wire). */
    const std::vector<int> &succs(int id) const { return succs_[id]; }

    /** Number of distinct predecessor nodes (for indegree counting). */
    int num_distinct_preds(int id) const { return distinct_preds_[id]; }

    /** Nodes with no predecessors, in source order. */
    const std::vector<int> &initial_front() const { return initial_front_; }

    /** First node on each wire (-1 for idle wires). */
    int wire_front(int qubit) const { return wire_front_[qubit]; }

    /** Last node on each wire (-1 for idle wires). */
    int wire_back(int qubit) const { return wire_back_[qubit]; }

    /** Nodes in a topological order (source order, which is topological). */
    std::vector<int> topological_order() const;

    /** Rebuild a flat circuit (identical to the source circuit). */
    QuantumCircuit to_circuit() const;

  private:
    int num_qubits_ = 0;
    std::vector<Gate> gates_;
    std::vector<std::vector<int>> preds_;
    std::vector<std::vector<int>> succs_;
    std::vector<int> distinct_preds_;
    std::vector<int> initial_front_;
    std::vector<int> wire_front_;
    std::vector<int> wire_back_;
};

} // namespace nassc

#endif // NASSC_IR_DAG_H
