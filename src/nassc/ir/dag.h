#ifndef NASSC_IR_DAG_H
#define NASSC_IR_DAG_H

/**
 * @file
 * Dependency DAG over the gates of a circuit.
 *
 * Node i represents gate i of the source circuit; an edge i -> j exists
 * when gate j is the next gate after i on one of i's wires.  The DAG is
 * immutable; consumers that "execute" gates (e.g. the routers) keep their
 * own frontier bookkeeping on top of it.
 *
 * Adjacency is stored CSR-style: one flat index array per view with a
 * per-node offset table, so the routers' hot loops (frontier updates,
 * extended-set BFS) walk contiguous memory instead of a
 * vector-of-vectors.  Two views exist per direction:
 *
 *  - preds(id)/succs(id): one entry per operand position, in operand
 *    order, -1 when the gate is first/last on that wire.  May repeat a
 *    node when two wires connect the same pair of gates.
 *  - distinct_preds(id)/distinct_succs(id): deduplicated neighbor nodes
 *    in ascending order, -1 entries dropped (what indegree counting and
 *    gate execution need).
 */

#include <vector>

#include "nassc/ir/circuit.h"

namespace nassc {

/** Non-owning view into a CSR index array. */
class IntSpan
{
  public:
    IntSpan() = default;
    IntSpan(const int *data, int size) : data_(data), size_(size) {}

    const int *begin() const { return data_; }
    const int *end() const { return data_ + size_; }
    int size() const { return size_; }
    bool empty() const { return size_ == 0; }
    int operator[](int i) const { return data_[i]; }
    int front() const { return data_[0]; }

  private:
    const int *data_ = nullptr;
    int size_ = 0;
};

/** Immutable gate-dependency DAG of a QuantumCircuit. */
class DagCircuit
{
  public:
    explicit DagCircuit(const QuantumCircuit &qc);

    int num_qubits() const { return num_qubits_; }
    int num_nodes() const { return static_cast<int>(gates_.size()); }

    const Gate &gate(int id) const { return gates_[id]; }

    /** Predecessor node per operand position (-1 when first on wire). */
    IntSpan
    preds(int id) const
    {
        return {pos_preds_.data() + pos_offsets_[id],
                pos_offsets_[id + 1] - pos_offsets_[id]};
    }

    /** Successor node per operand position (-1 when last on wire). */
    IntSpan
    succs(int id) const
    {
        return {pos_succs_.data() + pos_offsets_[id],
                pos_offsets_[id + 1] - pos_offsets_[id]};
    }

    /** Distinct predecessor nodes, ascending, no -1 entries. */
    IntSpan
    distinct_preds(int id) const
    {
        return {distinct_preds_.data() + dpred_offsets_[id],
                dpred_offsets_[id + 1] - dpred_offsets_[id]};
    }

    /** Distinct successor nodes, ascending, no -1 entries. */
    IntSpan
    distinct_succs(int id) const
    {
        return {distinct_succs_.data() + dsucc_offsets_[id],
                dsucc_offsets_[id + 1] - dsucc_offsets_[id]};
    }

    /** Number of distinct predecessor nodes (for indegree counting). */
    int
    num_distinct_preds(int id) const
    {
        return dpred_offsets_[id + 1] - dpred_offsets_[id];
    }

    /** Nodes with no predecessors, in source order. */
    const std::vector<int> &initial_front() const { return initial_front_; }

    /** First node on each wire (-1 for idle wires). */
    int wire_front(int qubit) const { return wire_front_[qubit]; }

    /** Last node on each wire (-1 for idle wires). */
    int wire_back(int qubit) const { return wire_back_[qubit]; }

    /** Nodes in a topological order (source order, which is topological). */
    std::vector<int> topological_order() const;

    /** Rebuild a flat circuit (identical to the source circuit). */
    QuantumCircuit to_circuit() const;

  private:
    int num_qubits_ = 0;
    std::vector<Gate> gates_;
    /** Shared offsets of the per-position views (one slot per operand). */
    std::vector<int> pos_offsets_;
    std::vector<int> pos_preds_;
    std::vector<int> pos_succs_;
    /** Deduplicated views (independent offsets; entries are sorted). */
    std::vector<int> dpred_offsets_;
    std::vector<int> distinct_preds_;
    std::vector<int> dsucc_offsets_;
    std::vector<int> distinct_succs_;
    std::vector<int> initial_front_;
    std::vector<int> wire_front_;
    std::vector<int> wire_back_;
};

} // namespace nassc

#endif // NASSC_IR_DAG_H
