#include "nassc/ir/op_kind.h"

#include <unordered_map>

namespace nassc {

const char *
op_name(OpKind k)
{
    switch (k) {
      case OpKind::kId: return "id";
      case OpKind::kX: return "x";
      case OpKind::kY: return "y";
      case OpKind::kZ: return "z";
      case OpKind::kH: return "h";
      case OpKind::kS: return "s";
      case OpKind::kSdg: return "sdg";
      case OpKind::kT: return "t";
      case OpKind::kTdg: return "tdg";
      case OpKind::kSX: return "sx";
      case OpKind::kSXdg: return "sxdg";
      case OpKind::kRX: return "rx";
      case OpKind::kRY: return "ry";
      case OpKind::kRZ: return "rz";
      case OpKind::kP: return "p";
      case OpKind::kU: return "u";
      case OpKind::kCX: return "cx";
      case OpKind::kCY: return "cy";
      case OpKind::kCZ: return "cz";
      case OpKind::kCH: return "ch";
      case OpKind::kCP: return "cp";
      case OpKind::kCRX: return "crx";
      case OpKind::kCRY: return "cry";
      case OpKind::kCRZ: return "crz";
      case OpKind::kRZZ: return "rzz";
      case OpKind::kRXX: return "rxx";
      case OpKind::kSwap: return "swap";
      case OpKind::kISwap: return "iswap";
      case OpKind::kCCX: return "ccx";
      case OpKind::kCCZ: return "ccz";
      case OpKind::kCSwap: return "cswap";
      case OpKind::kMCX: return "mcx";
      case OpKind::kBarrier: return "barrier";
      case OpKind::kMeasure: return "measure";
    }
    return "?";
}

std::optional<OpKind>
op_from_name(const std::string &name)
{
    static const std::unordered_map<std::string, OpKind> table = [] {
        std::unordered_map<std::string, OpKind> t;
        for (int i = 0; i <= static_cast<int>(OpKind::kMeasure); ++i) {
            OpKind k = static_cast<OpKind>(i);
            t[op_name(k)] = k;
        }
        // Common aliases.
        t["u3"] = OpKind::kU;
        t["u1"] = OpKind::kP;
        t["cnot"] = OpKind::kCX;
        t["toffoli"] = OpKind::kCCX;
        t["cphase"] = OpKind::kCP;
        return t;
    }();
    auto it = table.find(name);
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

int
op_arity(OpKind k)
{
    switch (k) {
      case OpKind::kMCX:
      case OpKind::kBarrier:
        return -1;
      case OpKind::kCCX:
      case OpKind::kCCZ:
      case OpKind::kCSwap:
        return 3;
      case OpKind::kCX:
      case OpKind::kCY:
      case OpKind::kCZ:
      case OpKind::kCH:
      case OpKind::kCP:
      case OpKind::kCRX:
      case OpKind::kCRY:
      case OpKind::kCRZ:
      case OpKind::kRZZ:
      case OpKind::kRXX:
      case OpKind::kSwap:
      case OpKind::kISwap:
        return 2;
      default:
        return 1;
    }
}

int
op_num_params(OpKind k)
{
    switch (k) {
      case OpKind::kRX:
      case OpKind::kRY:
      case OpKind::kRZ:
      case OpKind::kP:
      case OpKind::kCP:
      case OpKind::kCRX:
      case OpKind::kCRY:
      case OpKind::kCRZ:
      case OpKind::kRZZ:
      case OpKind::kRXX:
        return 1;
      case OpKind::kU:
        return 3;
      default:
        return 0;
    }
}

bool
is_one_qubit(OpKind k)
{
    return op_arity(k) == 1 && k != OpKind::kMeasure && k != OpKind::kBarrier;
}

bool
is_two_qubit(OpKind k)
{
    return op_arity(k) == 2;
}

bool
is_self_inverse(OpKind k)
{
    switch (k) {
      case OpKind::kId:
      case OpKind::kX:
      case OpKind::kY:
      case OpKind::kZ:
      case OpKind::kH:
      case OpKind::kCX:
      case OpKind::kCY:
      case OpKind::kCZ:
      case OpKind::kCH:
      case OpKind::kSwap:
      case OpKind::kCCX:
      case OpKind::kCCZ:
      case OpKind::kCSwap:
        return true;
      default:
        return false;
    }
}

bool
is_diagonal(OpKind k)
{
    switch (k) {
      case OpKind::kId:
      case OpKind::kZ:
      case OpKind::kS:
      case OpKind::kSdg:
      case OpKind::kT:
      case OpKind::kTdg:
      case OpKind::kRZ:
      case OpKind::kP:
      case OpKind::kCZ:
      case OpKind::kCP:
      case OpKind::kCRZ:
      case OpKind::kRZZ:
      case OpKind::kCCZ:
        return true;
      default:
        return false;
    }
}

bool
is_unitary_op(OpKind k)
{
    return k != OpKind::kBarrier && k != OpKind::kMeasure;
}

} // namespace nassc
