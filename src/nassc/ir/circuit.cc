#include "nassc/ir/circuit.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "nassc/ir/fnv1a.h"

namespace nassc {

QuantumCircuit::QuantumCircuit(int num_qubits) : num_qubits_(num_qubits)
{
    if (num_qubits < 0)
        throw std::invalid_argument("negative qubit count");
}

void
QuantumCircuit::append(Gate g)
{
    for (int q : g.qubits) {
        if (q < 0 || q >= num_qubits_)
            throw std::out_of_range("gate operand " + std::to_string(q) +
                                    " outside register of size " +
                                    std::to_string(num_qubits_));
    }
    gates_.push_back(std::move(g));
}

void
QuantumCircuit::compose(const QuantumCircuit &other)
{
    if (other.num_qubits_ > num_qubits_)
        throw std::invalid_argument("compose: register too small");
    for (const Gate &g : other.gates_)
        append(g);
}

void
QuantumCircuit::measure_all()
{
    for (int q = 0; q < num_qubits_; ++q)
        measure(q);
}

void
QuantumCircuit::barrier()
{
    std::vector<int> qs(num_qubits_);
    std::iota(qs.begin(), qs.end(), 0);
    append(Gate::barrier(std::move(qs)));
}

int
QuantumCircuit::depth() const
{
    std::vector<int> level(num_qubits_, 0);
    int out = 0;
    for (const Gate &g : gates_) {
        if (g.kind == OpKind::kBarrier) {
            // Barriers synchronize but do not add depth.
            int mx = 0;
            for (int q : g.qubits)
                mx = std::max(mx, level[q]);
            for (int q : g.qubits)
                level[q] = mx;
            continue;
        }
        int mx = 0;
        for (int q : g.qubits)
            mx = std::max(mx, level[q]);
        ++mx;
        for (int q : g.qubits)
            level[q] = mx;
        out = std::max(out, mx);
    }
    return out;
}

std::map<std::string, int>
QuantumCircuit::count_ops() const
{
    std::map<std::string, int> counts;
    for (const Gate &g : gates_)
        ++counts[op_name(g.kind)];
    return counts;
}

int
QuantumCircuit::count(OpKind k) const
{
    int n = 0;
    for (const Gate &g : gates_)
        if (g.kind == k)
            ++n;
    return n;
}

int
QuantumCircuit::count_2q() const
{
    int n = 0;
    for (const Gate &g : gates_)
        if (g.num_qubits() == 2 && is_unitary_op(g.kind))
            ++n;
    return n;
}

QuantumCircuit
QuantumCircuit::inverse() const
{
    QuantumCircuit inv(num_qubits_);
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
        if (it->kind == OpKind::kMeasure)
            continue;
        inv.append(it->inverse());
    }
    return inv;
}

QuantumCircuit
QuantumCircuit::without_non_unitary() const
{
    QuantumCircuit out(num_qubits_);
    for (const Gate &g : gates_)
        if (is_unitary_op(g.kind))
            out.append(g);
    return out;
}

std::uint64_t
QuantumCircuit::fingerprint() const
{
    Fnv1a fp;
    fp.u32(static_cast<std::uint32_t>(num_qubits_));
    fp.u64(gates_.size());
    for (const Gate &g : gates_) {
        fp.u32(static_cast<std::uint32_t>(g.kind));
        // Operand/parameter counts are mixed explicitly so a gate stream
        // cannot alias across width boundaries (e.g. cx(1,2) followed by
        // x(3) vs. a 3-operand gate over the same integers).
        fp.u32(static_cast<std::uint32_t>(g.qubits.size()));
        for (int q : g.qubits)
            fp.u32(static_cast<std::uint32_t>(q));
        fp.u32(static_cast<std::uint32_t>(g.params.size()));
        for (double p : g.params)
            fp.f64(p);
        fp.byte(static_cast<unsigned char>(
            static_cast<int>(g.swap_orient) + 2));
    }
    return fp.value();
}

std::size_t
QuantumCircuit::memory_bytes() const
{
    std::size_t bytes = sizeof(*this) + gates_.capacity() * sizeof(Gate);
    for (const Gate &g : gates_) {
        if (!g.qubits.is_inline())
            bytes += g.qubits.capacity() * sizeof(int);
        if (!g.params.is_inline())
            bytes += g.params.capacity() * sizeof(double);
    }
    return bytes;
}

std::string
QuantumCircuit::to_string() const
{
    std::ostringstream os;
    os << "circuit(" << num_qubits_ << " qubits, " << gates_.size()
       << " gates)\n";
    for (const Gate &g : gates_)
        os << "  " << g.to_string() << "\n";
    return os.str();
}

} // namespace nassc
