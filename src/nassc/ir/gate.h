#ifndef NASSC_IR_GATE_H
#define NASSC_IR_GATE_H

/**
 * @file
 * A single quantum operation instance: kind + qubit operands + parameters.
 */

#include <string>
#include <vector>

#include "nassc/ir/op_kind.h"
#include "nassc/ir/small_vec.h"

namespace nassc {

/**
 * Gate operand storage: inline capacity 2 covers every 1q/2q gate, so
 * routing (which only ever emits and copies <= 2q gates) never touches
 * the heap.  MCX controls and barriers spill, outside any hot loop.
 */
using QubitVec = SmallVec<int, 2>;
/** Parameter storage: inline capacity 3 covers kU, the widest kind. */
using ParamVec = SmallVec<double, 3>;

/** How a SWAP should be decomposed into three CNOTs. */
enum class SwapOrient : int8_t {
    kDefault = -1, ///< no preference; first CNOT control = first operand
    kFirst = 0,    ///< first CNOT control = first operand (explicit flag)
    kSecond = 1,   ///< first CNOT control = second operand
};

/** One gate in a circuit. */
struct Gate
{
    OpKind kind = OpKind::kId;
    QubitVec qubits;
    ParamVec params;

    /**
     * Decomposition orientation flag for SWAP gates, set by the NASSC
     * router when a commutation-based cancellation was identified
     * (paper Sec. IV-E, optimization-aware SWAP decomposition).
     */
    SwapOrient swap_orient = SwapOrient::kDefault;

    Gate() = default;
    Gate(OpKind k, QubitVec qs, ParamVec ps = {});

    /** @name Convenience factories. @{ */
    static Gate one_q(OpKind k, int q);
    static Gate one_q(OpKind k, int q, double param);
    static Gate u(int q, double theta, double phi, double lambda);
    static Gate two_q(OpKind k, int a, int b);
    static Gate two_q(OpKind k, int a, int b, double param);
    static Gate mcx(std::vector<int> controls, int target);
    static Gate measure(int q);
    static Gate barrier(std::vector<int> qs);
    /** @} */

    /** Number of qubit operands. */
    int num_qubits() const { return static_cast<int>(qubits.size()); }

    /** True if the gate touches qubit q. */
    bool acts_on(int q) const;

    /** The inverse gate (throws for measure). */
    Gate inverse() const;

    /** Human-readable rendering, e.g. "cx q2, q5". */
    std::string to_string() const;

    /** Structural equality on kind, qubits, and parameters (exact). */
    bool operator==(const Gate &other) const;
};

} // namespace nassc

#endif // NASSC_IR_GATE_H
