#include "nassc/ir/gate.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace nassc {

Gate::Gate(OpKind k, QubitVec qs, ParamVec ps)
    : kind(k), qubits(std::move(qs)), params(std::move(ps))
{
    int ar = op_arity(k);
    if (ar >= 0 && static_cast<int>(qubits.size()) != ar)
        throw std::invalid_argument(std::string("gate ") + op_name(k) +
                                    ": wrong operand count");
    if (static_cast<int>(params.size()) != op_num_params(k))
        throw std::invalid_argument(std::string("gate ") + op_name(k) +
                                    ": wrong parameter count");
    for (size_t i = 0; i < qubits.size(); ++i)
        for (size_t j = i + 1; j < qubits.size(); ++j)
            if (qubits[i] == qubits[j])
                throw std::invalid_argument(std::string("gate ") +
                                            op_name(k) +
                                            ": duplicate operand");
}

Gate
Gate::one_q(OpKind k, int q)
{
    return Gate(k, {q});
}

Gate
Gate::one_q(OpKind k, int q, double param)
{
    return Gate(k, {q}, {param});
}

Gate
Gate::u(int q, double theta, double phi, double lambda)
{
    return Gate(OpKind::kU, {q}, {theta, phi, lambda});
}

Gate
Gate::two_q(OpKind k, int a, int b)
{
    return Gate(k, {a, b});
}

Gate
Gate::two_q(OpKind k, int a, int b, double param)
{
    return Gate(k, {a, b}, {param});
}

Gate
Gate::mcx(std::vector<int> controls, int target)
{
    controls.push_back(target);
    return Gate(OpKind::kMCX, std::move(controls));
}

Gate
Gate::measure(int q)
{
    return Gate(OpKind::kMeasure, {q});
}

Gate
Gate::barrier(std::vector<int> qs)
{
    return Gate(OpKind::kBarrier, std::move(qs));
}

bool
Gate::acts_on(int q) const
{
    return std::find(qubits.begin(), qubits.end(), q) != qubits.end();
}

Gate
Gate::inverse() const
{
    if (kind == OpKind::kMeasure)
        throw std::logic_error("measure has no inverse");
    if (is_self_inverse(kind) || kind == OpKind::kBarrier ||
        kind == OpKind::kMCX)
        return *this;

    Gate g = *this;
    switch (kind) {
      case OpKind::kS: g.kind = OpKind::kSdg; break;
      case OpKind::kSdg: g.kind = OpKind::kS; break;
      case OpKind::kT: g.kind = OpKind::kTdg; break;
      case OpKind::kTdg: g.kind = OpKind::kT; break;
      case OpKind::kSX: g.kind = OpKind::kSXdg; break;
      case OpKind::kSXdg: g.kind = OpKind::kSX; break;
      case OpKind::kRX:
      case OpKind::kRY:
      case OpKind::kRZ:
      case OpKind::kP:
      case OpKind::kCP:
      case OpKind::kCRX:
      case OpKind::kCRY:
      case OpKind::kCRZ:
      case OpKind::kRZZ:
      case OpKind::kRXX:
        g.params[0] = -params[0];
        break;
      case OpKind::kU:
        // u(t, p, l)^-1 = u(-t, -l, -p)
        g.params = {-params[0], -params[2], -params[1]};
        break;
      case OpKind::kISwap:
        // No dedicated iswap_dg kind; callers should decompose first.
        throw std::logic_error("iswap inverse not representable as a "
                               "single gate; decompose first");
      default:
        break;
    }
    return g;
}

std::string
Gate::to_string() const
{
    std::ostringstream os;
    os << op_name(kind);
    if (!params.empty()) {
        os << "(";
        for (size_t i = 0; i < params.size(); ++i)
            os << params[i] << (i + 1 < params.size() ? ", " : "");
        os << ")";
    }
    os << " ";
    for (size_t i = 0; i < qubits.size(); ++i)
        os << "q" << qubits[i] << (i + 1 < qubits.size() ? ", " : "");
    return os.str();
}

bool
Gate::operator==(const Gate &other) const
{
    return kind == other.kind && qubits == other.qubits &&
           params == other.params;
}

} // namespace nassc
