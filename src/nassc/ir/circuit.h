#ifndef NASSC_IR_CIRCUIT_H
#define NASSC_IR_CIRCUIT_H

/**
 * @file
 * A flat quantum circuit: an ordered list of gates over n qubits.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nassc/ir/gate.h"

namespace nassc {

/** An ordered gate list over a fixed-size qubit register. */
class QuantumCircuit
{
  public:
    QuantumCircuit() = default;
    explicit QuantumCircuit(int num_qubits);

    int num_qubits() const { return num_qubits_; }
    size_t size() const { return gates_.size(); }
    bool empty() const { return gates_.empty(); }

    const std::vector<Gate> &gates() const { return gates_; }
    std::vector<Gate> &mutable_gates() { return gates_; }
    const Gate &gate(size_t i) const { return gates_[i]; }

    /** Append a gate, validating operand indices against the register. */
    void append(Gate g);

    /** Append every gate of `other` (registers must match). */
    void compose(const QuantumCircuit &other);

    /** @name Builder shorthands. @{ */
    void id(int q) { append(Gate::one_q(OpKind::kId, q)); }
    void x(int q) { append(Gate::one_q(OpKind::kX, q)); }
    void y(int q) { append(Gate::one_q(OpKind::kY, q)); }
    void z(int q) { append(Gate::one_q(OpKind::kZ, q)); }
    void h(int q) { append(Gate::one_q(OpKind::kH, q)); }
    void s(int q) { append(Gate::one_q(OpKind::kS, q)); }
    void sdg(int q) { append(Gate::one_q(OpKind::kSdg, q)); }
    void t(int q) { append(Gate::one_q(OpKind::kT, q)); }
    void tdg(int q) { append(Gate::one_q(OpKind::kTdg, q)); }
    void sx(int q) { append(Gate::one_q(OpKind::kSX, q)); }
    void sxdg(int q) { append(Gate::one_q(OpKind::kSXdg, q)); }
    void rx(double th, int q) { append(Gate::one_q(OpKind::kRX, q, th)); }
    void ry(double th, int q) { append(Gate::one_q(OpKind::kRY, q, th)); }
    void rz(double th, int q) { append(Gate::one_q(OpKind::kRZ, q, th)); }
    void p(double lam, int q) { append(Gate::one_q(OpKind::kP, q, lam)); }
    void u(double th, double ph, double lam, int q)
    {
        append(Gate::u(q, th, ph, lam));
    }
    void cx(int c, int t) { append(Gate::two_q(OpKind::kCX, c, t)); }
    void cy(int c, int t) { append(Gate::two_q(OpKind::kCY, c, t)); }
    void cz(int c, int t) { append(Gate::two_q(OpKind::kCZ, c, t)); }
    void ch(int c, int t) { append(Gate::two_q(OpKind::kCH, c, t)); }
    void cp(double lam, int c, int t)
    {
        append(Gate::two_q(OpKind::kCP, c, t, lam));
    }
    void crx(double th, int c, int t)
    {
        append(Gate::two_q(OpKind::kCRX, c, t, th));
    }
    void cry(double th, int c, int t)
    {
        append(Gate::two_q(OpKind::kCRY, c, t, th));
    }
    void crz(double th, int c, int t)
    {
        append(Gate::two_q(OpKind::kCRZ, c, t, th));
    }
    void rzz(double th, int a, int b)
    {
        append(Gate::two_q(OpKind::kRZZ, a, b, th));
    }
    void rxx(double th, int a, int b)
    {
        append(Gate::two_q(OpKind::kRXX, a, b, th));
    }
    void swap(int a, int b) { append(Gate::two_q(OpKind::kSwap, a, b)); }
    void iswap(int a, int b) { append(Gate::two_q(OpKind::kISwap, a, b)); }
    void ccx(int c0, int c1, int t)
    {
        append(Gate(OpKind::kCCX, {c0, c1, t}));
    }
    void ccz(int c0, int c1, int t)
    {
        append(Gate(OpKind::kCCZ, {c0, c1, t}));
    }
    void cswap(int c, int a, int b)
    {
        append(Gate(OpKind::kCSwap, {c, a, b}));
    }
    void mcx(const std::vector<int> &controls, int target)
    {
        append(Gate::mcx(controls, target));
    }
    void measure(int q) { append(Gate::measure(q)); }
    void measure_all();
    void barrier();
    /** @} */

    /** Circuit depth counting every non-barrier gate as one layer unit. */
    int depth() const;

    /** Number of gates of each mnemonic. */
    std::map<std::string, int> count_ops() const;

    /** Number of gates of one kind. */
    int count(OpKind k) const;

    /** Number of two-qubit gates of any kind. */
    int count_2q() const;

    /** Number of CX gates (the routing-overhead metric of the paper). */
    int cx_count() const { return count(OpKind::kCX); }

    /** The adjoint circuit (reversed order, inverted gates). */
    QuantumCircuit inverse() const;

    /** Remove measures/barriers (for unitary analysis). */
    QuantumCircuit without_non_unitary() const;

    /**
     * Order-sensitive FNV-1a structural fingerprint: register width plus
     * every gate's kind, operands, parameters (exact f64 bits), and SWAP
     * orientation flag, in stream order.  Two circuits share a
     * fingerprint iff they are gate-for-gate identical (modulo hash
     * collisions), so the serving layer uses it — together with
     * Backend::cache_key() and TranspileOptions::fingerprint() — as the
     * result-cache key.  Stable across platforms and releases; the exact
     * values are pinned in tests/test_fingerprint.cc.
     */
    std::uint64_t fingerprint() const;

    /**
     * Resident byte footprint of this circuit: the object itself, the
     * gate array's reserved storage, and every operand/parameter list
     * that spilled past its inline capacity.  The serving layer's
     * result cache uses it as the memory cost of a routed circuit, so
     * its byte budget bounds actual heap usage, not an entry count.
     */
    std::size_t memory_bytes() const;

    /** Multi-line textual dump, one gate per line. */
    std::string to_string() const;

  private:
    int num_qubits_ = 0;
    std::vector<Gate> gates_;
};

} // namespace nassc

#endif // NASSC_IR_CIRCUIT_H
