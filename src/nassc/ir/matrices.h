#ifndef NASSC_IR_MATRICES_H
#define NASSC_IR_MATRICES_H

/**
 * @file
 * Unitary matrices of gate instances.
 *
 * Two-qubit matrices follow the library convention: the gate's first
 * operand is basis bit 0 (see complex_mat.h).
 */

#include "nassc/ir/gate.h"
#include "nassc/math/complex_mat.h"

namespace nassc {

/** True if the gate has a fixed 2x2 matrix (all one-qubit unitaries). */
bool has_matrix1(const Gate &g);

/** True if the gate has a fixed 4x4 matrix (all two-qubit unitaries). */
bool has_matrix2(const Gate &g);

/** The 2x2 matrix of a one-qubit gate. @throws for other gates. */
Mat2 gate_matrix1(const Gate &g);

/** The 4x4 matrix of a two-qubit gate. @throws for other gates. */
Mat4 gate_matrix2(const Gate &g);

/** Controlled-U with the control on basis bit 0 and target on bit 1. */
Mat4 controlled_mat(const Mat2 &u);

} // namespace nassc

#endif // NASSC_IR_MATRICES_H
