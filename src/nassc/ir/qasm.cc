#include "nassc/ir/qasm.h"

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace nassc {

namespace {

// ---- tiny arithmetic expression evaluator ----------------------------------

class ExprParser
{
  public:
    explicit ExprParser(const std::string &s) : s_(s) {}

    double parse()
    {
        double v = expr();
        skip_ws();
        if (pos_ != s_.size())
            fail("trailing characters");
        return v;
    }

  private:
    double expr()
    {
        double v = term();
        for (;;) {
            skip_ws();
            if (peek() == '+') {
                ++pos_;
                v += term();
            } else if (peek() == '-') {
                ++pos_;
                v -= term();
            } else {
                return v;
            }
        }
    }

    double term()
    {
        double v = factor();
        for (;;) {
            skip_ws();
            if (peek() == '*') {
                ++pos_;
                v *= factor();
            } else if (peek() == '/') {
                ++pos_;
                v /= factor();
            } else {
                return v;
            }
        }
    }

    double factor()
    {
        skip_ws();
        char c = peek();
        if (c == '-') {
            ++pos_;
            return -factor();
        }
        if (c == '+') {
            ++pos_;
            return factor();
        }
        if (c == '(') {
            ++pos_;
            double v = expr();
            skip_ws();
            if (peek() != ')')
                fail("expected ')'");
            ++pos_;
            return v;
        }
        if (std::isalpha(static_cast<unsigned char>(c))) {
            size_t start = pos_;
            while (pos_ < s_.size() &&
                   std::isalpha(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
            std::string name = s_.substr(start, pos_ - start);
            if (name == "pi")
                return M_PI;
            fail("unknown identifier '" + name + "'");
        }
        // Number.
        size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                ((s_[pos_] == '+' || s_[pos_] == '-') && pos_ > start &&
                 (s_[pos_ - 1] == 'e' || s_[pos_ - 1] == 'E'))))
            ++pos_;
        if (pos_ == start)
            fail("expected number");
        return std::stod(s_.substr(start, pos_ - start));
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void skip_ws()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    [[noreturn]] void fail(const std::string &msg)
    {
        throw std::runtime_error("qasm expression error: " + msg + " in '" +
                                 s_ + "'");
    }

    const std::string &s_;
    size_t pos_ = 0;
};

double
eval_expr(const std::string &s)
{
    ExprParser p(s);
    return p.parse();
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : s) {
        if (c == '(')
            ++depth;
        if (c == ')')
            --depth;
        if (c == delim && depth == 0) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

std::string
to_qasm(const QuantumCircuit &qc)
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";
    os << "qreg q[" << qc.num_qubits() << "];\n";
    os << "creg c[" << qc.num_qubits() << "];\n";
    for (const Gate &g : qc.gates()) {
        if (g.kind == OpKind::kMeasure) {
            os << "measure q[" << g.qubits[0] << "] -> c[" << g.qubits[0]
               << "];\n";
            continue;
        }
        if (g.kind == OpKind::kBarrier) {
            os << "barrier";
            for (size_t i = 0; i < g.qubits.size(); ++i)
                os << (i ? "," : "") << " q[" << g.qubits[i] << "]";
            os << ";\n";
            continue;
        }
        if (g.kind == OpKind::kMCX && g.qubits.size() > 3)
            throw std::invalid_argument(
                "to_qasm: decompose mcx gates before export");
        std::string name = op_name(g.kind);
        if (g.kind == OpKind::kMCX)
            name = g.qubits.size() == 3 ? "ccx" : "cx";
        os << name;
        if (!g.params.empty()) {
            os << "(";
            std::ostringstream ps;
            ps.precision(17);
            for (size_t i = 0; i < g.params.size(); ++i)
                ps << (i ? "," : "") << g.params[i];
            os << ps.str() << ")";
        }
        for (size_t i = 0; i < g.qubits.size(); ++i)
            os << (i ? "," : "") << " q[" << g.qubits[i] << "]";
        os << ";\n";
    }
    return os.str();
}

QuantumCircuit
from_qasm(const std::string &text)
{
    // Strip comments, split on ';'.
    std::string clean;
    clean.reserve(text.size());
    for (size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
            while (i < text.size() && text[i] != '\n')
                ++i;
        }
        if (i < text.size())
            clean += text[i];
    }

    std::map<std::string, int> reg_offset;
    std::map<std::string, int> reg_size;
    int total_qubits = 0;
    std::vector<Gate> pending;

    auto resolve = [&](const std::string &operand_raw,
                       const std::string &stmt) {
        std::string operand = trim(operand_raw);
        size_t lb = operand.find('[');
        if (lb == std::string::npos)
            throw std::runtime_error(
                "qasm: whole-register operands unsupported in '" + stmt +
                "'");
        std::string reg = trim(operand.substr(0, lb));
        size_t rb = operand.find(']', lb);
        if (rb == std::string::npos)
            throw std::runtime_error("qasm: missing ']' in '" + stmt + "'");
        int idx = std::stoi(operand.substr(lb + 1, rb - lb - 1));
        auto it = reg_offset.find(reg);
        if (it == reg_offset.end())
            throw std::runtime_error("qasm: unknown register '" + reg +
                                     "' in '" + stmt + "'");
        if (idx < 0 || idx >= reg_size[reg])
            throw std::runtime_error("qasm: index out of range in '" + stmt +
                                     "'");
        return it->second + idx;
    };

    for (const std::string &raw : split(clean, ';')) {
        std::string stmt = trim(raw);
        if (stmt.empty())
            continue;
        if (stmt.rfind("OPENQASM", 0) == 0 || stmt.rfind("include", 0) == 0)
            continue;
        if (stmt.rfind("creg", 0) == 0)
            continue;
        if (stmt.rfind("qreg", 0) == 0) {
            size_t lb = stmt.find('[');
            size_t rb = stmt.find(']');
            if (lb == std::string::npos || rb == std::string::npos)
                throw std::runtime_error("qasm: bad qreg: " + stmt);
            std::string name = trim(stmt.substr(4, lb - 4));
            int size = std::stoi(stmt.substr(lb + 1, rb - lb - 1));
            reg_offset[name] = total_qubits;
            reg_size[name] = size;
            total_qubits += size;
            continue;
        }
        if (stmt.rfind("measure", 0) == 0) {
            size_t arrow = stmt.find("->");
            if (arrow == std::string::npos)
                throw std::runtime_error("qasm: bad measure: " + stmt);
            int q = resolve(stmt.substr(7, arrow - 7), stmt);
            pending.push_back(Gate::measure(q));
            continue;
        }
        if (stmt.rfind("barrier", 0) == 0) {
            std::vector<int> qs;
            for (const std::string &tok : split(stmt.substr(7), ','))
                qs.push_back(resolve(tok, stmt));
            pending.push_back(Gate::barrier(std::move(qs)));
            continue;
        }

        // Generic gate: name[(params)] operands.
        size_t name_end = 0;
        while (name_end < stmt.size() &&
               (std::isalnum(static_cast<unsigned char>(stmt[name_end])) ||
                stmt[name_end] == '_'))
            ++name_end;
        std::string name = stmt.substr(0, name_end);
        std::vector<double> params;
        size_t rest_begin = name_end;
        if (rest_begin < stmt.size() && stmt[rest_begin] == '(') {
            size_t close = rest_begin;
            int depth = 0;
            for (; close < stmt.size(); ++close) {
                if (stmt[close] == '(')
                    ++depth;
                if (stmt[close] == ')' && --depth == 0)
                    break;
            }
            if (close >= stmt.size())
                throw std::runtime_error("qasm: missing ')' in " + stmt);
            for (const std::string &p :
                 split(stmt.substr(rest_begin + 1, close - rest_begin - 1),
                       ','))
                params.push_back(eval_expr(p));
            rest_begin = close + 1;
        }
        std::vector<int> qs;
        for (const std::string &tok : split(stmt.substr(rest_begin), ','))
            qs.push_back(resolve(tok, stmt));

        auto kind = op_from_name(name);
        if (!kind) {
            if (name == "u2") {
                // u2(phi, lambda) = u(pi/2, phi, lambda)
                if (params.size() != 2)
                    throw std::runtime_error("qasm: u2 needs 2 params");
                pending.push_back(
                    Gate::u(qs.at(0), M_PI / 2.0, params[0], params[1]));
                continue;
            }
            throw std::runtime_error("qasm: unsupported gate '" + name +
                                     "'");
        }
        if (*kind == OpKind::kP && params.empty())
            throw std::runtime_error("qasm: p gate needs a parameter");
        pending.push_back(Gate(*kind, std::move(qs), std::move(params)));
    }

    QuantumCircuit qc(total_qubits);
    for (Gate &g : pending)
        qc.append(std::move(g));
    return qc;
}

} // namespace nassc
