#include "nassc/ir/dag.h"

#include <algorithm>
#include <numeric>

namespace nassc {

DagCircuit::DagCircuit(const QuantumCircuit &qc)
    : num_qubits_(qc.num_qubits()), gates_(qc.gates())
{
    const int n = static_cast<int>(gates_.size());
    wire_front_.assign(num_qubits_, -1);
    wire_back_.assign(num_qubits_, -1);

    pos_offsets_.resize(n + 1);
    pos_offsets_[0] = 0;
    for (int id = 0; id < n; ++id)
        pos_offsets_[id + 1] =
            pos_offsets_[id] + static_cast<int>(gates_[id].qubits.size());
    const int total = pos_offsets_[n];
    pos_preds_.assign(total, -1);
    pos_succs_.assign(total, -1);

    std::vector<int> last_on_wire(num_qubits_, -1);
    for (int id = 0; id < n; ++id) {
        const Gate &g = gates_[id];
        const int base = pos_offsets_[id];
        for (int pos = 0; pos < static_cast<int>(g.qubits.size()); ++pos) {
            int q = g.qubits[pos];
            int prev = last_on_wire[q];
            pos_preds_[base + pos] = prev;
            if (prev >= 0) {
                // Fill the matching successor slot of the predecessor.
                const Gate &pg = gates_[prev];
                const int pbase = pos_offsets_[prev];
                for (int ppos = 0;
                     ppos < static_cast<int>(pg.qubits.size()); ++ppos) {
                    if (pg.qubits[ppos] == q) {
                        pos_succs_[pbase + ppos] = id;
                        break;
                    }
                }
            } else {
                wire_front_[q] = id;
            }
            last_on_wire[q] = id;
        }
    }
    wire_back_ = last_on_wire;

    // Deduplicated views: sort each node's slot range, drop -1 and
    // repeats.  `scratch` is reused across nodes to avoid per-node
    // allocations during construction.
    dpred_offsets_.resize(n + 1);
    dsucc_offsets_.resize(n + 1);
    distinct_preds_.reserve(total);
    distinct_succs_.reserve(total);
    dpred_offsets_[0] = 0;
    dsucc_offsets_[0] = 0;
    std::vector<int> scratch;
    auto append_distinct = [&scratch](const std::vector<int> &flat, int lo,
                                      int hi, std::vector<int> &out) {
        scratch.assign(flat.begin() + lo, flat.begin() + hi);
        std::sort(scratch.begin(), scratch.end());
        int prev = -1;
        for (int v : scratch) {
            if (v >= 0 && v != prev)
                out.push_back(v);
            prev = v;
        }
    };
    for (int id = 0; id < n; ++id) {
        append_distinct(pos_preds_, pos_offsets_[id], pos_offsets_[id + 1],
                        distinct_preds_);
        dpred_offsets_[id + 1] = static_cast<int>(distinct_preds_.size());
        append_distinct(pos_succs_, pos_offsets_[id], pos_offsets_[id + 1],
                        distinct_succs_);
        dsucc_offsets_[id + 1] = static_cast<int>(distinct_succs_.size());
        if (dpred_offsets_[id + 1] == dpred_offsets_[id])
            initial_front_.push_back(id);
    }
}

std::vector<int>
DagCircuit::topological_order() const
{
    std::vector<int> order(gates_.size());
    std::iota(order.begin(), order.end(), 0);
    return order;
}

QuantumCircuit
DagCircuit::to_circuit() const
{
    QuantumCircuit qc(num_qubits_);
    for (const Gate &g : gates_)
        qc.append(g);
    return qc;
}

} // namespace nassc
