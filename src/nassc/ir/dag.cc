#include "nassc/ir/dag.h"

#include <algorithm>
#include <numeric>

namespace nassc {

DagCircuit::DagCircuit(const QuantumCircuit &qc)
    : num_qubits_(qc.num_qubits()), gates_(qc.gates())
{
    int n = static_cast<int>(gates_.size());
    preds_.resize(n);
    succs_.resize(n);
    distinct_preds_.assign(n, 0);
    wire_front_.assign(num_qubits_, -1);
    wire_back_.assign(num_qubits_, -1);

    std::vector<int> last_on_wire(num_qubits_, -1);
    for (int id = 0; id < n; ++id) {
        const Gate &g = gates_[id];
        size_t nq = g.qubits.size();
        preds_[id].assign(nq, -1);
        succs_[id].assign(nq, -1);
        for (size_t pos = 0; pos < nq; ++pos) {
            int q = g.qubits[pos];
            int prev = last_on_wire[q];
            preds_[id][pos] = prev;
            if (prev >= 0) {
                // Fill the matching successor slot of the predecessor.
                const Gate &pg = gates_[prev];
                for (size_t ppos = 0; ppos < pg.qubits.size(); ++ppos) {
                    if (pg.qubits[ppos] == q) {
                        succs_[prev][ppos] = id;
                        break;
                    }
                }
            } else {
                wire_front_[q] = id;
            }
            last_on_wire[q] = id;
        }
        // Count distinct predecessor nodes.
        std::vector<int> ps = preds_[id];
        std::sort(ps.begin(), ps.end());
        ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
        int cnt = 0;
        for (int p : ps)
            if (p >= 0)
                ++cnt;
        distinct_preds_[id] = cnt;
        if (cnt == 0)
            initial_front_.push_back(id);
    }
    wire_back_ = last_on_wire;
}

std::vector<int>
DagCircuit::topological_order() const
{
    std::vector<int> order(gates_.size());
    std::iota(order.begin(), order.end(), 0);
    return order;
}

QuantumCircuit
DagCircuit::to_circuit() const
{
    QuantumCircuit qc(num_qubits_);
    for (const Gate &g : gates_)
        qc.append(g);
    return qc;
}

} // namespace nassc
