#ifndef NASSC_IR_OP_KIND_H
#define NASSC_IR_OP_KIND_H

/**
 * @file
 * Enumeration of the quantum operations understood by the compiler.
 */

#include <cstdint>
#include <optional>
#include <string>

namespace nassc {

/** Kinds of quantum operations. */
enum class OpKind : uint8_t {
    // One-qubit gates.
    kId,
    kX,
    kY,
    kZ,
    kH,
    kS,
    kSdg,
    kT,
    kTdg,
    kSX,
    kSXdg,
    kRX,
    kRY,
    kRZ,
    kP,
    kU, // u3(theta, phi, lambda)
    // Two-qubit gates.
    kCX,
    kCY,
    kCZ,
    kCH,
    kCP,
    kCRX,
    kCRY,
    kCRZ,
    kRZZ,
    kRXX,
    kSwap,
    kISwap,
    // Three-or-more-qubit gates.
    kCCX,
    kCCZ,
    kCSwap,
    kMCX, // multi-controlled X; last operand is the target
    // Non-unitary / structural.
    kBarrier,
    kMeasure,
};

/** Lower-case OpenQASM-style mnemonic for an op kind. */
const char *op_name(OpKind k);

/** Inverse lookup of op_name; nullopt for unknown names. */
std::optional<OpKind> op_from_name(const std::string &name);

/**
 * Number of qubit operands of a kind, or -1 when variable (kMCX,
 * kBarrier).
 */
int op_arity(OpKind k);

/** Number of real parameters the op expects. */
int op_num_params(OpKind k);

/** True for fixed single-qubit unitary gates. */
bool is_one_qubit(OpKind k);

/** True for fixed two-qubit unitary gates. */
bool is_two_qubit(OpKind k);

/** True if the gate is its own inverse (the set used by
 *  CommutativeCancellation: h, x, y, z, cx, cy, cz plus swap/ccx/ccz). */
bool is_self_inverse(OpKind k);

/** True if the gate matrix is diagonal in the computational basis. */
bool is_diagonal(OpKind k);

/** True for unitary operations (everything except barrier/measure). */
bool is_unitary_op(OpKind k);

} // namespace nassc

#endif // NASSC_IR_OP_KIND_H
