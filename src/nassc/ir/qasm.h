#ifndef NASSC_IR_QASM_H
#define NASSC_IR_QASM_H

/**
 * @file
 * OpenQASM 2.0 subset import/export.
 *
 * Supported statements: OPENQASM, include, qreg, creg, barrier, measure,
 * and every gate in OpKind (plus the u1/u2/u3/cnot aliases).  Multiple
 * quantum registers are flattened into one contiguous index space in
 * declaration order.  Parameter expressions understand numbers, `pi`,
 * unary minus, and the + - * / operators with parentheses.
 */

#include <string>

#include "nassc/ir/circuit.h"

namespace nassc {

/** Serialize a circuit as OpenQASM 2.0 text. */
std::string to_qasm(const QuantumCircuit &qc);

/**
 * Parse OpenQASM 2.0 text into a circuit.
 * @throws std::runtime_error with a line-numbered message on bad input.
 */
QuantumCircuit from_qasm(const std::string &text);

} // namespace nassc

#endif // NASSC_IR_QASM_H
