#ifndef NASSC_IR_SMALL_VEC_H
#define NASSC_IR_SMALL_VEC_H

/**
 * @file
 * Small-buffer vector for gate operand/parameter storage.
 *
 * The router's hot path emits a Gate per SWAP decision and copies gates
 * when executing DAG nodes and moving 1q gates through flagged SWAPs.
 * With std::vector operands every one of those is one or two heap
 * allocations; SmallVec stores up to N elements inline (N = 2 covers
 * every routed gate's qubits, N = 3 every parameter list) and only
 * spills to the heap for wide gates (MCX operand lists, barriers),
 * which never appear inside the routing loop.  That makes Gate
 * construction, copy, and destruction allocation-free end-to-end for
 * the routing workload.
 *
 * The API is the std::vector subset the IR and passes use: iteration,
 * indexing, push_back, comparisons (including against std::vector, so
 * existing tests and map keys keep working), and lexicographic
 * ordering.  Restricted to trivially copyable T, which permits
 * memcpy-based growth and a trivial destructor for the inline case.
 *
 * Every heap spill bumps a process-wide counter (heap_spills()); the
 * allocation-freedom tests assert the counter stays flat across a
 * routing pass.
 */

#include <atomic>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <ostream>
#include <vector>

namespace nassc {

template <typename T, std::size_t N>
class SmallVec
{
    static_assert(std::is_trivially_copyable<T>::value,
                  "SmallVec requires trivially copyable elements");
    static_assert(N >= 1, "inline capacity must be at least 1");

  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    SmallVec() = default;

    SmallVec(std::initializer_list<T> init) { append_range(init.begin(), init.end()); }

    template <typename It>
    SmallVec(It first, It last)
    {
        append_range(first, last);
    }

    /** Implicit std::vector conversion keeps existing call sites working. */
    SmallVec(const std::vector<T> &v) { append_range(v.begin(), v.end()); }

    SmallVec(const SmallVec &o) { append_range(o.begin(), o.end()); }

    SmallVec(SmallVec &&o) noexcept
    {
        if (o.on_heap()) {
            storage_.heap = o.storage_.heap;
            cap_ = o.cap_;
            size_ = o.size_;
            o.cap_ = static_cast<std::uint32_t>(N);
            o.size_ = 0;
        } else {
            std::memcpy(storage_.inl, o.storage_.inl, o.size_ * sizeof(T));
            size_ = o.size_;
            o.size_ = 0;
        }
    }

    SmallVec &
    operator=(const SmallVec &o)
    {
        if (this != &o) {
            clear();
            append_range(o.begin(), o.end());
        }
        return *this;
    }

    SmallVec &
    operator=(SmallVec &&o) noexcept
    {
        if (this != &o) {
            release();
            if (o.on_heap()) {
                storage_.heap = o.storage_.heap;
                cap_ = o.cap_;
                size_ = o.size_;
                o.cap_ = static_cast<std::uint32_t>(N);
                o.size_ = 0;
            } else {
                cap_ = static_cast<std::uint32_t>(N);
                std::memcpy(storage_.inl, o.storage_.inl,
                            o.size_ * sizeof(T));
                size_ = o.size_;
                o.size_ = 0;
            }
        }
        return *this;
    }

    SmallVec &
    operator=(std::initializer_list<T> init)
    {
        clear();
        append_range(init.begin(), init.end());
        return *this;
    }

    ~SmallVec() { release(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return cap_; }
    /** True while the elements live in the inline buffer. */
    bool is_inline() const { return !on_heap(); }

    T *data() { return on_heap() ? storage_.heap : storage_.inl; }
    const T *
    data() const
    {
        return on_heap() ? storage_.heap : storage_.inl;
    }

    iterator begin() { return data(); }
    iterator end() { return data() + size_; }
    const_iterator begin() const { return data(); }
    const_iterator end() const { return data() + size_; }

    T &operator[](std::size_t i) { return data()[i]; }
    const T &operator[](std::size_t i) const { return data()[i]; }

    T &front() { return data()[0]; }
    const T &front() const { return data()[0]; }
    T &back() { return data()[size_ - 1]; }
    const T &back() const { return data()[size_ - 1]; }

    void
    push_back(const T &v)
    {
        if (size_ == cap_) {
            // v may alias an element of this vector; grow() frees the
            // old buffer, so copy the value out first (std::vector
            // guarantees this pattern, so must we).
            T tmp = v;
            grow(size_ + 1);
            data()[size_++] = tmp;
            return;
        }
        data()[size_++] = v;
    }

    void pop_back() { --size_; }

    /** Keeps the current buffer (inline or heap), like std::vector. */
    void clear() { size_ = 0; }

    void
    reserve(std::size_t n)
    {
        if (n > cap_)
            grow(n);
    }

    std::vector<T> to_vector() const { return std::vector<T>(begin(), end()); }

    /**
     * Process-wide count of SmallVec heap spills.  Monotonic; tests
     * snapshot it around a routing pass to prove the hot path never
     * leaves the inline buffers.
     */
    static std::uint64_t
    heap_spills()
    {
        return spill_counter().load(std::memory_order_relaxed);
    }

    friend bool
    operator==(const SmallVec &a, const SmallVec &b)
    {
        if (a.size_ != b.size_)
            return false;
        for (std::size_t i = 0; i < a.size_; ++i)
            if (!(a[i] == b[i]))
                return false;
        return true;
    }

    friend bool operator!=(const SmallVec &a, const SmallVec &b) { return !(a == b); }

    /** Lexicographic; lets (kind, qubits) keep working as a map key. */
    friend bool
    operator<(const SmallVec &a, const SmallVec &b)
    {
        const std::size_t n = a.size_ < b.size_ ? a.size_ : b.size_;
        for (std::size_t i = 0; i < n; ++i) {
            if (a[i] < b[i])
                return true;
            if (b[i] < a[i])
                return false;
        }
        return a.size_ < b.size_;
    }

    friend bool
    operator==(const SmallVec &a, const std::vector<T> &b)
    {
        if (a.size_ != b.size())
            return false;
        for (std::size_t i = 0; i < a.size_; ++i)
            if (!(a[i] == b[i]))
                return false;
        return true;
    }

    friend bool operator==(const std::vector<T> &a, const SmallVec &b) { return b == a; }
    friend bool operator!=(const SmallVec &a, const std::vector<T> &b) { return !(a == b); }
    friend bool operator!=(const std::vector<T> &a, const SmallVec &b) { return !(b == a); }

    friend std::ostream &
    operator<<(std::ostream &os, const SmallVec &v)
    {
        os << "[";
        for (std::size_t i = 0; i < v.size_; ++i)
            os << v[i] << (i + 1 < v.size_ ? ", " : "");
        return os << "]";
    }

  private:
    bool on_heap() const { return cap_ > N; }

    static std::atomic<std::uint64_t> &
    spill_counter()
    {
        static std::atomic<std::uint64_t> counter{0};
        return counter;
    }

    void
    grow(std::size_t need)
    {
        std::size_t new_cap = cap_ * 2;
        if (new_cap < need)
            new_cap = need;
        T *heap = static_cast<T *>(::operator new(new_cap * sizeof(T)));
        std::memcpy(heap, data(), size_ * sizeof(T));
        release();
        storage_.heap = heap;
        cap_ = static_cast<std::uint32_t>(new_cap);
        spill_counter().fetch_add(1, std::memory_order_relaxed);
    }

    void
    release()
    {
        if (on_heap()) {
            ::operator delete(storage_.heap);
            cap_ = static_cast<std::uint32_t>(N);
        }
    }

    template <typename It>
    void
    append_range(It first, It last)
    {
        for (; first != last; ++first)
            push_back(*first);
    }

    union Storage {
        T inl[N];
        T *heap;
        Storage() {}
    } storage_;
    std::uint32_t size_ = 0;
    std::uint32_t cap_ = static_cast<std::uint32_t>(N);
};

} // namespace nassc

#endif // NASSC_IR_SMALL_VEC_H
