#ifndef NASSC_CIRCUITS_LIBRARY_H
#define NASSC_CIRCUITS_LIBRARY_H

/**
 * @file
 * Benchmark circuit generators (paper Sec. V).
 *
 * Grover / VQE / BV / QFT / QPE / Adder / Multiplier follow the standard
 * textbook constructions the paper's benchmark suite draws from ([39],
 * Qiskit circuit library, QASMBench).  The RevLib netlists (sqn_258,
 * rd84_253, co14_215, sym9_193, mod5mils_65, mod5d2_64, decod24-v2_43)
 * are not redistributable, so deterministic synthetic multi-controlled-
 * Toffoli networks of matching width and CNOT scale stand in for them;
 * see DESIGN.md ("Substitutions").
 */

#include <cstdint>
#include <string>
#include <vector>

#include "nassc/ir/circuit.h"

namespace nassc {

/**
 * Grover search over n qubits with an all-ones phase oracle.
 * @param iterations number of Grover iterations; -1 picks a size-scaled
 *        default that matches the paper's circuit scale.
 */
QuantumCircuit grover(int n, int iterations = -1);

/**
 * Hardware-efficient VQE ansatz: RY layers with *full* CX entanglement
 * (reps * n(n-1)/2 CNOTs; n=8, reps=3 gives exactly the paper's 84).
 */
QuantumCircuit vqe_full(int n, int reps = 3, unsigned seed = 1);

/** Bernstein-Vazirani over n qubits (n-1 data + 1 target). */
QuantumCircuit bernstein_vazirani(int n, uint64_t secret);

/** Quantum Fourier transform (no terminal qubit-reversal swaps). */
QuantumCircuit qft(int n);

/**
 * Quantum phase estimation with n-1 counting qubits and one eigenstate
 * qubit of a phase gate with the given phase.
 */
QuantumCircuit qpe(int n, double phase = 2.0 * 3.14159265358979 * 0.3125);

/** Cuccaro ripple-carry adder on `bits`-bit operands (2*bits+2 qubits). */
QuantumCircuit cuccaro_adder(int bits);

/** Shift-and-add multiplier (bits + bits + 2*bits + 1 qubits). */
QuantumCircuit multiplier(int bits);

/**
 * Deterministic synthetic reversible MCT network: `gates` multi-
 * controlled X gates with control counts in [min_controls, max_controls]
 * drawn from a seeded generator, interleaved with CX/X gates.
 */
QuantumCircuit mct_network(int qubits, int gates, unsigned seed,
                           int min_controls, int max_controls);

/** @name RevLib-style substitutes used in the evaluation. @{ */
QuantumCircuit sqn_258();     ///< 10 qubits, deep MCT cascade
QuantumCircuit rd84_253();    ///< 12 qubits
QuantumCircuit co14_215();    ///< 15 qubits
QuantumCircuit sym9_193();    ///< 11 qubits, deepest
QuantumCircuit mod5mils_65(); ///< 5 qubits (Fig. 11)
QuantumCircuit mod5d2_64();   ///< 5 qubits (Fig. 11)
QuantumCircuit decod24_v2_43(); ///< 4 qubits (Fig. 11)
/** @} */

/** GHZ state preparation (H + CX chain). */
QuantumCircuit ghz(int n);

/**
 * QAOA MaxCut ansatz on a seeded random 3-regular-ish graph: p rounds of
 * per-edge ZZ interactions and X-mixer rotations.  Routing-heavy, like
 * the NISQ workloads the paper's introduction motivates.
 */
QuantumCircuit qaoa_maxcut(int n, int rounds = 2, unsigned seed = 5);

/**
 * Hardware-efficient VQE with *linear* entanglement (cheaper sibling of
 * vqe_full, useful for topology ablations).
 */
QuantumCircuit vqe_linear(int n, int reps = 3, unsigned seed = 1);

/**
 * Brick-work circuit of seeded random SU(4) blocks over adjacent pairs —
 * a worst case for block resynthesis (every block already needs 3 CNOTs).
 */
QuantumCircuit random_su4_circuit(int n, int layers, unsigned seed);

/** One named benchmark. */
struct BenchmarkCase
{
    std::string name;
    QuantumCircuit circuit;
};

/** The 15 benchmarks of Tables I-IV, in table order. */
std::vector<BenchmarkCase> table_benchmarks();

/** The five small benchmarks of Fig. 11. */
std::vector<BenchmarkCase> fig11_benchmarks();

/** Look up any benchmark by name (tables + fig11). */
QuantumCircuit benchmark_by_name(const std::string &name);

} // namespace nassc

#endif // NASSC_CIRCUITS_LIBRARY_H
