#include "nassc/circuits/library.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace nassc {

namespace {

/** Multi-controlled Z on all n qubits (phase flip of |1...1>). */
void
mcz_all(QuantumCircuit &qc, int n)
{
    if (n == 1) {
        qc.z(0);
        return;
    }
    if (n == 2) {
        qc.cz(0, 1);
        return;
    }
    if (n == 3) {
        qc.ccz(0, 1, 2);
        return;
    }
    std::vector<int> controls;
    for (int i = 0; i + 1 < n; ++i)
        controls.push_back(i);
    // h . mcx . h == mcz on the last qubit.
    qc.h(n - 1);
    qc.mcx(controls, n - 1);
    qc.h(n - 1);
}

} // namespace

QuantumCircuit
grover(int n, int iterations)
{
    if (n < 2)
        throw std::invalid_argument("grover needs >= 2 qubits");
    if (iterations < 0) {
        // Scaled-down iteration counts keep the circuits at the paper's
        // benchmark scale while preserving a dominant amplitude peak.
        iterations = n <= 4 ? 2 : 1;
    }
    QuantumCircuit qc(n);
    for (int q = 0; q < n; ++q)
        qc.h(q);
    for (int it = 0; it < iterations; ++it) {
        // Oracle: phase-flip |1...1>.
        mcz_all(qc, n);
        // Diffuser.
        for (int q = 0; q < n; ++q)
            qc.h(q);
        for (int q = 0; q < n; ++q)
            qc.x(q);
        mcz_all(qc, n);
        for (int q = 0; q < n; ++q)
            qc.x(q);
        for (int q = 0; q < n; ++q)
            qc.h(q);
    }
    return qc;
}

QuantumCircuit
vqe_full(int n, int reps, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    QuantumCircuit qc(n);
    for (int r = 0; r < reps; ++r) {
        for (int q = 0; q < n; ++q)
            qc.ry(ang(rng), q);
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j)
                qc.cx(i, j);
    }
    for (int q = 0; q < n; ++q)
        qc.ry(ang(rng), q);
    return qc;
}

QuantumCircuit
bernstein_vazirani(int n, uint64_t secret)
{
    QuantumCircuit qc(n);
    int target = n - 1;
    for (int q = 0; q < target; ++q)
        qc.h(q);
    qc.x(target);
    qc.h(target);
    for (int q = 0; q < target; ++q)
        if (secret & (uint64_t(1) << q))
            qc.cx(q, target);
    for (int q = 0; q < target; ++q)
        qc.h(q);
    // Uncompute the |-> ancilla so the output is fully deterministic
    // (needed by the Fig. 11 success-rate protocol).
    qc.h(target);
    qc.x(target);
    return qc;
}

QuantumCircuit
qft(int n)
{
    QuantumCircuit qc(n);
    for (int i = n - 1; i >= 0; --i) {
        qc.h(i);
        for (int j = i - 1; j >= 0; --j)
            qc.cp(M_PI / std::pow(2.0, i - j), j, i);
    }
    return qc;
}

QuantumCircuit
qpe(int n, double phase)
{
    int counting = n - 1;
    int target = n - 1; // eigenstate wire is the last qubit
    QuantumCircuit qc(n);
    qc.x(target); // |1> eigenstate of the phase gate
    for (int q = 0; q < counting; ++q)
        qc.h(q);
    // Controlled powers U^{2^q}, U = P(phase).  qft() realizes the DFT
    // composed with a bit reversal (no terminal swaps), so assigning
    // wire q the weight 2^{counting-1-q} makes qft().inverse() read the
    // phase out directly, swap-free.
    for (int q = 0; q < counting; ++q)
        qc.cp(phase * std::pow(2.0, counting - 1 - q), q, target);
    QuantumCircuit iqft = qft(counting).inverse();
    for (const Gate &g : iqft.gates())
        qc.append(g);
    return qc;
}

QuantumCircuit
cuccaro_adder(int bits)
{
    // Registers: a[0..bits-1], b[0..bits-1], carry-in c0, carry-out z.
    // Layout: a_i = i, b_i = bits + i, c0 = 2*bits, z = 2*bits + 1.
    int n = 2 * bits + 2;
    QuantumCircuit qc(n);
    auto a = [&](int i) { return i; };
    auto b = [&](int i) { return bits + i; };
    int c0 = 2 * bits;
    int z = 2 * bits + 1;

    auto maj = [&](int x, int y, int w) {
        qc.cx(w, y);
        qc.cx(w, x);
        qc.ccx(x, y, w);
    };
    auto uma = [&](int x, int y, int w) {
        qc.ccx(x, y, w);
        qc.cx(w, x);
        qc.cx(x, y);
    };

    maj(c0, b(0), a(0));
    for (int i = 1; i < bits; ++i)
        maj(a(i - 1), b(i), a(i));
    qc.cx(a(bits - 1), z);
    for (int i = bits - 1; i >= 1; --i)
        uma(a(i - 1), b(i), a(i));
    uma(c0, b(0), a(0));
    return qc;
}

QuantumCircuit
multiplier(int bits)
{
    // p += a * b via controlled ripple additions of shifted `a`.
    // Registers: a[bits], b[bits], p[2*bits], one carry ancilla.
    int n = 4 * bits + 1;
    QuantumCircuit qc(n);
    auto a = [&](int i) { return i; };
    auto b = [&](int i) { return bits + i; };
    auto p = [&](int i) { return 2 * bits + i; };
    int carry = 4 * bits;

    // Prepare nontrivial operands so simulation outputs are interesting:
    // a = 0b11..1, b = 0b10..1.
    for (int i = 0; i < bits; ++i)
        qc.x(a(i));
    qc.x(b(0));
    qc.x(b(bits - 1));

    // Controlled (on b_j) addition of a << j into p, Toffoli ripple.
    for (int j = 0; j < bits; ++j) {
        for (int i = 0; i < bits; ++i) {
            int tgt = p(i + j);
            // carry = a_i & b_j & p_tgt propagation (simplified ripple:
            // compute carry into ancilla, add, uncompute).
            if (i + j + 1 < 2 * bits) {
                qc.ccx(a(i), b(j), carry);
                qc.ccx(carry, tgt, p(i + j + 1));
                qc.ccx(a(i), b(j), carry);
            }
            qc.ccx(a(i), b(j), tgt);
        }
    }
    return qc;
}

QuantumCircuit
mct_network(int qubits, int gates, unsigned seed, int min_controls,
            int max_controls)
{
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> nc(min_controls, max_controls);
    std::uniform_int_distribution<int> qpick(0, qubits - 1);
    std::uniform_int_distribution<int> kindpick(0, 9);

    QuantumCircuit qc(qubits);
    for (int g = 0; g < gates; ++g) {
        int kind = kindpick(rng);
        if (kind < 2) {
            // Sprinkle X / CX gates like RevLib netlists do.
            int t = qpick(rng);
            if (kind == 0) {
                qc.x(t);
            } else {
                int c = qpick(rng);
                if (c == t)
                    c = (c + 1) % qubits;
                qc.cx(c, t);
            }
            continue;
        }
        int k = std::min(nc(rng), qubits - 1);
        // Draw k distinct controls plus a target.
        std::vector<int> pool(qubits);
        for (int i = 0; i < qubits; ++i)
            pool[i] = i;
        std::shuffle(pool.begin(), pool.end(), rng);
        std::vector<int> controls(pool.begin(), pool.begin() + k);
        int target = pool[k];
        qc.mcx(controls, target);
    }
    return qc;
}

QuantumCircuit
sqn_258()
{
    return mct_network(10, 155, 258, 2, 5);
}

QuantumCircuit
rd84_253()
{
    return mct_network(12, 190, 253, 2, 5);
}

QuantumCircuit
co14_215()
{
    return mct_network(15, 200, 215, 2, 6);
}

QuantumCircuit
sym9_193()
{
    return mct_network(11, 490, 193, 2, 5);
}

QuantumCircuit
mod5mils_65()
{
    // mod-5 style cascade: 5 wires, short CX/CCX network, deterministic
    // classical action (substitute for RevLib mod5mils_65).
    QuantumCircuit qc(5);
    qc.x(4);
    qc.cx(0, 4);
    qc.ccx(1, 2, 4);
    qc.cx(2, 3);
    qc.ccx(0, 3, 4);
    qc.cx(1, 2);
    qc.ccx(2, 4, 3);
    qc.cx(4, 0);
    qc.ccx(0, 1, 2);
    qc.cx(3, 4);
    return qc;
}

QuantumCircuit
mod5d2_64()
{
    QuantumCircuit qc(5);
    qc.x(0);
    qc.cx(0, 1);
    qc.ccx(1, 2, 3);
    qc.cx(3, 4);
    qc.ccx(0, 4, 2);
    qc.cx(2, 3);
    qc.ccx(3, 4, 0);
    qc.cx(1, 0);
    qc.ccx(0, 2, 4);
    qc.cx(4, 1);
    qc.cx(0, 3);
    return qc;
}

QuantumCircuit
decod24_v2_43()
{
    // 2-to-4 decoder-style reversible circuit on 4 wires.
    QuantumCircuit qc(4);
    qc.x(2);
    qc.cx(0, 2);
    qc.ccx(0, 1, 3);
    qc.cx(1, 3);
    qc.ccx(1, 2, 0);
    qc.cx(2, 1);
    qc.ccx(0, 3, 2);
    qc.cx(3, 0);
    qc.cx(1, 2);
    return qc;
}

QuantumCircuit
ghz(int n)
{
    QuantumCircuit qc(n);
    qc.h(0);
    for (int i = 1; i < n; ++i)
        qc.cx(i - 1, i);
    return qc;
}

QuantumCircuit
qaoa_maxcut(int n, int rounds, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> ang(0.1, M_PI - 0.1);
    std::uniform_int_distribution<int> pick(0, n - 1);

    // Seeded pseudo-random graph: a ring plus n/2 chords.
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < n; ++i)
        edges.emplace_back(i, (i + 1) % n);
    for (int k = 0; k < n / 2; ++k) {
        int a = pick(rng), b = pick(rng);
        if (a != b)
            edges.emplace_back(std::min(a, b), std::max(a, b));
    }

    QuantumCircuit qc(n);
    for (int q = 0; q < n; ++q)
        qc.h(q);
    for (int r = 0; r < rounds; ++r) {
        double gamma = ang(rng), beta = ang(rng);
        for (auto [a, b] : edges)
            qc.rzz(gamma, a, b);
        for (int q = 0; q < n; ++q)
            qc.rx(2.0 * beta, q);
    }
    return qc;
}

QuantumCircuit
vqe_linear(int n, int reps, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    QuantumCircuit qc(n);
    for (int r = 0; r < reps; ++r) {
        for (int q = 0; q < n; ++q)
            qc.ry(ang(rng), q);
        for (int i = 0; i + 1 < n; ++i)
            qc.cx(i, i + 1);
    }
    for (int q = 0; q < n; ++q)
        qc.ry(ang(rng), q);
    return qc;
}

QuantumCircuit
random_su4_circuit(int n, int layers, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    QuantumCircuit qc(n);
    for (int l = 0; l < layers; ++l) {
        int offset = l % 2;
        for (int i = offset; i + 1 < n; i += 2) {
            // Generic SU(4): 3 CNOTs with single-qubit dressing.
            for (int q : {i, i + 1}) {
                qc.rz(ang(rng), q);
                qc.ry(ang(rng), q);
                qc.rz(ang(rng), q);
            }
            for (int k = 0; k < 3; ++k) {
                qc.cx(i, i + 1);
                qc.ry(ang(rng), i);
                qc.rz(ang(rng), i + 1);
            }
        }
    }
    return qc;
}

std::vector<BenchmarkCase>
table_benchmarks()
{
    std::vector<BenchmarkCase> out;
    out.push_back({"grover_n4", grover(4)});
    out.push_back({"grover_n6", grover(6)});
    out.push_back({"grover_n8", grover(8)});
    out.push_back({"vqe_n8", vqe_full(8)});
    out.push_back({"vqe_n12", vqe_full(12)});
    out.push_back({"bv_n19", bernstein_vazirani(19, (uint64_t(1) << 18) - 1)});
    out.push_back({"qft_n15", qft(15)});
    out.push_back({"qft_n20", qft(20)});
    out.push_back({"qpe_n9", qpe(9)});
    out.push_back({"adder_n10", cuccaro_adder(4)});
    out.push_back({"multiplier_n25", multiplier(6)});
    out.push_back({"sqn_258", sqn_258()});
    out.push_back({"rd84_253", rd84_253()});
    out.push_back({"co14_215", co14_215()});
    out.push_back({"sym9_193", sym9_193()});
    return out;
}

std::vector<BenchmarkCase>
fig11_benchmarks()
{
    std::vector<BenchmarkCase> out;
    out.push_back({"bv_n5", bernstein_vazirani(5, 0b1101)});
    out.push_back({"mod5mils_65", mod5mils_65()});
    out.push_back({"decod24_v2_43", decod24_v2_43()});
    out.push_back({"mod5d2_64", mod5d2_64()});
    out.push_back({"grover_n4", grover(4)});
    return out;
}

QuantumCircuit
benchmark_by_name(const std::string &name)
{
    for (auto &c : table_benchmarks())
        if (c.name == name)
            return c.circuit;
    for (auto &c : fig11_benchmarks())
        if (c.name == name)
            return c.circuit;
    throw std::invalid_argument("unknown benchmark: " + name);
}

} // namespace nassc
