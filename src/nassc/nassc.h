#ifndef NASSC_NASSC_H
#define NASSC_NASSC_H

/**
 * @file
 * Umbrella header: the whole public NASSC API in one include.
 *
 *   #include "nassc/nassc.h"
 *
 * Layered bottom-up (each group only depends on the ones above it):
 *
 *   ir/        gate/circuit IR, DAG view, QASM codec, fingerprinting
 *   circuits/  benchmark circuit generators (GHZ, QFT, BV, VQE, QAOA…)
 *   topo/      device topologies, calibration, distance matrices
 *   synth/     1q/2q/mct resynthesis primitives
 *   passes/    optimization + lowering passes
 *   route/     SABRE / NASSC routing and layout search
 *   sim/       statevector/unitary simulation and equivalence checks
 *   service/   scheduler, caches, async transpile service, batching
 *   transpile/ end-to-end pipelines and TranspileContext
 *   serve/     nasscd network protocol, server, and client
 *
 * Binaries with tight build-time budgets can keep including the
 * individual headers; this umbrella is for examples, tools, and
 * downstream users who want the API without the include scavenger hunt.
 */

#include "nassc/ir/circuit.h"
#include "nassc/ir/dag.h"
#include "nassc/ir/fnv1a.h"
#include "nassc/ir/gate.h"
#include "nassc/ir/op_kind.h"
#include "nassc/ir/qasm.h"

#include "nassc/circuits/library.h"

#include "nassc/topo/backends.h"
#include "nassc/topo/coupling_map.h"
#include "nassc/topo/distance_matrix.h"

#include "nassc/synth/euler1q.h"
#include "nassc/synth/kak2q.h"
#include "nassc/synth/mct.h"

#include "nassc/passes/basis_translation.h"
#include "nassc/passes/cancellation.h"
#include "nassc/passes/collect_blocks.h"
#include "nassc/passes/commutation.h"
#include "nassc/passes/decompose_swaps.h"
#include "nassc/passes/optimize_1q.h"
#include "nassc/passes/pass_manager.h"
#include "nassc/passes/scheduling.h"

#include "nassc/route/layout.h"
#include "nassc/route/layout_search.h"
#include "nassc/route/nassc_router.h"
#include "nassc/route/perfect_layout.h"
#include "nassc/route/router.h"
#include "nassc/route/sabre.h"

#include "nassc/sim/fidelity.h"
#include "nassc/sim/noise.h"
#include "nassc/sim/statevector.h"
#include "nassc/sim/unitary.h"
#include "nassc/sim/verify.h"

#include "nassc/service/batch_transpiler.h"
#include "nassc/service/distance_cache.h"
#include "nassc/service/scheduler.h"
#include "nassc/service/transpile_service.h"

#include "nassc/transpile/context.h"
#include "nassc/transpile/transpile.h"

#include "nassc/serve/client.h"
#include "nassc/serve/protocol.h"
#include "nassc/serve/server.h"
#include "nassc/serve/shard_router.h"
#include "nassc/serve/supervisor.h"

#endif // NASSC_NASSC_H
