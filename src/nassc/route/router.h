#ifndef NASSC_ROUTE_ROUTER_H
#define NASSC_ROUTE_ROUTER_H

/**
 * @file
 * The routing engine behind route_circuit()/sabre_initial_layout().
 *
 * A Router binds an immutable (DagCircuit, CouplingMap, DistanceMatrix,
 * RoutingOptions) tuple and can run many passes over it: reset() rewinds
 * every piece of mutable state, so sabre_initial_layout() builds the
 * forward and reversed DAGs and Routers once and reuses them across all
 * reverse-traversal iterations instead of reconstructing them per pass.
 *
 * The per-decision loop is allocation-free after warm-up:
 *
 *  - swap_candidates() and the extended-set BFS deduplicate with
 *    epoch-stamped marker arrays instead of std::set, writing into
 *    reused scratch vectors;
 *  - the extended set is cached between consecutive SWAPs and only
 *    rebuilt when the front layer changes (a gate executes);
 *  - scoring is incremental: the front/extended distance sums are
 *    computed once per decision, and each candidate SWAP (p, q) only
 *    re-evaluates the gates with an endpoint on p or q — O(sum of
 *    degrees) per decision instead of O(|cands| * (|F| + |E|)).
 *
 * The incremental sums are bit-identical to the naive per-candidate
 * loop for integer-valued (hop) distances; the golden-metrics suite in
 * tests/test_router_equivalence.cc pins equality with the seed
 * implementation for the noise-aware metric as well.
 *
 * This header is internal-but-stable API: bench/micro_benchmarks.cc
 * drives the individual kernels (execute_ready, swap_candidates,
 * extended_set, apply_best_swap) in isolation.
 */

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "nassc/ir/dag.h"
#include "nassc/route/layout.h"
#include "nassc/route/sabre.h"
#include "nassc/topo/coupling_map.h"
#include "nassc/topo/distance_matrix.h"
#include "nassc/topo/distance_provider.h"

namespace nassc {

class OptAwareTracker;
struct SwapReduction;

/** Reusable routing state over one (dag, device, metric, options) tuple. */
class Router
{
  public:
    /**
     * Binds the inputs and validates gate widths (<= 2 qubits except
     * barriers).  The dag, coupling, dist, and opts references must
     * outlive the Router.
     */
    Router(const DagCircuit &dag, const CouplingMap &coupling,
           const DistanceMatrix &dist, const RoutingOptions &opts);

    /**
     * Provider-backed router.  A dense provider exposes its flat
     * storage, putting the router on the exact historical fast path
     * (AVX2 gathers over row-major doubles); a sparse provider is read
     * through pinned rows fetched on first touch and cached for the
     * Router's lifetime.  `dist` must outlive the Router.
     */
    Router(const DagCircuit &dag, const CouplingMap &coupling,
           const DistanceProvider &dist, const RoutingOptions &opts);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /** Full pass: reset to `initial`, route, assemble the circuit. */
    RoutingResult run(const Layout &initial);

    /**
     * Layout-search pass: identical routing decisions to run(), but
     * skips assembling the output circuit (the reverse-traversal search
     * only consumes the final layout).  Returns a reference to the
     * internal layout — valid until the next pass — so the search loop
     * stays allocation-free; copy it to keep it.
     */
    const Layout &route_to_layout(const Layout &initial);

    // ---- kernel API (micro-benchmarks, white-box tests) --------------------

    /** Rewind all mutable state to a fresh pass from `initial`. */
    void reset(const Layout &initial);

    /** Execute every executable front gate to a fixpoint. */
    void execute_ready();

    bool front_empty() const { return front_.empty(); }

    /**
     * Deduplicated candidate edges touching the front layer, sorted
     * ascending.  Valid until the next swap_candidates() call.
     */
    const std::vector<std::pair<int, int>> &swap_candidates();

    /**
     * Extended lookahead set (<= opts.extended_size two-qubit gates
     * behind the front).  Cached between consecutive SWAPs; rebuilt
     * only after a front-layer change.
     */
    const std::vector<int> &extended_set();

    /** Drop the extended-set cache (benchmarks measure a cold rebuild). */
    void invalidate_extended_set() { ext_valid_ = false; }

    /** Score all candidates incrementally and apply the best SWAP. */
    void apply_best_swap();

    const RoutingStats &stats() const { return stats_; }

  private:
    void init();
    void run_loop();
    int emit(Gate g);
    void execute_node(int id);
    void apply_forced_swap();
    void apply_swap(int p, int q, const SwapReduction &red);
    void reset_decay();

    /**
     * Distance row of physical qubit `i`.  Dense: a pointer into the
     * flat matrix, no per-row state.  Sparse: the pinned row handle is
     * fetched on first touch and cached for the Router's lifetime, so
     * repeat reads are one array index — and provider-side eviction
     * cannot invalidate a row this Router still scores through.
     */
    const double *
    row(int i) const
    {
        if (flat_)
            return flat_ + static_cast<std::size_t>(i) * num_phys_;
        DistanceRow &r = row_cache_[i];
        if (!r.data)
            r = prov_->row(i);
        return r.data;
    }

    double dist_at(int i, int j) const { return row(i)[j]; }

    /** D[pa'][pb'] after relabeling through a SWAP on (p, q). */
    double
    swapped_dist(int pa, int pb, int p, int q) const
    {
        if (pa == p)
            pa = q;
        else if (pa == q)
            pa = p;
        if (pb == p)
            pb = q;
        else if (pb == q)
            pb = p;
        return dist_at(pa, pb);
    }

    /** Mark physical qubits within opts_.region_radius of the front. */
    void mark_region();

    /** Build the base sums and per-qubit touch lists for one decision. */
    void build_score_base();

    /**
     * score_term_[k] = coeff * D[score_pa_[k]][score_pb_[k]] for k in
     * [begin, end).  AVX2 builds the flat row-major indices and gathers
     * four distances per step when available; the scalar fallback
     * computes the identical products, and the base sums are always
     * accumulated afterwards in index order, so both paths are
     * bit-identical (scoring never reassociates floating-point sums).
     */
    void fill_terms(int begin, int end, double coeff);

    /**
     * Accumulate the score adjustments of the entries listed in `ks`
     * for a candidate SWAP on (p, q).  When skip_p is set, entries with
     * an endpoint on p are skipped (they were accumulated from p's own
     * list already).  Same AVX2/scalar contract as fill_terms: the
     * relabel + distance gather is vectorized, the sums stay ordered.
     */
    void accumulate_delta(const std::vector<int> &ks, bool skip_p, int p,
                          int q, double &dfront, double &dext) const;

    /** Front/extended sum adjustments for a candidate SWAP on (p, q). */
    void candidate_delta(int p, int q, double &dfront, double &dext) const;

    // ---- immutable bindings ------------------------------------------------
    const DagCircuit &dag_;
    const CouplingMap &coupling_;
    /** Wraps the matrix-ctor argument so both ctors share one path. */
    std::unique_ptr<DenseDistanceProvider> borrowed_;
    const DistanceProvider *prov_;   ///< never null after construction
    const double *flat_;             ///< dense storage; null when sparse
    const RoutingOptions opts_;
    const int num_phys_;
    int force_limit_ = 50;
    /** Sparse-provider pinned rows, fetched lazily (see row()). */
    mutable std::vector<DistanceRow> row_cache_;

    // ---- per-pass state ----------------------------------------------------
    Layout layout_;
    std::unique_ptr<OptAwareTracker> tracker_;
    std::vector<int> remaining_;
    std::vector<int> front_;
    std::vector<Gate> out_;
    std::vector<bool> dead_;
    std::vector<double> decay_;
    RoutingStats stats_;
    std::pair<int, int> last_swap_{-1, -1};
    int swaps_since_progress_ = 0;
    int swaps_since_decay_reset_ = 0;

    // ---- epoch-stamped scratch (valid entries carry the current stamp) ----
    std::uint64_t stamp_ = 0;
    std::vector<std::uint64_t> edge_stamp_; ///< per coupling edge index
    std::vector<std::uint64_t> node_stamp_; ///< per DAG node (BFS seen set)
    std::vector<std::pair<int, int>> cand_;
    std::vector<int> ext_;
    bool ext_valid_ = false;
    std::vector<int> bfs_;          ///< BFS queue storage (head index local)
    std::vector<int> front_snapshot_; ///< execute_ready iteration snapshot
    std::vector<std::uint64_t> phys_stamp_; ///< region marks (== region_mark_)
    std::uint64_t region_mark_ = 0;
    std::vector<int> region_bfs_;   ///< (qubit, depth) interleaved queue

    // ---- incremental-scoring scratch (rebuilt once per decision) ----------
    double front_base_ = 0.0;
    double ext_base_ = 0.0;
    int score_front_count_ = 0;            ///< entries below are front terms
    std::vector<int> score_pa_, score_pb_; ///< front then extended entries
    std::vector<double> score_term_;       ///< 3*D front terms, D ext terms
    std::vector<std::vector<int>> by_phys_; ///< qubit -> indices into score_*
    std::vector<int> touched_phys_;         ///< qubits to clear after scoring

    // ---- flagged-SWAP 1q move buffers --------------------------------------
    std::vector<int> moved_idx_scratch_;
    std::vector<std::pair<int, int>> moved_scratch_; ///< (out idx, new wire)
};

} // namespace nassc

#endif // NASSC_ROUTE_ROUTER_H
