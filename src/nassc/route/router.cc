#include "nassc/route/router.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "nassc/obs/trace.h"
#include "nassc/route/nassc_router.h"

namespace nassc {

#if defined(__AVX2__)
namespace {

/**
 * Gather wrappers using the explicitly masked intrinsic forms: GCC
 * implements the unmasked ones via a masked call with an uninitialized
 * pass-through vector, which -Wmaybe-uninitialized (and -Werror CI)
 * rejects.  All-ones masks make them plain full gathers.
 */
inline __m256d
gather_pd(const double *base, __m128i idx)
{
    return _mm256_mask_i32gather_pd(
        _mm256_setzero_pd(), base, idx,
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}

inline __m128i
gather_epi32(const int *base, __m128i idx)
{
    return _mm_mask_i32gather_epi32(_mm_setzero_si128(), base, idx,
                                    _mm_set1_epi32(-1), 4);
}

/**
 * nd[i] = D[pa'][pb'] for the four entries ks[i..i+3], where pa'/pb'
 * are score_pa_/score_pb_ relabeled through a SWAP on (p, q).  The
 * relabel (two compare/blend pairs per operand) and the row-major
 * distance load are the vector part; callers do the (order-sensitive)
 * summation over nd in scalar code.
 */
inline void
gather_swapped_dists(const int *ks, int m, const int *pa_arr,
                     const int *pb_arr, const double *dm, int n, int p,
                     int q, double *nd)
{
    const __m128i vp = _mm_set1_epi32(p);
    const __m128i vq = _mm_set1_epi32(q);
    const __m128i vn = _mm_set1_epi32(n);
    auto relabel = [&](__m128i v) {
        __m128i eqp = _mm_cmpeq_epi32(v, vp);
        __m128i eqq = _mm_cmpeq_epi32(v, vq);
        __m128i r = _mm_blendv_epi8(v, vq, eqp);
        return _mm_blendv_epi8(r, vp, eqq);
    };
    int i = 0;
    for (; i + 4 <= m; i += 4) {
        __m128i k =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(ks + i));
        __m128i pa = gather_epi32(pa_arr, k);
        __m128i pb = gather_epi32(pb_arr, k);
        __m128i idx =
            _mm_add_epi32(_mm_mullo_epi32(relabel(pa), vn), relabel(pb));
        _mm256_storeu_pd(nd + i, gather_pd(dm, idx));
    }
    for (; i < m; ++i) {
        int pa = pa_arr[ks[i]];
        int pb = pb_arr[ks[i]];
        if (pa == p)
            pa = q;
        else if (pa == q)
            pa = p;
        if (pb == p)
            pb = q;
        else if (pb == q)
            pb = p;
        nd[i] = dm[static_cast<std::size_t>(pa) * n + pb];
    }
}

} // namespace
#endif // __AVX2__

Router::Router(const DagCircuit &dag, const CouplingMap &coupling,
               const DistanceMatrix &dist, const RoutingOptions &opts)
    : dag_(dag), coupling_(coupling),
      borrowed_(std::make_unique<DenseDistanceProvider>(
          DenseDistanceProvider::borrowed(dist))),
      prov_(borrowed_.get()), flat_(dist.data()), opts_(opts),
      num_phys_(coupling.num_qubits())
{
    init();
}

Router::Router(const DagCircuit &dag, const CouplingMap &coupling,
               const DistanceProvider &dist, const RoutingOptions &opts)
    : dag_(dag), coupling_(coupling), prov_(&dist),
      flat_(dist.dense_data()), opts_(opts),
      num_phys_(coupling.num_qubits())
{
    init();
}

void
Router::init()
{
    for (int id = 0; id < dag_.num_nodes(); ++id) {
        const Gate &g = dag_.gate(id);
        if (g.num_qubits() > 2 && g.kind != OpKind::kBarrier)
            throw std::invalid_argument(
                "route_circuit: decompose to <= 2q gates first");
    }
    force_limit_ = 3 * std::max(coupling_.diameter(), 2) + 8;
    // Candidate dedup marks, one per coupling edge (the historical
    // n*n table was 144 MB at 4k qubits for the same information).
    edge_stamp_.assign(coupling_.edges().size(), 0);
    node_stamp_.assign(dag_.num_nodes(), 0);
    by_phys_.resize(num_phys_);
    remaining_.resize(dag_.num_nodes());
    out_.reserve(dag_.num_nodes() + 64);
    dead_.reserve(dag_.num_nodes() + 64);
    if (!flat_)
        row_cache_.resize(num_phys_);
    if (opts_.region_radius > 0)
        phys_stamp_.assign(num_phys_, 0);
}

Router::~Router() = default;

void
Router::reset(const Layout &initial)
{
    layout_ = initial;
    for (int i = 0; i < dag_.num_nodes(); ++i)
        remaining_[i] = dag_.num_distinct_preds(i);
    front_.assign(dag_.initial_front().begin(), dag_.initial_front().end());
    out_.clear();
    dead_.clear();
    decay_.assign(num_phys_, 1.0);
    stats_ = RoutingStats{};
    last_swap_ = {-1, -1};
    swaps_since_progress_ = 0;
    swaps_since_decay_reset_ = 0;
    ext_valid_ = false;
    if (opts_.algorithm == RoutingAlgorithm::kNassc) {
        // Reuse the tracker across passes: reset() keeps its window /
        // cache capacities, so repeat runs allocate nothing.
        if (tracker_)
            tracker_->reset();
        else
            tracker_ = std::make_unique<OptAwareTracker>(num_phys_, opts_);
    }
}

void
Router::run_loop()
{
    while (true) {
        execute_ready();
        if (front_.empty())
            break;
        if (swaps_since_progress_ >= force_limit_)
            apply_forced_swap();
        else
            apply_best_swap();
    }
}

RoutingResult
Router::run(const Layout &initial)
{
    // Pure trace site (no histogram): unarmed cost is ONE relaxed
    // load — this is the router's hot entry and must stay free when
    // nobody asked for a trace.
    obs::TraceSpan span("route_pass");
    reset(initial);
    RoutingResult res;
    res.initial_l2p = layout_.l2p();
    run_loop();

    QuantumCircuit qc(num_phys_);
    for (std::size_t i = 0; i < out_.size(); ++i)
        if (!dead_[i])
            qc.append(std::move(out_[i]));
    res.circuit = std::move(qc);
    res.final_l2p = layout_.l2p();
    res.stats = stats_;
    return res;
}

const Layout &
Router::route_to_layout(const Layout &initial)
{
    reset(initial);
    run_loop();
    return layout_;
}

// ---- emission --------------------------------------------------------------

int
Router::emit(Gate g)
{
    int idx = static_cast<int>(out_.size());
    if (tracker_)
        tracker_->on_gate(g, idx);
    out_.push_back(std::move(g));
    dead_.push_back(false);
    return idx;
}

void
Router::execute_node(int id)
{
    Gate g = dag_.gate(id);
    for (int &q : g.qubits)
        q = layout_.phys_of(q);
    emit(std::move(g));
    // Decrement each distinct successor once (CSR view: already
    // deduplicated and sorted, no per-gate copy + sort).
    for (int s : dag_.distinct_succs(id))
        if (--remaining_[s] == 0)
            front_.push_back(s);
    // The front layer changed: the cached extended set is stale.
    ext_valid_ = false;
}

void
Router::execute_ready()
{
    bool progressed = true;
    while (progressed) {
        progressed = false;
        // execute_node() appends newly unblocked nodes to front_, so
        // iterate over a snapshot and rebuild front_ from scratch.
        front_snapshot_.swap(front_);
        front_.clear();
        for (int id : front_snapshot_) {
            const Gate &g = dag_.gate(id);
            bool two_q = g.num_qubits() == 2 && is_unitary_op(g.kind);
            bool ok = !two_q ||
                      coupling_.connected(layout_.phys_of(g.qubits[0]),
                                          layout_.phys_of(g.qubits[1]));
            if (ok) {
                execute_node(id);
                progressed = true;
                if (two_q) {
                    // A routed 2q gate is real progress; undoing the
                    // last swap afterwards is legitimate again.
                    swaps_since_progress_ = 0;
                    last_swap_ = {-1, -1};
                    reset_decay();
                }
            } else {
                front_.push_back(id);
            }
        }
        front_snapshot_.clear();
    }
}

// ---- scoring ---------------------------------------------------------------

const std::vector<std::pair<int, int>> &
Router::swap_candidates()
{
    ++stamp_;
    cand_.clear();
    const auto &edges = coupling_.edges();
    for (int id : front_) {
        const Gate &g = dag_.gate(id);
        for (int lq : g.qubits) {
            int p = layout_.phys_of(lq);
            for (int nbr : coupling_.neighbors(p)) {
                int a = std::min(p, nbr);
                int b = std::max(p, nbr);
                // Dedup mark lives at the edge's index in the sorted
                // edge list (always present: nbr came from neighbors()).
                auto it = std::lower_bound(edges.begin(), edges.end(),
                                           std::pair<int, int>(a, b));
                std::uint64_t &st = edge_stamp_[it - edges.begin()];
                if (st != stamp_) {
                    st = stamp_;
                    cand_.emplace_back(a, b);
                }
            }
        }
    }
    // Ascending edge order (what the std::set-based scan produced);
    // in-place sort of a small reused vector, no allocation.
    std::sort(cand_.begin(), cand_.end());
    return cand_;
}

void
Router::mark_region()
{
    // BFS over the coupling graph from every front-layer physical
    // qubit, to depth opts_.region_radius.  Marked qubits carry
    // region_mark_ in phys_stamp_; the queue interleaves (qubit,
    // depth) pairs in a reused vector.
    region_mark_ = ++stamp_;
    region_bfs_.clear();
    for (int id : front_) {
        const Gate &g = dag_.gate(id);
        for (int lq : g.qubits) {
            int p = layout_.phys_of(lq);
            if (phys_stamp_[p] != region_mark_) {
                phys_stamp_[p] = region_mark_;
                region_bfs_.push_back(p);
                region_bfs_.push_back(0);
            }
        }
    }
    std::size_t head = 0;
    while (head < region_bfs_.size()) {
        int p = region_bfs_[head];
        int depth = region_bfs_[head + 1];
        head += 2;
        if (depth >= opts_.region_radius)
            continue;
        for (int nbr : coupling_.neighbors(p)) {
            if (phys_stamp_[nbr] != region_mark_) {
                phys_stamp_[nbr] = region_mark_;
                region_bfs_.push_back(nbr);
                region_bfs_.push_back(depth + 1);
            }
        }
    }
}

const std::vector<int> &
Router::extended_set()
{
    if (ext_valid_)
        return ext_;
    const bool limited = opts_.region_radius > 0;
    if (limited)
        mark_region();
    // BFS over DAG successors of the front, collecting 2q gates.  The
    // seen set is an epoch-stamped array and the queue a reused vector
    // with a moving head.  With a region limit, a gate only joins the
    // extended set when both of its current physical qubits lie inside
    // the marked radius — lookahead never reads distance rows of
    // far-away qubits — but the DAG walk itself is unrestricted so the
    // window still fills from deeper gates.
    ++stamp_;
    ext_.clear();
    bfs_.clear();
    for (int id : front_) {
        bfs_.push_back(id);
        node_stamp_[id] = stamp_;
    }
    std::size_t head = 0;
    while (head < bfs_.size() &&
           static_cast<int>(ext_.size()) < opts_.extended_size) {
        int id = bfs_[head++];
        for (int s : dag_.succs(id)) {
            if (s < 0 || node_stamp_[s] == stamp_)
                continue;
            node_stamp_[s] = stamp_;
            const Gate &g = dag_.gate(s);
            if (g.num_qubits() == 2 && is_unitary_op(g.kind)) {
                bool in_region =
                    !limited ||
                    (phys_stamp_[layout_.phys_of(g.qubits[0])] ==
                         region_mark_ &&
                     phys_stamp_[layout_.phys_of(g.qubits[1])] ==
                         region_mark_);
                if (in_region) {
                    ext_.push_back(s);
                    if (static_cast<int>(ext_.size()) >=
                        opts_.extended_size)
                        break;
                }
            }
            bfs_.push_back(s);
        }
    }
    ext_valid_ = true;
    return ext_;
}

void
Router::fill_terms(int begin, int end, double coeff)
{
#if defined(__AVX2__)
    if (flat_) {
        const double *dm = flat_;
        const __m128i vn = _mm_set1_epi32(num_phys_);
        const __m256d vc = _mm256_set1_pd(coeff);
        int k = begin;
        for (; k + 4 <= end; k += 4) {
            __m128i pa = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(score_pa_.data() + k));
            __m128i pb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(score_pb_.data() + k));
            __m128i idx = _mm_add_epi32(_mm_mullo_epi32(pa, vn), pb);
            _mm256_storeu_pd(score_term_.data() + k,
                             _mm256_mul_pd(vc, gather_pd(dm, idx)));
        }
        for (; k < end; ++k)
            score_term_[k] = coeff * dist_at(score_pa_[k], score_pb_[k]);
        return;
    }
#endif
    for (int k = begin; k < end; ++k)
        score_term_[k] = coeff * dist_at(score_pa_[k], score_pb_[k]);
}

void
Router::build_score_base()
{
    for (int p : touched_phys_)
        by_phys_[p].clear();
    touched_phys_.clear();
    score_pa_.clear();
    score_pb_.clear();

    auto add_entry = [this](int pa, int pb) {
        int k = static_cast<int>(score_pa_.size());
        score_pa_.push_back(pa);
        score_pb_.push_back(pb);
        if (by_phys_[pa].empty())
            touched_phys_.push_back(pa);
        by_phys_[pa].push_back(k);
        if (pb != pa) {
            if (by_phys_[pb].empty())
                touched_phys_.push_back(pb);
            by_phys_[pb].push_back(k);
        }
    };

    // Pass 1 (scalar): operand -> physical translation plus the
    // per-qubit touch lists.  Pass 2 (vectorizable): the distance terms
    // over the now-contiguous (pa, pb) arrays.  The base sums are
    // accumulated in index order — the exact order of the historical
    // one-pass loop.
    for (int id : front_) {
        const Gate &g = dag_.gate(id);
        add_entry(layout_.phys_of(g.qubits[0]),
                  layout_.phys_of(g.qubits[1]));
    }
    score_front_count_ = static_cast<int>(score_pa_.size());
    for (int id : ext_) {
        const Gate &g = dag_.gate(id);
        add_entry(layout_.phys_of(g.qubits[0]),
                  layout_.phys_of(g.qubits[1]));
    }

    const int total = static_cast<int>(score_pa_.size());
    score_term_.resize(total);
    fill_terms(0, score_front_count_, 3.0);
    fill_terms(score_front_count_, total, 1.0);

    front_base_ = 0.0;
    for (int k = 0; k < score_front_count_; ++k)
        front_base_ += score_term_[k];
    ext_base_ = 0.0;
    for (int k = score_front_count_; k < total; ++k)
        ext_base_ += score_term_[k];
}

void
Router::accumulate_delta(const std::vector<int> &ks, bool skip_p, int p,
                         int q, double &dfront, double &dext) const
{
#if defined(__AVX2__)
    if (flat_) {
        // Block-wise: vector-gather the relabeled distances into
        // nd_buf, then accumulate in list order with the same skip
        // logic as the scalar path — sums stay ordered, results stay
        // bit-identical.
        constexpr int kBlock = 256;
        double nd_buf[kBlock];
        const int m = static_cast<int>(ks.size());
        for (int off = 0; off < m; off += kBlock) {
            const int len = std::min(kBlock, m - off);
            gather_swapped_dists(ks.data() + off, len, score_pa_.data(),
                                 score_pb_.data(), flat_, num_phys_, p, q,
                                 nd_buf);
            for (int j = 0; j < len; ++j) {
                const int k = ks[off + j];
                if (skip_p && (score_pa_[k] == p || score_pb_[k] == p))
                    continue;
                if (k < score_front_count_)
                    dfront += 3.0 * nd_buf[j] - score_term_[k];
                else
                    dext += nd_buf[j] - score_term_[k];
            }
        }
        return;
    }
#endif
    for (int k : ks) {
        if (skip_p && (score_pa_[k] == p || score_pb_[k] == p))
            continue;
        double nd = swapped_dist(score_pa_[k], score_pb_[k], p, q);
        if (k < score_front_count_)
            dfront += 3.0 * nd - score_term_[k];
        else
            dext += nd - score_term_[k];
    }
}

void
Router::candidate_delta(int p, int q, double &dfront, double &dext) const
{
    dfront = 0.0;
    dext = 0.0;
    accumulate_delta(by_phys_[p], /*skip_p=*/false, p, q, dfront, dext);
    // Gates also touching p were already adjusted above.
    accumulate_delta(by_phys_[q], /*skip_p=*/true, p, q, dfront, dext);
}

void
Router::apply_best_swap()
{
    const auto &cands = swap_candidates();
    if (cands.empty())
        throw std::logic_error(
            "apply_best_swap: blocked front layer has no swap candidates "
            "(all blocked qubits are isolated in the coupling map)");
    const auto &ext = extended_set();
    build_score_base();

    const double nf = static_cast<double>(front_.size());
    const double ne = static_cast<double>(ext.size());

    double best_score = std::numeric_limits<double>::infinity();
    std::pair<int, int> best_edge{-1, -1};
    SwapReduction best_red;

    for (auto [p, q] : cands) {
        // Never immediately undo the previous swap: with reduction
        // terms active it can look locally free and livelock.
        if (cands.size() > 1 && p == last_swap_.first &&
            q == last_swap_.second)
            continue;
        // Incremental scoring: only the gates with an endpoint on p or
        // q move; everything else keeps its base contribution.
        double dfront, dext;
        candidate_delta(p, q, dfront, dext);
        SwapReduction red;
        if (tracker_) {
            // Branch-and-bound prune: red.total is capped at the SWAP's
            // own 3 CNOTs, so a lower bound on h assumes the maximum
            // reduction.  If even that cannot beat the current best,
            // the (expensive) tracker evaluation cannot change the
            // decision and is skipped.  Exact: the bound uses the same
            // expression shape as h, and multiplying both sides by the
            // positive decay factor preserves the order.
            double h_bound = (front_base_ + dfront - 3.0) / nf;
            if (!ext.empty())
                h_bound +=
                    opts_.extended_weight * (ext_base_ + dext) / ne;
            if (opts_.use_decay)
                h_bound *= std::max(decay_[p], decay_[q]);
            if (h_bound >= best_score - 1e-12)
                continue;
            red = tracker_->evaluate_swap(p, q);
        }
        double h = (front_base_ + dfront - red.total) / nf;
        if (!ext.empty())
            h += opts_.extended_weight * (ext_base_ + dext) / ne;
        if (opts_.use_decay)
            h *= std::max(decay_[p], decay_[q]);

        if (h < best_score - 1e-12) {
            best_score = h;
            best_edge = {p, q};
            best_red = red;
        }
    }

    apply_swap(best_edge.first, best_edge.second, best_red);
}

void
Router::apply_forced_swap()
{
    // Deadlock breaker: move the first blocked gate one hop along a
    // cheapest path (always makes progress eventually).
    const Gate &g = dag_.gate(front_.front());
    if (g.num_qubits() != 2)
        throw std::logic_error(
            "apply_forced_swap: blocked front gate is not two-qubit");
    int pa = layout_.phys_of(g.qubits[0]);
    int pb = layout_.phys_of(g.qubits[1]);
    int best_nbr = -1;
    double best = std::numeric_limits<double>::infinity();
    // One row fetch instead of one per neighbor: D is exactly
    // symmetric under both metrics (BFS trivially; Floyd-Warshall
    // preserves symmetry because both orders relax with the same
    // commutative sums), so rb[nbr] == D(nbr, pb) bit-for-bit.
    const double *rb = row(pb);
    for (int nbr : coupling_.neighbors(pa)) {
        if (rb[nbr] < best) {
            best = rb[nbr];
            best_nbr = nbr;
        }
    }
    if (best_nbr < 0)
        throw std::logic_error(
            "apply_forced_swap: physical qubit " + std::to_string(pa) +
            " has no neighbors (isolated qubit in the coupling map)");
    ++stats_.forced_moves;
    apply_swap(pa, best_nbr, SwapReduction{});
}

void
Router::apply_swap(int p, int q, const SwapReduction &red)
{
    bool flagged = red.commute1 || red.commute2;

    if (tracker_ && flagged) {
        // Move the trailing 1q gates of both wires through the SWAP:
        // U(p) SWAP(p,q) == SWAP(p,q) U(q).
        moved_scratch_.clear(); // (out-index, new wire)
        for (int w : {p, q}) {
            moved_idx_scratch_.clear();
            tracker_->take_trailing_1q(w, moved_idx_scratch_);
            for (int idx : moved_idx_scratch_) {
                moved_scratch_.emplace_back(idx, w == p ? q : p);
                dead_[idx] = true;
            }
        }
        Gate sw = Gate::two_q(OpKind::kSwap, p, q);
        sw.swap_orient = red.orient;
        emit(std::move(sw));
        for (auto [idx, wire] : moved_scratch_) {
            Gate ng = out_[idx];
            ng.qubits[0] = wire;
            emit(std::move(ng));
            ++stats_.moved_1q;
        }
        if (red.partner_swap_out_idx >= 0) {
            out_[red.partner_swap_out_idx].swap_orient = red.orient;
            tracker_->consume_record(red.partner_swap_out_idx);
        }
        tracker_->consume_record(red.used_record_idx);
        ++stats_.flagged_swaps;
    } else {
        // Pure-C2q (or unflagged) swaps keep the default
        // decomposition: the consolidation pass absorbs them into the
        // adjacent block regardless of orientation.
        emit(Gate::two_q(OpKind::kSwap, p, q));
    }

    if (red.c2q > 0)
        ++stats_.c2q_hits;
    if (red.commute1)
        ++stats_.commute1_hits;
    if (red.commute2)
        ++stats_.commute2_hits;

    layout_.swap_physical(p, q);
    last_swap_ = {std::min(p, q), std::max(p, q)};
    ++stats_.num_swaps;
    ++swaps_since_progress_;

    if (opts_.use_decay) {
        if (++swaps_since_decay_reset_ >= opts_.decay_reset_interval) {
            reset_decay();
        } else {
            decay_[p] += opts_.decay_delta;
            decay_[q] += opts_.decay_delta;
        }
    }
}

void
Router::reset_decay()
{
    std::fill(decay_.begin(), decay_.end(), 1.0);
    swaps_since_decay_reset_ = 0;
}

} // namespace nassc
