#include "nassc/route/sabre.h"

#include <stdexcept>

#include "nassc/ir/dag.h"
#include "nassc/route/layout_search.h"
#include "nassc/route/router.h"

namespace nassc {

RoutingResult
route_circuit(const QuantumCircuit &logical, const CouplingMap &coupling,
              const DistanceMatrix &dist, const Layout &initial,
              const RoutingOptions &opts)
{
    if (logical.num_qubits() > coupling.num_qubits())
        throw std::invalid_argument("circuit larger than device");
    DagCircuit dag(logical);
    Router r(dag, coupling, dist, opts);
    return r.run(initial);
}

RoutingResult
route_circuit(const QuantumCircuit &logical, const CouplingMap &coupling,
              const DistanceProvider &dist, const Layout &initial,
              const RoutingOptions &opts)
{
    if (logical.num_qubits() > coupling.num_qubits())
        throw std::invalid_argument("circuit larger than device");
    DagCircuit dag(logical);
    Router r(dag, coupling, dist, opts);
    return r.run(initial);
}

Layout
sabre_initial_layout(const QuantumCircuit &logical,
                     const CouplingMap &coupling, const DistanceMatrix &dist,
                     const RoutingOptions &opts, int iterations)
{
    // The whole search lives in LayoutSearch (route/layout_search.h):
    // opts.layout_trials independent seed layouts refined in parallel on
    // the shared pool, best-by-(swaps, depth, trial) wins.  The default
    // layout_trials = 1 runs the historical single-seed reverse
    // traversal, bit for bit.  This wrapper only hands back the layout,
    // so retention is disabled: racing trials still score (the arg-min
    // needs the key) but nothing is kept alive, and the single-trial
    // path skips the scoring pass entirely — the historical cost.
    RoutingOptions lopts = opts;
    lopts.reuse_routing = false;
    LayoutSearch search(logical, coupling, dist, lopts, iterations);
    return search.run().initial;
}

Layout
sabre_initial_layout(const QuantumCircuit &logical,
                     const CouplingMap &coupling,
                     const DistanceProvider &dist,
                     const RoutingOptions &opts, int iterations)
{
    RoutingOptions lopts = opts;
    lopts.reuse_routing = false;
    LayoutSearch search(logical, coupling, dist, lopts, iterations);
    return search.run().initial;
}

} // namespace nassc
