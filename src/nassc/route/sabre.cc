#include "nassc/route/sabre.h"

#include <stdexcept>

#include "nassc/ir/dag.h"
#include "nassc/route/router.h"

namespace nassc {

RoutingResult
route_circuit(const QuantumCircuit &logical, const CouplingMap &coupling,
              const DistanceMatrix &dist, const Layout &initial,
              const RoutingOptions &opts)
{
    if (logical.num_qubits() > coupling.num_qubits())
        throw std::invalid_argument("circuit larger than device");
    DagCircuit dag(logical);
    Router r(dag, coupling, dist, opts);
    return r.run(initial);
}

Layout
sabre_initial_layout(const QuantumCircuit &logical,
                     const CouplingMap &coupling, const DistanceMatrix &dist,
                     const RoutingOptions &opts, int iterations)
{
    std::mt19937 rng(opts.seed);
    // Layout::random rejects circuits wider than the device.
    Layout layout =
        Layout::random(logical.num_qubits(), coupling.num_qubits(), rng);

    // Reverse-traversal refinement (SABRE): alternate forward and
    // backward routing, carrying the final layout across passes.
    QuantumCircuit fwd = logical.without_non_unitary();
    QuantumCircuit rev(fwd.num_qubits());
    for (auto it = fwd.gates().rbegin(); it != fwd.gates().rend(); ++it)
        rev.append(*it);

    RoutingOptions lopts = opts;
    lopts.algorithm = RoutingAlgorithm::kSabre; // mapping is shared (paper)

    // Both DAGs and Routers are built once and reset per pass: the
    // 2 x iterations passes reuse the CSR adjacency and all routing
    // scratch buffers instead of reconstructing them.
    DagCircuit fwd_dag(fwd);
    DagCircuit rev_dag(rev);
    Router fwd_router(fwd_dag, coupling, dist, lopts);
    Router rev_router(rev_dag, coupling, dist, lopts);

    for (int iter = 0; iter < iterations; ++iter) {
        layout = fwd_router.route_to_layout(layout);
        layout = rev_router.route_to_layout(layout);
    }
    return layout;
}

} // namespace nassc
