#include "nassc/route/sabre.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <queue>
#include <set>
#include <stdexcept>

#include "nassc/ir/dag.h"
#include "nassc/route/nassc_router.h"

namespace nassc {

namespace {

/** Mutable routing state over one pass. */
class Router
{
  public:
    Router(const QuantumCircuit &logical, const CouplingMap &coupling,
           const std::vector<std::vector<double>> &dist,
           const Layout &initial, const RoutingOptions &opts)
        : dag_(logical), coupling_(coupling), dist_(dist), layout_(initial),
          opts_(opts),
          tracker_(opts.algorithm == RoutingAlgorithm::kNassc
                       ? std::make_unique<OptAwareTracker>(
                             coupling.num_qubits(), opts)
                       : nullptr)
    {
        for (const Gate &g : logical.gates()) {
            if (g.num_qubits() > 2 && g.kind != OpKind::kBarrier)
                throw std::invalid_argument(
                    "route_circuit: decompose to <= 2q gates first");
        }
        remaining_.resize(dag_.num_nodes());
        for (int i = 0; i < dag_.num_nodes(); ++i)
            remaining_[i] = dag_.num_distinct_preds(i);
        front_ = dag_.initial_front();
        decay_.assign(coupling.num_qubits(), 1.0);
        force_limit_ = 3 * std::max(coupling.diameter(), 2) + 8;
    }

    RoutingResult
    run()
    {
        RoutingResult res;
        res.initial_l2p = layout_.l2p();

        while (true) {
            execute_ready();
            if (front_.empty())
                break;
            if (swaps_since_progress_ >= force_limit_)
                apply_forced_swap();
            else
                apply_best_swap();
        }

        QuantumCircuit qc(coupling_.num_qubits());
        for (size_t i = 0; i < out_.size(); ++i)
            if (!dead_[i])
                qc.append(std::move(out_[i]));
        res.circuit = std::move(qc);
        res.final_l2p = layout_.l2p();
        res.stats = stats_;
        return res;
    }

  private:
    // ---- emission ----------------------------------------------------------

    int
    emit(Gate g)
    {
        int idx = static_cast<int>(out_.size());
        if (tracker_)
            tracker_->on_gate(g, idx);
        out_.push_back(std::move(g));
        dead_.push_back(false);
        return idx;
    }

    void
    execute_node(int id)
    {
        Gate g = dag_.gate(id);
        for (int &q : g.qubits)
            q = layout_.phys_of(q);
        emit(std::move(g));
        // Decrement each distinct successor once.
        std::vector<int> ss = dag_.succs(id);
        std::sort(ss.begin(), ss.end());
        ss.erase(std::unique(ss.begin(), ss.end()), ss.end());
        for (int s : ss) {
            if (s < 0)
                continue;
            if (--remaining_[s] == 0)
                front_.push_back(s);
        }
    }

    /** Execute every front gate that is executable; loops to a fixpoint. */
    void
    execute_ready()
    {
        bool progressed = true;
        while (progressed) {
            progressed = false;
            // execute_node() appends newly unblocked nodes to front_, so
            // iterate over a snapshot and rebuild front_ from scratch.
            std::vector<int> current = std::move(front_);
            front_.clear();
            for (int id : current) {
                const Gate &g = dag_.gate(id);
                bool two_q = g.num_qubits() == 2 && is_unitary_op(g.kind);
                bool ok = !two_q ||
                          coupling_.connected(layout_.phys_of(g.qubits[0]),
                                              layout_.phys_of(g.qubits[1]));
                if (ok) {
                    execute_node(id);
                    progressed = true;
                    if (two_q) {
                        // A routed 2q gate is real progress; undoing the
                        // last swap afterwards is legitimate again.
                        swaps_since_progress_ = 0;
                        last_swap_ = {-1, -1};
                        reset_decay();
                    }
                } else {
                    front_.push_back(id);
                }
            }
        }
    }

    // ---- scoring -----------------------------------------------------------

    std::vector<std::pair<int, int>>
    swap_candidates() const
    {
        std::set<std::pair<int, int>> cand;
        for (int id : front_) {
            const Gate &g = dag_.gate(id);
            for (int lq : g.qubits) {
                int p = layout_.phys_of(lq);
                for (int nbr : coupling_.neighbors(p)) {
                    cand.insert({std::min(p, nbr), std::max(p, nbr)});
                }
            }
        }
        return {cand.begin(), cand.end()};
    }

    std::vector<int>
    extended_set() const
    {
        // BFS over DAG successors of the front, collecting 2q gates.
        std::vector<int> ext;
        std::queue<int> bfs;
        std::set<int> seen;
        for (int id : front_) {
            bfs.push(id);
            seen.insert(id);
        }
        while (!bfs.empty() &&
               static_cast<int>(ext.size()) < opts_.extended_size) {
            int id = bfs.front();
            bfs.pop();
            for (int s : dag_.succs(id)) {
                if (s < 0 || seen.count(s))
                    continue;
                seen.insert(s);
                const Gate &g = dag_.gate(s);
                if (g.num_qubits() == 2 && is_unitary_op(g.kind)) {
                    ext.push_back(s);
                    if (static_cast<int>(ext.size()) >=
                        opts_.extended_size)
                        break;
                }
                bfs.push(s);
            }
        }
        return ext;
    }

    double
    dist_after_swap(int lq_a, int lq_b, int p, int q) const
    {
        int pa = layout_.phys_of(lq_a);
        int pb = layout_.phys_of(lq_b);
        if (pa == p)
            pa = q;
        else if (pa == q)
            pa = p;
        if (pb == p)
            pb = q;
        else if (pb == q)
            pb = p;
        return dist_[pa][pb];
    }

    void
    apply_best_swap()
    {
        auto cands = swap_candidates();
        std::vector<int> ext = extended_set();

        double best_score = std::numeric_limits<double>::infinity();
        std::pair<int, int> best_edge{-1, -1};
        SwapReduction best_red;

        for (auto [p, q] : cands) {
            // Never immediately undo the previous swap: with reduction
            // terms active it can look locally free and livelock.
            if (cands.size() > 1 && p == last_swap_.first &&
                q == last_swap_.second)
                continue;
            // Front-layer term with the optimization-aware reduction.
            double front_sum = 0.0;
            for (int id : front_) {
                const Gate &g = dag_.gate(id);
                front_sum +=
                    3.0 * dist_after_swap(g.qubits[0], g.qubits[1], p, q);
            }
            SwapReduction red;
            if (tracker_)
                red = tracker_->evaluate_swap(p, q);
            double h = (front_sum - red.total) /
                       static_cast<double>(front_.size());

            if (!ext.empty()) {
                double ext_sum = 0.0;
                for (int id : ext) {
                    const Gate &g = dag_.gate(id);
                    ext_sum +=
                        dist_after_swap(g.qubits[0], g.qubits[1], p, q);
                }
                h += opts_.extended_weight * ext_sum /
                     static_cast<double>(ext.size());
            }
            if (opts_.use_decay)
                h *= std::max(decay_[p], decay_[q]);

            if (h < best_score - 1e-12) {
                best_score = h;
                best_edge = {p, q};
                best_red = red;
            }
        }

        apply_swap(best_edge.first, best_edge.second, best_red);
    }

    void
    apply_forced_swap()
    {
        // Deadlock breaker: move the first blocked gate one hop along a
        // cheapest path (always makes progress eventually).
        const Gate &g = dag_.gate(front_.front());
        int pa = layout_.phys_of(g.qubits[0]);
        int pb = layout_.phys_of(g.qubits[1]);
        int best_nbr = -1;
        double best = std::numeric_limits<double>::infinity();
        for (int nbr : coupling_.neighbors(pa)) {
            if (dist_[nbr][pb] < best) {
                best = dist_[nbr][pb];
                best_nbr = nbr;
            }
        }
        ++stats_.forced_moves;
        apply_swap(pa, best_nbr, SwapReduction{});
    }

    void
    apply_swap(int p, int q, const SwapReduction &red)
    {
        bool flagged = red.commute1 || red.commute2;

        if (tracker_ && flagged) {
            // Move the trailing 1q gates of both wires through the SWAP:
            // U(p) SWAP(p,q) == SWAP(p,q) U(q).
            std::vector<std::pair<Gate, int>> moved; // gate, new wire
            for (int w : {p, q}) {
                for (int idx : tracker_->take_trailing_1q(w)) {
                    moved.push_back({out_[idx], w == p ? q : p});
                    dead_[idx] = true;
                }
            }
            Gate sw = Gate::two_q(OpKind::kSwap, p, q);
            sw.swap_orient = red.orient;
            emit(std::move(sw));
            for (auto &[g, wire] : moved) {
                Gate ng = g;
                ng.qubits[0] = wire;
                emit(std::move(ng));
                ++stats_.moved_1q;
            }
            if (red.partner_swap_out_idx >= 0) {
                out_[red.partner_swap_out_idx].swap_orient = red.orient;
                tracker_->consume_record(red.partner_swap_out_idx);
            }
            tracker_->consume_record(red.used_record_idx);
            ++stats_.flagged_swaps;
        } else {
            // Pure-C2q (or unflagged) swaps keep the default
            // decomposition: the consolidation pass absorbs them into the
            // adjacent block regardless of orientation.
            emit(Gate::two_q(OpKind::kSwap, p, q));
        }

        if (red.c2q > 0)
            ++stats_.c2q_hits;
        if (red.commute1)
            ++stats_.commute1_hits;
        if (red.commute2)
            ++stats_.commute2_hits;

        layout_.swap_physical(p, q);
        last_swap_ = {std::min(p, q), std::max(p, q)};
        ++stats_.num_swaps;
        ++swaps_since_progress_;

        if (opts_.use_decay) {
            if (++swaps_since_decay_reset_ >= opts_.decay_reset_interval) {
                reset_decay();
            } else {
                decay_[p] += opts_.decay_delta;
                decay_[q] += opts_.decay_delta;
            }
        }
    }

    void
    reset_decay()
    {
        std::fill(decay_.begin(), decay_.end(), 1.0);
        swaps_since_decay_reset_ = 0;
    }

    DagCircuit dag_;
    const CouplingMap &coupling_;
    const std::vector<std::vector<double>> &dist_;
    Layout layout_;
    const RoutingOptions &opts_;
    std::unique_ptr<OptAwareTracker> tracker_;

    std::vector<int> remaining_;
    std::vector<int> front_;
    std::vector<Gate> out_;
    std::vector<bool> dead_;
    std::vector<double> decay_;
    RoutingStats stats_;
    std::pair<int, int> last_swap_{-1, -1};
    int swaps_since_progress_ = 0;
    int swaps_since_decay_reset_ = 0;
    int force_limit_ = 50;
};

} // namespace

RoutingResult
route_circuit(const QuantumCircuit &logical, const CouplingMap &coupling,
              const std::vector<std::vector<double>> &dist,
              const Layout &initial, const RoutingOptions &opts)
{
    if (logical.num_qubits() > coupling.num_qubits())
        throw std::invalid_argument("circuit larger than device");
    Router r(logical, coupling, dist, initial, opts);
    return r.run();
}

Layout
sabre_initial_layout(const QuantumCircuit &logical,
                     const CouplingMap &coupling,
                     const std::vector<std::vector<double>> &dist,
                     const RoutingOptions &opts, int iterations)
{
    std::mt19937 rng(opts.seed);
    Layout layout =
        Layout::random(logical.num_qubits(), coupling.num_qubits(), rng);

    // Reverse-traversal refinement (SABRE): alternate forward and
    // backward routing, carrying the final layout across passes.
    QuantumCircuit fwd = logical.without_non_unitary();
    QuantumCircuit rev(fwd.num_qubits());
    for (auto it = fwd.gates().rbegin(); it != fwd.gates().rend(); ++it)
        rev.append(*it);

    RoutingOptions lopts = opts;
    lopts.algorithm = RoutingAlgorithm::kSabre; // mapping is shared (paper)

    for (int iter = 0; iter < iterations; ++iter) {
        RoutingResult f = route_circuit(fwd, coupling, dist, layout, lopts);
        layout = Layout::from_l2p(f.final_l2p, coupling.num_qubits());
        RoutingResult b = route_circuit(rev, coupling, dist, layout, lopts);
        layout = Layout::from_l2p(b.final_l2p, coupling.num_qubits());
    }
    return layout;
}

} // namespace nassc
