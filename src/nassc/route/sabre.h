#ifndef NASSC_ROUTE_SABRE_H
#define NASSC_ROUTE_SABRE_H

/**
 * @file
 * SWAP-based bidirectional heuristic routing.
 *
 * route_circuit() implements the SABRE algorithm [Li, Ding & Xie,
 * ASPLOS'19]: a front layer of blocked two-qubit gates, an extended
 * lookahead layer, and a per-swap heuristic cost
 *
 *   H = (1/|F|) (3 * sum_F D[g.i][g.j] - sum_k b_k C_k)
 *     + (W/|E|)      sum_E D[g.i][g.j]                      (paper eq. 2)
 *
 * With all b_k = 0 this is the SABRE baseline; with
 * RoutingAlgorithm::kNassc the C_k terms are supplied by the
 * optimization-aware tracker (route/nassc_router.h) and profitable SWAPs
 * are flagged for orientation-aware decomposition, with single-qubit
 * gates moved through flagged SWAPs (paper Sec. IV).
 *
 * sabre_initial_layout() implements the reverse-traversal initial mapping
 * search shared by SABRE and NASSC (paper Sec. IV-A).
 */

#include "nassc/ir/circuit.h"
#include "nassc/route/layout.h"
#include "nassc/topo/coupling_map.h"
#include "nassc/topo/distance_matrix.h"
#include "nassc/topo/distance_provider.h"

namespace nassc {

/** Which routing cost model to use. */
enum class RoutingAlgorithm {
    kSabre, ///< distance-only cost (baseline)
    kNassc, ///< optimization-aware cost + SWAP decomposition flags
};

/** Router configuration (defaults follow the paper's Sec. V settings). */
struct RoutingOptions
{
    RoutingAlgorithm algorithm = RoutingAlgorithm::kSabre;
    int extended_size = 20;        ///< |E|, lookahead window
    double extended_weight = 0.5;  ///< W
    bool use_decay = true;         ///< SABRE decay for parallelism
    double decay_delta = 0.001;
    int decay_reset_interval = 5;
    /** b_k switches for the three NASSC optimizations (Sec. IV-F). */
    bool enable_c2q = true;
    bool enable_commute1 = true;
    bool enable_commute2 = true;
    int commute_window = 20; ///< max commute-set search size (Sec. IV-E)
    unsigned seed = 0;       ///< randomizes the initial layout only
    /**
     * Independent random-seed layouts raced by sabre_initial_layout
     * (LayoutSearch); the best-scoring refined layout wins.  Trial 0
     * uses `seed` unchanged, so layout_trials = 1 is bit-identical to
     * the single-seed search.  Like Qiskit's SabreLayout(swap_trials=N).
     */
    int layout_trials = 1;
    /**
     * Worker cap for running the trials on Scheduler::shared(); 0 =
     * whole pool, 1 = serial.  Any value yields bit-identical results —
     * trials are seeded and scored independently of scheduling.
     */
    int layout_threads = 0;
    /**
     * Retain the winning layout trial's full-circuit scoring pass so
     * the caller can skip its own route_circuit() call (see
     * LayoutSearchResult::routed).  Only legal — and only honoured —
     * when `algorithm` is kSabre: the search scores with the SABRE cost
     * model, so a retained pass is bit-identical to the downstream
     * route exactly when the downstream route is SABRE too.  Off means
     * "score but discard": trial outcomes are unchanged, the final
     * route is recomputed — the two paths are bit-identical by
     * construction (pinned in tests/test_layout_trials.cc).
     */
    bool reuse_routing = true;
    /**
     * Region-limited lookahead for large devices: when > 0, the
     * extended set only admits gates whose current physical qubits
     * both lie within this many coupling-graph hops of a front-layer
     * physical qubit.  SWAP candidates are radius-1 by construction
     * (edges touching the front layer), so with this set a routing
     * decision never reads distance rows of qubits far from the front.
     * 0 (the default) disables the limit and is bit-identical to every
     * prior release.
     */
    int region_radius = 0;
};

/** Counters reported by one routing run. */
struct RoutingStats
{
    int num_swaps = 0;
    int flagged_swaps = 0;  ///< SWAPs with orientation flags (NASSC)
    int c2q_hits = 0;       ///< swaps chosen with a C2q reduction
    int commute1_hits = 0;
    int commute2_hits = 0;
    int moved_1q = 0;       ///< 1q gates moved through flagged SWAPs
    int forced_moves = 0;   ///< deadlock-breaking shortest-path swaps
};

/** Output of routing. */
struct RoutingResult
{
    QuantumCircuit circuit; ///< physical circuit; SWAPs still kSwap gates
    std::vector<int> initial_l2p;
    std::vector<int> final_l2p;
    RoutingStats stats;
};

/**
 * Route `logical` (gates must act on <= 2 qubits) onto the device.
 *
 * @param dist    distance matrix (hop_distance or noise_aware_distance)
 * @param initial initial layout (e.g. from sabre_initial_layout)
 */
RoutingResult route_circuit(const QuantumCircuit &logical,
                            const CouplingMap &coupling,
                            const DistanceMatrix &dist, const Layout &initial,
                            const RoutingOptions &opts);

/**
 * Provider overload: scores through DistanceProvider rows.  With a
 * dense provider this is bit-identical to the matrix overload (the
 * router reads the same flat storage); a sparse provider only touches
 * the rows the routing decisions actually visit.
 */
RoutingResult route_circuit(const QuantumCircuit &logical,
                            const CouplingMap &coupling,
                            const DistanceProvider &dist,
                            const Layout &initial,
                            const RoutingOptions &opts);

/**
 * SABRE reverse-traversal initial layout: opts.layout_trials seed
 * layouts (random, plus embedding/degree heuristics when racing), each
 * refined by alternating forward/backward routing passes, raced on the
 * shared thread pool; the best refined layout (by scored SWAPs, then
 * depth, then trial index) wins.  Thin wrapper over LayoutSearch
 * (route/layout_search.h) that discards everything but the layout —
 * callers that also want the winner's retained routed pass use
 * search_and_route() instead.  Output is bit-identical for every
 * thread count, and layout_trials = 1 reproduces the historical
 * single-seed search exactly.
 */
Layout sabre_initial_layout(const QuantumCircuit &logical,
                            const CouplingMap &coupling,
                            const DistanceMatrix &dist,
                            const RoutingOptions &opts, int iterations = 3);

/** Provider overload of sabre_initial_layout (same contract). */
Layout sabre_initial_layout(const QuantumCircuit &logical,
                            const CouplingMap &coupling,
                            const DistanceProvider &dist,
                            const RoutingOptions &opts, int iterations = 3);

} // namespace nassc

#endif // NASSC_ROUTE_SABRE_H
