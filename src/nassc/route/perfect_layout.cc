#include "nassc/route/perfect_layout.h"

#include <algorithm>
#include <numeric>

namespace nassc {

std::vector<std::pair<int, int>>
interaction_edges(const QuantumCircuit &qc)
{
    std::vector<std::pair<int, int>> edges;
    for (const Gate &g : qc.gates()) {
        if (g.num_qubits() != 2 || !is_unitary_op(g.kind))
            continue;
        int a = std::min(g.qubits[0], g.qubits[1]);
        int b = std::max(g.qubits[0], g.qubits[1]);
        edges.emplace_back(a, b);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return edges;
}

namespace {

struct Searcher
{
    int nl, np;
    std::vector<std::vector<bool>> ladj; // logical adjacency
    const CouplingMap &cm;
    std::vector<int> order;   // logical vertices, most-constrained first
    std::vector<int> l2p;     // current assignment (-1 unassigned)
    std::vector<bool> used;   // physical occupancy
    long budget;
    // Deepest assignment seen so far (for find_partial_embedding).
    std::size_t best_depth = 0;
    std::vector<int> best_l2p;

    Searcher(const CouplingMap &coupling) : cm(coupling), budget(0) {}

    bool
    feasible(int l, int p) const
    {
        // Every already-assigned logical neighbour must sit adjacent.
        for (int m = 0; m < nl; ++m) {
            if (!ladj[l][m] || l2p[m] < 0)
                continue;
            if (!cm.connected(p, l2p[m]))
                return false;
        }
        return true;
    }

    bool
    solve(size_t depth)
    {
        if (depth > best_depth) {
            best_depth = depth;
            best_l2p = l2p;
        }
        if (depth == order.size())
            return true;
        if (--budget < 0)
            return false;
        int l = order[depth];
        for (int p = 0; p < np; ++p) {
            if (used[p] || !feasible(l, p))
                continue;
            l2p[l] = p;
            used[p] = true;
            if (solve(depth + 1))
                return true;
            used[p] = false;
            l2p[l] = -1;
            if (budget < 0)
                return false;
        }
        return false;
    }
};

} // namespace

namespace {

/** Shared setup: adjacency, degrees, most-constrained-first order. */
std::vector<int>
prepare_searcher(Searcher &s, const QuantumCircuit &qc)
{
    s.ladj.assign(s.nl, std::vector<bool>(s.nl, false));
    std::vector<int> degree(s.nl, 0);
    for (auto [a, b] : interaction_edges(qc)) {
        if (!s.ladj[a][b]) {
            s.ladj[a][b] = s.ladj[b][a] = true;
            ++degree[a];
            ++degree[b];
        }
    }
    s.order.resize(s.nl);
    std::iota(s.order.begin(), s.order.end(), 0);
    std::sort(s.order.begin(), s.order.end(),
              [&](int a, int b) { return degree[a] > degree[b]; });
    s.l2p.assign(s.nl, -1);
    s.used.assign(s.np, false);
    s.best_l2p = s.l2p;
    return degree;
}

} // namespace

std::optional<Layout>
find_perfect_layout(const QuantumCircuit &qc, const CouplingMap &cm,
                    long budget)
{
    int nl = qc.num_qubits();
    int np = cm.num_qubits();
    if (nl > np)
        return std::nullopt;

    Searcher s(cm);
    s.nl = nl;
    s.np = np;
    s.budget = budget;
    std::vector<int> degree = prepare_searcher(s, qc);

    // A logical vertex needing more neighbours than the densest physical
    // vertex can never embed.
    size_t max_pdeg = 0;
    for (int p = 0; p < np; ++p)
        max_pdeg = std::max(max_pdeg, cm.neighbors(p).size());
    for (int l = 0; l < nl; ++l)
        if (degree[l] > static_cast<int>(max_pdeg))
            return std::nullopt;

    if (!s.solve(0))
        return std::nullopt;
    return Layout::from_l2p(s.l2p, np);
}

PartialEmbedding
find_partial_embedding(const QuantumCircuit &qc, const CouplingMap &cm,
                       long budget)
{
    PartialEmbedding out;
    int nl = qc.num_qubits();
    int np = cm.num_qubits();
    out.l2p.assign(static_cast<std::size_t>(std::max(nl, 0)), -1);
    if (nl > np || nl == 0)
        return out;

    Searcher s(cm);
    s.nl = nl;
    s.np = np;
    s.budget = budget;
    prepare_searcher(s, qc);
    // No degree early-out here: even when a full embedding is provably
    // impossible, the deepest partial assignment is still a useful seed.
    out.complete = s.solve(0);
    out.l2p = out.complete ? s.l2p : s.best_l2p;
    for (int p : out.l2p)
        if (p >= 0)
            ++out.assigned;
    return out;
}

} // namespace nassc
