#include "nassc/route/perfect_layout.h"

#include <algorithm>
#include <numeric>

namespace nassc {

std::vector<std::pair<int, int>>
interaction_edges(const QuantumCircuit &qc)
{
    std::vector<std::pair<int, int>> edges;
    for (const Gate &g : qc.gates()) {
        if (g.num_qubits() != 2 || !is_unitary_op(g.kind))
            continue;
        int a = std::min(g.qubits[0], g.qubits[1]);
        int b = std::max(g.qubits[0], g.qubits[1]);
        edges.emplace_back(a, b);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return edges;
}

namespace {

struct Searcher
{
    int nl, np;
    std::vector<std::vector<bool>> ladj; // logical adjacency
    const CouplingMap &cm;
    std::vector<int> order;   // logical vertices, most-constrained first
    std::vector<int> l2p;     // current assignment (-1 unassigned)
    std::vector<bool> used;   // physical occupancy
    long budget;

    Searcher(const CouplingMap &coupling) : cm(coupling), budget(0) {}

    bool
    feasible(int l, int p) const
    {
        // Every already-assigned logical neighbour must sit adjacent.
        for (int m = 0; m < nl; ++m) {
            if (!ladj[l][m] || l2p[m] < 0)
                continue;
            if (!cm.connected(p, l2p[m]))
                return false;
        }
        return true;
    }

    bool
    solve(size_t depth)
    {
        if (depth == order.size())
            return true;
        if (--budget < 0)
            return false;
        int l = order[depth];
        for (int p = 0; p < np; ++p) {
            if (used[p] || !feasible(l, p))
                continue;
            l2p[l] = p;
            used[p] = true;
            if (solve(depth + 1))
                return true;
            used[p] = false;
            l2p[l] = -1;
            if (budget < 0)
                return false;
        }
        return false;
    }
};

} // namespace

std::optional<Layout>
find_perfect_layout(const QuantumCircuit &qc, const CouplingMap &cm,
                    long budget)
{
    int nl = qc.num_qubits();
    int np = cm.num_qubits();
    if (nl > np)
        return std::nullopt;

    Searcher s(cm);
    s.nl = nl;
    s.np = np;
    s.budget = budget;
    s.ladj.assign(nl, std::vector<bool>(nl, false));
    std::vector<int> degree(nl, 0);
    for (auto [a, b] : interaction_edges(qc)) {
        if (!s.ladj[a][b]) {
            s.ladj[a][b] = s.ladj[b][a] = true;
            ++degree[a];
            ++degree[b];
        }
    }
    // A logical vertex needing more neighbours than the densest physical
    // vertex can never embed.
    size_t max_pdeg = 0;
    for (int p = 0; p < np; ++p)
        max_pdeg = std::max(max_pdeg, cm.neighbors(p).size());
    for (int l = 0; l < nl; ++l)
        if (degree[l] > static_cast<int>(max_pdeg))
            return std::nullopt;

    s.order.resize(nl);
    std::iota(s.order.begin(), s.order.end(), 0);
    std::sort(s.order.begin(), s.order.end(),
              [&](int a, int b) { return degree[a] > degree[b]; });
    s.l2p.assign(nl, -1);
    s.used.assign(np, false);

    if (!s.solve(0))
        return std::nullopt;
    return Layout::from_l2p(s.l2p, np);
}

} // namespace nassc
