#ifndef NASSC_ROUTE_NASSC_ROUTER_H
#define NASSC_ROUTE_NASSC_ROUTER_H

/**
 * @file
 * Optimization-aware routing state (the core NASSC contribution).
 *
 * The tracker shadows the routed (physical) circuit as it is emitted and
 * maintains, per physical wire:
 *
 *  - the active two-qubit block unitary on each wire pair, giving the
 *    C2q reduction: how many of the 3 CNOTs of a candidate SWAP vanish
 *    when the SWAP is resynthesized into the block (paper Sec. IV-D);
 *
 *  - incremental commute sets of two-qubit gates (single-qubit gates are
 *    skipped, matching the paper), giving the Ccommute1 reduction when a
 *    CNOT on the same pair can cancel a CNOT of the SWAP, and Ccommute2
 *    when two SWAPs sandwich a commuting set (paper Sec. IV-E, Fig. 7-8);
 *
 *  - the trailing single-qubit gates of each wire, which the router moves
 *    through a flagged SWAP so they cannot block the cancellation.
 */

#include <cstdint>
#include <vector>

#include "nassc/ir/gate.h"
#include "nassc/math/complex_mat.h"
#include "nassc/route/sabre.h"

namespace nassc {

/** What a candidate SWAP would save, and how it must be decomposed. */
struct SwapReduction
{
    double total = 0.0; ///< sum of enabled C_k terms
    int c2q = 0;        ///< CNOTs saved via block resynthesis (0..3)
    bool commute1 = false;
    bool commute2 = false;
    SwapOrient orient = SwapOrient::kDefault;
    /** Output-circuit index of the earlier SWAP to re-flag (Ccommute2). */
    int partner_swap_out_idx = -1;
    /** Output-circuit index of the CNOT claimed by Ccommute1. */
    int used_record_idx = -1;
};

/** Routing-time optimization tracker (one per NASSC routing run). */
class OptAwareTracker
{
  public:
    OptAwareTracker(int num_physical, const RoutingOptions &opts);

    /**
     * Rewind to the freshly constructed state while keeping every
     * buffer's capacity (windows, trailing lists, evaluation cache), so
     * a reused Router re-enters NASSC routing without reallocating.
     * Wire versions keep counting up, which atomically invalidates all
     * cached evaluations.
     */
    void reset();

    /** Record an emitted physical gate occupying out-circuit slot idx. */
    void on_gate(const Gate &g, int out_idx);

    /**
     * Score a candidate SWAP on physical edge (p, q).
     *
     * Results are memoized per edge: an evaluation only reads the block,
     * window, and trailing state of wires p and q, so a cached result
     * stays exact until one of those wires is touched (a gate lands on
     * it, its trailing gates are taken, or a consume_record() erases one
     * of its window records).  Consecutive SWAP decisions share most of
     * their candidate edges, which makes the hit rate high while the
     * front layer is blocked.
     */
    SwapReduction evaluate_swap(int p, int q) const;

    /**
     * Mark the record at out-circuit index `out_idx` as consumed by a
     * flagged SWAP: a cancellation partner can serve only one SWAP, so
     * later candidates must not claim it again.
     */
    void consume_record(int out_idx);

    /**
     * Appends the out-circuit indices of the trailing 1q gates of wire p
     * (the gates a flagged SWAP moves through) to `out`, oldest first,
     * and clears the internal list.  The router marks them dead and
     * re-emits them retargeted; it passes a reused scratch buffer so the
     * hot path stays allocation-free.
     */
    void take_trailing_1q(int p, std::vector<int> &out);

  private:
    struct Rec
    {
        Gate gate;
        int out_idx;
    };

    void break_block(int p);
    void fold_trailing_into_window(int p);

    /** Invalidate cached evaluations involving wire p. */
    void
    touch_wire(int p)
    {
        ++wire_version_[p];
    }

    SwapReduction evaluate_swap_uncached(int p, int q) const;

    const RoutingOptions &opts_;
    int num_physical_;

    // --- two-qubit block state (C2q) ---
    std::vector<int> partner_;      ///< open-block partner wire or -1
    std::vector<Mat4> block_u_;     ///< block unitary, stored at min wire
    std::vector<Mat2> pending_mat_; ///< accumulated 1q prefix per wire

    // --- commute windows (Ccommute1/2) ---
    std::vector<std::vector<Rec>> window_;

    // --- trailing 1q gates per wire (movement through SWAPs) ---
    std::vector<std::vector<Rec>> trailing_;

    // --- per-edge evaluation cache (see evaluate_swap) ---
    struct CachedEval
    {
        std::uint64_t version_a = 0; ///< wire_version_[p] at compute time
        std::uint64_t version_b = 0; ///< wire_version_[q] at compute time
        SwapReduction red;
    };
    std::vector<std::uint64_t> wire_version_;
    mutable std::vector<CachedEval> eval_cache_; ///< indexed p*n + q
};

} // namespace nassc

#endif // NASSC_ROUTE_NASSC_ROUTER_H
