#ifndef NASSC_ROUTE_LAYOUT_H
#define NASSC_ROUTE_LAYOUT_H

/**
 * @file
 * Logical-to-physical qubit assignment, mutated by SWAP insertion.
 */

#include <random>
#include <vector>

namespace nassc {

/** Bijective-on-its-image mapping of logical onto physical qubits. */
class Layout
{
  public:
    Layout() = default;

    /** Trivial layout: logical i on physical i. */
    Layout(int num_logical, int num_physical);

    /** Uniformly random injection of logicals into physicals. */
    static Layout random(int num_logical, int num_physical,
                         std::mt19937 &rng);

    /** Build from an explicit logical->physical vector. */
    static Layout from_l2p(const std::vector<int> &l2p, int num_physical);

    int num_logical() const { return static_cast<int>(l2p_.size()); }
    int num_physical() const { return static_cast<int>(p2l_.size()); }

    /** Physical qubit currently holding logical l. */
    int phys_of(int l) const { return l2p_[l]; }

    /** Logical qubit on physical p, or -1 if p is an ancilla. */
    int log_of(int p) const { return p2l_[p]; }

    /** Exchange the contents of two physical qubits. */
    void swap_physical(int p, int q);

    const std::vector<int> &l2p() const { return l2p_; }

  private:
    std::vector<int> l2p_;
    std::vector<int> p2l_;
};

} // namespace nassc

#endif // NASSC_ROUTE_LAYOUT_H
