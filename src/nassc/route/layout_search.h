#ifndef NASSC_ROUTE_LAYOUT_SEARCH_H
#define NASSC_ROUTE_LAYOUT_SEARCH_H

/**
 * @file
 * Parallel multi-trial initial-layout search.
 *
 * LayoutSearch generalizes the SABRE reverse-traversal mapping search
 * (paper Sec. IV-A) from one random seed layout to opts.layout_trials
 * independent ones, raced across ThreadPool workers and scored so that
 * the winner — and therefore every downstream routing decision — is
 * bit-identical for every thread count:
 *
 *  - Trial t's seed is a pure function of (opts.seed, t): trial 0 keeps
 *    opts.seed unchanged (making layout_trials = 1 bit-identical to the
 *    historical single-seed search), later trials mix the pair through
 *    the same FNV-1a construction as derive_job_seed().
 *  - Each trial refines its random layout by opts-configured forward /
 *    reverse routing passes, then (only when racing > 1 trial) routes
 *    the forward circuit once more to score the refined layout.
 *  - The best trial is the lexicographic minimum of (routed SWAP count,
 *    routed depth, trial index) — no wall-clock, no scheduling order.
 *
 * Worker-slot reuse: the forward and reverse DAGs are built once and
 * shared read-only; each ThreadPool worker slot lazily builds one pair
 * of Routers and reuses them across all trials it executes, so the
 * per-trial cost is just the routing passes themselves.
 *
 * The engine runs on ThreadPool::shared() by default.  When the caller
 * is itself a pool task (a BatchTranspiler job mid-sweep), the pool's
 * nested-parallelism guard runs the trials inline — one saturated level
 * of parallelism, never two.
 */

#include <memory>
#include <vector>

#include "nassc/ir/circuit.h"
#include "nassc/ir/dag.h"
#include "nassc/route/layout.h"
#include "nassc/route/sabre.h"
#include "nassc/topo/coupling_map.h"
#include "nassc/topo/distance_matrix.h"

namespace nassc {

class Router;
class ThreadPool;

/**
 * Deterministic per-trial seed: trial 0 is `base_seed` itself (exact
 * single-trial compatibility), trial t > 0 an FNV-1a mix of the pair.
 * Pure function of its arguments — never of scheduling order.
 */
unsigned derive_trial_seed(unsigned base_seed, int trial);

/** Outcome of one layout trial (scores are -1 when not scored). */
struct LayoutTrial
{
    Layout layout;     ///< refined layout after the reverse traversal
    unsigned seed = 0; ///< effective RNG seed of this trial
    int trial = 0;     ///< trial index
    int swaps = -1;    ///< scoring pass SWAP count (trials > 1 only)
    int depth = -1;    ///< scoring pass routed depth (trials > 1 only)
};

/** Multi-trial reverse-traversal layout engine. */
class LayoutSearch
{
  public:
    /**
     * Binds the inputs; `logical`, `coupling`, and `dist` must outlive
     * the search.  Gate widths are validated by the Routers.
     */
    LayoutSearch(const QuantumCircuit &logical, const CouplingMap &coupling,
                 const DistanceMatrix &dist, const RoutingOptions &opts,
                 int iterations = 3);
    ~LayoutSearch();

    LayoutSearch(const LayoutSearch &) = delete;
    LayoutSearch &operator=(const LayoutSearch &) = delete;

    /**
     * Run opts.layout_trials trials on `pool` (nullptr = shared pool),
     * capped at opts.layout_threads workers, and return the best
     * refined layout.  Bit-identical for every thread count.
     */
    Layout run(ThreadPool *pool = nullptr);

    /** All trial outcomes of the last run(), indexed by trial. */
    const std::vector<LayoutTrial> &trials() const { return trials_; }

    /** Index into trials() of the winning trial of the last run(). */
    int best_trial() const { return best_trial_; }

  private:
    struct WorkerCtx; ///< per-worker-slot Router pair

    WorkerCtx &ctx(int worker);
    void run_trial(int trial, int worker);

    const CouplingMap &coupling_;
    const DistanceMatrix &dist_;
    RoutingOptions opts_; ///< routing options with algorithm forced to SABRE
    const int trials_requested_;
    const int iterations_;
    const int num_logical_;

    QuantumCircuit fwd_;
    QuantumCircuit rev_;
    DagCircuit fwd_dag_;
    DagCircuit rev_dag_;

    std::vector<std::unique_ptr<WorkerCtx>> workers_;
    std::vector<LayoutTrial> trials_;
    int best_trial_ = -1;
};

} // namespace nassc

#endif // NASSC_ROUTE_LAYOUT_SEARCH_H
