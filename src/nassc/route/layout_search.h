#ifndef NASSC_ROUTE_LAYOUT_SEARCH_H
#define NASSC_ROUTE_LAYOUT_SEARCH_H

/**
 * @file
 * Parallel multi-trial initial-layout search with routed-pass retention.
 *
 * LayoutSearch generalizes the SABRE reverse-traversal mapping search
 * (paper Sec. IV-A) from one random seed layout to opts.layout_trials
 * independent ones, raced across Scheduler workers and scored so that
 * the winner — and therefore every downstream routing decision — is
 * bit-identical for every thread count:
 *
 *  - Trial 0's seed layout is drawn from opts.seed unchanged (making
 *    layout_trials = 1 bit-identical to the historical single-seed
 *    search).  When racing more than one trial, trial 1 is seeded from
 *    the deepest find_partial_embedding() assignment (completed
 *    greedily) and trial 2 from a degree-matched heuristic; every other
 *    trial draws a random layout from an FNV-1a mix of (opts.seed, t) —
 *    the same construction as derive_job_seed().
 *  - Each trial refines its seed layout by opts-configured forward /
 *    reverse routing passes over the circuit WITHOUT its non-unitary
 *    ops (bit-compatible with the historical search), then scores the
 *    refined layout with one forward routing pass over the FULL circuit
 *    — measures and barriers routed by mapping their operands through
 *    the live layout, exactly as route_circuit() would.  The scoring
 *    pass runs whenever something consumes it — a race to decide, or
 *    retention to feed; the single-trial pure-layout path skips it and
 *    keeps the historical cost (swaps/depth stay -1 there).
 *  - The best trial is the lexicographic minimum of (scored SWAP count,
 *    scored depth, trial index) — no wall-clock, no scheduling order.
 *
 * Routed-pass retention: when opts.reuse_routing is set and the
 * downstream pipeline is plain SABRE (opts.algorithm == kSabre), the
 * scoring pass routes with exactly the options route_circuit() would
 * use, so the winner's RoutingResult is retained and returned in
 * LayoutSearchResult::routed — transpile() skips its separate routing
 * step entirely and multi-trial transpiles become strictly cheaper than
 * scoring-then-rerouting.  Retention is never legal for kNassc
 * pipelines: the search scores with the SABRE cost model (Sec. IV-A)
 * while the final NASSC route uses the optimization-aware tracker.
 *
 * Worker-slot reuse: the forward and reverse DAGs are built once and
 * shared read-only; each Scheduler job slot lazily builds one set of
 * Routers and reuses them across all trials it executes, so the
 * per-trial cost is just the routing passes themselves.  Slots are
 * per-job and stable even as workers steal between jobs (see
 * service/scheduler.h), so the table can never be contended.
 *
 * The engine runs on Scheduler::shared() by default.  When the caller
 * is itself a scheduler task (a BatchTranspiler job mid-sweep), the
 * nested-parallelism guard runs the trials inline — one saturated level
 * of parallelism, never two.
 */

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "nassc/ir/circuit.h"
#include "nassc/ir/dag.h"
#include "nassc/route/layout.h"
#include "nassc/route/sabre.h"
#include "nassc/topo/coupling_map.h"
#include "nassc/topo/distance_matrix.h"
#include "nassc/topo/distance_provider.h"

namespace nassc {

class Router;
class Scheduler;

/**
 * Deterministic per-trial seed: trial 0 is `base_seed` itself (exact
 * single-trial compatibility), trial t > 0 an FNV-1a mix of the pair.
 * Pure function of its arguments — never of scheduling order.
 */
unsigned derive_trial_seed(unsigned base_seed, int trial);

/** How a trial's seed layout was constructed. */
enum class TrialSeedKind {
    kRandom,    ///< Layout::random from the trial's derived seed
    kEmbedding, ///< find_partial_embedding, completed greedily
    kDegree,    ///< interaction degree matched to coupling degree
};

/** Outcome of one layout trial.  swaps/depth come from the trial's
 *  full-circuit scoring pass; they stay -1 (unscored) only on the
 *  single-trial pure-layout path (no race to decide, no retention to
 *  feed), which therefore keeps the historical single-pass cost. */
struct LayoutTrial
{
    Layout layout;     ///< refined layout after the reverse traversal
    unsigned seed = 0; ///< effective RNG seed of this trial
    int trial = 0;     ///< trial index
    TrialSeedKind kind = TrialSeedKind::kRandom;
    int swaps = -1;    ///< full-circuit scoring pass SWAP count
    int depth = -1;    ///< full-circuit scoring pass routed depth
    /** False when the trial was skipped by an expired deadline poll
     *  (Scheduler::current_job_expired() at the trial boundary) — the
     *  trial holds no layout and never enters the arg-min. */
    bool consumed = false;
};

/** Everything LayoutSearch::run() learned. */
struct LayoutSearchResult
{
    Layout initial; ///< the winning refined layout
    /**
     * The winning trial's full-circuit scoring pass, retained when
     * reuse is legal (opts.reuse_routing and opts.algorithm == kSabre).
     * Bit-identical to route_circuit(full, coupling, dist, initial,
     * opts) — callers holding it skip that call outright.
     */
    std::optional<RoutingResult> routed;
    std::vector<LayoutTrial> trials; ///< all outcomes, indexed by trial
    int best_trial = -1;             ///< index of the winner in trials
    /** Full-circuit scoring passes the search performed (== consumed
     *  trials when racing or retaining, 0 on the pure-layout
     *  single-trial path). */
    int scoring_passes = 0;
    /** Trials that actually ran to completion; < trials.size() only
     *  when a deadline expired mid-race. */
    int trials_consumed = 0;
    /** True when a deadline cut the race short: the winner is the best
     *  of the COMPLETED trials.  run() throws TranspileDeadlineExceeded
     *  instead when no trial at all completed. */
    bool deadline_hit = false;
};

/** Multi-trial reverse-traversal layout engine. */
class LayoutSearch
{
  public:
    /**
     * Binds the inputs; `coupling`, and `dist` must outlive the search
     * (`logical` is copied).  Gate widths are validated by the Routers.
     */
    LayoutSearch(const QuantumCircuit &logical, const CouplingMap &coupling,
                 const DistanceMatrix &dist, const RoutingOptions &opts,
                 int iterations = 3);

    /**
     * Provider overload: trials score through DistanceProvider rows.
     * Dense providers reproduce the matrix overload bit-for-bit (same
     * flat storage); sparse providers only touch visited rows.
     */
    LayoutSearch(const QuantumCircuit &logical, const CouplingMap &coupling,
                 const DistanceProvider &dist, const RoutingOptions &opts,
                 int iterations = 3);
    ~LayoutSearch();

    LayoutSearch(const LayoutSearch &) = delete;
    LayoutSearch &operator=(const LayoutSearch &) = delete;

    /**
     * Run opts.layout_trials trials on `scheduler` (nullptr = the
     * shared scheduler), capped at opts.layout_threads workers.
     * Bit-identical for every thread count and steal schedule; every
     * trial carries a scored (swaps, depth) pair.
     */
    LayoutSearchResult run(Scheduler *scheduler = nullptr);

  private:
    struct WorkerCtx; ///< per-worker-slot Router set

    WorkerCtx &ctx(int worker);
    Router &score_router(WorkerCtx &c);
    void run_trial(int trial, int worker);
    Layout seed_layout(int trial, unsigned seed, TrialSeedKind &kind) const;
    Layout embedding_seed_layout() const;
    Layout degree_seed_layout() const;

    const CouplingMap &coupling_;
    /** Wraps the matrix-ctor argument so both ctors share one path. */
    std::unique_ptr<DenseDistanceProvider> borrowed_;
    const DistanceProvider *dist_; ///< never null after construction
    RoutingOptions opts_; ///< routing options with algorithm forced to SABRE
    const bool retain_;   ///< keep the winner's scoring pass for reuse
    const int trials_requested_;
    const int iterations_;
    const int num_logical_;

    QuantumCircuit fwd_; ///< logical circuit without non-unitary ops
    QuantumCircuit rev_;
    DagCircuit fwd_dag_;
    DagCircuit rev_dag_;
    /** Full-circuit DAG for scoring; empty when fwd_ already is full. */
    std::optional<DagCircuit> full_dag_;

    std::vector<std::unique_ptr<WorkerCtx>> workers_;
    std::vector<LayoutTrial> trials_;
    /** Keep-min retention (retain mode only): each finishing trial
     *  replaces the kept RoutingResult iff its (swaps, depth, trial)
     *  key is smaller — a total order independent of arrival order, so
     *  the kept pass is the arg-min winner's for every thread count
     *  while only one routed circuit stays alive at a time. */
    std::mutex retained_mu_;
    RoutingResult retained_;
    int retained_trial_ = -1;
    int retained_swaps_ = -1;
    int retained_depth_ = -1;
    int best_trial_ = -1;
};

/**
 * One-shot entry point: run the search and hand back the full result,
 * including the retained routed pass when reuse is legal.  transpile()
 * drives this; sabre_initial_layout() remains the layout-only wrapper.
 */
LayoutSearchResult search_and_route(const QuantumCircuit &logical,
                                    const CouplingMap &coupling,
                                    const DistanceMatrix &dist,
                                    const RoutingOptions &opts,
                                    int iterations = 3,
                                    Scheduler *scheduler = nullptr);

/** Provider overload of search_and_route (same contract). */
LayoutSearchResult search_and_route(const QuantumCircuit &logical,
                                    const CouplingMap &coupling,
                                    const DistanceProvider &dist,
                                    const RoutingOptions &opts,
                                    int iterations = 3,
                                    Scheduler *scheduler = nullptr);

} // namespace nassc

#endif // NASSC_ROUTE_LAYOUT_SEARCH_H
