#ifndef NASSC_ROUTE_PERFECT_LAYOUT_H
#define NASSC_ROUTE_PERFECT_LAYOUT_H

/**
 * @file
 * Subgraph-isomorphism layout search (the role of Qiskit's VF2Layout):
 * if the circuit's interaction graph embeds into the coupling graph, a
 * perfect layout needs zero SWAPs and routing is the identity.
 *
 * Backtracking with degree-based vertex ordering and a work budget; this
 * is exact for the benchmark sizes used here (<= 27 qubits).
 */

#include <optional>
#include <vector>

#include "nassc/ir/circuit.h"
#include "nassc/route/layout.h"
#include "nassc/topo/coupling_map.h"

namespace nassc {

/** Undirected interaction graph of a circuit's two-qubit gates. */
std::vector<std::pair<int, int>>
interaction_edges(const QuantumCircuit &qc);

/**
 * Search for an injective mapping of logical onto physical qubits such
 * that every interacting pair lands on a coupled pair.
 *
 * @param budget maximum number of backtracking steps
 * @return a perfect layout, or nullopt if none found within budget
 */
std::optional<Layout>
find_perfect_layout(const QuantumCircuit &qc, const CouplingMap &cm,
                    long budget = 200000);

/**
 * Deepest assignment reached by the perfect-layout backtracking within
 * its budget.  `l2p[l]` is -1 for the logical qubits left unassigned;
 * `complete` marks a genuine perfect layout.  Deterministic: a pure
 * function of (circuit, coupling, budget), never of timing — the
 * multi-trial layout search seeds one trial from it.
 */
struct PartialEmbedding
{
    std::vector<int> l2p;
    int assigned = 0;
    bool complete = false;
};

PartialEmbedding find_partial_embedding(const QuantumCircuit &qc,
                                        const CouplingMap &cm,
                                        long budget = 200000);

} // namespace nassc

#endif // NASSC_ROUTE_PERFECT_LAYOUT_H
