#include "nassc/route/layout_search.h"

#include <algorithm>
#include <random>

#include "nassc/ir/fnv1a.h"
#include "nassc/route/router.h"
#include "nassc/service/thread_pool.h"

namespace nassc {

unsigned
derive_trial_seed(unsigned base_seed, int trial)
{
    // Trial 0 keeps the caller's seed so a single-trial search is
    // bit-identical to the historical sabre_initial_layout().
    if (trial == 0)
        return base_seed;
    // FNV-1a over (base_seed, trial), folded to 32 bits — the same
    // construction as derive_job_seed(), and like it a pure function of
    // its arguments, never of scheduling order.
    Fnv1a mix;
    mix.u32(base_seed);
    mix.u32(static_cast<std::uint32_t>(trial));
    return mix.fold32();
}

namespace {

QuantumCircuit
reversed(const QuantumCircuit &c)
{
    QuantumCircuit r(c.num_qubits());
    for (auto it = c.gates().rbegin(); it != c.gates().rend(); ++it)
        r.append(*it);
    return r;
}

RoutingOptions
mapping_options(const RoutingOptions &opts)
{
    RoutingOptions lopts = opts;
    // The mapping search is shared between SABRE and NASSC (paper
    // Sec. IV-A): trials always refine with the plain SABRE cost.
    lopts.algorithm = RoutingAlgorithm::kSabre;
    return lopts;
}

} // namespace

/** One pool worker slot's reusable Routers (forward + reverse). */
struct LayoutSearch::WorkerCtx
{
    Router fwd;
    Router rev;

    WorkerCtx(const DagCircuit &fwd_dag, const DagCircuit &rev_dag,
              const CouplingMap &coupling, const DistanceMatrix &dist,
              const RoutingOptions &opts)
        : fwd(fwd_dag, coupling, dist, opts),
          rev(rev_dag, coupling, dist, opts)
    {
    }
};

LayoutSearch::LayoutSearch(const QuantumCircuit &logical,
                           const CouplingMap &coupling,
                           const DistanceMatrix &dist,
                           const RoutingOptions &opts, int iterations)
    : coupling_(coupling), dist_(dist), opts_(mapping_options(opts)),
      trials_requested_(opts.layout_trials), iterations_(iterations),
      num_logical_(logical.num_qubits()),
      fwd_(logical.without_non_unitary()), rev_(reversed(fwd_)),
      fwd_dag_(fwd_), rev_dag_(rev_)
{
}

LayoutSearch::~LayoutSearch() = default;

LayoutSearch::WorkerCtx &
LayoutSearch::ctx(int worker)
{
    // Worker slots are distinct per parallel_for, so no two threads can
    // race on one entry; the Routers are built on first use and reused
    // for every later trial this slot executes.
    auto &slot = workers_[static_cast<std::size_t>(worker)];
    if (!slot)
        slot = std::make_unique<WorkerCtx>(fwd_dag_, rev_dag_, coupling_,
                                           dist_, opts_);
    return *slot;
}

void
LayoutSearch::run_trial(int trial, int worker)
{
    WorkerCtx &c = ctx(worker);
    LayoutTrial &out = trials_[static_cast<std::size_t>(trial)];
    out.trial = trial;
    out.seed = derive_trial_seed(opts_.seed, trial);

    std::mt19937 rng(out.seed);
    // Layout::random rejects circuits wider than the device.
    Layout layout =
        Layout::random(num_logical_, coupling_.num_qubits(), rng);

    // Reverse-traversal refinement (SABRE): alternate forward and
    // backward routing, carrying the final layout across passes.
    for (int iter = 0; iter < iterations_; ++iter) {
        layout = c.fwd.route_to_layout(layout);
        layout = c.rev.route_to_layout(layout);
    }

    if (trials_.size() > 1) {
        // Score the refined layout with one forward routing pass.  The
        // cost is deterministic data (SWAPs, then routed depth), so the
        // later arg-min is independent of timing and thread count.
        RoutingResult scored = c.fwd.run(layout);
        out.swaps = scored.stats.num_swaps;
        out.depth = scored.circuit.depth();
    }
    out.layout = std::move(layout);
}

Layout
LayoutSearch::run(ThreadPool *pool)
{
    const int trials = std::max(1, trials_requested_);
    trials_.assign(static_cast<std::size_t>(trials), LayoutTrial{});

    // The default single-trial search runs inline and never touches
    // the pool — transpile() with default options must not spawn a
    // process-wide worker pool as a side effect.
    if (trials == 1) {
        if (workers_.empty())
            workers_.resize(1);
        run_trial(0, 0);
        best_trial_ = 0;
        return trials_[0].layout;
    }

    ThreadPool &tp = pool ? *pool : ThreadPool::shared();
    // Resolve the worker cap HERE and pass the same value to both the
    // slot table and parallel_for: worker ids are < cap by contract,
    // so the table can never be outgrown even if another thread grows
    // the shared pool between these lines.  An explicit layout_threads
    // request first grows the pool (hardware_concurrency under-reports
    // in cgroup-limited containers); 0 takes the pool as it is.
    int cap = opts_.layout_threads;
    if (cap > 0)
        tp.ensure_workers(std::min(cap, trials));
    else
        cap = tp.num_threads() + 1;
    if (cap > trials)
        cap = trials;
    if (workers_.size() < static_cast<std::size_t>(cap))
        workers_.resize(static_cast<std::size_t>(cap));

    tp.parallel_for(
        static_cast<std::size_t>(trials),
        [this](std::size_t t, int w) {
            run_trial(static_cast<int>(t), w);
        },
        cap);

    // Deterministic arg-min over (swaps, depth, trial index).  With one
    // trial there is nothing to compare (and nothing was scored).
    best_trial_ = 0;
    for (int t = 1; t < trials; ++t) {
        const LayoutTrial &a = trials_[static_cast<std::size_t>(t)];
        const LayoutTrial &b =
            trials_[static_cast<std::size_t>(best_trial_)];
        if (a.swaps < b.swaps ||
            (a.swaps == b.swaps && a.depth < b.depth))
            best_trial_ = t;
    }
    return trials_[static_cast<std::size_t>(best_trial_)].layout;
}

} // namespace nassc
