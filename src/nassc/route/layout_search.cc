#include "nassc/route/layout_search.h"

#include <algorithm>
#include <limits>
#include <random>

#include "nassc/ir/fnv1a.h"
#include "nassc/obs/metrics.h"
#include "nassc/obs/trace.h"
#include "nassc/route/perfect_layout.h"
#include "nassc/route/router.h"
#include "nassc/service/errors.h"
#include "nassc/service/failpoint.h"
#include "nassc/service/scheduler.h"

namespace nassc {

unsigned
derive_trial_seed(unsigned base_seed, int trial)
{
    // Trial 0 keeps the caller's seed so a single-trial search is
    // bit-identical to the historical sabre_initial_layout().
    if (trial == 0)
        return base_seed;
    // FNV-1a over (base_seed, trial), folded to 32 bits — the same
    // construction as derive_job_seed(), and like it a pure function of
    // its arguments, never of scheduling order.
    Fnv1a mix;
    mix.u32(base_seed);
    mix.u32(static_cast<std::uint32_t>(trial));
    return mix.fold32();
}

namespace {

/** Backtracking budget for the trial-1 embedding seed: enough to find
 *  genuine chain/tree embeddings outright, bounded so dense interaction
 *  graphs (which can never embed) cost a few milliseconds, not the
 *  perfect-layout default budget. */
constexpr long kEmbedSeedBudget = 20000;

QuantumCircuit
reversed(const QuantumCircuit &c)
{
    QuantumCircuit r(c.num_qubits());
    for (auto it = c.gates().rbegin(); it != c.gates().rend(); ++it)
        r.append(*it);
    return r;
}

RoutingOptions
mapping_options(const RoutingOptions &opts)
{
    RoutingOptions lopts = opts;
    // The mapping search is shared between SABRE and NASSC (paper
    // Sec. IV-A): trials always refine and score with the plain SABRE
    // cost.  This is also what makes retention legal exactly when the
    // downstream pipeline is kSabre: the scoring pass then routes with
    // the downstream options verbatim.
    lopts.algorithm = RoutingAlgorithm::kSabre;
    return lopts;
}

} // namespace

/** One pool worker slot's reusable Routers (forward + reverse + score). */
struct LayoutSearch::WorkerCtx
{
    Router fwd;
    Router rev;
    /** Full-circuit scoring router; built lazily, only when the circuit
     *  has non-unitary ops (otherwise fwd doubles as the scorer). */
    std::unique_ptr<Router> score;

    WorkerCtx(const DagCircuit &fwd_dag, const DagCircuit &rev_dag,
              const CouplingMap &coupling, const DistanceProvider &dist,
              const RoutingOptions &opts)
        : fwd(fwd_dag, coupling, dist, opts),
          rev(rev_dag, coupling, dist, opts)
    {
    }
};

LayoutSearch::LayoutSearch(const QuantumCircuit &logical,
                           const CouplingMap &coupling,
                           const DistanceMatrix &dist,
                           const RoutingOptions &opts, int iterations)
    : coupling_(coupling),
      borrowed_(std::make_unique<DenseDistanceProvider>(
          DenseDistanceProvider::borrowed(dist))),
      dist_(borrowed_.get()), opts_(mapping_options(opts)),
      retain_(opts.reuse_routing &&
              opts.algorithm == RoutingAlgorithm::kSabre),
      trials_requested_(opts.layout_trials), iterations_(iterations),
      num_logical_(logical.num_qubits()),
      fwd_(logical.without_non_unitary()), rev_(reversed(fwd_)),
      fwd_dag_(fwd_), rev_dag_(rev_)
{
    // The refinement passes route the stripped circuit (historical,
    // bit-compatible); the scoring pass must route what route_circuit()
    // would see, so a second DAG exists exactly when they differ.
    if (logical.size() != fwd_.size())
        full_dag_.emplace(logical);
}

LayoutSearch::LayoutSearch(const QuantumCircuit &logical,
                           const CouplingMap &coupling,
                           const DistanceProvider &dist,
                           const RoutingOptions &opts, int iterations)
    : coupling_(coupling), dist_(&dist), opts_(mapping_options(opts)),
      retain_(opts.reuse_routing &&
              opts.algorithm == RoutingAlgorithm::kSabre),
      trials_requested_(opts.layout_trials), iterations_(iterations),
      num_logical_(logical.num_qubits()),
      fwd_(logical.without_non_unitary()), rev_(reversed(fwd_)),
      fwd_dag_(fwd_), rev_dag_(rev_)
{
    if (logical.size() != fwd_.size())
        full_dag_.emplace(logical);
}

LayoutSearch::~LayoutSearch() = default;

LayoutSearch::WorkerCtx &
LayoutSearch::ctx(int worker)
{
    // Worker slots are distinct per parallel_for, so no two threads can
    // race on one entry; the Routers are built on first use and reused
    // for every later trial this slot executes.
    auto &slot = workers_[static_cast<std::size_t>(worker)];
    if (!slot)
        slot = std::make_unique<WorkerCtx>(fwd_dag_, rev_dag_, coupling_,
                                           *dist_, opts_);
    return *slot;
}

Router &
LayoutSearch::score_router(WorkerCtx &c)
{
    if (!full_dag_)
        return c.fwd;
    if (!c.score)
        c.score = std::make_unique<Router>(*full_dag_, coupling_, *dist_,
                                           opts_);
    return *c.score;
}

Layout
LayoutSearch::embedding_seed_layout() const
{
    // Deepest partial embedding within a fixed budget, completed by a
    // greedy pass: each unassigned logical takes the free physical
    // qubit closest (by the search's own metric) to its already-placed
    // interaction neighbours, ties to the lowest index.  Deterministic,
    // so the trial stays bit-identical across thread counts.
    const int np = coupling_.num_qubits();
    PartialEmbedding pe =
        find_partial_embedding(fwd_, coupling_, kEmbedSeedBudget);
    std::vector<int> l2p = std::move(pe.l2p);
    l2p.resize(static_cast<std::size_t>(num_logical_), -1);

    std::vector<bool> used(static_cast<std::size_t>(np), false);
    for (int p : l2p)
        if (p >= 0)
            used[static_cast<std::size_t>(p)] = true;

    std::vector<std::vector<int>> nbrs(
        static_cast<std::size_t>(num_logical_));
    for (auto [a, b] : interaction_edges(fwd_)) {
        nbrs[static_cast<std::size_t>(a)].push_back(b);
        nbrs[static_cast<std::size_t>(b)].push_back(a);
    }

    // Rows of the already-placed interaction neighbours are fetched
    // once per logical qubit (row-oriented for the sparse provider).
    // Per-candidate accumulation keeps the historical m-order, and
    // D(mp, p) == D(p, mp) exactly under both metrics (BFS trivially;
    // Floyd-Warshall preserves symmetry), so the dense path picks the
    // same best_p bit-for-bit as the old column-wise reads.
    std::vector<DistanceRow> placed_rows;
    for (int l = 0; l < num_logical_; ++l) {
        if (l2p[static_cast<std::size_t>(l)] >= 0)
            continue;
        placed_rows.clear();
        for (int m : nbrs[static_cast<std::size_t>(l)]) {
            int mp = l2p[static_cast<std::size_t>(m)];
            if (mp >= 0)
                placed_rows.push_back(dist_->row(mp));
        }
        int best_p = -1;
        double best_cost = std::numeric_limits<double>::infinity();
        for (int p = 0; p < np; ++p) {
            if (used[static_cast<std::size_t>(p)])
                continue;
            double cost = 0.0;
            for (const DistanceRow &r : placed_rows)
                cost += r[p];
            if (cost < best_cost) {
                best_cost = cost;
                best_p = p;
            }
        }
        l2p[static_cast<std::size_t>(l)] = best_p;
        used[static_cast<std::size_t>(best_p)] = true;
    }
    return Layout::from_l2p(l2p, np);
}

Layout
LayoutSearch::degree_seed_layout() const
{
    // Rank-match interaction degree against coupling degree: the
    // busiest logical qubits land on the best-connected physical ones.
    // Pure function of (circuit, coupling); ties break on index.
    const int np = coupling_.num_qubits();
    std::vector<int> ldeg(static_cast<std::size_t>(num_logical_), 0);
    for (auto [a, b] : interaction_edges(fwd_)) {
        ++ldeg[static_cast<std::size_t>(a)];
        ++ldeg[static_cast<std::size_t>(b)];
    }
    std::vector<int> lorder(static_cast<std::size_t>(num_logical_));
    std::vector<int> porder(static_cast<std::size_t>(np));
    for (int l = 0; l < num_logical_; ++l)
        lorder[static_cast<std::size_t>(l)] = l;
    for (int p = 0; p < np; ++p)
        porder[static_cast<std::size_t>(p)] = p;
    std::sort(lorder.begin(), lorder.end(), [&](int a, int b) {
        int da = ldeg[static_cast<std::size_t>(a)];
        int db = ldeg[static_cast<std::size_t>(b)];
        return da != db ? da > db : a < b;
    });
    std::sort(porder.begin(), porder.end(), [&](int a, int b) {
        auto da = coupling_.neighbors(a).size();
        auto db = coupling_.neighbors(b).size();
        return da != db ? da > db : a < b;
    });
    std::vector<int> l2p(static_cast<std::size_t>(num_logical_), -1);
    for (int i = 0; i < num_logical_; ++i)
        l2p[static_cast<std::size_t>(lorder[static_cast<std::size_t>(i)])] =
            porder[static_cast<std::size_t>(i)];
    return Layout::from_l2p(l2p, np);
}

Layout
LayoutSearch::seed_layout(int trial, unsigned seed,
                          TrialSeedKind &kind) const
{
    // Heuristic seeds exist to raise the ceiling of what racing can
    // find; they only occupy trials 1 and 2 when there IS a race, so a
    // single-trial search remains the historical random-seed traversal.
    // (Too-wide circuits fall through to Layout::random's clear error.)
    if (trials_requested_ > 1 && num_logical_ <= coupling_.num_qubits()) {
        if (trial == 1) {
            kind = TrialSeedKind::kEmbedding;
            return embedding_seed_layout();
        }
        if (trial == 2) {
            kind = TrialSeedKind::kDegree;
            return degree_seed_layout();
        }
    }
    kind = TrialSeedKind::kRandom;
    std::mt19937 rng(seed);
    // Layout::random rejects circuits wider than the device.
    return Layout::random(num_logical_, coupling_.num_qubits(), rng);
}

void
LayoutSearch::run_trial(int trial, int worker)
{
    LayoutTrial &out = trials_[static_cast<std::size_t>(trial)];
    out.trial = trial;
    out.seed = derive_trial_seed(opts_.seed, trial);

    // Cooperative deadline poll at the trial boundary (the same seam as
    // the cancel poll): an expired budget skips the whole trial, which
    // stays unconsumed and invisible to the arg-min.  Deadline-free
    // runs never take the branch, keeping the race bit-identical.
    if (Scheduler::current_job_expired())
        return;
    failpoint::hit("layout.trial");
    // One span per CONSUMED trial (deadline-skipped trials record
    // nothing); workers carry the owning request's tracer through the
    // scheduler's Job seam, so concurrent requests never mix spans.
    obs::TraceSpan span("layout_trial",
                        &obs::StackMetrics::get().layout_trial_us);

    WorkerCtx &c = ctx(worker);
    Layout layout = seed_layout(trial, out.seed, out.kind);

    // Reverse-traversal refinement (SABRE): alternate forward and
    // backward routing, carrying the final layout across passes.
    for (int iter = 0; iter < iterations_; ++iter) {
        layout = c.fwd.route_to_layout(layout);
        layout = c.rev.route_to_layout(layout);
    }

    // Score the refined layout with one forward pass over the FULL
    // circuit whenever something consumes the result: a race needs the
    // (swaps, depth) key to decide, retention needs the routed circuit
    // itself (there the pass IS the downstream route, never wasted
    // work).  The single-trial pure-layout path skips it outright so
    // sabre_initial_layout callers keep the historical cost.  The
    // score is deterministic data, so the later arg-min is independent
    // of timing and thread count.
    if (trials_.size() > 1 || retain_) {
        RoutingResult scored = score_router(c).run(layout);
        out.swaps = scored.stats.num_swaps;
        out.depth = scored.circuit.depth();
        if (retain_) {
            // Keep-min reduction: replace the retained pass iff this
            // trial's (swaps, depth, trial) key is smaller.  The key
            // order is total and arrival-independent, so exactly the
            // arg-min winner's pass survives — and only one routed
            // circuit is alive at a time, not one per trial.
            std::lock_guard<std::mutex> lock(retained_mu_);
            if (retained_trial_ < 0 ||
                std::make_tuple(out.swaps, out.depth, trial) <
                    std::make_tuple(retained_swaps_, retained_depth_,
                                    retained_trial_)) {
                retained_ = std::move(scored);
                retained_trial_ = trial;
                retained_swaps_ = out.swaps;
                retained_depth_ = out.depth;
            }
        }
    }
    out.layout = std::move(layout);
    out.consumed = true;
}

LayoutSearchResult
LayoutSearch::run(Scheduler *scheduler)
{
    const int trials = std::max(1, trials_requested_);
    trials_.assign(static_cast<std::size_t>(trials), LayoutTrial{});
    retained_ = RoutingResult{};
    retained_trial_ = -1;
    retained_swaps_ = -1;
    retained_depth_ = -1;

    // The default single-trial search runs inline and never touches
    // the scheduler — transpile() with default options must not spawn
    // a process-wide worker pool as a side effect.
    if (trials == 1) {
        if (workers_.empty())
            workers_.resize(1);
        run_trial(0, 0);
        if (!trials_[0].consumed)
            throw TranspileDeadlineExceeded(
                "transpile deadline exceeded before the layout search "
                "could start");
        best_trial_ = 0;
    } else {
        Scheduler &sched = scheduler ? *scheduler : Scheduler::shared();
        // Resolve the worker cap HERE and pass the same value to both
        // the slot table and parallel_for: job slot ids are < cap by
        // contract (per-job, even under stealing), so the table can
        // never be outgrown even if another thread grows the shared
        // pool between these lines.  An explicit layout_threads
        // request first grows the pool (hardware_concurrency
        // under-reports in cgroup-limited containers); 0 takes the
        // pool as it is.
        int cap = opts_.layout_threads;
        if (cap > 0)
            sched.ensure_workers(std::min(cap, trials));
        else
            cap = sched.num_threads() + 1;
        if (cap > trials)
            cap = trials;
        if (workers_.size() < static_cast<std::size_t>(cap))
            workers_.resize(static_cast<std::size_t>(cap));

        sched.parallel_for(
            static_cast<std::size_t>(trials),
            [this](std::size_t t, int w) {
                run_trial(static_cast<int>(t), w);
            },
            cap);

        // Deterministic arg-min over (swaps, depth, trial index),
        // restricted to consumed trials — deadline-skipped ones hold no
        // layout.  With no deadline every trial is consumed and this is
        // the historical full arg-min, bit for bit.
        best_trial_ = -1;
        for (int t = 0; t < trials; ++t) {
            const LayoutTrial &a = trials_[static_cast<std::size_t>(t)];
            if (!a.consumed)
                continue;
            if (best_trial_ < 0) {
                best_trial_ = t;
                continue;
            }
            const LayoutTrial &b =
                trials_[static_cast<std::size_t>(best_trial_)];
            if (a.swaps < b.swaps ||
                (a.swaps == b.swaps && a.depth < b.depth))
                best_trial_ = t;
        }
        if (best_trial_ < 0)
            throw TranspileDeadlineExceeded(
                "transpile deadline exceeded before any layout trial "
                "completed");
    }

    int consumed = 0;
    for (const LayoutTrial &t : trials_)
        if (t.consumed)
            ++consumed;

    LayoutSearchResult res;
    res.best_trial = best_trial_;
    res.initial = trials_[static_cast<std::size_t>(best_trial_)].layout;
    res.scoring_passes = (trials > 1 || retain_) ? consumed : 0;
    res.trials_consumed = consumed;
    res.deadline_hit = consumed < trials;
    if (retain_) {
        // The keep-min key is the arg-min key, so the kept pass is the
        // winner's by construction.
        res.routed = std::move(retained_);
        retained_ = RoutingResult{};
    }
    res.trials = std::move(trials_);
    trials_.clear();
    return res;
}

LayoutSearchResult
search_and_route(const QuantumCircuit &logical, const CouplingMap &coupling,
                 const DistanceMatrix &dist, const RoutingOptions &opts,
                 int iterations, Scheduler *scheduler)
{
    LayoutSearch search(logical, coupling, dist, opts, iterations);
    return search.run(scheduler);
}

LayoutSearchResult
search_and_route(const QuantumCircuit &logical, const CouplingMap &coupling,
                 const DistanceProvider &dist, const RoutingOptions &opts,
                 int iterations, Scheduler *scheduler)
{
    LayoutSearch search(logical, coupling, dist, opts, iterations);
    return search.run(scheduler);
}

} // namespace nassc
