#include "nassc/route/nassc_router.h"

#include <algorithm>

#include "nassc/ir/matrices.h"
#include "nassc/math/weyl.h"
#include "nassc/passes/commutation.h"
#include "nassc/synth/kak2q.h"

namespace nassc {

namespace {

/** Block unitary convention: bit 0 = min(p, partner), bit 1 = max. */
Mat4
lift_1q(const Mat2 &m, bool on_min)
{
    return on_min ? tensor2(m, Mat2::identity())
                  : tensor2(Mat2::identity(), m);
}

} // namespace

OptAwareTracker::OptAwareTracker(int num_physical, const RoutingOptions &opts)
    : opts_(opts), num_physical_(num_physical), partner_(num_physical, -1),
      block_u_(num_physical, Mat4::identity()),
      pending_mat_(num_physical, Mat2::identity()), window_(num_physical),
      trailing_(num_physical),
      // Versions start at 1 so default-constructed (version 0) cache
      // entries can never be mistaken for valid ones.
      wire_version_(num_physical, 1),
      eval_cache_(static_cast<std::size_t>(num_physical) * num_physical)
{
}

void
OptAwareTracker::reset()
{
    for (int p = 0; p < num_physical_; ++p) {
        partner_[p] = -1;
        block_u_[p] = Mat4::identity();
        pending_mat_[p] = Mat2::identity();
        window_[p].clear();
        trailing_[p].clear();
        // Bumping every wire version invalidates every cached (p, q)
        // evaluation without touching the O(n^2) cache array.
        touch_wire(p);
    }
}

void
OptAwareTracker::break_block(int p)
{
    int q = partner_[p];
    if (q >= 0) {
        partner_[p] = -1;
        partner_[q] = -1;
        block_u_[std::min(p, q)] = Mat4::identity();
    }
    pending_mat_[p] = Mat2::identity();
}

void
OptAwareTracker::fold_trailing_into_window(int p)
{
    // Interior 1q gates either commute with every window member (then the
    // window survives) or invalidate the cancellation chain.  SWAP
    // records are transparent: gates pass through a SWAP by relabeling,
    // which the orientation-aware decomposition and the post-routing
    // passes exploit (paper Sec. IV-E).
    for (const Rec &r : trailing_[p]) {
        bool ok = true;
        for (const Rec &w : window_[p]) {
            if (w.gate.kind == OpKind::kSwap)
                continue;
            if (!gates_commute(r.gate, w.gate)) {
                ok = false;
                break;
            }
        }
        if (!ok) {
            window_[p].clear();
            break;
        }
    }
    trailing_[p].clear();
}

void
OptAwareTracker::on_gate(const Gate &g, int out_idx)
{
    // Every state change below is confined to the gate's own wires (a
    // broken block resets the old partner's partner_ link, but that can
    // only flip an evaluation on an edge that includes this wire too,
    // which the bump already covers).
    for (int q : g.qubits)
        touch_wire(q);

    if (g.kind == OpKind::kBarrier || g.kind == OpKind::kMeasure) {
        for (int q : g.qubits) {
            break_block(q);
            window_[q].clear();
            trailing_[q].clear();
        }
        return;
    }
    if (g.num_qubits() == 1) {
        int p = g.qubits[0];
        trailing_[p].push_back({g, out_idx});
        if (partner_[p] >= 0) {
            int mn = std::min(p, partner_[p]);
            Mat4 &u = block_u_[mn];
            u = mul(lift_1q(gate_matrix1(g), p == mn), u);
        } else {
            pending_mat_[p] = mul(gate_matrix1(g), pending_mat_[p]);
        }
        return;
    }

    // Two-qubit gate.
    int p = g.qubits[0];
    int q = g.qubits[1];
    int mn = std::min(p, q), mx = std::max(p, q);

    // --- block tracking ---
    if (partner_[p] == q) {
        accumulate_2q_gate(block_u_[mn], g, mn, mx);
    } else {
        break_block(p);
        break_block(q);
        Mat4 u = tensor2(pending_mat_[mn], pending_mat_[mx]);
        pending_mat_[p] = Mat2::identity();
        pending_mat_[q] = Mat2::identity();
        accumulate_2q_gate(u, g, mn, mx);
        block_u_[mn] = u;
        partner_[p] = q;
        partner_[q] = p;
    }

    // --- commute windows ---
    fold_trailing_into_window(p);
    fold_trailing_into_window(q);
    for (int w : {p, q}) {
        bool fits = true;
        for (const Rec &r : window_[w]) {
            if (r.gate.kind == OpKind::kSwap)
                continue; // transparent marker, see above
            if (!gates_commute(r.gate, g)) {
                fits = false;
                break;
            }
        }
        if (!fits)
            window_[w].clear();
        window_[w].push_back({g, out_idx});
        if (static_cast<int>(window_[w].size()) > 2 * opts_.commute_window)
            window_[w].erase(window_[w].begin());
    }
}

void
OptAwareTracker::consume_record(int out_idx)
{
    if (out_idx < 0)
        return;
    for (int w = 0; w < num_physical_; ++w) {
        auto &win = window_[w];
        for (auto it = win.begin(); it != win.end();) {
            if (it->out_idx == out_idx) {
                it = win.erase(it);
                touch_wire(w);
            } else {
                ++it;
            }
        }
    }
}

void
OptAwareTracker::take_trailing_1q(int p, std::vector<int> &out)
{
    touch_wire(p);
    for (const Rec &r : trailing_[p])
        out.push_back(r.out_idx);
    trailing_[p].clear();
    // The moved gates leave this wire: their contribution to the open
    // block / pending matrix must be undone.  The router re-emits them
    // after the SWAP, so the simplest sound model is to reset the block
    // state of this wire (the SWAP itself restarts the block anyway).
    break_block(p);
}

SwapReduction
OptAwareTracker::evaluate_swap(int p, int q) const
{
    // Keyed by ordered (p, q): the orientation flags in the result
    // depend on the argument order.
    CachedEval &slot =
        eval_cache_[static_cast<std::size_t>(p) * num_physical_ + q];
    if (slot.version_a == wire_version_[p] &&
        slot.version_b == wire_version_[q])
        return slot.red;
    slot.red = evaluate_swap_uncached(p, q);
    slot.version_a = wire_version_[p];
    slot.version_b = wire_version_[q];
    return slot.red;
}

SwapReduction
OptAwareTracker::evaluate_swap_uncached(int p, int q) const
{
    SwapReduction red;

    // --- C2q: SWAP joins the active block on (p, q) ------------------------
    if (opts_.enable_c2q && partner_[p] == q) {
        int mn = std::min(p, q);
        const Mat4 &u = block_u_[mn];
        int k_old = cnot_cost(u);
        Mat4 merged = mul(swap_mat(), u);
        int m_new = cnot_cost(merged);
        int saved = 3 + k_old - m_new;
        saved = std::clamp(saved, 0, 3);
        if (saved > 0) {
            red.c2q = saved;
            red.total += saved;
        }
    }

    // --- Ccommute1: cancellable CNOT on the same pair ----------------------
    // Search the current commute windows of both wires (newest first,
    // bounded by the paper's 20-gate search window) for a shared CX record
    // on exactly {p, q}.
    auto find_common = [&](OpKind kind, int &out_idx, Gate &found) {
        int checked = 0;
        for (auto it = window_[p].rbegin();
             it != window_[p].rend() && checked < opts_.commute_window;
             ++it, ++checked) {
            if (it->gate.kind != kind)
                continue;
            const Gate &g = it->gate;
            bool on_pair = (g.qubits[0] == p && g.qubits[1] == q) ||
                           (g.qubits[0] == q && g.qubits[1] == p);
            if (!on_pair)
                continue;
            // Must also be live in q's window.
            int checked_q = 0;
            for (auto jt = window_[q].rbegin();
                 jt != window_[q].rend() &&
                 checked_q < opts_.commute_window;
                 ++jt, ++checked_q) {
                if (jt->out_idx == it->out_idx) {
                    out_idx = it->out_idx;
                    found = g;
                    return true;
                }
            }
        }
        return false;
    };

    if (opts_.enable_commute1) {
        int idx = -1;
        Gate cxg;
        if (find_common(OpKind::kCX, idx, cxg)) {
            // An intervening SWAP record relabels the wires, which voids
            // a plain CX-CX cancellation; be conservative there.
            bool swap_after = false;
            for (int w : {p, q}) {
                for (const Rec &r : window_[w])
                    if (r.gate.kind == OpKind::kSwap && r.out_idx > idx)
                        swap_after = true;
            }
            if (!swap_after) {
                // Trailing 1q gates will be moved through the SWAP, so
                // they cannot block the cancellation.
                red.commute1 = true;
                red.total += 2.0;
                red.orient = (cxg.qubits[0] == p) ? SwapOrient::kFirst
                                                  : SwapOrient::kSecond;
                red.used_record_idx = idx;
            }
        }
    }

    // --- Ccommute2: commuting set sandwiched by two SWAPs ------------------
    if (opts_.enable_commute2 && !red.commute1) {
        int idx = -1;
        Gate swg;
        if (find_common(OpKind::kSwap, idx, swg)) {
            // All window records after the earlier SWAP must commute with
            // the facing CNOT; try both orientations.  Additionally the
            // trailing 1q gates of both wires must commute with the
            // facing CNOT: unlike Ccommute1 they sit *between* the two
            // facing CNOTs after decomposition and cannot all be moved
            // out of the way, so contamination voids the cancellation.
            for (SwapOrient o :
                 {SwapOrient::kFirst, SwapOrient::kSecond}) {
                Gate face = (o == SwapOrient::kFirst)
                                ? Gate::two_q(OpKind::kCX, p, q)
                                : Gate::two_q(OpKind::kCX, q, p);
                bool ok = true;
                for (int w : {p, q}) {
                    bool after = false;
                    for (const Rec &r : window_[w]) {
                        if (r.out_idx == idx) {
                            after = true;
                            continue;
                        }
                        if (!after || r.out_idx <= idx)
                            continue;
                        if (!gates_commute(r.gate, face)) {
                            ok = false;
                            break;
                        }
                    }
                    for (const Rec &r : trailing_[w]) {
                        if (!ok)
                            break;
                        if (r.out_idx > idx &&
                            !gates_commute(r.gate, face))
                            ok = false;
                    }
                    if (!ok)
                        break;
                }
                if (ok) {
                    red.commute2 = true;
                    red.total += 2.0;
                    red.orient = o;
                    red.partner_swap_out_idx = idx;
                    break;
                }
            }
        }
    }

    // The paper sums the enabled C_k terms (eq. 1).  We additionally cap
    // the claim at the SWAP's own three CNOTs: the optimizations largely
    // recover the *same* CNOTs, and without the cap SWAPs look profitable
    // in themselves, so the router chains "free" swaps that do not
    // advance the front layer.
    if (red.total > 3.0)
        red.total = 3.0;

    return red;
}

} // namespace nassc
