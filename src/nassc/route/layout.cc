#include "nassc/route/layout.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace nassc {

Layout::Layout(int num_logical, int num_physical)
{
    if (num_logical > num_physical)
        throw std::invalid_argument("more logical than physical qubits");
    l2p_.resize(num_logical);
    std::iota(l2p_.begin(), l2p_.end(), 0);
    p2l_.assign(num_physical, -1);
    for (int l = 0; l < num_logical; ++l)
        p2l_[l] = l;
}

Layout
Layout::random(int num_logical, int num_physical, std::mt19937 &rng)
{
    if (num_logical > num_physical)
        throw std::invalid_argument("more logical than physical qubits");
    std::vector<int> perm(num_physical);
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng);
    Layout lay;
    lay.l2p_.assign(perm.begin(), perm.begin() + num_logical);
    lay.p2l_.assign(num_physical, -1);
    for (int l = 0; l < num_logical; ++l)
        lay.p2l_[lay.l2p_[l]] = l;
    return lay;
}

Layout
Layout::from_l2p(const std::vector<int> &l2p, int num_physical)
{
    Layout lay;
    lay.l2p_ = l2p;
    lay.p2l_.assign(num_physical, -1);
    for (size_t l = 0; l < l2p.size(); ++l) {
        int p = l2p[l];
        if (p < 0 || p >= num_physical)
            throw std::out_of_range("layout target out of range");
        if (lay.p2l_[p] != -1)
            throw std::invalid_argument("layout is not injective");
        lay.p2l_[p] = static_cast<int>(l);
    }
    return lay;
}

void
Layout::swap_physical(int p, int q)
{
    int lp = p2l_[p];
    int lq = p2l_[q];
    std::swap(p2l_[p], p2l_[q]);
    if (lp >= 0)
        l2p_[lp] = q;
    if (lq >= 0)
        l2p_[lq] = p;
}

} // namespace nassc
