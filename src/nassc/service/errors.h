#ifndef NASSC_SERVICE_ERRORS_H
#define NASSC_SERVICE_ERRORS_H

/**
 * @file
 * Typed service-layer errors.  Header-only so route/ can throw them
 * without a link-time dependency on service/.
 *
 * The first two map to dedicated wire statuses in serve/protocol.cc
 * (`deadline_exceeded`, `overloaded`) instead of the generic `error`,
 * because clients react differently: an overloaded shed is always
 * retryable (transpiles are pure), while a deadline miss means the
 * request's own budget was too small and retrying verbatim is futile.
 * TranspileTransportTimeout never crosses the wire — it is what a
 * CALLER's bounded socket I/O throws when the peer wedges, and it is
 * always retryable on a fresh connection.
 */

#include <stdexcept>
#include <string>

namespace nassc {

/**
 * A deadline'd transpile expired before ANY layout trial completed, so
 * there is no best-completed result to degrade to.  (With >= 1 trial
 * done the pipeline degrades instead — see TranspileResult::degraded.)
 * Propagates to every coalesced waiter of the request key.
 */
class TranspileDeadlineExceeded : public std::runtime_error
{
  public:
    TranspileDeadlineExceeded()
        : std::runtime_error(
              "transpile deadline exceeded before any result completed")
    {
    }
    explicit TranspileDeadlineExceeded(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Admission control shed this request: the service's queued-job cap
 * (ServiceOptions::max_queued) or the server's connection cap was
 * already reached.  Safe to retry after backing off.
 */
class TranspileOverloaded : public std::runtime_error
{
  public:
    TranspileOverloaded()
        : std::runtime_error("transpile service overloaded")
    {
    }
    explicit TranspileOverloaded(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * A socket send/recv exceeded its configured timeout
 * (ServeClient::set_io_timeout, RetryPolicy::io_timeout_ms, or the
 * shard router's io_timeout_ms): the peer is wedged or the network
 * stalled.  The connection is in an unknown state — half a frame may be
 * in flight — so the only safe recovery is to drop it and retry on a
 * FRESH connection, which is always sound because transpiles are pure.
 * Distinct from TranspileDeadlineExceeded: that is the server telling a
 * client its compute budget expired; this is the caller's own watchdog
 * firing without any response at all.
 */
class TranspileTransportTimeout : public std::runtime_error
{
  public:
    TranspileTransportTimeout()
        : std::runtime_error("transport I/O timed out (peer wedged?)")
    {
    }
    explicit TranspileTransportTimeout(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

} // namespace nassc

#endif // NASSC_SERVICE_ERRORS_H
