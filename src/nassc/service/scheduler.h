#ifndef NASSC_SERVICE_SCHEDULER_H
#define NASSC_SERVICE_SCHEDULER_H

/**
 * @file
 * Work-stealing job scheduler: the multi-job successor of ThreadPool.
 *
 * ThreadPool (service/thread_pool.h) runs ONE parallel_for at a time —
 * top-level submissions from distinct threads serialize on a submit
 * mutex, so a serving process with concurrent independent batches
 * degrades to lock-step.  Scheduler generalizes the same worker model
 * to PER-JOB task queues: every submitted job owns its own index
 * counter and slot table, the shared workers scan the active-job list
 * round-robin and steal one task at a time from whichever job has work
 * and a free slot, and distinct submitters therefore interleave on the
 * same workers instead of queueing behind each other.
 *
 * Everything the single-job pool guaranteed is preserved:
 *
 *  - fn(index, slot) runs for every index in [0, count) exactly once;
 *    any worker may execute any index, so callers write results into
 *    per-index slots and derive any randomness from the index — which
 *    is exactly how LayoutSearch (derive_trial_seed) and
 *    BatchTranspiler (derive_job_seed) keep their output bit-identical
 *    for every worker count and every steal schedule.
 *  - `slot` is a stable per-JOB scratch id in [0, max_workers): a job
 *    capped at K slots never sees a slot >= K, no two tasks of one job
 *    run concurrently under the same slot, and the parallel_for caller
 *    always owns slot 0 of its own job.  Slot-indexed scratch (one
 *    Router set per slot in LayoutSearch) keeps working even though
 *    which THREAD occupies a slot changes as workers steal.
 *  - Nested-parallelism guard: a parallel_for issued from inside any
 *    task runs inline on the issuing thread, so a saturating batch
 *    degrades its inner layout trials to serial execution instead of
 *    deadlocking on or oversubscribing the pool.
 *  - Exceptions are captured per index and the lowest-index one is
 *    rethrown after the job completes, identically for every schedule;
 *    sibling indices still run.
 *
 * New in the scheduler: submit() enqueues a job WITHOUT blocking and
 * returns a JobHandle future — the serving layer (TranspileService)
 * uses it to run whole transpile requests asynchronously while the
 * submitting thread keeps accepting work.  A submitted job has no
 * caller slot; its tasks run entirely on pool workers.  Do not call
 * JobHandle::wait() from inside a task — a worker blocking on another
 * job's completion can deadlock a saturated pool (the guard cannot
 * help: the waited-for work belongs to a different job).
 *
 * Fairness and priorities: workers re-scan the job list between tasks
 * (tasks here are routing passes and whole transpiles — milliseconds at
 * least — so the rescan is noise) and claim from the highest-priority
 * claimable job; among equal priorities the scan starts after the job
 * the worker last served, so a long-running job cannot starve a later
 * one of the same priority: the moment any worker finishes a task, the
 * next equal-priority job in rotation gets it.  Priorities affect only
 * the ORDER tasks are claimed in, never whether they run — every
 * submitted job still completes, so all determinism contracts hold.
 *
 * Cancellation is cooperative: JobHandle::cancel() drops every task
 * that no WORKER has claimed yet (they are never invoked), while tasks
 * already running finish normally — a task that wants to stop early
 * polls Scheduler::current_job_cancelled().  The serving layer uses
 * this to abandon transpiles whose client disconnected before a worker
 * picked them up.
 *
 * Deadlines ride the same seam: submit() can stamp a job with an
 * absolute steady-clock deadline, which workers install thread-locally
 * while running that job's tasks; long tasks poll
 * Scheduler::current_job_expired() at natural boundaries (layout
 * trials) exactly like the cancel poll.  DeadlineScope narrows the
 * calling thread's budget (nested scopes take the min), and
 * parallel_for propagates the caller's budget onto its pool job, so a
 * deadline set at the top of a transpile reaches layout trials running
 * on stolen workers.  A deadline never preempts anything — expiry only
 * makes the polls return true, and what to do about it (degrade, throw)
 * is the caller's policy.
 */

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>

namespace nassc {

/** Multi-job worker pool with per-job queues and task stealing. */
class Scheduler
{
  public:
    /** fn(index, slot): see the file comment for the slot contract. */
    using TaskFn = std::function<void(std::size_t, int)>;

    /** Spawns `num_threads` workers; <= 0 picks hardware_concurrency(). */
    explicit Scheduler(int num_threads = 0);

    /**
     * Blocks until every submitted job has completed, then joins the
     * workers.  Clients must not submit after destruction begins.
     */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Pool threads (excluding the caller slot of parallel_for). */
    int num_threads() const;

    /**
     * Grow the pool (never shrink) so a parallel_for can hand out up to
     * max_workers slots including the caller's; returns the resulting
     * pool size.  Exists because hardware_concurrency() under-reports
     * in cgroup-limited containers, so an explicit --threads N request
     * must be able to out-size the default.  Bounded (256 threads) and
     * a no-op from inside a task.
     */
    int ensure_workers(int max_workers);

    /** Completion future of a submitted job. */
    class JobHandle
    {
      public:
        JobHandle() = default;

        /** True when bound to a job (submit() always returns bound). */
        bool valid() const { return job_ != nullptr; }

        /** Non-blocking completion poll; an unbound handle is done. */
        bool done() const;

        /**
         * Block until the job completes, then rethrow its lowest-index
         * captured exception, if any.  Never call from inside a task.
         */
        void wait() const;

        /**
         * Cooperatively cancel the job: every task no worker has claimed
         * yet is dropped (its fn is never invoked) and the job completes
         * as soon as the already-running tasks finish.  Returns how many
         * tasks were dropped — 0 means every task had already been
         * claimed (for a single-task job: it is running or done).
         * Dropped indices count as completed without error; running
         * tasks can poll Scheduler::current_job_cancelled() to stop
         * early.  Must not be called after the owning Scheduler is
         * destroyed (its drain guarantees all handles are done by then).
         */
        std::size_t cancel() const;

        /** True once cancel() has been called on this job. */
        bool cancelled() const;

      private:
        friend class Scheduler;
        struct Job;
        explicit JobHandle(std::shared_ptr<Job> job) : job_(std::move(job)) {}
        std::shared_ptr<Job> job_;
    };

    /**
     * Enqueue fn(index, slot) for index in [0, count) and return at
     * once; tasks run on pool workers (up to max_slots concurrently,
     * <= 0 meaning "whole pool"), interleaved with every other active
     * job.  Unlike parallel_for there is no caller slot: slots are
     * 0..max_slots-1 and the submitting thread does not execute tasks.
     * Safe to call from inside a task (enqueueing never blocks); only
     * wait() is restricted.  Higher `priority` jobs are claimed before
     * lower ones whenever both have runnable tasks (parallel_for jobs
     * run at priority 0); ordering within a priority stays round-robin.
     * `deadline` (absolute steady clock; max() = none) is installed as
     * the running tasks' thread-local budget — see DeadlineScope.
     */
    JobHandle submit(std::size_t count, TaskFn fn, int max_slots = 0,
                     int priority = 0,
                     std::chrono::steady_clock::time_point deadline =
                         std::chrono::steady_clock::time_point::max());

    /**
     * Run fn(index, slot) for index in [0, count), blocking until all
     * indices finished; the caller participates as slot 0 of this job
     * (and only this job) while pool workers steal the rest.
     * max_workers <= 0 means "whole pool + caller".  Runs inline when
     * called from inside a task, when max_workers == 1, or when count
     * <= 1.  Rethrows the lowest-index captured exception.  Concurrent
     * top-level callers interleave — no whole-job serialization.
     */
    void parallel_for(std::size_t count, const TaskFn &fn,
                      int max_workers = 0);

    /**
     * Process-wide scheduler (hardware-concurrency sized, lazily
     * created).  BatchTranspiler, LayoutSearch, and TranspileService
     * all default to it, which is what makes the nested-parallelism
     * guard effective end to end.
     */
    static Scheduler &shared();

    /** True on a thread currently executing a scheduler task. */
    static bool in_task();

    /**
     * True when the task the calling thread is executing belongs to a
     * job that has been cancel()led — the cooperative-cancellation poll
     * for long tasks.  Always false outside a task.
     */
    static bool current_job_cancelled();

    /**
     * The calling thread's effective deadline: the min of every
     * enclosing DeadlineScope and the running job's submit() deadline;
     * time_point::max() when unbounded.
     */
    static std::chrono::steady_clock::time_point current_job_deadline();

    /**
     * True when the calling thread's effective deadline has passed —
     * the cooperative-timeout poll for long tasks, mirroring
     * current_job_cancelled().  Always false when unbounded.
     */
    static bool current_job_expired();

    /**
     * RAII budget for the calling thread: narrows the thread-local
     * deadline to min(enclosing, `deadline`) for the scope's lifetime.
     * Deadline-free code pays nothing — the thread-local stays at
     * max() and current_job_expired() short-circuits.  parallel_for
     * hands the narrowed budget to its pool job, so scoping a deadline
     * around a transpile bounds its stolen trials too.
     */
    class DeadlineScope
    {
      public:
        explicit DeadlineScope(std::chrono::steady_clock::time_point deadline);
        ~DeadlineScope();
        DeadlineScope(const DeadlineScope &) = delete;
        DeadlineScope &operator=(const DeadlineScope &) = delete;

      private:
        std::chrono::steady_clock::time_point prev_;
    };

  private:
    struct Impl;
    void worker_main();

    Impl *impl_;
};

} // namespace nassc

#endif // NASSC_SERVICE_SCHEDULER_H
