#include "nassc/service/distance_cache.h"

#include <chrono>
#include <cstdio>

#include "nassc/obs/trace.h"

namespace nassc {

std::string
DistanceRequest::key() const
{
    std::string k;
    if (!noise_aware) {
        k = "hops";
    } else {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "noise:%.9g:%.9g:%.9g", alpha1,
                      alpha2, alpha3);
        k = buf;
    }
    if (sparse) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "|sparse:%zu", row_budget_bytes);
        k += buf;
    }
    return k;
}

void
DistanceCache::retire_locked(const Entry &entry)
{
    using namespace std::chrono_literals;
    if (entry.future.wait_for(0s) != std::future_status::ready)
        return; // still computing; its stats never become visible
    try {
        const SharedDistanceProvider &p = entry.future.get();
        DistanceProviderStats s = p->stats();
        retired_rows_computed_ += s.rows_computed;
        retired_row_hits_ += s.row_hits;
        retired_rows_evicted_ += s.rows_evicted;
        retired_peak_bytes_ += s.peak_bytes;
    } catch (...) {
        // Failed computation: nothing to fold.
    }
}

void
DistanceCache::invalidate_locked(const std::string &backend_name)
{
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.backend_name == backend_name) {
            retire_locked(it->second);
            it = entries_.erase(it);
            ++evictions_invalidated_;
        } else {
            ++it;
        }
    }
}

SharedDistanceProvider
DistanceCache::provider(const Backend &backend,
                        const DistanceRequest &request)
{
    const std::string bkey = backend.cache_key();
    const std::string key = bkey + "|" + request.key();

    std::promise<SharedDistanceProvider> promise;
    std::shared_future<SharedDistanceProvider> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Rotation detector: same backend name with a different
        // cache_key means the calibration (or topology) rolled — drop
        // the old generation eagerly so it cannot be served again and
        // does not leak one provider per generation.
        auto [git, inserted] = generation_.try_emplace(backend.name, bkey);
        if (!inserted && git->second != bkey) {
            invalidate_locked(backend.name);
            git->second = bkey;
        }

        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            future = it->second.future;
        } else {
            ++computations_;
            owner = true;
            future = promise.get_future().share();
            entries_.emplace(key, Entry{future, backend.name});
        }
    }

    if (owner) {
        // Compute outside the lock: other keys stay available, same-key
        // requesters block on the shared_future instead of the mutex.
        // Pure trace site: distinguishes a miss (this span appears)
        // from a hit (only distance_resolve shows) in a request trace.
        obs::TraceSpan span("distance_compute");
        try {
            promise.set_value(make_distance_provider(
                backend, request.noise_aware, request.alpha1, request.alpha2,
                request.alpha3, request.sparse, request.row_budget_bytes));
        } catch (...) {
            promise.set_exception(std::current_exception());
            // Evict so a later request can retry; waiters already holding
            // the future still see the exception.
            std::lock_guard<std::mutex> lock(mu_);
            entries_.erase(key);
        }
    }

    return future.get();
}

SharedDistanceMatrix
DistanceCache::get(const Backend &backend, const DistanceRequest &request)
{
    DistanceRequest dense_request = request;
    dense_request.sparse = false;
    dense_request.row_budget_bytes = 0;
    SharedDistanceProvider p = provider(backend, dense_request);
    // Non-sparse requests always construct a DenseDistanceProvider.
    auto dense = std::static_pointer_cast<const DenseDistanceProvider>(p);
    return SharedDistanceMatrix(dense, &dense->matrix());
}

void
DistanceCache::invalidate_backend(const std::string &backend_name)
{
    std::lock_guard<std::mutex> lock(mu_);
    invalidate_locked(backend_name);
    generation_.erase(backend_name);
}

std::size_t
DistanceCache::computation_count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return computations_;
}

std::size_t
DistanceCache::hit_count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

std::size_t
DistanceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

DistanceCache::Stats
DistanceCache::stats() const
{
    using namespace std::chrono_literals;
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.computations = computations_;
    s.hits = hits_;
    s.entries = entries_.size();
    s.evictions_invalidated = evictions_invalidated_;
    s.rows_computed = retired_rows_computed_;
    s.row_hits = retired_row_hits_;
    s.rows_evicted = retired_rows_evicted_;
    s.row_bytes_peak = retired_peak_bytes_;
    for (const auto &[key, entry] : entries_) {
        if (entry.future.wait_for(0s) != std::future_status::ready)
            continue;
        try {
            DistanceProviderStats ps = entry.future.get()->stats();
            s.rows_computed += ps.rows_computed;
            s.row_hits += ps.row_hits;
            s.rows_evicted += ps.rows_evicted;
            s.row_bytes += ps.resident_bytes;
            s.row_bytes_peak += ps.peak_bytes;
        } catch (...) {
            // Failed entry mid-eviction; skip.
        }
    }
    return s;
}

void
DistanceCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[key, entry] : entries_)
        retire_locked(entry);
    entries_.clear();
    generation_.clear();
}

DistanceCache &
DistanceCache::global()
{
    static DistanceCache cache;
    return cache;
}

} // namespace nassc
