#include "nassc/service/distance_cache.h"

#include <cstdio>

namespace nassc {

std::string
DistanceRequest::key() const
{
    if (!noise_aware)
        return "hops";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "noise:%.9g:%.9g:%.9g", alpha1, alpha2,
                  alpha3);
    return buf;
}

SharedDistanceMatrix
DistanceCache::get(const Backend &backend, const DistanceRequest &request)
{
    const std::string key = backend.cache_key() + "|" + request.key();

    std::promise<SharedDistanceMatrix> promise;
    std::shared_future<SharedDistanceMatrix> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            future = it->second;
        } else {
            ++computations_;
            owner = true;
            future = promise.get_future().share();
            entries_.emplace(key, future);
        }
    }

    if (owner) {
        // Compute outside the lock: other keys stay available, same-key
        // requesters block on the shared_future instead of the mutex.
        try {
            auto matrix = std::make_shared<DistanceMatrix>(
                request.noise_aware
                    ? noise_aware_distance(backend, request.alpha1,
                                           request.alpha2, request.alpha3)
                    : hop_distance(backend.coupling));
            promise.set_value(std::move(matrix));
        } catch (...) {
            promise.set_exception(std::current_exception());
            // Evict so a later request can retry; waiters already holding
            // the future still see the exception.
            std::lock_guard<std::mutex> lock(mu_);
            entries_.erase(key);
        }
    }

    return future.get();
}

std::size_t
DistanceCache::computation_count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return computations_;
}

std::size_t
DistanceCache::hit_count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

std::size_t
DistanceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

DistanceCache::Stats
DistanceCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.computations = computations_;
    s.hits = hits_;
    s.entries = entries_.size();
    return s;
}

void
DistanceCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
}

DistanceCache &
DistanceCache::global()
{
    static DistanceCache cache;
    return cache;
}

} // namespace nassc
