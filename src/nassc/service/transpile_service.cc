#include "nassc/service/transpile_service.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

namespace nassc {

namespace {

std::string
hex64(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

std::string
TranspileService::request_key(const QuantumCircuit &circuit,
                              const Backend &backend,
                              const TranspileOptions &options)
{
    // The circuit and options fingerprints are 64-bit FNV-1a values;
    // the backend contributes its own cache_key(), which already
    // fingerprints topology + calibration.  '|' never appears inside
    // the hex fragments, so the triple cannot alias across fields.
    return hex64(circuit.fingerprint()) + "|" + backend.cache_key() + "|" +
           hex64(options.fingerprint());
}

TranspileService::TranspileService(ServiceOptions options)
    : options_(std::move(options)), scheduler_(options_.scheduler),
      distances_(options_.distances)
{
    if (!distances_)
        distances_ = std::make_shared<DistanceCache>();
    if (options_.num_threads > 0)
        scheduler().ensure_workers(options_.num_threads + 1);
}

TranspileService::~TranspileService()
{
    // Every promise settles (run_request catches everything), so the
    // drain always terminates; after it, no task touches `this`.
    std::unique_lock<std::mutex> lk(mu_);
    drained_.wait(lk, [&] { return inflight_count_ == 0; });
}

Scheduler &
TranspileService::scheduler() const
{
    return scheduler_ ? *scheduler_ : Scheduler::shared();
}

void
TranspileService::cache_insert(const std::string &key,
                               SharedTranspileResult result)
{
    if (options_.cache_capacity == 0)
        return;
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        // Possible when clear_cache raced an in-flight recompute of a
        // key that was then resubmitted; keep the newest, refresh LRU.
        it->second->result = std::move(result);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    while (lru_.size() >= options_.cache_capacity) {
        cache_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
    }
    lru_.push_front(CacheEntry{key, std::move(result)});
    cache_.emplace(key, lru_.begin());
}

void
TranspileService::run_request(
    const std::string &key, const QuantumCircuit &circuit,
    const Backend &backend, const TranspileOptions &options,
    const std::shared_ptr<std::promise<SharedTranspileResult>> &promise)
{
    SharedTranspileResult result;
    std::exception_ptr error;
    try {
        result = std::make_shared<TranspileResult>(
            transpile(circuit, backend, options, *distances_));
    } catch (...) {
        error = std::current_exception();
    }

    {
        std::lock_guard<std::mutex> lk(mu_);
        if (result) {
            ++stats_.transpiles_ok;
            // Insert BEFORE dropping the in-flight entry: a concurrent
            // submit always finds the key in one table or the other,
            // never recomputes a result that is already known.
            cache_insert(key, result);
        } else {
            ++stats_.transpiles_failed;
        }
        inflight_.erase(key);
    }

    // Settle outside the lock: waiters wake straight into their copy.
    if (result)
        promise->set_value(std::move(result));
    else
        promise->set_exception(error);

    {
        // Notify UNDER the lock: the destructor may observe the zero
        // count and destroy the condition variable the instant the
        // mutex is released, so the notify must already be done by
        // then (cv-destruction race otherwise, caught by TSan).
        std::lock_guard<std::mutex> lk(mu_);
        --inflight_count_;
        drained_.notify_all();
    }
}

TranspileTicket
TranspileService::submit(const QuantumCircuit &circuit,
                         std::shared_ptr<const Backend> backend,
                         const TranspileOptions &options)
{
    if (!backend)
        throw std::invalid_argument("submit: null backend");

    TranspileTicket ticket;
    ticket.key_ = request_key(circuit, *backend, options);

    auto promise = std::make_shared<std::promise<SharedTranspileResult>>();
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.requests;

        auto hit = cache_.find(ticket.key_);
        if (hit != cache_.end()) {
            ++stats_.cache_hits;
            lru_.splice(lru_.begin(), lru_, hit->second);
            promise->set_value(hit->second->result);
            ticket.source_ = TicketSource::kCacheHit;
            ticket.future_ = promise->get_future().share();
            return ticket;
        }

        auto flight = inflight_.find(ticket.key_);
        if (flight != inflight_.end()) {
            ++stats_.coalesced;
            ticket.source_ = TicketSource::kCoalesced;
            ticket.future_ = flight->second;
            return ticket;
        }

        ++stats_.misses;
        ticket.future_ = promise->get_future().share();
        inflight_.emplace(ticket.key_, ticket.future_);
        ++inflight_count_;
    }

    if (Scheduler::in_task()) {
        // Nested submitter (e.g. a batch job consulting the service):
        // run inline so a saturated pool cannot deadlock behind its own
        // queue.  Dedup above still applied.
        ticket.source_ = TicketSource::kInline;
        run_request(ticket.key_, circuit, *backend, options, promise);
        return ticket;
    }

    ticket.source_ = TicketSource::kScheduled;
    // The task owns copies/shares of everything it touches; `this`
    // stays valid because the destructor drains in-flight requests.
    scheduler().submit(
        1,
        [this, key = ticket.key_, circuit, backend = std::move(backend),
         options, promise](std::size_t, int) {
            run_request(key, circuit, *backend, options, promise);
        },
        /*max_slots=*/1);
    return ticket;
}

ServiceStats
TranspileService::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    ServiceStats out = stats_;
    out.cache_size = lru_.size();
    out.inflight = inflight_.size();
    return out;
}

void
TranspileService::clear_cache()
{
    std::lock_guard<std::mutex> lk(mu_);
    lru_.clear();
    cache_.clear();
}

} // namespace nassc
