#include "nassc/service/transpile_service.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "nassc/ir/qasm.h"
#include "nassc/obs/event_log.h"
#include "nassc/obs/metrics.h"
#include "nassc/obs/trace.h"
#include "nassc/service/failpoint.h"

namespace nassc {

namespace {

std::string
hex64(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

SharedTranspileResult
TranspileTicket::get() const
{
    // Only coalesced tickets carry a wait bound: the computation they
    // joined belongs to another request and may legitimately run past
    // this one's budget.  Owner tickets wait for settlement — their
    // deadline lives INSIDE the computation (degrade or throw), which
    // may finish slightly after it while completing the last trial.
    if (deadline_ != std::chrono::steady_clock::time_point::max() &&
        future_.wait_until(deadline_) == std::future_status::timeout)
        throw TranspileDeadlineExceeded(
            "transpile deadline exceeded waiting on a coalesced "
            "computation");
    return future_.get();
}

bool
TranspileTicket::deadline_expired() const
{
    return deadline_ != std::chrono::steady_clock::time_point::max() &&
           std::chrono::steady_clock::now() >= deadline_ && !ready();
}

std::string
TranspileTicket::get_qasm() const
{
    return to_qasm(get()->circuit);
}

std::string
TranspileService::request_key(const QuantumCircuit &circuit,
                              const Backend &backend,
                              const TranspileOptions &options)
{
    // The circuit and options fingerprints are 64-bit FNV-1a values;
    // the backend contributes its own cache_key(), which already
    // fingerprints topology + calibration.  '|' never appears inside
    // the hex fragments, so the triple cannot alias across fields.
    // The deadline is zeroed first: it is QoS, not identity, and keying
    // it would split coalescing/caching across equal circuits.
    TranspileOptions keyed = options;
    keyed.deadline_ms = 0;
    return hex64(circuit.fingerprint()) + "|" + backend.cache_key() + "|" +
           hex64(keyed.fingerprint());
}

TranspileService::TranspileService(ServiceOptions options)
    : options_(std::move(options)), scheduler_(options_.scheduler),
      distances_(options_.distances)
{
    if (!distances_)
        distances_ = std::make_shared<DistanceCache>();
    if (options_.num_threads > 0)
        scheduler().ensure_workers(options_.num_threads + 1);
}

TranspileService::~TranspileService()
{
    // Every promise settles (run_request catches everything, try_cancel
    // settles what it abandons), so the drain always terminates; after
    // it, no task touches `this`.
    std::unique_lock<std::mutex> lk(mu_);
    drained_.wait(lk, [&] { return inflight_count_ == 0; });
}

Scheduler &
TranspileService::scheduler() const
{
    return scheduler_ ? *scheduler_ : Scheduler::shared();
}

TranspileService::Clock::time_point
TranspileService::entry_expiry(const TranspileOptions &options) const
{
    const double ttl = options.cache_ttl_seconds > 0.0
                           ? options.cache_ttl_seconds
                           : options_.default_ttl_seconds;
    if (ttl <= 0.0)
        return Clock::time_point::max();
    return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(ttl));
}

std::list<TranspileService::CacheEntry>::iterator
TranspileService::cache_erase(std::list<CacheEntry>::iterator it)
{
    cache_bytes_ -= it->bytes;
    cache_.erase(it->key);
    return lru_.erase(it);
}

std::size_t
TranspileService::note_backend_generation(const Backend &backend)
{
    const std::string current = backend.cache_key();
    auto inserted = generation_.try_emplace(backend.name, current);
    if (inserted.second || inserted.first->second == current)
        return 0;
    // First contact with a rotated calibration: drop the stale
    // generation NOW instead of letting it ride the LRU tail.
    inserted.first->second = current;
    std::size_t dropped = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
        if (it->backend_name == backend.name && it->backend_key != current) {
            it = cache_erase(it);
            ++stats_.evictions_invalidated;
            ++dropped;
        } else {
            ++it;
        }
    }
    return dropped;
}

void
TranspileService::cache_insert(const std::string &key,
                               SharedTranspileResult result,
                               const Backend &backend,
                               const TranspileOptions &options)
{
    if (options_.cache_capacity == 0)
        return;
    // Behaviour site: an armed trigger drops the insert, simulating a
    // result that is computed but never cached (every waiter is still
    // served; only the NEXT submit recomputes).  kTrigger only — this
    // runs under mu_, where sleeping or throwing would be unsafe.
    if (failpoint::eval("service.cache_insert").kind ==
        failpoint::Hit::Kind::kTrigger)
        return;
    {
        // A result computed against a generation that rotated while it
        // was in flight is stale on arrival: never insert it.
        auto gen = generation_.find(backend.name);
        if (gen != generation_.end() && gen->second != backend.cache_key()) {
            ++stats_.evictions_invalidated;
            return;
        }
    }

    CacheEntry entry;
    entry.key = key;
    entry.result = std::move(result);
    entry.backend_name = backend.name;
    entry.backend_key = backend.cache_key();
    entry.expiry = entry_expiry(options);
    // Cost = what the entry actually keeps resident: the routed
    // circuit's heap footprint plus the entry/index bookkeeping (the
    // key is stored twice: list node + index map).
    entry.bytes = sizeof(CacheEntry) + sizeof(TranspileResult) +
                  2 * entry.key.size() + entry.backend_name.size() +
                  entry.backend_key.size() +
                  entry.result->circuit.memory_bytes() +
                  (entry.result->initial_l2p.capacity() +
                   entry.result->final_l2p.capacity()) *
                      sizeof(int);
    if (options_.cache_max_bytes != 0 &&
        entry.bytes > options_.cache_max_bytes)
        return; // larger than the whole budget: serve, never cache

    auto it = cache_.find(key);
    if (it != cache_.end()) {
        // Possible when clear_cache raced an in-flight recompute of a
        // key that was then resubmitted; keep the newest, refresh LRU.
        cache_erase(it->second);
    }
    cache_bytes_ += entry.bytes;
    lru_.push_front(std::move(entry));
    cache_.emplace(key, lru_.begin());
    while (lru_.size() > options_.cache_capacity ||
           (options_.cache_max_bytes != 0 &&
            cache_bytes_ > options_.cache_max_bytes)) {
        cache_erase(std::prev(lru_.end()));
        ++stats_.evictions_capacity;
    }
}

void
TranspileService::run_request(
    const std::string &key, const QuantumCircuit &circuit,
    const Backend &backend, const TranspileOptions &options,
    const std::shared_ptr<std::promise<SharedTranspileResult>> &promise,
    Clock::time_point deadline, Clock::time_point submitted, bool dequeue)
{
    obs::StackMetrics &om = obs::StackMetrics::get();
    if (dequeue) {
        // Claimed: this request no longer occupies queue depth.
        std::lock_guard<std::mutex> lk(mu_);
        --queued_;
    }
    // Queue wait: accepted at submit() until a worker (or the inline
    // path) picked it up.  Measured across threads, so it cannot be a
    // scoped span — note the already-measured duration.
    const auto queue_wait_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              submitted)
            .count());
    om.queue_wait_us.observe(queue_wait_us);
    obs::span_note("queue_wait", queue_wait_us);

    SharedTranspileResult result;
    std::exception_ptr error;
    bool missed_deadline = false;
    try {
        // The request's absolute budget, computed at submit time so
        // queueing delay counts against it.  transpile() adds its own
        // scope from options.deadline_ms, but relative to its start —
        // this outer scope is the one that charges the queue wait.
        Scheduler::DeadlineScope budget(deadline);
        obs::TraceSpan span("transpile", &om.transpile_us);
        failpoint::hit("service.transpile");
        result = std::make_shared<TranspileResult>(
            transpile(circuit, backend, options, *distances_));
    } catch (const TranspileDeadlineExceeded &) {
        error = std::current_exception();
        missed_deadline = true;
    } catch (...) {
        error = std::current_exception();
    }

    {
        std::lock_guard<std::mutex> lk(mu_);
        if (result) {
            ++stats_.transpiles_ok;
            om.transpiles_ok_total.inc();
            // Insert BEFORE dropping the in-flight entry: a concurrent
            // submit always finds the key in one table or the other,
            // never recomputes a result that is already known.  Except
            // degraded results: they are best-effort UNDER THIS
            // REQUEST'S BUDGET, not the key's canonical answer — a
            // later deadline-free request must get the full race.
            if (!result->degraded) {
                obs::TraceSpan insert_span("cache_insert",
                                           &om.cache_insert_us);
                cache_insert(key, result, backend, options);
            }
        } else if (missed_deadline) {
            ++stats_.deadline_exceeded;
            om.deadline_exceeded_total.inc();
            const obs::SharedTracer t = obs::current_tracer();
            obs::EventLog::global().append(obs::format_event(
                "deadline", {{"key", key}, {"trace", t ? t->id() : ""}},
                {{"queue_wait_us", queue_wait_us}}));
        } else {
            ++stats_.transpiles_failed;
            om.transpiles_failed_total.inc();
        }
        inflight_.erase(key);
    }

    // Settle outside the lock: waiters wake straight into their copy.
    if (result)
        promise->set_value(std::move(result));
    else
        promise->set_exception(error);

    {
        // Notify UNDER the lock: the destructor may observe the zero
        // count and destroy the condition variable the instant the
        // mutex is released, so the notify must already be done by
        // then (cv-destruction race otherwise, caught by TSan).
        std::lock_guard<std::mutex> lk(mu_);
        --inflight_count_;
        drained_.notify_all();
    }
}

TranspileTicket
TranspileService::submit(const QuantumCircuit &circuit,
                         std::shared_ptr<const Backend> backend,
                         const TranspileOptions &options)
{
    if (!backend)
        throw std::invalid_argument("submit: null backend");

    TranspileTicket ticket;
    ticket.key_ = request_key(circuit, *backend, options);

    // Absolute budget, stamped NOW so queue delay counts against it.
    const Clock::time_point deadline =
        options.deadline_ms > 0
            ? Clock::now() + std::chrono::milliseconds(options.deadline_ms)
            : Clock::time_point::max();
    const bool inline_run = Scheduler::in_task();

    obs::StackMetrics &om = obs::StackMetrics::get();
    om.requests_total.inc();
    const Clock::time_point submitted = Clock::now();

    auto promise = std::make_shared<std::promise<SharedTranspileResult>>();
    {
        std::lock_guard<std::mutex> lk(mu_);
        // Admission covers the whole decision critical section: cache
        // probe, coalesce probe, shed check, in-flight filing.
        obs::TraceSpan admission("admission", &om.admission_us);
        ++stats_.requests;
        note_backend_generation(*backend);

        auto hit = cache_.find(ticket.key_);
        if (hit != cache_.end() && Clock::now() >= hit->second->expiry) {
            // Lazy TTL: an expired entry is invalid, not a hit.
            cache_erase(hit->second);
            ++stats_.evictions_invalidated;
            hit = cache_.end();
        }
        if (hit != cache_.end()) {
            ++stats_.cache_hits;
            om.cache_hits_total.inc();
            lru_.splice(lru_.begin(), lru_, hit->second);
            promise->set_value(hit->second->result);
            ticket.source_ = TicketSource::kCacheHit;
            ticket.future_ = promise->get_future().share();
            return ticket;
        }

        auto flight = inflight_.find(ticket.key_);
        if (flight != inflight_.end()) {
            ++stats_.coalesced;
            om.coalesced_total.inc();
            ++flight->second.waiters;
            ticket.source_ = TicketSource::kCoalesced;
            ticket.future_ = flight->second.future;
            // A coalesced waiter's deadline bounds its WAIT (the joined
            // computation runs under its own request's budget, if any).
            ticket.deadline_ = deadline;
            return ticket;
        }

        // Admission control: a fresh miss past the queue cap is shed
        // NOW with a typed error, not queued into a deadline it cannot
        // make.  Hits/coalesced joins above are never shed (they add no
        // queue depth), nor are inline runs (they occupy the submitting
        // task's slot, not the queue).
        if (options_.max_queued != 0 && !inline_run &&
            queued_ >= options_.max_queued) {
            ++stats_.shed;
            om.shed_total.inc();
            const obs::SharedTracer t = obs::current_tracer();
            obs::EventLog::global().append(obs::format_event(
                "shed",
                {{"key", ticket.key_}, {"trace", t ? t->id() : ""}},
                {{"queued", queued_}}));
            throw TranspileOverloaded(
                "transpile service overloaded: " +
                std::to_string(queued_) + " requests queued");
        }

        ++stats_.misses;
        ticket.future_ = promise->get_future().share();
        Inflight entry;
        entry.future = ticket.future_;
        entry.promise = promise;
        inflight_.emplace(ticket.key_, std::move(entry));
        ++inflight_count_;
        if (!inline_run)
            ++queued_;
    }

    if (inline_run) {
        // Nested submitter (e.g. a batch job consulting the service):
        // run inline so a saturated pool cannot deadlock behind its own
        // queue.  Dedup above still applied.
        ticket.source_ = TicketSource::kInline;
        run_request(ticket.key_, circuit, *backend, options, promise,
                    deadline, submitted, /*dequeue=*/false);
        return ticket;
    }

    ticket.source_ = TicketSource::kScheduled;
    // The task owns copies/shares of everything it touches; `this`
    // stays valid because the destructor drains in-flight requests.
    Scheduler::JobHandle handle = scheduler().submit(
        1,
        [this, key = ticket.key_, circuit, backend = std::move(backend),
         options, promise, deadline, submitted](std::size_t, int) {
            run_request(key, circuit, *backend, options, promise, deadline,
                        submitted, /*dequeue=*/true);
        },
        /*max_slots=*/1, options.priority, deadline);
    {
        // Park the handle so try_cancel can reach the job.  The request
        // may already have finished (entry gone) or, pathologically,
        // finished AND been resubmitted (entry bound to a new promise);
        // only bind the handle to ITS OWN entry.
        std::lock_guard<std::mutex> lk(mu_);
        auto it = inflight_.find(ticket.key_);
        if (it != inflight_.end() && it->second.promise == promise)
            it->second.handle = handle;
    }
    return ticket;
}

TranspileTicket
TranspileService::submit_qasm(const std::string &qasm,
                              std::shared_ptr<const Backend> backend,
                              const TranspileOptions &options)
{
    // Parse once; the parsed circuit carries the fingerprint, so this
    // request shares keys (and therefore dedup) with object submits.
    return submit(from_qasm(qasm), std::move(backend), options);
}

bool
TranspileService::try_cancel(const TranspileTicket &ticket)
{
    if (!ticket.valid() || ticket.source() != TicketSource::kScheduled)
        return false;

    std::shared_ptr<std::promise<SharedTranspileResult>> promise;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = inflight_.find(ticket.key());
        if (it == inflight_.end())
            return false; // already finished
        Inflight &flight = it->second;
        if (flight.waiters != 1)
            return false; // coalesced waiters still want the result
        if (!flight.handle.valid())
            return false; // inline run, or handle not parked yet
        // cancel() == 1 means the single task was dropped before any
        // worker claimed it; 0 means it is running or done — too late.
        // (Lock order mu_ -> scheduler mutex; nothing takes the
        // reverse: tasks run with the scheduler mutex released.)
        if (flight.handle.cancel() != 1)
            return false;
        promise = flight.promise;
        inflight_.erase(it);
        ++stats_.cancelled;
        // The dropped task never runs, so its run_request dequeue
        // never happens — release the queue slot here.
        --queued_;
    }

    // Settle outside the lock, like run_request.
    promise->set_exception(std::make_exception_ptr(TranspileCancelled()));
    {
        std::lock_guard<std::mutex> lk(mu_);
        --inflight_count_;
        drained_.notify_all();
    }
    return true;
}

std::size_t
TranspileService::invalidate_backend(const std::string &backend_name)
{
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t dropped = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
        if (it->backend_name == backend_name) {
            it = cache_erase(it);
            ++stats_.evictions_invalidated;
            ++dropped;
        } else {
            ++it;
        }
    }
    return dropped;
}

std::size_t
TranspileService::purge_expired()
{
    const Clock::time_point now = Clock::now();
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t dropped = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
        if (now >= it->expiry) {
            it = cache_erase(it);
            ++stats_.evictions_invalidated;
            ++dropped;
        } else {
            ++it;
        }
    }
    return dropped;
}

ServiceStats
TranspileService::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    ServiceStats out = stats_;
    out.cache_size = lru_.size();
    out.cache_bytes = cache_bytes_;
    out.inflight = inflight_.size();
    return out;
}

void
TranspileService::clear_cache()
{
    std::lock_guard<std::mutex> lk(mu_);
    lru_.clear();
    cache_.clear();
    cache_bytes_ = 0;
}

} // namespace nassc
