#ifndef NASSC_SERVICE_THREAD_POOL_H
#define NASSC_SERVICE_THREAD_POOL_H

/**
 * @file
 * Fixed-size SINGLE-JOB worker pool.
 *
 * Historical note: this was the pool behind BatchTranspiler and
 * LayoutSearch until the serving layer landed.  Those subsystems now
 * run on the multi-job work-stealing Scheduler (service/scheduler.h),
 * which preserves every contract documented here — fn(index, worker),
 * caller participation as slot 0, the nested-parallelism guard,
 * lowest-index exception selection — while letting concurrent
 * top-level submitters interleave instead of serializing on the
 * submit mutex below.  ThreadPool remains for clients that want a
 * private, strictly one-job-at-a-time pool with zero sharing.
 *
 * parallel_for(count, fn, max_workers) runs fn(index, worker) for every
 * index in [0, count).  The calling thread always participates as
 * worker 0; up to max_workers - 1 pool threads join as workers 1..k,
 * where k pool threads keep their construction-time ids so a worker id
 * identifies a stable slot (LayoutSearch reuses one Router per slot).
 * Indices are handed out through a shared atomic counter, so any
 * worker may execute any index — callers must make per-index work
 * independent and write results into per-index slots, which is exactly
 * how both clients keep their output bit-identical for every thread
 * count.
 *
 * Nested-parallelism guard: a parallel_for issued from inside a task
 * (i.e. from a worker of any pool, including the caller slot) runs the
 * loop inline on the issuing thread instead of submitting.  A batch
 * sweep that already saturates the pool therefore routes its inner
 * layout trials serially per job instead of deadlocking on or
 * oversubscribing the pool.
 *
 * Exceptions thrown by fn are captured per index; after the loop
 * completes the exception with the lowest index is rethrown (the same
 * one regardless of thread count).  The remaining indices still run —
 * a throwing task never poisons its siblings.
 */

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace nassc {

class ThreadPool
{
  public:
    /** Spawns `num_threads` workers; 0 = std::thread::hardware_concurrency(). */
    explicit ThreadPool(int num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Pool threads (excluding the caller slot of parallel_for). */
    int num_threads() const;

    /**
     * Grow the pool (never shrink) so parallel_for can hand out up to
     * max_workers worker slots; returns the resulting pool size.
     * hardware_concurrency() under-reports in cgroup-limited containers
     * (nproc can say 1 where 4 threads genuinely run in parallel), so
     * an explicit --threads N request must be able to out-size the
     * default.  Growth is bounded (256 threads), serialized against
     * running jobs, and a no-op from inside a task (nested callers run
     * inline anyway).
     */
    int ensure_workers(int max_workers);

    /**
     * Run fn(index, worker) for index in [0, count), blocking until all
     * indices finished.  worker is in [0, max_workers); the caller is
     * worker 0.  max_workers <= 0 means "whole pool".  Runs inline when
     * called from inside a task, when max_workers == 1, or when count
     * <= 1.  Rethrows the lowest-index captured exception, if any.
     *
     * The pool runs ONE job at a time: top-level parallel_for calls
     * from distinct threads serialize on submission (results are
     * unaffected — they are deterministic per job — but the second
     * caller waits).  Concurrent top-level clients that must overlap
     * should bring their own ThreadPool instance; see the ROADMAP
     * multi-job item.
     */
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t, int)> &fn,
                      int max_workers = 0);

    /**
     * Process-wide pool (hardware-concurrency sized, lazily created).
     * The library subsystems now default to Scheduler::shared()
     * instead; this singleton remains for standalone ThreadPool users.
     */
    static ThreadPool &shared();

    /** True on a thread currently executing a parallel_for task. */
    static bool in_task();

  private:
    struct Impl;
    void worker_main(int worker_id);
    void run_indices(const std::function<void(std::size_t, int)> &fn,
                     int worker);

    Impl *impl_;
    std::vector<std::thread> threads_;
};

} // namespace nassc

#endif // NASSC_SERVICE_THREAD_POOL_H
