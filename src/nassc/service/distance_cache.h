#ifndef NASSC_SERVICE_DISTANCE_CACHE_H
#define NASSC_SERVICE_DISTANCE_CACHE_H

/**
 * @file
 * Shared read-only cache of per-backend distance matrices.
 *
 * transpile() needs an all-pairs distance matrix per (backend, metric)
 * pair: plain hop counts for SABRE, or the HA noise-aware weights of
 * paper eq. 3.  Recomputing it per call is wasted work the moment two
 * jobs target the same device — which is every batch sweep in bench/.
 * DistanceCache computes each matrix exactly once, even when many
 * threads request it concurrently: the first requester installs a
 * shared_future and computes, everyone else blocks on that future and
 * shares the finished read-only matrix.
 *
 * Matrices are handed out as shared_ptr<const ...> so they stay valid
 * for the duration of a routing run regardless of cache lifetime.
 */

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nassc/topo/backends.h"
#include "nassc/topo/distance_matrix.h"

namespace nassc {

/** Read-only handle to a cached flat distance matrix. */
using SharedDistanceMatrix = std::shared_ptr<const DistanceMatrix>;

/** Which distance metric to fetch for a backend. */
struct DistanceRequest
{
    bool noise_aware = false;
    /** HA edge-weight coefficients (paper eq. 3); unused for hops. */
    double alpha1 = 0.5;
    double alpha2 = 0.0;
    double alpha3 = 0.5;

    static DistanceRequest hops() { return {}; }

    static DistanceRequest noise(double a1 = 0.5, double a2 = 0.0,
                                 double a3 = 0.5)
    {
        DistanceRequest r;
        r.noise_aware = true;
        r.alpha1 = a1;
        r.alpha2 = a2;
        r.alpha3 = a3;
        return r;
    }

    /** Cache-key fragment identifying this metric. */
    std::string key() const;
};

/** Thread-safe compute-once distance-matrix cache. */
class DistanceCache
{
  public:
    DistanceCache() = default;
    DistanceCache(const DistanceCache &) = delete;
    DistanceCache &operator=(const DistanceCache &) = delete;

    /**
     * Matrix for (backend, request), computed on first use.  Concurrent
     * requests for the same key block until the single computation
     * finishes; a computation that throws is evicted so a later call can
     * retry, and the exception propagates to every waiter.
     */
    SharedDistanceMatrix get(const Backend &backend,
                             const DistanceRequest &request = {});

    /** Matrices actually computed (not served from cache). */
    std::size_t computation_count() const;

    /** Requests served from an existing or in-flight entry. */
    std::size_t hit_count() const;

    /** Distinct keys currently cached. */
    std::size_t size() const;

    /** One-lock snapshot of all counters (the individual getters above
     *  can tear against concurrent gets when read one by one). */
    struct Stats
    {
        std::size_t computations = 0; ///< matrices actually computed
        std::size_t hits = 0;         ///< served from (in-flight) entries
        std::size_t entries = 0;      ///< distinct keys resident
    };

    Stats stats() const;

    void clear();

    /**
     * Process-wide cache used by the transpile() overload that does not
     * take an explicit cache.  Entries are keyed by Backend::cache_key(),
     * which fingerprints topology and calibration, so two backends only
     * share an entry when their matrices would be identical.
     */
    static DistanceCache &global();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::shared_future<SharedDistanceMatrix>> entries_;
    std::size_t computations_ = 0;
    std::size_t hits_ = 0;
};

} // namespace nassc

#endif // NASSC_SERVICE_DISTANCE_CACHE_H
