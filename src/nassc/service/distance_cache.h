#ifndef NASSC_SERVICE_DISTANCE_CACHE_H
#define NASSC_SERVICE_DISTANCE_CACHE_H

/**
 * @file
 * Shared read-only cache of per-backend distance providers.
 *
 * transpile() needs all-pairs distances per (backend, metric) pair:
 * plain hop counts for SABRE, or the HA noise-aware weights of paper
 * eq. 3.  Recomputing them per call is wasted work the moment two jobs
 * target the same device — which is every batch sweep in bench/.
 * DistanceCache builds each DistanceProvider exactly once, even when
 * many threads request it concurrently: the first requester installs a
 * shared_future and computes, everyone else blocks on that future and
 * shares the finished read-only provider.
 *
 * Dense providers (small devices) materialize the historical flat
 * DistanceMatrix up front; sparse providers (large devices) compute
 * per-source rows lazily, so the cache's memory footprint scales with
 * the rows workloads actually touch — the row-level counters in Stats
 * (rows_computed / row_hits / rows_evicted / row_bytes) make that
 * pressure observable per cache, and through the nasscd stats verb,
 * per shard.
 *
 * Calibration rotation: entries are keyed by Backend::cache_key(),
 * which fingerprints topology and calibration.  The cache additionally
 * tracks the last key seen per backend *name*; when a backend rotates
 * (same name, new key), every entry of the old generation is dropped
 * eagerly and counted in evictions_invalidated — the next request
 * recomputes only the rows it touches instead of inheriting a stale
 * matrix or leaking one per generation.
 *
 * Providers are handed out as shared_ptr<const ...> so they stay valid
 * for the duration of a routing run regardless of cache lifetime.
 */

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nassc/topo/backends.h"
#include "nassc/topo/distance_matrix.h"
#include "nassc/topo/distance_provider.h"

namespace nassc {

/** Read-only handle to a cached flat distance matrix. */
using SharedDistanceMatrix = std::shared_ptr<const DistanceMatrix>;

/** Read-only handle to a cached distance provider. */
using SharedDistanceProvider = SharedDistanceProviderPtr;

/** Which distance metric (and storage shape) to fetch for a backend. */
struct DistanceRequest
{
    bool noise_aware = false;
    /** HA edge-weight coefficients (paper eq. 3); unused for hops. */
    double alpha1 = 0.5;
    double alpha2 = 0.0;
    double alpha3 = 0.5;
    /** Lazy per-row provider instead of a dense matrix. */
    bool sparse = false;
    /** Sparse row-cache byte budget; 0 = unbounded.  Part of the cache
     *  key: two budgets are two providers with different eviction
     *  behavior. */
    std::size_t row_budget_bytes = 0;

    static DistanceRequest hops() { return {}; }

    static DistanceRequest noise(double a1 = 0.5, double a2 = 0.0,
                                 double a3 = 0.5)
    {
        DistanceRequest r;
        r.noise_aware = true;
        r.alpha1 = a1;
        r.alpha2 = a2;
        r.alpha3 = a3;
        return r;
    }

    /** Same metric, served through the sparse provider. */
    DistanceRequest as_sparse(std::size_t budget_bytes = 0) const
    {
        DistanceRequest r = *this;
        r.sparse = true;
        r.row_budget_bytes = budget_bytes;
        return r;
    }

    /** Cache-key fragment identifying this metric + storage shape. */
    std::string key() const;
};

/** Thread-safe compute-once distance-provider cache. */
class DistanceCache
{
  public:
    DistanceCache() = default;
    DistanceCache(const DistanceCache &) = delete;
    DistanceCache &operator=(const DistanceCache &) = delete;

    /**
     * Provider for (backend, request), built on first use.  Concurrent
     * requests for the same key block until the single construction
     * finishes; a construction that throws is evicted so a later call
     * can retry, and the exception propagates to every waiter.  A
     * rotated backend (same name, new cache_key) eagerly drops its old
     * generation's entries first.
     */
    SharedDistanceProvider provider(const Backend &backend,
                                    const DistanceRequest &request = {});

    /**
     * Dense-matrix compatibility shim: serves the request through a
     * dense provider (the sparse flag is ignored — a matrix must be
     * fully materialized) and returns the matrix aliased into it.
     * Existing callers and tests keep working unchanged.
     */
    SharedDistanceMatrix get(const Backend &backend,
                             const DistanceRequest &request = {});

    /**
     * Drop every entry belonging to `backend_name` (any generation),
     * counting them in evictions_invalidated.
     */
    void invalidate_backend(const std::string &backend_name);

    /** Providers actually computed (not served from cache). */
    std::size_t computation_count() const;

    /** Requests served from an existing or in-flight entry. */
    std::size_t hit_count() const;

    /** Distinct keys currently cached. */
    std::size_t size() const;

    /** One-lock snapshot of all counters (the individual getters above
     *  can tear against concurrent gets when read one by one).  Row
     *  counters aggregate over all resident providers plus every
     *  provider retired by rotation/invalidation, so they are monotone
     *  across generations (except row_bytes, which is resident-only). */
    struct Stats
    {
        std::size_t computations = 0; ///< providers actually computed
        std::size_t hits = 0;         ///< served from (in-flight) entries
        std::size_t entries = 0;      ///< distinct keys resident
        std::size_t evictions_invalidated = 0; ///< dropped by rotation
        std::size_t rows_computed = 0; ///< distance rows computed
        std::size_t row_hits = 0;      ///< row fetches served from cache
        std::size_t rows_evicted = 0;  ///< rows dropped by byte budgets
        std::size_t row_bytes = 0;     ///< resident row payload bytes
        std::size_t row_bytes_peak = 0; ///< sum of provider high-waters
    };

    Stats stats() const;

    void clear();

    /**
     * Process-wide cache used by the transpile() overload that does not
     * take an explicit cache.  Entries are keyed by Backend::cache_key(),
     * which fingerprints topology and calibration, so two backends only
     * share an entry when their distances would be identical.
     */
    static DistanceCache &global();

  private:
    struct Entry
    {
        std::shared_future<SharedDistanceProvider> future;
        std::string backend_name; ///< rotation-invalidation key
    };

    /** Drop `backend_name`'s entries; folds their row stats into the
     *  retired accumulators.  Caller holds mu_. */
    void invalidate_locked(const std::string &backend_name);

    /** Fold a ready entry's provider stats into the retired
     *  accumulators (no-op for in-flight or failed entries).  Caller
     *  holds mu_. */
    void retire_locked(const Entry &entry);

    mutable std::mutex mu_;
    std::map<std::string, Entry> entries_;
    /** Last cache_key seen per backend name (rotation detector). */
    std::map<std::string, std::string> generation_;
    std::size_t computations_ = 0;
    std::size_t hits_ = 0;
    std::size_t evictions_invalidated_ = 0;
    /** Row stats of providers no longer resident (rotated away). */
    std::size_t retired_rows_computed_ = 0;
    std::size_t retired_row_hits_ = 0;
    std::size_t retired_rows_evicted_ = 0;
    std::size_t retired_peak_bytes_ = 0;
};

} // namespace nassc

#endif // NASSC_SERVICE_DISTANCE_CACHE_H
