#ifndef NASSC_SERVICE_BATCH_TRANSPILER_H
#define NASSC_SERVICE_BATCH_TRANSPILER_H

/**
 * @file
 * Parallel batch transpilation engine.
 *
 * BatchTranspiler runs many (circuit, backend, TranspileOptions) jobs
 * across a fixed-size thread pool.  Three properties the bench/ sweeps
 * and any future serving layer rely on:
 *
 *  - Determinism: a job's result depends only on the job itself (the
 *    routers take explicit seeds and share no mutable state), and
 *    results are returned in submission order.  Metrics are therefore
 *    bit-identical regardless of thread count or completion order.
 *  - Shared distance matrices: all jobs resolve their backend's
 *    distance matrix through one DistanceCache, so a batch of N jobs on
 *    one backend computes the matrix once, not N times.
 *  - Error isolation: a throwing job becomes a failed JobResult with
 *    the exception message; it never tears down the pool or poisons
 *    sibling jobs.
 */

#include <memory>
#include <string>
#include <vector>

#include "nassc/service/distance_cache.h"
#include "nassc/service/thread_pool.h"
#include "nassc/transpile/transpile.h"

namespace nassc {

/** One unit of batch work. */
struct TranspileJob
{
    std::string tag; ///< caller-chosen label, reported back in the result
    QuantumCircuit circuit;
    /** Target device; shared_ptr so a sweep over one device is cheap. */
    std::shared_ptr<const Backend> backend;
    TranspileOptions options;
};

/** Outcome of one job. */
struct JobResult
{
    std::size_t index = 0; ///< submission index within the batch
    std::string tag;
    bool ok = false;
    std::string error;       ///< exception message when !ok
    unsigned seed_used = 0;  ///< effective seed after batch derivation
    TranspileResult result;  ///< valid only when ok
};

/** Engine configuration. */
struct BatchOptions
{
    /**
     * Concurrent jobs cap; 0 picks std::thread::hardware_concurrency().
     * This caps the workers taken from the (shared) pool per run, it no
     * longer spawns threads of its own.
     */
    int num_threads = 0;
    /**
     * When true, each job's seed becomes a deterministic mix of
     * base_seed, the job tag, and the job's own seed — so sweeps get
     * decorrelated layouts without hand-numbering seeds, and a job's
     * seed is independent of its position in the batch.
     */
    bool derive_seeds = false;
    unsigned base_seed = 0;
    /** Cache shared by all jobs; defaults to a fresh private cache. */
    std::shared_ptr<DistanceCache> cache;
    /**
     * Worker pool to run on; defaults to ThreadPool::shared(), which
     * LayoutSearch also uses — so a saturating batch automatically
     * degrades per-job layout trials to inline execution instead of
     * oversubscribing (see thread_pool.h).
     */
    std::shared_ptr<ThreadPool> pool;
};

/** Aggregate outcome of BatchTranspiler::run(). */
struct BatchReport
{
    std::vector<JobResult> results; ///< submission order
    std::size_t num_ok = 0;
    std::size_t num_failed = 0;
    double seconds = 0.0; ///< wall-clock for the whole batch
    /** Distance matrices computed (vs served from cache) by this run. */
    std::size_t distance_computations = 0;
    /** Successful jobs whose transpile reused the winning layout
     *  trial's routed pass (no separate post-search routing step). */
    std::size_t num_route_reused = 0;
    /** Sum of TranspileResult::full_route_passes over successful jobs —
     *  with reuse every kSabre job contributes one pass fewer. */
    long full_route_passes = 0;
};

/**
 * Deterministic per-job seed: a stable mix of the batch seed, the job
 * tag, and the job's own option seed.  Pure function of its arguments —
 * never of submission order.
 */
unsigned derive_job_seed(unsigned base_seed, const std::string &tag,
                         unsigned job_seed);

/** Fixed-thread-pool batch engine over transpile(). */
class BatchTranspiler
{
  public:
    explicit BatchTranspiler(BatchOptions options = {});

    /** Run all jobs; blocks until every job has a result. */
    BatchReport run(const std::vector<TranspileJob> &jobs) const;

    /** Worker slots run() will use for a batch of `jobs` jobs. */
    int num_threads_for(std::size_t jobs) const;

    DistanceCache &distance_cache() const { return *cache_; }

    ThreadPool &pool() const;

  private:
    BatchOptions options_;
    std::shared_ptr<DistanceCache> cache_;
    std::shared_ptr<ThreadPool> pool_; ///< null = ThreadPool::shared()
};

} // namespace nassc

#endif // NASSC_SERVICE_BATCH_TRANSPILER_H
