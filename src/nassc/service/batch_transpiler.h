#ifndef NASSC_SERVICE_BATCH_TRANSPILER_H
#define NASSC_SERVICE_BATCH_TRANSPILER_H

/**
 * @file
 * Parallel batch transpilation engine.
 *
 * BatchTranspiler runs many (circuit, backend, TranspileOptions) jobs
 * across the work-stealing Scheduler.  Three properties the bench/
 * sweeps and the serving layer rely on:
 *
 *  - Determinism: a job's result depends only on the job itself (the
 *    routers take explicit seeds and share no mutable state), and
 *    results are returned in submission order.  Metrics are therefore
 *    bit-identical regardless of thread count, steal schedule, or
 *    completion order.
 *  - Shared distance matrices: all jobs resolve their backend's
 *    distance matrix through one DistanceCache, so a batch of N jobs on
 *    one backend computes the matrix once, not N times.
 *  - Error isolation: a throwing job becomes a failed JobResult with
 *    the exception message; it never tears down the pool or poisons
 *    sibling jobs.
 *
 * Since the scheduler is multi-job, concurrent BatchTranspiler::run()
 * calls from distinct threads interleave on the same workers instead
 * of serializing (the old ThreadPool submit-mutex behavior).
 *
 * Dedup/caching: with BatchOptions::service set, jobs are submitted
 * through a TranspileService instead of calling transpile() directly —
 * identical jobs (same circuit, backend, and effective options,
 * including the derived seed) coalesce to one transpile or hit the
 * service's LRU result cache, and the BatchReport carries the
 * hit/coalesce/eviction deltas.  Results stay bit-identical either
 * way; only TranspileResult's timing fields describe the original
 * computation on a hit.
 */

#include <memory>
#include <string>
#include <vector>

#include "nassc/service/distance_cache.h"
#include "nassc/service/scheduler.h"
#include "nassc/service/transpile_service.h"
#include "nassc/transpile/transpile.h"

namespace nassc {

/** One unit of batch work. */
struct TranspileJob
{
    std::string tag; ///< caller-chosen label, reported back in the result
    QuantumCircuit circuit;
    /** Target device; shared_ptr so a sweep over one device is cheap. */
    std::shared_ptr<const Backend> backend;
    TranspileOptions options;
};

/** Outcome of one job. */
struct JobResult
{
    std::size_t index = 0; ///< submission index within the batch
    std::string tag;
    bool ok = false;
    std::string error;       ///< exception message when !ok
    unsigned seed_used = 0;  ///< effective seed after batch derivation
    TranspileResult result;  ///< valid only when ok
};

/** Engine configuration. */
struct BatchOptions
{
    /**
     * Concurrent jobs cap; 0 picks std::thread::hardware_concurrency().
     * This caps the worker slots taken from the scheduler per run (the
     * direct path); the service path runs at the service's concurrency.
     */
    int num_threads = 0;
    /**
     * When true, each job's seed becomes a deterministic mix of
     * base_seed, the job tag, and the job's own seed — so sweeps get
     * decorrelated layouts without hand-numbering seeds, and a job's
     * seed is independent of its position in the batch.
     */
    bool derive_seeds = false;
    unsigned base_seed = 0;
    /** Cache shared by all jobs; defaults to a fresh private cache.
     *  Ignored on the service path (the service owns one). */
    std::shared_ptr<DistanceCache> cache;
    /**
     * Scheduler to run on; defaults to Scheduler::shared(), which
     * LayoutSearch also uses — so a saturating batch automatically
     * degrades per-job layout trials to inline execution instead of
     * oversubscribing (see scheduler.h).
     */
    std::shared_ptr<Scheduler> scheduler;
    /**
     * When set, jobs go through this TranspileService: in-flight
     * duplicates coalesce, repeats hit its result cache, and the
     * report carries the service-stat deltas.  The service's scheduler
     * wins over `scheduler` for job execution.
     */
    std::shared_ptr<TranspileService> service;
};

/** Aggregate outcome of BatchTranspiler::run(). */
struct BatchReport
{
    std::vector<JobResult> results; ///< submission order
    std::size_t num_ok = 0;
    std::size_t num_failed = 0;
    double seconds = 0.0; ///< wall-clock for the whole batch
    /** Distance matrices computed (vs served from cache) by this run. */
    std::size_t distance_computations = 0;
    /** Transpiles THIS RUN executed that reused the winning layout
     *  trial's routed pass (no separate post-search routing step).
     *  On the service path, coalesced/cache-hit duplicates carry the
     *  owner's result but performed no work, so they don't count. */
    std::size_t num_route_reused = 0;
    /** Full-circuit routing passes THIS RUN performed (sum of
     *  TranspileResult::full_route_passes over executed transpiles;
     *  deduped jobs contribute nothing).  With reuse every kSabre
     *  transpile contributes one pass fewer. */
    long full_route_passes = 0;
    /** @name Service-path deltas (all zero on the direct path). @{ */
    bool used_service = false;
    std::uint64_t cache_hits = 0;    ///< jobs served from the result cache
    std::uint64_t coalesced = 0;     ///< jobs joining an in-flight twin
    std::uint64_t transpiles = 0;    ///< transpiles actually executed
    std::uint64_t cache_evictions = 0;
    /** @} */
};

/**
 * Deterministic per-job seed: a stable mix of the batch seed, the job
 * tag, and the job's own option seed.  Pure function of its arguments —
 * never of submission order.
 */
unsigned derive_job_seed(unsigned base_seed, const std::string &tag,
                         unsigned job_seed);

/** Scheduler-backed batch engine over transpile(). */
class BatchTranspiler
{
  public:
    explicit BatchTranspiler(BatchOptions options = {});

    /** Run all jobs; blocks until every job has a result. */
    BatchReport run(const std::vector<TranspileJob> &jobs) const;

    /** Worker slots run() will use for a batch of `jobs` jobs. */
    int num_threads_for(std::size_t jobs) const;

    DistanceCache &distance_cache() const;

    Scheduler &scheduler() const;

  private:
    BatchReport run_direct(const std::vector<TranspileJob> &jobs) const;
    BatchReport run_service(const std::vector<TranspileJob> &jobs) const;
    TranspileOptions effective_options(const TranspileJob &job) const;

    BatchOptions options_;
    std::shared_ptr<DistanceCache> cache_;
    std::shared_ptr<Scheduler> scheduler_; ///< null = Scheduler::shared()
};

} // namespace nassc

#endif // NASSC_SERVICE_BATCH_TRANSPILER_H
