#include "nassc/service/scheduler.h"

#include "nassc/obs/trace.h"
#include "nassc/service/failpoint.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace nassc {

namespace {

using Clock = std::chrono::steady_clock;

/** Set while the current thread executes scheduler tasks. */
thread_local bool t_in_task = false;

/** Cancel flag of the job whose task this thread is running, if any —
 *  read by Scheduler::current_job_cancelled() without any lock. */
thread_local const std::atomic<bool> *t_cancel_flag = nullptr;

/** Effective deadline of the calling thread (DeadlineScopes min'd with
 *  the running job's deadline); max() = unbounded. */
thread_local Clock::time_point t_deadline = Clock::time_point::max();

struct TaskScope
{
    bool prev;
    const std::atomic<bool> *prev_flag;
    Clock::time_point prev_deadline;

    /**
     * Inline path (nested parallel_for, caller-drained job): mark the
     * thread in-task but INHERIT the enclosing cancel flag and deadline
     * — an inner loop must still observe the outer job's cancellation
     * and budget.
     */
    TaskScope()
        : prev(t_in_task), prev_flag(t_cancel_flag),
          prev_deadline(t_deadline)
    {
        t_in_task = true;
    }

    /** Worker path: bind the claimed job's cancel flag and deadline. */
    TaskScope(const std::atomic<bool> *cancel_flag, Clock::time_point deadline)
        : prev(t_in_task), prev_flag(t_cancel_flag),
          prev_deadline(t_deadline)
    {
        t_in_task = true;
        t_cancel_flag = cancel_flag;
        t_deadline = deadline;
    }

    ~TaskScope()
    {
        t_in_task = prev;
        t_cancel_flag = prev_flag;
        t_deadline = prev_deadline;
    }
};

} // namespace

/**
 * One job's queue: an index counter plus a slot free-list, both guarded
 * by the scheduler-wide mutex (tasks are routing passes and whole
 * transpiles, so one light mutex around claim bookkeeping is noise —
 * and it keeps the lock order trivially ThreadSanitizer-clean).
 * Completion is signalled through the job's OWN mutex/cv so a
 * JobHandle can outlive the scheduler's interest in the job.
 */
struct Scheduler::JobHandle::Job
{
    Scheduler::TaskFn fn;
    std::size_t count = 0;
    int priority = 0; ///< higher is claimed first; immutable after submit

    /** Owning scheduler's Impl, for cancel(); valid while the job is
     *  undone (the scheduler's destructor drains every job). */
    Scheduler::Impl *impl = nullptr;

    // Claim state, guarded by Impl::mu.
    std::size_t next = 0;
    std::size_t finished = 0;
    std::vector<int> free_slots; ///< pool-claimable slot ids, stack order
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;

    /** Set by cancel(); polled lock-free by running tasks. */
    std::atomic<bool> cancelled{false};

    /** Absolute budget installed while this job's tasks run; max() =
     *  none.  Immutable after the job becomes visible to workers. */
    Clock::time_point deadline = Clock::time_point::max();

    /** Submitter's request tracer (null unless the submitting thread
     *  was tracing); workers install it around this job's tasks so
     *  spans from stolen work land on the right request.  Immutable
     *  after the job becomes visible to workers. */
    obs::SharedTracer trace;

    // Completion latch, guarded by done_mu (error is safe to read after
    // observing done: every error write under Impl::mu happens-before
    // the finishing thread's done store).
    std::mutex done_mu;
    std::condition_variable done_cv;
    bool done = false;

    Job(Scheduler::TaskFn f, std::size_t n) : fn(std::move(f)), count(n) {}

    bool
    claimable() const
    {
        return next < count && !free_slots.empty();
    }
};

struct Scheduler::Impl
{
    /** Hard ceiling for ensure_workers() growth. */
    static constexpr int kMaxThreads = 256;

    using Job = Scheduler::JobHandle::Job;

    std::mutex mu;                 ///< active-job list + every job's claims
    std::condition_variable work_cv; ///< workers: new work or stop
    std::condition_variable idle_cv; ///< destructor: active list drained
    std::vector<std::shared_ptr<Job>> jobs; ///< active jobs, arrival order
    bool stop = false;

    /** threads.size() mirror, readable without spawn_mu. */
    std::atomic<int> pool_size{0};
    std::mutex spawn_mu; ///< serializes ensure_workers growth
    std::vector<std::thread> threads;

    /** Remove a completed job and trip its latch.  Called under mu. */
    void
    finish_job(const std::shared_ptr<Job> &job)
    {
        auto it = std::find(jobs.begin(), jobs.end(), job);
        if (it != jobs.end())
            jobs.erase(it);
        {
            std::lock_guard<std::mutex> g(job->done_mu);
            job->done = true;
        }
        job->done_cv.notify_all();
        if (jobs.empty())
            idle_cv.notify_all();
    }

    /** Record a task failure; lowest index wins.  Called under mu. */
    static void
    record_error(Job &job, std::size_t index, std::exception_ptr e)
    {
        if (index < job.error_index) {
            job.error_index = index;
            job.error = std::move(e);
        }
    }
};

Scheduler::Scheduler(int num_threads) : impl_(new Impl)
{
    if (num_threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        num_threads = hw ? static_cast<int>(hw) : 1;
    }
    // At least one worker always: submit()ted jobs have no caller slot,
    // so an empty pool would strand them forever.
    num_threads = std::max(1, std::min(num_threads, Impl::kMaxThreads));
    for (int i = 0; i < num_threads; ++i)
        impl_->threads.emplace_back([this] { worker_main(); });
    impl_->pool_size.store(num_threads);
}

Scheduler::~Scheduler()
{
    Impl &im = *impl_;
    {
        // Drain: every enqueued job still completes (tasks are finite),
        // so a handle dropped without wait() never strands the workers.
        std::unique_lock<std::mutex> lk(im.mu);
        im.idle_cv.wait(lk, [&] { return im.jobs.empty(); });
        im.stop = true;
    }
    im.work_cv.notify_all();
    for (std::thread &t : im.threads)
        t.join();
    delete impl_;
}

int
Scheduler::num_threads() const
{
    return impl_->pool_size.load(std::memory_order_acquire);
}

int
Scheduler::ensure_workers(int max_workers)
{
    // Nested callers run their loops inline anyway, and growth from a
    // task could only serve work the guard will never fan out.
    if (max_workers <= 0 || in_task())
        return num_threads();
    int want = std::min(max_workers - 1, Impl::kMaxThreads);
    if (want <= num_threads())
        return num_threads();
    std::lock_guard<std::mutex> g(impl_->spawn_mu);
    // New threads are safe to join mid-flight: they simply start
    // scanning the active-job list like any sibling.
    while (static_cast<int>(impl_->threads.size()) < want)
        impl_->threads.emplace_back([this] { worker_main(); });
    impl_->pool_size.store(static_cast<int>(impl_->threads.size()),
                           std::memory_order_release);
    return num_threads();
}

void
Scheduler::worker_main()
{
    using Job = Impl::Job;
    Impl &im = *impl_;
    std::size_t rotor = 0; ///< round-robin scan start (local per thread)

    std::unique_lock<std::mutex> lk(im.mu);
    for (;;) {
        // Steal ONE task from the highest-priority claimable job, then
        // re-scan: between-task rotation (the tie-break within a
        // priority) is what interleaves a late-arriving job with an
        // in-flight one on the same workers.
        std::shared_ptr<Job> job;
        std::size_t index = 0;
        int slot = -1;
        const std::size_t n = im.jobs.size();
        std::size_t best_at = 0;
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t at = (rotor + k) % n;
            Job &j = *im.jobs[at];
            if (j.claimable() && (!job || j.priority > job->priority)) {
                job = im.jobs[at];
                best_at = at;
            }
        }
        if (job) {
            index = job->next++;
            slot = job->free_slots.back();
            job->free_slots.pop_back();
            rotor = (best_at + 1) % n;
        } else {
            if (im.stop)
                return;
            im.work_cv.wait(lk);
            rotor = 0;
            continue;
        }

        lk.unlock();
        std::exception_ptr err;
        {
            // Bind the job's tracer (usually null — swapping empty
            // shared_ptrs, no atomics) before entering the task, so
            // span sites inside it attribute to the owning request.
            obs::TraceScope trace_scope(job->trace);
            TaskScope scope(&job->cancelled, job->deadline);
            try {
                failpoint::hit("scheduler.claim");
                job->fn(index, slot);
            } catch (...) {
                err = std::current_exception();
            }
        }
        lk.lock();

        job->free_slots.push_back(slot);
        if (err)
            Impl::record_error(*job, index, std::move(err));
        if (++job->finished == job->count)
            im.finish_job(job);
        else if (job->next < job->count)
            im.work_cv.notify_one(); // freed slot: a sibling can claim
    }
}

Scheduler::JobHandle
Scheduler::submit(std::size_t count, TaskFn fn, int max_slots, int priority,
                  std::chrono::steady_clock::time_point deadline)
{
    using Job = Impl::Job;
    Impl &im = *impl_;
    auto job = std::make_shared<Job>(std::move(fn), count);
    job->priority = priority;
    job->impl = impl_;
    job->deadline = deadline;
    job->trace = obs::current_tracer(); // one relaxed load when off
    if (count == 0) {
        job->done = true;
        return JobHandle(job);
    }
    int slots = max_slots <= 0 ? num_threads() : max_slots;
    slots = std::max(1, std::min(slots, num_threads()));
    if (static_cast<std::size_t>(slots) > count)
        slots = static_cast<int>(count);
    // Descending push so the stack hands out low slot ids first — a
    // lightly loaded job touches the same scratch slots every run.
    for (int s = slots - 1; s >= 0; --s)
        job->free_slots.push_back(s);
    {
        std::lock_guard<std::mutex> lk(im.mu);
        im.jobs.push_back(job);
    }
    im.work_cv.notify_all();
    return JobHandle(job);
}

void
Scheduler::parallel_for(std::size_t count, const TaskFn &fn, int max_workers)
{
    using Job = Impl::Job;
    if (count == 0)
        return;
    Impl &im = *impl_;
    if (max_workers <= 0)
        max_workers = num_threads() + 1;

    // Inline paths: nested call from inside a task (the guard), a
    // serial request, or a single index.  Identical semantics to the
    // parallel path: every index runs, lowest-index exception rethrows.
    if (in_task() || max_workers == 1 || count <= 1 || num_threads() == 0) {
        TaskScope scope;
        std::size_t error_index = std::numeric_limits<std::size_t>::max();
        std::exception_ptr error;
        for (std::size_t i = 0; i < count; ++i) {
            try {
                fn(i, 0);
            } catch (...) {
                if (i < error_index) {
                    error_index = i;
                    error = std::current_exception();
                }
            }
        }
        if (error)
            std::rethrow_exception(error);
        return;
    }

    auto job = std::make_shared<Job>(fn, count);
    job->impl = impl_;
    // Hand the caller's budget to the stolen tasks: a DeadlineScope
    // around this parallel_for must bound trials on pool workers too.
    job->deadline = t_deadline;
    // Likewise the caller's tracer: stolen layout trials report spans
    // onto the request being traced, not into the void.
    job->trace = obs::current_tracer();
    int slots = max_workers;
    if (static_cast<std::size_t>(slots) > count)
        slots = static_cast<int>(count);
    // Slot 0 is reserved for this caller; pool workers claim 1..slots-1.
    for (int s = slots - 1; s >= 1; --s)
        job->free_slots.push_back(s);
    {
        std::lock_guard<std::mutex> lk(im.mu);
        im.jobs.push_back(job);
    }
    im.work_cv.notify_all();

    // The caller drains its OWN job only — it must not wander into a
    // foreign job's long task while its stragglers finish.
    bool finished_last = false;
    {
        TaskScope scope;
        for (;;) {
            std::size_t i;
            {
                std::lock_guard<std::mutex> lk(im.mu);
                if (job->next >= job->count)
                    break;
                i = job->next++;
            }
            std::exception_ptr err;
            try {
                fn(i, 0);
            } catch (...) {
                err = std::current_exception();
            }
            std::lock_guard<std::mutex> lk(im.mu);
            if (err)
                Impl::record_error(*job, i, std::move(err));
            if (++job->finished == job->count) {
                im.finish_job(job);
                finished_last = true;
                break;
            }
        }
    }

    if (!finished_last) {
        std::unique_lock<std::mutex> dlk(job->done_mu);
        job->done_cv.wait(dlk, [&] { return job->done; });
    }
    if (job->error)
        std::rethrow_exception(job->error);
}

bool
Scheduler::JobHandle::done() const
{
    if (!job_)
        return true;
    std::lock_guard<std::mutex> g(job_->done_mu);
    return job_->done;
}

std::size_t
Scheduler::JobHandle::cancel() const
{
    if (!job_)
        return 0;
    job_->cancelled.store(true, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> g(job_->done_mu);
        if (job_->done)
            return 0;
    }
    // Not done: the owning scheduler is still alive (its destructor
    // drains every job before returning), so Impl is safe to touch.
    Impl &im = *job_->impl;
    std::lock_guard<std::mutex> lk(im.mu);
    const std::size_t dropped =
        job_->count > job_->next ? job_->count - job_->next : 0;
    if (dropped == 0)
        return 0;
    job_->next = job_->count;
    job_->finished += dropped;
    if (job_->finished == job_->count)
        im.finish_job(job_);
    return dropped;
}

bool
Scheduler::JobHandle::cancelled() const
{
    return job_ && job_->cancelled.load(std::memory_order_relaxed);
}

void
Scheduler::JobHandle::wait() const
{
    if (!job_)
        return;
    {
        std::unique_lock<std::mutex> lk(job_->done_mu);
        job_->done_cv.wait(lk, [&] { return job_->done; });
    }
    if (job_->error)
        std::rethrow_exception(job_->error);
}

Scheduler &
Scheduler::shared()
{
    static Scheduler scheduler(0);
    return scheduler;
}

bool
Scheduler::in_task()
{
    return t_in_task;
}

bool
Scheduler::current_job_cancelled()
{
    return t_cancel_flag &&
           t_cancel_flag->load(std::memory_order_relaxed);
}

std::chrono::steady_clock::time_point
Scheduler::current_job_deadline()
{
    return t_deadline;
}

bool
Scheduler::current_job_expired()
{
    return t_deadline != Clock::time_point::max() &&
           Clock::now() >= t_deadline;
}

Scheduler::DeadlineScope::DeadlineScope(
    std::chrono::steady_clock::time_point deadline)
    : prev_(t_deadline)
{
    t_deadline = std::min(prev_, deadline);
}

Scheduler::DeadlineScope::~DeadlineScope() { t_deadline = prev_; }

} // namespace nassc
