#include "nassc/service/batch_transpiler.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

namespace nassc {

unsigned
derive_job_seed(unsigned base_seed, const std::string &tag, unsigned job_seed)
{
    // FNV-1a over (base_seed, tag, job_seed), folded to 32 bits.  Cheap,
    // stable across platforms, and independent of submission order.
    std::uint64_t h = 14695981039346656037ull;
    auto mix_byte = [&h](unsigned char b) {
        h ^= b;
        h *= 1099511628211ull;
    };
    for (int i = 0; i < 4; ++i)
        mix_byte(static_cast<unsigned char>(base_seed >> (8 * i)));
    for (char c : tag)
        mix_byte(static_cast<unsigned char>(c));
    for (int i = 0; i < 4; ++i)
        mix_byte(static_cast<unsigned char>(job_seed >> (8 * i)));
    return static_cast<unsigned>(h ^ (h >> 32));
}

BatchTranspiler::BatchTranspiler(BatchOptions options)
    : options_(std::move(options)), cache_(options_.cache)
{
    if (!cache_)
        cache_ = std::make_shared<DistanceCache>();
}

int
BatchTranspiler::num_threads_for(std::size_t jobs) const
{
    int n = options_.num_threads;
    if (n <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        n = hw ? static_cast<int>(hw) : 1;
    }
    if (static_cast<std::size_t>(n) > jobs)
        n = static_cast<int>(jobs);
    return n < 1 ? 1 : n;
}

BatchReport
BatchTranspiler::run(const std::vector<TranspileJob> &jobs) const
{
    auto t0 = std::chrono::steady_clock::now();

    BatchReport report;
    report.results.resize(jobs.size());

    const std::size_t cache_computations_before = cache_->computation_count();

    // Workers pull the next submission index from a shared counter and
    // write into their own result slot: no per-job locking, and results
    // land in submission order no matter which worker finishes first.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            const TranspileJob &job = jobs[i];
            JobResult &out = report.results[i];
            out.index = i;
            out.tag = job.tag;
            try {
                if (!job.backend)
                    throw std::invalid_argument("job has no backend");
                TranspileOptions opts = job.options;
                if (options_.derive_seeds)
                    opts.seed = derive_job_seed(options_.base_seed, job.tag,
                                                job.options.seed);
                out.seed_used = opts.seed;
                out.result = transpile(job.circuit, *job.backend, opts,
                                       *cache_);
                out.ok = true;
            } catch (const std::exception &e) {
                out.ok = false;
                out.error = e.what();
            } catch (...) {
                out.ok = false;
                out.error = "unknown exception";
            }
        }
    };

    const int threads = num_threads_for(jobs.size());
    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (int t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    for (const JobResult &r : report.results)
        (r.ok ? report.num_ok : report.num_failed)++;
    report.distance_computations =
        cache_->computation_count() - cache_computations_before;

    auto t1 = std::chrono::steady_clock::now();
    report.seconds = std::chrono::duration<double>(t1 - t0).count();
    return report;
}

} // namespace nassc
