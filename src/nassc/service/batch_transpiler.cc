#include "nassc/service/batch_transpiler.h"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "nassc/ir/fnv1a.h"

namespace nassc {

unsigned
derive_job_seed(unsigned base_seed, const std::string &tag, unsigned job_seed)
{
    // FNV-1a over (base_seed, tag, job_seed), folded to 32 bits.  Cheap,
    // stable across platforms, and independent of submission order.
    Fnv1a mix;
    mix.u32(base_seed);
    mix.str(tag);
    mix.u32(job_seed);
    return mix.fold32();
}

BatchTranspiler::BatchTranspiler(BatchOptions options)
    : options_(std::move(options)), cache_(options_.cache),
      scheduler_(options_.scheduler)
{
    if (!cache_)
        cache_ = std::make_shared<DistanceCache>();
}

Scheduler &
BatchTranspiler::scheduler() const
{
    if (options_.service)
        return options_.service->scheduler();
    return scheduler_ ? *scheduler_ : Scheduler::shared();
}

DistanceCache &
BatchTranspiler::distance_cache() const
{
    return options_.service ? options_.service->distance_cache() : *cache_;
}

int
BatchTranspiler::num_threads_for(std::size_t jobs) const
{
    int n = options_.num_threads;
    if (n <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        n = hw ? static_cast<int>(hw) : 1;
    }
    if (static_cast<std::size_t>(n) > jobs)
        n = static_cast<int>(jobs);
    return n < 1 ? 1 : n;
}

TranspileOptions
BatchTranspiler::effective_options(const TranspileJob &job) const
{
    TranspileOptions opts = job.options;
    if (options_.derive_seeds)
        opts.seed =
            derive_job_seed(options_.base_seed, job.tag, job.options.seed);
    return opts;
}

BatchReport
BatchTranspiler::run(const std::vector<TranspileJob> &jobs) const
{
    auto t0 = std::chrono::steady_clock::now();
    BatchReport report = options_.service ? run_service(jobs)
                                          : run_direct(jobs);
    for (const JobResult &r : report.results)
        (r.ok ? report.num_ok : report.num_failed)++;
    auto t1 = std::chrono::steady_clock::now();
    report.seconds = std::chrono::duration<double>(t1 - t0).count();
    return report;
}

BatchReport
BatchTranspiler::run_direct(const std::vector<TranspileJob> &jobs) const
{
    BatchReport report;
    report.results.resize(jobs.size());

    const std::size_t cache_computations_before = cache_->computation_count();

    // Each job writes into its own submission-index slot, so results
    // land in submission order no matter which worker stole them, and
    // every error is captured into the slot rather than escaping (the
    // scheduler would rethrow otherwise).
    auto run_job = [&](std::size_t i, int /*worker*/) {
        const TranspileJob &job = jobs[i];
        JobResult &out = report.results[i];
        out.index = i;
        out.tag = job.tag;
        try {
            if (!job.backend)
                throw std::invalid_argument("job has no backend");
            TranspileOptions opts = effective_options(job);
            out.seed_used = opts.seed;
            out.result = transpile(job.circuit, *job.backend, opts, *cache_);
            out.ok = true;
        } catch (const std::exception &e) {
            out.ok = false;
            out.error = e.what();
        } catch (...) {
            out.ok = false;
            out.error = "unknown exception";
        }
    };

    // Grow the pool up to the requested cap first: an explicit
    // --threads N must deliver N-way parallelism even where
    // hardware_concurrency() under-reports (cgroup-limited containers).
    const int cap = num_threads_for(jobs.size());
    scheduler().ensure_workers(cap);
    scheduler().parallel_for(jobs.size(), run_job, cap);

    for (const JobResult &r : report.results) {
        if (!r.ok)
            continue;
        if (r.result.reused_search_route)
            ++report.num_route_reused;
        report.full_route_passes += r.result.full_route_passes;
    }
    report.distance_computations =
        cache_->computation_count() - cache_computations_before;
    return report;
}

BatchReport
BatchTranspiler::run_service(const std::vector<TranspileJob> &jobs) const
{
    TranspileService &service = *options_.service;
    BatchReport report;
    report.used_service = true;
    report.results.resize(jobs.size());

    const ServiceStats before = service.stats();
    const std::size_t distance_before =
        service.distance_cache().computation_count();
    // +1: ensure_workers counts a parallel_for caller slot, but service
    // jobs run entirely on pool workers (the submitter only waits), so
    // --threads N needs N actual pool threads for N-way concurrency.
    service.scheduler().ensure_workers(num_threads_for(jobs.size()) + 1);

    // Submit everything first (so duplicates overlap and coalesce),
    // then collect in submission order.  Tickets hold shared results;
    // each JobResult copies its own so the report stays self-contained.
    std::vector<TranspileTicket> tickets(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const TranspileJob &job = jobs[i];
        JobResult &out = report.results[i];
        out.index = i;
        out.tag = job.tag;
        if (!job.backend) {
            out.error = "job has no backend";
            continue;
        }
        TranspileOptions opts = effective_options(job);
        out.seed_used = opts.seed;
        tickets[i] = service.submit(job.circuit, job.backend, opts);
    }

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        JobResult &out = report.results[i];
        if (!tickets[i].valid())
            continue; // null backend, error already recorded
        try {
            out.result = *tickets[i].get();
            out.ok = true;
            // Route-pass accounting counts work PERFORMED, so only the
            // ticket that owned the transpile contributes; coalesced
            // and cache-hit duplicates carry a copy of the owner's
            // result but executed nothing.
            if (tickets[i].source() == TicketSource::kScheduled ||
                tickets[i].source() == TicketSource::kInline) {
                if (out.result.reused_search_route)
                    ++report.num_route_reused;
                report.full_route_passes += out.result.full_route_passes;
            }
        } catch (const std::exception &e) {
            out.error = e.what();
        } catch (...) {
            out.error = "unknown exception";
        }
    }

    const ServiceStats after = service.stats();
    report.cache_hits = after.cache_hits - before.cache_hits;
    report.coalesced = after.coalesced - before.coalesced;
    report.transpiles = (after.transpiles_ok + after.transpiles_failed) -
                        (before.transpiles_ok + before.transpiles_failed);
    report.cache_evictions =
        (after.evictions_capacity + after.evictions_invalidated) -
        (before.evictions_capacity + before.evictions_invalidated);
    report.distance_computations =
        service.distance_cache().computation_count() - distance_before;
    return report;
}

} // namespace nassc
