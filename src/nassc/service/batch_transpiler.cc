#include "nassc/service/batch_transpiler.h"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "nassc/ir/fnv1a.h"

namespace nassc {

unsigned
derive_job_seed(unsigned base_seed, const std::string &tag, unsigned job_seed)
{
    // FNV-1a over (base_seed, tag, job_seed), folded to 32 bits.  Cheap,
    // stable across platforms, and independent of submission order.
    Fnv1a mix;
    mix.u32(base_seed);
    mix.str(tag);
    mix.u32(job_seed);
    return mix.fold32();
}

BatchTranspiler::BatchTranspiler(BatchOptions options)
    : options_(std::move(options)), cache_(options_.cache),
      pool_(options_.pool)
{
    if (!cache_)
        cache_ = std::make_shared<DistanceCache>();
}

ThreadPool &
BatchTranspiler::pool() const
{
    return pool_ ? *pool_ : ThreadPool::shared();
}

int
BatchTranspiler::num_threads_for(std::size_t jobs) const
{
    int n = options_.num_threads;
    if (n <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        n = hw ? static_cast<int>(hw) : 1;
    }
    if (static_cast<std::size_t>(n) > jobs)
        n = static_cast<int>(jobs);
    return n < 1 ? 1 : n;
}

BatchReport
BatchTranspiler::run(const std::vector<TranspileJob> &jobs) const
{
    auto t0 = std::chrono::steady_clock::now();

    BatchReport report;
    report.results.resize(jobs.size());

    const std::size_t cache_computations_before = cache_->computation_count();

    // Each job writes into its own submission-index slot, so results
    // land in submission order no matter which pool worker ran them, and
    // every error is captured into the slot rather than escaping (the
    // pool would rethrow otherwise).
    auto run_job = [&](std::size_t i, int /*worker*/) {
        const TranspileJob &job = jobs[i];
        JobResult &out = report.results[i];
        out.index = i;
        out.tag = job.tag;
        try {
            if (!job.backend)
                throw std::invalid_argument("job has no backend");
            TranspileOptions opts = job.options;
            if (options_.derive_seeds)
                opts.seed = derive_job_seed(options_.base_seed, job.tag,
                                            job.options.seed);
            out.seed_used = opts.seed;
            out.result = transpile(job.circuit, *job.backend, opts, *cache_);
            out.ok = true;
        } catch (const std::exception &e) {
            out.ok = false;
            out.error = e.what();
        } catch (...) {
            out.ok = false;
            out.error = "unknown exception";
        }
    };

    // Grow the pool up to the requested cap first: an explicit
    // --threads N must deliver N-way parallelism even where
    // hardware_concurrency() under-reports (cgroup-limited containers).
    const int cap = num_threads_for(jobs.size());
    pool().ensure_workers(cap);
    pool().parallel_for(jobs.size(), run_job, cap);

    for (const JobResult &r : report.results) {
        (r.ok ? report.num_ok : report.num_failed)++;
        if (r.ok) {
            if (r.result.reused_search_route)
                ++report.num_route_reused;
            report.full_route_passes += r.result.full_route_passes;
        }
    }
    report.distance_computations =
        cache_->computation_count() - cache_computations_before;

    auto t1 = std::chrono::steady_clock::now();
    report.seconds = std::chrono::duration<double>(t1 - t0).count();
    return report;
}

} // namespace nassc
