#include "nassc/service/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <utility>

namespace nassc {

namespace {

/** Set while the current thread executes parallel_for tasks. */
thread_local bool t_in_task = false;

struct TaskScope
{
    bool prev;
    TaskScope() : prev(t_in_task) { t_in_task = true; }
    ~TaskScope() { t_in_task = prev; }
};

} // namespace

struct ThreadPool::Impl
{
    /** Hard ceiling for ensure_workers() growth. */
    static constexpr int kMaxThreads = 256;

    /** threads_.size() mirror, readable without the submit mutex. */
    std::atomic<int> pool_size{0};

    std::mutex mutex;                 ///< protects the job fields below
    std::condition_variable wake;     ///< workers wait for a new job
    std::condition_variable done;     ///< caller waits for active == 0
    std::uint64_t generation = 0;     ///< bumped per submitted job
    bool stop = false;

    // Current job (valid while active > 0 or generation unchanged).
    const std::function<void(std::size_t, int)> *fn = nullptr;
    std::size_t count = 0;
    int wanted = 0; ///< pool workers participating (ids 1..wanted)
    std::atomic<std::size_t> next{0};
    int active = 0; ///< wanted workers not yet finished with the job

    // Per-job exception capture: lowest index wins, deterministically.
    std::mutex error_mutex;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;

    /** Serializes parallel_for submissions from distinct threads. */
    std::mutex submit_mutex;

    void
    record_error(std::size_t index, std::exception_ptr e)
    {
        std::lock_guard<std::mutex> lk(error_mutex);
        if (index < error_index) {
            error_index = index;
            error = std::move(e);
        }
    }
};

ThreadPool::ThreadPool(int num_threads) : impl_(new Impl)
{
    if (num_threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        num_threads = hw ? static_cast<int>(hw) : 1;
    }
    for (int id = 1; id <= num_threads; ++id)
        threads_.emplace_back([this, id] { worker_main(id); });
    impl_->pool_size.store(num_threads);
}

int
ThreadPool::num_threads() const
{
    return impl_->pool_size.load(std::memory_order_acquire);
}

int
ThreadPool::ensure_workers(int max_workers)
{
    // Nested callers run their loops inline; growing here would also
    // deadlock on the submit mutex the outer parallel_for holds.
    if (max_workers <= 0 || in_task())
        return num_threads();
    int want = std::min(max_workers - 1, Impl::kMaxThreads);
    if (want <= num_threads())
        return num_threads();
    // The submit mutex keeps growth out of any in-flight job: a thread
    // spawned here can only ever observe a quiesced (fn == nullptr)
    // previous job before its first real wake-up.
    std::lock_guard<std::mutex> submit(impl_->submit_mutex);
    while (static_cast<int>(threads_.size()) < want) {
        int id = static_cast<int>(threads_.size()) + 1;
        threads_.emplace_back([this, id] { worker_main(id); });
    }
    impl_->pool_size.store(static_cast<int>(threads_.size()),
                           std::memory_order_release);
    return num_threads();
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(impl_->mutex);
        impl_->stop = true;
    }
    impl_->wake.notify_all();
    for (std::thread &t : threads_)
        t.join();
    delete impl_;
}

void
ThreadPool::run_indices(const std::function<void(std::size_t, int)> &fn,
                        int worker)
{
    TaskScope scope;
    for (;;) {
        const std::size_t i = impl_->next.fetch_add(1);
        if (i >= impl_->count)
            return;
        try {
            fn(i, worker);
        } catch (...) {
            impl_->record_error(i, std::current_exception());
        }
    }
}

void
ThreadPool::worker_main(int worker_id)
{
    Impl &im = *impl_;
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t, int)> *fn = nullptr;
        {
            std::unique_lock<std::mutex> lk(im.mutex);
            im.wake.wait(lk, [&] {
                return im.stop || im.generation != seen;
            });
            if (im.stop)
                return;
            seen = im.generation;
            // Not a participant: id beyond this job's cap, or (for a
            // thread spawned after the job finished) a stale, already
            // quiesced generation.
            if (worker_id > im.wanted || im.fn == nullptr)
                continue;
            fn = im.fn;
        }
        run_indices(*fn, worker_id);
        {
            std::lock_guard<std::mutex> lk(im.mutex);
            if (--im.active == 0)
                im.done.notify_all();
        }
    }
}

void
ThreadPool::parallel_for(std::size_t count,
                         const std::function<void(std::size_t, int)> &fn,
                         int max_workers)
{
    if (count == 0)
        return;

    Impl &im = *impl_;
    if (max_workers <= 0)
        max_workers = num_threads() + 1;

    // Inline paths: nested call from inside a task (the guard), a
    // serial request, a single index, or a pool with no threads.
    // (num_threads() is the atomic mirror of threads_.size() — the
    // vector itself may only be read under the submit mutex, since
    // ensure_workers grows it.)
    if (in_task() || max_workers == 1 || count <= 1 ||
        num_threads() == 0) {
        TaskScope scope;
        std::size_t error_index = std::numeric_limits<std::size_t>::max();
        std::exception_ptr error;
        for (std::size_t i = 0; i < count; ++i) {
            try {
                fn(i, 0);
            } catch (...) {
                // Mirror the parallel path: remaining indices still run
                // and the lowest-index exception is rethrown.
                if (i < error_index) {
                    error_index = i;
                    error = std::current_exception();
                }
            }
        }
        if (error)
            std::rethrow_exception(error);
        return;
    }

    std::lock_guard<std::mutex> submit(im.submit_mutex);

    int wanted = max_workers - 1; // caller occupies slot 0
    if (wanted > num_threads())
        wanted = num_threads();
    if (static_cast<std::size_t>(wanted) >= count)
        wanted = static_cast<int>(count - 1);

    {
        std::lock_guard<std::mutex> lk(im.mutex);
        im.fn = &fn;
        im.count = count;
        im.wanted = wanted;
        im.next.store(0);
        im.active = wanted;
        im.error_index = std::numeric_limits<std::size_t>::max();
        im.error = nullptr;
        ++im.generation;
    }
    im.wake.notify_all();

    run_indices(fn, /*worker=*/0);

    {
        std::unique_lock<std::mutex> lk(im.mutex);
        im.done.wait(lk, [&] { return im.active == 0; });
        im.fn = nullptr;
    }

    if (im.error)
        std::rethrow_exception(im.error);
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool(0);
    return pool;
}

bool
ThreadPool::in_task()
{
    return t_in_task;
}

} // namespace nassc
