#ifndef NASSC_SERVICE_FAILPOINT_H
#define NASSC_SERVICE_FAILPOINT_H

/**
 * @file
 * Failpoints: deterministic fault injection for robustness testing.
 *
 * The drain / cancel / retry / shed / degraded paths of the serving
 * stack only trigger under faults — a worker that stalls, a transpile
 * that throws, a peer that disconnects mid-frame — which real hardware
 * produces rarely and never on cue.  A failpoint is a named site
 * compiled into the production code path PERMANENTLY whose behaviour a
 * test (or an operator, via the NASSC_FAILPOINTS environment variable)
 * can arm at runtime:
 *
 *     failpoint::hit("service.transpile");          // sleep/throw site
 *     if (failpoint::eval("service.cache_insert"))  // behaviour site
 *         return;                                    //   (kTrigger)
 *
 * Unarmed cost is ONE relaxed atomic load — no lock, no string hash —
 * so the sites stay in release builds and the tested binary is the
 * shipped binary.
 *
 * Arming uses a tiny spec grammar, via arm() or the env:
 *
 *     <spec>   := [<count>"*"]<action>["("<param>")"]
 *     <action> := trigger | sleep | throw | abort | off
 *
 *  - `trigger`       make eval()/hit() report a hit; the site decides
 *                    what that means (skip an insert, clamp a read).
 *  - `sleep(MS)`     hit() blocks the calling thread for MS ms.
 *  - `throw`         hit() throws std::runtime_error; `throw(MSG)`
 *                    sets the message.
 *  - `abort`         hit() calls std::abort() — hard process death
 *                    (SIGABRT, no unwinding, no drain), distinct from
 *                    `throw` which the serving stack catches and maps
 *                    to a wire error.  This is how shard-crash tests
 *                    kill a worker ON CUE mid-request; `abort(MSG)`
 *                    sets the stderr epitaph.
 *  - `off`           disarm (useful in env lists).
 *  - `N*action`      fire at most N times, then auto-disarm.
 *
 *     NASSC_FAILPOINTS='service.transpile=2*throw(worker fault);'\
 *     'protocol.write.disconnect=1*trigger' nasscd --unix /tmp/s.sock
 *
 * Sites in the tree: scheduler.claim, service.transpile,
 * service.cache_insert, layout.trial, protocol.read.short,
 * protocol.read.eintr, protocol.write.short, protocol.write.disconnect.
 *
 * Thread safety: arm/disarm/eval are safe from any thread (registry
 * mutex); fire counts survive auto-disarm so tests can assert them.
 */

#include <atomic>
#include <cstdint>
#include <string>

namespace nassc {
namespace failpoint {

/** What an armed failpoint tells its site to do. */
struct Hit
{
    enum class Kind {
        kNone,    ///< not armed (or count exhausted)
        kTrigger, ///< site-defined behaviour change
        kSleep,   ///< hit() slept param ms (eval() reports it only)
        kThrow,   ///< hit() throws (eval() reports it only)
        kAbort,   ///< hit() calls std::abort() (eval() reports only)
    };
    Kind kind = Kind::kNone;
    long param = 0;      ///< sleep ms / trigger argument
    std::string message; ///< throw message
    explicit operator bool() const { return kind != Kind::kNone; }
};

namespace detail {
/** Count of armed sites; the unarmed fast path reads only this. */
extern std::atomic<int> g_armed_count;
Hit eval_slow(const char *site);
[[noreturn]] void throw_hit(const char *site, const Hit &hit);
void sleep_hit(const Hit &hit);
[[noreturn]] void abort_hit(const char *site, const Hit &hit);
} // namespace detail

/**
 * Evaluate `site` against the registry: Kind::kNone when unarmed (one
 * relaxed atomic load), otherwise the armed action with its fire count
 * consumed.  Never sleeps or throws — behaviour sites that interpret
 * kTrigger themselves use this.
 */
inline Hit
eval(const char *site)
{
    if (detail::g_armed_count.load(std::memory_order_relaxed) == 0)
        return Hit{};
    return detail::eval_slow(site);
}

/**
 * eval() + centrally execute the action: kSleep blocks for param ms,
 * kThrow throws std::runtime_error("failpoint <site>: <message>"),
 * kAbort prints an epitaph to stderr and calls std::abort();
 * kTrigger/kNone pass through for the site to interpret.
 */
inline Hit
hit(const char *site)
{
    Hit h = eval(site);
    if (h.kind == Hit::Kind::kSleep)
        detail::sleep_hit(h);
    else if (h.kind == Hit::Kind::kThrow)
        detail::throw_hit(site, h);
    else if (h.kind == Hit::Kind::kAbort)
        detail::abort_hit(site, h);
    return h;
}

/**
 * Arm `site` with `spec` (grammar in the file comment), replacing any
 * previous arming.  A spec of "off" disarms instead.
 * @throws std::invalid_argument on a malformed spec.
 */
void arm(const std::string &site, const std::string &spec);

/** Disarm one site; returns whether it was armed. */
bool disarm(const std::string &site);

/** Disarm every site and zero every fire count. */
void disarm_all();

/** Times `site` has fired since the last disarm_all() — fire counts
 *  survive count-exhaustion auto-disarm so tests can assert them. */
std::uint64_t hit_count(const std::string &site);

/**
 * Arm every "site=spec" entry of the ';'-separated list in `env_var`
 * (default NASSC_FAILPOINTS); returns how many sites were armed.
 * @throws std::invalid_argument on a malformed entry, so a typo'd
 * profile fails daemon startup loudly instead of testing nothing.
 */
int arm_from_env(const char *env_var = "NASSC_FAILPOINTS");

/** RAII arming for tests: arms on construction, disarms on scope
 *  exit (even when the site auto-disarmed by count in between). */
struct ScopedFailpoint
{
    ScopedFailpoint(std::string site, const std::string &spec)
        : site_(std::move(site))
    {
        arm(site_, spec);
    }
    ~ScopedFailpoint() { disarm(site_); }
    ScopedFailpoint(const ScopedFailpoint &) = delete;
    ScopedFailpoint &operator=(const ScopedFailpoint &) = delete;

  private:
    std::string site_;
};

} // namespace failpoint
} // namespace nassc

#endif // NASSC_SERVICE_FAILPOINT_H
