#ifndef NASSC_SERVICE_TRANSPILE_SERVICE_H
#define NASSC_SERVICE_TRANSPILE_SERVICE_H

/**
 * @file
 * Async transpilation front-end with request dedup and a result cache.
 *
 * The paper's pipeline makes routing deliberately expensive per circuit
 * (optimization-aware SWAP selection), so a serving deployment must
 * amortize that cost across concurrent, overlapping, and repeated
 * requests.  TranspileService is that amortization layer:
 *
 *  - submit() hands back a Ticket immediately; the transpile itself
 *    runs as a Scheduler job, interleaved with every other request on
 *    the shared workers (see service/scheduler.h).
 *  - Requests are identified by a FINGERPRINT KEY — the triple
 *    (QuantumCircuit::fingerprint(), Backend::cache_key(),
 *    TranspileOptions::fingerprint()) — so identity is structural: two
 *    clients submitting the same circuit/device/options meet the same
 *    key no matter how they built the objects.
 *  - In-flight coalescing: a request whose key is already being
 *    transpiled joins that computation's future instead of starting a
 *    second one — N concurrent identical requests cost ONE transpile.
 *  - A bounded LRU result cache returns completed results immediately.
 *    transpile() is deterministic per key (seeds live in the options,
 *    which are part of the key), so a hit is BIT-IDENTICAL to a fresh
 *    run — only the timing fields (seconds/layout_seconds) still
 *    describe the original computation.  Failures are never cached: a
 *    throwing request propagates its exception to every coalesced
 *    waiter and the next submit retries.
 *
 * Nesting: a submit() issued from inside a scheduler task (e.g. a
 * batch job that consults the service) runs the transpile inline on
 * the issuing thread — dedup and caching still apply, and a saturated
 * pool can never deadlock behind its own queue.
 *
 * Thread safety: every public member is safe to call concurrently.
 * The destructor blocks until all in-flight requests complete, so a
 * Ticket's future never dangles; keep the service alive until every
 * submitter is done.
 */

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "nassc/service/distance_cache.h"
#include "nassc/service/scheduler.h"
#include "nassc/transpile/transpile.h"

namespace nassc {

/** Completed transpiles are shared read-only between coalesced
 *  requesters and the cache. */
using SharedTranspileResult = std::shared_ptr<const TranspileResult>;

/** How a Ticket's result is (being) produced. */
enum class TicketSource {
    kScheduled, ///< owner of a fresh async transpile job
    kInline,    ///< owner, ran synchronously (nested inside a task)
    kCoalesced, ///< joined an in-flight computation for the same key
    kCacheHit,  ///< served complete from the result cache
};

/** Claim check for one submitted request. */
class TranspileTicket
{
  public:
    TranspileTicket() = default;

    bool valid() const { return future_.valid(); }

    /** The request's fingerprint cache key. */
    const std::string &key() const { return key_; }

    TicketSource source() const { return source_; }

    /** Non-blocking completion poll. */
    bool
    ready() const
    {
        return future_.valid() &&
               future_.wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready;
    }

    /**
     * Block for the result; rethrows the transpile's exception on
     * failure.  Safe to call from any thread and repeatedly.
     */
    SharedTranspileResult get() const { return future_.get(); }

  private:
    friend class TranspileService;
    std::string key_;
    TicketSource source_ = TicketSource::kScheduled;
    std::shared_future<SharedTranspileResult> future_;
};

/** Service configuration. */
struct ServiceOptions
{
    /**
     * Result-cache capacity in entries; 0 disables the cache (requests
     * still coalesce while in flight).
     */
    std::size_t cache_capacity = 256;
    /**
     * Concurrent transpiles to provision for: grows the scheduler to at
     * least this many workers (hardware_concurrency under-reports in
     * cgroup-limited containers).  0 = take the pool as it is.
     */
    int num_threads = 0;
    /** Scheduler to run on; null = Scheduler::shared(). */
    std::shared_ptr<Scheduler> scheduler;
    /** Distance-matrix cache shared by all requests; null = a private
     *  cache owned by the service. */
    std::shared_ptr<DistanceCache> distances;
};

/** Monotonic service counters (snapshot). */
struct ServiceStats
{
    std::uint64_t requests = 0;    ///< submit() calls
    std::uint64_t cache_hits = 0;  ///< served complete from the cache
    std::uint64_t coalesced = 0;   ///< joined an in-flight computation
    std::uint64_t misses = 0;      ///< owned a fresh transpile
    std::uint64_t evictions = 0;   ///< LRU entries dropped at capacity
    std::uint64_t transpiles_ok = 0;
    std::uint64_t transpiles_failed = 0;
    std::size_t cache_size = 0; ///< entries resident now
    std::size_t inflight = 0;   ///< keys being transpiled now
};

/** Async transpilation service: scheduler + dedup + LRU result cache. */
class TranspileService
{
  public:
    explicit TranspileService(ServiceOptions options = {});

    /** Blocks until every in-flight request has completed. */
    ~TranspileService();

    TranspileService(const TranspileService &) = delete;
    TranspileService &operator=(const TranspileService &) = delete;

    /**
     * Enqueue one request and return its claim check immediately.
     * `backend` is shared because the transpile runs after submit()
     * returns; it must be non-null.  The circuit is copied into the
     * job.  Never throws on transpile errors — those surface from
     * Ticket::get().
     */
    TranspileTicket submit(const QuantumCircuit &circuit,
                           std::shared_ptr<const Backend> backend,
                           const TranspileOptions &options = {});

    /** Convenience: submit + get. */
    SharedTranspileResult
    transpile_sync(const QuantumCircuit &circuit,
                   std::shared_ptr<const Backend> backend,
                   const TranspileOptions &options = {})
    {
        return submit(circuit, std::move(backend), options).get();
    }

    /** The fingerprint key submit() files `(circuit, backend, options)`
     *  under — exposed for tests and external sharding. */
    static std::string request_key(const QuantumCircuit &circuit,
                                   const Backend &backend,
                                   const TranspileOptions &options);

    ServiceStats stats() const;

    /** Drop every cached result (stats keep accumulating). */
    void clear_cache();

    Scheduler &scheduler() const;

    DistanceCache &distance_cache() const { return *distances_; }

  private:
    struct CacheEntry
    {
        std::string key;
        SharedTranspileResult result;
    };

    /** Run one owned request and settle its promise.  Any thread. */
    void run_request(const std::string &key, const QuantumCircuit &circuit,
                     const Backend &backend, const TranspileOptions &options,
                     const std::shared_ptr<std::promise<SharedTranspileResult>>
                         &promise);

    /** Insert into the LRU cache, evicting at capacity.  Under mu_. */
    void cache_insert(const std::string &key, SharedTranspileResult result);

    ServiceOptions options_;
    std::shared_ptr<Scheduler> scheduler_; ///< null = Scheduler::shared()
    std::shared_ptr<DistanceCache> distances_;

    mutable std::mutex mu_;
    std::condition_variable drained_;
    std::size_t inflight_count_ = 0; ///< submitted, promise not yet settled
    /** In-flight computations by key, joined by coalescing requests. */
    std::unordered_map<std::string,
                       std::shared_future<SharedTranspileResult>>
        inflight_;
    /** LRU list, most recent first, + index into it. */
    std::list<CacheEntry> lru_;
    std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache_;
    ServiceStats stats_;
};

} // namespace nassc

#endif // NASSC_SERVICE_TRANSPILE_SERVICE_H
