#ifndef NASSC_SERVICE_TRANSPILE_SERVICE_H
#define NASSC_SERVICE_TRANSPILE_SERVICE_H

/**
 * @file
 * Async transpilation front-end with request dedup and a result cache.
 *
 * The paper's pipeline makes routing deliberately expensive per circuit
 * (optimization-aware SWAP selection), so a serving deployment must
 * amortize that cost across concurrent, overlapping, and repeated
 * requests.  TranspileService is that amortization layer:
 *
 *  - submit() hands back a Ticket immediately; the transpile itself
 *    runs as a Scheduler job at the request's options.priority,
 *    interleaved with every other request on the shared workers (see
 *    service/scheduler.h).  submit_qasm() is the same path with
 *    OpenQASM 2.0 text as the wire format — the API the nasscd daemon
 *    serves (serve/server.h), usable in-process too.
 *  - Requests are identified by a FINGERPRINT KEY — the triple
 *    (QuantumCircuit::fingerprint(), Backend::cache_key(),
 *    TranspileOptions::fingerprint()) — so identity is structural: two
 *    clients submitting the same circuit/device/options meet the same
 *    key no matter how they built the objects (or whether they arrived
 *    as objects or QASM text).
 *  - In-flight coalescing: a request whose key is already being
 *    transpiled joins that computation's future instead of starting a
 *    second one — N concurrent identical requests cost ONE transpile.
 *  - The result cache is LRU and DOUBLY bounded: by entry count
 *    (cache_capacity) and by resident bytes (cache_max_bytes), where an
 *    entry costs its routed circuit's actual byte footprint
 *    (QuantumCircuit::memory_bytes) — a burst of wide circuits cannot
 *    blow the memory budget that a thousand tiny ones fit in.
 *  - Invalidation is EAGER, not just key rotation.  The key already
 *    rotates with Backend::cache_key(), but stale entries used to
 *    linger until LRU eviction; now the service tracks the last seen
 *    cache_key per backend NAME and drops every entry of a rotated
 *    generation the moment the new calibration is first seen
 *    (invalidate_backend() does it explicitly).  Entries also carry a
 *    TTL (per-request options.cache_ttl_seconds, else
 *    default_ttl_seconds) and expire lazily on lookup or via
 *    purge_expired().  Capacity and invalidation evictions are counted
 *    separately in ServiceStats.
 *  - transpile() is deterministic per key (seeds live in the options,
 *    which are part of the key), so a hit is BIT-IDENTICAL to a fresh
 *    run — only the timing fields (seconds/layout_seconds) still
 *    describe the original computation.  Failures are never cached: a
 *    throwing request propagates its exception to every coalesced
 *    waiter and the next submit retries.
 *  - try_cancel() abandons a request nobody else is waiting on, if no
 *    worker has started it (the daemon calls it when a client
 *    disconnects mid-queue); the ticket's get() then throws
 *    TranspileCancelled.
 *
 * Nesting: a submit() issued from inside a scheduler task (e.g. a
 * batch job that consults the service) runs the transpile inline on
 * the issuing thread — dedup and caching still apply, and a saturated
 * pool can never deadlock behind its own queue.
 *
 * Thread safety: every public member is safe to call concurrently.
 * The destructor blocks until all in-flight requests complete, so a
 * Ticket's future never dangles; keep the service alive until every
 * submitter is done.
 */

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "nassc/service/distance_cache.h"
#include "nassc/service/errors.h"
#include "nassc/service/scheduler.h"
#include "nassc/transpile/transpile.h"

namespace nassc {

/** Completed transpiles are shared read-only between coalesced
 *  requesters and the cache. */
using SharedTranspileResult = std::shared_ptr<const TranspileResult>;

/** Thrown from Ticket::get() when try_cancel() abandoned the request. */
class TranspileCancelled : public std::runtime_error
{
  public:
    TranspileCancelled() : std::runtime_error("transpile request cancelled")
    {
    }
};

/** How a Ticket's result is (being) produced. */
enum class TicketSource {
    kScheduled, ///< owner of a fresh async transpile job
    kInline,    ///< owner, ran synchronously (nested inside a task)
    kCoalesced, ///< joined an in-flight computation for the same key
    kCacheHit,  ///< served complete from the result cache
};

/** Claim check for one submitted request. */
class TranspileTicket
{
  public:
    TranspileTicket() = default;

    bool valid() const { return future_.valid(); }

    /** The request's fingerprint cache key. */
    const std::string &key() const { return key_; }

    TicketSource source() const { return source_; }

    /** Non-blocking completion poll. */
    bool
    ready() const
    {
        return future_.valid() &&
               future_.wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready;
    }

    /**
     * Block for the result; rethrows the transpile's exception on
     * failure (TranspileCancelled after a successful try_cancel).
     * A COALESCED ticket whose request carried deadline_ms waits at
     * most until that deadline and then throws
     * TranspileDeadlineExceeded — the computation it joined belongs to
     * another request and may legitimately outlive this one's budget.
     * (Owner tickets wait for settlement: their deadline is enforced
     * cooperatively inside the computation, which degrades or throws.)
     * Safe to call from any thread and repeatedly.
     */
    SharedTranspileResult get() const;

    /** True when this is a deadline'd coalesced ticket whose wait
     *  budget has already passed — get() would throw immediately. */
    bool deadline_expired() const;

    /** Block for the result and serialize the routed circuit as
     *  OpenQASM 2.0 — the wire-format counterpart of get(). */
    std::string get_qasm() const;

  private:
    friend class TranspileService;
    std::string key_;
    TicketSource source_ = TicketSource::kScheduled;
    std::shared_future<SharedTranspileResult> future_;
    /** Wait bound for coalesced tickets; max() = none. */
    std::chrono::steady_clock::time_point deadline_ =
        std::chrono::steady_clock::time_point::max();
};

/** Service configuration. */
struct ServiceOptions
{
    /**
     * Result-cache capacity in entries; 0 disables the cache (requests
     * still coalesce while in flight).
     */
    std::size_t cache_capacity = 256;
    /**
     * Result-cache budget in resident bytes (key + routed-circuit
     * footprint per entry); LRU entries are evicted until the total
     * fits.  0 = no byte bound.  An entry larger than the whole budget
     * is served but never cached.
     */
    std::size_t cache_max_bytes = 64u << 20;
    /**
     * Age after which a cached entry is invalid, in seconds, for
     * requests that do not set options.cache_ttl_seconds themselves.
     * 0 = entries never expire by age.
     */
    double default_ttl_seconds = 0.0;
    /**
     * Concurrent transpiles to provision for: grows the scheduler to at
     * least this many workers (hardware_concurrency under-reports in
     * cgroup-limited containers).  0 = take the pool as it is.
     */
    int num_threads = 0;
    /**
     * Admission control: maximum requests queued (submitted but not yet
     * claimed by a worker or settled).  A miss past the cap throws
     * TranspileOverloaded from submit() instead of queueing — cache
     * hits, coalesced joins, and inline (nested) runs are never shed,
     * since none of them add queue depth.  0 = unbounded.
     */
    std::size_t max_queued = 0;
    /** Scheduler to run on; null = Scheduler::shared(). */
    std::shared_ptr<Scheduler> scheduler;
    /** Distance-matrix cache shared by all requests; null = a private
     *  cache owned by the service. */
    std::shared_ptr<DistanceCache> distances;
};

/** Monotonic service counters (snapshot). */
struct ServiceStats
{
    std::uint64_t requests = 0;   ///< submit() calls
    std::uint64_t cache_hits = 0; ///< served complete from the cache
    std::uint64_t coalesced = 0;  ///< joined an in-flight computation
    std::uint64_t misses = 0;     ///< owned a fresh transpile
    /** LRU entries dropped to fit the entry or byte capacity. */
    std::uint64_t evictions_capacity = 0;
    /** Entries dropped because they became INVALID: backend-generation
     *  rotation (eager or explicit) or TTL expiry — never because of
     *  space pressure. */
    std::uint64_t evictions_invalidated = 0;
    /** Requests abandoned by try_cancel() before any worker started. */
    std::uint64_t cancelled = 0;
    /** Misses shed by admission control (ServiceOptions::max_queued). */
    std::uint64_t shed = 0;
    /** Requests settled with TranspileDeadlineExceeded (no trial
     *  completed in budget).  Degraded successes count as ok. */
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t transpiles_ok = 0;
    /** Transpiles that threw anything OTHER than a deadline miss. */
    std::uint64_t transpiles_failed = 0;
    std::size_t cache_size = 0;  ///< entries resident now
    std::size_t cache_bytes = 0; ///< resident entry cost now, in bytes
    std::size_t inflight = 0;    ///< keys being transpiled now
};

/** Async transpilation service: scheduler + dedup + bounded cache. */
class TranspileService
{
  public:
    explicit TranspileService(ServiceOptions options = {});

    /** Blocks until every in-flight request has completed. */
    ~TranspileService();

    TranspileService(const TranspileService &) = delete;
    TranspileService &operator=(const TranspileService &) = delete;

    /**
     * Enqueue one request and return its claim check immediately.
     * `backend` is shared because the transpile runs after submit()
     * returns; it must be non-null.  The circuit is copied into the
     * job.  Never throws on transpile errors — those surface from
     * Ticket::get().
     */
    TranspileTicket submit(const QuantumCircuit &circuit,
                           std::shared_ptr<const Backend> backend,
                           const TranspileOptions &options = {});

    /**
     * Wire-format submit: parse `qasm` (OpenQASM 2.0) ONCE, fingerprint
     * the parsed circuit, and file the request under exactly the key
     * submit() would use — QASM and object submissions of the same
     * circuit dedupe against each other.  Parse errors throw here
     * (std::runtime_error), before anything is enqueued.  The ticket's
     * get_qasm() yields the routed circuit as OpenQASM 2.0.
     */
    TranspileTicket submit_qasm(const std::string &qasm,
                                std::shared_ptr<const Backend> backend,
                                const TranspileOptions &options = {});

    /** Convenience: submit + get. */
    SharedTranspileResult
    transpile_sync(const QuantumCircuit &circuit,
                   std::shared_ptr<const Backend> backend,
                   const TranspileOptions &options = {})
    {
        return submit(circuit, std::move(backend), options).get();
    }

    /**
     * Abandon `ticket`'s request if (a) it owns a scheduled transpile,
     * (b) no other submit coalesced onto it, and (c) no worker has
     * started it.  On success the job never runs, the ticket's get()
     * throws TranspileCancelled, and stats.cancelled increments.
     * Returns false — and the request proceeds normally — otherwise.
     */
    bool try_cancel(const TranspileTicket &ticket);

    /**
     * Drop every cached entry whose backend NAME matches — the explicit
     * form of the rotation sweep that submit() performs automatically
     * when it first sees a backend name under a new cache_key().
     * Returns the number of entries dropped (counted as invalidation
     * evictions).
     */
    std::size_t invalidate_backend(const std::string &backend_name);

    /** Drop every TTL-expired entry now; returns how many. */
    std::size_t purge_expired();

    /** The fingerprint key submit() files `(circuit, backend, options)`
     *  under — exposed for tests and external sharding.  deadline_ms is
     *  zeroed before fingerprinting: a deadline is per-request QoS, not
     *  result identity, so deadline'd and deadline-free submissions of
     *  one circuit coalesce and share cache entries. */
    static std::string request_key(const QuantumCircuit &circuit,
                                   const Backend &backend,
                                   const TranspileOptions &options);

    ServiceStats stats() const;

    /** Drop every cached result (stats keep accumulating; not counted
     *  as evictions of either kind). */
    void clear_cache();

    Scheduler &scheduler() const;

    DistanceCache &distance_cache() const { return *distances_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct CacheEntry
    {
        std::string key;
        SharedTranspileResult result;
        std::size_t bytes = 0;       ///< cost charged against the budget
        std::string backend_name;    ///< for generation sweeps
        std::string backend_key;     ///< cache_key() at insert time
        Clock::time_point expiry;    ///< time_point::max() = no TTL
    };

    /** In-flight computation, joined by coalescing requests. */
    struct Inflight
    {
        std::shared_future<SharedTranspileResult> future;
        std::shared_ptr<std::promise<SharedTranspileResult>> promise;
        Scheduler::JobHandle handle; ///< unbound for inline runs
        std::size_t waiters = 1;     ///< owner + coalesced tickets
    };

    /** Run one owned request and settle its promise.  Any thread.
     *  `deadline` is the request's absolute budget (max() = none);
     *  `submitted` is when submit() accepted it (queue-wait metric);
     *  `dequeue` says whether this request was counted in queued_. */
    void run_request(const std::string &key, const QuantumCircuit &circuit,
                     const Backend &backend, const TranspileOptions &options,
                     const std::shared_ptr<std::promise<SharedTranspileResult>>
                         &promise,
                     Clock::time_point deadline, Clock::time_point submitted,
                     bool dequeue);

    /** Insert into the cache, evicting to fit both bounds.  Under mu_. */
    void cache_insert(const std::string &key, SharedTranspileResult result,
                      const Backend &backend,
                      const TranspileOptions &options);

    /** Erase one entry by its LRU iterator.  Under mu_. */
    std::list<CacheEntry>::iterator
    cache_erase(std::list<CacheEntry>::iterator it);

    /** Record `backend`'s current generation; if its name was last seen
     *  under a DIFFERENT cache_key, sweep that stale generation.  Under
     *  mu_.  Returns entries dropped. */
    std::size_t note_backend_generation(const Backend &backend);

    /** TTL deadline for an entry inserted now under `options`. */
    Clock::time_point entry_expiry(const TranspileOptions &options) const;

    ServiceOptions options_;
    std::shared_ptr<Scheduler> scheduler_; ///< null = Scheduler::shared()
    std::shared_ptr<DistanceCache> distances_;

    mutable std::mutex mu_;
    std::condition_variable drained_;
    std::size_t inflight_count_ = 0; ///< submitted, promise not yet settled
    /** Scheduled misses not yet claimed-or-settled, for max_queued. */
    std::size_t queued_ = 0;
    std::unordered_map<std::string, Inflight> inflight_;
    /** LRU list, most recent first, + index into it. */
    std::list<CacheEntry> lru_;
    std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache_;
    std::size_t cache_bytes_ = 0;
    /** Last cache_key() seen per backend name (generation tracking). */
    std::unordered_map<std::string, std::string> generation_;
    ServiceStats stats_;
};

} // namespace nassc

#endif // NASSC_SERVICE_TRANSPILE_SERVICE_H
