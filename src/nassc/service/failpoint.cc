#include "nassc/service/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

namespace nassc {
namespace failpoint {

namespace detail {

std::atomic<int> g_armed_count{0};

namespace {

/** One armed site: the action plus its remaining fire budget. */
struct Entry
{
    Hit::Kind kind = Hit::Kind::kNone;
    long param = 0;
    std::string message;
    long remaining = -1; ///< fires left; -1 = unlimited
};

struct Registry
{
    std::mutex mu;
    std::unordered_map<std::string, Entry> armed;
    /** Total fires per site; survives auto-disarm, reset by
     *  disarm_all() only. */
    std::unordered_map<std::string, std::uint64_t> counts;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/** Parse "[count*]action[(param)]"; throws std::invalid_argument. */
Entry
parse_spec(const std::string &site, const std::string &spec)
{
    auto bad = [&](const std::string &why) -> Entry {
        throw std::invalid_argument("failpoint " + site + ": " + why +
                                    " in spec '" + spec + "'");
    };

    std::string body = spec;
    Entry entry;
    const std::size_t star = body.find('*');
    if (star != std::string::npos) {
        const std::string count = body.substr(0, star);
        if (count.empty() ||
            count.find_first_not_of("0123456789") != std::string::npos)
            return bad("bad fire count '" + count + "'");
        entry.remaining = std::atol(count.c_str());
        if (entry.remaining <= 0)
            return bad("fire count must be positive");
        body = body.substr(star + 1);
    }

    std::string arg;
    const std::size_t paren = body.find('(');
    if (paren != std::string::npos) {
        if (body.back() != ')')
            return bad("unterminated '('");
        arg = body.substr(paren + 1, body.size() - paren - 2);
        body = body.substr(0, paren);
    }

    if (body == "trigger") {
        entry.kind = Hit::Kind::kTrigger;
        if (!arg.empty())
            entry.param = std::atol(arg.c_str());
    } else if (body == "sleep") {
        entry.kind = Hit::Kind::kSleep;
        if (arg.empty() ||
            arg.find_first_not_of("0123456789") != std::string::npos)
            return bad("sleep wants a millisecond count");
        entry.param = std::atol(arg.c_str());
    } else if (body == "throw") {
        entry.kind = Hit::Kind::kThrow;
        entry.message = arg.empty() ? "injected fault" : arg;
    } else if (body == "abort") {
        entry.kind = Hit::Kind::kAbort;
        entry.message = arg.empty() ? "injected crash" : arg;
    } else if (body == "off") {
        entry.kind = Hit::Kind::kNone;
    } else {
        return bad("unknown action '" + body + "'");
    }
    return entry;
}

} // namespace

Hit
eval_slow(const char *site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    auto it = r.armed.find(site);
    if (it == r.armed.end())
        return Hit{};
    Entry &entry = it->second;
    Hit hit;
    hit.kind = entry.kind;
    hit.param = entry.param;
    hit.message = entry.message;
    ++r.counts[site];
    if (entry.remaining > 0 && --entry.remaining == 0) {
        r.armed.erase(it);
        g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    return hit;
}

void
throw_hit(const char *site, const Hit &hit)
{
    throw std::runtime_error("failpoint " + std::string(site) + ": " +
                             hit.message);
}

void
sleep_hit(const Hit &hit)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(hit.param));
}

void
abort_hit(const char *site, const Hit &hit)
{
    // stderr, not stdout: the epitaph must survive the SIGABRT that
    // follows, so no buffered stream the abort could truncate.
    std::fprintf(stderr, "failpoint %s: %s (aborting)\n", site,
                 hit.message.c_str());
    std::fflush(stderr);
    std::abort();
}

} // namespace detail

void
arm(const std::string &site, const std::string &spec)
{
    using detail::g_armed_count;
    detail::Entry entry = detail::parse_spec(site, spec);
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lk(r.mu);
    auto it = r.armed.find(site);
    if (entry.kind == Hit::Kind::kNone) {
        if (it != r.armed.end()) {
            r.armed.erase(it);
            g_armed_count.fetch_sub(1, std::memory_order_relaxed);
        }
        return;
    }
    if (it == r.armed.end()) {
        r.armed.emplace(site, std::move(entry));
        g_armed_count.fetch_add(1, std::memory_order_relaxed);
    } else {
        it->second = std::move(entry);
    }
}

bool
disarm(const std::string &site)
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lk(r.mu);
    if (r.armed.erase(site) == 0)
        return false;
    detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    return true;
}

void
disarm_all()
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lk(r.mu);
    detail::g_armed_count.fetch_sub(static_cast<int>(r.armed.size()),
                                    std::memory_order_relaxed);
    r.armed.clear();
    r.counts.clear();
}

std::uint64_t
hit_count(const std::string &site)
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lk(r.mu);
    auto it = r.counts.find(site);
    return it == r.counts.end() ? 0 : it->second;
}

int
arm_from_env(const char *env_var)
{
    const char *raw = std::getenv(env_var);
    if (!raw || !*raw)
        return 0;
    const std::string list = raw;
    int armed = 0;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t end = list.find(';', pos);
        if (end == std::string::npos)
            end = list.size();
        std::string item = list.substr(pos, end - pos);
        pos = end + 1;
        // Trim ASCII whitespace so multi-line shell quoting works.
        const std::size_t b = item.find_first_not_of(" \t\r\n");
        if (b == std::string::npos)
            continue;
        const std::size_t e = item.find_last_not_of(" \t\r\n");
        item = item.substr(b, e - b + 1);
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            throw std::invalid_argument(std::string(env_var) +
                                        ": expected site=spec, got '" +
                                        item + "'");
        arm(item.substr(0, eq), item.substr(eq + 1));
        ++armed;
    }
    return armed;
}

} // namespace failpoint
} // namespace nassc
