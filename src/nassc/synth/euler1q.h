#ifndef NASSC_SYNTH_EULER1Q_H
#define NASSC_SYNTH_EULER1Q_H

/**
 * @file
 * One-qubit gate synthesis and run-merging.
 *
 * Implements the role of Qiskit's Optimize1qGates: collapse an arbitrary
 * 2x2 unitary into either a single `u` gate or a minimal sequence over the
 * IBM basis {rz, sx, x} using the ZSXZSX identity
 *
 *   u(theta, phi, lam) ~ rz(phi + pi) . sx . rz(theta + pi) . sx . rz(lam)
 *
 * (matrix order; global phase dropped), with cheaper forms when theta is
 * 0, pi/2 or pi.
 */

#include <vector>

#include "nassc/ir/gate.h"
#include "nassc/math/complex_mat.h"

namespace nassc {

/** Target basis for 1-qubit synthesis. */
enum class Basis1q {
    kUGate, ///< single u(theta, phi, lambda) gate
    kZsx,   ///< rz / sx / x sequence (IBM basis)
};

/**
 * Synthesize the unitary `u` on qubit `q`.
 *
 * Returns an empty vector when u is the identity up to global phase.
 */
std::vector<Gate> synth_1q(const Mat2 &u, int q, Basis1q basis,
                           double tol = 1e-10);

/**
 * Merge every maximal run of adjacent one-qubit gates (per wire) in the
 * gate list and re-synthesize each run in the requested basis.  Non-1q
 * gates act as barriers on their wires.  Returns the number of gates
 * removed (negative if the list grew).
 */
int optimize_1q_runs(std::vector<Gate> &gates, int num_qubits, Basis1q basis,
                     double tol = 1e-10);

} // namespace nassc

#endif // NASSC_SYNTH_EULER1Q_H
