#include "nassc/synth/kak2q.h"

#include <cmath>
#include <stdexcept>

#include "nassc/ir/matrices.h"
#include "nassc/math/weyl.h"

namespace nassc {

namespace {

const double kPi = M_PI;
const double kPi2 = M_PI / 2.0;

/**
 * Append the circuit for N(pi/4, 0, 0) = e^{i pi/4 XX} on (q0, q1):
 *   (H(x)H) . (Rz(-pi/2)(x)Rz(-pi/2)) . CZ . (H(x)H)   [matrix order]
 * with CZ = (I(x)H) CX (I(x)H).  Exactly one CX.
 */
void
emit_quarter_xx(int q0, int q1, bool dagger, std::vector<Gate> &out)
{
    if (!dagger) {
        out.push_back(Gate::one_q(OpKind::kH, q0));
        out.push_back(Gate::two_q(OpKind::kCX, q0, q1));
        out.push_back(Gate::one_q(OpKind::kH, q1));
        out.push_back(Gate::one_q(OpKind::kRZ, q0, -kPi2));
        out.push_back(Gate::one_q(OpKind::kRZ, q1, -kPi2));
        out.push_back(Gate::one_q(OpKind::kH, q0));
        out.push_back(Gate::one_q(OpKind::kH, q1));
    } else {
        // Adjoint: reverse order, inverted gates.
        out.push_back(Gate::one_q(OpKind::kH, q0));
        out.push_back(Gate::one_q(OpKind::kH, q1));
        out.push_back(Gate::one_q(OpKind::kRZ, q0, kPi2));
        out.push_back(Gate::one_q(OpKind::kRZ, q1, kPi2));
        out.push_back(Gate::one_q(OpKind::kH, q1));
        out.push_back(Gate::two_q(OpKind::kCX, q0, q1));
        out.push_back(Gate::one_q(OpKind::kH, q0));
    }
}

/** Append the canonical-gate circuit for chamber coordinates (a, b, c). */
void
emit_canonical(double a, double b, double c, int q0, int q1, double tol,
               std::vector<Gate> &out)
{
    int cost = cnot_cost_coords(a, b, c, tol);
    switch (cost) {
      case 0:
        return;
      case 1:
        emit_quarter_xx(q0, q1, /*dagger=*/false, out);
        return;
      case 2:
        // N(a, b, 0) = (V^dag (x) V^dag) CX (Rx(-2a)(x)Rz(-2b)) CX (V(x)V)
        // with V = Rx(pi/2).  Circuit order is right-to-left.
        out.push_back(Gate::one_q(OpKind::kRX, q0, kPi2));
        out.push_back(Gate::one_q(OpKind::kRX, q1, kPi2));
        out.push_back(Gate::two_q(OpKind::kCX, q0, q1));
        out.push_back(Gate::one_q(OpKind::kRX, q0, -2.0 * a));
        out.push_back(Gate::one_q(OpKind::kRZ, q1, -2.0 * b));
        out.push_back(Gate::two_q(OpKind::kCX, q0, q1));
        out.push_back(Gate::one_q(OpKind::kRX, q0, -kPi2));
        out.push_back(Gate::one_q(OpKind::kRX, q1, -kPi2));
        return;
      case 3:
        // N(a,b,c) = (V^dag(x)V^dag) CX (Rx(-2a)(x)Rz(-2b))
        //            e^{-i pi/4 XX} (Rx(pi/2) on q1) (Rz(-2c) on q1) CX
        out.push_back(Gate::two_q(OpKind::kCX, q0, q1));
        out.push_back(Gate::one_q(OpKind::kRZ, q1, -2.0 * c));
        out.push_back(Gate::one_q(OpKind::kRX, q1, kPi2));
        emit_quarter_xx(q0, q1, /*dagger=*/true, out);
        out.push_back(Gate::one_q(OpKind::kRX, q0, -2.0 * a));
        out.push_back(Gate::one_q(OpKind::kRZ, q1, -2.0 * b));
        out.push_back(Gate::two_q(OpKind::kCX, q0, q1));
        out.push_back(Gate::one_q(OpKind::kRX, q0, -kPi2));
        out.push_back(Gate::one_q(OpKind::kRX, q1, -kPi2));
        return;
      default:
        throw std::logic_error("unreachable canonical cost");
    }
}

} // namespace

std::vector<Gate>
synth_2q_kak(const Mat4 &u, int q0, int q1, Basis1q basis)
{
    Kak k = kak_decompose(u);
    canonicalize(k);

    std::vector<Gate> out;
    // Right locals first (circuit order).
    for (Gate &g : synth_1q(k.k2_0, q0, basis))
        out.push_back(std::move(g));
    for (Gate &g : synth_1q(k.k2_1, q1, basis))
        out.push_back(std::move(g));
    emit_canonical(k.a, k.b, k.c, q0, q1, 1e-9, out);
    for (Gate &g : synth_1q(k.k1_0, q0, basis))
        out.push_back(std::move(g));
    for (Gate &g : synth_1q(k.k1_1, q1, basis))
        out.push_back(std::move(g));

    // Merge the 1q layers the template introduced with the KAK locals.
    int nq = std::max(q0, q1) + 1;
    optimize_1q_runs(out, nq, basis);
    return out;
}

void
accumulate_2q_gate(Mat4 &u, const Gate &g, int q0, int q1)
{
    if (g.num_qubits() == 1) {
        Mat2 m = gate_matrix1(g);
        if (g.qubits[0] == q0)
            u = mul(tensor2(m, Mat2::identity()), u);
        else if (g.qubits[0] == q1)
            u = mul(tensor2(Mat2::identity(), m), u);
        else
            throw std::invalid_argument("gate outside the (q0, q1) pair");
        return;
    }
    if (g.num_qubits() != 2 || !is_unitary_op(g.kind))
        throw std::invalid_argument("not a unitary 1q/2q gate");
    Mat4 m = gate_matrix2(g);
    if (g.qubits[0] == q0 && g.qubits[1] == q1) {
        u = mul(m, u);
    } else if (g.qubits[0] == q1 && g.qubits[1] == q0) {
        Mat4 sw = swap_mat();
        u = mul(mul(sw, mul(m, sw)), u);
    } else {
        throw std::invalid_argument("gate outside the (q0, q1) pair");
    }
}

Mat4
unitary_of_2q_gates(const std::vector<Gate> &gates, int q0, int q1)
{
    Mat4 u = Mat4::identity();
    for (const Gate &g : gates)
        accumulate_2q_gate(u, g, q0, q1);
    return u;
}

} // namespace nassc
