#ifndef NASSC_SYNTH_KAK2Q_H
#define NASSC_SYNTH_KAK2Q_H

/**
 * @file
 * Exact two-qubit unitary synthesis with the minimal number of CNOTs.
 *
 * This is the engine behind two-qubit block resynthesis (Qiskit's
 * Collect2qBlocks + UnitarySynthesis): the KAK decomposition provides
 * chamber coordinates (a, b, c); the circuit is then assembled from one of
 * four templates
 *
 *   0 CX:  local gates only
 *   1 CX:  N(pi/4, 0, 0) = (H(x)H) e^{i pi/4 ZZ} (H(x)H)
 *   2 CX:  N(a, b, 0) = (V+(x)V+) CX (Rx(-2a)(x)Rz(-2b)) CX (V(x)V),
 *          V = Rx(pi/2)
 *   3 CX:  N(a, b, c) = N(a, b, 0) . N(0, 0, c) with the middle pair of
 *          CNOTs fused through CX (Rx(pi/2)(x)Rx(pi/2)) CX =
 *          e^{-i pi/4 XX} (Rx(pi/2) on the target)
 *
 * [Vidal & Dawson '04; Vatan & Williams '04].  All templates are verified
 * by the test suite against the matrix exponential.
 */

#include <vector>

#include "nassc/ir/gate.h"
#include "nassc/math/complex_mat.h"
#include "nassc/synth/euler1q.h"

namespace nassc {

/**
 * Synthesize the 4x4 unitary `u` over qubits (q0, q1) — q0 is basis bit 0
 * — using the minimal number of CNOTs.  One-qubit gates are emitted in
 * the requested basis; global phase is dropped.
 */
std::vector<Gate> synth_2q_kak(const Mat4 &u, int q0, int q1,
                               Basis1q basis = Basis1q::kUGate);

/**
 * The 4x4 unitary of a gate list over the qubit pair (q0, q1), up to
 * global phase contributions of each gate.  Every gate must act only on
 * q0 and/or q1.  Used for block consolidation and by the NASSC C2q cost.
 */
Mat4 unitary_of_2q_gates(const std::vector<Gate> &gates, int q0, int q1);

/** Accumulate one more gate into a running 4x4 block unitary. */
void accumulate_2q_gate(Mat4 &u, const Gate &g, int q0, int q1);

} // namespace nassc

#endif // NASSC_SYNTH_KAK2Q_H
