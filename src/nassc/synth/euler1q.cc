#include "nassc/synth/euler1q.h"

#include <cmath>

#include "nassc/ir/matrices.h"
#include "nassc/math/su2.h"

namespace nassc {

namespace {

/** Normalize an angle into (-pi, pi]. */
double
norm_angle(double a)
{
    a = std::fmod(a, 2.0 * M_PI);
    if (a <= -M_PI)
        a += 2.0 * M_PI;
    if (a > M_PI)
        a -= 2.0 * M_PI;
    return a;
}

bool
is_zero_angle(double a, double tol)
{
    return std::abs(norm_angle(a)) < tol;
}

void
emit_rz(std::vector<Gate> &out, int q, double angle, double tol)
{
    angle = norm_angle(angle);
    if (std::abs(angle) >= tol)
        out.push_back(Gate::one_q(OpKind::kRZ, q, angle));
}

} // namespace

std::vector<Gate>
synth_1q(const Mat2 &u, int q, Basis1q basis, double tol)
{
    EulerZyz e = euler_zyz(u);
    std::vector<Gate> out;

    if (basis == Basis1q::kUGate) {
        if (e.theta < tol && is_zero_angle(e.phi + e.lam, tol))
            return out;
        out.push_back(Gate::u(q, e.theta, e.phi, e.lam));
        return out;
    }

    // ZSX basis.  euler_zyz returns theta in [0, pi].
    if (e.theta < tol) {
        emit_rz(out, q, e.phi + e.lam, tol);
        return out;
    }
    if (std::abs(e.theta - M_PI) < tol) {
        // u(pi, phi, lam) ~ x . rz(lam - phi + pi)   (circuit order)
        emit_rz(out, q, e.lam - e.phi + M_PI, tol);
        out.push_back(Gate::one_q(OpKind::kX, q));
        return out;
    }
    if (std::abs(e.theta - M_PI / 2.0) < tol) {
        // u(pi/2, phi, lam) ~ rz(phi + pi/2) . sx . rz(lam - pi/2)
        emit_rz(out, q, e.lam - M_PI / 2.0, tol);
        out.push_back(Gate::one_q(OpKind::kSX, q));
        emit_rz(out, q, e.phi + M_PI / 2.0, tol);
        return out;
    }
    // Generic: rz(phi+pi) . sx . rz(theta+pi) . sx . rz(lam)
    emit_rz(out, q, e.lam, tol);
    out.push_back(Gate::one_q(OpKind::kSX, q));
    emit_rz(out, q, e.theta + M_PI, tol);
    out.push_back(Gate::one_q(OpKind::kSX, q));
    emit_rz(out, q, e.phi + M_PI, tol);
    return out;
}

int
optimize_1q_runs(std::vector<Gate> &gates, int num_qubits, Basis1q basis,
                 double tol)
{
    std::vector<Gate> out;
    out.reserve(gates.size());

    // Pending accumulated unitary per wire; identity when inactive.
    std::vector<Mat2> pending(num_qubits, Mat2::identity());
    std::vector<bool> active(num_qubits, false);
    int before = static_cast<int>(gates.size());

    auto flush = [&](int q) {
        if (!active[q])
            return;
        std::vector<Gate> synth = synth_1q(pending[q], q, basis, tol);
        for (Gate &g : synth)
            out.push_back(std::move(g));
        pending[q] = Mat2::identity();
        active[q] = false;
    };

    for (Gate &g : gates) {
        if (is_one_qubit(g.kind)) {
            int q = g.qubits[0];
            pending[q] = mul(gate_matrix1(g), pending[q]);
            active[q] = true;
            continue;
        }
        for (int q : g.qubits)
            flush(q);
        out.push_back(std::move(g));
    }
    for (int q = 0; q < num_qubits; ++q)
        flush(q);

    int removed = before - static_cast<int>(out.size());
    gates = std::move(out);
    return removed;
}

} // namespace nassc
