#ifndef NASSC_SYNTH_MCT_H
#define NASSC_SYNTH_MCT_H

/**
 * @file
 * Multi-controlled-X (Toffoli cascade) decompositions.
 *
 * Three strategies, chosen automatically by ancilla availability:
 *   - dirty-ancilla V-chain (Barenco et al. Lemma 7.2): 4(k-2) Toffolis
 *     when at least k-2 qubits outside the gate are available;
 *   - recursive halving (Barenco Lemma 7.3): two half-size MCXs applied
 *     twice through one borrowed qubit;
 *   - ancilla-free multi-controlled phase recursion as a last resort
 *     (C^k X = H . C^k Z . H with C^k Z built from CP + half-size MCX).
 *
 * All outputs use only {x, cx, ccx, p, cp, h}; CCX gates are expanded by
 * the basis-translation pass.
 */

#include <vector>

#include "nassc/ir/gate.h"

namespace nassc {

/** Textbook 6-CNOT Toffoli decomposition (circuit order). */
std::vector<Gate> decompose_ccx(int c0, int c1, int t);

/** CCZ via CCX conjugated with Hadamards on the target. */
std::vector<Gate> decompose_ccz(int c0, int c1, int t);

/** Fredkin gate via CCX conjugated with CNOTs. */
std::vector<Gate> decompose_cswap(int c, int a, int b);

/**
 * Decompose a multi-controlled X over a register of `num_qubits` qubits.
 * Qubits outside controls+target are borrowed as dirty ancillas when
 * needed; they are always restored.
 */
std::vector<Gate> decompose_mcx(const std::vector<int> &controls, int target,
                                int num_qubits);

/**
 * Multi-controlled phase gate: applies phase e^{i lambda} when all
 * controls and the target are 1.  Ancilla-free (recursive CP + MCX).
 */
std::vector<Gate> decompose_mcp(double lambda, const std::vector<int> &controls,
                                int target, int num_qubits);

} // namespace nassc

#endif // NASSC_SYNTH_MCT_H
