#include "nassc/synth/mct.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nassc {

namespace {

/** Qubits in [0, num_qubits) not used by the gate, ascending. */
std::vector<int>
free_qubits(const std::vector<int> &controls, int target, int num_qubits)
{
    std::vector<bool> used(num_qubits, false);
    for (int c : controls)
        used[c] = true;
    used[target] = true;
    std::vector<int> out;
    for (int q = 0; q < num_qubits; ++q)
        if (!used[q])
            out.push_back(q);
    return out;
}

void
append(std::vector<Gate> &out, std::vector<Gate> more)
{
    for (Gate &g : more)
        out.push_back(std::move(g));
}

/**
 * Dirty-ancilla V-chain: A B C B' A B C B' with
 *   A  = ccx(c[k-1], anc[k-3], t)
 *   B  = descending ladder ccx(c[i], anc[i-2], anc[i-1]), i = k-2 .. 2
 *   C  = ccx(c[0], c[1], anc[0])
 *   B' = reverse of B
 */
void
mcx_vchain_dirty(const std::vector<int> &c, int t,
                 const std::vector<int> &anc, std::vector<Gate> &out)
{
    int k = static_cast<int>(c.size());
    auto half = [&]() {
        out.push_back(Gate(OpKind::kCCX, {c[k - 1], anc[k - 3], t}));
        for (int i = k - 2; i >= 2; --i)
            out.push_back(Gate(OpKind::kCCX, {c[i], anc[i - 2], anc[i - 1]}));
        out.push_back(Gate(OpKind::kCCX, {c[0], c[1], anc[0]}));
        for (int i = 2; i <= k - 2; ++i)
            out.push_back(Gate(OpKind::kCCX, {c[i], anc[i - 2], anc[i - 1]}));
    };
    half();
    half();
}

} // namespace

std::vector<Gate>
decompose_ccx(int c0, int c1, int t)
{
    std::vector<Gate> g;
    g.push_back(Gate::one_q(OpKind::kH, t));
    g.push_back(Gate::two_q(OpKind::kCX, c1, t));
    g.push_back(Gate::one_q(OpKind::kTdg, t));
    g.push_back(Gate::two_q(OpKind::kCX, c0, t));
    g.push_back(Gate::one_q(OpKind::kT, t));
    g.push_back(Gate::two_q(OpKind::kCX, c1, t));
    g.push_back(Gate::one_q(OpKind::kTdg, t));
    g.push_back(Gate::two_q(OpKind::kCX, c0, t));
    g.push_back(Gate::one_q(OpKind::kT, c1));
    g.push_back(Gate::one_q(OpKind::kT, t));
    g.push_back(Gate::one_q(OpKind::kH, t));
    g.push_back(Gate::two_q(OpKind::kCX, c0, c1));
    g.push_back(Gate::one_q(OpKind::kT, c0));
    g.push_back(Gate::one_q(OpKind::kTdg, c1));
    g.push_back(Gate::two_q(OpKind::kCX, c0, c1));
    return g;
}

std::vector<Gate>
decompose_ccz(int c0, int c1, int t)
{
    std::vector<Gate> g;
    g.push_back(Gate::one_q(OpKind::kH, t));
    append(g, decompose_ccx(c0, c1, t));
    g.push_back(Gate::one_q(OpKind::kH, t));
    return g;
}

std::vector<Gate>
decompose_cswap(int c, int a, int b)
{
    std::vector<Gate> g;
    g.push_back(Gate::two_q(OpKind::kCX, b, a));
    g.push_back(Gate(OpKind::kCCX, {c, a, b}));
    g.push_back(Gate::two_q(OpKind::kCX, b, a));
    return g;
}

std::vector<Gate>
decompose_mcx(const std::vector<int> &controls, int target, int num_qubits)
{
    int k = static_cast<int>(controls.size());
    std::vector<Gate> out;
    if (k == 0) {
        out.push_back(Gate::one_q(OpKind::kX, target));
        return out;
    }
    if (k == 1) {
        out.push_back(Gate::two_q(OpKind::kCX, controls[0], target));
        return out;
    }
    if (k == 2) {
        out.push_back(Gate(OpKind::kCCX, {controls[0], controls[1], target}));
        return out;
    }

    std::vector<int> anc = free_qubits(controls, target, num_qubits);
    if (static_cast<int>(anc.size()) >= k - 2) {
        anc.resize(k - 2);
        mcx_vchain_dirty(controls, target, anc, out);
        return out;
    }
    if (!anc.empty()) {
        // Barenco halving through one borrowed qubit h:
        //   C^k X = M2 M1 M2 M1,  M1 = C^{m1}X(first half -> h),
        //   M2 = C^{m2+1}X(second half + h -> target).
        int h = anc[0];
        int m1 = (k + 1) / 2;
        std::vector<int> first(controls.begin(), controls.begin() + m1);
        std::vector<int> second(controls.begin() + m1, controls.end());
        second.push_back(h);
        append(out, decompose_mcx(second, target, num_qubits));
        append(out, decompose_mcx(first, h, num_qubits));
        append(out, decompose_mcx(second, target, num_qubits));
        append(out, decompose_mcx(first, h, num_qubits));
        return out;
    }
    // No spare qubit at all: C^k X = H(t) . C^k Z . H(t), with C^k Z the
    // multi-controlled phase mcp(pi) over the same wires.  Inside the
    // recursion the target itself becomes the borrowed qubit for the
    // half-size MCXs, so this terminates without clean ancillas.
    out.push_back(Gate::one_q(OpKind::kH, target));
    append(out, decompose_mcp(M_PI, controls, target, num_qubits));
    out.push_back(Gate::one_q(OpKind::kH, target));
    return out;
}

std::vector<Gate>
decompose_mcp(double lambda, const std::vector<int> &controls, int target,
              int num_qubits)
{
    std::vector<Gate> out;
    if (controls.empty()) {
        out.push_back(Gate::one_q(OpKind::kP, target, lambda));
        return out;
    }
    if (controls.size() == 1) {
        out.push_back(Gate::two_q(OpKind::kCP, controls[0], target, lambda));
        return out;
    }
    // mcp(lam; c0..c_{m-1}; t) =
    //   cp(lam/2)(c_{m-1}, t) . mcx(c0..c_{m-2} -> c_{m-1}) .
    //   cp(-lam/2)(c_{m-1}, t) . mcx(...) . mcp(lam/2; c0..c_{m-2}; t)
    int last = controls.back();
    std::vector<int> prefix(controls.begin(), controls.end() - 1);
    out.push_back(Gate::two_q(OpKind::kCP, last, target, lambda / 2.0));
    append(out, decompose_mcx(prefix, last, num_qubits));
    out.push_back(Gate::two_q(OpKind::kCP, last, target, -lambda / 2.0));
    append(out, decompose_mcx(prefix, last, num_qubits));
    append(out, decompose_mcp(lambda / 2.0, prefix, target, num_qubits));
    return out;
}

} // namespace nassc
