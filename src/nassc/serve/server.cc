#include "nassc/serve/server.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "nassc/ir/qasm.h"
#include "nassc/obs/event_log.h"
#include "nassc/obs/metrics.h"
#include "nassc/obs/trace.h"
#include "nassc/serve/protocol.h"
#include "nassc/serve/shard_router.h"

namespace nassc {

namespace {

[[noreturn]] void
sys_fail(const std::string &what)
{
    throw std::runtime_error("nasscd: " + what + ": " +
                             std::strerror(errno));
}

/** Thrown inside a connection thread when the peer is gone; unwinds to
 *  the connection loop, which closes without writing. */
struct ClientGone
{
};

const char *
source_name(TicketSource source)
{
    switch (source) {
    case TicketSource::kScheduled:
        return "transpiled";
    case TicketSource::kInline:
        return "inline";
    case TicketSource::kCoalesced:
        return "coalesced";
    case TicketSource::kCacheHit:
        return "cache_hit";
    }
    return "unknown";
}

std::vector<std::pair<std::string, std::string>>
stats_pairs(const TranspileService &service)
{
    const ServiceStats s = service.stats();
    const DistanceCache::Stats d = service.distance_cache().stats();
    auto u = [](std::uint64_t v) { return std::to_string(v); };
    auto z = [](std::size_t v) { return std::to_string(v); };
    return {
        {"requests", u(s.requests)},
        {"cache_hits", u(s.cache_hits)},
        {"coalesced", u(s.coalesced)},
        {"misses", u(s.misses)},
        {"evictions_capacity", u(s.evictions_capacity)},
        {"evictions_invalidated", u(s.evictions_invalidated)},
        {"cancelled", u(s.cancelled)},
        {"shed", u(s.shed)},
        {"deadline_exceeded", u(s.deadline_exceeded)},
        {"transpiles_ok", u(s.transpiles_ok)},
        {"transpiles_failed", u(s.transpiles_failed)},
        {"cache_size", std::to_string(s.cache_size)},
        {"cache_bytes", std::to_string(s.cache_bytes)},
        {"inflight", std::to_string(s.inflight)},
        // Distance-cache rows: provider-level compute/hit counts plus
        // the sparse providers' per-row counters, so operators can see
        // lazy-row pressure (and rotation invalidations) per shard.
        // All numeric, so ShardRouter::merged_stats() sums them.
        {"distance_entries", z(d.entries)},
        {"distance_computations", z(d.computations)},
        {"distance_hits", z(d.hits)},
        {"distance_evictions_invalidated", z(d.evictions_invalidated)},
        {"distance_rows_computed", z(d.rows_computed)},
        {"distance_row_hits", z(d.row_hits)},
        {"distance_rows_evicted", z(d.rows_evicted)},
        {"distance_row_bytes", z(d.row_bytes)},
        {"distance_row_bytes_peak", z(d.row_bytes_peak)},
    };
}

/** Did the client opt into span response lines?  `trace` is a
 *  protocol-level option (see parse_transpile_options): last
 *  occurrence wins, values validated there. */
bool
request_wants_trace(const ServeRequest &request)
{
    bool trace = false;
    for (const auto &kv : request.options)
        if (kv.first == "trace")
            trace = kv.second == "1" || kv.second == "true";
    return trace;
}

std::uint64_t
us_since(std::chrono::steady_clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

} // namespace

struct NasscServer::Impl
{
    explicit Impl(ServerOptions opts) : options(std::move(opts))
    {
        if (options.shared_service)
            service = options.shared_service;
        else
            service = std::make_shared<TranspileService>(options.service);
        for (auto &&b :
             {montreal_backend(), linear_backend(), grid_backend()})
            backends[b.name] = std::make_shared<const Backend>(std::move(b));
    }

    ServerOptions options;
    std::shared_ptr<TranspileService> service;

    mutable std::mutex backends_mu;
    std::unordered_map<std::string, std::shared_ptr<const Backend>> backends;

    int unix_fd = -1;
    int tcp_fd = -1;
    int bound_port = -1;
    int wake_pipe[2] = {-1, -1};
    std::atomic<bool> stopping{false};
    bool started = false;
    bool stopped = false;
    std::thread accept_thread;

    struct Conn
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };
    std::mutex conns_mu;
    std::vector<std::unique_ptr<Conn>> conns;

    std::atomic<std::uint64_t> frames{0};
    std::atomic<std::uint64_t> conns_shed{0};

    std::shared_ptr<const Backend>
    lookup_backend(const std::string &name) const
    {
        std::lock_guard<std::mutex> lk(backends_mu);
        auto it = backends.find(name);
        if (it == backends.end())
            throw std::runtime_error("unknown backend '" + name + "'");
        return it->second;
    }

    int
    listen_unix()
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (options.unix_path.size() >= sizeof(addr.sun_path))
            throw std::runtime_error("nasscd: unix socket path too long: " +
                                     options.unix_path);
        std::strncpy(addr.sun_path, options.unix_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        // SOCK_CLOEXEC everywhere in serve/: forked shard workers must
        // not inherit the front door's listeners or connections.
        const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0)
            sys_fail("socket(AF_UNIX)");
        ::unlink(options.unix_path.c_str()); // stale path from a crash
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
            0) {
            ::close(fd);
            sys_fail("bind(" + options.unix_path + ")");
        }
        if (::listen(fd, 64) < 0) {
            ::close(fd);
            sys_fail("listen(" + options.unix_path + ")");
        }
        return fd;
    }

    int
    listen_tcp()
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0)
            sys_fail("socket(AF_INET)");
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(options.tcp_port));
        if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) !=
            1) {
            ::close(fd);
            throw std::runtime_error("nasscd: bad host '" + options.host +
                                     "'");
        }
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
            0) {
            ::close(fd);
            sys_fail("bind(" + options.host + ":" +
                     std::to_string(options.tcp_port) + ")");
        }
        if (::listen(fd, 64) < 0) {
            ::close(fd);
            sys_fail("listen(tcp)");
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len) <
            0) {
            ::close(fd);
            sys_fail("getsockname");
        }
        bound_port = ntohs(bound.sin_port);
        return fd;
    }

    /** Wait for `ticket` while watching the client socket; false = the
     *  peer hung up first (caller cancels).  During shutdown the probe
     *  is skipped: stop() half-closes every socket to stop new frames,
     *  which is indistinguishable from a hangup — accepted requests
     *  must still drain to their response. */
    bool
    wait_ticket(const TranspileTicket &ticket, int fd) const
    {
        while (!ticket.ready()) {
            // A coalesced ticket past its wait budget will never become
            // ready for US — stop polling and let get() throw the typed
            // deadline error.
            if (ticket.deadline_expired())
                return true;
            if (!stopping.load(std::memory_order_relaxed)) {
                char probe;
                const ssize_t n =
                    ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
                if (n == 0)
                    return false; // orderly hangup
                if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                    errno != EINTR)
                    return false; // connection error
                // n == 1 is fine: a pipelined next request, not EOF.
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return true;
    }

    /** Verb dispatch on an already-decoded request; throws typed
     *  service errors for handle_payload to map.  `trace_id` is this
     *  request's trace (empty when untraced) — a shard front stamps it
     *  into the forwarded frame header so the worker joins the trace. */
    ServeResponse
    dispatch(const ServeRequest &request, const std::string &payload, int fd,
             const std::string &trace_id)
    {
        ServeResponse response;
        if (request.verb == "ping") {
            response.status = "ok";
            return response;
        }
        if (request.verb == "stats") {
            response.status = "ok";
            response.stats = options.shard_router
                                 ? options.shard_router->merged_stats()
                                 : stats_pairs(*service);
            return response;
        }
        if (request.verb == "metrics") {
            // Prometheus text exposition.  A front door answers with
            // the bucket-exact merge of its live workers' registries
            // (the front's own registry sees no transpiles, mirroring
            // merged_stats' worker-only sums).
            response.status = "ok";
            response.metrics = options.shard_router
                                   ? options.shard_router->merged_metrics()
                                   : obs::MetricsRegistry::global().render();
            return response;
        }
        const std::shared_ptr<const Backend> backend =
            lookup_backend(request.backend);
        TranspileOptions opts = parse_transpile_options(request.options);
        if (options.shard_router) {
            // Front-door mode: decode only as far as the request
            // key, then forward the RAW frame to the owning shard
            // so the worker's response bytes pass through verbatim
            // (parse/encode of our own wire format round-trips
            // bit-identically).  The worker applies its own
            // default deadline.
            const std::string key = TranspileService::request_key(
                from_qasm(request.qasm), *backend, opts);
            return parse_response(
                options.shard_router->forward(key, payload, trace_id));
        }
        if (opts.deadline_ms == 0 && options.default_deadline_ms > 0)
            opts.deadline_ms = options.default_deadline_ms;
        TranspileTicket ticket =
            service->submit_qasm(request.qasm, backend, opts);
        if (!wait_ticket(ticket, fd)) {
            // Nobody will read the answer; a request no worker has
            // started yet is dropped entirely.
            service->try_cancel(ticket);
            throw ClientGone{};
        }
        // Rethrows transpile errors (typed ones mapped by the caller).
        const SharedTranspileResult result = ticket.get();
        response.qasm = to_qasm(result->circuit);
        response.source = source_name(ticket.source());
        response.degraded = result->degraded;
        if (result->degraded)
            response.trials_consumed = result->layout_trials_consumed;
        response.stats = stats_pairs(*service);
        response.status = "ok";
        return response;
    }

    ServeResponse
    handle_payload(const std::string &payload, int fd,
                   const std::string &frame_trace_id)
    {
        obs::StackMetrics &om = obs::StackMetrics::get();
        const auto start = std::chrono::steady_clock::now();
        ServeResponse response;
        obs::SharedTracer tracer;
        bool transpile_verb = false;
        try {
            const ServeRequest request = parse_request(payload);
            const std::uint64_t decode_us = us_since(start);
            om.decode_us.observe(decode_us);
            transpile_verb = request.verb == "transpile";
            if (transpile_verb && request_wants_trace(request)) {
                // Adopt the frame header's id when a front door
                // forwarded a traced request; mint otherwise.  The
                // decode happened before the tracer could exist, so
                // note its already-measured span explicitly.
                tracer = std::make_shared<obs::Tracer>(
                    frame_trace_id.empty() ? obs::mint_trace_id()
                                           : frame_trace_id);
                tracer->record("decode", decode_us);
            }
            // Install for the scope of the request: submit() runs the
            // admission span on this thread, and the scheduler carries
            // the tracer onto whichever workers execute the job.
            obs::TraceScope scope(tracer);
            response = dispatch(request, payload, fd,
                                tracer ? tracer->id() : std::string());
        } catch (const ClientGone &) {
            throw;
        } catch (const TranspileOverloaded &e) {
            response = ServeResponse{};
            response.status = "overloaded";
            response.error = e.what();
            response.retry_after_ms = options.retry_after_ms;
        } catch (const TranspileDeadlineExceeded &e) {
            response = ServeResponse{};
            response.status = "deadline_exceeded";
            response.error = e.what();
        } catch (const std::exception &e) {
            response = ServeResponse{};
            response.status = "error";
            response.error = e.what();
        }

        if (tracer) {
            // Forwarded responses already carry the worker's spans;
            // append this process's (front-side decode) after them.
            if (response.trace_id.empty())
                response.trace_id = tracer->id();
            const auto spans = tracer->spans();
            response.spans.insert(response.spans.end(), spans.begin(),
                                  spans.end());
        }
        if (transpile_verb) {
            const std::uint64_t total_us = us_since(start);
            om.request_us.observe(total_us);
            obs::EventLog &events = obs::EventLog::global();
            const std::uint64_t slow = events.slow_threshold_us();
            if (slow != 0 && total_us >= slow) {
                om.slow_requests_total.inc();
                events.append(obs::format_event(
                    "slow_request",
                    {{"trace", tracer ? tracer->id() : ""},
                     {"status", response.status},
                     {"source", response.source}},
                    {{"us", total_us}}));
            }
        }
        return response;
    }

    void
    connection_main(Conn *conn)
    {
        try {
            std::string payload;
            std::string frame_trace_id;
            while (read_frame(conn->fd, payload, &frame_trace_id)) {
                frames.fetch_add(1, std::memory_order_relaxed);
                write_frame(conn->fd,
                            encode_response(handle_payload(
                                payload, conn->fd, frame_trace_id)));
            }
        } catch (...) {
            // ClientGone, protocol violations, or socket errors all end
            // the connection the same way; the daemon itself stays up.
        }
        int fd;
        {
            std::lock_guard<std::mutex> lk(conns_mu);
            fd = conn->fd;
            conn->fd = -1; // stop() must not shutdown() a closed fd
        }
        if (fd >= 0)
            ::close(fd);
        conn->done.store(true, std::memory_order_release);
    }

    /** Open (not yet finished) client connections.  Reaps first so a
     *  burst of short-lived clients frees its slots promptly. */
    std::size_t
    live_connections()
    {
        reap_finished();
        std::lock_guard<std::mutex> lk(conns_mu);
        std::size_t live = 0;
        for (const auto &conn : conns)
            if (!conn->done.load(std::memory_order_acquire))
                ++live;
        return live;
    }

    /** Answer an over-cap connect with one overloaded frame + close.
     *  Best effort: the peer may already be gone (EPIPE is fine). */
    void
    shed_connection(int fd)
    {
        conns_shed.fetch_add(1, std::memory_order_relaxed);
        ServeResponse response;
        response.status = "overloaded";
        response.error = "nasscd: connection limit reached";
        response.retry_after_ms = options.retry_after_ms;
        try {
            write_frame(fd, encode_response(response));
        } catch (...) {
        }
        ::close(fd);
    }

    void
    accept_main()
    {
        std::vector<pollfd> fds;
        if (unix_fd >= 0)
            fds.push_back({unix_fd, POLLIN, 0});
        if (tcp_fd >= 0)
            fds.push_back({tcp_fd, POLLIN, 0});
        fds.push_back({wake_pipe[0], POLLIN, 0});

        while (!stopping.load(std::memory_order_relaxed)) {
            const int rc = ::poll(fds.data(),
                                  static_cast<nfds_t>(fds.size()), -1);
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            for (const pollfd &p : fds) {
                if (!(p.revents & POLLIN) || p.fd == wake_pipe[0])
                    continue;
                const int client =
                    ::accept4(p.fd, nullptr, nullptr, SOCK_CLOEXEC);
                if (client < 0)
                    continue;
                if (options.max_connections != 0 &&
                    live_connections() >= options.max_connections) {
                    shed_connection(client);
                    continue;
                }
                auto conn = std::make_unique<Conn>();
                conn->fd = client;
                Conn *raw = conn.get();
                std::lock_guard<std::mutex> lk(conns_mu);
                conns.push_back(std::move(conn));
                raw->thread =
                    std::thread([this, raw] { connection_main(raw); });
            }
            reap_finished();
        }
    }

    /** Join connection threads that already exited (keeps a long-lived
     *  daemon from accumulating one dead thread per past client). */
    void
    reap_finished()
    {
        std::vector<std::thread> finished;
        {
            std::lock_guard<std::mutex> lk(conns_mu);
            for (auto it = conns.begin(); it != conns.end();) {
                if ((*it)->done.load(std::memory_order_acquire)) {
                    finished.push_back(std::move((*it)->thread));
                    it = conns.erase(it);
                } else {
                    ++it;
                }
            }
        }
        for (std::thread &t : finished)
            if (t.joinable())
                t.join();
    }
};

NasscServer::NasscServer(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options)))
{
}

NasscServer::~NasscServer()
{
    stop();
}

void
NasscServer::start()
{
    Impl &im = *impl_;
    if (im.started)
        throw std::logic_error("nasscd: start() called twice");
    if (im.options.unix_path.empty() && im.options.tcp_port < 0)
        throw std::runtime_error("nasscd: no listener configured");
    if (::pipe2(im.wake_pipe, O_CLOEXEC) < 0)
        sys_fail("pipe");
    if (!im.options.unix_path.empty())
        im.unix_fd = im.listen_unix();
    if (im.options.tcp_port >= 0)
        im.tcp_fd = im.listen_tcp();
    im.started = true;
    im.accept_thread = std::thread([&im] { im.accept_main(); });
}

void
NasscServer::stop()
{
    Impl &im = *impl_;
    if (!im.started || im.stopped)
        return;
    im.stopped = true;
    im.stopping.store(true, std::memory_order_relaxed);
    // Wake the accept loop, then retire the listeners: connects made
    // from here on are refused.
    (void)!::write(im.wake_pipe[1], "x", 1);
    if (im.accept_thread.joinable())
        im.accept_thread.join();
    if (im.unix_fd >= 0)
        ::close(im.unix_fd);
    if (im.tcp_fd >= 0)
        ::close(im.tcp_fd);
    if (!im.options.unix_path.empty())
        ::unlink(im.options.unix_path.c_str());
    ::close(im.wake_pipe[0]);
    ::close(im.wake_pipe[1]);

    // Half-close every connection: no new frames arrive, but requests
    // already decoded still drain to a written response.
    {
        std::lock_guard<std::mutex> lk(im.conns_mu);
        for (auto &conn : im.conns)
            if (conn->fd >= 0)
                ::shutdown(conn->fd, SHUT_RD);
    }
    // Take ownership of the Conn objects BEFORE joining: they must
    // outlive their threads (connection_main touches them to the end).
    std::vector<std::unique_ptr<Impl::Conn>> taken;
    {
        std::lock_guard<std::mutex> lk(im.conns_mu);
        taken = std::move(im.conns);
        im.conns.clear();
    }
    for (auto &conn : taken)
        if (conn->thread.joinable())
            conn->thread.join();
}

int
NasscServer::tcp_port() const
{
    return impl_->bound_port;
}

const std::string &
NasscServer::unix_path() const
{
    return impl_->options.unix_path;
}

void
NasscServer::register_backend(std::shared_ptr<const Backend> backend)
{
    if (!backend)
        throw std::invalid_argument("register_backend: null backend");
    std::lock_guard<std::mutex> lk(impl_->backends_mu);
    impl_->backends[backend->name] = std::move(backend);
}

TranspileService &
NasscServer::service()
{
    return *impl_->service;
}

std::uint64_t
NasscServer::requests_seen() const
{
    return impl_->frames.load(std::memory_order_relaxed);
}

std::uint64_t
NasscServer::connections_shed() const
{
    return impl_->conns_shed.load(std::memory_order_relaxed);
}

} // namespace nassc
