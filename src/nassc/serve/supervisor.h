#ifndef NASSC_SERVE_SUPERVISOR_H
#define NASSC_SERVE_SUPERVISOR_H

/**
 * @file
 * Supervisor: fork/exec worker shards, reap crashes, restart with
 * backoff, quarantine flapping shards, and kill hung ones.
 *
 * The front-door daemon owns N child `nasscd` worker processes.  A
 * worker can die three ways, and the supervisor handles each:
 *
 *  - CRASH (segfault, abort, OOM-kill): SIGCHLD — caught by a
 *    self-pipe so nothing async-signal-unsafe runs in the handler —
 *    wakes the supervision loop, which reaps the zombie with a
 *    per-pid waitpid(WNOHANG) (never waitpid(-1), which would steal
 *    other subsystems' children) and schedules a restart.
 *
 *  - FLAP (crash loop — e.g. a corrupt cache file or an armed abort
 *    failpoint re-hit on every boot): restarts back off exponentially
 *    with full jitter on the upper half (the RetryingServeClient
 *    idiom), and K crashes inside a T-ms window trips a circuit
 *    breaker that QUARANTINES the shard for a cooldown — its keyspace
 *    arc stays redistributed to live shards (ShardRouter::mark_dead)
 *    instead of bouncing requests off a doomed boot.  An uptime of
 *    stable_ms resets the exponent and the flap window.
 *
 *  - HANG (alive but wedged — deadlock, runaway request): periodic
 *    ping health checks; health_failures consecutive misses get the
 *    shard SIGKILLed, which converts the hang into a crash and reuses
 *    the restart path.
 *
 * Restart hygiene: children exec a FRESH binary image (fork+execvpe,
 * argv/envp built BEFORE fork — no allocation or setenv between fork
 * and exec in a multithreaded parent).  `first_spawn_env` entries are
 * injected into generation 0 only and `scrub_env` names are dropped
 * from every child environment, so an armed crash failpoint
 * (NASSC_FAILPOINTS=...abort()) kills the first incarnation exactly
 * once instead of every restart forever.
 *
 * The RestartTracker is a pure function of (event, now_ms) — no clock,
 * no threads — so backoff schedules and flap quarantine are unit
 * testable with a fake clock.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <sys/types.h>
#include <vector>

namespace nassc {

/** Backoff + circuit-breaker knobs for shard restarts. */
struct RestartPolicy
{
    /** Delay before restart k since last stable run: min(cap,
     *  base << k), halved-then-jittered (full jitter, upper half). */
    int base_backoff_ms = 100;
    int max_backoff_ms = 5000;
    /** Deterministic jitter stream seed (vary per shard). */
    unsigned jitter_seed = 1;
    /** Flap breaker: this many exits ... */
    int flap_count = 5;
    /** ... inside this window trip quarantine. */
    std::int64_t flap_window_ms = 10000;
    /** Quarantine cooldown before the next restart attempt. */
    std::int64_t quarantine_ms = 3000;
    /** Uptime that counts as a stable run: resets the backoff
     *  exponent and clears the flap window. */
    std::int64_t stable_ms = 10000;
};

/**
 * Pure restart-schedule state machine for ONE shard.  Feed it spawn
 * and exit events stamped with a millisecond clock; it answers when
 * the next restart may happen.  No I/O, no real clock — unit testable.
 */
class RestartTracker
{
  public:
    explicit RestartTracker(RestartPolicy policy = {});

    /** Record that the shard just spawned at `now_ms`. */
    void on_spawn(std::int64_t now_ms);

    /**
     * Record that the shard exited at `now_ms`; returns the delay in
     * ms to wait before respawning (0 = immediately).  Applies stable-
     * uptime reset, exponential backoff with jitter, and the flap
     * breaker (a tripped breaker returns the quarantine cooldown and
     * counts in quarantines()).
     */
    std::int64_t on_exit(std::int64_t now_ms);

    std::uint64_t restarts() const { return restarts_; }
    std::uint64_t quarantines() const { return quarantines_; }
    /** Exits currently inside the flap window (diagnostic). */
    int flap_level() const { return static_cast<int>(exit_times_.size()); }

  private:
    RestartPolicy policy_;
    std::int64_t spawned_at_ms_ = -1;
    int backoff_exponent_ = 0;
    std::uint64_t restarts_ = 0;
    std::uint64_t quarantines_ = 0;
    unsigned rng_state_;
    std::vector<std::int64_t> exit_times_; ///< recent exits (flap window)
};

/** Configuration for one Supervisor. */
struct SupervisorOptions
{
    /** Number of worker shards to keep alive. */
    int shards = 1;
    /** argv for shard i (argv[0] = executable; resolved via PATH). */
    std::function<std::vector<std::string>(int shard)> command;
    /** Extra "KEY=VALUE" environment entries for shard i's FIRST
     *  incarnation only (generation 0); restarts never see them.
     *  This is how a crash failpoint is armed exactly once. */
    std::function<std::vector<std::string>(int shard)> first_spawn_env;
    /** Environment names dropped from EVERY child (first spawn uses
     *  first_spawn_env to re-add deliberately). */
    std::vector<std::string> scrub_env = {"NASSC_FAILPOINTS"};
    /** Restart backoff/breaker policy (jitter_seed is offset by the
     *  shard index internally so shards decorrelate). */
    RestartPolicy restart;
    /** Health-check cadence; 0 disables proactive hang detection. */
    int health_interval_ms = 0;
    /** Consecutive health-check failures before the shard is deemed
     *  hung and SIGKILLed. */
    int health_failures = 3;
    /** Returns whether shard i answers (e.g. connect + ping with a
     *  short io timeout).  Must not throw. */
    std::function<bool(int shard)> health_check;
    /** SIGTERM->SIGKILL grace during stop(). */
    int stop_grace_ms = 5000;
    /** Liveness edge callback: (shard, up).  `up=true` right after a
     *  successful spawn, `false` on exit/quarantine/hang-kill.  Wire
     *  to ShardRouter::mark_live/mark_dead.  Called from the
     *  supervision thread; must not block long. */
    std::function<void(int shard, bool up)> on_state;
};

/** Aggregate counters across all shards (monotonic). */
struct SupervisorStats
{
    std::uint64_t spawns = 0;      ///< total exec'd incarnations
    std::uint64_t restarts = 0;    ///< spawns beyond each shard's first
    std::uint64_t quarantines = 0; ///< flap-breaker trips
    std::uint64_t hang_kills = 0;  ///< SIGKILLs from failed health checks
};

/**
 * Runs the supervision loop on its own thread: spawn all shards, then
 * react to SIGCHLD (reap + schedule restart), restart timers, and
 * health-check ticks until stop().  See the file comment for the
 * crash/flap/hang model.
 */
class Supervisor
{
  public:
    explicit Supervisor(SupervisorOptions options);
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /** Install the SIGCHLD handler (process-wide, once), spawn every
     *  shard, and start the supervision thread.
     *  @throws std::runtime_error when a first spawn fails outright. */
    void start();

    /**
     * Graceful stop: SIGTERM every child (nasscd drains on SIGTERM),
     * wait up to stop_grace_ms, SIGKILL stragglers, reap everything,
     * join the loop.  Idempotent; the destructor calls it.
     */
    void stop();

    /** Block until every shard is up (pid live and, when a
     *  health_check is configured, answering) or `timeout_ms` passes;
     *  returns whether they all made it. */
    bool wait_all_alive(int timeout_ms);

    /** Current pid of shard i; -1 while down/quarantined. */
    pid_t shard_pid(int shard) const;
    bool shard_alive(int shard) const;

    SupervisorStats stats() const;

  private:
    struct Shard;
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace nassc

#endif // NASSC_SERVE_SUPERVISOR_H
