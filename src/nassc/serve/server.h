#ifndef NASSC_SERVE_SERVER_H
#define NASSC_SERVE_SERVER_H

/**
 * @file
 * NasscServer: the nasscd daemon's listening core.
 *
 * A deliberately thin network shell around TranspileService: the server
 * owns the sockets and the protocol framing (serve/protocol.h) and
 * NOTHING else — every transpile goes through the same submit_qasm()
 * path an in-process caller would use, so a daemon response is
 * bit-identical to a local transpile() with the same inputs, and all
 * hardening (dedup, coalescing, bounded cache, generation/TTL
 * invalidation, priorities) lives in the service where it is unit
 * testable without sockets.
 *
 * Threading model: one accept thread multiplexing the listeners with
 * poll(); one thread per accepted connection, each handling its frames
 * sequentially (pipelined requests are answered in order).  The
 * transpile itself runs as a Scheduler job at the request's priority —
 * connection threads only block on frame I/O and on the ticket, so a
 * slow circuit never stalls the accept loop or other connections.
 *
 * Disconnect handling: while waiting on a ticket the connection thread
 * watches its socket; if the client hangs up first, the server calls
 * TranspileService::try_cancel() so a request nobody will read never
 * occupies a worker (cancellation is cooperative — a job already
 * running finishes and populates the cache).
 *
 * Shutdown (stop()) is graceful: listeners close first (new connects
 * are refused), then every open connection is shut down for READING —
 * requests already received keep draining and their responses are still
 * written — and the call joins all threads before returning.  The
 * destructor calls stop().
 *
 * Backends are served from a small registry keyed by name (montreal,
 * linear, grid by default); register_backend() adds or REPLACES an
 * entry, which is how calibration rotation reaches the daemon — the
 * service notices the new Backend::cache_key() on the next request and
 * eagerly drops the stale generation.
 */

#include <cstdint>
#include <memory>
#include <string>

#include "nassc/service/transpile_service.h"
#include "nassc/topo/backends.h"

namespace nassc {

class ShardRouter;

/** Listener + service configuration for one server. */
struct ServerOptions
{
    /** Non-empty: listen on this AF_UNIX socket path (removed and
     *  re-bound on start, unlinked on stop). */
    std::string unix_path;
    /** >= 0: listen on TCP host:tcp_port (0 picks an ephemeral port,
     *  see NasscServer::tcp_port()).  -1 disables TCP.  At least one
     *  of unix_path / tcp_port must be enabled. */
    int tcp_port = -1;
    std::string host = "127.0.0.1";
    /** Options for the server-owned TranspileService (cache bounds,
     *  TTL, worker provisioning, max_queued admission cap). */
    ServiceOptions service;
    /**
     * Admission control: maximum concurrently open client connections.
     * A connect past the cap is answered immediately with one
     * `status overloaded` frame (carrying the retry-after-ms hint) and
     * closed — never queued, never left hanging.  0 = unbounded.
     */
    std::size_t max_connections = 0;
    /** Backoff hint sent with every `status overloaded` response
     *  (connection shed or queue shed), in milliseconds. */
    int retry_after_ms = 50;
    /**
     * Deadline applied to requests that do not set deadline_ms
     * themselves, in milliseconds (nasscd --default-deadline).
     * 0 = no default; a request's own deadline_ms always wins.
     */
    int default_deadline_ms = 0;
    /** Non-null: serve THIS service instead of owning one (lets tests
     *  and embedders share a service between transports). */
    std::shared_ptr<TranspileService> shared_service;
    /**
     * Non-null: front-door mode (nasscd --shards N).  transpile frames
     * are forwarded RAW to the shard owning their request key
     * (serve/shard_router.h) and `stats` answers with the fleet-merged
     * snapshot; only `ping` stays local.  The local service still
     * exists but sees no traffic.  Sharded requests do NOT get
     * default_deadline_ms applied at the front — workers apply their
     * own default, so a deadline is charged once, not twice.
     */
    std::shared_ptr<ShardRouter> shard_router;
};

/** The nasscd daemon core: sockets + framing over a TranspileService. */
class NasscServer
{
  public:
    explicit NasscServer(ServerOptions options);

    /** stop()s if still running. */
    ~NasscServer();

    NasscServer(const NasscServer &) = delete;
    NasscServer &operator=(const NasscServer &) = delete;

    /** Bind + listen + launch the accept thread.
     *  @throws std::runtime_error on any socket failure. */
    void start();

    /** Graceful shutdown: refuse new connections, drain requests
     *  already received, join every thread.  Idempotent. */
    void stop();

    /** The bound TCP port (resolves 0 = ephemeral); -1 if disabled. */
    int tcp_port() const;

    /** The bound unix socket path; empty if disabled. */
    const std::string &unix_path() const;

    /** Add or replace (by Backend::name) a served backend. */
    void register_backend(std::shared_ptr<const Backend> backend);

    /** The service requests are routed through. */
    TranspileService &service();

    /** Frames decoded so far (any verb) — a liveness/progress counter
     *  for tests and monitoring. */
    std::uint64_t requests_seen() const;

    /** Connections shed by the max_connections cap so far. */
    std::uint64_t connections_shed() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace nassc

#endif // NASSC_SERVE_SERVER_H
