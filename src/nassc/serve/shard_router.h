#ifndef NASSC_SERVE_SHARD_ROUTER_H
#define NASSC_SERVE_SHARD_ROUTER_H

/**
 * @file
 * ShardRouter: consistent-hash request routing across a fleet of nasscd
 * worker shards, with health tracking and transparent failover.
 *
 * The front-door daemon (`nasscd --shards N`) decodes nothing beyond
 * what it needs to compute the request key — the same
 * `Circuit::fingerprint() x Backend::cache_key() x
 * Options::fingerprint()` triple TranspileService files requests under
 * (TranspileService::request_key) — and forwards the raw frame to the
 * shard that owns the key's point on a consistent-hash ring.  Keyspace
 * ownership is what makes sharding preserve the dedup invariant
 * fleet-wide: every submission of one key lands on one shard, so that
 * shard's coalescing and cache see ALL duplicates and
 * `transpiles == distinct keys` holds across the fleet exactly as it
 * does in one process.
 *
 * HashRing uses virtual nodes (default 64 per shard) so keyspace slices
 * stay balanced at small N, and FNV-1a (ir/fnv1a.h) for both ring
 * points and key points — no new hash primitive.  Ring stability is
 * structural: shard i's points are fnv1a("shard-<i>/<r>"), so adding or
 * removing a shard never moves another shard's points, and only keys in
 * the vanished (or appearing) arcs remap.
 *
 * Failover: a forward that fails in transit (EOF/ECONNRESET mid-frame,
 * connect refused, I/O timeout on a wedged peer) marks the shard dead
 * and retries on the ring's next live owner after a short backoff.
 * This is safe — at-most-once effects are NOT required — because
 * transpiles are deterministic and pure: a request replayed on another
 * shard (or on the restarted one) produces bit-identical QASM, and at
 * worst the fleet transpiles one key twice across a crash epoch, which
 * the acceptance accounting tolerates by resetting with the crashed
 * shard's counters.  Degraded/failed results are never cached, so a
 * half-finished crash leaves no poison behind.
 *
 * Health: dead shards are retried via half-open probes — one forwarding
 * thread per probe interval gets to try a dead shard's endpoint; on
 * success the shard is marked live again and its keyspace arc snaps
 * back (cache still warm from before the crash).  The Supervisor's
 * ping health checks and SIGCHLD exit notifications drive the same
 * mark_live()/mark_dead() edges from outside.
 *
 * Thread safety: forward() and merged_stats() are safe from any number
 * of connection threads; per-shard connection pools are mutex'd and
 * liveness is atomics.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "nassc/serve/client.h"

namespace nassc {

/**
 * A consistent-hash ring mapping 64-bit points to shard indices via
 * virtual nodes.  Pure data structure (no I/O, no locking) — build
 * once, share const.  Exposed separately from ShardRouter so the
 * remap-stability properties are unit testable without sockets.
 */
class HashRing
{
  public:
    /** Ring over shards [0, shard_count) with `replicas` virtual nodes
     *  per shard.  @throws std::invalid_argument on zero either way. */
    HashRing(int shard_count, int replicas = 64);

    /** Hash a request key onto the ring's point space. */
    static std::uint64_t key_point(const std::string &key);

    /** The shard owning `point`: first ring point clockwise. */
    int owner(std::uint64_t point) const;

    /** The first shard clockwise of `point` for which `live(shard)`
     *  returns true; -1 when every shard is down. */
    int owner_live(std::uint64_t point,
                   const std::function<bool(int)> &live) const;

    int shard_count() const { return shard_count_; }
    int replicas() const { return replicas_; }

  private:
    int shard_count_;
    int replicas_;
    /** (ring point, shard) sorted by point; ties broken by shard index
     *  during construction so the ring is deterministic. */
    std::vector<std::pair<std::uint64_t, int>> points_;
};

/** Configuration for one ShardRouter. */
struct ShardRouterOptions
{
    /** Worker endpoints; shard index == vector index. */
    std::vector<ServeEndpoint> shards;
    /** Virtual nodes per shard on the ring. */
    int replicas = 64;
    /** Per-send/recv socket timeout on shard connections, so a hung
     *  worker surfaces as TranspileTransportTimeout and fails over
     *  instead of wedging a front-door connection thread.  0 = block
     *  forever (tests only). */
    int io_timeout_ms = 30000;
    /** Total forward tries per request across failovers. */
    int forward_attempts = 6;
    /** Base sleep between failover attempts (jittered upward). */
    int failover_backoff_ms = 25;
    /** How often one forwarding thread may half-open-probe a dead
     *  shard's endpoint. */
    int probe_interval_ms = 250;
    /** Idle pooled connections kept per shard. */
    std::size_t pool_cap_per_shard = 8;
    /** Extra rows appended to merged_stats() — the supervisor hooks
     *  its restart/quarantine counters in here.  Numeric values sum
     *  across scrapes like any other stat; non-numeric values pass
     *  through verbatim (merged_stats only sums worker rows). */
    std::function<std::vector<std::pair<std::string, std::string>>()>
        extra_stats;
};

/** Monotonic counters for the front door's own behaviour. */
struct ShardRouterStats
{
    std::uint64_t forwards = 0;       ///< frames forwarded (incl. retries)
    std::uint64_t failovers = 0;      ///< forwards re-routed after a fault
    std::uint64_t forward_errors = 0; ///< faults observed talking to shards
};

/** Routes raw NASSC/1 frames to the owning shard; see file comment. */
class ShardRouter
{
  public:
    explicit ShardRouter(ShardRouterOptions options);
    ~ShardRouter();

    ShardRouter(const ShardRouter &) = delete;
    ShardRouter &operator=(const ShardRouter &) = delete;

    /**
     * Forward the raw request `payload` to the shard owning `key` and
     * return the shard's raw response payload.  Transparent failover:
     * transport faults mark the shard dead and re-route to the next
     * live owner (bounded by forward_attempts with jittered backoff).
     * @throws TranspileOverloaded when attempts are exhausted or no
     * shard is live — always client-retryable, because transpiles are
     * pure and the supervisor is restarting workers meanwhile.
     *
     * A non-empty `trace_id` is stamped into the forwarded frame's
     * header (the payload bytes stay identical) so the worker's spans
     * join the front door's trace.
     */
    std::string forward(const std::string &key, const std::string &payload,
                        const std::string &trace_id = std::string());

    /**
     * `stats` fanned out to every live shard and summed per key, plus
     * the front door's own rows: shards, shards_live, forwards,
     * failovers, forward_errors, shard<i>_live, and the options'
     * extra_stats.  A shard that faults mid-fan-out is marked dead and
     * skipped — stats never fail, they narrow.  Worker rows whose
     * values are not decimal integers cannot be summed; they pass
     * through per-shard as `shard<i>_<key>` and are counted in a
     * `merge_skipped` row instead of being silently dropped.
     */
    std::vector<std::pair<std::string, std::string>> merged_stats();

    /**
     * `metrics` fanned out to every live shard, merged bucket-wise with
     * obs::merge_prometheus (exact: every histogram in the fleet shares
     * one fixed bucket-bound table).  The front door's own registry is
     * NOT mixed in, mirroring merged_stats' worker-only sums.  Faulting
     * shards are marked dead and skipped.
     */
    std::string merged_metrics();

    /** Liveness edges (supervisor exit/health events land here too).
     *  mark_dead() drops the shard's pooled connections. */
    void mark_live(int shard);
    void mark_dead(int shard);
    bool is_live(int shard) const;
    int live_count() const;

    /** Close every pooled connection (drain; workers are going away). */
    void close_pools();

    const HashRing &ring() const { return ring_; }
    int shard_count() const { return static_cast<int>(states_.size()); }
    ShardRouterStats stats_snapshot() const;

  private:
    struct ShardState
    {
        ServeEndpoint endpoint;
        std::atomic<bool> live{true};
        /** Steady-clock ms after which the next half-open probe may
         *  dial; CAS'd so exactly one thread probes per interval. */
        std::atomic<std::int64_t> next_probe_ms{0};
        std::mutex pool_mu;
        std::vector<ServeClient> pool;
    };

    /** Dial or un-pool a connection to `shard`. */
    ServeClient acquire(ShardState &state);
    /** Return a healthy connection to the pool (drops past the cap). */
    void release(ShardState &state, ServeClient &&client);
    /** One frame round-trip on one connection; a non-empty `trace_id`
     *  is stamped into the outgoing frame header. */
    std::string roundtrip(ServeClient &client, const std::string &payload,
                          const std::string &trace_id = std::string());
    /** Pick the live owner for `point`, allowing a rate-limited
     *  half-open probe of dead shards; -1 when nothing is eligible. */
    int pick_shard(std::uint64_t point);

    ShardRouterOptions options_;
    HashRing ring_;
    std::vector<std::unique_ptr<ShardState>> states_;
    std::atomic<std::uint64_t> forwards_{0};
    std::atomic<std::uint64_t> failovers_{0};
    std::atomic<std::uint64_t> forward_errors_{0};
};

} // namespace nassc

#endif // NASSC_SERVE_SHARD_ROUTER_H
