#include "nassc/serve/shard_router.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <random>
#include <stdexcept>
#include <thread>

#include "nassc/ir/fnv1a.h"
#include "nassc/obs/metrics.h"
#include "nassc/service/errors.h"

namespace nassc {

namespace {

std::int64_t
steady_ms()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** FNV-1a + a murmur3-style avalanche.  Raw FNV-1a of short strings
 *  that differ only in trailing bytes lands in one tiny interval of
 *  the 64-bit space (the differing bytes pass through too few prime
 *  multiplications to reach the high bits), which would park whole key
 *  families on one shard.  The finalizer spreads every input bit over
 *  the word so ring points and key points are uniform. */
std::uint64_t
ring_hash(const std::string &s)
{
    Fnv1a h;
    h.str(s);
    std::uint64_t x = h.value();
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

} // namespace

HashRing::HashRing(int shard_count, int replicas)
    : shard_count_(shard_count), replicas_(replicas)
{
    if (shard_count <= 0)
        throw std::invalid_argument("HashRing: shard_count must be > 0");
    if (replicas <= 0)
        throw std::invalid_argument("HashRing: replicas must be > 0");
    points_.reserve(static_cast<std::size_t>(shard_count) *
                    static_cast<std::size_t>(replicas));
    for (int shard = 0; shard < shard_count; ++shard)
        for (int r = 0; r < replicas; ++r)
            points_.emplace_back(
                ring_hash("shard-" + std::to_string(shard) + "/" +
                          std::to_string(r)),
                shard);
    // Tie-break on shard index so two rings built over the same count
    // are identical regardless of emplacement order.
    std::sort(points_.begin(), points_.end());
}

std::uint64_t
HashRing::key_point(const std::string &key)
{
    return ring_hash(key);
}

int
HashRing::owner(std::uint64_t point) const
{
    auto it = std::lower_bound(
        points_.begin(), points_.end(),
        std::make_pair(point, std::numeric_limits<int>::min()));
    if (it == points_.end())
        it = points_.begin(); // wrap past the last ring point
    return it->second;
}

int
HashRing::owner_live(std::uint64_t point,
                     const std::function<bool(int)> &live) const
{
    auto it = std::lower_bound(
        points_.begin(), points_.end(),
        std::make_pair(point, std::numeric_limits<int>::min()));
    // Walk at most one full revolution, skipping points of dead shards;
    // consecutive points of one dead shard cost one predicate call
    // each, which is fine at 64 replicas x small N.
    for (std::size_t step = 0; step < points_.size(); ++step, ++it) {
        if (it == points_.end())
            it = points_.begin();
        if (live(it->second))
            return it->second;
    }
    return -1;
}

ShardRouter::ShardRouter(ShardRouterOptions options)
    : options_(std::move(options)),
      ring_(static_cast<int>(options_.shards.size()), options_.replicas)
{
    states_.reserve(options_.shards.size());
    for (const ServeEndpoint &endpoint : options_.shards) {
        auto state = std::make_unique<ShardState>();
        state->endpoint = endpoint;
        states_.push_back(std::move(state));
    }
}

ShardRouter::~ShardRouter()
{
    close_pools();
}

ServeClient
ShardRouter::acquire(ShardState &state)
{
    {
        std::lock_guard<std::mutex> lk(state.pool_mu);
        if (!state.pool.empty()) {
            ServeClient client = std::move(state.pool.back());
            state.pool.pop_back();
            return client;
        }
    }
    ServeClient client = state.endpoint.connect();
    if (options_.io_timeout_ms > 0)
        client.set_io_timeout(options_.io_timeout_ms);
    return client;
}

void
ShardRouter::release(ShardState &state, ServeClient &&client)
{
    std::lock_guard<std::mutex> lk(state.pool_mu);
    if (state.pool.size() < options_.pool_cap_per_shard)
        state.pool.push_back(std::move(client));
    // else: client destructor closes the surplus connection
}

std::string
ShardRouter::roundtrip(ServeClient &client, const std::string &payload,
                       const std::string &trace_id)
{
    write_frame(client.fd(), payload, trace_id);
    std::string response;
    if (!read_frame(client.fd(), response))
        throw std::runtime_error("shard closed the connection mid-request");
    return response;
}

int
ShardRouter::pick_shard(std::uint64_t point)
{
    const std::int64_t now = steady_ms();
    return ring_.owner_live(point, [&](int shard) {
        ShardState &state = *states_[static_cast<std::size_t>(shard)];
        if (state.live.load(std::memory_order_acquire))
            return true;
        // Half-open probe: exactly one forwarding thread per interval
        // wins the CAS and gets to try the dead shard; everyone else
        // keeps skipping it.  Success is decided by the forward itself
        // (mark_live on a completed round-trip).
        std::int64_t at = state.next_probe_ms.load(std::memory_order_relaxed);
        return at <= now &&
               state.next_probe_ms.compare_exchange_strong(
                   at, now + options_.probe_interval_ms,
                   std::memory_order_relaxed);
    });
}

std::string
ShardRouter::forward(const std::string &key, const std::string &payload,
                     const std::string &trace_id)
{
    const std::uint64_t point = HashRing::key_point(key);
    const int attempts = std::max(1, options_.forward_attempts);
    std::string last_error = "no live shard";
    std::minstd_rand rng(static_cast<unsigned>(point) + 1);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            failovers_.fetch_add(1, std::memory_order_relaxed);
            // Jittered linear-ish backoff: enough for the supervisor's
            // restart or another shard's probe window, without parking
            // a connection thread for seconds.
            const long base = options_.failover_backoff_ms > 0
                                  ? options_.failover_backoff_ms
                                  : 1;
            const long wait =
                base + static_cast<long>(rng() % static_cast<unsigned long>(
                                                     base * attempt + 1));
            std::this_thread::sleep_for(std::chrono::milliseconds(wait));
        }
        const int shard = pick_shard(point);
        if (shard < 0)
            continue;
        ShardState &state = *states_[static_cast<std::size_t>(shard)];
        try {
            ServeClient client = acquire(state);
            forwards_.fetch_add(1, std::memory_order_relaxed);
            std::string response = roundtrip(client, payload, trace_id);
            mark_live(shard);
            release(state, std::move(client));
            return response;
        } catch (const std::exception &e) {
            // Any fault talking to the shard — refused connect, EOF or
            // reset mid-frame, I/O timeout on a wedged peer — is
            // grounds for failover.  The replay is safe: transpiles
            // are pure and deterministic, so whichever shard answers
            // produces bit-identical QASM, and degraded/failed results
            // are never cached.
            forward_errors_.fetch_add(1, std::memory_order_relaxed);
            last_error = e.what();
            mark_dead(shard);
        }
    }
    // Exhaustion maps to the overloaded wire status (retry-after hint
    // included by the server), NOT a hard error: the client may always
    // retry while the supervisor restarts workers.
    throw TranspileOverloaded("shard fleet unavailable after " +
                              std::to_string(attempts) +
                              " attempts; last error: " + last_error);
}

namespace {

/** Strict decimal-integer parse for stat merging: digits only, no
 *  sign/whitespace/trailing junk, must fit uint64.  stoull is too
 *  permissive ("12abc" parses) and throwing it inside the shard-fatal
 *  try used to mark a HEALTHY shard dead over one odd row. */
bool
parse_stat_u64(const std::string &text, std::uint64_t &value)
{
    if (text.empty() || text.size() > 20)
        return false;
    value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            return false;
        value = value * 10 + digit;
    }
    return true;
}

} // namespace

std::vector<std::pair<std::string, std::string>>
ShardRouter::merged_stats()
{
    // Sum per-key over every shard that answers.  std::map keeps the
    // output ordering deterministic for tests and humans.
    std::map<std::string, std::uint64_t> sums;
    // Rows a shard reports that we cannot sum (non-numeric values).
    // They pass through namespaced per-shard — visibly, not silently
    // dropped — and merge_skipped counts how many there were.
    std::vector<std::pair<std::string, std::string>> passthrough;
    std::uint64_t merge_skipped = 0;
    ServeRequest stats_req;
    stats_req.verb = "stats";
    const std::string stats_payload = encode_request(stats_req);
    for (int shard = 0; shard < shard_count(); ++shard) {
        ShardState &state = *states_[static_cast<std::size_t>(shard)];
        if (!state.live.load(std::memory_order_acquire))
            continue;
        std::vector<std::pair<std::string, std::string>> rows;
        try {
            ServeClient client = acquire(state);
            ServeResponse resp =
                parse_response(roundtrip(client, stats_payload));
            if (resp.status != "ok")
                throw std::runtime_error("shard stats error: " + resp.error);
            release(state, std::move(client));
            rows = std::move(resp.stats);
        } catch (const std::exception &) {
            forward_errors_.fetch_add(1, std::memory_order_relaxed);
            mark_dead(shard);
            continue;
        }
        // Row interpretation happens OUTSIDE the shard-fatal try: a
        // non-numeric value is a presentation problem, not a transport
        // fault, and must never kill the shard.
        for (auto &kv : rows) {
            std::uint64_t value = 0;
            if (parse_stat_u64(kv.second, value)) {
                sums[kv.first] += value;
            } else {
                ++merge_skipped;
                passthrough.emplace_back("shard" + std::to_string(shard) +
                                             "_" + kv.first,
                                         std::move(kv.second));
            }
        }
    }
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(sums.size() + passthrough.size() + 9);
    for (const auto &kv : sums)
        out.emplace_back(kv.first, std::to_string(kv.second));
    for (auto &kv : passthrough)
        out.push_back(std::move(kv));
    out.emplace_back("merge_skipped", std::to_string(merge_skipped));
    out.emplace_back("shards", std::to_string(shard_count()));
    out.emplace_back("shards_live", std::to_string(live_count()));
    out.emplace_back("forwards", std::to_string(forwards_.load(
                                     std::memory_order_relaxed)));
    out.emplace_back("failovers", std::to_string(failovers_.load(
                                      std::memory_order_relaxed)));
    out.emplace_back("forward_errors",
                     std::to_string(forward_errors_.load(
                         std::memory_order_relaxed)));
    for (int shard = 0; shard < shard_count(); ++shard)
        out.emplace_back("shard" + std::to_string(shard) + "_live",
                         is_live(shard) ? "1" : "0");
    if (options_.extra_stats)
        for (auto &kv : options_.extra_stats())
            out.push_back(std::move(kv));
    return out;
}

std::string
ShardRouter::merged_metrics()
{
    std::vector<std::string> bodies;
    ServeRequest metrics_req;
    metrics_req.verb = "metrics";
    const std::string metrics_payload = encode_request(metrics_req);
    for (int shard = 0; shard < shard_count(); ++shard) {
        ShardState &state = *states_[static_cast<std::size_t>(shard)];
        if (!state.live.load(std::memory_order_acquire))
            continue;
        try {
            ServeClient client = acquire(state);
            ServeResponse resp =
                parse_response(roundtrip(client, metrics_payload));
            if (resp.status != "ok")
                throw std::runtime_error("shard metrics error: " + resp.error);
            release(state, std::move(client));
            bodies.push_back(std::move(resp.metrics));
        } catch (const std::exception &) {
            forward_errors_.fetch_add(1, std::memory_order_relaxed);
            mark_dead(shard);
        }
    }
    return obs::merge_prometheus(bodies);
}

void
ShardRouter::mark_live(int shard)
{
    states_[static_cast<std::size_t>(shard)]->live.store(
        true, std::memory_order_release);
}

void
ShardRouter::mark_dead(int shard)
{
    ShardState &state = *states_[static_cast<std::size_t>(shard)];
    state.live.store(false, std::memory_order_release);
    // Pooled connections go to a process that just died (or wedged);
    // drop them so a restarted shard gets fresh dials.
    std::vector<ServeClient> doomed;
    {
        std::lock_guard<std::mutex> lk(state.pool_mu);
        doomed = std::move(state.pool);
        state.pool.clear();
    }
    // doomed destructs outside the lock, closing the fds.
}

bool
ShardRouter::is_live(int shard) const
{
    return states_[static_cast<std::size_t>(shard)]->live.load(
        std::memory_order_acquire);
}

int
ShardRouter::live_count() const
{
    int live = 0;
    for (int shard = 0; shard < shard_count(); ++shard)
        if (is_live(shard))
            ++live;
    return live;
}

void
ShardRouter::close_pools()
{
    for (auto &state : states_) {
        std::vector<ServeClient> doomed;
        std::lock_guard<std::mutex> lk(state->pool_mu);
        doomed = std::move(state->pool);
        state->pool.clear();
    }
}

ShardRouterStats
ShardRouter::stats_snapshot() const
{
    ShardRouterStats s;
    s.forwards = forwards_.load(std::memory_order_relaxed);
    s.failovers = failovers_.load(std::memory_order_relaxed);
    s.forward_errors = forward_errors_.load(std::memory_order_relaxed);
    return s;
}

} // namespace nassc
