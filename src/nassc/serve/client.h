#ifndef NASSC_SERVE_CLIENT_H
#define NASSC_SERVE_CLIENT_H

/**
 * @file
 * ServeClient: a blocking nasscd client over one connection.
 *
 * Mirrors the protocol exactly (serve/protocol.h): each call sends one
 * frame and blocks for the one response frame.  A connection serves any
 * number of sequential requests; share one client per thread, not one
 * across threads.
 */

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "nassc/serve/protocol.h"

namespace nassc {

/** One connected nasscd session (movable, closes on destruction). */
class ServeClient
{
  public:
    /** @throws std::runtime_error when the connect fails. */
    static ServeClient connect_unix(const std::string &path);
    static ServeClient connect_tcp(const std::string &host, int port);

    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;
    ~ServeClient();

    /** Send one request frame, block for its response frame.
     *  @throws std::runtime_error on protocol/socket failure (an
     *  application-level failure comes back as status "error"). */
    ServeResponse request(const ServeRequest &request);

    /**
     * Transpile `qasm` on the named backend and return the full
     * response (routed QASM in .qasm, cache outcome in .source).
     * @throws std::runtime_error when the daemon answers status
     * "error" (message included) — transport and application failures
     * both surface as exceptions here.
     */
    ServeResponse
    transpile_qasm(const std::string &qasm, const std::string &backend,
                   const std::vector<std::pair<std::string, std::string>>
                       &options = {});

    /** Fetch the daemon's ServiceStats snapshot as a name->value map. */
    std::map<std::string, std::uint64_t> stats();

    /** Round-trip a ping frame. */
    bool ping();

    int fd() const { return fd_; }

  private:
    explicit ServeClient(int fd) : fd_(fd) {}
    int fd_ = -1;
};

} // namespace nassc

#endif // NASSC_SERVE_CLIENT_H
