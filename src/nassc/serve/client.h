#ifndef NASSC_SERVE_CLIENT_H
#define NASSC_SERVE_CLIENT_H

/**
 * @file
 * ServeClient: a blocking nasscd client over one connection — plus
 * RetryingServeClient, the production wrapper that reconnects and backs
 * off.
 *
 * ServeClient mirrors the protocol exactly (serve/protocol.h): each
 * call sends one frame and blocks for the one response frame.  A
 * connection serves any number of sequential requests; share one client
 * per thread, not one across threads.
 *
 * RetryingServeClient exists because transpiles are PURE: a request
 * that dies in transit (daemon restart, mid-frame disconnect, connect
 * refused during warm-up) or is shed (`status overloaded`) can always
 * be resent verbatim — at worst it becomes a cache hit.  The wrapper
 * retries transport errors with a fresh connection and bounded
 * exponential backoff + jitter, and honors the server's retry-after-ms
 * hint on overload.  Application errors (status "error" /
 * "deadline_exceeded") are NOT retried by default: they are
 * deterministic, so the same request would fail the same way.
 *
 * Hung-peer protection: set_io_timeout() (or RetryPolicy::io_timeout_ms)
 * bounds every send/recv with SO_SNDTIMEO/SO_RCVTIMEO, so a wedged
 * server surfaces as a typed TranspileTransportTimeout instead of
 * blocking the caller forever.  A timed-out connection is in an unknown
 * state (half a frame may be in flight); RetryingServeClient drops it
 * and retries on a fresh one — safe because transpiles are pure.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "nassc/serve/protocol.h"

namespace nassc {

/** One connected nasscd session (movable, closes on destruction). */
class ServeClient
{
  public:
    /** @throws std::runtime_error when the connect fails. */
    static ServeClient connect_unix(const std::string &path);
    static ServeClient connect_tcp(const std::string &host, int port);

    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;
    ~ServeClient();

    /** Send one request frame, block for its response frame.
     *  @throws std::runtime_error on protocol/socket failure (an
     *  application-level failure comes back as status "error"). */
    ServeResponse request(const ServeRequest &request);

    /**
     * Transpile `qasm` on the named backend and return the full
     * response (routed QASM in .qasm, cache outcome in .source).
     * @throws std::runtime_error when the daemon answers status
     * "error" (message included) — transport and application failures
     * both surface as exceptions here.
     */
    ServeResponse
    transpile_qasm(const std::string &qasm, const std::string &backend,
                   const std::vector<std::pair<std::string, std::string>>
                       &options = {});

    /** Fetch the daemon's ServiceStats snapshot as a name->value map.
     *  Rows whose values are not decimal integers (a front door passes
     *  some through verbatim) are skipped, not fatal. */
    std::map<std::string, std::uint64_t> stats();

    /** Fetch the daemon's metrics as Prometheus text exposition (a
     *  sharded front door returns the fleet's bucket-exact merge). */
    std::string metrics();

    /** Round-trip a ping frame. */
    bool ping();

    /**
     * Bound every subsequent send/recv on this connection to `ms`
     * milliseconds (SO_SNDTIMEO/SO_RCVTIMEO); 0 restores blocking
     * forever.  An expired timeout surfaces as
     * TranspileTransportTimeout from request().
     * @throws std::runtime_error when setsockopt fails.
     */
    void set_io_timeout(int ms);

    int fd() const { return fd_; }

  private:
    explicit ServeClient(int fd) : fd_(fd) {}
    int fd_ = -1;
};

/** Where a daemon listens; connect() prefers the unix path when both
 *  transports are configured. */
struct ServeEndpoint
{
    std::string unix_path;           ///< empty = use TCP
    std::string host = "127.0.0.1";
    int tcp_port = -1;

    /** @throws std::runtime_error when the connect fails. */
    ServeClient connect() const;
};

/** Backoff/retry knobs for RetryingServeClient. */
struct RetryPolicy
{
    /** Total tries per request (first attempt included). */
    int max_attempts = 6;
    /** Backoff before retry k is min(cap, base << k), halved-then-
     *  jittered (full jitter on the upper half). */
    int base_backoff_ms = 10;
    int max_backoff_ms = 2000;
    /** Deterministic jitter stream seed (tests; vary per thread). */
    unsigned jitter_seed = 1;
    /**
     * Also retry `status error` responses.  Off by default — they are
     * deterministic — but useful against a daemon with fault injection
     * armed (NASSC_FAILPOINTS), where an injected worker fault surfaces
     * as status error yet the retry is expected to succeed.
     */
    bool retry_application_errors = false;
    /**
     * Per-send/recv socket timeout applied to every dialed connection
     * (ServeClient::set_io_timeout); 0 = block forever (default, the
     * pre-existing behaviour).  A timeout counts as a transport error:
     * the connection is dropped and the request retried fresh.
     */
    int io_timeout_ms = 0;
};

/** What a RetryingServeClient spent so far (monotonic). */
struct RetryStats
{
    std::uint64_t attempts = 0;   ///< frames actually sent (incl. firsts)
    std::uint64_t retries = 0;    ///< attempts beyond each first
    std::uint64_t reconnects = 0; ///< fresh connections dialed
    std::uint64_t overloaded = 0; ///< overloaded responses absorbed
    std::uint64_t backoff_ms = 0; ///< total time slept backing off
};

/**
 * A ServeClient that survives daemon warm-up, restarts, dropped
 * connections, and load shedding.  Dials lazily, reconnects on any
 * transport error, and backs off between attempts (honoring the
 * server's retry-after-ms hint when one was sent).  Single-threaded
 * like ServeClient: one instance per thread.
 */
class RetryingServeClient
{
  public:
    RetryingServeClient(ServeEndpoint endpoint, RetryPolicy policy = {})
        : endpoint_(std::move(endpoint)), policy_(policy)
    {
    }

    /**
     * Send one request, retrying per the policy.  Returns the first
     * response that is not retryable (any status; inspect it).
     * @throws std::runtime_error when attempts are exhausted (last
     * transport error included).
     */
    ServeResponse request(const ServeRequest &request);

    /** request() + throw unless status is "ok" (like
     *  ServeClient::transpile_qasm, but retrying). */
    ServeResponse
    transpile_qasm(const std::string &qasm, const std::string &backend,
                   const std::vector<std::pair<std::string, std::string>>
                       &options = {});

    /** Retrying stats fetch (see ServeClient::stats). */
    std::map<std::string, std::uint64_t> stats();

    /** Retrying metrics scrape (see ServeClient::metrics). */
    std::string metrics();

    /** Retrying ping; false only after exhausting attempts. */
    bool ping();

    const RetryStats &retry_stats() const { return retry_stats_; }

  private:
    /** The live connection, dialing if needed. */
    ServeClient &session();
    void drop_session();
    /** Sleep before retry `attempt` (0-based), honoring `hint_ms`;
     *  returns the milliseconds slept. */
    int backoff(int attempt, int hint_ms);

    ServeEndpoint endpoint_;
    RetryPolicy policy_;
    std::optional<ServeClient> client_;
    RetryStats retry_stats_;
};

} // namespace nassc

#endif // NASSC_SERVE_CLIENT_H
