#include "nassc/serve/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <stdexcept>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace nassc {

namespace {

[[noreturn]] void
sys_fail(const std::string &what)
{
    throw std::runtime_error("nassc client: " + what + ": " +
                             std::strerror(errno));
}

/** Stat rows to a numeric map, skipping rows that are not plain
 *  decimal integers (a sharded front door passes some worker rows
 *  through verbatim) — one odd row must not fail the whole fetch. */
std::map<std::string, std::uint64_t>
stats_to_map(const std::vector<std::pair<std::string, std::string>> &rows)
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &kv : rows) {
        if (kv.second.empty() || kv.second.size() > 20)
            continue;
        std::uint64_t value = 0;
        bool numeric = true;
        for (char c : kv.second) {
            if (c < '0' || c > '9') {
                numeric = false;
                break;
            }
            value = value * 10 + static_cast<std::uint64_t>(c - '0');
        }
        if (numeric)
            out[kv.first] = value;
    }
    return out;
}

} // namespace

ServeClient
ServeClient::connect_unix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("nassc client: unix socket path too long: " +
                                 path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    // SOCK_CLOEXEC: a forked shard worker must not inherit its parent's
    // client connections (they would hold peers open past our close).
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        sys_fail("socket(AF_UNIX)");
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        sys_fail("connect(" + path + ")");
    }
    return ServeClient(fd);
}

ServeClient
ServeClient::connect_tcp(const std::string &host, int port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw std::runtime_error("nassc client: bad host '" + host + "'");
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        sys_fail("socket(AF_INET)");
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        sys_fail("connect(" + host + ":" + std::to_string(port) + ")");
    }
    return ServeClient(fd);
}

ServeClient::ServeClient(ServeClient &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

ServeClient::~ServeClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

ServeResponse
ServeClient::request(const ServeRequest &req)
{
    if (fd_ < 0)
        throw std::runtime_error("nassc client: not connected");
    write_frame(fd_, encode_request(req));
    std::string payload;
    if (!read_frame(fd_, payload))
        throw std::runtime_error(
            "nassc client: server closed the connection");
    return parse_response(payload);
}

ServeResponse
ServeClient::transpile_qasm(
    const std::string &qasm, const std::string &backend,
    const std::vector<std::pair<std::string, std::string>> &options)
{
    ServeRequest req;
    req.verb = "transpile";
    req.backend = backend;
    req.options = options;
    req.qasm = qasm;
    ServeResponse resp = request(req);
    if (resp.status != "ok")
        throw std::runtime_error("nassc client: server error: " +
                                 resp.error);
    return resp;
}

std::map<std::string, std::uint64_t>
ServeClient::stats()
{
    ServeRequest req;
    req.verb = "stats";
    ServeResponse resp = request(req);
    if (resp.status != "ok")
        throw std::runtime_error("nassc client: server error: " +
                                 resp.error);
    return stats_to_map(resp.stats);
}

std::string
ServeClient::metrics()
{
    ServeRequest req;
    req.verb = "metrics";
    ServeResponse resp = request(req);
    if (resp.status != "ok")
        throw std::runtime_error("nassc client: server error: " +
                                 resp.error);
    return resp.metrics;
}

bool
ServeClient::ping()
{
    ServeRequest req;
    req.verb = "ping";
    return request(req).status == "ok";
}

void
ServeClient::set_io_timeout(int ms)
{
    if (fd_ < 0)
        throw std::runtime_error("nassc client: not connected");
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0)
        sys_fail("setsockopt(SO_RCVTIMEO)");
    if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) < 0)
        sys_fail("setsockopt(SO_SNDTIMEO)");
}

ServeClient
ServeEndpoint::connect() const
{
    if (!unix_path.empty())
        return ServeClient::connect_unix(unix_path);
    if (tcp_port >= 0)
        return ServeClient::connect_tcp(host, tcp_port);
    throw std::runtime_error("nassc client: endpoint has no transport");
}

ServeClient &
RetryingServeClient::session()
{
    if (!client_) {
        client_.emplace(endpoint_.connect());
        if (policy_.io_timeout_ms > 0)
            client_->set_io_timeout(policy_.io_timeout_ms);
        ++retry_stats_.reconnects;
    }
    return *client_;
}

void
RetryingServeClient::drop_session()
{
    client_.reset();
}

int
RetryingServeClient::backoff(int attempt, int hint_ms)
{
    // Exponential with full jitter on the upper half: wait in
    // [exp/2, exp], so concurrent retriers decorrelate without ever
    // retrying instantly.  The server's hint is a floor — it knows how
    // loaded it is better than our exponent does.
    long exp = policy_.base_backoff_ms > 0 ? policy_.base_backoff_ms : 1;
    for (int k = 0; k < attempt && exp < policy_.max_backoff_ms; ++k)
        exp *= 2;
    exp = std::min<long>(exp, policy_.max_backoff_ms);
    std::minstd_rand rng(policy_.jitter_seed +
                         static_cast<unsigned>(retry_stats_.attempts));
    long wait = exp / 2 + static_cast<long>(rng() % (exp / 2 + 1));
    wait = std::max<long>(wait, hint_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    retry_stats_.backoff_ms += static_cast<std::uint64_t>(wait);
    return static_cast<int>(wait);
}

ServeResponse
RetryingServeClient::request(const ServeRequest &req)
{
    std::string last_error;
    const int attempts = std::max(1, policy_.max_attempts);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0)
            ++retry_stats_.retries;
        int hint_ms = 0;
        try {
            ++retry_stats_.attempts;
            ServeResponse resp = session().request(req);
            if (resp.status == "overloaded") {
                // Shed, not failed: always retryable (purity), waiting
                // at least the server's hint.
                ++retry_stats_.overloaded;
                last_error = "server overloaded: " + resp.error;
                hint_ms = resp.retry_after_ms;
            } else if (resp.status == "error" &&
                       policy_.retry_application_errors &&
                       attempt + 1 < attempts) {
                last_error = "server error: " + resp.error;
            } else {
                return resp;
            }
        } catch (const std::exception &e) {
            // Transport failure: the connection is in an unknown state,
            // so retry on a FRESH one.  (Includes connect() refusals
            // during daemon warm-up.)
            last_error = e.what();
            drop_session();
        }
        if (attempt + 1 < attempts)
            backoff(attempt, hint_ms);
    }
    throw std::runtime_error("nassc client: " + std::to_string(attempts) +
                             " attempts exhausted; last error: " +
                             last_error);
}

ServeResponse
RetryingServeClient::transpile_qasm(
    const std::string &qasm, const std::string &backend,
    const std::vector<std::pair<std::string, std::string>> &options)
{
    ServeRequest req;
    req.verb = "transpile";
    req.backend = backend;
    req.options = options;
    req.qasm = qasm;
    ServeResponse resp = request(req);
    if (resp.status != "ok")
        throw std::runtime_error("nassc client: server error: " +
                                 resp.error);
    return resp;
}

std::map<std::string, std::uint64_t>
RetryingServeClient::stats()
{
    ServeRequest req;
    req.verb = "stats";
    ServeResponse resp = request(req);
    if (resp.status != "ok")
        throw std::runtime_error("nassc client: server error: " +
                                 resp.error);
    return stats_to_map(resp.stats);
}

std::string
RetryingServeClient::metrics()
{
    ServeRequest req;
    req.verb = "metrics";
    ServeResponse resp = request(req);
    if (resp.status != "ok")
        throw std::runtime_error("nassc client: server error: " +
                                 resp.error);
    return resp.metrics;
}

bool
RetryingServeClient::ping()
{
    ServeRequest req;
    req.verb = "ping";
    try {
        return request(req).status == "ok";
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace nassc
