#include "nassc/serve/client.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace nassc {

namespace {

[[noreturn]] void
sys_fail(const std::string &what)
{
    throw std::runtime_error("nassc client: " + what + ": " +
                             std::strerror(errno));
}

} // namespace

ServeClient
ServeClient::connect_unix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("nassc client: unix socket path too long: " +
                                 path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        sys_fail("socket(AF_UNIX)");
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        sys_fail("connect(" + path + ")");
    }
    return ServeClient(fd);
}

ServeClient
ServeClient::connect_tcp(const std::string &host, int port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw std::runtime_error("nassc client: bad host '" + host + "'");
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        sys_fail("socket(AF_INET)");
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        sys_fail("connect(" + host + ":" + std::to_string(port) + ")");
    }
    return ServeClient(fd);
}

ServeClient::ServeClient(ServeClient &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

ServeClient::~ServeClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

ServeResponse
ServeClient::request(const ServeRequest &req)
{
    if (fd_ < 0)
        throw std::runtime_error("nassc client: not connected");
    write_frame(fd_, encode_request(req));
    std::string payload;
    if (!read_frame(fd_, payload))
        throw std::runtime_error(
            "nassc client: server closed the connection");
    return parse_response(payload);
}

ServeResponse
ServeClient::transpile_qasm(
    const std::string &qasm, const std::string &backend,
    const std::vector<std::pair<std::string, std::string>> &options)
{
    ServeRequest req;
    req.verb = "transpile";
    req.backend = backend;
    req.options = options;
    req.qasm = qasm;
    ServeResponse resp = request(req);
    if (resp.status != "ok")
        throw std::runtime_error("nassc client: server error: " +
                                 resp.error);
    return resp;
}

std::map<std::string, std::uint64_t>
ServeClient::stats()
{
    ServeRequest req;
    req.verb = "stats";
    ServeResponse resp = request(req);
    if (resp.status != "ok")
        throw std::runtime_error("nassc client: server error: " +
                                 resp.error);
    std::map<std::string, std::uint64_t> out;
    for (const auto &kv : resp.stats)
        out[kv.first] = std::stoull(kv.second);
    return out;
}

bool
ServeClient::ping()
{
    ServeRequest req;
    req.verb = "ping";
    return request(req).status == "ok";
}

} // namespace nassc
