#ifndef NASSC_SERVE_PROTOCOL_H
#define NASSC_SERVE_PROTOCOL_H

/**
 * @file
 * The nasscd wire protocol: length-prefixed text frames.
 *
 * Framing (both directions):
 *
 *     NASSC/1 <payload-bytes>[ <trace-id>]\n
 *     <payload>
 *
 * — a fixed magic+version token, one decimal byte count, an OPTIONAL
 * trace-id token (16 hex digits; a shard front stamps it when
 * forwarding a traced request so the worker's spans join the same
 * trace), one newline, then exactly that many payload bytes.  Text
 * framing keeps the daemon debuggable with a terminal; the length
 * prefix keeps parsing O(1) and payloads binary-safe.  Frames above
 * kMaxFrameBytes are rejected without buffering (a malformed or
 * hostile peer cannot balloon the daemon's memory).  Readers that
 * predate the trace-id token never see one (clients only mint ids for
 * `option trace=1` requests to servers that already understand them).
 *
 * Request payload — verb line, then verb-specific lines:
 *
 *     transpile            |  stats  |  ping  |  metrics
 *     backend <name>
 *     option <key>=<value>     (zero or more; TranspileOptions fields,
 *                               plus trace=0|1 — protocol-level: opt
 *                               into per-stage span response lines;
 *                               never part of the request's cache key)
 *     qasm
 *     <OpenQASM 2.0 body, verbatim to end of payload>
 *
 * `metrics` returns the process's MetricsRegistry as Prometheus text
 * exposition; a sharded front door returns the bucket-exact merge of
 * its live workers' registries instead (obs::merge_prometheus — legal
 * because every histogram shares one fixed bucket-bound table).
 *
 * Response payload:
 *
 *     status ok | error | deadline_exceeded | overloaded
 *     error <message>          (any non-ok status)
 *     source transpiled|cache_hit|coalesced|inline   (transpile only)
 *     retry-after-ms <N>       (status overloaded: backoff hint)
 *     degraded <trials>        (ok only: deadline cut the layout race
 *                               short; <trials> completed)
 *     trace-id <id>            (trace=1 only: this request's trace)
 *     span <name> <us>         (trace=1 only: one per recorded stage,
 *                               e.g. decode, admission, queue_wait,
 *                               layout_trial, routing, cache_insert)
 *     stat <key>=<value>       (ServiceStats snapshot; stats+transpile)
 *     metrics                  (metrics verb only)
 *     <Prometheus text exposition, verbatim to end of payload>
 *     qasm                     (transpile only)
 *     <routed OpenQASM 2.0 body, verbatim to end of payload>
 *
 * `deadline_exceeded` means the request's own deadline_ms expired
 * before any layout trial completed (retrying the same budget is
 * futile); `overloaded` means admission control shed the request before
 * queueing it (always safe to retry after the hint — transpiles are
 * pure).
 *
 * `source` is the per-request delta (what this request cost the
 * service); the `stat` lines are a point-in-time snapshot of the whole
 * service, so concurrent clients see interleaved counter motion.
 *
 * The routed QASM body is produced by ir/qasm.h's to_qasm() on the
 * exact TranspileResult the in-process API would hand back, so a
 * daemon round trip is BIT-IDENTICAL to calling transpile() locally
 * with the same backend and options (the protocol adds framing, never
 * meaning).
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nassc/transpile/transpile.h"

namespace nassc {

/** Frame size cap, both directions (1 MiB of QASM is ~40k gates). */
inline constexpr std::size_t kMaxFrameBytes = 32u << 20;

/** Protocol token expected at the start of every frame header. */
inline constexpr const char *kFrameMagic = "NASSC/1";

/** One parsed request payload. */
struct ServeRequest
{
    std::string verb;    ///< "transpile", "stats", "ping", or "metrics"
    std::string backend; ///< backend name (transpile)
    /** Raw key=value option lines, in wire order. */
    std::vector<std::pair<std::string, std::string>> options;
    std::string qasm; ///< OpenQASM 2.0 body (transpile)
};

/** One parsed response payload. */
struct ServeResponse
{
    /** "ok", "error", "deadline_exceeded", or "overloaded". */
    std::string status;
    std::string error;  ///< human-readable failure (any non-ok status)
    std::string source; ///< cache outcome of a transpile request
    /** Backoff hint for "overloaded" responses, in ms; 0 = absent. */
    int retry_after_ms = 0;
    /** True when the result is best-of-completed-trials (the request's
     *  deadline cut the layout race short). */
    bool degraded = false;
    /** Layout trials that completed; -1 = not reported (non-degraded
     *  responses omit the line unless the server filled it). */
    int trials_consumed = -1;
    /** This request's trace id (trace=1 requests only). */
    std::string trace_id;
    /** Per-stage spans, wire order: (stage name, microseconds). */
    std::vector<std::pair<std::string, std::uint64_t>> spans;
    /** ServiceStats snapshot as key=value pairs, in wire order. */
    std::vector<std::pair<std::string, std::string>> stats;
    /** Prometheus text exposition body (metrics verb only). */
    std::string metrics;
    std::string qasm; ///< routed OpenQASM 2.0 body
};

/** @name Payload codec (pure string <-> struct, no I/O). @{ */
std::string encode_request(const ServeRequest &request);
/** @throws std::runtime_error on malformed payloads. */
ServeRequest parse_request(const std::string &payload);
std::string encode_response(const ServeResponse &response);
/** @throws std::runtime_error on malformed payloads. */
ServeResponse parse_response(const std::string &payload);
/** @} */

/**
 * Interpret wire `option` pairs as a TranspileOptions.  Every public
 * field is addressable by its struct name (router=nassc|sabre, seed=N,
 * noise_aware=0|1, …, priority=N, cache_ttl_seconds=X).
 * @throws std::runtime_error on unknown keys or unparsable values, so
 * a typo'd request fails loudly instead of transpiling with defaults.
 */
TranspileOptions parse_transpile_options(
    const std::vector<std::pair<std::string, std::string>> &options);

/**
 * Parse the decimal `<len>` field of a frame header.  Strict: digits
 * only (no sign, no leading '+', no whitespace, no trailing junk), and
 * the value must fit std::size_t without overflow.
 * @throws std::runtime_error on any violation.
 */
std::size_t parse_frame_length(const std::string &text);

/** @name Frame I/O over a connected socket fd.
 * Blocking, EINTR-safe, partial-read/write-safe.  read_frame returns
 * false on clean EOF before any header byte; throws std::runtime_error
 * on malformed headers, oversized frames, or socket errors.
 *
 * The three-argument forms carry the optional header trace-id token:
 * read_frame stores it into *trace_id (cleared when absent); a
 * non-empty `trace_id` on write_frame is stamped into the header
 * (shard forwarding — the payload itself stays byte-identical). @{ */
bool read_frame(int fd, std::string &payload);
bool read_frame(int fd, std::string &payload, std::string *trace_id);
void write_frame(int fd, const std::string &payload);
void write_frame(int fd, const std::string &payload,
                 const std::string &trace_id);
/** @} */

} // namespace nassc

#endif // NASSC_SERVE_PROTOCOL_H
