#include "nassc/serve/protocol.h"

#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>

#include <sys/socket.h>
#include <unistd.h>

#include "nassc/service/errors.h"
#include "nassc/service/failpoint.h"

namespace nassc {

namespace {

[[noreturn]] void
bad_payload(const std::string &what)
{
    throw std::runtime_error("nassc protocol: " + what);
}

/** Map a failed recv/send to the right exception.  On a socket with
 *  SO_RCVTIMEO/SO_SNDTIMEO armed (ServeClient::set_io_timeout, the
 *  shard router's pool) the kernel reports an expired timeout as
 *  EAGAIN/EWOULDBLOCK — surface that as the typed
 *  TranspileTransportTimeout so callers can distinguish "peer wedged,
 *  retry on a fresh connection" from a hard transport error. */
[[noreturn]] void
io_failed(const char *op, int err)
{
    if (err == EAGAIN || err == EWOULDBLOCK)
        throw TranspileTransportTimeout(std::string("nassc protocol: ") +
                                        op + " timed out (peer wedged?)");
    throw std::runtime_error(std::string("nassc protocol: ") + op + ": " +
                             std::strerror(err));
}

/** Consume one '\n'-terminated line starting at `pos`; returns the line
 *  without the newline and advances `pos` past it. */
std::string
next_line(const std::string &payload, std::size_t &pos)
{
    const std::size_t nl = payload.find('\n', pos);
    if (nl == std::string::npos)
        bad_payload("unterminated line");
    std::string line = payload.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
}

/** Split "key=value"; everything before the first '=' is the key. */
std::pair<std::string, std::string>
split_kv(const std::string &line, const char *context)
{
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos)
        bad_payload(std::string(context) + " line without '=': " + line);
    return {line.substr(0, eq), line.substr(eq + 1)};
}

bool
parse_bool(const std::string &key, const std::string &value)
{
    if (value == "0" || value == "false")
        return false;
    if (value == "1" || value == "true")
        return true;
    bad_payload("option " + key + ": expected 0/1/true/false, got '" +
                value + "'");
}

int
parse_int(const std::string &key, const std::string &value)
{
    try {
        std::size_t used = 0;
        const int v = std::stoi(value, &used);
        if (used == value.size())
            return v;
    } catch (const std::exception &) {
    }
    bad_payload("option " + key + ": expected an integer, got '" + value +
                "'");
}

double
parse_double(const std::string &key, const std::string &value)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(value, &used);
        if (used == value.size())
            return v;
    } catch (const std::exception &) {
    }
    bad_payload("option " + key + ": expected a number, got '" + value +
                "'");
}

} // namespace

std::string
encode_request(const ServeRequest &request)
{
    std::string out = request.verb + "\n";
    if (request.verb == "transpile") {
        out += "backend " + request.backend + "\n";
        for (const auto &kv : request.options)
            out += "option " + kv.first + "=" + kv.second + "\n";
        out += "qasm\n";
        out += request.qasm;
    }
    return out;
}

ServeRequest
parse_request(const std::string &payload)
{
    ServeRequest request;
    std::size_t pos = 0;
    request.verb = next_line(payload, pos);
    if (request.verb == "stats" || request.verb == "ping" ||
        request.verb == "metrics")
        return request;
    if (request.verb != "transpile")
        bad_payload("unknown verb '" + request.verb + "'");

    for (;;) {
        const std::string line = next_line(payload, pos);
        if (line == "qasm") {
            request.qasm = payload.substr(pos);
            return request;
        }
        if (line.rfind("backend ", 0) == 0) {
            request.backend = line.substr(8);
        } else if (line.rfind("option ", 0) == 0) {
            request.options.push_back(split_kv(line.substr(7), "option"));
        } else {
            bad_payload("unexpected request line '" + line + "'");
        }
    }
}

std::string
encode_response(const ServeResponse &response)
{
    std::string out = "status " + response.status + "\n";
    if (!response.error.empty())
        out += "error " + response.error + "\n";
    if (!response.source.empty())
        out += "source " + response.source + "\n";
    if (response.retry_after_ms > 0)
        out += "retry-after-ms " + std::to_string(response.retry_after_ms) +
               "\n";
    if (response.degraded)
        out += "degraded " + std::to_string(response.trials_consumed) + "\n";
    if (!response.trace_id.empty())
        out += "trace-id " + response.trace_id + "\n";
    for (const auto &span : response.spans)
        out += "span " + span.first + " " + std::to_string(span.second) +
               "\n";
    for (const auto &kv : response.stats)
        out += "stat " + kv.first + "=" + kv.second + "\n";
    // Body sections are terminal and mutually exclusive by verb.
    if (!response.metrics.empty()) {
        out += "metrics\n";
        out += response.metrics;
    } else if (!response.qasm.empty()) {
        out += "qasm\n";
        out += response.qasm;
    }
    return out;
}

ServeResponse
parse_response(const std::string &payload)
{
    ServeResponse response;
    std::size_t pos = 0;
    for (;;) {
        if (pos >= payload.size())
            return response;
        const std::string line = next_line(payload, pos);
        if (line == "qasm") {
            response.qasm = payload.substr(pos);
            return response;
        }
        if (line == "metrics") {
            response.metrics = payload.substr(pos);
            return response;
        }
        if (line.rfind("status ", 0) == 0) {
            response.status = line.substr(7);
        } else if (line.rfind("error ", 0) == 0) {
            response.error = line.substr(6);
        } else if (line.rfind("source ", 0) == 0) {
            response.source = line.substr(7);
        } else if (line.rfind("retry-after-ms ", 0) == 0) {
            response.retry_after_ms =
                parse_int("retry-after-ms", line.substr(15));
        } else if (line.rfind("degraded ", 0) == 0) {
            response.degraded = true;
            response.trials_consumed = parse_int("degraded", line.substr(9));
        } else if (line.rfind("trace-id ", 0) == 0) {
            response.trace_id = line.substr(9);
        } else if (line.rfind("span ", 0) == 0) {
            // "span <name> <us>"; stage names never contain spaces.
            const std::string body = line.substr(5);
            const std::size_t sp = body.rfind(' ');
            if (sp == std::string::npos || sp == 0)
                bad_payload("malformed span line '" + line + "'");
            const std::string us_text = body.substr(sp + 1);
            response.spans.emplace_back(
                body.substr(0, sp),
                static_cast<std::uint64_t>(parse_frame_length(us_text)));
        } else if (line.rfind("stat ", 0) == 0) {
            response.stats.push_back(split_kv(line.substr(5), "stat"));
        } else {
            bad_payload("unexpected response line '" + line + "'");
        }
    }
}

TranspileOptions
parse_transpile_options(
    const std::vector<std::pair<std::string, std::string>> &options)
{
    TranspileOptions opts;
    for (const auto &kv : options) {
        const std::string &key = kv.first;
        const std::string &value = kv.second;
        if (key == "router") {
            if (value == "nassc")
                opts.router = RoutingAlgorithm::kNassc;
            else if (value == "sabre")
                opts.router = RoutingAlgorithm::kSabre;
            else
                bad_payload("option router: expected nassc|sabre, got '" +
                            value + "'");
        } else if (key == "seed") {
            opts.seed = static_cast<unsigned>(parse_int(key, value));
        } else if (key == "noise_aware") {
            opts.noise_aware = parse_bool(key, value);
        } else if (key == "enable_c2q") {
            opts.enable_c2q = parse_bool(key, value);
        } else if (key == "enable_commute1") {
            opts.enable_commute1 = parse_bool(key, value);
        } else if (key == "enable_commute2") {
            opts.enable_commute2 = parse_bool(key, value);
        } else if (key == "extended_size") {
            opts.extended_size = parse_int(key, value);
        } else if (key == "extended_weight") {
            opts.extended_weight = parse_double(key, value);
        } else if (key == "layout_iterations") {
            opts.layout_iterations = parse_int(key, value);
        } else if (key == "layout_trials") {
            opts.layout_trials = parse_int(key, value);
        } else if (key == "layout_threads") {
            opts.layout_threads = parse_int(key, value);
        } else if (key == "opt_loop_rounds") {
            opts.opt_loop_rounds = parse_int(key, value);
        } else if (key == "reuse_routing") {
            opts.reuse_routing = parse_bool(key, value);
        } else if (key == "orientation_aware_decomposition") {
            opts.orientation_aware_decomposition = parse_bool(key, value);
        } else if (key == "use_decay") {
            opts.use_decay = parse_bool(key, value);
        } else if (key == "priority") {
            opts.priority = parse_int(key, value);
        } else if (key == "cache_ttl_seconds") {
            opts.cache_ttl_seconds = parse_double(key, value);
        } else if (key == "deadline_ms") {
            opts.deadline_ms = parse_int(key, value);
            if (opts.deadline_ms < 0)
                bad_payload("option deadline_ms: must be >= 0, got '" +
                            value + "'");
        } else if (key == "sparse_distance_threshold") {
            opts.sparse_distance_threshold = parse_int(key, value);
        } else if (key == "distance_row_budget_bytes") {
            const int v = parse_int(key, value);
            if (v < 0)
                bad_payload("option distance_row_budget_bytes: must be >= "
                            "0, got '" +
                            value + "'");
            opts.distance_row_budget_bytes =
                static_cast<std::size_t>(v);
        } else if (key == "region_radius") {
            opts.region_radius = parse_int(key, value);
            if (opts.region_radius < 0)
                bad_payload("option region_radius: must be >= 0, got '" +
                            value + "'");
        } else if (key == "trace") {
            // Protocol-level flag, not a TranspileOptions field: the
            // server reads it from the raw option list (tracing is QoS,
            // like deadline_ms — it must not split cache identity, and
            // TranspileOptions::fingerprint() is a persistent
            // contract).  Validate the value so typos still fail loud.
            (void)parse_bool(key, value);
        } else {
            bad_payload("unknown option '" + key + "'");
        }
    }
    return opts;
}

std::size_t
parse_frame_length(const std::string &text)
{
    // Hand-rolled on purpose: std::stoull accepts leading whitespace,
    // '+', and NEGATIVE values (wrapped through unsigned long long),
    // and saturates detection behind exceptions.  A length field is
    // attacker-controlled input; accept digits and nothing else, and
    // reject overflow explicitly instead of wrapping.
    if (text.empty())
        throw std::runtime_error("nassc protocol: empty frame length");
    std::size_t len = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            throw std::runtime_error(
                "nassc protocol: non-numeric frame length '" + text + "'");
        const std::size_t digit = static_cast<std::size_t>(c - '0');
        if (len > (std::numeric_limits<std::size_t>::max() - digit) / 10)
            throw std::runtime_error(
                "nassc protocol: frame length overflows in '" + text + "'");
        len = len * 10 + digit;
    }
    return len;
}

bool
read_frame(int fd, std::string &payload)
{
    return read_frame(fd, payload, nullptr);
}

bool
read_frame(int fd, std::string &payload, std::string *trace_id)
{
    if (trace_id)
        trace_id->clear();
    // Header: "NASSC/1 <len>[ <trace-id>]\n", read byte-by-byte (it is
    // tiny and this keeps the reader stateless — no lookahead into the
    // payload).
    std::string header;
    for (;;) {
        char c;
        const ssize_t n = ::recv(fd, &c, 1, 0);
        if (n == 0) {
            if (header.empty())
                return false; // clean EOF between frames
            throw std::runtime_error("nassc protocol: EOF inside header");
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            io_failed("recv", errno);
        }
        if (c == '\n')
            break;
        header.push_back(c);
        if (header.size() > 64)
            throw std::runtime_error("nassc protocol: runaway frame header");
    }

    const std::string magic = std::string(kFrameMagic) + " ";
    if (header.rfind(magic, 0) != 0)
        throw std::runtime_error("nassc protocol: bad frame magic '" +
                                 header + "'");
    std::string length_text = header.substr(magic.size());
    // Optional trace-id token after the length (shard forwarding).
    const std::size_t sp = length_text.find(' ');
    if (sp != std::string::npos) {
        const std::string id = length_text.substr(sp + 1);
        if (id.empty() || id.find(' ') != std::string::npos)
            throw std::runtime_error(
                "nassc protocol: malformed frame header '" + header + "'");
        if (trace_id)
            *trace_id = id;
        length_text.resize(sp);
    }
    const std::size_t len = parse_frame_length(length_text);
    if (len > kMaxFrameBytes)
        throw std::runtime_error("nassc protocol: frame of " +
                                 std::to_string(len) +
                                 " bytes exceeds the " +
                                 std::to_string(kMaxFrameBytes) +
                                 "-byte cap");

    payload.clear();
    payload.resize(len);
    std::size_t got = 0;
    while (got < len) {
        // Failpoints exercising the partial-I/O loop itself: an EINTR
        // storm (spurious wakeups must re-enter the loop, not error)
        // and a short-read clamp (1 byte per recv, so reassembly of a
        // fragmented payload is on the tested path).
        if (failpoint::eval("protocol.read.eintr"))
            continue;
        std::size_t want = len - got;
        if (failpoint::eval("protocol.read.short"))
            want = 1;
        const ssize_t n = ::recv(fd, &payload[got], want, 0);
        if (n == 0)
            throw std::runtime_error("nassc protocol: EOF inside payload");
        if (n < 0) {
            if (errno == EINTR)
                continue;
            io_failed("recv", errno);
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

void
write_frame(int fd, const std::string &payload)
{
    write_frame(fd, payload, std::string());
}

void
write_frame(int fd, const std::string &payload, const std::string &trace_id)
{
    if (payload.size() > kMaxFrameBytes)
        throw std::runtime_error("nassc protocol: refusing to send a " +
                                 std::to_string(payload.size()) +
                                 "-byte frame");
    if (trace_id.find_first_of(" \n") != std::string::npos ||
        trace_id.size() > 32)
        throw std::runtime_error(
            "nassc protocol: invalid trace id for frame header");
    std::string frame = std::string(kFrameMagic) + " " +
                        std::to_string(payload.size()) +
                        (trace_id.empty() ? "" : " " + trace_id) + "\n" +
                        payload;
    std::size_t sent = 0;
    while (sent < frame.size()) {
        std::size_t chunk = frame.size() - sent;
        // Short-write clamp: 1 byte per send, forcing the resume loop.
        if (failpoint::eval("protocol.write.short"))
            chunk = 1;
        // Mid-frame disconnect: send about half of what remains, then
        // kill the connection — the peer sees a truncated payload and
        // must fail cleanly ("EOF inside payload"), never hang.
        const bool drop = static_cast<bool>(
            failpoint::eval("protocol.write.disconnect"));
        if (drop && chunk > 1)
            chunk = chunk / 2;
        // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not SIGPIPE.
        const ssize_t n =
            ::send(fd, frame.data() + sent, chunk, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            io_failed("send", errno);
        }
        sent += static_cast<std::size_t>(n);
        if (drop) {
            ::shutdown(fd, SHUT_RDWR);
            throw std::runtime_error(
                "nassc protocol: injected mid-frame disconnect");
        }
    }
}

} // namespace nassc
