#include "nassc/serve/supervisor.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "nassc/obs/event_log.h"

extern char **environ;

namespace nassc {

namespace {

std::int64_t
steady_ms()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * SIGCHLD self-pipe, installed process-wide exactly once.  The handler
 * does the only async-signal-safe thing — one write() — and the
 * supervision loop does all real work (reaping, restarting) at thread
 * level.  The pipe is shared by every Supervisor instance in the
 * process (tests run several); each loop also polls on a bounded
 * timeout, so a wakeup drained by a sibling costs at most one tick of
 * latency, never a missed reap.
 */
int g_sigchld_pipe[2] = {-1, -1};
std::once_flag g_sigchld_once;

void
sigchld_handler(int)
{
    const int saved_errno = errno;
    (void)!::write(g_sigchld_pipe[1], "c", 1);
    errno = saved_errno;
}

void
install_sigchld()
{
    std::call_once(g_sigchld_once, [] {
        if (::pipe(g_sigchld_pipe) < 0)
            throw std::runtime_error(
                std::string("supervisor: pipe: ") + std::strerror(errno));
        for (int fd : g_sigchld_pipe) {
            ::fcntl(fd, F_SETFL, O_NONBLOCK);
            ::fcntl(fd, F_SETFD, FD_CLOEXEC);
        }
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = sigchld_handler;
        sigemptyset(&sa.sa_mask);
        // SA_RESTART: the serving stack's blocking syscalls must not
        // start failing with EINTR because a shard exited.
        // SA_NOCLDSTOP: only exits matter, not job-control stops.
        sa.sa_flags = SA_RESTART | SA_NOCLDSTOP;
        if (::sigaction(SIGCHLD, &sa, nullptr) < 0)
            throw std::runtime_error(std::string("supervisor: sigaction: ") +
                                     std::strerror(errno));
    });
}

} // namespace

RestartTracker::RestartTracker(RestartPolicy policy)
    : policy_(policy), rng_state_(policy.jitter_seed ? policy.jitter_seed : 1)
{
}

void
RestartTracker::on_spawn(std::int64_t now_ms)
{
    spawned_at_ms_ = now_ms;
}

std::int64_t
RestartTracker::on_exit(std::int64_t now_ms)
{
    // A stable run forgives history: the exponent and the flap window
    // reset, so one crash after a week up restarts near-instantly.
    if (spawned_at_ms_ >= 0 &&
        now_ms - spawned_at_ms_ >= policy_.stable_ms) {
        backoff_exponent_ = 0;
        exit_times_.clear();
    }
    spawned_at_ms_ = -1;
    ++restarts_;

    // Flap breaker: count exits inside the sliding window.
    exit_times_.erase(
        std::remove_if(exit_times_.begin(), exit_times_.end(),
                       [&](std::int64_t t) {
                           return now_ms - t > policy_.flap_window_ms;
                       }),
        exit_times_.end());
    exit_times_.push_back(now_ms);
    if (policy_.flap_count > 0 &&
        static_cast<int>(exit_times_.size()) >= policy_.flap_count) {
        ++quarantines_;
        // The cooldown IS the reset: after quarantine the shard gets a
        // clean slate (fresh window, base backoff) — if it is still
        // doomed it just trips the breaker again.
        exit_times_.clear();
        backoff_exponent_ = 0;
        return policy_.quarantine_ms;
    }

    long exp = policy_.base_backoff_ms > 0 ? policy_.base_backoff_ms : 1;
    for (int k = 0; k < backoff_exponent_ && exp < policy_.max_backoff_ms;
         ++k)
        exp *= 2;
    exp = std::min<long>(exp, policy_.max_backoff_ms);
    if (backoff_exponent_ < 30)
        ++backoff_exponent_;
    // Full jitter on the upper half (the RetryingServeClient idiom):
    // wait in [exp/2, exp] so sibling shards decorrelate.
    rng_state_ = static_cast<unsigned>(
        (static_cast<std::uint64_t>(rng_state_) * 48271u) % 2147483647u);
    return exp / 2 +
           static_cast<long>(rng_state_ %
                             static_cast<unsigned>(exp / 2 + 1));
}

struct Supervisor::Shard
{
    pid_t pid = -1;
    int generation = 0;           ///< incarnations spawned so far
    std::int64_t restart_at = -1; ///< steady ms; -1 = not scheduled
    int health_misses = 0;
    RestartTracker tracker;

    explicit Shard(RestartPolicy policy) : tracker(policy) {}
};

struct Supervisor::Impl
{
    explicit Impl(SupervisorOptions opts) : options(std::move(opts)) {}

    SupervisorOptions options;
    mutable std::mutex mu;
    std::vector<std::unique_ptr<Shard>> shards;
    std::thread loop_thread;
    std::atomic<bool> stopping{false};
    bool started = false;
    bool stopped = false;
    std::int64_t next_health_ms = 0;
    std::uint64_t spawns = 0;
    std::uint64_t hang_kills = 0;

    void
    notify(int shard, bool up)
    {
        if (options.on_state)
            options.on_state(shard, up);
    }

    /** fork+exec one incarnation of shard `i`; everything the child
     *  touches (argv, envp) is built BEFORE fork — no allocation in a
     *  forked child of a multithreaded process.  Caller holds mu. */
    bool
    spawn(int i, std::string *error)
    {
        Shard &shard = *shards[static_cast<std::size_t>(i)];
        std::vector<std::string> argv_s = options.command(i);
        if (argv_s.empty()) {
            if (error)
                *error = "empty argv";
            return false;
        }

        std::vector<std::string> env_s;
        for (char **e = environ; *e; ++e) {
            const char *entry = *e;
            bool scrubbed = false;
            for (const std::string &name : options.scrub_env) {
                if (std::strncmp(entry, name.c_str(), name.size()) == 0 &&
                    entry[name.size()] == '=') {
                    scrubbed = true;
                    break;
                }
            }
            if (!scrubbed)
                env_s.emplace_back(entry);
        }
        // Generation 0 only: a deliberately armed crash failpoint must
        // kill the first incarnation once, not every restart forever.
        if (shard.generation == 0 && options.first_spawn_env)
            for (std::string &kv : options.first_spawn_env(i))
                env_s.push_back(std::move(kv));

        std::vector<char *> argv_p;
        argv_p.reserve(argv_s.size() + 1);
        for (std::string &a : argv_s)
            argv_p.push_back(a.data());
        argv_p.push_back(nullptr);
        std::vector<char *> env_p;
        env_p.reserve(env_s.size() + 1);
        for (std::string &e : env_s)
            env_p.push_back(e.data());
        env_p.push_back(nullptr);

        const pid_t pid = ::fork();
        if (pid < 0) {
            if (error)
                *error = std::string("fork: ") + std::strerror(errno);
            return false;
        }
        if (pid == 0) {
            // Death pact: if the front door is SIGKILLed (no chance to
            // run stop()), workers must not linger as orphans serving
            // a socket nobody routes to.
            ::prctl(PR_SET_PDEATHSIG, SIGTERM);
            ::execvpe(argv_p[0], argv_p.data(), env_p.data());
            // Only async-signal-safe calls past fork in an MT parent.
            const char msg[] = "supervisor: exec failed\n";
            (void)!::write(2, msg, sizeof(msg) - 1);
            ::_exit(127);
        }
        shard.pid = pid;
        shard.restart_at = -1;
        shard.health_misses = 0;
        ++shard.generation;
        ++spawns;
        shard.tracker.on_spawn(steady_ms());
        // With a health check configured, "up" means ANSWERING, not
        // just exec'd — the health tick flips the edge once the
        // worker's socket is really there.
        if (!options.health_check)
            notify(i, true);
        return true;
    }

    /** Reap any of OUR children that exited (per-pid WNOHANG — a
     *  blanket waitpid(-1) would steal children owned by other code,
     *  e.g. gtest death tests).  Caller holds mu. */
    void
    reap_and_schedule()
    {
        const std::int64_t now = steady_ms();
        for (std::size_t i = 0; i < shards.size(); ++i) {
            Shard &shard = *shards[i];
            if (shard.pid <= 0)
                continue;
            int status = 0;
            const pid_t got = ::waitpid(shard.pid, &status, WNOHANG);
            if (got != shard.pid)
                continue;
            shard.pid = -1;
            shard.health_misses = 0;
            const std::uint64_t quarantines_before =
                shard.tracker.quarantines();
            const std::int64_t delay = shard.tracker.on_exit(now);
            shard.restart_at = now + delay;
            const bool quarantined =
                shard.tracker.quarantines() != quarantines_before;
            obs::EventLog::global().append(obs::format_event(
                quarantined ? "shard_quarantine" : "shard_exit", {},
                {{"shard", static_cast<std::uint64_t>(i)},
                 {"exit_status", static_cast<std::uint64_t>(
                                     static_cast<unsigned>(status))},
                 {"restart_in_ms", static_cast<std::uint64_t>(delay)}}));
            notify(static_cast<int>(i), false);
        }
    }

    /** Respawn shards whose backoff/quarantine expired.  Holds mu. */
    void
    restart_due()
    {
        if (stopping.load(std::memory_order_relaxed))
            return;
        const std::int64_t now = steady_ms();
        for (std::size_t i = 0; i < shards.size(); ++i) {
            Shard &shard = *shards[i];
            if (shard.pid > 0 || shard.restart_at < 0 ||
                shard.restart_at > now)
                continue;
            std::string error;
            if (!spawn(static_cast<int>(i), &error))
                // Spawn itself failed (fork exhaustion?): back off as
                // if the incarnation died instantly.
                shard.restart_at = now + shard.tracker.on_exit(now);
        }
    }

    /** Ping-probe running shards; misses accumulate, a hung shard is
     *  SIGKILLed (the crash path restarts it).  Holds mu. */
    void
    health_tick()
    {
        if (options.health_interval_ms <= 0 || !options.health_check)
            return;
        const std::int64_t now = steady_ms();
        if (now < next_health_ms)
            return;
        next_health_ms = now + options.health_interval_ms;
        for (std::size_t i = 0; i < shards.size(); ++i) {
            Shard &shard = *shards[i];
            if (shard.pid <= 0)
                continue;
            if (options.health_check(static_cast<int>(i))) {
                shard.health_misses = 0;
                notify(static_cast<int>(i), true);
                continue;
            }
            if (++shard.health_misses < std::max(1, options.health_failures))
                continue;
            // Alive but not answering: convert the hang into a crash.
            ++hang_kills;
            obs::EventLog::global().append(obs::format_event(
                "shard_hang_kill", {},
                {{"shard", static_cast<std::uint64_t>(i)},
                 {"misses", static_cast<std::uint64_t>(
                                shard.health_misses)}}));
            notify(static_cast<int>(i), false);
            ::kill(shard.pid, SIGKILL);
            // SIGCHLD wakes the loop; reap_and_schedule() handles it.
        }
    }

    /** Sleep budget until the next scheduled restart or health tick,
     *  clamped so drained-by-a-sibling SIGCHLD wakeups cost at most
     *  one tick.  Holds mu. */
    int
    poll_timeout_ms() const
    {
        const std::int64_t now = steady_ms();
        std::int64_t next = now + 200;
        for (const auto &shard : shards)
            if (shard->pid <= 0 && shard->restart_at >= 0)
                next = std::min(next, shard->restart_at);
        if (options.health_interval_ms > 0 && options.health_check)
            next = std::min(next, next_health_ms);
        return static_cast<int>(std::max<std::int64_t>(10, next - now));
    }

    void
    loop()
    {
        while (!stopping.load(std::memory_order_relaxed)) {
            int timeout;
            {
                std::lock_guard<std::mutex> lk(mu);
                timeout = poll_timeout_ms();
            }
            pollfd pfd{g_sigchld_pipe[0], POLLIN, 0};
            const int rc = ::poll(&pfd, 1, timeout);
            if (rc > 0 && (pfd.revents & POLLIN)) {
                char buf[64];
                while (::read(g_sigchld_pipe[0], buf, sizeof(buf)) > 0) {
                }
            }
            std::lock_guard<std::mutex> lk(mu);
            reap_and_schedule();
            restart_due();
            health_tick();
        }
    }
};

Supervisor::Supervisor(SupervisorOptions options)
    : impl_(std::make_unique<Impl>(std::move(options)))
{
    if (impl_->options.shards <= 0)
        throw std::invalid_argument("supervisor: shards must be > 0");
    if (!impl_->options.command)
        throw std::invalid_argument("supervisor: no command");
}

Supervisor::~Supervisor()
{
    stop();
}

void
Supervisor::start()
{
    Impl &im = *impl_;
    if (im.started)
        throw std::logic_error("supervisor: start() called twice");
    install_sigchld();
    {
        std::lock_guard<std::mutex> lk(im.mu);
        for (int i = 0; i < im.options.shards; ++i) {
            RestartPolicy policy = im.options.restart;
            // Decorrelate sibling backoff streams.
            policy.jitter_seed += static_cast<unsigned>(i) * 7919u;
            im.shards.push_back(std::make_unique<Shard>(policy));
        }
        for (int i = 0; i < im.options.shards; ++i) {
            std::string error;
            if (!im.spawn(i, &error))
                throw std::runtime_error("supervisor: spawning shard " +
                                         std::to_string(i) +
                                         " failed: " + error);
        }
    }
    im.started = true;
    im.loop_thread = std::thread([&im] { im.loop(); });
}

void
Supervisor::stop()
{
    Impl &im = *impl_;
    if (!im.started || im.stopped)
        return;
    im.stopped = true;
    im.stopping.store(true, std::memory_order_relaxed);
    if (im.loop_thread.joinable())
        im.loop_thread.join();

    // Graceful: nasscd workers drain on SIGTERM.
    std::vector<pid_t> pids;
    {
        std::lock_guard<std::mutex> lk(im.mu);
        for (auto &shard : im.shards)
            if (shard->pid > 0)
                pids.push_back(shard->pid);
    }
    for (pid_t pid : pids)
        ::kill(pid, SIGTERM);

    const std::int64_t deadline =
        steady_ms() + std::max(0, im.options.stop_grace_ms);
    std::vector<pid_t> remaining = pids;
    while (!remaining.empty() && steady_ms() < deadline) {
        for (auto it = remaining.begin(); it != remaining.end();) {
            int status = 0;
            if (::waitpid(*it, &status, WNOHANG) == *it)
                it = remaining.erase(it);
            else
                ++it;
        }
        if (!remaining.empty())
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    for (pid_t pid : remaining) {
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
    }

    std::lock_guard<std::mutex> lk(im.mu);
    for (std::size_t i = 0; i < im.shards.size(); ++i) {
        im.shards[i]->pid = -1;
        im.notify(static_cast<int>(i), false);
    }
}

bool
Supervisor::wait_all_alive(int timeout_ms)
{
    Impl &im = *impl_;
    const std::int64_t deadline = steady_ms() + timeout_ms;
    for (;;) {
        bool all = true;
        for (int i = 0; i < im.options.shards && all; ++i) {
            if (shard_pid(i) <= 0)
                all = false;
            else if (im.options.health_check &&
                     !im.options.health_check(i))
                all = false;
        }
        if (all)
            return true;
        if (steady_ms() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
}

pid_t
Supervisor::shard_pid(int shard) const
{
    Impl &im = *impl_;
    std::lock_guard<std::mutex> lk(im.mu);
    if (shard < 0 || shard >= static_cast<int>(im.shards.size()))
        return -1;
    return im.shards[static_cast<std::size_t>(shard)]->pid;
}

bool
Supervisor::shard_alive(int shard) const
{
    return shard_pid(shard) > 0;
}

SupervisorStats
Supervisor::stats() const
{
    Impl &im = *impl_;
    std::lock_guard<std::mutex> lk(im.mu);
    SupervisorStats s;
    s.spawns = im.spawns;
    s.hang_kills = im.hang_kills;
    for (const auto &shard : im.shards) {
        s.restarts += shard->tracker.restarts();
        s.quarantines += shard->tracker.quarantines();
    }
    return s;
}

} // namespace nassc
