#include "nassc/obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace nassc {
namespace obs {

namespace detail {

int
stripe()
{
    // Round-robin threads onto stripes at first use; the mask keeps
    // the id valid however many threads the process ever creates.
    static std::atomic<unsigned> next{0};
    thread_local int id =
        static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) &
                         static_cast<unsigned>(kStripes - 1));
    return id;
}

} // namespace detail

namespace {

void
append_u64(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out += buf;
}

void
append_i64(std::string &out, std::int64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    out += buf;
}

} // namespace

void
Metric::header(std::string &out) const
{
    out += "# HELP ";
    out += name_;
    out += ' ';
    out += help_;
    out += "\n# TYPE ";
    out += name_;
    out += ' ';
    out += type_;
    out += '\n';
}

std::uint64_t
Counter::value() const
{
    std::uint64_t total = 0;
    for (const Cell &c : cells_)
        total += c.v.load(std::memory_order_relaxed);
    return total;
}

void
Counter::render(std::string &out) const
{
    header(out);
    out += name_;
    out += ' ';
    append_u64(out, value());
    out += '\n';
}

void
Counter::reset()
{
    for (Cell &c : cells_)
        c.v.store(0, std::memory_order_relaxed);
}

void
Gauge::render(std::string &out) const
{
    header(out);
    out += name_;
    out += ' ';
    append_i64(out, value());
    out += '\n';
}

void
Gauge::reset()
{
    v_.store(0, std::memory_order_relaxed);
}

std::uint64_t
HistogramSnapshot::quantile_us(double q) const
{
    if (count == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the target observation (1-based, ceil) in cumulative
    // bucket order; the bucket edge is the quantile estimate, which
    // is exact up to the log2 bucket width.
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (int i = 0; i < kHistogramBuckets; ++i) {
        seen += buckets[static_cast<std::size_t>(i)];
        if (seen >= rank)
            return i < kFiniteBuckets ? bucket_bound(i)
                                      : bucket_bound(kFiniteBuckets);
    }
    return bucket_bound(kFiniteBuckets);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    for (const Stripe &s : stripes_) {
        for (int i = 0; i < kHistogramBuckets; ++i)
            snap.buckets[static_cast<std::size_t>(i)] +=
                s.buckets[static_cast<std::size_t>(i)].load(
                    std::memory_order_relaxed);
        snap.sum += s.sum.load(std::memory_order_relaxed);
    }
    for (std::uint64_t b : snap.buckets)
        snap.count += b;
    return snap;
}

void
Histogram::render(std::string &out) const
{
    const HistogramSnapshot snap = snapshot();
    header(out);
    std::uint64_t cumulative = 0;
    for (int i = 0; i < kFiniteBuckets; ++i) {
        cumulative += snap.buckets[static_cast<std::size_t>(i)];
        out += name_;
        out += "_bucket{le=\"";
        append_u64(out, bucket_bound(i));
        out += "\"} ";
        append_u64(out, cumulative);
        out += '\n';
    }
    out += name_;
    out += "_bucket{le=\"+Inf\"} ";
    append_u64(out, snap.count);
    out += '\n';
    out += name_;
    out += "_sum ";
    append_u64(out, snap.sum);
    out += '\n';
    out += name_;
    out += "_count ";
    append_u64(out, snap.count);
    out += '\n';
}

void
Histogram::reset()
{
    for (Stripe &s : stripes_) {
        for (auto &b : s.buckets)
            b.store(0, std::memory_order_relaxed);
        s.sum.store(0, std::memory_order_relaxed);
    }
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry *reg = new MetricsRegistry(); // leaked: outlives
                                                         // exiting threads
    return *reg;
}

Metric &
MetricsRegistry::find_or_create(const std::string &name,
                                const std::string &help, const char *type)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(name);
    if (it != index_.end()) {
        if (std::string(it->second->type()) != type)
            throw std::logic_error("metric '" + name +
                                   "' already registered as " +
                                   it->second->type());
        return *it->second;
    }
    std::unique_ptr<Metric> m;
    if (std::string(type) == "counter")
        m.reset(new Counter(name, help));
    else if (std::string(type) == "gauge")
        m.reset(new Gauge(name, help));
    else
        m.reset(new Histogram(name, help));
    Metric &ref = *m;
    metrics_.push_back(std::move(m));
    index_.emplace(name, &ref);
    return ref;
}

Counter &
MetricsRegistry::counter(const std::string &name, const std::string &help)
{
    return static_cast<Counter &>(find_or_create(name, help, "counter"));
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help)
{
    return static_cast<Gauge &>(find_or_create(name, help, "gauge"));
}

Histogram &
MetricsRegistry::histogram(const std::string &name, const std::string &help)
{
    return static_cast<Histogram &>(find_or_create(name, help, "histogram"));
}

std::string
MetricsRegistry::render() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const auto &m : metrics_)
        m->render(out);
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &m : metrics_)
        m->reset();
}

std::string
merge_prometheus(const std::vector<std::string> &bodies)
{
    struct Entry
    {
        std::string line;        ///< comment or non-numeric passthrough
        std::string key;         ///< sample key (name + labels)
        std::uint64_t value = 0; ///< summed sample value
        bool is_sample = false;
    };
    std::vector<Entry> order;
    std::unordered_map<std::string, std::size_t> by_key; // samples only
    std::unordered_map<std::string, bool> seen_comment;

    for (const std::string &body : bodies) {
        std::size_t pos = 0;
        while (pos < body.size()) {
            std::size_t eol = body.find('\n', pos);
            if (eol == std::string::npos)
                eol = body.size();
            const std::string line = body.substr(pos, eol - pos);
            pos = eol + 1;
            if (line.empty())
                continue;
            if (line[0] == '#') {
                if (!seen_comment.emplace(line, true).second)
                    continue;
                Entry e;
                e.line = line;
                order.push_back(std::move(e));
                continue;
            }
            // Sample line: "<key> <value>".  Values are unsigned
            // integers by construction (counts, bucket counts, sums of
            // microseconds); anything else passes through once.
            const std::size_t sp = line.rfind(' ');
            bool numeric = sp != std::string::npos && sp + 1 < line.size();
            std::uint64_t value = 0;
            if (numeric) {
                for (std::size_t i = sp + 1; i < line.size(); ++i) {
                    const char c = line[i];
                    if (c < '0' || c > '9') {
                        numeric = false;
                        break;
                    }
                    value = value * 10 + static_cast<std::uint64_t>(c - '0');
                }
            }
            if (!numeric) {
                if (!seen_comment.emplace(line, true).second)
                    continue;
                Entry e;
                e.line = line;
                order.push_back(std::move(e));
                continue;
            }
            const std::string key = line.substr(0, sp);
            auto it = by_key.find(key);
            if (it != by_key.end()) {
                order[it->second].value += value;
            } else {
                Entry e;
                e.key = key;
                e.value = value;
                e.is_sample = true;
                by_key.emplace(key, order.size());
                order.push_back(std::move(e));
            }
        }
    }

    std::string out;
    for (const Entry &e : order) {
        if (e.is_sample) {
            out += e.key;
            out += ' ';
            append_u64(out, e.value);
        } else {
            out += e.line;
        }
        out += '\n';
    }
    return out;
}

StackMetrics::StackMetrics(MetricsRegistry &reg)
    : requests_total(reg.counter("nassc_requests_total",
                                 "Transpile requests admitted to submit()")),
      cache_hits_total(
          reg.counter("nassc_cache_hits_total", "Result-cache hits")),
      coalesced_total(reg.counter("nassc_coalesced_total",
                                  "Requests coalesced onto in-flight work")),
      shed_total(reg.counter("nassc_shed_total",
                             "Requests shed by admission control")),
      deadline_exceeded_total(
          reg.counter("nassc_deadline_exceeded_total",
                      "Requests settled past their deadline")),
      transpiles_ok_total(
          reg.counter("nassc_transpiles_ok_total", "Transpiles completed")),
      transpiles_failed_total(
          reg.counter("nassc_transpiles_failed_total", "Transpiles failed")),
      slow_requests_total(
          reg.counter("nassc_slow_requests_total",
                      "Requests over the slow-request threshold")),
      decode_us(reg.histogram("nassc_decode_us",
                              "Wire payload to ServeRequest decode")),
      admission_us(reg.histogram("nassc_admission_us",
                                 "TranspileService::submit critical section")),
      queue_wait_us(reg.histogram("nassc_queue_wait_us",
                                  "submit() to scheduler worker claim")),
      distance_resolve_us(reg.histogram("nassc_distance_resolve_us",
                                        "Distance provider resolution")),
      layout_us(reg.histogram("nassc_layout_us", "Layout search window")),
      layout_trial_us(
          reg.histogram("nassc_layout_trial_us", "One layout trial")),
      routing_us(reg.histogram("nassc_routing_us", "Routing step")),
      cache_insert_us(
          reg.histogram("nassc_cache_insert_us", "Result-cache insert")),
      transpile_us(
          reg.histogram("nassc_transpile_us", "Whole transpile() pipeline")),
      request_us(reg.histogram("nassc_request_us",
                               "Server-side request wall time"))
{
}

StackMetrics &
StackMetrics::get()
{
    static StackMetrics *m = new StackMetrics(MetricsRegistry::global());
    return *m;
}

} // namespace obs
} // namespace nassc
