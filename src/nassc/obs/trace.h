#ifndef NASSC_OBS_TRACE_H
#define NASSC_OBS_TRACE_H

/**
 * @file
 * Per-request tracing: where did this request's latency go?
 *
 * A `Tracer` collects named spans (stage, microseconds) for one
 * request.  nasscd mints one at protocol decode when the client sent
 * `option trace=1` (adopting the frame's `trace-id` header when the
 * request was forwarded by a shard front); `TranspileService` and the
 * `Scheduler` propagate it to whatever thread ends up doing the work
 * via `TraceScope` and the Job seam, so span sites deep in the router
 * never take a tracer parameter — they ask the thread.
 *
 * The cost contract mirrors `service/failpoint.h`: when NO tracer is
 * live anywhere in the process, every span site costs exactly one
 * relaxed atomic load (`detail::g_live_tracers`) — no clock read, no
 * lock, no allocation.  `TraceSpan` sites that also feed a histogram
 * always read the clock (metrics are always on; the observe is one
 * relaxed fetch_add), but only touch the tracer when one is armed.
 *
 * Spans record timing into side buffers only — they never influence
 * a routing decision — so transpiled output is bit-identical with
 * tracing on or off (pinned by test_obs on the golden circuits).
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "nassc/obs/metrics.h"

namespace nassc {
namespace obs {

class Tracer;
using SharedTracer = std::shared_ptr<Tracer>;

namespace detail {

/** Count of live Tracer objects process-wide; the single relaxed load
 *  every span site pays when tracing is off (failpoint pattern). */
extern std::atomic<int> g_live_tracers;

/** The calling thread's installed tracer slot. */
SharedTracer &tls_slot();

} // namespace detail

/** True when any request in the process is being traced. */
inline bool
tracing_armed()
{
    return detail::g_live_tracers.load(std::memory_order_relaxed) != 0;
}

/** One request's span collector.  `record` is thread-safe (layout
 *  trials report from scheduler workers concurrently) and never
 *  throws — spans are recorded from noexcept cleanup paths. */
class Tracer
{
  public:
    explicit Tracer(std::string id);
    ~Tracer();
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    const std::string &id() const { return id_; }

    /** Append a completed span.  Allocation failure is swallowed: a
     *  lost span must never fail the request it describes. */
    void record(const char *name, std::uint64_t us) noexcept;

    std::vector<std::pair<std::string, std::uint64_t>> spans() const;

    /** TraceSpans currently open against this tracer (leak tests:
     *  must drop to 0 after unwinding a failpoint throw). */
    int open_spans() const { return open_.load(std::memory_order_acquire); }

  private:
    friend class TraceSpan;
    void span_opened() { open_.fetch_add(1, std::memory_order_acq_rel); }
    void span_closed() { open_.fetch_sub(1, std::memory_order_acq_rel); }

    std::string id_;
    mutable std::mutex mu_;
    std::vector<std::pair<std::string, std::uint64_t>> spans_;
    std::atomic<int> open_{0};
};

/** Mint a fresh 16-hex-digit trace id (unique per process lifetime,
 *  salted by pid so shard fleets don't collide). */
std::string mint_trace_id();

/** The tracer installed on the calling thread, or null.  One relaxed
 *  load when tracing is off anywhere. */
inline SharedTracer
current_tracer()
{
    if (!tracing_armed())
        return nullptr;
    return detail::tls_slot();
}

/**
 * Install a tracer on the calling thread for a scope; restores the
 * previous one (usually null) on destruction.  The scheduler's worker
 * TaskScope wraps task execution in one of these carrying the Job's
 * tracer, which is how spans recorded inside stolen layout trials land
 * on the right request.
 */
class TraceScope
{
  public:
    explicit TraceScope(SharedTracer t)
        : prev_(std::exchange(detail::tls_slot(), std::move(t)))
    {
    }
    ~TraceScope() { detail::tls_slot() = std::move(prev_); }
    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    SharedTracer prev_;
};

/**
 * RAII span site.  Two flavors:
 *
 *  - `TraceSpan(name)`: pure trace site.  Unarmed cost is ONE relaxed
 *    load — no clock read.  This is the flavor the armed-vs-unarmed
 *    micro-benchmark pins.
 *  - `TraceSpan(name, &hist)`: metrics-backed site.  Always times and
 *    observes into the histogram (one relaxed fetch_add pair); the
 *    tracer is consulted only when armed.
 *
 * The destructor records even when unwinding an exception, so spans
 * close (and `open_spans()` returns to 0) under failpoint-injected
 * throws and deadline expiry.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name, Histogram *hist = nullptr)
    {
        if (hist == nullptr && !tracing_armed())
            return; // the one-relaxed-load fast path
        name_ = name;
        hist_ = hist;
        if (tracing_armed()) {
            tracer_ = detail::tls_slot();
            if (tracer_)
                tracer_->span_opened();
        }
        armed_ = true;
        start_ = std::chrono::steady_clock::now();
    }

    ~TraceSpan()
    {
        if (!armed_)
            return;
        const auto us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start_)
                .count());
        if (hist_ != nullptr)
            hist_->observe(us);
        if (tracer_) {
            tracer_->record(name_, us);
            tracer_->span_closed();
        }
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *name_ = nullptr;
    Histogram *hist_ = nullptr;
    SharedTracer tracer_;
    bool armed_ = false;
    std::chrono::steady_clock::time_point start_;
};

/** Record an already-measured duration as a span on the current
 *  thread's tracer (queue-wait is measured across threads, so it
 *  can't be a scoped object).  One relaxed load when unarmed. */
inline void
span_note(const char *name, std::uint64_t us)
{
    if (!tracing_armed())
        return;
    if (const SharedTracer &t = detail::tls_slot())
        t->record(name, us);
}

} // namespace obs
} // namespace nassc

#endif // NASSC_OBS_TRACE_H
