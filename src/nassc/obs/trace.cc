#include "nassc/obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <unistd.h>

namespace nassc {
namespace obs {

namespace detail {

std::atomic<int> g_live_tracers{0};

SharedTracer &
tls_slot()
{
    thread_local SharedTracer slot;
    return slot;
}

} // namespace detail

Tracer::Tracer(std::string id) : id_(std::move(id))
{
    detail::g_live_tracers.fetch_add(1, std::memory_order_relaxed);
}

Tracer::~Tracer()
{
    detail::g_live_tracers.fetch_sub(1, std::memory_order_relaxed);
}

void
Tracer::record(const char *name, std::uint64_t us) noexcept
{
    try {
        std::lock_guard<std::mutex> lock(mu_);
        if (spans_.size() >= 4096)
            return; // bounded: a pathological trial count can't OOM us
        spans_.emplace_back(name, us);
    } catch (...) {
        // A lost span must never fail the request it describes.
    }
}

std::vector<std::pair<std::string, std::uint64_t>>
Tracer::spans() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
}

std::string
mint_trace_id()
{
    // Sequence within the process, salted by pid and a boot-time clock
    // sample so ids from shard workers and their front door never
    // collide.  Mixed through the same avalanche the shard ring uses.
    static std::atomic<std::uint64_t> seq{0};
    static const std::uint64_t salt = [] {
        std::uint64_t s = static_cast<std::uint64_t>(::getpid());
        s = s * 0x9e3779b97f4a7c15ull +
            static_cast<std::uint64_t>(
                std::chrono::steady_clock::now().time_since_epoch().count());
        return s;
    }();
    std::uint64_t h = salt + seq.fetch_add(1, std::memory_order_relaxed) *
                                 0x100000001b3ull;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, h);
    return std::string(buf);
}

} // namespace obs
} // namespace nassc
