#ifndef NASSC_OBS_METRICS_H
#define NASSC_OBS_METRICS_H

/**
 * @file
 * Counters, gauges, and fixed-bucket histograms for the serving stack.
 *
 * Design constraints, in order:
 *
 *  1. Hot-path recording must be lock-free and allocation-free: inc()
 *     and observe() are relaxed atomic adds into per-thread stripes
 *     (16 cache-line-padded cells, thread -> stripe round-robin), so
 *     concurrent connection threads and scheduler workers never
 *     contend on one counter word.  Reads sum the stripes — metrics
 *     reads are scrapes, not hot paths.
 *  2. Histogram bucket bounds are FIXED and log2-scaled — every
 *     histogram in the process shares kBucketBounds (1us, 2us, 4us, …,
 *     2^25us ≈ 33.5s, +Inf) — so merging scrapes from N shard
 *     processes is EXACT: same bounds, bucket-wise integer sums, no
 *     re-binning error.  ShardRouter::merged_metrics() and
 *     merge_prometheus() rely on this.
 *  3. Exposure is Prometheus text exposition (render()): `# TYPE`
 *     headers, cumulative `_bucket{le="N"}` samples, `_sum`/`_count`.
 *     The nasscd `metrics` verb returns exactly this body.
 *
 * MetricsRegistry::global() is the process-wide registry every
 * built-in instrument (StackMetrics) lives in; local registries are
 * constructible for tests (merge exactness is unit-tested against
 * three local registries rendered and merged by hand).
 */

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace nassc {
namespace obs {

/** Per-thread stripe fan-out of every counter/histogram cell. */
inline constexpr int kStripes = 16;

/** Finite histogram bucket bounds (inclusive upper edges), in
 *  microseconds: 2^0 .. 2^25.  Index kFiniteBuckets is +Inf. */
inline constexpr int kFiniteBuckets = 26;
inline constexpr int kHistogramBuckets = kFiniteBuckets + 1;

/** The shared upper edge of finite bucket `i` (2^i us). */
constexpr std::uint64_t
bucket_bound(int i)
{
    return std::uint64_t{1} << i;
}

namespace detail {
/** This thread's stripe id in [0, kStripes). */
int stripe();
} // namespace detail

/** Base of every registered metric; named, typed, resettable. */
class Metric
{
  public:
    virtual ~Metric() = default;
    const std::string &name() const { return name_; }
    const char *type() const { return type_; }
    /** Append this metric's exposition block (TYPE header + samples). */
    virtual void render(std::string &out) const = 0;
    /** Zero every value (tests; scrape deltas are the production way). */
    virtual void reset() = 0;

  protected:
    Metric(std::string name, std::string help, const char *type)
        : name_(std::move(name)), help_(std::move(help)), type_(type)
    {
    }
    void header(std::string &out) const;

    std::string name_;
    std::string help_;
    const char *type_;
};

/** Monotonic counter; inc() is one relaxed fetch_add on a stripe. */
class Counter : public Metric
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        cells_[static_cast<std::size_t>(detail::stripe())].v.fetch_add(
            n, std::memory_order_relaxed);
    }
    std::uint64_t value() const;

    void render(std::string &out) const override;
    void reset() override;

  private:
    friend class MetricsRegistry;
    Counter(std::string name, std::string help)
        : Metric(std::move(name), std::move(help), "counter")
    {
    }
    struct alignas(64) Cell
    {
        std::atomic<std::uint64_t> v{0};
    };
    std::array<Cell, kStripes> cells_;
};

/** Signed point-in-time value (cache sizes, live shards, …).  Not
 *  striped: gauges are set from slow paths. */
class Gauge : public Metric
{
  public:
    void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

    void render(std::string &out) const override;
    void reset() override;

  private:
    friend class MetricsRegistry;
    Gauge(std::string name, std::string help)
        : Metric(std::move(name), std::move(help), "gauge")
    {
    }
    std::atomic<std::int64_t> v_{0};
};

/** One histogram's consistent read: per-bucket (NON-cumulative)
 *  counts, total count, and value sum. */
struct HistogramSnapshot
{
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    /** Upper bucket edge containing quantile `q` in [0,1]; the +Inf
     *  bucket reports 2^26 (one doubling past the last finite edge).
     *  0 when empty. */
    std::uint64_t quantile_us(double q) const;
};

/** Fixed log2-bucket latency histogram (microseconds). */
class Histogram : public Metric
{
  public:
    void
    observe(std::uint64_t us)
    {
        // ceil(log2(us)) clamps into [0, kFiniteBuckets]: us in
        // (2^(k-1), 2^k] lands in finite bucket k, anything past the
        // last edge in the +Inf bucket.  __builtin_clzll is fine here:
        // the tree is gcc/clang-only (see the AVX2 kernels).
        int k = us <= 1
                    ? 0
                    : 64 - __builtin_clzll(us - 1);
        if (k > kFiniteBuckets - 1)
            k = kFiniteBuckets; // +Inf
        Stripe &s = stripes_[static_cast<std::size_t>(detail::stripe())];
        s.buckets[static_cast<std::size_t>(k)].fetch_add(
            1, std::memory_order_relaxed);
        s.sum.fetch_add(us, std::memory_order_relaxed);
    }

    HistogramSnapshot snapshot() const;

    void render(std::string &out) const override;
    void reset() override;

  private:
    friend class MetricsRegistry;
    Histogram(std::string name, std::string help)
        : Metric(std::move(name), std::move(help), "histogram")
    {
    }
    struct alignas(64) Stripe
    {
        std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
        std::atomic<std::uint64_t> sum{0};
    };
    std::array<Stripe, kStripes> stripes_;
};

/**
 * Find-or-create registry of named metrics.  Registration takes a
 * mutex (cold path — every call site caches the returned reference);
 * recording on the returned objects never does.  render() emits the
 * full Prometheus text exposition in registration order.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry (what the `metrics` verb renders). */
    static MetricsRegistry &global();

    /** @throws std::logic_error when `name` exists with another type. */
    Counter &counter(const std::string &name, const std::string &help);
    Gauge &gauge(const std::string &name, const std::string &help);
    Histogram &histogram(const std::string &name, const std::string &help);

    /** Prometheus text exposition of every registered metric. */
    std::string render() const;

    /** Zero every registered value (tests). */
    void reset();

  private:
    Metric &find_or_create(const std::string &name, const std::string &help,
                           const char *type);

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Metric>> metrics_; ///< registration order
    std::unordered_map<std::string, Metric *> index_;
};

/**
 * Merge Prometheus text bodies from N processes sharing this module's
 * fixed bucket bounds: sample lines with identical keys (metric name +
 * label set) are integer-summed — exact for counters and for
 * cumulative histogram buckets — and `#` header lines are kept once.
 * Line order follows first appearance, so merging per-shard scrapes of
 * identically-registered registries preserves their layout.
 * Non-numeric sample lines pass through from their first body.
 */
std::string merge_prometheus(const std::vector<std::string> &bodies);

/**
 * The stack's built-in instruments, registered in the global registry
 * on first use.  One relaxed-atomic recording site each; see
 * obs/trace.h for the span sites that feed the histograms.
 */
struct StackMetrics
{
    Counter &requests_total;           ///< TranspileService::submit calls
    Counter &cache_hits_total;
    Counter &coalesced_total;
    Counter &shed_total;               ///< admission-control rejections
    Counter &deadline_exceeded_total;  ///< requests settled past budget
    Counter &transpiles_ok_total;
    Counter &transpiles_failed_total;
    Counter &slow_requests_total;      ///< over EventLog's slow threshold
    Histogram &decode_us;              ///< wire payload -> ServeRequest
    Histogram &admission_us;           ///< submit() critical section
    Histogram &queue_wait_us;          ///< submit -> worker claim
    Histogram &distance_resolve_us;    ///< DistanceCache::provider
    Histogram &layout_us;              ///< whole layout search window
    Histogram &layout_trial_us;        ///< one layout trial
    Histogram &routing_us;             ///< post-search routing step
    Histogram &cache_insert_us;        ///< result-cache insert
    Histogram &transpile_us;           ///< whole transpile() pipeline
    Histogram &request_us;             ///< server-side request total

    static StackMetrics &get();

  private:
    explicit StackMetrics(MetricsRegistry &reg);
};

} // namespace obs
} // namespace nassc

#endif // NASSC_OBS_METRICS_H
