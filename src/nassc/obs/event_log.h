#ifndef NASSC_OBS_EVENT_LOG_H
#define NASSC_OBS_EVENT_LOG_H

/**
 * @file
 * Bounded structured event log: the "what just went wrong" channel.
 *
 * Components append one JSON line per notable event — slow requests
 * over the threshold, shed/deadline rejections, supervisor restarts
 * and quarantines — into a fixed-capacity ring (drop-oldest, with a
 * dropped counter so truncation is visible).  nasscd drains the ring
 * every supervision tick and flushes the lines to `--event-log PATH`
 * (or stderr), so a crash loop at 3am leaves evidence even when
 * nobody was scraping metrics.
 *
 * Appending takes a mutex but happens only on already-slow or
 * already-failing paths; the request hot path never touches it.
 */

#include <atomic>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nassc {
namespace obs {

class EventLog
{
  public:
    EventLog() = default;
    EventLog(const EventLog &) = delete;
    EventLog &operator=(const EventLog &) = delete;

    /** The process-wide log every component appends to. */
    static EventLog &global();

    /** Append one JSONL line (no trailing newline).  Oldest entries
     *  are dropped past capacity; never throws through. */
    void append(std::string line) noexcept;

    /** Remove and return every buffered line, oldest first. */
    std::vector<std::string> drain();

    void set_capacity(std::size_t cap);
    std::size_t capacity() const;

    std::uint64_t appended() const
    {
        return appended_.load(std::memory_order_relaxed);
    }
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Requests slower than this (server-side wall time) get a
     *  slow_request event.  0 disables.  Read with one relaxed load
     *  on the response path. */
    void set_slow_threshold_us(std::uint64_t us)
    {
        slow_threshold_us_.store(us, std::memory_order_relaxed);
    }
    std::uint64_t slow_threshold_us() const
    {
        return slow_threshold_us_.load(std::memory_order_relaxed);
    }

  private:
    mutable std::mutex mu_;
    std::deque<std::string> ring_;
    std::size_t cap_ = 1024;
    std::atomic<std::uint64_t> appended_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> slow_threshold_us_{0};
};

/** Escape a string for embedding in a JSON double-quoted value. */
std::string json_escape(const std::string &s);

/**
 * Format one event line:
 *   {"ts_ms":<unix ms>,"kind":"<kind>","k":"v",...,"n":123,...}
 * String fields are escaped; numeric fields emitted bare.
 */
std::string
format_event(const char *kind,
             std::initializer_list<std::pair<const char *, std::string>>
                 str_fields,
             std::initializer_list<std::pair<const char *, std::uint64_t>>
                 num_fields);

} // namespace obs
} // namespace nassc

#endif // NASSC_OBS_EVENT_LOG_H
