#include "nassc/obs/event_log.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace nassc {
namespace obs {

EventLog &
EventLog::global()
{
    static EventLog *log = new EventLog(); // leaked: outlives exiting threads
    return *log;
}

void
EventLog::append(std::string line) noexcept
{
    try {
        std::lock_guard<std::mutex> lock(mu_);
        while (ring_.size() >= cap_) {
            ring_.pop_front();
            dropped_.fetch_add(1, std::memory_order_relaxed);
        }
        ring_.push_back(std::move(line));
        appended_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
        // Losing an event line beats failing the path that logged it.
        dropped_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::vector<std::string>
EventLog::drain()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out(ring_.begin(), ring_.end());
    ring_.clear();
    return out;
}

void
EventLog::set_capacity(std::size_t cap)
{
    std::lock_guard<std::mutex> lock(mu_);
    cap_ = cap == 0 ? 1 : cap;
    while (ring_.size() > cap_) {
        ring_.pop_front();
        dropped_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::size_t
EventLog::capacity() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cap_;
}

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
format_event(
    const char *kind,
    std::initializer_list<std::pair<const char *, std::string>> str_fields,
    std::initializer_list<std::pair<const char *, std::uint64_t>> num_fields)
{
    const auto now_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    char buf[48];
    std::snprintf(buf, sizeof buf, "{\"ts_ms\":%" PRIu64 ",\"kind\":\"",
                  now_ms);
    std::string out = buf;
    out += json_escape(kind);
    out += '"';
    for (const auto &f : str_fields) {
        out += ",\"";
        out += f.first;
        out += "\":\"";
        out += json_escape(f.second);
        out += '"';
    }
    for (const auto &f : num_fields) {
        std::snprintf(buf, sizeof buf, ",\"%s\":%" PRIu64, f.first, f.second);
        out += buf;
    }
    out += '}';
    return out;
}

} // namespace obs
} // namespace nassc
