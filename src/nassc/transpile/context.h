#ifndef NASSC_TRANSPILE_CONTEXT_H
#define NASSC_TRANSPILE_CONTEXT_H

/**
 * @file
 * TranspileContext: one object that owns everything a transpile needs.
 *
 * Historically the entry points were free functions threading their
 * dependencies by hand: a 4-arg transpile() taking an explicit
 * DistanceCache, a 3-arg overload hard-wired to DistanceCache::global(),
 * and a separately-constructed TranspileService for the async path.
 * Every call site chose an overload, and the choice silently decided
 * which caches it shared with the rest of the process.
 *
 * TranspileContext collapses that split: it bundles the distance-matrix
 * cache, the scheduler, and a lazily-created TranspileService behind one
 * handle with both synchronous (transpile / optimize_only) and
 * asynchronous (submit / submit_qasm) entry points, all guaranteed to
 * share the same caches.  The free functions remain as thin shims —
 * the 3-arg transpile() now forwards through TranspileContext::global(),
 * so "the old API" and "the new API" are one code path.
 *
 *  - TranspileContext::global(): the process-wide context, built on
 *    DistanceCache::global() and Scheduler::shared().  What the free
 *    functions and most binaries use.
 *  - TranspileContext(Config): a private context for tests/servers that
 *    need isolated caches or a dedicated scheduler (nasscd builds one
 *    per daemon with the configured cache bounds).
 *
 * Thread safety: every member is safe to call concurrently; the service
 * is created once on first use (of submit/submit_qasm/service()).
 */

#include <memory>
#include <mutex>
#include <string>

#include "nassc/service/transpile_service.h"
#include "nassc/transpile/transpile.h"

namespace nassc {

/** Shared transpilation dependencies + both sync and async entry points. */
class TranspileContext
{
  public:
    /** All fields optional; unset ones get process-wide defaults. */
    struct Config
    {
        /** Distance-matrix cache; null = DistanceCache::global(). */
        std::shared_ptr<DistanceCache> distances;
        /** Worker pool; null = Scheduler::shared(). */
        std::shared_ptr<Scheduler> scheduler;
        /** Options for the lazily-created TranspileService.  Its
         *  scheduler/distances fields are overridden by the two members
         *  above so the context stays internally consistent. */
        ServiceOptions service;
    };

    TranspileContext() : TranspileContext(Config{}) {}
    explicit TranspileContext(Config config);

    TranspileContext(const TranspileContext &) = delete;
    TranspileContext &operator=(const TranspileContext &) = delete;

    /** Synchronous full pipeline (see transpile/transpile.h). */
    TranspileResult transpile(const QuantumCircuit &qc,
                              const Backend &backend,
                              const TranspileOptions &opts = {}) const;

    /** Optimization-only baseline (no routing). */
    TranspileResult optimize_only(const QuantumCircuit &qc,
                                  const TranspileOptions &opts = {}) const;

    /** Async submit through the context's TranspileService (created on
     *  first use): dedup, coalescing, and the bounded result cache all
     *  apply.  See service/transpile_service.h. */
    TranspileTicket submit(const QuantumCircuit &qc,
                           std::shared_ptr<const Backend> backend,
                           const TranspileOptions &opts = {});

    /** Async submit of OpenQASM 2.0 text (parse errors throw here). */
    TranspileTicket submit_qasm(const std::string &qasm,
                                std::shared_ptr<const Backend> backend,
                                const TranspileOptions &opts = {});

    DistanceCache &distances() const { return *distances_; }

    /** One-lock snapshot of the context's distance-cache counters —
     *  provider computations/hits plus the per-row lazy-provider stats
     *  (rows computed, row cache hits, evictions, resident/peak bytes).
     *  What the nasscd stats verb reports as the distance_* rows. */
    DistanceCache::Stats distance_stats() const
    {
        return distances_->stats();
    }

    Scheduler &scheduler() const;

    /** The context's TranspileService, created on first call. */
    TranspileService &service();

    /**
     * Process-wide context over DistanceCache::global() and
     * Scheduler::shared() — the one the free transpile() shims use.
     */
    static TranspileContext &global();

  private:
    std::shared_ptr<DistanceCache> distances_;
    std::shared_ptr<Scheduler> scheduler_; ///< null = Scheduler::shared()
    ServiceOptions service_options_;

    mutable std::mutex service_mu_; ///< guards lazy service creation
    std::unique_ptr<TranspileService> service_;
};

} // namespace nassc

#endif // NASSC_TRANSPILE_CONTEXT_H
