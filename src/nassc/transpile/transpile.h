#ifndef NASSC_TRANSPILE_TRANSPILE_H
#define NASSC_TRANSPILE_TRANSPILE_H

/**
 * @file
 * End-to-end transpilation pipelines.
 *
 * transpile() mirrors the paper's Fig. 5 flow:
 *
 *   decompose -> pre-routing optimization (Optimize1qGates,
 *   Collect2qBlocks resynthesis, commutation analysis happens inside the
 *   router) -> SabreLayout -> routing (SABRE or NASSC) -> [NASSC only:
 *   consolidate blocks including SWAPs, flag-aware SWAP decomposition] ->
 *   basis translation -> optimization loop (Optimize1qGates,
 *   CommutativeCancellation, Collect2qBlocks) to fixpoint.
 *
 * The layout step scores every trial by routing the FULL circuit
 * (measures/barriers included, operands mapped through the live
 * layout); on kSabre pipelines the winning trial's scoring pass is the
 * final route and the separate routing step is skipped (retained-trial
 * reuse, see route/layout_search.h).  Reuse is never legal for kNassc:
 * the search scores with the SABRE cost model while the final NASSC
 * route uses the optimization-aware tracker.
 *
 * optimize_only() is the "original circuit optimized by Qiskit" baseline
 * of Tables I-IV: the same pipeline on a fully connected device (no
 * routing), used to compute CNOT_add = CNOT_total - CNOT_baseline.
 */

#include <cstdint>

#include "nassc/ir/circuit.h"
#include "nassc/route/sabre.h"
#include "nassc/service/distance_cache.h"
#include "nassc/topo/backends.h"

namespace nassc {

/** Transpiler configuration (paper Sec. V defaults). */
struct TranspileOptions
{
    RoutingAlgorithm router = RoutingAlgorithm::kNassc;
    unsigned seed = 0;
    bool noise_aware = false; ///< HA distance matrix (eq. 3), Sec. VI-D
    /** b_k switches of the three NASSC optimizations (Fig. 9). */
    bool enable_c2q = true;
    bool enable_commute1 = true;
    bool enable_commute2 = true;
    int extended_size = 20;       ///< |E|
    double extended_weight = 0.5; ///< W
    int layout_iterations = 3;    ///< reverse-traversal rounds
    /** Independent layout-search trials raced on the shared pool; the
     *  best refined layout wins (see route/layout_search.h).  1 =
     *  historical single-seed search, bit for bit. */
    int layout_trials = 1;
    /** Worker cap for the layout trials; 0 = whole shared pool.  Any
     *  value produces bit-identical output. */
    int layout_threads = 0;
    int opt_loop_rounds = 4;      ///< post-routing optimization loop cap
    /** Skip the separate routing step when the layout search already
     *  routed the winner (kSabre pipelines; see RoutingOptions).  The
     *  output is bit-identical either way — this switch exists for the
     *  equivalence tests and for forcing the legacy two-pass flow. */
    bool reuse_routing = true;
    /** Ablation switch: honour SWAP orientation flags when expanding
     *  SWAPs (NASSC Sec. IV-E).  Disabling isolates the contribution of
     *  the optimization-aware cost function alone. */
    bool orientation_aware_decomposition = true;
    /** Ablation switch: SABRE decay factor in the router. */
    bool use_decay = true;
    /**
     * Serving-layer scheduling priority: requests with a higher value
     * are claimed by Scheduler workers before lower ones whenever both
     * are runnable.  Never changes the transpiled output — only when it
     * is computed.  Ignored by the synchronous transpile() entry points.
     */
    int priority = 0;
    /**
     * Serving-layer result-cache time-to-live in seconds; after this
     * long in the TranspileService cache the entry is invalidated (an
     * eager staleness bound on top of calibration-rotation keying).
     * 0 defers to ServiceOptions::default_ttl_seconds; ignored by the
     * synchronous transpile() entry points.
     */
    double cache_ttl_seconds = 0.0;
    /**
     * Soft wall-clock budget in milliseconds; 0 = none.  transpile()
     * installs it as a Scheduler::DeadlineScope, and the layout search
     * polls it at trial boundaries: on expiry with >= 1 completed trial
     * the pipeline returns the best-completed result flagged
     * TranspileResult::degraded, and with nothing completed it throws
     * TranspileDeadlineExceeded.  Unset (0) is bit-identical to the
     * pre-deadline pipeline.  Excluded from the service request key
     * (deadlines are QoS, not identity) but part of fingerprint().
     */
    int deadline_ms = 0;
    /**
     * Device size above which distances are served through the sparse
     * per-row provider instead of a dense all-pairs matrix.  At the
     * default (256) every Table-I-class device stays on the historical
     * dense path — bit-identical output — while 1k+-qubit heavy-hex /
     * grid-of-grids devices allocate distance rows on demand.  Set to a
     * huge value to force dense everywhere, or 0 to force sparse (the
     * equivalence tests do both).  Note the sparse noise-aware metric
     * (per-source Dijkstra) can differ from the dense Floyd-Warshall
     * expansion by ~1 ulp per path; hop distances are bit-identical.
     */
    int sparse_distance_threshold = 256;
    /**
     * Byte budget for each sparse provider's row cache; 0 = unbounded.
     * Rows are evicted LRU-first past the budget (and recomputed on
     * next touch), bounding resident distance memory per (backend,
     * metric) at the cost of recompute.  Dense providers ignore it.
     */
    std::size_t distance_row_budget_bytes = 0;
    /**
     * RoutingOptions::region_radius passthrough: when > 0, the router's
     * extended lookahead only admits gates whose physical qubits lie
     * within this many coupling hops of the front layer.  0 (default)
     * is bit-identical to every prior release.
     */
    int region_radius = 0;

    /**
     * FNV-1a fingerprint over EVERY field above, in declaration order.
     * Part of the TranspileService result-cache key (with
     * QuantumCircuit::fingerprint() and Backend::cache_key()), so two
     * option sets share a key iff every field matches.  Deliberately
     * conservative: layout_threads, reuse_routing, and the serving
     * fields (priority, cache_ttl_seconds) are keyed too even though
     * none of them changes the transpiled output — a request that
     * differs only there misses the cache rather than risking a stale
     * answer if those contracts ever loosen.  Values are pinned
     * in tests/test_fingerprint.cc; extending this struct must extend
     * the hash (the test's field-coverage sweep catches omissions).
     */
    std::uint64_t fingerprint() const;
};

/** Transpilation output and metrics. */
struct TranspileResult
{
    QuantumCircuit circuit; ///< {rz, sx, x, cx} circuit on device wires
    std::vector<int> initial_l2p;
    std::vector<int> final_l2p;
    RoutingStats routing_stats;
    int cx_total = 0;
    int depth = 0;
    double seconds = 0.0;
    /** Wall time of the initial-layout search (within seconds).  The
     *  search scores every trial with one full-circuit routing pass, so
     *  when that pass is reused this window contains the final route. */
    double layout_seconds = 0.0;
    /** True when the winning layout trial's scoring pass was reused as
     *  the final route (kSabre + reuse_routing): the pipeline ran no
     *  separate post-search routing step. */
    bool reused_search_route = false;
    /** Full-circuit forward routing passes this call performed: one
     *  scoring pass per layout trial, plus the post-search route when
     *  it was not reused.  Reuse shows exactly one fewer pass. */
    int full_route_passes = 0;
    /** True when a deadline (TranspileOptions::deadline_ms) expired
     *  mid-search and this is the best of the trials that DID complete
     *  rather than of all requested trials.  Degraded results are
     *  correct circuits — only the racing was cut short — and are
     *  never admitted to the service result cache. */
    bool degraded = false;
    /** Layout trials that actually completed (== layout_trials unless
     *  degraded). */
    int layout_trials_consumed = 0;
};

/**
 * Full pipeline against a backend, resolving the distance matrix through
 * `cache`.  Concurrent callers sharing a cache (e.g. BatchTranspiler
 * workers) compute each backend's matrix exactly once.
 */
TranspileResult transpile(const QuantumCircuit &qc, const Backend &backend,
                          const TranspileOptions &opts, DistanceCache &cache);

/** Full pipeline through TranspileContext::global() (the process-wide
 *  DistanceCache) — a shim kept for call-site brevity; see
 *  transpile/context.h for the bundled entry point. */
TranspileResult transpile(const QuantumCircuit &qc, const Backend &backend,
                          const TranspileOptions &opts = {});

/**
 * Optimization-only baseline (full connectivity, no routing).  Honours
 * the optimization knobs of `opts` (currently opt_loop_rounds) so
 * ablations of the post-routing loop keep a comparable baseline; the
 * default options reproduce the historical behaviour exactly.  Routing
 * and seed options are irrelevant here and ignored.
 */
TranspileResult optimize_only(const QuantumCircuit &qc,
                              const TranspileOptions &opts = {});

} // namespace nassc

#endif // NASSC_TRANSPILE_TRANSPILE_H
