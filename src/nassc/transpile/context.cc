#include "nassc/transpile/context.h"

namespace nassc {

TranspileContext::TranspileContext(Config config)
    : distances_(std::move(config.distances)),
      scheduler_(std::move(config.scheduler)),
      service_options_(std::move(config.service))
{
    if (!distances_) {
        // Non-owning alias of the process-wide cache: the global cache
        // outlives every context, so an empty deleter is sound.
        distances_ = std::shared_ptr<DistanceCache>(
            std::shared_ptr<void>(), &DistanceCache::global());
    }
    service_options_.distances = distances_;
    service_options_.scheduler = scheduler_;
}

Scheduler &
TranspileContext::scheduler() const
{
    return scheduler_ ? *scheduler_ : Scheduler::shared();
}

TranspileResult
TranspileContext::transpile(const QuantumCircuit &qc, const Backend &backend,
                            const TranspileOptions &opts) const
{
    return nassc::transpile(qc, backend, opts, *distances_);
}

TranspileResult
TranspileContext::optimize_only(const QuantumCircuit &qc,
                                const TranspileOptions &opts) const
{
    return nassc::optimize_only(qc, opts);
}

TranspileService &
TranspileContext::service()
{
    std::lock_guard<std::mutex> lk(service_mu_);
    if (!service_)
        service_ = std::make_unique<TranspileService>(service_options_);
    return *service_;
}

TranspileTicket
TranspileContext::submit(const QuantumCircuit &qc,
                         std::shared_ptr<const Backend> backend,
                         const TranspileOptions &opts)
{
    return service().submit(qc, std::move(backend), opts);
}

TranspileTicket
TranspileContext::submit_qasm(const std::string &qasm,
                              std::shared_ptr<const Backend> backend,
                              const TranspileOptions &opts)
{
    return service().submit_qasm(qasm, std::move(backend), opts);
}

TranspileContext &
TranspileContext::global()
{
    static TranspileContext *ctx = new TranspileContext(Config{});
    return *ctx;
}

} // namespace nassc
