#include "nassc/transpile/transpile.h"

#include <chrono>
#include <optional>

#include "nassc/ir/fnv1a.h"
#include "nassc/obs/metrics.h"
#include "nassc/obs/trace.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/passes/cancellation.h"
#include "nassc/passes/collect_blocks.h"
#include "nassc/passes/decompose_swaps.h"
#include "nassc/passes/optimize_1q.h"
#include "nassc/route/layout_search.h"
#include "nassc/service/scheduler.h"
#include "nassc/transpile/context.h"

namespace nassc {

namespace {

/** Post-routing optimization loop (paper Fig. 2 "optimization" stage). */
void
optimization_loop(QuantumCircuit &qc, int rounds)
{
    int last_size = -1;
    for (int r = 0; r < rounds; ++r) {
        run_optimize_1q(qc, Basis1q::kZsx);
        run_commutative_cancellation_to_fixpoint(qc);
        consolidate_2q_blocks(qc, Basis1q::kZsx);
        // Consolidation can emit non-basis 1q gates; normalize.
        qc = translate_to_basis(qc);
        run_optimize_1q(qc, Basis1q::kZsx);
        int size = static_cast<int>(qc.size());
        if (size == last_size)
            break;
        last_size = size;
    }
}

} // namespace

std::uint64_t
TranspileOptions::fingerprint() const
{
    // Every field, declaration order, fixed-width encodings: the value
    // is part of the persistent cache-key contract (see header).
    Fnv1a fp;
    fp.u32(static_cast<std::uint32_t>(router));
    fp.u32(seed);
    fp.byte(noise_aware ? 1 : 0);
    fp.byte(enable_c2q ? 1 : 0);
    fp.byte(enable_commute1 ? 1 : 0);
    fp.byte(enable_commute2 ? 1 : 0);
    fp.u32(static_cast<std::uint32_t>(extended_size));
    fp.f64(extended_weight);
    fp.u32(static_cast<std::uint32_t>(layout_iterations));
    fp.u32(static_cast<std::uint32_t>(layout_trials));
    fp.u32(static_cast<std::uint32_t>(layout_threads));
    fp.u32(static_cast<std::uint32_t>(opt_loop_rounds));
    fp.byte(reuse_routing ? 1 : 0);
    fp.byte(orientation_aware_decomposition ? 1 : 0);
    fp.byte(use_decay ? 1 : 0);
    fp.u32(static_cast<std::uint32_t>(priority));
    fp.f64(cache_ttl_seconds);
    fp.u32(static_cast<std::uint32_t>(deadline_ms));
    fp.u32(static_cast<std::uint32_t>(sparse_distance_threshold));
    fp.u64(static_cast<std::uint64_t>(distance_row_budget_bytes));
    fp.u32(static_cast<std::uint32_t>(region_radius));
    return fp.value();
}

TranspileResult
transpile(const QuantumCircuit &qc, const Backend &backend,
          const TranspileOptions &opts, DistanceCache &cache)
{
    auto t0 = std::chrono::steady_clock::now();

    // Install the request budget for this thread (and, through
    // parallel_for's deadline propagation, for stolen layout trials).
    // An enclosing scope — e.g. the service worker's — still applies:
    // DeadlineScope takes the min.
    std::optional<Scheduler::DeadlineScope> budget;
    if (opts.deadline_ms > 0)
        budget.emplace(t0 + std::chrono::milliseconds(opts.deadline_ms));

    // 1. Lower to <= 2q gates.
    QuantumCircuit c = decompose_to_2q(qc);

    // 2. Pre-routing optimization: canonicalize 1q runs and 2q blocks so
    //    the router's C2q estimates see concise block unitaries.
    run_optimize_1q(c, Basis1q::kUGate);
    consolidate_2q_blocks(c, Basis1q::kUGate);

    // 3. Distances: plain hops, or the HA noise-aware variant, shared
    //    through the cache so repeat calls against one backend (and
    //    concurrent batch jobs) reuse a single computation.  Devices
    //    above the sparse threshold get a lazy per-row provider —
    //    distance memory proportional to the rows routing actually
    //    touches — while everything at or below it keeps the historical
    //    dense matrix, bit for bit.
    DistanceRequest dreq = opts.noise_aware ? DistanceRequest::noise()
                                            : DistanceRequest::hops();
    if (backend.coupling.num_qubits() > opts.sparse_distance_threshold)
        dreq = dreq.as_sparse(opts.distance_row_budget_bytes);
    SharedDistanceProvider dist_shared = [&] {
        obs::TraceSpan span("distance_resolve",
                            &obs::StackMetrics::get().distance_resolve_us);
        return cache.provider(backend, dreq);
    }();
    const DistanceProvider &dist = *dist_shared;

    // 4. Initial layout (shared between SABRE and NASSC, paper Sec. IV-A).
    RoutingOptions ropts;
    ropts.algorithm = opts.router;
    ropts.extended_size = opts.extended_size;
    ropts.extended_weight = opts.extended_weight;
    ropts.enable_c2q = opts.enable_c2q;
    ropts.enable_commute1 = opts.enable_commute1;
    ropts.enable_commute2 = opts.enable_commute2;
    ropts.use_decay = opts.use_decay;
    ropts.seed = opts.seed;
    ropts.layout_trials = opts.layout_trials;
    ropts.layout_threads = opts.layout_threads;
    ropts.reuse_routing = opts.reuse_routing;
    ropts.region_radius = opts.region_radius;

    auto tl0 = std::chrono::steady_clock::now();
    LayoutSearchResult search = [&] {
        obs::TraceSpan span("layout", &obs::StackMetrics::get().layout_us);
        return search_and_route(c, backend.coupling, dist, ropts,
                                opts.layout_iterations);
    }();
    auto tl1 = std::chrono::steady_clock::now();

    // 5. Routing.  The search scored every trial by routing the full
    //    circuit (measures/barriers included); on kSabre pipelines the
    //    winner's scoring pass used exactly `ropts`, so it IS the route
    //    and this step is skipped — bit-identical to recomputing it.
    const bool reused = search.routed.has_value();
    RoutingResult routed = [&] {
        obs::TraceSpan span("routing", &obs::StackMetrics::get().routing_us);
        return reused ? std::move(*search.routed)
                      : route_circuit(c, backend.coupling, dist,
                                      search.initial, ropts);
    }();

    QuantumCircuit phys = std::move(routed.circuit);

    // 6. SWAP handling.
    if (opts.router == RoutingAlgorithm::kNassc) {
        // Give block resynthesis a chance to absorb whole SWAPs (C2q),
        // then expand the remaining SWAPs with their orientation flags.
        consolidate_2q_blocks(phys, Basis1q::kUGate);
        decompose_swaps(phys, opts.orientation_aware_decomposition);
    } else {
        // Qiskit+SABRE: fixed decomposition at the routing step.
        decompose_swaps(phys, /*orientation_aware=*/false);
    }

    // 7. Basis translation + optimization loop.
    phys = translate_to_basis(phys);
    optimization_loop(phys, opts.opt_loop_rounds);

    auto t1 = std::chrono::steady_clock::now();

    TranspileResult res;
    res.circuit = std::move(phys);
    res.initial_l2p = std::move(routed.initial_l2p);
    res.final_l2p = std::move(routed.final_l2p);
    res.routing_stats = routed.stats;
    res.cx_total = res.circuit.cx_count();
    res.depth = res.circuit.depth();
    res.seconds = std::chrono::duration<double>(t1 - t0).count();
    res.layout_seconds = std::chrono::duration<double>(tl1 - tl0).count();
    res.reused_search_route = reused;
    res.full_route_passes = search.scoring_passes + (reused ? 0 : 1);
    res.degraded = search.deadline_hit;
    res.layout_trials_consumed = search.trials_consumed;
    return res;
}

TranspileResult
transpile(const QuantumCircuit &qc, const Backend &backend,
          const TranspileOptions &opts)
{
    // Shim over the process-wide context (transpile/context.h), so the
    // legacy overload and TranspileContext share one code path and one
    // set of caches.
    return TranspileContext::global().transpile(qc, backend, opts);
}

TranspileResult
optimize_only(const QuantumCircuit &qc, const TranspileOptions &opts)
{
    auto t0 = std::chrono::steady_clock::now();

    QuantumCircuit c = decompose_to_2q(qc);
    run_optimize_1q(c, Basis1q::kUGate);
    consolidate_2q_blocks(c, Basis1q::kUGate);
    c = translate_to_basis(c);
    // Same optimization-loop budget as the routed pipeline, so a
    // CNOT_add ablation under non-default opt_loop_rounds compares the
    // routed circuit against a baseline built with the same effort.
    optimization_loop(c, opts.opt_loop_rounds);

    auto t1 = std::chrono::steady_clock::now();

    TranspileResult res;
    res.circuit = std::move(c);
    res.initial_l2p.resize(qc.num_qubits());
    res.final_l2p.resize(qc.num_qubits());
    for (int i = 0; i < qc.num_qubits(); ++i) {
        res.initial_l2p[i] = i;
        res.final_l2p[i] = i;
    }
    res.cx_total = res.circuit.cx_count();
    res.depth = res.circuit.depth();
    res.seconds = std::chrono::duration<double>(t1 - t0).count();
    return res;
}

} // namespace nassc
