#include "nassc/math/su2.h"

#include <cmath>

namespace nassc {

EulerZyz
euler_zyz(const Mat2 &u)
{
    EulerZyz e;

    // Pull out the global phase so that the remainder is in SU(2).
    Cx d = det(u);
    double phase_half = 0.5 * std::arg(d);
    Cx inv_phase = std::exp(Cx(0.0, -phase_half));
    Mat2 v = scale(u, inv_phase);

    // v = [[ e^{-i(phi+lam)/2} cos(t/2), -e^{-i(phi-lam)/2} sin(t/2)],
    //      [ e^{ i(phi-lam)/2} sin(t/2),  e^{ i(phi+lam)/2} cos(t/2)]]
    double c = std::abs(v(0, 0));
    double s = std::abs(v(1, 0));
    e.theta = 2.0 * std::atan2(s, c);
    e.phase = phase_half;

    const double tol = 1e-12;
    if (s < tol) {
        // theta ~ 0: only phi + lam matters.
        e.phi = 2.0 * std::arg(v(1, 1));
        e.lam = 0.0;
    } else if (c < tol) {
        // theta ~ pi: only phi - lam matters.
        e.phi = 2.0 * std::arg(v(1, 0));
        e.lam = 0.0;
    } else {
        double plus = 2.0 * std::arg(v(1, 1));  // phi + lam
        double minus = 2.0 * std::arg(v(1, 0)); // phi - lam
        e.phi = 0.5 * (plus + minus);
        e.lam = 0.5 * (plus - minus);
    }
    return e;
}

Mat2
from_euler_zyz(const EulerZyz &e)
{
    Mat2 m = mul(rz_gate(e.phi), mul(ry_gate(e.theta), rz_gate(e.lam)));
    return scale(m, std::exp(Cx(0.0, e.phase)));
}

double
distance_from_identity(const Mat2 &u)
{
    // |tr(u)| = 2 exactly for scalar unitaries.
    double t = std::abs(trace(u));
    double d = 1.0 - t / 2.0;
    return d < 0.0 ? 0.0 : d;
}

} // namespace nassc
