#ifndef NASSC_MATH_EIG_H
#define NASSC_MATH_EIG_H

/**
 * @file
 * Small real-symmetric eigensolvers used by the Weyl/KAK decomposition.
 */

#include <array>

namespace nassc {

/** A 4x4 real matrix (row major) used by the eigensolver. */
using RMat4 = std::array<double, 16>;

/**
 * Jacobi eigendecomposition of a real symmetric 4x4 matrix.
 *
 * On return `vecs` holds the eigenvectors as *columns* (so that
 * A = V diag(w) V^T) and `w` the eigenvalues, sorted ascending.
 *
 * @param a     symmetric input matrix
 * @param vecs  output eigenvector matrix (orthogonal)
 * @param w     output eigenvalues
 */
void jacobi_eig_sym4(const RMat4 &a, RMat4 &vecs, std::array<double, 4> &w);

/** Determinant of a 4x4 real matrix. */
double det4(const RMat4 &a);

} // namespace nassc

#endif // NASSC_MATH_EIG_H
