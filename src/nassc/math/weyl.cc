#include "nassc/math/weyl.h"

#include <cmath>
#include <stdexcept>

#include "nassc/math/eig.h"

namespace nassc {

namespace {

const Cx kI(0.0, 1.0);
const double kPi = M_PI;
const double kPi2 = M_PI / 2.0;
const double kPi4 = M_PI / 4.0;

/** Diagonal (in the magic basis) representations of XX, YY, ZZ. */
struct MagicDiagonals
{
    std::array<double, 4> dx, dy, dz;
};

Mat4
build_magic()
{
    // Columns are the magic states; basis index (b1 << 1) | b0.
    const double s = 1.0 / std::sqrt(2.0);
    Mat4 b;
    // col 0: (|00> + |11>)/sqrt(2)
    b(0, 0) = s;
    b(3, 0) = s;
    // col 1: i(|00> - |11>)/sqrt(2)
    b(0, 1) = s * kI;
    b(3, 1) = -s * kI;
    // col 2: i(|01> + |10>)/sqrt(2)
    b(1, 2) = s * kI;
    b(2, 2) = s * kI;
    // col 3: (|01> - |10>)/sqrt(2)
    b(1, 3) = s;
    b(2, 3) = -s;
    return b;
}

const MagicDiagonals &
magic_diagonals()
{
    static const MagicDiagonals md = [] {
        MagicDiagonals r;
        const Mat4 &bm = magic_basis();
        Mat4 bd = adjoint(bm);
        auto diag_of = [&](const Mat4 &pauli2q) {
            Mat4 d = mul(bd, mul(pauli2q, bm));
            std::array<double, 4> out{};
            for (int i = 0; i < 4; ++i)
                out[i] = d(i, i).real();
            return out;
        };
        r.dx = diag_of(tensor2(pauli_x(), pauli_x()));
        r.dy = diag_of(tensor2(pauli_y(), pauli_y()));
        r.dz = diag_of(tensor2(pauli_z(), pauli_z()));
        return r;
    }();
    return md;
}

/** Off-diagonal Frobenius mass of P^T A P for real matrices. */
double
offdiag_after(const RMat4 &p, const RMat4 &a)
{
    // Compute P^T A P and accumulate off-diagonal weight.
    RMat4 ap{};
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) {
            double s = 0.0;
            for (int k = 0; k < 4; ++k)
                s += a[4 * i + k] * p[4 * k + j];
            ap[4 * i + j] = s;
        }
    double off = 0.0;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) {
            double s = 0.0;
            for (int k = 0; k < 4; ++k)
                s += p[4 * k + i] * ap[4 * k + j];
            if (i != j)
                off += s * s;
        }
    return off;
}

/** Attempt the full decomposition with blend parameter t; empty on failure. */
bool
try_decompose(const Mat4 &u, double t, Kak &out)
{
    const Mat4 &bm = magic_basis();
    Mat4 bd = adjoint(bm);

    // Normalize to SU(4).
    Cx d = det(u);
    Cx alpha = std::exp(kI * (std::arg(d) / 4.0));
    Mat4 v = scale(u, Cx(1.0, 0.0) / alpha);

    Mat4 up = mul(bd, mul(v, bm));
    Mat4 m = mul(transpose(up), up);

    RMat4 x{}, y{}, blend{};
    for (int i = 0; i < 16; ++i) {
        x[i] = m.v[i].real();
        y[i] = m.v[i].imag();
        blend[i] = x[i] + t * y[i];
    }

    RMat4 p;
    std::array<double, 4> w;
    jacobi_eig_sym4(blend, p, w);

    // P must diagonalize both X and Y simultaneously.
    if (offdiag_after(p, x) > 1e-16 || offdiag_after(p, y) > 1e-16)
        return false;

    if (det4(p) < 0.0) {
        for (int r = 0; r < 4; ++r)
            p[4 * r + 0] = -p[4 * r + 0];
    }

    // W = Up * P; column j equals e^{i theta_j} times a real vector.
    Mat4 pc;
    for (int i = 0; i < 16; ++i)
        pc.v[i] = p[i];
    Mat4 wm = mul(up, pc);

    std::array<double, 4> theta{};
    RMat4 o1{};
    for (int j = 0; j < 4; ++j) {
        int best = 0;
        double mag = 0.0;
        for (int r = 0; r < 4; ++r) {
            if (std::abs(wm(r, j)) > mag) {
                mag = std::abs(wm(r, j));
                best = r;
            }
        }
        theta[j] = std::arg(wm(best, j));
        Cx ph = std::exp(-kI * theta[j]);
        for (int r = 0; r < 4; ++r) {
            Cx e = wm(r, j) * ph;
            if (std::abs(e.imag()) > 1e-8)
                return false;
            o1[4 * r + j] = e.real();
        }
    }

    if (det4(o1) < 0.0) {
        theta[0] += kPi;
        for (int r = 0; r < 4; ++r)
            o1[4 * r + 0] = -o1[4 * r + 0];
    }

    // Coordinates from the diagonal phases.
    const MagicDiagonals &md = magic_diagonals();
    double a = 0.0, b = 0.0, c = 0.0;
    for (int j = 0; j < 4; ++j) {
        a += theta[j] * md.dx[j] / 4.0;
        b += theta[j] * md.dy[j] / 4.0;
        c += theta[j] * md.dz[j] / 4.0;
    }

    // K1 = B O1 B^dag, K2 = B P^T B^dag.
    Mat4 o1c, ptc;
    for (int r = 0; r < 4; ++r)
        for (int col = 0; col < 4; ++col) {
            o1c(r, col) = o1[4 * r + col];
            ptc(r, col) = p[4 * col + r];
        }
    Mat4 k1 = mul(bm, mul(o1c, bd));
    Mat4 k2 = mul(bm, mul(ptc, bd));

    Kak k;
    Cx ph1, ph2;
    if (!split_tensor2(k1, k.k1_0, k.k1_1, ph1, 1e-7))
        return false;
    if (!split_tensor2(k2, k.k2_0, k.k2_1, ph2, 1e-7))
        return false;
    k.a = a;
    k.b = b;
    k.c = c;

    // Determine the global phase by comparing against the input.
    Mat4 recon = mul(tensor2(k.k1_0, k.k1_1),
                     mul(canonical_gate(a, b, c), tensor2(k.k2_0, k.k2_1)));
    int bi = 0;
    double mag = 0.0;
    for (int i = 0; i < 16; ++i) {
        if (std::abs(recon.v[i]) > mag) {
            mag = std::abs(recon.v[i]);
            bi = i;
        }
    }
    if (mag < 1e-9)
        return false;
    k.phase = u.v[bi] / recon.v[bi];
    if (std::abs(std::abs(k.phase) - 1.0) > 1e-7)
        return false;
    k.phase /= std::abs(k.phase);

    if (frobenius_distance(u, scale(recon, k.phase)) > 1e-7)
        return false;

    out = k;
    return true;
}

// ---- Weyl-chamber moves ------------------------------------------------------
//
// Each move rewrites the stored (coords, locals, phase) without changing
// the reconstructed unitary.

/** coord[idx] += pi/2 (sign > 0) or -= pi/2 (sign < 0). */
void
move_shift(Kak &k, int idx, int sign)
{
    static const Mat2 paulis[3] = {pauli_x(), pauli_y(), pauli_z()};
    const Mat2 &pm = paulis[idx];
    double *coords[3] = {&k.a, &k.b, &k.c};
    *coords[idx] += sign * kPi2;
    // N(t) = N(t + pi/2) * (-i P(x)P) = N(t - pi/2) * (i P(x)P)
    k.k2_0 = mul(pm, k.k2_0);
    k.k2_1 = mul(pm, k.k2_1);
    k.phase *= (sign > 0) ? -kI : kI;
}

/** Flip the signs of coords i and j (i != j). */
void
move_flip2(Kak &k, int i, int j)
{
    // Conjugating by (P (x) I) with P the Pauli matching the *fixed* axis
    // flips the other two coordinates.
    int fixed = 3 - i - j;
    static const Mat2 paulis[3] = {pauli_x(), pauli_y(), pauli_z()};
    const Mat2 &pm = paulis[fixed];
    double *coords[3] = {&k.a, &k.b, &k.c};
    *coords[i] = -*coords[i];
    *coords[j] = -*coords[j];
    k.k1_0 = mul(k.k1_0, pm);
    k.k2_0 = mul(pm, k.k2_0);
}

/** Exchange coords i and j (i != j). */
void
move_swap2(Kak &k, int i, int j)
{
    // Conjugation cliffords: swap(a,b) via S, swap(a,c) via H,
    // swap(b,c) via Rx(pi/2).
    int lo = std::min(i, j), hi = std::max(i, j);
    Mat2 g;
    if (lo == 0 && hi == 1)
        g = s_gate();
    else if (lo == 0 && hi == 2)
        g = hadamard();
    else
        g = rx_gate(kPi2);
    Mat2 gd = adjoint(g);
    double *coords[3] = {&k.a, &k.b, &k.c};
    std::swap(*coords[i], *coords[j]);
    // N(orig) = (G^dag (x) G^dag) N(swapped) (G (x) G)
    k.k1_0 = mul(k.k1_0, gd);
    k.k1_1 = mul(k.k1_1, gd);
    k.k2_0 = mul(g, k.k2_0);
    k.k2_1 = mul(g, k.k2_1);
}

} // namespace

const Mat4 &
magic_basis()
{
    static const Mat4 b = build_magic();
    return b;
}

Mat4
canonical_gate(double a, double b, double c)
{
    const Mat4 &bm = magic_basis();
    Mat4 bd = adjoint(bm);
    const MagicDiagonals &md = magic_diagonals();
    Mat4 diag;
    for (int j = 0; j < 4; ++j) {
        double lam = a * md.dx[j] + b * md.dy[j] + c * md.dz[j];
        diag(j, j) = std::exp(kI * lam);
    }
    return mul(bm, mul(diag, bd));
}

Kak
kak_decompose(const Mat4 &u)
{
    if (!is_unitary(u, 1e-7))
        throw std::runtime_error("kak_decompose: input is not unitary");

    static const double ts[] = {1.0,       0.0,     0.6180339887, -0.4142135,
                                2.2360679, -1.3217, 0.1234567,    3.3333333,
                                -2.718281, 0.57721};
    Kak k;
    for (double t : ts) {
        if (try_decompose(u, t, k))
            return k;
    }
    throw std::runtime_error("kak_decompose: simultaneous diagonalization "
                             "failed for all blend parameters");
}

Mat4
kak_reconstruct(const Kak &k)
{
    Mat4 m = mul(tensor2(k.k1_0, k.k1_1),
                 mul(canonical_gate(k.a, k.b, k.c),
                     tensor2(k.k2_0, k.k2_1)));
    return scale(m, k.phase);
}

void
canonicalize(Kak &k)
{
    const double eps = 1e-10;
    double *coords[3] = {&k.a, &k.b, &k.c};

    // 1. Shift every coordinate into (-pi/4, pi/4].
    for (int i = 0; i < 3; ++i) {
        while (*coords[i] <= -kPi4 + eps)
            move_shift(k, i, +1);
        while (*coords[i] > kPi4 + eps)
            move_shift(k, i, -1);
    }

    // 2. Reduce the number of negative coordinates to at most one.
    {
        int negs[3], n = 0;
        for (int i = 0; i < 3; ++i)
            if (*coords[i] < -eps)
                negs[n++] = i;
        if (n >= 2)
            move_flip2(k, negs[0], negs[1]);
    }

    // 3. Sort by absolute value, descending (3-element bubble sort).
    for (int pass = 0; pass < 2; ++pass)
        for (int i = 0; i + 1 < 3 - pass; ++i)
            if (std::abs(*coords[i]) < std::abs(*coords[i + 1]) - eps)
                move_swap2(k, i, i + 1);

    // 4. If a single negative coordinate remains, move its sign onto c.
    for (int i = 0; i < 2; ++i)
        if (*coords[i] < -eps)
            move_flip2(k, i, 2);

    // 5. On the a == pi/4 boundary the classes (pi/4, b, -c) and
    //    (pi/4, b, c) coincide; normalize c >= 0 there.
    if (*coords[2] < -eps && std::abs(*coords[0] - kPi4) < 1e-9) {
        move_shift(k, 0, -1); // a -> -pi/4
        move_flip2(k, 0, 2);  // a -> pi/4, c -> -c
    }

    // Numerical hygiene: snap tiny values to zero.
    for (int i = 0; i < 3; ++i)
        if (std::abs(*coords[i]) < 1e-12)
            *coords[i] = 0.0;
}

int
cnot_cost_coords(double a, double b, double c, double tol)
{
    if (a < tol && b < tol && std::abs(c) < tol)
        return 0;
    if (std::abs(a - kPi4) < tol && b < tol && std::abs(c) < tol)
        return 1;
    if (std::abs(c) < tol)
        return 2;
    return 3;
}

int
cnot_cost(const Mat4 &u, double tol)
{
    Kak k = kak_decompose(u);
    canonicalize(k);
    return cnot_cost_coords(k.a, k.b, k.c, tol);
}

std::array<double, 3>
weyl_coords(const Mat4 &u)
{
    Kak k = kak_decompose(u);
    canonicalize(k);
    return {k.a, k.b, k.c};
}

bool
split_tensor2(const Mat4 &k, Mat2 &a0, Mat2 &a1, Cx &phase, double tol)
{
    // Block (r1, c1) of K equals a1(r1, c1) * a0.
    int br = 0, bc = 0;
    double best = -1.0;
    for (int r1 = 0; r1 < 2; ++r1) {
        for (int c1 = 0; c1 < 2; ++c1) {
            double nrm = 0.0;
            for (int r0 = 0; r0 < 2; ++r0)
                for (int c0 = 0; c0 < 2; ++c0)
                    nrm += std::norm(k((r1 << 1) | r0, (c1 << 1) | c0));
            if (nrm > best) {
                best = nrm;
                br = r1;
                bc = c1;
            }
        }
    }
    if (best < tol)
        return false;

    Mat2 a0_raw;
    for (int r0 = 0; r0 < 2; ++r0)
        for (int c0 = 0; c0 < 2; ++c0)
            a0_raw(r0, c0) = k((br << 1) | r0, (bc << 1) | c0);

    // a1_raw(r1, c1) = <a0_raw, block(r1, c1)> / |a0_raw|^2.
    double a0n = 0.0;
    for (int i = 0; i < 4; ++i)
        a0n += std::norm(a0_raw.v[i]);
    Mat2 a1_raw;
    for (int r1 = 0; r1 < 2; ++r1) {
        for (int c1 = 0; c1 < 2; ++c1) {
            Cx ip = 0.0;
            for (int r0 = 0; r0 < 2; ++r0)
                for (int c0 = 0; c0 < 2; ++c0)
                    ip += std::conj(a0_raw(r0, c0)) *
                          k((r1 << 1) | r0, (c1 << 1) | c0);
            a1_raw(r1, c1) = ip / a0n;
        }
    }

    // Normalize both factors into SU(2).
    Cx d0 = det(a0_raw);
    Cx d1 = det(a1_raw);
    if (std::abs(d0) < tol || std::abs(d1) < tol)
        return false;
    Cx s0 = std::sqrt(d0);
    Cx s1 = std::sqrt(d1);
    a0 = scale(a0_raw, Cx(1.0, 0.0) / s0);
    a1 = scale(a1_raw, Cx(1.0, 0.0) / s1);

    Mat4 recon = tensor2(a0, a1);
    int bi = 0;
    double mag = 0.0;
    for (int i = 0; i < 16; ++i) {
        if (std::abs(recon.v[i]) > mag) {
            mag = std::abs(recon.v[i]);
            bi = i;
        }
    }
    if (mag < tol)
        return false;
    phase = k.v[bi] / recon.v[bi];
    if (std::abs(std::abs(phase) - 1.0) > 1e-6)
        return false;
    phase /= std::abs(phase);
    return frobenius_distance(k, scale(recon, phase)) < std::max(tol, 1e-7);
}

} // namespace nassc
