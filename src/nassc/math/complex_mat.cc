#include "nassc/math/complex_mat.h"

#include <cmath>
#include <sstream>

namespace nassc {

namespace {

const Cx kI(0.0, 1.0);

} // namespace

// ---- Mat2 ------------------------------------------------------------------

Mat2
Mat2::identity()
{
    Mat2 m;
    m(0, 0) = 1.0;
    m(1, 1) = 1.0;
    return m;
}

Mat2
Mat2::zero()
{
    return Mat2{};
}

Mat2
mul(const Mat2 &a, const Mat2 &b)
{
    Mat2 r;
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
            Cx s = 0.0;
            for (int k = 0; k < 2; ++k)
                s += a(i, k) * b(k, j);
            r(i, j) = s;
        }
    }
    return r;
}

Mat2
add(const Mat2 &a, const Mat2 &b)
{
    Mat2 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = a.v[i] + b.v[i];
    return r;
}

Mat2
scale(const Mat2 &a, Cx s)
{
    Mat2 r;
    for (int i = 0; i < 4; ++i)
        r.v[i] = a.v[i] * s;
    return r;
}

Mat2
adjoint(const Mat2 &a)
{
    Mat2 r;
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            r(i, j) = std::conj(a(j, i));
    return r;
}

Cx
det(const Mat2 &a)
{
    return a(0, 0) * a(1, 1) - a(0, 1) * a(1, 0);
}

Cx
trace(const Mat2 &a)
{
    return a(0, 0) + a(1, 1);
}

double
frobenius_distance(const Mat2 &a, const Mat2 &b)
{
    double s = 0.0;
    for (int i = 0; i < 4; ++i)
        s += std::norm(a.v[i] - b.v[i]);
    return std::sqrt(s);
}

bool
approx_equal(const Mat2 &a, const Mat2 &b, double tol)
{
    return frobenius_distance(a, b) < tol;
}

bool
equal_up_to_phase(const Mat2 &a, const Mat2 &b, double tol)
{
    // Find the largest entry of b and align phases on it.
    int best = 0;
    double mag = 0.0;
    for (int i = 0; i < 4; ++i) {
        if (std::abs(b.v[i]) > mag) {
            mag = std::abs(b.v[i]);
            best = i;
        }
    }
    if (mag < tol)
        return frobenius_distance(a, b) < tol;
    Cx phase = a.v[best] / b.v[best];
    double p = std::abs(phase);
    if (std::abs(p - 1.0) > tol)
        return false;
    phase /= p;
    return frobenius_distance(a, scale(b, phase)) < tol;
}

bool
is_unitary(const Mat2 &a, double tol)
{
    return approx_equal(mul(adjoint(a), a), Mat2::identity(), tol);
}

std::string
to_string(const Mat2 &a)
{
    std::ostringstream os;
    for (int i = 0; i < 2; ++i) {
        os << "[";
        for (int j = 0; j < 2; ++j)
            os << a(i, j) << (j == 1 ? "]\n" : ", ");
    }
    return os.str();
}

// ---- Mat4 ------------------------------------------------------------------

Mat4
Mat4::identity()
{
    Mat4 m;
    for (int i = 0; i < 4; ++i)
        m(i, i) = 1.0;
    return m;
}

Mat4
Mat4::zero()
{
    return Mat4{};
}

Mat4
mul(const Mat4 &a, const Mat4 &b)
{
    Mat4 r;
    for (int i = 0; i < 4; ++i) {
        for (int k = 0; k < 4; ++k) {
            Cx aik = a(i, k);
            if (aik == Cx(0.0, 0.0))
                continue;
            for (int j = 0; j < 4; ++j)
                r(i, j) += aik * b(k, j);
        }
    }
    return r;
}

Mat4
add(const Mat4 &a, const Mat4 &b)
{
    Mat4 r;
    for (int i = 0; i < 16; ++i)
        r.v[i] = a.v[i] + b.v[i];
    return r;
}

Mat4
scale(const Mat4 &a, Cx s)
{
    Mat4 r;
    for (int i = 0; i < 16; ++i)
        r.v[i] = a.v[i] * s;
    return r;
}

Mat4
adjoint(const Mat4 &a)
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            r(i, j) = std::conj(a(j, i));
    return r;
}

Mat4
transpose(const Mat4 &a)
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            r(i, j) = a(j, i);
    return r;
}

Cx
det(const Mat4 &a)
{
    // Gaussian elimination with partial pivoting on a copy.
    Mat4 m = a;
    Cx d = 1.0;
    for (int col = 0; col < 4; ++col) {
        int piv = col;
        double best = std::abs(m(col, col));
        for (int r = col + 1; r < 4; ++r) {
            if (std::abs(m(r, col)) > best) {
                best = std::abs(m(r, col));
                piv = r;
            }
        }
        if (best == 0.0)
            return 0.0;
        if (piv != col) {
            for (int c = 0; c < 4; ++c)
                std::swap(m(piv, c), m(col, c));
            d = -d;
        }
        d *= m(col, col);
        for (int r = col + 1; r < 4; ++r) {
            Cx f = m(r, col) / m(col, col);
            for (int c = col; c < 4; ++c)
                m(r, c) -= f * m(col, c);
        }
    }
    return d;
}

Cx
trace(const Mat4 &a)
{
    return a(0, 0) + a(1, 1) + a(2, 2) + a(3, 3);
}

double
frobenius_distance(const Mat4 &a, const Mat4 &b)
{
    double s = 0.0;
    for (int i = 0; i < 16; ++i)
        s += std::norm(a.v[i] - b.v[i]);
    return std::sqrt(s);
}

bool
approx_equal(const Mat4 &a, const Mat4 &b, double tol)
{
    return frobenius_distance(a, b) < tol;
}

bool
equal_up_to_phase(const Mat4 &a, const Mat4 &b, double tol)
{
    int best = 0;
    double mag = 0.0;
    for (int i = 0; i < 16; ++i) {
        if (std::abs(b.v[i]) > mag) {
            mag = std::abs(b.v[i]);
            best = i;
        }
    }
    if (mag < tol)
        return frobenius_distance(a, b) < tol;
    Cx phase = a.v[best] / b.v[best];
    double p = std::abs(phase);
    if (std::abs(p - 1.0) > tol)
        return false;
    phase /= p;
    return frobenius_distance(a, scale(b, phase)) < tol;
}

bool
is_unitary(const Mat4 &a, double tol)
{
    return approx_equal(mul(adjoint(a), a), Mat4::identity(), tol);
}

std::string
to_string(const Mat4 &a)
{
    std::ostringstream os;
    for (int i = 0; i < 4; ++i) {
        os << "[";
        for (int j = 0; j < 4; ++j)
            os << a(i, j) << (j == 3 ? "]\n" : ", ");
    }
    return os.str();
}

Mat4
tensor2(const Mat2 &a, const Mat2 &b)
{
    // Row index (r1 << 1) | r0; `a` acts on bit 0, `b` on bit 1.
    Mat4 m;
    for (int r1 = 0; r1 < 2; ++r1)
        for (int r0 = 0; r0 < 2; ++r0)
            for (int c1 = 0; c1 < 2; ++c1)
                for (int c0 = 0; c0 < 2; ++c0)
                    m((r1 << 1) | r0, (c1 << 1) | c0) = b(r1, c1) * a(r0, c0);
    return m;
}

// ---- MatN ------------------------------------------------------------------

MatN
MatN::identity(int dim)
{
    MatN m(dim);
    for (int i = 0; i < dim; ++i)
        m(i, i) = 1.0;
    return m;
}

MatN
mul(const MatN &a, const MatN &b)
{
    int n = a.dim();
    MatN r(n);
    for (int i = 0; i < n; ++i) {
        for (int k = 0; k < n; ++k) {
            Cx aik = a(i, k);
            if (aik == Cx(0.0, 0.0))
                continue;
            for (int j = 0; j < n; ++j)
                r(i, j) += aik * b(k, j);
        }
    }
    return r;
}

MatN
adjoint(const MatN &a)
{
    int n = a.dim();
    MatN r(n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            r(i, j) = std::conj(a(j, i));
    return r;
}

double
frobenius_distance(const MatN &a, const MatN &b)
{
    double s = 0.0;
    int n = a.dim();
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            s += std::norm(a(i, j) - b(i, j));
    return std::sqrt(s);
}

bool
equal_up_to_phase(const MatN &a, const MatN &b, double tol)
{
    int n = a.dim();
    if (b.dim() != n)
        return false;
    int br = 0, bc = 0;
    double mag = 0.0;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            if (std::abs(b(i, j)) > mag) {
                mag = std::abs(b(i, j));
                br = i;
                bc = j;
            }
        }
    }
    if (mag < tol)
        return frobenius_distance(a, b) < tol;
    Cx phase = a(br, bc) / b(br, bc);
    double p = std::abs(phase);
    if (std::abs(p - 1.0) > tol * 10)
        return false;
    phase /= p;
    double s = 0.0;
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            s += std::norm(a(i, j) - phase * b(i, j));
    return std::sqrt(s) < tol * n;
}

bool
is_unitary(const MatN &a, double tol)
{
    MatN p = mul(adjoint(a), a);
    return frobenius_distance(p, MatN::identity(a.dim())) < tol * a.dim();
}

// ---- constants ---------------------------------------------------------------

Mat2
pauli_i()
{
    return Mat2::identity();
}

Mat2
pauli_x()
{
    Mat2 m;
    m(0, 1) = 1.0;
    m(1, 0) = 1.0;
    return m;
}

Mat2
pauli_y()
{
    Mat2 m;
    m(0, 1) = -kI;
    m(1, 0) = kI;
    return m;
}

Mat2
pauli_z()
{
    Mat2 m;
    m(0, 0) = 1.0;
    m(1, 1) = -1.0;
    return m;
}

Mat2
hadamard()
{
    const double s = 1.0 / std::sqrt(2.0);
    Mat2 m;
    m(0, 0) = s;
    m(0, 1) = s;
    m(1, 0) = s;
    m(1, 1) = -s;
    return m;
}

Mat2
s_gate()
{
    Mat2 m;
    m(0, 0) = 1.0;
    m(1, 1) = kI;
    return m;
}

Mat2
sdg_gate()
{
    Mat2 m;
    m(0, 0) = 1.0;
    m(1, 1) = -kI;
    return m;
}

Mat2
sx_gate()
{
    Mat2 m;
    m(0, 0) = Cx(0.5, 0.5);
    m(0, 1) = Cx(0.5, -0.5);
    m(1, 0) = Cx(0.5, -0.5);
    m(1, 1) = Cx(0.5, 0.5);
    return m;
}

Mat2
sxdg_gate()
{
    return adjoint(sx_gate());
}

Mat2
t_gate()
{
    Mat2 m;
    m(0, 0) = 1.0;
    m(1, 1) = std::exp(kI * (M_PI / 4.0));
    return m;
}

Mat2
tdg_gate()
{
    return adjoint(t_gate());
}

Mat2
rx_gate(double theta)
{
    Mat2 m;
    m(0, 0) = std::cos(theta / 2.0);
    m(0, 1) = -kI * std::sin(theta / 2.0);
    m(1, 0) = -kI * std::sin(theta / 2.0);
    m(1, 1) = std::cos(theta / 2.0);
    return m;
}

Mat2
ry_gate(double theta)
{
    Mat2 m;
    m(0, 0) = std::cos(theta / 2.0);
    m(0, 1) = -std::sin(theta / 2.0);
    m(1, 0) = std::sin(theta / 2.0);
    m(1, 1) = std::cos(theta / 2.0);
    return m;
}

Mat2
rz_gate(double theta)
{
    Mat2 m;
    m(0, 0) = std::exp(-kI * (theta / 2.0));
    m(1, 1) = std::exp(kI * (theta / 2.0));
    return m;
}

Mat2
phase_gate(double lambda)
{
    Mat2 m;
    m(0, 0) = 1.0;
    m(1, 1) = std::exp(kI * lambda);
    return m;
}

Mat2
u3_gate(double theta, double phi, double lambda)
{
    Mat2 m;
    m(0, 0) = std::cos(theta / 2.0);
    m(0, 1) = -std::exp(kI * lambda) * std::sin(theta / 2.0);
    m(1, 0) = std::exp(kI * phi) * std::sin(theta / 2.0);
    m(1, 1) = std::exp(kI * (phi + lambda)) * std::cos(theta / 2.0);
    return m;
}

Mat4
cx_mat()
{
    // Control = bit 0, target = bit 1: |c t> -> |c, t ^ c>.
    // Basis index (t << 1) | c.
    Mat4 m;
    m(0, 0) = 1.0;
    m(2, 2) = 1.0;
    m(3, 1) = 1.0;
    m(1, 3) = 1.0;
    return m;
}

Mat4
cx_rev_mat()
{
    // Control = bit 1, target = bit 0.
    Mat4 m;
    m(0, 0) = 1.0;
    m(1, 1) = 1.0;
    m(3, 2) = 1.0;
    m(2, 3) = 1.0;
    return m;
}

Mat4
cz_mat()
{
    Mat4 m = Mat4::identity();
    m(3, 3) = -1.0;
    return m;
}

Mat4
swap_mat()
{
    Mat4 m;
    m(0, 0) = 1.0;
    m(1, 2) = 1.0;
    m(2, 1) = 1.0;
    m(3, 3) = 1.0;
    return m;
}

Mat4
iswap_mat()
{
    Mat4 m;
    m(0, 0) = 1.0;
    m(1, 2) = kI;
    m(2, 1) = kI;
    m(3, 3) = 1.0;
    return m;
}

} // namespace nassc
