#ifndef NASSC_MATH_SU2_H
#define NASSC_MATH_SU2_H

/**
 * @file
 * Single-qubit (2x2 unitary) decompositions.
 */

#include "nassc/math/complex_mat.h"

namespace nassc {

/**
 * ZYZ Euler angles of a 2x2 unitary:
 *   U = exp(i * phase) * Rz(phi) * Ry(theta) * Rz(lam)
 */
struct EulerZyz
{
    double theta = 0.0;
    double phi = 0.0;
    double lam = 0.0;
    double phase = 0.0;
};

/** Decompose an arbitrary 2x2 unitary into ZYZ Euler angles. */
EulerZyz euler_zyz(const Mat2 &u);

/** Rebuild the unitary from its Euler angles (inverse of euler_zyz). */
Mat2 from_euler_zyz(const EulerZyz &e);

/**
 * Distance of a 2x2 unitary from the identity, ignoring global phase.
 * Returns 0 exactly when u is a scalar multiple of I.
 */
double distance_from_identity(const Mat2 &u);

} // namespace nassc

#endif // NASSC_MATH_SU2_H
