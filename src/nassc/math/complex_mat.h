#ifndef NASSC_MATH_COMPLEX_MAT_H
#define NASSC_MATH_COMPLEX_MAT_H

/**
 * @file
 * Small dense complex matrices used throughout the compiler.
 *
 * Mat2 and Mat4 are fixed-size row-major matrices over
 * std::complex<double>; MatN is a dynamically sized square matrix used by
 * the simulator and the verification utilities.
 *
 * Index convention for two-qubit operators: the basis state |b1 b0> of a
 * gate acting on ordered operands (q0, q1) has index (b1 << 1) | b0, i.e.
 * the gate's *first* operand is the least significant bit.  tensor2(a, b)
 * builds the 4x4 operator with `a` acting on the first operand and `b` on
 * the second.
 */

#include <array>
#include <complex>
#include <cstddef>
#include <string>
#include <vector>

namespace nassc {

using Cx = std::complex<double>;

/** A 2x2 complex matrix (row major). */
struct Mat2
{
    std::array<Cx, 4> v{};

    Cx &operator()(int r, int c) { return v[2 * r + c]; }
    const Cx &operator()(int r, int c) const { return v[2 * r + c]; }

    static Mat2 identity();
    static Mat2 zero();
};

/** A 4x4 complex matrix (row major). */
struct Mat4
{
    std::array<Cx, 16> v{};

    Cx &operator()(int r, int c) { return v[4 * r + c]; }
    const Cx &operator()(int r, int c) const { return v[4 * r + c]; }

    static Mat4 identity();
    static Mat4 zero();
};

/** A dynamically sized dense square complex matrix (row major). */
class MatN
{
  public:
    MatN() = default;
    explicit MatN(int dim) : dim_(dim), v_(static_cast<size_t>(dim) * dim) {}

    int dim() const { return dim_; }
    Cx &operator()(int r, int c) { return v_[static_cast<size_t>(r) * dim_ + c]; }
    const Cx &operator()(int r, int c) const
    {
        return v_[static_cast<size_t>(r) * dim_ + c];
    }

    static MatN identity(int dim);

  private:
    int dim_ = 0;
    std::vector<Cx> v_;
};

// ---- Mat2 operations -----------------------------------------------------

Mat2 mul(const Mat2 &a, const Mat2 &b);
Mat2 add(const Mat2 &a, const Mat2 &b);
Mat2 scale(const Mat2 &a, Cx s);
Mat2 adjoint(const Mat2 &a);
Cx det(const Mat2 &a);
Cx trace(const Mat2 &a);
double frobenius_distance(const Mat2 &a, const Mat2 &b);
bool approx_equal(const Mat2 &a, const Mat2 &b, double tol = 1e-9);
/** True if a == phase * b for some unit scalar phase. */
bool equal_up_to_phase(const Mat2 &a, const Mat2 &b, double tol = 1e-9);
bool is_unitary(const Mat2 &a, double tol = 1e-9);
std::string to_string(const Mat2 &a);

// ---- Mat4 operations -----------------------------------------------------

Mat4 mul(const Mat4 &a, const Mat4 &b);
Mat4 add(const Mat4 &a, const Mat4 &b);
Mat4 scale(const Mat4 &a, Cx s);
Mat4 adjoint(const Mat4 &a);
Mat4 transpose(const Mat4 &a);
Cx det(const Mat4 &a);
Cx trace(const Mat4 &a);
double frobenius_distance(const Mat4 &a, const Mat4 &b);
bool approx_equal(const Mat4 &a, const Mat4 &b, double tol = 1e-9);
/** True if a == phase * b for some unit scalar phase. */
bool equal_up_to_phase(const Mat4 &a, const Mat4 &b, double tol = 1e-9);
bool is_unitary(const Mat4 &a, double tol = 1e-9);
std::string to_string(const Mat4 &a);

/**
 * Tensor product with this library's operand convention: `a` acts on the
 * first (least significant) operand and `b` on the second.
 */
Mat4 tensor2(const Mat2 &a, const Mat2 &b);

// ---- MatN operations -------------------------------------------------------

MatN mul(const MatN &a, const MatN &b);
MatN adjoint(const MatN &a);
double frobenius_distance(const MatN &a, const MatN &b);
bool equal_up_to_phase(const MatN &a, const MatN &b, double tol = 1e-8);
bool is_unitary(const MatN &a, double tol = 1e-8);

// ---- Pauli / Clifford constants -------------------------------------------

/** @name Standard single-qubit constant matrices. @{ */
Mat2 pauli_i();
Mat2 pauli_x();
Mat2 pauli_y();
Mat2 pauli_z();
Mat2 hadamard();
Mat2 s_gate();
Mat2 sdg_gate();
Mat2 sx_gate();
Mat2 sxdg_gate();
Mat2 t_gate();
Mat2 tdg_gate();
Mat2 rx_gate(double theta);
Mat2 ry_gate(double theta);
Mat2 rz_gate(double theta);
Mat2 phase_gate(double lambda);
/** U(theta, phi, lambda) = Rz(phi) Ry(theta) Rz(lambda) up to global phase
 *  using the OpenQASM u3 convention (u3(t,p,l)[0][0] = cos(t/2)). */
Mat2 u3_gate(double theta, double phi, double lambda);
/** @} */

/** CX with control = first operand (bit 0), target = second operand. */
Mat4 cx_mat();
/** CX with control = second operand, target = first operand. */
Mat4 cx_rev_mat();
Mat4 cz_mat();
Mat4 swap_mat();
Mat4 iswap_mat();

} // namespace nassc

#endif // NASSC_MATH_COMPLEX_MAT_H
