#include "nassc/math/eig.h"

#include <algorithm>
#include <cmath>

namespace nassc {

namespace {

inline double &
at(RMat4 &m, int r, int c)
{
    return m[4 * r + c];
}

inline double
at(const RMat4 &m, int r, int c)
{
    return m[4 * r + c];
}

} // namespace

void
jacobi_eig_sym4(const RMat4 &a, RMat4 &vecs, std::array<double, 4> &w)
{
    RMat4 m = a;
    // Initialize eigenvector accumulator to identity.
    vecs.fill(0.0);
    for (int i = 0; i < 4; ++i)
        at(vecs, i, i) = 1.0;

    const int max_sweeps = 64;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (int r = 0; r < 4; ++r)
            for (int c = r + 1; c < 4; ++c)
                off += at(m, r, c) * at(m, r, c);
        if (off < 1e-26)
            break;

        for (int p = 0; p < 4; ++p) {
            for (int q = p + 1; q < 4; ++q) {
                double apq = at(m, p, q);
                if (std::abs(apq) < 1e-300)
                    continue;
                double app = at(m, p, p);
                double aqq = at(m, q, q);
                double tau = (aqq - app) / (2.0 * apq);
                double t = (tau >= 0.0)
                    ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                    : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
                double c = 1.0 / std::sqrt(1.0 + t * t);
                double s = t * c;

                // Apply rotation: m <- J^T m J with J affecting rows/cols p,q.
                for (int k = 0; k < 4; ++k) {
                    double mkp = at(m, k, p);
                    double mkq = at(m, k, q);
                    at(m, k, p) = c * mkp - s * mkq;
                    at(m, k, q) = s * mkp + c * mkq;
                }
                for (int k = 0; k < 4; ++k) {
                    double mpk = at(m, p, k);
                    double mqk = at(m, q, k);
                    at(m, p, k) = c * mpk - s * mqk;
                    at(m, q, k) = s * mpk + c * mqk;
                }
                for (int k = 0; k < 4; ++k) {
                    double vkp = at(vecs, k, p);
                    double vkq = at(vecs, k, q);
                    at(vecs, k, p) = c * vkp - s * vkq;
                    at(vecs, k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort eigenvalues ascending, permuting columns of vecs.
    std::array<int, 4> order = {0, 1, 2, 3};
    std::array<double, 4> diag;
    for (int i = 0; i < 4; ++i)
        diag[i] = at(m, i, i);
    std::sort(order.begin(), order.end(),
              [&](int x, int y) { return diag[x] < diag[y]; });

    RMat4 sorted_vecs;
    for (int i = 0; i < 4; ++i) {
        w[i] = diag[order[i]];
        for (int r = 0; r < 4; ++r)
            at(sorted_vecs, r, i) = at(vecs, r, order[i]);
    }
    vecs = sorted_vecs;
}

double
det4(const RMat4 &a)
{
    RMat4 m = a;
    double d = 1.0;
    for (int col = 0; col < 4; ++col) {
        int piv = col;
        double best = std::abs(at(m, col, col));
        for (int r = col + 1; r < 4; ++r) {
            if (std::abs(at(m, r, col)) > best) {
                best = std::abs(at(m, r, col));
                piv = r;
            }
        }
        if (best == 0.0)
            return 0.0;
        if (piv != col) {
            for (int c = 0; c < 4; ++c)
                std::swap(at(m, piv, c), at(m, col, c));
            d = -d;
        }
        d *= at(m, col, col);
        for (int r = col + 1; r < 4; ++r) {
            double f = at(m, r, col) / at(m, col, col);
            for (int c = col; c < 4; ++c)
                at(m, r, c) -= f * at(m, col, c);
        }
    }
    return d;
}

} // namespace nassc
