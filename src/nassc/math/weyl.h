#ifndef NASSC_MATH_WEYL_H
#define NASSC_MATH_WEYL_H

/**
 * @file
 * Weyl-chamber (KAK / Cartan) decomposition of two-qubit unitaries.
 *
 * Any U in U(4) factors as
 *
 *   U = phase * (k1_0 (x) k1_1) * N(a, b, c) * (k2_0 (x) k2_1)
 *
 * with N(a, b, c) = exp(i (a XX + b YY + c ZZ)) the canonical gate and
 * k*_0 / k*_1 single-qubit unitaries acting on the first/second operand.
 * After canonicalize() the coordinates satisfy the Weyl-chamber conditions
 *
 *   pi/4 >= a >= b >= |c|,  a, b >= 0,  and c >= 0 whenever a == pi/4,
 *
 * which makes the minimal CNOT count of U a direct function of (a, b, c):
 * 0 CNOTs at the origin, 1 at (pi/4, 0, 0), 2 whenever c == 0, else 3
 * [Vidal & Dawson '04; Shende, Bullock & Markov '04].
 *
 * This is the engine behind two-qubit block resynthesis and the C2q term
 * of the NASSC routing cost function.
 */

#include "nassc/math/complex_mat.h"

namespace nassc {

/** Result of the KAK decomposition. */
struct Kak
{
    Mat2 k1_0; ///< left local on operand 0 (applied after the canonical gate)
    Mat2 k1_1; ///< left local on operand 1
    Mat2 k2_0; ///< right local on operand 0 (applied before the canonical gate)
    Mat2 k2_1; ///< right local on operand 1
    double a = 0.0, b = 0.0, c = 0.0; ///< canonical (Weyl) coordinates
    Cx phase = 1.0;                   ///< global phase
};

/** The magic (Bell-like) basis change matrix. */
const Mat4 &magic_basis();

/** The canonical two-qubit gate N(a,b,c) = exp(i(a XX + b YY + c ZZ)). */
Mat4 canonical_gate(double a, double b, double c);

/**
 * KAK-decompose a two-qubit unitary.  The returned coordinates are *raw*
 * (not yet reduced into the Weyl chamber); call canonicalize() for
 * chamber-normalized coordinates.
 *
 * @throws std::runtime_error if u is not unitary or the decomposition
 *         cannot be verified numerically.
 */
Kak kak_decompose(const Mat4 &u);

/**
 * Reduce the coordinates of a KAK decomposition into the Weyl chamber,
 * updating the local factors and phase so the reconstruction is unchanged.
 */
void canonicalize(Kak &k);

/** Rebuild the 4x4 unitary from its KAK factors. */
Mat4 kak_reconstruct(const Kak &k);

/**
 * Minimal number of CNOT gates needed to implement a unitary with the
 * given *chamber-canonical* coordinates.
 */
int cnot_cost_coords(double a, double b, double c, double tol = 1e-7);

/** Minimal number of CNOTs needed to implement u exactly. */
int cnot_cost(const Mat4 &u, double tol = 1e-7);

/** Chamber-canonical Weyl coordinates of u. */
std::array<double, 3> weyl_coords(const Mat4 &u);

/**
 * Split a (phase times) tensor-product unitary K = phase * (a0 (x) a1)
 * into its SU(2) factors.
 *
 * @return false if K is not a tensor product within tol.
 */
bool split_tensor2(const Mat4 &k, Mat2 &a0, Mat2 &a1, Cx &phase,
                   double tol = 1e-8);

} // namespace nassc

#endif // NASSC_MATH_WEYL_H
