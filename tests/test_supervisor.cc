// Supervisor tests (serve/supervisor.h):
//
//  (a) RestartTracker — the pure backoff/flap state machine driven by
//      a fake millisecond clock: exponential delays with upper-half
//      jitter, the stable-uptime reset, and the flap circuit breaker
//      (K crashes in T ms -> quarantine cooldown + clean slate);
//  (b) the abort() failpoint action — grammar parse plus an actual
//      EXPECT_DEATH that the armed site calls std::abort();
//  (c) Supervisor process supervision against real /bin/sh children:
//      SIGCHLD reap + restart with a NEW pid after kill -9,
//      first_spawn_env visible to generation 0 only (restarts get the
//      scrubbed environment), hang-kills from failing health checks,
//      and graceful SIGTERM stop.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "nassc/serve/supervisor.h"
#include "nassc/service/failpoint.h"

namespace nassc {
namespace {

bool
spin_until(const std::function<bool()> &pred)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

std::string
tmp_file(const std::string &suffix)
{
    return "/tmp/nassc_supervisor_" + std::to_string(::getpid()) + "_" +
           suffix;
}

// ------------------------------------------------------ RestartTracker

TEST(RestartTracker, BackoffDoublesWithUpperHalfJitter)
{
    RestartPolicy policy;
    policy.base_backoff_ms = 100;
    policy.max_backoff_ms = 1600;
    policy.flap_count = 0; // breaker off: isolate the backoff schedule
    policy.stable_ms = 1000000;
    RestartTracker tracker(policy);

    // Crash-loop with a fake clock that never reaches stable uptime:
    // expected raw delays 100, 200, 400, ..., capped at 1600; jitter
    // keeps each draw inside [exp/2, exp].
    std::int64_t now = 0;
    long expected = 100;
    for (int k = 0; k < 8; ++k) {
        tracker.on_spawn(now);
        now += 10;
        const std::int64_t delay = tracker.on_exit(now);
        EXPECT_GE(delay, expected / 2) << "crash " << k;
        EXPECT_LE(delay, expected) << "crash " << k;
        now += delay;
        expected = std::min<long>(expected * 2, policy.max_backoff_ms);
    }
    EXPECT_EQ(tracker.restarts(), 8u);
    EXPECT_EQ(tracker.quarantines(), 0u);
}

TEST(RestartTracker, JitterStreamsDecorrelateBySeed)
{
    RestartPolicy a;
    a.flap_count = 0;
    RestartPolicy b = a;
    a.jitter_seed = 1;
    b.jitter_seed = 7920; // the per-shard offset start() applies
    RestartTracker ta(a);
    RestartTracker tb(b);
    int differed = 0;
    std::int64_t now = 0;
    for (int k = 0; k < 8; ++k) {
        ta.on_spawn(now);
        tb.on_spawn(now);
        now += 5;
        if (ta.on_exit(now) != tb.on_exit(now))
            ++differed;
        now += 10000; // irrelevant: stable_ms is 10000, uptime is 5
    }
    EXPECT_GT(differed, 0);
}

TEST(RestartTracker, StableUptimeResetsTheExponent)
{
    RestartPolicy policy;
    policy.base_backoff_ms = 100;
    policy.max_backoff_ms = 5000;
    policy.flap_count = 0;
    policy.stable_ms = 10000;
    RestartTracker tracker(policy);

    // Ratchet the exponent up with three quick crashes...
    std::int64_t now = 0;
    std::int64_t delay = 0;
    for (int k = 0; k < 3; ++k) {
        tracker.on_spawn(now);
        now += 10;
        delay = tracker.on_exit(now);
        now += delay;
    }
    EXPECT_GE(delay, 200); // third crash: exp=400, jitter >= 200

    // ...then run stable for stable_ms: the next crash is forgiven and
    // pays only the base delay again.
    tracker.on_spawn(now);
    now += policy.stable_ms + 1;
    delay = tracker.on_exit(now);
    EXPECT_GE(delay, 50);
    EXPECT_LE(delay, 100);
    EXPECT_EQ(tracker.flap_level(), 1); // the window was cleared too
}

TEST(RestartTracker, FlapBreakerQuarantinesAndGivesACleanSlate)
{
    RestartPolicy policy;
    policy.base_backoff_ms = 10;
    policy.max_backoff_ms = 100;
    policy.flap_count = 3;
    policy.flap_window_ms = 10000;
    policy.quarantine_ms = 3000;
    policy.stable_ms = 1000000;
    RestartTracker tracker(policy);

    std::int64_t now = 0;
    std::int64_t delay = 0;
    for (int k = 0; k < 3; ++k) {
        tracker.on_spawn(now);
        now += 5;
        delay = tracker.on_exit(now);
        now += delay;
    }
    // The third exit inside the window trips the breaker: the delay IS
    // the quarantine cooldown (no jitter — it is a policy, not a race).
    EXPECT_EQ(delay, policy.quarantine_ms);
    EXPECT_EQ(tracker.quarantines(), 1u);
    EXPECT_EQ(tracker.flap_level(), 0); // clean slate

    // After quarantine the shard starts over at base backoff.
    tracker.on_spawn(now);
    now += 5;
    delay = tracker.on_exit(now);
    EXPECT_LE(delay, policy.base_backoff_ms);

    // Exits spaced WIDER than the window never trip it.
    RestartTracker spaced(policy);
    now = 0;
    for (int k = 0; k < 6; ++k) {
        spaced.on_spawn(now);
        now += policy.flap_window_ms + 1;
        spaced.on_exit(now);
    }
    EXPECT_EQ(spaced.quarantines(), 0u);
}

// ------------------------------------------------- abort() failpoint

TEST(FailpointAbort, GrammarParsesAndCountsDown)
{
    failpoint::ScopedFailpoint fp("test.abort_parse", "1*abort()");
    // eval() REPORTS the action without executing it (only hit()
    // aborts), so the grammar is assertable without dying.
    const failpoint::Hit h = failpoint::eval("test.abort_parse");
    EXPECT_EQ(h.kind, failpoint::Hit::Kind::kAbort);
    // The single charge is consumed: the site is disarmed again.
    EXPECT_EQ(failpoint::eval("test.abort_parse").kind,
              failpoint::Hit::Kind::kNone);
}

TEST(FailpointAbortDeathTest, ArmedAbortKillsTheProcess)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    failpoint::ScopedFailpoint fp("test.abort_fire", "1*abort()");
    EXPECT_DEATH(failpoint::hit("test.abort_fire"), "injected crash");
}

// ----------------------------------------------------- Supervisor

SupervisorOptions
sh_supervisor(const std::string &script)
{
    SupervisorOptions options;
    options.shards = 1;
    options.command = [script](int) {
        return std::vector<std::string>{"/bin/sh", "-c", script};
    };
    options.restart.base_backoff_ms = 20;
    options.restart.max_backoff_ms = 100;
    options.restart.flap_count = 0; // tests drive crashes deliberately
    options.stop_grace_ms = 3000;
    return options;
}

TEST(Supervisor, ReapsASigkilledShardAndRestartsWithANewPid)
{
    Supervisor supervisor(sh_supervisor("exec sleep 30"));
    supervisor.start();
    ASSERT_TRUE(supervisor.wait_all_alive(5000));
    const pid_t first = supervisor.shard_pid(0);
    ASSERT_GT(first, 0);

    // Simulate a crash the hard way.  SIGCHLD -> self-pipe -> per-pid
    // reap -> backoff -> fresh exec: the shard must come back under a
    // NEW pid without any poll from us.
    ASSERT_EQ(::kill(first, SIGKILL), 0);
    ASSERT_TRUE(spin_until([&] {
        const pid_t pid = supervisor.shard_pid(0);
        return pid > 0 && pid != first;
    }));
    const SupervisorStats stats = supervisor.stats();
    EXPECT_GE(stats.spawns, 2u);
    EXPECT_GE(stats.restarts, 1u);
    EXPECT_EQ(stats.hang_kills, 0u);

    supervisor.stop();
    EXPECT_FALSE(supervisor.shard_alive(0));
    EXPECT_EQ(supervisor.shard_pid(0), -1);
}

TEST(Supervisor, FirstSpawnEnvIsInjectedOnceAndScrubbedOnRestart)
{
    // Every incarnation appends "g:<NASSC_FAILPOINTS>" to a log; only
    // generation 0 may see the armed value — a restart re-hitting an
    // armed abort() forever would otherwise melt the flap breaker.
    const std::string log = tmp_file("envlog");
    std::remove(log.c_str());
    SupervisorOptions options = sh_supervisor(
        "echo \"g:$NASSC_FAILPOINTS\" >> " + log + "; exec sleep 30");
    options.first_spawn_env = [](int) {
        return std::vector<std::string>{
            "NASSC_FAILPOINTS=service.transpile=1*abort()"};
    };
    Supervisor supervisor(options);
    supervisor.start();
    ASSERT_TRUE(supervisor.wait_all_alive(5000));
    const pid_t first = supervisor.shard_pid(0);
    ASSERT_GT(first, 0);
    const auto log_lines = [&log] {
        std::ifstream in(log);
        std::string line;
        int lines = 0;
        while (std::getline(in, line))
            ++lines;
        return lines;
    };
    // Let generation 0 reach its echo before crashing it — the pid is
    // live the instant exec lands, which may be before the first
    // shell statement has run.
    ASSERT_TRUE(spin_until([&] { return log_lines() >= 1; }));
    ASSERT_EQ(::kill(first, SIGKILL), 0);
    ASSERT_TRUE(spin_until([&] {
        const pid_t pid = supervisor.shard_pid(0);
        return pid > 0 && pid != first;
    }));
    ASSERT_TRUE(spin_until([&] { return log_lines() >= 2; }));
    supervisor.stop();

    std::ifstream in(log);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_GE(lines.size(), 2u);
    EXPECT_EQ(lines[0], "g:service.transpile=1*abort()");
    EXPECT_EQ(lines[1], "g:"); // scrubbed: generation 1 is disarmed
    std::remove(log.c_str());
}

TEST(Supervisor, FailingHealthChecksHangKillTheShard)
{
    SupervisorOptions options = sh_supervisor("exec sleep 30");
    options.health_interval_ms = 30;
    options.health_failures = 2;
    // A health check that never passes models a wedged worker: the
    // supervisor must SIGKILL it (converting the hang into a crash)
    // rather than wait forever.
    options.health_check = [](int) { return false; };
    std::atomic<int> down_edges{0};
    options.on_state = [&](int, bool up) {
        if (!up)
            ++down_edges;
    };
    Supervisor supervisor(options);
    supervisor.start();
    ASSERT_TRUE(spin_until(
        [&] { return supervisor.stats().hang_kills >= 1; }));
    supervisor.stop();
    EXPECT_GE(supervisor.stats().restarts, 1u);
    EXPECT_GE(down_edges.load(), 1);
}

TEST(Supervisor, GracefulStopTerminatesTrappingChildren)
{
    // The child traps SIGTERM and exits 0 — the drain path every
    // nasscd worker takes.  stop() must reap it inside the grace
    // window without escalating to SIGKILL.
    Supervisor supervisor(sh_supervisor(
        "trap 'exit 0' TERM; while :; do sleep 0.05; done"));
    supervisor.start();
    ASSERT_TRUE(supervisor.wait_all_alive(5000));
    const pid_t pid = supervisor.shard_pid(0);
    ASSERT_GT(pid, 0);
    supervisor.stop();
    EXPECT_EQ(supervisor.shard_pid(0), -1);
    // The child is really gone (reaped, not leaked): its pid no longer
    // accepts signal 0 from us (ESRCH) unless recycled, and a second
    // stop() is an idempotent no-op.
    supervisor.stop();
    EXPECT_EQ(supervisor.stats().spawns, 1u);
}

TEST(Supervisor, TwoShardsRestartIndependently)
{
    SupervisorOptions options = sh_supervisor("exec sleep 30");
    options.shards = 2;
    Supervisor supervisor(options);
    supervisor.start();
    ASSERT_TRUE(supervisor.wait_all_alive(5000));
    const pid_t victim = supervisor.shard_pid(1);
    const pid_t bystander = supervisor.shard_pid(0);
    ASSERT_GT(victim, 0);
    ASSERT_EQ(::kill(victim, SIGKILL), 0);
    ASSERT_TRUE(spin_until([&] {
        const pid_t pid = supervisor.shard_pid(1);
        return pid > 0 && pid != victim;
    }));
    // Shard 0 never blinked.
    EXPECT_EQ(supervisor.shard_pid(0), bystander);
    EXPECT_TRUE(supervisor.shard_alive(0));
    supervisor.stop();
}

} // namespace
} // namespace nassc
