// Tests for the benchmark circuit generators.

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/sim/noise.h"
#include "nassc/sim/statevector.h"

namespace nassc {
namespace {

TEST(Grover, AmplifiesAllOnes)
{
    for (int n : {3, 4}) {
        QuantumCircuit qc = grover(n);
        Statevector sv(n);
        sv.apply_circuit(qc);
        uint64_t marked = (uint64_t(1) << n) - 1;
        EXPECT_EQ(sv.argmax(), marked) << n;
        EXPECT_GT(sv.probability(marked), 0.5) << n;
    }
}

TEST(Grover, SizesScaleWithIterations)
{
    EXPECT_GT(grover(4, 2).size(), grover(4, 1).size());
}

TEST(Vqe, ExactPaperCxCounts)
{
    // reps * n(n-1)/2 CNOTs: the paper's Table I original counts.
    EXPECT_EQ(vqe_full(8).cx_count(), 84);
    EXPECT_EQ(vqe_full(12).cx_count(), 198);
}

TEST(Bv, RecoversSecret)
{
    for (uint64_t secret : {0b1ull, 0b1011ull, 0b1111ull}) {
        QuantumCircuit qc = bernstein_vazirani(5, secret);
        Statevector sv(5);
        sv.apply_circuit(qc);
        EXPECT_EQ(sv.argmax() & 0b1111, secret);
        EXPECT_GT(sv.probability(sv.argmax()), 0.99);
    }
}

TEST(Bv, PaperCxCount)
{
    EXPECT_EQ(
        bernstein_vazirani(19, (uint64_t(1) << 18) - 1).cx_count(), 18);
}

TEST(Qft, MapsBasisToFourierState)
{
    // QFT|0> = uniform superposition with zero phases.
    QuantumCircuit qc = qft(4);
    Statevector sv(4);
    sv.apply_circuit(qc);
    for (int i = 0; i < 16; ++i)
        EXPECT_NEAR(sv.probability(i), 1.0 / 16.0, 1e-10);
}

TEST(Qft, CpCountMatchesPaperScale)
{
    EXPECT_EQ(qft(15).count(OpKind::kCP), 105); // 210 CX after translation
    EXPECT_EQ(qft(20).count(OpKind::kCP), 190);
}

TEST(Qpe, EstimatesPhase)
{
    // phase = 2*pi*(5/16): counting register (4 bits) must read 5
    // exactly (the phase is exactly representable).
    QuantumCircuit qc = qpe(5, 2.0 * M_PI * 5.0 / 16.0);
    Statevector sv(5);
    sv.apply_circuit(qc);
    uint64_t out = sv.argmax();
    EXPECT_GT(sv.probability(out), 0.99);
    EXPECT_EQ(out & 0xF, 5u);
    EXPECT_EQ((out >> 4) & 1, 1u);
}

TEST(Adder, AddsClassically)
{
    // 2-bit Cuccaro adder: set a=1, b=1 -> b must become 2 (a preserved).
    QuantumCircuit prep(6);
    prep.x(0); // a bit0
    prep.x(2); // b bit0
    prep.compose(cuccaro_adder(2));
    Statevector sv(6);
    sv.apply_circuit(prep);
    uint64_t out = sv.argmax();
    EXPECT_GT(sv.probability(out), 0.999);
    uint64_t a = out & 0b11;
    uint64_t b = (out >> 2) & 0b11;
    uint64_t carry_out = (out >> 5) & 1;
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(carry_out, 0u);
}

TEST(Adder, CarryPropagates)
{
    // a=3, b=3 on 2 bits: b = 6 mod 4 = 2 with carry-out 1.
    QuantumCircuit prep(6);
    prep.x(0);
    prep.x(1);
    prep.x(2);
    prep.x(3);
    prep.compose(cuccaro_adder(2));
    Statevector sv(6);
    sv.apply_circuit(prep);
    uint64_t out = sv.argmax();
    EXPECT_EQ((out >> 2) & 0b11, 2u);
    EXPECT_EQ((out >> 5) & 1, 1u);
}

TEST(Adder, PaperQubitAndCxScale)
{
    QuantumCircuit qc = cuccaro_adder(4);
    EXPECT_EQ(qc.num_qubits(), 10);
}

TEST(Multiplier, ComputesProduct)
{
    // 2-bit multiplier: a=3, b=1 (x gates set a=11b, b=01b... the
    // generator fixes a=all-ones, b has bit0 and top bit).
    QuantumCircuit qc = multiplier(2);
    EXPECT_EQ(qc.num_qubits(), 9);
    Statevector sv(9);
    sv.apply_circuit(qc);
    uint64_t out = sv.argmax();
    EXPECT_GT(sv.probability(out), 0.999);
    uint64_t a = out & 0b11;
    uint64_t b = (out >> 2) & 0b11;
    uint64_t p = (out >> 4) & 0b1111;
    EXPECT_EQ(p, a * b);
}

TEST(MctNetwork, DeterministicAndClassical)
{
    QuantumCircuit a = mct_network(6, 30, 7, 2, 4);
    QuantumCircuit b = mct_network(6, 30, 7, 2, 4);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(a.gate(i) == b.gate(i));
    // Classical reversible: a basis state maps to a basis state.
    Statevector sv(6);
    sv.apply_circuit(a);
    EXPECT_GT(sv.probability(sv.argmax()), 0.999);
}

TEST(RevlibSubstitutes, DeterministicOutputs)
{
    for (auto &bc : fig11_benchmarks()) {
        Statevector sv(bc.circuit.num_qubits());
        sv.apply_circuit(bc.circuit);
        // grover_n4 has a dominant peak; the others are deterministic.
        double p = sv.probability(ideal_outcome(bc.circuit));
        if (bc.name == "grover_n4")
            EXPECT_GT(p, 0.4) << bc.name;
        else
            EXPECT_GT(p, 0.999) << bc.name;
    }
}

TEST(Registry, TableBenchmarksComplete)
{
    auto cases = table_benchmarks();
    ASSERT_EQ(cases.size(), 15u);
    EXPECT_EQ(cases[0].name, "grover_n4");
    EXPECT_EQ(cases[14].name, "sym9_193");
    // Qubit counts match the paper's Table I.
    int expected[] = {4, 6, 8, 8, 12, 19, 15, 20, 9, 10, 25, 10, 12, 15, 11};
    for (size_t i = 0; i < cases.size(); ++i)
        EXPECT_EQ(cases[i].circuit.num_qubits(), expected[i])
            << cases[i].name;
}

TEST(Registry, LookupByName)
{
    EXPECT_EQ(benchmark_by_name("qft_n15").num_qubits(), 15);
    EXPECT_THROW(benchmark_by_name("nope"), std::invalid_argument);
}

} // namespace
} // namespace nassc
