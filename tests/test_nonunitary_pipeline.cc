// End-to-end coverage for circuits containing measures and barriers.
//
// The layout search historically routed without_non_unitary() while
// route_circuit and the optimization passes saw the full circuit, so
// the non-unitary path through routing, SWAP decomposition, block
// consolidation, and basis translation was barely exercised.  These
// tests pin that seam:
//
//  - collect/consolidate_2q_blocks must treat a measure or barrier on a
//    shared wire as a hard block boundary (merging across one would
//    cancel gates whose product is only identity *unitarily*);
//  - route_circuit must map measure/barrier operands through the live
//    layout, preserving their counts and never stranding them;
//  - transpile() must stay correct end to end (coupling, basis,
//    measure/barrier preservation, unitary equivalence of the gate
//    part) across SABRE/NASSC x hops/noise x layout_trials {1, 4}.

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/passes/collect_blocks.h"
#include "nassc/route/sabre.h"
#include "nassc/sim/verify.h"
#include "nassc/topo/backends.h"
#include "nassc/transpile/transpile.h"

namespace nassc {
namespace {

bool
respects_coupling(const QuantumCircuit &qc, const CouplingMap &cm)
{
    for (const Gate &g : qc.gates()) {
        if (g.num_qubits() == 2 && is_unitary_op(g.kind)) {
            if (!cm.connected(g.qubits[0], g.qubits[1]))
                return false;
        }
    }
    return true;
}

/** Index of the first gate of `kind`, or -1. */
int
first_index_of(const QuantumCircuit &qc, OpKind kind)
{
    for (std::size_t i = 0; i < qc.size(); ++i)
        if (qc.gate(i).kind == kind)
            return static_cast<int>(i);
    return -1;
}

TEST(NonUnitaryBlocks, ConsolidateDoesNotMergeAcrossMeasure)
{
    // CX . measure(0) . CX: unitarily the CXs would cancel, but the
    // measure in between makes that rewrite wrong.  The block collector
    // must break at the measure and consolidation must leave both CXs.
    QuantumCircuit qc(2);
    qc.cx(0, 1);
    qc.measure(0);
    qc.cx(0, 1);

    auto blocks = collect_2q_blocks(qc);
    for (const TwoQubitBlock &blk : blocks)
        for (int idx : blk.gate_indices)
            EXPECT_NE(qc.gate(idx).kind, OpKind::kMeasure);
    // No block may span the measure: all member indices sit on one side.
    for (const TwoQubitBlock &blk : blocks) {
        bool before = false, after = false;
        for (int idx : blk.gate_indices)
            (idx < 1 ? before : after) = true;
        EXPECT_FALSE(before && after);
    }

    consolidate_2q_blocks(qc, Basis1q::kUGate);
    EXPECT_EQ(qc.count(OpKind::kCX), 2);
    EXPECT_EQ(qc.count(OpKind::kMeasure), 1);
    int m = first_index_of(qc, OpKind::kMeasure);
    int c1 = first_index_of(qc, OpKind::kCX);
    ASSERT_GE(m, 0);
    ASSERT_GE(c1, 0);
    EXPECT_LT(c1, m); // one CX stays before the measure ...
    bool cx_after = false;
    for (std::size_t i = static_cast<std::size_t>(m) + 1; i < qc.size();
         ++i)
        cx_after |= qc.gate(i).kind == OpKind::kCX;
    EXPECT_TRUE(cx_after); // ... and one after
}

TEST(NonUnitaryBlocks, ConsolidateDoesNotMergeAcrossBarrier)
{
    QuantumCircuit qc(2);
    qc.cx(0, 1);
    qc.barrier();
    qc.cx(0, 1);
    consolidate_2q_blocks(qc, Basis1q::kUGate);
    EXPECT_EQ(qc.count(OpKind::kCX), 2);
    EXPECT_EQ(qc.count(OpKind::kBarrier), 1);
}

TEST(NonUnitaryBlocks, PendingOneQubitGatesDoNotCrossMeasure)
{
    // H(0) waits as a pending 1q prefix; the measure on wire 0 must
    // flush it — a later block on {0, 1} may not absorb it backwards
    // across the measure (that would reorder H past the measurement).
    QuantumCircuit qc(2);
    qc.h(0);
    qc.measure(0);
    qc.cx(0, 1);
    consolidate_2q_blocks(qc, Basis1q::kUGate);
    int h = first_index_of(qc, OpKind::kH);
    int m = first_index_of(qc, OpKind::kMeasure);
    ASSERT_GE(h, 0);
    ASSERT_GE(m, 0);
    EXPECT_LT(h, m);
}

TEST(NonUnitaryRouting, RouteCircuitPreservesMeasuresAndBarriers)
{
    // Mid-circuit measure + barriers on a line: routing must map their
    // operands through the live layout and keep every one of them.
    Backend dev = linear_backend(5);
    const DistanceMatrix dist = hop_distance(dev.coupling);
    QuantumCircuit qc(4);
    qc.h(0);
    qc.cx(0, 3); // forces SWAPs on a line
    qc.measure(1);
    qc.barrier();
    qc.cx(3, 1);
    qc.cx(2, 0);
    qc.measure_all();

    for (RoutingAlgorithm alg :
         {RoutingAlgorithm::kSabre, RoutingAlgorithm::kNassc}) {
        RoutingOptions opts;
        opts.algorithm = alg;
        Layout init =
            sabre_initial_layout(qc, dev.coupling, dist, opts);
        RoutingResult res =
            route_circuit(qc, dev.coupling, dist, init, opts);
        EXPECT_EQ(res.circuit.count(OpKind::kMeasure), 5)
            << static_cast<int>(alg);
        EXPECT_EQ(res.circuit.count(OpKind::kBarrier), 1);
        EXPECT_TRUE(respects_coupling(res.circuit, dev.coupling));
        // Non-unitary operands must be valid physical wires.
        for (const Gate &g : res.circuit.gates())
            for (int q : g.qubits) {
                EXPECT_GE(q, 0);
                EXPECT_LT(q, dev.coupling.num_qubits());
            }
    }
}

TEST(NonUnitaryTranspile, MeasureAllWithMidBarrierEndToEnd)
{
    // The satellite's full matrix: SABRE/NASSC x hops/noise, plus the
    // multi-trial reuse path, on a circuit with a mid-circuit barrier
    // and terminal measures.  The gate part must still implement the
    // logical unitary (measures/barriers act as identity in the
    // checker), and every measure/barrier must survive the pipeline.
    Backend dev = linear_backend(5);
    QuantumCircuit logical(4);
    logical.h(0);
    logical.cx(0, 1);
    logical.t(1);
    logical.cx(1, 3);
    logical.barrier();
    logical.ry(0.7, 2);
    logical.cx(3, 0);
    logical.cx(2, 3);
    logical.barrier();
    logical.measure_all();

    for (int router = 0; router < 2; ++router) {
        for (bool noise : {false, true}) {
            for (int trials : {1, 4}) {
                TranspileOptions opts;
                opts.router = static_cast<RoutingAlgorithm>(router);
                opts.noise_aware = noise;
                opts.layout_trials = trials;
                opts.layout_threads = 1;
                TranspileResult res = transpile(logical, dev, opts);

                const char *tag = router == 0 ? "sabre" : "nassc";
                EXPECT_TRUE(respects_coupling(res.circuit, dev.coupling))
                    << tag << noise << trials;
                EXPECT_TRUE(is_basis_circuit(res.circuit))
                    << tag << noise << trials;
                EXPECT_EQ(res.circuit.count(OpKind::kMeasure), 4)
                    << tag << noise << trials;
                EXPECT_EQ(res.circuit.count(OpKind::kBarrier), 2)
                    << tag << noise << trials;
                EXPECT_TRUE(verify_transpilation(logical, res))
                    << tag << " noise=" << noise << " trials=" << trials;
                // Reuse happens exactly on the SABRE pipeline.
                EXPECT_EQ(res.reused_search_route, router == 0)
                    << tag << noise << trials;
            }
        }
    }
}

TEST(NonUnitaryTranspile, MeasureOnlyCircuit)
{
    // Degenerate but legal: nothing to route, everything to preserve.
    Backend dev = linear_backend(4);
    QuantumCircuit logical(3);
    logical.measure_all();
    for (int router = 0; router < 2; ++router) {
        TranspileOptions opts;
        opts.router = static_cast<RoutingAlgorithm>(router);
        TranspileResult res = transpile(logical, dev, opts);
        EXPECT_EQ(res.circuit.count(OpKind::kMeasure), 3) << router;
        EXPECT_EQ(res.routing_stats.num_swaps, 0) << router;
    }
}

} // namespace
} // namespace nassc
