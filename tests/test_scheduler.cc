// Tests for the work-stealing job scheduler (service/scheduler.h):
//
//  (a) index coverage and the per-job slot contract (slots < cap,
//      unique concurrent occupancy, caller owns slot 0);
//  (b) the headline multi-job property: concurrent top-level submitters
//      make interleaved progress — no whole-job serialization — even
//      while a third job has every pool worker busy (this deadlocks on
//      the single-job ThreadPool's submit mutex by design);
//  (c) determinism: per-index results are identical for every worker
//      count and steal schedule;
//  (d) deterministic lowest-index exception selection with sibling
//      isolation, on both the blocking and async paths;
//  (e) async submit(): JobHandle wait/done, wait-rethrow, submission
//      from inside a task;
//  (f) nested-parallelism guard and ensure_workers growth;
//  (g) DistanceCache under concurrent mixed backends driven through the
//      scheduler: exactly-once compute per key, coherent stats().

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nassc/ir/fnv1a.h"
#include "nassc/service/distance_cache.h"
#include "nassc/service/failpoint.h"
#include "nassc/service/scheduler.h"
#include "nassc/topo/backends.h"

namespace nassc {
namespace {

/** Spin until `pred` or ~5 s; returns whether pred came true. */
template <typename Pred>
bool
spin_until(Pred pred)
{
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::yield();
    }
    return true;
}

TEST(Scheduler, RunsEveryIndexExactlyOnce)
{
    Scheduler sched(4);
    for (std::size_t count : {0u, 1u, 3u, 64u, 1000u}) {
        std::vector<std::atomic<int>> hits(count);
        sched.parallel_for(count, [&](std::size_t i, int) {
            hits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(Scheduler, SlotContractHoldsUnderStealing)
{
    // Slots are per-JOB scratch ids: always < cap, never concurrently
    // occupied by two tasks of the same job, and the caller is slot 0.
    Scheduler sched(4);
    const int cap = 3;
    std::vector<std::atomic<int>> occupied(cap);
    std::atomic<int> violations{0};
    std::atomic<bool> caller_got_slot0{false};
    const std::thread::id caller = std::this_thread::get_id();

    sched.parallel_for(
        256,
        [&](std::size_t, int slot) {
            if (slot < 0 || slot >= cap) {
                violations.fetch_add(1);
                return;
            }
            if (std::this_thread::get_id() == caller) {
                caller_got_slot0 = true;
                if (slot != 0)
                    violations.fetch_add(1);
            }
            if (occupied[slot].fetch_add(1) != 0)
                violations.fetch_add(1); // two concurrent owners
            std::this_thread::yield();
            occupied[slot].fetch_sub(1);
        },
        cap);

    EXPECT_EQ(violations.load(), 0);
    EXPECT_TRUE(caller_got_slot0.load());
}

TEST(Scheduler, ConcurrentSubmittersInterleave)
{
    // Two top-level parallel_for calls whose first tasks each wait for
    // the OTHER job to have started: only interleaved execution can
    // satisfy both.  A pool that serializes whole jobs (the old
    // ThreadPool submit mutex) times out here.
    Scheduler sched(2);
    std::atomic<int> arrived{0};
    std::atomic<int> timeouts{0};

    auto submitter = [&] {
        sched.parallel_for(4, [&](std::size_t i, int) {
            if (i == 0) {
                arrived.fetch_add(1);
                if (!spin_until([&] { return arrived.load() >= 2; }))
                    timeouts.fetch_add(1);
            }
        });
    };
    std::thread a(submitter), b(submitter);
    a.join();
    b.join();
    EXPECT_EQ(timeouts.load(), 0);
    EXPECT_EQ(arrived.load(), 2);
}

TEST(Scheduler, SubmittersProgressWhileWorkersAreSaturated)
{
    // Every pool worker is pinned inside a long-running submitted job;
    // two parallel_for callers must still interleave via their own
    // caller slots.  Releases the hostage job at the end.
    Scheduler sched(2);
    std::atomic<bool> release{false};
    std::atomic<int> pinned{0};
    Scheduler::JobHandle hostage = sched.submit(2, [&](std::size_t, int) {
        pinned.fetch_add(1);
        spin_until([&] { return release.load(); });
    });
    ASSERT_TRUE(spin_until([&] { return pinned.load() == 2; }));

    std::atomic<int> arrived{0};
    std::atomic<int> timeouts{0};
    auto submitter = [&] {
        sched.parallel_for(3, [&](std::size_t i, int) {
            if (i == 0) {
                arrived.fetch_add(1);
                if (!spin_until([&] { return arrived.load() >= 2; }))
                    timeouts.fetch_add(1);
            }
        });
    };
    std::thread a(submitter), b(submitter);
    a.join();
    b.join();
    release = true;
    hostage.wait();
    EXPECT_EQ(timeouts.load(), 0);
}

TEST(Scheduler, PerIndexResultsAreScheduleInvariant)
{
    // The determinism contract the routing clients build on: work that
    // derives everything from its index produces identical output for
    // every worker count, including under concurrent foreign load.
    auto run = [](Scheduler &sched, int cap) {
        std::vector<std::uint64_t> out(512);
        sched.parallel_for(
            out.size(),
            [&](std::size_t i, int) {
                Fnv1a mix;
                mix.u32(0xbeefu);
                mix.u64(i);
                out[i] = mix.value();
            },
            cap);
        return out;
    };
    Scheduler sched(8);
    const std::vector<std::uint64_t> want = run(sched, 1);
    for (int cap : {2, 4, 0}) {
        // Foreign load perturbs the steal schedule, never the results.
        Scheduler::JobHandle noise =
            sched.submit(64, [](std::size_t, int) {
                std::this_thread::yield();
            });
        EXPECT_EQ(run(sched, cap), want) << "cap " << cap;
        noise.wait();
    }
}

TEST(Scheduler, LowestIndexExceptionWinsAndSiblingsStillRun)
{
    for (int threads : {1, 4}) {
        Scheduler sched(threads);
        std::vector<std::atomic<int>> done(64);
        try {
            sched.parallel_for(64, [&](std::size_t i, int) {
                if (i == 7 || i == 23 || i == 41)
                    throw std::runtime_error("boom " + std::to_string(i));
                done[i].fetch_add(1);
            });
            FAIL() << "expected an exception (threads=" << threads << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom 7");
        }
        for (std::size_t i = 0; i < 64; ++i) {
            if (i == 7 || i == 23 || i == 41)
                continue;
            EXPECT_EQ(done[i].load(), 1) << "index " << i;
        }
    }
}

TEST(Scheduler, SubmitReturnsImmediatelyAndWaitRethrows)
{
    Scheduler sched(2);
    std::atomic<bool> release{false};
    std::atomic<int> ran{0};
    Scheduler::JobHandle h = sched.submit(8, [&](std::size_t i, int) {
        spin_until([&] { return release.load(); });
        ran.fetch_add(1);
        if (i == 2 || i == 5)
            throw std::runtime_error("async boom " + std::to_string(i));
    });
    ASSERT_TRUE(h.valid());
    EXPECT_FALSE(h.done()); // nothing can finish before release
    release = true;
    try {
        h.wait();
        FAIL() << "expected the async exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "async boom 2"); // lowest index, always
    }
    EXPECT_TRUE(h.done());
    EXPECT_EQ(ran.load(), 8); // throwing siblings did not cancel the rest
    EXPECT_NO_THROW(Scheduler::JobHandle{}.wait()); // unbound = done
    EXPECT_TRUE(Scheduler::JobHandle{}.done());
}

TEST(Scheduler, SubmitFromInsideATaskIsAllowed)
{
    // Enqueueing never blocks, so tasks may fan follow-up work out
    // asynchronously; only JobHandle::wait() is restricted in-task.
    Scheduler sched(2);
    std::atomic<int> inner{0};
    std::vector<Scheduler::JobHandle> handles(4);
    std::mutex mu;
    sched.parallel_for(4, [&](std::size_t i, int) {
        auto h = sched.submit(4, [&](std::size_t, int) {
            inner.fetch_add(1);
        });
        std::lock_guard<std::mutex> lk(mu);
        handles[i] = std::move(h);
    });
    for (auto &h : handles)
        h.wait();
    EXPECT_EQ(inner.load(), 16);
}

TEST(Scheduler, NestedParallelForRunsInline)
{
    Scheduler sched(4);
    std::atomic<int> inner_total{0};
    std::atomic<int> nested_off_thread{0};

    EXPECT_FALSE(Scheduler::in_task());
    sched.parallel_for(8, [&](std::size_t, int) {
        EXPECT_TRUE(Scheduler::in_task());
        const std::thread::id me = std::this_thread::get_id();
        sched.parallel_for(16, [&](std::size_t, int slot) {
            inner_total.fetch_add(1);
            if (std::this_thread::get_id() != me || slot != 0)
                nested_off_thread.fetch_add(1);
        });
    });
    EXPECT_FALSE(Scheduler::in_task());
    EXPECT_EQ(inner_total.load(), 8 * 16);
    EXPECT_EQ(nested_off_thread.load(), 0);
}

TEST(Scheduler, MaxWorkersOneRunsInlineOnCaller)
{
    Scheduler sched(4);
    const std::thread::id caller = std::this_thread::get_id();
    std::atomic<int> off_thread{0};
    sched.parallel_for(
        32,
        [&](std::size_t, int slot) {
            if (std::this_thread::get_id() != caller || slot != 0)
                off_thread.fetch_add(1);
        },
        /*max_workers=*/1);
    EXPECT_EQ(off_thread.load(), 0);
}

TEST(Scheduler, EnsureWorkersGrowsButNeverShrinks)
{
    Scheduler sched(1);
    EXPECT_EQ(sched.num_threads(), 1);
    EXPECT_EQ(sched.ensure_workers(4), 3); // 4 slots incl. the caller
    EXPECT_EQ(sched.num_threads(), 3);
    EXPECT_EQ(sched.ensure_workers(2), 3); // no shrink
    std::atomic<int> n{0};
    sched.parallel_for(100, [&](std::size_t, int) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 100);
}

TEST(Scheduler, SharedSchedulerIsAProcessSingleton)
{
    Scheduler &a = Scheduler::shared();
    Scheduler &b = Scheduler::shared();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.num_threads(), 1);
}

TEST(Scheduler, ManySubmittersStress)
{
    Scheduler sched(4);
    std::atomic<long> total{0};
    auto submitter = [&](int rounds) {
        for (int r = 0; r < rounds; ++r)
            sched.parallel_for(32, [&](std::size_t, int) {
                total.fetch_add(1);
            });
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back(submitter, 25);
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(total.load(), 4L * 25 * 32);
}

TEST(Scheduler, DistanceCacheMixedBackendStress)
{
    // Satellite coverage: many concurrent requesters, three backends x
    // two metrics, driven through scheduler tasks AND async jobs at
    // once.  Every key computes exactly once; all requesters for one
    // key share the identical matrix object; stats() is coherent.
    auto montreal = montreal_backend();
    auto linear = linear_backend(25);
    auto grid = grid_backend(5, 5);
    const Backend *backends[3] = {&montreal, &linear, &grid};

    DistanceCache cache;
    constexpr std::size_t kTasks = 96;
    std::vector<SharedDistanceMatrix> got(kTasks);

    auto fetch = [&](std::size_t i) {
        const Backend &b = *backends[i % 3];
        const DistanceRequest req = (i / 3) % 2 ? DistanceRequest::noise()
                                                : DistanceRequest::hops();
        return cache.get(b, req);
    };

    Scheduler sched(4);
    Scheduler::JobHandle async = sched.submit(kTasks / 2, [&](std::size_t i,
                                                              int) {
        got[i] = fetch(i);
    });
    sched.parallel_for(kTasks / 2, [&](std::size_t i, int) {
        got[kTasks / 2 + i] = fetch(kTasks / 2 + i);
    });
    async.wait();

    const DistanceCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.computations, 6u); // 3 backends x 2 metrics
    EXPECT_EQ(stats.entries, 6u);
    EXPECT_EQ(stats.hits, kTasks - 6u);
    EXPECT_EQ(stats.computations, cache.computation_count());
    EXPECT_EQ(stats.hits, cache.hit_count());
    EXPECT_EQ(stats.entries, cache.size());

    // Pointer identity: one shared matrix per key, ever.
    std::set<const DistanceMatrix *> distinct;
    for (std::size_t i = 0; i < kTasks; ++i) {
        ASSERT_NE(got[i], nullptr) << "task " << i;
        EXPECT_EQ(got[i].get(), fetch(i).get()) << "task " << i;
        distinct.insert(got[i].get());
    }
    EXPECT_EQ(distinct.size(), 6u);
}

TEST(Scheduler, HigherPriorityJobsAreClaimedFirst)
{
    // One worker, held hostage while three single-task jobs queue up at
    // priorities 0, 5, 1: the claim order after release must be by
    // descending priority, deterministically.
    Scheduler sched(1);
    std::atomic<bool> release{false};
    std::atomic<int> pinned{0};
    Scheduler::JobHandle hostage = sched.submit(1, [&](std::size_t, int) {
        pinned.fetch_add(1);
        spin_until([&] { return release.load(); });
    });
    ASSERT_TRUE(spin_until([&] { return pinned.load() == 1; }));

    std::mutex mu;
    std::vector<int> order;
    auto tagged = [&](int tag) {
        return [&, tag](std::size_t, int) {
            std::lock_guard<std::mutex> lk(mu);
            order.push_back(tag);
        };
    };
    Scheduler::JobHandle low = sched.submit(1, tagged(0), 0, /*priority=*/0);
    Scheduler::JobHandle high = sched.submit(1, tagged(5), 0, /*priority=*/5);
    Scheduler::JobHandle mid = sched.submit(1, tagged(1), 0, /*priority=*/1);

    release = true;
    hostage.wait();
    low.wait();
    high.wait();
    mid.wait();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 5);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 0);
}

TEST(Scheduler, CancelDropsUnclaimedTasks)
{
    // Worker pinned -> none of the 4 tasks can be claimed -> cancel()
    // drops all of them, the job completes, and the fn never ran.
    Scheduler sched(1);
    std::atomic<bool> release{false};
    std::atomic<int> pinned{0};
    Scheduler::JobHandle hostage = sched.submit(1, [&](std::size_t, int) {
        pinned.fetch_add(1);
        spin_until([&] { return release.load(); });
    });
    ASSERT_TRUE(spin_until([&] { return pinned.load() == 1; }));

    std::atomic<int> ran{0};
    Scheduler::JobHandle job =
        sched.submit(4, [&](std::size_t, int) { ran.fetch_add(1); });
    EXPECT_FALSE(job.cancelled());
    EXPECT_EQ(job.cancel(), 4u);
    EXPECT_TRUE(job.cancelled());
    EXPECT_TRUE(job.done()); // dropped tasks count as completed
    job.wait();              // returns immediately, no exception

    release = true;
    hostage.wait();
    EXPECT_EQ(ran.load(), 0);
    // Idempotent, and a no-op once everything is claimed or dropped.
    EXPECT_EQ(job.cancel(), 0u);
}

TEST(Scheduler, CancelAfterCompletionIsANoOp)
{
    Scheduler sched(2);
    std::atomic<int> ran{0};
    Scheduler::JobHandle job =
        sched.submit(3, [&](std::size_t, int) { ran.fetch_add(1); });
    job.wait();
    EXPECT_EQ(ran.load(), 3);
    EXPECT_EQ(job.cancel(), 0u);
    EXPECT_TRUE(job.done());
}

TEST(Scheduler, RunningTaskObservesCooperativeCancel)
{
    // cancel() cannot stop a claimed task, but the task can see the
    // flag via current_job_cancelled() and stop early.
    Scheduler sched(1);
    ASSERT_FALSE(Scheduler::current_job_cancelled()); // outside any task

    std::atomic<bool> started{false};
    std::atomic<bool> saw_cancel{false};
    Scheduler::JobHandle job = sched.submit(1, [&](std::size_t, int) {
        started = true;
        saw_cancel = spin_until([] { return Scheduler::current_job_cancelled(); });
    });
    ASSERT_TRUE(spin_until([&] { return started.load(); }));
    EXPECT_EQ(job.cancel(), 0u); // already claimed: nothing to drop
    job.wait();
    EXPECT_TRUE(saw_cancel.load());
    EXPECT_TRUE(job.cancelled());
}

TEST(Scheduler, SubmitDeadlineIsVisibleInsideTasks)
{
    using Clock = std::chrono::steady_clock;
    Scheduler sched(2);

    // Outside any task there is no budget.
    EXPECT_EQ(Scheduler::current_job_deadline(), Clock::time_point::max());
    EXPECT_FALSE(Scheduler::current_job_expired());

    // A generous deadline rides the job to every task; none expired.
    const Clock::time_point deadline = Clock::now() + std::chrono::hours(1);
    std::atomic<int> bound{0};
    std::atomic<int> expired{0};
    Scheduler::JobHandle job = sched.submit(
        4,
        [&](std::size_t, int) {
            if (Scheduler::current_job_deadline() == deadline)
                bound.fetch_add(1);
            if (Scheduler::current_job_expired())
                expired.fetch_add(1);
        },
        0, 0, deadline);
    job.wait();
    EXPECT_EQ(bound.load(), 4);
    EXPECT_EQ(expired.load(), 0);

    // A deadline already in the past reports expired immediately.
    std::atomic<int> late{0};
    Scheduler::JobHandle past = sched.submit(
        2,
        [&](std::size_t, int) {
            if (Scheduler::current_job_expired())
                late.fetch_add(1);
        },
        0, 0, Clock::now() - std::chrono::seconds(1));
    past.wait();
    EXPECT_EQ(late.load(), 2);
}

TEST(Scheduler, NestedInlineParallelForInheritsCancelAndDeadline)
{
    // A parallel_for from inside a task runs inline; the inline tasks
    // must still see the OUTER job's cancel flag and deadline, not a
    // blank slate.
    using Clock = std::chrono::steady_clock;
    Scheduler sched(1);
    const Clock::time_point deadline = Clock::now() + std::chrono::hours(2);

    std::atomic<bool> inner_saw_deadline{false};
    std::atomic<bool> inner_saw_cancel{false};
    std::atomic<bool> started{false};
    Scheduler::JobHandle job = sched.submit(
        1,
        [&](std::size_t, int) {
            started = true;
            // Wait for the outer job to be cancelled, then check that a
            // nested inline parallel_for still observes both signals.
            spin_until([] { return Scheduler::current_job_cancelled(); });
            sched.parallel_for(2, [&](std::size_t, int) {
                if (Scheduler::current_job_deadline() == deadline)
                    inner_saw_deadline = true;
                if (Scheduler::current_job_cancelled())
                    inner_saw_cancel = true;
            });
        },
        0, 0, deadline);
    ASSERT_TRUE(spin_until([&] { return started.load(); }));
    job.cancel();
    job.wait();
    EXPECT_TRUE(inner_saw_deadline.load());
    EXPECT_TRUE(inner_saw_cancel.load());
}

TEST(Scheduler, ParallelForPropagatesCallerDeadlineToPoolWorkers)
{
    // parallel_for stamps the CALLER's thread-local deadline onto the
    // pool job it creates, so trials stolen by pool workers run under
    // the same budget as trials the caller runs itself.
    using Clock = std::chrono::steady_clock;
    Scheduler sched(4);
    const Clock::time_point deadline = Clock::now() + std::chrono::hours(3);

    std::atomic<int> with_deadline{0};
    Scheduler::JobHandle job = sched.submit(
        1,
        [&](std::size_t, int) {
            sched.parallel_for(16, [&](std::size_t, int) {
                if (Scheduler::current_job_deadline() == deadline)
                    with_deadline.fetch_add(1);
            });
        },
        0, 0, deadline);
    job.wait();
    EXPECT_EQ(with_deadline.load(), 16);
}

TEST(Scheduler, ClaimFailpointFiresPerTaskAndDisarms)
{
    // The scheduler.claim site fires once per claimed task; a counted
    // trigger burns down and auto-disarms, leaving later jobs clean.
    failpoint::disarm_all();
    failpoint::arm("scheduler.claim", "3*trigger");

    Scheduler sched(2);
    std::atomic<int> ran{0};
    sched.submit(5, [&](std::size_t, int) { ran.fetch_add(1); }).wait();
    EXPECT_EQ(ran.load(), 5); // kTrigger at this site is count-only
    EXPECT_EQ(failpoint::hit_count("scheduler.claim"), 3u);

    sched.submit(4, [&](std::size_t, int) { ran.fetch_add(1); }).wait();
    EXPECT_EQ(ran.load(), 9);
    // Counts persist after auto-disarm (until disarm_all).
    EXPECT_EQ(failpoint::hit_count("scheduler.claim"), 3u);
    failpoint::disarm_all();
    EXPECT_EQ(failpoint::hit_count("scheduler.claim"), 0u);
}

} // namespace
} // namespace nassc
