// Property and unit tests for the Weyl/KAK decomposition engine.

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "nassc/math/complex_mat.h"
#include "nassc/math/weyl.h"

namespace nassc {
namespace {

const double kPi4 = M_PI / 4.0;

std::mt19937 &
rng()
{
    static std::mt19937 r(12345);
    return r;
}

Mat2
random_su2()
{
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    return mul(rz_gate(ang(rng())),
               mul(ry_gate(ang(rng())), rz_gate(ang(rng()))));
}

/** Random two-qubit unitary built from exactly `n_cx` CNOTs. */
Mat4
random_u4_with_cx(int n_cx, bool random_phase = true)
{
    Mat4 u = tensor2(random_su2(), random_su2());
    std::uniform_int_distribution<int> dir(0, 1);
    for (int k = 0; k < n_cx; ++k) {
        u = mul(dir(rng()) ? cx_mat() : cx_rev_mat(), u);
        u = mul(tensor2(random_su2(), random_su2()), u);
    }
    if (random_phase) {
        std::uniform_real_distribution<double> ang(-M_PI, M_PI);
        u = scale(u, std::exp(Cx(0.0, ang(rng()))));
    }
    return u;
}

TEST(MagicBasis, IsUnitary)
{
    EXPECT_TRUE(is_unitary(magic_basis()));
}

TEST(MagicBasis, DiagonalizesPauliProducts)
{
    const Mat4 &b = magic_basis();
    Mat4 bd = adjoint(b);
    for (const Mat4 &p : {tensor2(pauli_x(), pauli_x()),
                          tensor2(pauli_y(), pauli_y()),
                          tensor2(pauli_z(), pauli_z())}) {
        Mat4 d = mul(bd, mul(p, b));
        for (int i = 0; i < 4; ++i) {
            for (int j = 0; j < 4; ++j) {
                if (i != j) {
                    EXPECT_LT(std::abs(d(i, j)), 1e-12);
                }
            }
        }
    }
}

TEST(MagicBasis, MapsLocalsToRealMatrices)
{
    const Mat4 &b = magic_basis();
    Mat4 bd = adjoint(b);
    for (int trial = 0; trial < 25; ++trial) {
        Mat4 local = tensor2(random_su2(), random_su2());
        Mat4 o = mul(bd, mul(local, b));
        for (int i = 0; i < 16; ++i)
            EXPECT_LT(std::abs(o.v[i].imag()), 1e-9);
    }
}

TEST(CanonicalGate, OriginIsIdentity)
{
    EXPECT_TRUE(approx_equal(canonical_gate(0, 0, 0), Mat4::identity()));
}

TEST(CanonicalGate, IsUnitaryOnGrid)
{
    for (double a : {-0.8, 0.0, 0.3, 1.2})
        for (double b : {-0.5, 0.0, 0.7})
            for (double c : {0.0, 0.4, 2.0})
                EXPECT_TRUE(is_unitary(canonical_gate(a, b, c)));
}

TEST(CanonicalGate, FactorsCommute)
{
    Mat4 x = canonical_gate(0.3, 0.0, 0.0);
    Mat4 y = canonical_gate(0.0, 0.5, 0.0);
    Mat4 z = canonical_gate(0.0, 0.0, 0.7);
    Mat4 xyz = canonical_gate(0.3, 0.5, 0.7);
    EXPECT_TRUE(approx_equal(mul(x, mul(y, z)), xyz, 1e-9));
    EXPECT_TRUE(approx_equal(mul(z, mul(x, y)), xyz, 1e-9));
}

TEST(CanonicalGate, QuarterPiXxIsLocallyCx)
{
    // N(pi/4, 0, 0) must require exactly one CNOT.
    EXPECT_EQ(cnot_cost(canonical_gate(kPi4, 0, 0)), 1);
}

TEST(CanonicalGate, SwapCoordinates)
{
    // SWAP is locally N(pi/4, pi/4, pi/4).
    auto coords = weyl_coords(swap_mat());
    EXPECT_NEAR(coords[0], kPi4, 1e-9);
    EXPECT_NEAR(coords[1], kPi4, 1e-9);
    EXPECT_NEAR(std::abs(coords[2]), kPi4, 1e-9);
}

TEST(CanonicalGate, IswapCoordinates)
{
    auto coords = weyl_coords(iswap_mat());
    EXPECT_NEAR(coords[0], kPi4, 1e-9);
    EXPECT_NEAR(coords[1], kPi4, 1e-9);
    EXPECT_NEAR(coords[2], 0.0, 1e-9);
}

TEST(SplitTensor2, RoundTrip)
{
    for (int trial = 0; trial < 50; ++trial) {
        Mat2 a = random_su2();
        Mat2 b = random_su2();
        std::uniform_real_distribution<double> ang(-M_PI, M_PI);
        Cx ph = std::exp(Cx(0.0, ang(rng())));
        Mat4 k = scale(tensor2(a, b), ph);
        Mat2 ra, rb;
        Cx rph;
        ASSERT_TRUE(split_tensor2(k, ra, rb, rph));
        EXPECT_LT(frobenius_distance(k, scale(tensor2(ra, rb), rph)), 1e-8);
    }
}

TEST(SplitTensor2, RejectsEntangling)
{
    Mat2 a, b;
    Cx ph;
    EXPECT_FALSE(split_tensor2(cx_mat(), a, b, ph));
    EXPECT_FALSE(split_tensor2(swap_mat(), a, b, ph));
}

TEST(Kak, RoundTripLocals)
{
    for (int trial = 0; trial < 30; ++trial) {
        Mat4 u = random_u4_with_cx(0);
        Kak k = kak_decompose(u);
        EXPECT_LT(frobenius_distance(u, kak_reconstruct(k)), 1e-7);
    }
}

class KakRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(KakRoundTrip, ReconstructsAndClassifies)
{
    int n_cx = GetParam();
    int exact = 0;
    const int trials = 60;
    for (int trial = 0; trial < trials; ++trial) {
        Mat4 u = random_u4_with_cx(n_cx);
        Kak k = kak_decompose(u);
        ASSERT_LT(frobenius_distance(u, kak_reconstruct(k)), 1e-7);

        canonicalize(k);
        // Reconstruction unchanged by canonicalization.
        ASSERT_LT(frobenius_distance(u, kak_reconstruct(k)), 1e-6);
        // Chamber conditions.
        EXPECT_GE(k.a, -1e-9);
        EXPECT_LE(k.a, kPi4 + 1e-9);
        EXPECT_GE(k.b, -1e-9);
        EXPECT_GE(k.a, k.b - 1e-9);
        EXPECT_GE(k.b, std::abs(k.c) - 1e-9);

        int cost = cnot_cost_coords(k.a, k.b, k.c);
        EXPECT_LE(cost, n_cx);
        if (cost == n_cx)
            ++exact;
    }
    // Random angles give full-cost operators almost surely.
    EXPECT_EQ(exact, trials);
}

INSTANTIATE_TEST_SUITE_P(CxCounts, KakRoundTrip, ::testing::Values(0, 1, 2, 3));

TEST(Kak, KnownCosts)
{
    EXPECT_EQ(cnot_cost(Mat4::identity()), 0);
    EXPECT_EQ(cnot_cost(tensor2(hadamard(), s_gate())), 0);
    EXPECT_EQ(cnot_cost(cx_mat()), 1);
    EXPECT_EQ(cnot_cost(cx_rev_mat()), 1);
    EXPECT_EQ(cnot_cost(cz_mat()), 1);
    EXPECT_EQ(cnot_cost(iswap_mat()), 2);
    EXPECT_EQ(cnot_cost(swap_mat()), 3);
}

TEST(Kak, CxTimesSwapCostsTwo)
{
    // SWAP * CX is locally equivalent to iSWAP: two CNOTs.  This is the
    // "not all SWAPs cost three CNOTs" observation from the paper.
    EXPECT_EQ(cnot_cost(mul(swap_mat(), cx_mat())), 2);
    EXPECT_EQ(cnot_cost(mul(cx_mat(), swap_mat())), 2);
    EXPECT_EQ(cnot_cost(mul(swap_mat(), cx_rev_mat())), 2);
}

TEST(Kak, SwapAbsorbedByThreeCxBlock)
{
    // A generic 3-CNOT block followed by a SWAP still needs only 3 CNOTs:
    // the SWAP is free (paper Sec. III).
    for (int trial = 0; trial < 10; ++trial) {
        Mat4 u = random_u4_with_cx(3);
        EXPECT_LE(cnot_cost(mul(swap_mat(), u)), 3);
    }
}

TEST(Kak, CanonicalGateRawCoordsRecovered)
{
    // For coordinates already inside the chamber the decomposition must
    // return them (up to permutation symmetry it is the same point).
    std::uniform_real_distribution<double> d(0.02, kPi4 - 0.02);
    for (int trial = 0; trial < 40; ++trial) {
        double a = d(rng()), b = d(rng()), c = d(rng());
        // Sort descending to land inside the chamber.
        if (a < b)
            std::swap(a, b);
        if (b < c)
            std::swap(b, c);
        if (a < b)
            std::swap(a, b);
        auto coords = weyl_coords(canonical_gate(a, b, c));
        EXPECT_NEAR(coords[0], a, 1e-8);
        EXPECT_NEAR(coords[1], b, 1e-8);
        EXPECT_NEAR(std::abs(coords[2]), c, 1e-8);
    }
}

TEST(Kak, LocalsDoNotChangeCoords)
{
    for (int trial = 0; trial < 20; ++trial) {
        Mat4 u = random_u4_with_cx(2);
        auto c1 = weyl_coords(u);
        Mat4 v = mul(tensor2(random_su2(), random_su2()),
                     mul(u, tensor2(random_su2(), random_su2())));
        auto c2 = weyl_coords(v);
        EXPECT_NEAR(c1[0], c2[0], 1e-7);
        EXPECT_NEAR(c1[1], c2[1], 1e-7);
        EXPECT_NEAR(std::abs(c1[2]), std::abs(c2[2]), 1e-7);
    }
}

TEST(Kak, RejectsNonUnitary)
{
    Mat4 m = Mat4::identity();
    m(0, 0) = 2.0;
    EXPECT_THROW(kak_decompose(m), std::runtime_error);
}

TEST(Kak, CliffordCornerCases)
{
    // Structured (Clifford) inputs exercise the degenerate eigenvalue
    // paths of the simultaneous diagonalization.
    std::vector<Mat4> cases = {
        cx_mat(),
        cz_mat(),
        swap_mat(),
        iswap_mat(),
        mul(cx_mat(), cx_rev_mat()),
        mul(cz_mat(), swap_mat()),
        tensor2(hadamard(), hadamard()),
        mul(cx_mat(), mul(tensor2(hadamard(), hadamard()), cx_mat())),
    };
    for (const Mat4 &u : cases) {
        Kak k = kak_decompose(u);
        EXPECT_LT(frobenius_distance(u, kak_reconstruct(k)), 1e-7);
        canonicalize(k);
        EXPECT_LT(frobenius_distance(u, kak_reconstruct(k)), 1e-6);
    }
}

} // namespace
} // namespace nassc
