// Sharded-serving tests (serve/shard_router.h):
//
//  (a) HashRing — consistent-hash stability (adding a shard remaps
//      only the keys the new shard now owns; removing one remaps only
//      its keys) and the live-walk used for failover;
//  (b) fleet end-to-end — a front-door NasscServer forwarding to three
//      in-process worker servers: responses BIT-IDENTICAL to a local
//      transpile, the dedup invariant fleet-wide (transpiles ==
//      distinct keys summed across shards, exercised on Table I
//      circuits), and merged `stats`;
//  (c) failover — a stopped shard's keys transparently re-route to a
//      live shard; a HUNG shard (armed sleep failpoint) trips the
//      router's I/O timeout and fails over the same way;
//  (d) hung-peer protection on the plain client —
//      ServeClient::set_io_timeout surfaces a wedged server as the
//      typed TranspileTransportTimeout.

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/ir/qasm.h"
#include "nassc/serve/client.h"
#include "nassc/serve/protocol.h"
#include "nassc/serve/server.h"
#include "nassc/serve/shard_router.h"
#include "nassc/service/errors.h"
#include "nassc/service/failpoint.h"
#include "nassc/service/transpile_service.h"
#include "nassc/transpile/context.h"

namespace nassc {
namespace {

std::string
socket_path(const std::string &suffix)
{
    return "/tmp/nassc_shard_" + std::to_string(::getpid()) + "_" + suffix +
           ".sock";
}

// ------------------------------------------------------------ HashRing

TEST(HashRing, OwnersAreStableAndBalanced)
{
    const HashRing ring(3);
    std::vector<int> owned(3, 0);
    for (int i = 0; i < 1000; ++i) {
        const int owner =
            ring.owner(HashRing::key_point("key-" + std::to_string(i)));
        ASSERT_GE(owner, 0);
        ASSERT_LT(owner, 3);
        ++owned[static_cast<std::size_t>(owner)];
        // Determinism: the same key always lands on the same shard.
        EXPECT_EQ(owner, ring.owner(HashRing::key_point(
                             "key-" + std::to_string(i))));
    }
    // 64 virtual nodes per shard keep slices coarse-balanced: no shard
    // may own less than a tenth of a fair share.
    for (int s = 0; s < 3; ++s)
        EXPECT_GT(owned[static_cast<std::size_t>(s)], 1000 / 30);
}

TEST(HashRing, AddingAShardRemapsOnlyItsOwnKeys)
{
    const HashRing three(3);
    const HashRing four(4);
    int remapped = 0;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t point =
            HashRing::key_point("key-" + std::to_string(i));
        const int before = three.owner(point);
        const int after = four.owner(point);
        if (before != after) {
            // The ONLY legal move is onto the new shard: shard 0-2's
            // ring points are unchanged by construction, so no key may
            // hop between surviving shards.
            EXPECT_EQ(after, 3);
            ++remapped;
        }
    }
    // Roughly 1/4 of the keyspace should move — and certainly not none
    // (the new shard must take real work) nor half (that would be a
    // rehash-everything bug).
    EXPECT_GT(remapped, 2000 / 10);
    EXPECT_LT(remapped, 2000 / 2);
}

TEST(HashRing, LiveWalkSkipsDeadShardsAndRecovers)
{
    const HashRing ring(3);
    const auto all_live = [](int) { return true; };
    const auto one_dead = [](int shard) { return shard != 1; };
    const auto all_dead = [](int) { return false; };
    int moved = 0;
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t point =
            HashRing::key_point("key-" + std::to_string(i));
        const int healthy = ring.owner_live(point, all_live);
        EXPECT_EQ(healthy, ring.owner(point));
        const int degraded = ring.owner_live(point, one_dead);
        ASSERT_NE(degraded, 1);
        if (healthy == 1) {
            ++moved; // shard 1's keys must land on a SURVIVOR
        } else {
            // Keys shard 1 never owned do not move at all.
            EXPECT_EQ(degraded, healthy);
        }
        EXPECT_EQ(ring.owner_live(point, all_dead), -1);
    }
    EXPECT_GT(moved, 0);
}

// ---------------------------------------------------- fleet end-to-end

/** A worker fleet + front door, all in-process.  The front's
 *  NasscServer forwards via a ShardRouter exactly as `nasscd --shards`
 *  does; workers are plain NasscServers on their own unix sockets. */
struct Fleet
{
    static constexpr int kShards = 3;
    std::vector<std::unique_ptr<NasscServer>> workers;
    std::shared_ptr<ShardRouter> router;
    std::unique_ptr<NasscServer> front;
    std::string front_path;

    explicit Fleet(int io_timeout_ms = 10000)
    {
        ShardRouterOptions ropts;
        for (int s = 0; s < kShards; ++s) {
            ServerOptions wopts;
            wopts.unix_path = socket_path("w" + std::to_string(s));
            workers.push_back(std::make_unique<NasscServer>(wopts));
            workers.back()->start();
            ServeEndpoint endpoint;
            endpoint.unix_path = workers.back()->unix_path();
            ropts.shards.push_back(endpoint);
        }
        ropts.io_timeout_ms = io_timeout_ms;
        ropts.failover_backoff_ms = 5;
        router = std::make_shared<ShardRouter>(std::move(ropts));

        ServerOptions fopts;
        front_path = socket_path("front");
        fopts.unix_path = front_path;
        fopts.shard_router = router;
        front = std::make_unique<NasscServer>(fopts);
        front->start();
    }

    ~Fleet()
    {
        front->stop();
        router->close_pools();
        for (auto &worker : workers)
            worker->stop();
    }

    /** Which shard owns this job, exactly as the front computes it. */
    int
    owner(const std::string &qasm,
          const std::vector<std::pair<std::string, std::string>> &options)
        const
    {
        const std::string key = TranspileService::request_key(
            from_qasm(qasm), montreal_backend(),
            parse_transpile_options(options));
        return router->ring().owner(HashRing::key_point(key));
    }
};

/** Small Table I circuits (circuits/library.h) — big enough to route,
 *  small enough for a unit test, and QASM-exportable as-is (the grover
 *  entries carry mcx gates the codec refuses to emit undecomposed). */
std::vector<std::pair<std::string, std::string>>
table_menu()
{
    std::vector<std::pair<std::string, std::string>> menu;
    for (const char *name : {"vqe_n8", "qpe_n9", "adder_n10", "qft_n15"})
        menu.emplace_back(name, to_qasm(benchmark_by_name(name)));
    return menu;
}

TEST(ShardRouter, FleetBitIdenticalWithFleetWideDedup)
{
    Fleet fleet;
    ServeClient client = ServeClient::connect_unix(fleet.front_path);

    struct Job
    {
        std::string key;
        std::string qasm;
        std::vector<std::pair<std::string, std::string>> options;
    };
    std::vector<Job> jobs;
    for (const auto &entry : table_menu()) {
        for (const char *router_name : {"nassc", "sabre"}) {
            Job job;
            job.key = entry.first + "/" + router_name;
            job.qasm = entry.second;
            job.options = {{"router", router_name}, {"seed", "7"}};
            jobs.push_back(job);
            jobs.push_back(job); // duplicate — must dedup fleet-wide
        }
    }
    const std::size_t distinct = jobs.size() / 2;

    std::map<std::string, std::string> expected;
    std::set<int> owners;
    for (const Job &job : jobs) {
        if (expected.count(job.key))
            continue;
        const TranspileResult local = TranspileContext::global().transpile(
            from_qasm(job.qasm), montreal_backend(),
            parse_transpile_options(job.options));
        expected[job.key] = to_qasm(local.circuit);
        owners.insert(fleet.owner(job.qasm, job.options));
    }
    // The menu must actually spread over shards for the test to mean
    // anything; 8 distinct keys over 3 shards make a single-owner
    // degenerate draw astronomically unlikely.
    EXPECT_GT(owners.size(), 1u);

    for (const Job &job : jobs) {
        const ServeResponse resp =
            client.transpile_qasm(job.qasm, "ibmq_montreal", job.options);
        EXPECT_EQ(resp.qasm, expected[job.key]) << job.key;
    }

    // Fleet-wide dedup: summed across shards, each distinct key was
    // transpiled exactly once; every duplicate rode a cache/coalesce.
    std::uint64_t transpiles = 0;
    std::uint64_t requests = 0;
    for (auto &worker : fleet.workers) {
        const ServiceStats s = worker->service().stats();
        transpiles += s.transpiles_ok + s.transpiles_failed;
        requests += s.requests;
    }
    EXPECT_EQ(transpiles, distinct);
    EXPECT_EQ(requests, jobs.size());

    // merged `stats` through the front reports the same sums plus the
    // router's own health rows.
    std::map<std::string, std::uint64_t> merged = client.stats();
    EXPECT_EQ(merged.at("transpiles_ok"), distinct);
    EXPECT_EQ(merged.at("requests"), jobs.size());
    EXPECT_EQ(merged.at("shards"), static_cast<std::uint64_t>(3));
    EXPECT_EQ(merged.at("shards_live"), static_cast<std::uint64_t>(3));
    EXPECT_EQ(merged.at("forwards"), jobs.size() + 0u);
    EXPECT_EQ(merged.at("failovers"), 0u);
}

TEST(ShardRouter, FailoverReroutesADeadShardsKeys)
{
    Fleet fleet;
    ServeClient client = ServeClient::connect_unix(fleet.front_path);

    // Scan seeds until we hold a key owned by shard 1 (each draw is
    // ~1/3; 64 draws cannot all miss in practice).
    const std::string qasm = to_qasm(ghz(6));
    std::vector<std::pair<std::string, std::string>> options;
    for (int seed = 0; seed < 64; ++seed) {
        options = {{"router", "sabre"},
                   {"seed", std::to_string(seed)}};
        if (fleet.owner(qasm, options) == 1)
            break;
    }
    ASSERT_EQ(fleet.owner(qasm, options), 1);

    const TranspileResult local = TranspileContext::global().transpile(
        from_qasm(qasm), montreal_backend(),
        parse_transpile_options(options));
    const std::string expected = to_qasm(local.circuit);

    // Healthy forward lands on shard 1.
    EXPECT_EQ(client.transpile_qasm(qasm, "ibmq_montreal", options).qasm,
              expected);
    EXPECT_EQ(fleet.workers[1]->service().stats().requests, 1u);

    // Kill shard 1 the hard way (stop() closes its listener and
    // connections) and replay: the front must fail over to a live
    // shard and still answer bit-identically — safe because the
    // transpile is deterministic.
    fleet.workers[1]->stop();
    const ServeResponse failed_over =
        client.transpile_qasm(qasm, "ibmq_montreal", options);
    EXPECT_EQ(failed_over.qasm, expected);
    EXPECT_FALSE(fleet.router->is_live(1));
    EXPECT_GE(fleet.router->stats_snapshot().failovers, 1u);

    // The other shards picked up the arc: one of them transpiled it.
    const std::uint64_t others =
        fleet.workers[0]->service().stats().requests +
        fleet.workers[2]->service().stats().requests;
    EXPECT_GE(others, 1u);
}

TEST(ShardRouter, HungShardTripsTimeoutAndFailsOver)
{
    // Short router I/O timeout; the armed sleep is far longer, so the
    // forward MUST time out rather than wait the sleep out.
    Fleet fleet(/*io_timeout_ms=*/500);
    ServeClient client = ServeClient::connect_unix(fleet.front_path);

    const std::string qasm = to_qasm(ghz(4));
    const std::vector<std::pair<std::string, std::string>> options = {
        {"router", "sabre"}, {"seed", "11"}};

    const TranspileResult local = TranspileContext::global().transpile(
        from_qasm(qasm), montreal_backend(),
        parse_transpile_options(options));

    // The failpoint registry is process-global, so whichever worker
    // receives the first transpile burns the single sleep charge and
    // wedges for 3 s; the failover retry runs clean.
    failpoint::ScopedFailpoint hang("service.transpile", "1*sleep(3000)");
    const ServeResponse resp =
        client.transpile_qasm(qasm, "ibmq_montreal", options);
    EXPECT_EQ(resp.qasm, to_qasm(local.circuit));
    EXPECT_GE(fleet.router->stats_snapshot().failovers, 1u);
    EXPECT_EQ(failpoint::hit_count("service.transpile"), 1u);
}

// ------------------------------------------- hung-peer typed timeout

TEST(ServeClientTimeout, WedgedServerThrowsTypedTimeout)
{
    ServerOptions options;
    options.unix_path = socket_path("wedge");
    NasscServer server(options);
    server.start();

    failpoint::ScopedFailpoint hang("service.transpile", "1*sleep(1500)");
    ServeClient client = ServeClient::connect_unix(server.unix_path());
    client.set_io_timeout(300);
    const std::string qasm = to_qasm(ghz(4));
    EXPECT_THROW(client.transpile_qasm(qasm, "ibmq_montreal",
                                       {{"router", "sabre"}}),
                 TranspileTransportTimeout);
    server.stop();
}

TEST(ServeClientTimeout, RetryingClientRecoversOnAFreshConnection)
{
    ServerOptions options;
    options.unix_path = socket_path("wedge_retry");
    NasscServer server(options);
    server.start();

    failpoint::ScopedFailpoint hang("service.transpile", "1*sleep(1200)");
    ServeEndpoint endpoint;
    endpoint.unix_path = server.unix_path();
    RetryPolicy policy;
    policy.io_timeout_ms = 300;
    policy.base_backoff_ms = 5;
    policy.max_backoff_ms = 50;
    // Every retried attempt COALESCES onto the still-sleeping in-flight
    // transpile (same key, same service), so each times out until the
    // sleep drains at 1.2 s — the attempt budget must outlast it.
    policy.max_attempts = 12;
    RetryingServeClient client(endpoint, policy);
    // First attempt times out on the wedged worker; the retry dials a
    // fresh connection and (sleep charge burnt) succeeds.
    const std::string qasm = to_qasm(ghz(4));
    const ServeResponse resp =
        client.transpile_qasm(qasm, "ibmq_montreal", {{"router", "sabre"}});
    EXPECT_EQ(resp.status, "ok");
    EXPECT_GE(client.retry_stats().retries, 1u);
    EXPECT_GE(client.retry_stats().reconnects, 2u);
    server.stop();
}

} // namespace
} // namespace nassc
