// Tests for 1-qubit Euler synthesis, 2-qubit KAK synthesis templates and
// the multi-controlled-X decompositions.

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "nassc/ir/matrices.h"
#include "nassc/math/weyl.h"
#include "nassc/sim/statevector.h"
#include "nassc/sim/unitary.h"
#include "nassc/synth/euler1q.h"
#include "nassc/synth/kak2q.h"
#include "nassc/synth/mct.h"

namespace nassc {
namespace {

std::mt19937 &
rng()
{
    static std::mt19937 r(777);
    return r;
}

Mat2
random_u2()
{
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    Mat2 m = mul(rz_gate(ang(rng())),
                 mul(ry_gate(ang(rng())), rz_gate(ang(rng()))));
    return scale(m, std::exp(Cx(0.0, ang(rng()))));
}

Mat4
random_u4_with_cx(int n_cx)
{
    auto su2 = [] {
        std::uniform_real_distribution<double> ang(-M_PI, M_PI);
        return mul(rz_gate(ang(rng())),
                   mul(ry_gate(ang(rng())), rz_gate(ang(rng()))));
    };
    Mat4 u = tensor2(su2(), su2());
    std::uniform_int_distribution<int> dir(0, 1);
    for (int k = 0; k < n_cx; ++k) {
        u = mul(dir(rng()) ? cx_mat() : cx_rev_mat(), u);
        u = mul(tensor2(su2(), su2()), u);
    }
    return u;
}

/** Multiply out a gate list over the pair (0, 1). */
Mat4
matrix_of(const std::vector<Gate> &gates)
{
    return unitary_of_2q_gates(gates, 0, 1);
}

Mat2
matrix_of_1q(const std::vector<Gate> &gates, int q)
{
    Mat2 m = Mat2::identity();
    for (const Gate &g : gates) {
        EXPECT_EQ(g.qubits[0], q);
        m = mul(gate_matrix1(g), m);
    }
    return m;
}

// ---- 1q synthesis -----------------------------------------------------------

TEST(Synth1q, IdentityGivesEmpty)
{
    EXPECT_TRUE(synth_1q(Mat2::identity(), 0, Basis1q::kZsx).empty());
    EXPECT_TRUE(synth_1q(scale(Mat2::identity(), std::exp(Cx(0.0, 0.4))), 0,
                         Basis1q::kZsx)
                    .empty());
    EXPECT_TRUE(synth_1q(Mat2::identity(), 0, Basis1q::kUGate).empty());
}

TEST(Synth1q, DiagonalGivesSingleRz)
{
    auto gates = synth_1q(rz_gate(0.8), 3, Basis1q::kZsx);
    ASSERT_EQ(gates.size(), 1u);
    EXPECT_EQ(gates[0].kind, OpKind::kRZ);
    EXPECT_EQ(gates[0].qubits[0], 3);
    EXPECT_TRUE(equal_up_to_phase(matrix_of_1q(gates, 3), rz_gate(0.8)));
}

TEST(Synth1q, HadamardUsesOneSx)
{
    auto gates = synth_1q(hadamard(), 0, Basis1q::kZsx);
    int sx = 0;
    for (const Gate &g : gates)
        if (g.kind == OpKind::kSX)
            ++sx;
    EXPECT_EQ(sx, 1);
    EXPECT_TRUE(equal_up_to_phase(matrix_of_1q(gates, 0), hadamard(), 1e-9));
}

TEST(Synth1q, PauliXIsShortForm)
{
    auto gates = synth_1q(pauli_x(), 0, Basis1q::kZsx);
    ASSERT_LE(gates.size(), 2u);
    EXPECT_TRUE(equal_up_to_phase(matrix_of_1q(gates, 0), pauli_x(), 1e-9));
}

class Synth1qRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(Synth1qRandom, ZsxRoundTrip)
{
    for (int trial = 0; trial < 40; ++trial) {
        Mat2 u = random_u2();
        auto gates = synth_1q(u, 0, Basis1q::kZsx);
        EXPECT_LE(gates.size(), 5u);
        EXPECT_TRUE(equal_up_to_phase(matrix_of_1q(gates, 0), u, 1e-8));
    }
}

TEST_P(Synth1qRandom, UGateRoundTrip)
{
    for (int trial = 0; trial < 40; ++trial) {
        Mat2 u = random_u2();
        auto gates = synth_1q(u, 0, Basis1q::kUGate);
        ASSERT_EQ(gates.size(), 1u);
        EXPECT_TRUE(equal_up_to_phase(matrix_of_1q(gates, 0), u, 1e-8));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Synth1qRandom, ::testing::Values(0, 1, 2));

TEST(Synth1q, SpecialThetaValues)
{
    // Exercise the theta = 0 / pi/2 / pi template branches.
    for (double phi : {0.0, 0.3, -2.0}) {
        for (double lam : {0.0, 1.1, -0.7}) {
            for (double theta : {0.0, M_PI / 2.0, M_PI}) {
                Mat2 u = u3_gate(theta, phi, lam);
                auto gates = synth_1q(u, 0, Basis1q::kZsx);
                EXPECT_TRUE(
                    equal_up_to_phase(matrix_of_1q(gates, 0), u, 1e-8))
                    << "theta=" << theta << " phi=" << phi << " lam=" << lam;
                EXPECT_LE(gates.size(), 3u);
            }
        }
    }
}

TEST(Optimize1qRuns, MergesRuns)
{
    std::vector<Gate> gates;
    gates.push_back(Gate::one_q(OpKind::kH, 0));
    gates.push_back(Gate::one_q(OpKind::kH, 0));
    gates.push_back(Gate::one_q(OpKind::kT, 1));
    gates.push_back(Gate::one_q(OpKind::kTdg, 1));
    int removed = optimize_1q_runs(gates, 2, Basis1q::kZsx);
    EXPECT_EQ(removed, 4);
    EXPECT_TRUE(gates.empty());
}

TEST(Optimize1qRuns, RespectsTwoQubitBarriers)
{
    // h - cx - h on the same wire must NOT merge across the cx.
    std::vector<Gate> gates;
    gates.push_back(Gate::one_q(OpKind::kH, 0));
    gates.push_back(Gate::two_q(OpKind::kCX, 0, 1));
    gates.push_back(Gate::one_q(OpKind::kH, 0));
    QuantumCircuit before(2);
    for (const Gate &g : gates)
        before.append(g);
    optimize_1q_runs(gates, 2, Basis1q::kZsx);
    QuantumCircuit after(2);
    for (const Gate &g : gates)
        after.append(g);
    EXPECT_TRUE(circuits_equivalent(before, after));
    // The cx must still be there.
    int cx = 0;
    for (const Gate &g : gates)
        if (g.kind == OpKind::kCX)
            ++cx;
    EXPECT_EQ(cx, 1);
}

// ---- 2q KAK synthesis ------------------------------------------------------

class Kak2qSynth : public ::testing::TestWithParam<int>
{
};

TEST_P(Kak2qSynth, RoundTripWithMinimalCx)
{
    int n_cx = GetParam();
    for (int trial = 0; trial < 40; ++trial) {
        Mat4 u = random_u4_with_cx(n_cx);
        auto gates = synth_2q_kak(u, 0, 1, Basis1q::kUGate);
        int cx = 0;
        for (const Gate &g : gates)
            if (g.kind == OpKind::kCX)
                ++cx;
        EXPECT_EQ(cx, n_cx);
        EXPECT_TRUE(equal_up_to_phase(matrix_of(gates), u, 1e-6))
            << "n_cx=" << n_cx << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(CxCounts, Kak2qSynth, ::testing::Values(0, 1, 2, 3));

TEST(Kak2qSynthKnown, Cx)
{
    auto gates = synth_2q_kak(cx_mat(), 0, 1);
    EXPECT_TRUE(equal_up_to_phase(matrix_of(gates), cx_mat(), 1e-7));
}

TEST(Kak2qSynthKnown, ReversedCx)
{
    auto gates = synth_2q_kak(cx_rev_mat(), 0, 1);
    int cx = 0;
    for (const Gate &g : gates)
        if (g.kind == OpKind::kCX)
            ++cx;
    EXPECT_EQ(cx, 1);
    EXPECT_TRUE(equal_up_to_phase(matrix_of(gates), cx_rev_mat(), 1e-7));
}

TEST(Kak2qSynthKnown, Swap)
{
    auto gates = synth_2q_kak(swap_mat(), 0, 1);
    EXPECT_TRUE(equal_up_to_phase(matrix_of(gates), swap_mat(), 1e-7));
}

TEST(Kak2qSynthKnown, SwapTimesCxNeedsTwo)
{
    // The paper's motivating observation.
    Mat4 u = mul(swap_mat(), cx_mat());
    auto gates = synth_2q_kak(u, 0, 1);
    int cx = 0;
    for (const Gate &g : gates)
        if (g.kind == OpKind::kCX)
            ++cx;
    EXPECT_EQ(cx, 2);
    EXPECT_TRUE(equal_up_to_phase(matrix_of(gates), u, 1e-7));
}

TEST(Kak2qSynthKnown, CanonicalGateGrid)
{
    // Sweep canonical coordinates across the chamber.
    for (double a : {0.0, 0.2, M_PI / 4.0})
        for (double b : {0.0, 0.15, 0.2})
            for (double c : {-0.1, 0.0, 0.1}) {
                if (b > a || std::abs(c) > b)
                    continue;
                Mat4 u = canonical_gate(a, b, c);
                auto gates = synth_2q_kak(u, 0, 1);
                EXPECT_TRUE(equal_up_to_phase(matrix_of(gates), u, 1e-6))
                    << a << " " << b << " " << c;
            }
}

TEST(Kak2qSynthKnown, ZsxBasisOutput)
{
    for (int trial = 0; trial < 10; ++trial) {
        Mat4 u = random_u4_with_cx(3);
        auto gates = synth_2q_kak(u, 0, 1, Basis1q::kZsx);
        for (const Gate &g : gates) {
            bool ok = g.kind == OpKind::kCX || g.kind == OpKind::kRZ ||
                      g.kind == OpKind::kSX || g.kind == OpKind::kX;
            EXPECT_TRUE(ok) << op_name(g.kind);
        }
        EXPECT_TRUE(equal_up_to_phase(matrix_of(gates), u, 1e-6));
    }
}

TEST(Kak2qSynth, ArbitraryQubitIndices)
{
    Mat4 u = random_u4_with_cx(2);
    auto gates = synth_2q_kak(u, 4, 2, Basis1q::kUGate);
    EXPECT_TRUE(equal_up_to_phase(unitary_of_2q_gates(gates, 4, 2), u, 1e-6));
}

TEST(Unitary2qGates, ReversedOperandGate)
{
    // A cx listed as (q1, q0) must fold with swapped bit roles.
    std::vector<Gate> gates = {Gate::two_q(OpKind::kCX, 1, 0)};
    EXPECT_TRUE(approx_equal(unitary_of_2q_gates(gates, 0, 1), cx_rev_mat()));
}

// ---- MCT --------------------------------------------------------------------

uint64_t
apply_classical(const std::vector<Gate> &gates, int n, uint64_t input)
{
    // Simulate through the statevector (gates may be non-classical in the
    // middle, e.g. ccz phases), then read out the peak basis state.
    Statevector sv(n);
    std::vector<Cx> &amps = sv.mutable_amplitudes();
    std::fill(amps.begin(), amps.end(), Cx(0.0, 0.0));
    amps[input] = 1.0;
    for (const Gate &g : gates)
        sv.apply(g);
    return sv.argmax();
}

TEST(Mct, CcxMatchesNative)
{
    QuantumCircuit native(3);
    native.ccx(0, 1, 2);
    QuantumCircuit dec(3);
    for (const Gate &g : decompose_ccx(0, 1, 2))
        dec.append(g);
    EXPECT_TRUE(circuits_equivalent(native, dec));
    EXPECT_EQ(dec.cx_count(), 6);
}

TEST(Mct, CczMatchesNative)
{
    QuantumCircuit native(3);
    native.ccz(0, 1, 2);
    QuantumCircuit dec(3);
    for (const Gate &g : decompose_ccz(0, 1, 2))
        dec.append(g);
    EXPECT_TRUE(circuits_equivalent(native, dec));
}

TEST(Mct, CswapMatchesNative)
{
    QuantumCircuit native(3);
    native.cswap(0, 1, 2);
    QuantumCircuit dec(3);
    for (const Gate &g : decompose_cswap(0, 1, 2))
        dec.append(g);
    EXPECT_TRUE(circuits_equivalent(native, dec));
}

class MctParam : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(MctParam, TruthTable)
{
    auto [k, extra] = GetParam();
    int n = k + 1 + extra;
    std::vector<int> controls;
    for (int i = 0; i < k; ++i)
        controls.push_back(i);
    int target = k;
    auto gates = decompose_mcx(controls, target, n);

    // Every gate must stay within the register and MCX must be resolved
    // into <= 3-qubit primitives.
    for (const Gate &g : gates) {
        EXPECT_NE(g.kind, OpKind::kMCX);
        for (int q : g.qubits) {
            EXPECT_GE(q, 0);
            EXPECT_LT(q, n);
        }
    }

    uint64_t cmask = (uint64_t(1) << k) - 1;
    uint64_t tbit = uint64_t(1) << target;
    // Exhaustive truth table over control+target+ancilla bits (bounded n).
    for (uint64_t in = 0; in < (uint64_t(1) << n); ++in) {
        uint64_t expect = ((in & cmask) == cmask) ? (in ^ tbit) : in;
        EXPECT_EQ(apply_classical(gates, n, in), expect)
            << "k=" << k << " extra=" << extra << " in=" << in;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MctParam,
    ::testing::Values(std::make_tuple(3, 2), // enough dirty ancillas
                      std::make_tuple(4, 2), // v-chain
                      std::make_tuple(4, 1), // recursive split
                      std::make_tuple(5, 1), // recursive split, deeper
                      std::make_tuple(3, 0), // no ancilla at all
                      std::make_tuple(4, 0), // no ancilla, phase recursion
                      std::make_tuple(5, 0)));

TEST(Mct, McpPhaseCorrect)
{
    // mcp(lambda) applies the phase only on the all-ones state.
    int n = 4;
    double lam = 0.9;
    auto gates = decompose_mcp(lam, {0, 1, 2}, 3, n);
    QuantumCircuit qc(n);
    for (const Gate &g : gates)
        qc.append(g);
    MatN u = unitary_of_circuit(qc);
    for (int i = 0; i < (1 << n); ++i) {
        Cx expect = (i == (1 << n) - 1) ? std::exp(Cx(0.0, lam)) : Cx(1.0, 0.0);
        EXPECT_LT(std::abs(u(i, i) - expect), 1e-8) << i;
        for (int j = 0; j < (1 << n); ++j) {
            if (i != j) {
                EXPECT_LT(std::abs(u(i, j)), 1e-8);
            }
        }
    }
}

} // namespace
} // namespace nassc
