// Exhaustive validation of the commutation oracle's fast paths against
// the exact matrix definition: for every pair of gate kinds and every
// wire-overlap pattern, gates_commute() must agree with multiplying the
// operators out.  The oracle's fast paths are load-bearing for both
// CommutativeCancellation and the NASSC commute windows, so an error
// here would silently corrupt circuits.

#include <random>

#include <gtest/gtest.h>

#include "nassc/passes/commutation.h"
#include "nassc/sim/unitary.h"

namespace nassc {
namespace {

/** Ground truth: compare U_ab vs U_ba on the union of wires. */
bool
matrix_truth(const Gate &a, const Gate &b, int num_qubits)
{
    QuantumCircuit ab(num_qubits), ba(num_qubits);
    ab.append(a);
    ab.append(b);
    ba.append(b);
    ba.append(a);
    MatN uab = unitary_of_circuit(ab);
    MatN uba = unitary_of_circuit(ba);
    return frobenius_distance(uab, uba) < 1e-9;
}

Gate
make_gate(OpKind k, const std::vector<int> &qs)
{
    std::vector<double> params;
    for (int i = 0; i < op_num_params(k); ++i)
        params.push_back(0.37 + 0.21 * i); // fixed non-special angles
    return Gate(k, qs, params);
}

const OpKind kOneQ[] = {OpKind::kX,  OpKind::kY,   OpKind::kZ,
                        OpKind::kH,  OpKind::kS,   OpKind::kT,
                        OpKind::kSX, OpKind::kRX,  OpKind::kRY,
                        OpKind::kRZ, OpKind::kP,   OpKind::kU};

const OpKind kTwoQ[] = {OpKind::kCX,  OpKind::kCY,   OpKind::kCZ,
                        OpKind::kCH,  OpKind::kCP,   OpKind::kCRX,
                        OpKind::kCRZ, OpKind::kRZZ,  OpKind::kRXX,
                        OpKind::kSwap, OpKind::kISwap};

TEST(CommutationExhaustive, OneQubitPairsSameWire)
{
    for (OpKind ka : kOneQ) {
        for (OpKind kb : kOneQ) {
            Gate a = make_gate(ka, {0});
            Gate b = make_gate(kb, {0});
            EXPECT_EQ(gates_commute(a, b), matrix_truth(a, b, 1))
                << op_name(ka) << " vs " << op_name(kb);
        }
    }
}

TEST(CommutationExhaustive, OneQubitVsTwoQubitAllOverlaps)
{
    for (OpKind ka : kOneQ) {
        for (OpKind kb : kTwoQ) {
            for (int wire : {0, 1}) {
                Gate a = make_gate(ka, {wire});
                Gate b = make_gate(kb, {0, 1});
                EXPECT_EQ(gates_commute(a, b), matrix_truth(a, b, 2))
                    << op_name(ka) << "@q" << wire << " vs "
                    << op_name(kb);
                EXPECT_EQ(gates_commute(b, a), gates_commute(a, b))
                    << "symmetry " << op_name(ka) << "/" << op_name(kb);
            }
        }
    }
}

TEST(CommutationExhaustive, TwoQubitPairsSamePair)
{
    for (OpKind ka : kTwoQ) {
        for (OpKind kb : kTwoQ) {
            for (bool flip : {false, true}) {
                Gate a = make_gate(ka, {0, 1});
                Gate b = make_gate(kb, flip ? std::vector<int>{1, 0}
                                            : std::vector<int>{0, 1});
                EXPECT_EQ(gates_commute(a, b), matrix_truth(a, b, 2))
                    << op_name(ka) << " vs " << op_name(kb)
                    << (flip ? " flipped" : "");
            }
        }
    }
}

TEST(CommutationExhaustive, TwoQubitPairsSharedWire)
{
    // Gates on (0,1) vs (1,2) and vs (2,1): one shared wire in both
    // control-like and target-like positions.
    for (OpKind ka : kTwoQ) {
        for (OpKind kb : kTwoQ) {
            for (bool flip : {false, true}) {
                Gate a = make_gate(ka, {0, 1});
                Gate b = make_gate(kb, flip ? std::vector<int>{2, 1}
                                            : std::vector<int>{1, 2});
                EXPECT_EQ(gates_commute(a, b), matrix_truth(a, b, 3))
                    << op_name(ka) << " vs " << op_name(kb)
                    << (flip ? " flipped" : "");
            }
        }
    }
}

TEST(CommutationExhaustive, RandomAnglesAgree)
{
    // Angle-dependent cases (e.g. rz(pi) = Z commutes differently than
    // generic rz? it must not — but p(pi)/cp(pi) hit special values).
    std::mt19937 rng(123);
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    const OpKind param1q[] = {OpKind::kRX, OpKind::kRZ, OpKind::kP};
    const OpKind param2q[] = {OpKind::kCP, OpKind::kCRX, OpKind::kRZZ};
    for (int trial = 0; trial < 30; ++trial) {
        Gate a(param1q[trial % 3], {trial % 2}, {ang(rng)});
        Gate b(param2q[(trial / 3) % 3], {0, 1}, {ang(rng)});
        EXPECT_EQ(gates_commute(a, b), matrix_truth(a, b, 2))
            << trial;
    }
}

TEST(CommutationExhaustive, DisjointAlwaysCommute)
{
    for (OpKind ka : kTwoQ) {
        Gate a = make_gate(ka, {0, 1});
        Gate b = make_gate(OpKind::kCX, {2, 3});
        EXPECT_TRUE(gates_commute(a, b)) << op_name(ka);
    }
}

TEST(CommutationExhaustive, BarriersNeverCommute)
{
    Gate barrier = Gate::barrier({0, 1});
    Gate cx = Gate::two_q(OpKind::kCX, 0, 1);
    EXPECT_FALSE(gates_commute(barrier, cx));
    EXPECT_FALSE(gates_commute(cx, barrier));
}

TEST(CommutationExhaustive, MeasureCommutesOnlyDisjoint)
{
    Gate m = Gate::measure(0);
    EXPECT_FALSE(gates_commute(m, Gate::two_q(OpKind::kCX, 0, 1)));
    EXPECT_TRUE(gates_commute(m, Gate::two_q(OpKind::kCX, 1, 2)));
}

} // namespace
} // namespace nassc
