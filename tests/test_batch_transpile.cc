// Tests for the parallel batch-transpilation engine: results must be
// bit-identical regardless of thread count and job submission order, a
// throwing job must surface as a failed result without poisoning its
// batch, and the shared DistanceCache must compute each backend's
// matrix exactly once.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <tuple>

#include "nassc/circuits/library.h"
#include "nassc/service/batch_transpiler.h"

namespace nassc {
namespace {

/** Everything deterministic about a TranspileResult, comparable. */
using Metrics = std::tuple<int, int, int, int, int, int, int, int, int,
                           std::size_t, std::vector<int>>;

Metrics
metrics_of(const TranspileResult &r)
{
    return {r.cx_total,
            r.depth,
            r.routing_stats.num_swaps,
            r.routing_stats.flagged_swaps,
            r.routing_stats.c2q_hits,
            r.routing_stats.commute1_hits,
            r.routing_stats.commute2_hits,
            r.routing_stats.moved_1q,
            r.routing_stats.forced_moves,
            r.circuit.size(),
            r.initial_l2p};
}

std::map<std::string, Metrics>
metrics_by_tag(const BatchReport &report)
{
    std::map<std::string, Metrics> m;
    for (const JobResult &jr : report.results) {
        EXPECT_TRUE(jr.ok) << jr.tag << ": " << jr.error;
        if (jr.ok)
            m[jr.tag] = metrics_of(jr.result);
    }
    return m;
}

/** One NASSC + one SABRE job per Table I benchmark. */
std::vector<TranspileJob>
table1_jobs(const std::shared_ptr<const Backend> &dev)
{
    std::vector<TranspileJob> jobs;
    for (const BenchmarkCase &bc : table_benchmarks()) {
        for (RoutingAlgorithm router :
             {RoutingAlgorithm::kSabre, RoutingAlgorithm::kNassc}) {
            TranspileJob job;
            job.tag = bc.name + (router == RoutingAlgorithm::kNassc
                                     ? "/nassc"
                                     : "/sabre");
            job.circuit = bc.circuit;
            job.backend = dev;
            job.options.router = router;
            job.options.seed = 0;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

/** Shared reference run so the suite transpiles Table I only once. */
class BatchTable1 : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        dev_ = std::make_shared<Backend>(montreal_backend());
        jobs_ = table1_jobs(dev_);
        BatchOptions opts;
        opts.num_threads = 1;
        reference_ = metrics_by_tag(BatchTranspiler(opts).run(jobs_));
        ASSERT_EQ(reference_.size(), jobs_.size());
    }

    static std::shared_ptr<const Backend> dev_;
    static std::vector<TranspileJob> jobs_;
    static std::map<std::string, Metrics> reference_;
};

std::shared_ptr<const Backend> BatchTable1::dev_;
std::vector<TranspileJob> BatchTable1::jobs_;
std::map<std::string, Metrics> BatchTable1::reference_;

TEST_F(BatchTable1, IdenticalAcrossThreadCounts)
{
    for (int threads : {2, 8}) {
        BatchOptions opts;
        opts.num_threads = threads;
        BatchReport report = BatchTranspiler(opts).run(jobs_);
        EXPECT_EQ(metrics_by_tag(report), reference_)
            << "metrics diverged at " << threads << " threads";
        // Submission order must be preserved in the results.
        for (std::size_t i = 0; i < report.results.size(); ++i) {
            EXPECT_EQ(report.results[i].index, i);
            EXPECT_EQ(report.results[i].tag, jobs_[i].tag);
        }
    }
}

TEST_F(BatchTable1, IdenticalAcrossSubmissionOrders)
{
    std::vector<TranspileJob> shuffled = jobs_;
    std::mt19937 rng(42);
    std::shuffle(shuffled.begin(), shuffled.end(), rng);

    BatchOptions opts;
    opts.num_threads = 4;
    BatchReport report = BatchTranspiler(opts).run(shuffled);
    EXPECT_EQ(metrics_by_tag(report), reference_);
}

TEST(BatchTranspiler, FailedJobDoesNotPoisonBatch)
{
    auto dev = std::make_shared<Backend>(montreal_backend());

    TranspileJob good;
    good.tag = "good";
    good.circuit = ghz(5);
    good.backend = dev;

    TranspileJob too_wide; // 40 logical qubits on a 27-qubit device
    too_wide.tag = "too_wide";
    too_wide.circuit = ghz(40);
    too_wide.backend = dev;

    TranspileJob no_backend;
    no_backend.tag = "no_backend";
    no_backend.circuit = ghz(3);

    BatchOptions opts;
    opts.num_threads = 2;
    BatchTranspiler engine(opts);
    BatchReport report = engine.run({good, too_wide, no_backend, good});

    ASSERT_EQ(report.results.size(), 4u);
    EXPECT_EQ(report.num_ok, 2u);
    EXPECT_EQ(report.num_failed, 2u);

    EXPECT_TRUE(report.results[0].ok);
    EXPECT_FALSE(report.results[1].ok);
    EXPECT_NE(report.results[1].error.find("more logical than physical"),
              std::string::npos)
        << report.results[1].error;
    EXPECT_FALSE(report.results[2].ok);
    EXPECT_FALSE(report.results[2].error.empty());
    EXPECT_TRUE(report.results[3].ok);

    // Jobs around the failures are unaffected: same result as a solo run.
    TranspileResult solo = transpile(good.circuit, *dev, good.options);
    EXPECT_EQ(metrics_of(report.results[0].result), metrics_of(solo));
    EXPECT_EQ(metrics_of(report.results[3].result), metrics_of(solo));
}

TEST(BatchTranspiler, DistanceCacheComputesOncePerBackend)
{
    auto montreal = std::make_shared<Backend>(montreal_backend());
    auto grid = std::make_shared<Backend>(grid_backend(5, 5));

    std::vector<TranspileJob> jobs;
    for (int s = 0; s < 6; ++s) {
        TranspileJob job;
        job.tag = "m" + std::to_string(s);
        job.circuit = qft(6);
        job.backend = montreal;
        job.options.seed = static_cast<unsigned>(s);
        jobs.push_back(job);
        job.tag = "g" + std::to_string(s);
        job.backend = grid;
        jobs.push_back(job);
    }

    BatchOptions opts;
    opts.num_threads = 8;
    BatchTranspiler engine(opts);
    BatchReport report = engine.run(jobs);
    EXPECT_EQ(report.num_ok, jobs.size());
    // 12 jobs, 2 distinct (backend, metric) keys -> exactly 2 computations.
    EXPECT_EQ(report.distance_computations, 2u);
    EXPECT_EQ(engine.distance_cache().computation_count(), 2u);
    EXPECT_EQ(engine.distance_cache().hit_count(), jobs.size() - 2);

    // A second batch on the same engine is served entirely from cache.
    BatchReport again = engine.run(jobs);
    EXPECT_EQ(again.num_ok, jobs.size());
    EXPECT_EQ(again.distance_computations, 0u);
}

TEST(DistanceCache, KeysSeparateBackendsAndMetrics)
{
    Backend montreal = montreal_backend();
    Backend linear = linear_backend(25);

    DistanceCache cache;
    SharedDistanceMatrix hops1 = cache.get(montreal);
    SharedDistanceMatrix hops2 = cache.get(montreal);
    EXPECT_EQ(hops1.get(), hops2.get()); // same shared matrix
    EXPECT_EQ(cache.computation_count(), 1u);
    EXPECT_EQ(cache.hit_count(), 1u);

    SharedDistanceMatrix noise = cache.get(montreal, DistanceRequest::noise());
    EXPECT_NE(noise.get(), hops1.get());
    SharedDistanceMatrix other = cache.get(linear);
    EXPECT_NE(other.get(), hops1.get());
    EXPECT_EQ(cache.computation_count(), 3u);
    EXPECT_EQ(cache.size(), 3u);

    // The cached hop matrix matches a direct computation.
    EXPECT_EQ(*hops1, hop_distance(montreal.coupling));
    EXPECT_EQ(*noise, noise_aware_distance(montreal));

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    // Cleared entries recompute, but handed-out matrices stay valid.
    SharedDistanceMatrix hops3 = cache.get(montreal);
    EXPECT_EQ(*hops3, *hops1);
    EXPECT_EQ(cache.computation_count(), 4u);
}

TEST(BatchTranspiler, DerivedSeedsAreOrderIndependent)
{
    EXPECT_EQ(derive_job_seed(7, "qft_n15", 2), derive_job_seed(7, "qft_n15", 2));
    EXPECT_NE(derive_job_seed(7, "qft_n15", 2), derive_job_seed(7, "qft_n15", 3));
    EXPECT_NE(derive_job_seed(7, "qft_n15", 2), derive_job_seed(8, "qft_n15", 2));
    EXPECT_NE(derive_job_seed(7, "qft_n15", 2), derive_job_seed(7, "qft_n20", 2));

    auto dev = std::make_shared<Backend>(montreal_backend());
    std::vector<TranspileJob> jobs;
    for (int s = 0; s < 3; ++s) {
        TranspileJob job;
        job.tag = "bv/s" + std::to_string(s);
        job.circuit = bernstein_vazirani(10, 0x2bd);
        job.backend = dev;
        job.options.seed = static_cast<unsigned>(s);
        jobs.push_back(std::move(job));
    }

    BatchOptions opts;
    opts.num_threads = 2;
    opts.derive_seeds = true;
    opts.base_seed = 99;
    BatchReport report = BatchTranspiler(opts).run(jobs);
    for (const JobResult &jr : report.results) {
        EXPECT_TRUE(jr.ok);
        EXPECT_EQ(jr.seed_used,
                  derive_job_seed(99, jr.tag, static_cast<unsigned>(jr.index)));
    }
}

} // namespace
} // namespace nassc
