// Unit tests for the circuit IR: gates, circuits, DAG, and QASM I/O.

#include <gtest/gtest.h>

#include "nassc/ir/circuit.h"
#include "nassc/ir/dag.h"
#include "nassc/ir/qasm.h"
#include "nassc/sim/unitary.h"

namespace nassc {
namespace {

TEST(OpKind, NamesRoundTrip)
{
    for (int i = 0; i <= static_cast<int>(OpKind::kMeasure); ++i) {
        OpKind k = static_cast<OpKind>(i);
        auto back = op_from_name(op_name(k));
        ASSERT_TRUE(back.has_value()) << op_name(k);
        EXPECT_EQ(*back, k);
    }
}

TEST(OpKind, Aliases)
{
    EXPECT_EQ(op_from_name("u3"), OpKind::kU);
    EXPECT_EQ(op_from_name("cnot"), OpKind::kCX);
    EXPECT_EQ(op_from_name("u1"), OpKind::kP);
    EXPECT_FALSE(op_from_name("nonsense").has_value());
}

TEST(OpKind, ArityAndParams)
{
    EXPECT_EQ(op_arity(OpKind::kH), 1);
    EXPECT_EQ(op_arity(OpKind::kCX), 2);
    EXPECT_EQ(op_arity(OpKind::kCCX), 3);
    EXPECT_EQ(op_arity(OpKind::kMCX), -1);
    EXPECT_EQ(op_num_params(OpKind::kU), 3);
    EXPECT_EQ(op_num_params(OpKind::kRZ), 1);
    EXPECT_EQ(op_num_params(OpKind::kCX), 0);
}

TEST(Gate, ValidatesOperands)
{
    EXPECT_THROW(Gate(OpKind::kCX, {0}), std::invalid_argument);
    EXPECT_THROW(Gate(OpKind::kCX, {0, 0}), std::invalid_argument);
    EXPECT_THROW(Gate(OpKind::kRZ, {0}), std::invalid_argument); // no param
    EXPECT_NO_THROW(Gate(OpKind::kRZ, {0}, {0.5}));
}

TEST(Gate, InverseOfParametrized)
{
    Gate rz = Gate::one_q(OpKind::kRZ, 2, 0.7);
    Gate inv = rz.inverse();
    EXPECT_EQ(inv.kind, OpKind::kRZ);
    EXPECT_DOUBLE_EQ(inv.params[0], -0.7);

    Gate u = Gate::u(0, 0.1, 0.2, 0.3);
    Gate ui = u.inverse();
    EXPECT_DOUBLE_EQ(ui.params[0], -0.1);
    EXPECT_DOUBLE_EQ(ui.params[1], -0.3);
    EXPECT_DOUBLE_EQ(ui.params[2], -0.2);

    EXPECT_EQ(Gate::one_q(OpKind::kS, 0).inverse().kind, OpKind::kSdg);
    EXPECT_EQ(Gate::one_q(OpKind::kH, 0).inverse().kind, OpKind::kH);
}

TEST(Circuit, AppendValidatesRange)
{
    QuantumCircuit qc(2);
    EXPECT_THROW(qc.cx(0, 2), std::out_of_range);
    EXPECT_NO_THROW(qc.cx(0, 1));
}

TEST(Circuit, DepthSerialVsParallel)
{
    QuantumCircuit qc(3);
    qc.h(0);
    qc.h(1);
    qc.h(2);
    EXPECT_EQ(qc.depth(), 1); // all parallel
    qc.cx(0, 1);
    EXPECT_EQ(qc.depth(), 2);
    qc.cx(1, 2);
    EXPECT_EQ(qc.depth(), 3);
    qc.x(0);
    EXPECT_EQ(qc.depth(), 3); // fits beside cx(1,2)
}

TEST(Circuit, CountOps)
{
    QuantumCircuit qc(2);
    qc.h(0);
    qc.cx(0, 1);
    qc.cx(1, 0);
    auto counts = qc.count_ops();
    EXPECT_EQ(counts["h"], 1);
    EXPECT_EQ(counts["cx"], 2);
    EXPECT_EQ(qc.cx_count(), 2);
    EXPECT_EQ(qc.count_2q(), 2);
}

TEST(Circuit, InverseIsInverse)
{
    QuantumCircuit qc(3);
    qc.h(0);
    qc.t(1);
    qc.cx(0, 1);
    qc.rz(0.3, 2);
    qc.ccx(0, 1, 2);
    QuantumCircuit id(3);
    id.compose(qc);
    id.compose(qc.inverse());
    MatN u = unitary_of_circuit(id);
    EXPECT_TRUE(equal_up_to_phase(u, MatN::identity(8)));
}

TEST(Circuit, InverseReversesOrder)
{
    QuantumCircuit qc(1);
    qc.s(0);
    qc.t(0);
    QuantumCircuit inv = qc.inverse();
    EXPECT_EQ(inv.gate(0).kind, OpKind::kTdg);
    EXPECT_EQ(inv.gate(1).kind, OpKind::kSdg);
}

TEST(Circuit, WithoutNonUnitary)
{
    QuantumCircuit qc(2);
    qc.h(0);
    qc.measure_all();
    qc.barrier();
    EXPECT_EQ(qc.without_non_unitary().size(), 1u);
}

TEST(Dag, LinearChainDependencies)
{
    QuantumCircuit qc(1);
    qc.h(0);
    qc.t(0);
    qc.x(0);
    DagCircuit dag(qc);
    EXPECT_EQ(dag.num_nodes(), 3);
    EXPECT_EQ(dag.initial_front(), std::vector<int>({0}));
    EXPECT_EQ(dag.preds(1)[0], 0);
    EXPECT_EQ(dag.succs(1)[0], 2);
    EXPECT_EQ(dag.succs(2)[0], -1);
    EXPECT_EQ(dag.wire_front(0), 0);
    EXPECT_EQ(dag.wire_back(0), 2);
}

TEST(Dag, TwoQubitGateJoinsWires)
{
    QuantumCircuit qc(2);
    qc.h(0);   // 0
    qc.h(1);   // 1
    qc.cx(0, 1); // 2
    qc.x(0);   // 3
    DagCircuit dag(qc);
    EXPECT_EQ(dag.initial_front(), std::vector<int>({0, 1}));
    EXPECT_EQ(dag.num_distinct_preds(2), 2);
    EXPECT_EQ(std::vector<int>(dag.preds(2).begin(), dag.preds(2).end()),
              std::vector<int>({0, 1}));
    EXPECT_EQ(std::vector<int>(dag.succs(2).begin(), dag.succs(2).end()),
              std::vector<int>({3, -1}));
    EXPECT_EQ(std::vector<int>(dag.distinct_preds(2).begin(),
                               dag.distinct_preds(2).end()),
              std::vector<int>({0, 1}));
    EXPECT_EQ(std::vector<int>(dag.distinct_succs(2).begin(),
                               dag.distinct_succs(2).end()),
              std::vector<int>({3}));
}

TEST(Dag, DistinctViewsDeduplicateAndSort)
{
    // cx(1,0) then cx(0,1): both wires connect the same node pair, so the
    // per-position view repeats the neighbor while the distinct view
    // collapses it.
    QuantumCircuit qc(2);
    qc.cx(1, 0);
    qc.cx(0, 1);
    DagCircuit dag(qc);
    EXPECT_EQ(dag.succs(0).size(), 2);
    EXPECT_EQ(dag.succs(0)[0], 1);
    EXPECT_EQ(dag.succs(0)[1], 1);
    EXPECT_EQ(dag.distinct_succs(0).size(), 1);
    EXPECT_EQ(dag.distinct_succs(0)[0], 1);
    EXPECT_EQ(dag.distinct_preds(1).size(), 1);
    EXPECT_EQ(dag.num_distinct_preds(1), 1);
    EXPECT_TRUE(dag.distinct_succs(1).empty());
}

TEST(Dag, DistinctPredCountsSharedPredecessor)
{
    // cx(0,1) followed by cx(0,1): the second has ONE distinct pred.
    QuantumCircuit qc(2);
    qc.cx(0, 1);
    qc.cx(0, 1);
    DagCircuit dag(qc);
    EXPECT_EQ(dag.num_distinct_preds(1), 1);
}

TEST(Dag, RoundTripsToCircuit)
{
    QuantumCircuit qc(3);
    qc.h(0);
    qc.cx(0, 2);
    qc.ccx(0, 1, 2);
    DagCircuit dag(qc);
    QuantumCircuit back = dag.to_circuit();
    ASSERT_EQ(back.size(), qc.size());
    for (size_t i = 0; i < qc.size(); ++i)
        EXPECT_TRUE(back.gate(i) == qc.gate(i));
}

TEST(Qasm, EmitsHeaderAndGates)
{
    QuantumCircuit qc(2);
    qc.h(0);
    qc.cx(0, 1);
    qc.rz(M_PI / 4.0, 1);
    qc.measure(0);
    std::string text = to_qasm(qc);
    EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(text.find("qreg q[2];"), std::string::npos);
    EXPECT_NE(text.find("h q[0];"), std::string::npos);
    EXPECT_NE(text.find("cx q[0], q[1];"), std::string::npos);
    EXPECT_NE(text.find("measure q[0] -> c[0];"), std::string::npos);
}

TEST(Qasm, RoundTripPreservesSemantics)
{
    QuantumCircuit qc(3);
    qc.h(0);
    qc.u(0.1, 0.2, 0.3, 1);
    qc.cp(0.7, 0, 2);
    qc.ccx(0, 1, 2);
    qc.swap(1, 2);
    QuantumCircuit back = from_qasm(to_qasm(qc));
    ASSERT_EQ(back.num_qubits(), 3);
    EXPECT_TRUE(circuits_equivalent(qc, back));
}

TEST(Qasm, ParsesPiExpressions)
{
    std::string text = R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[1];
        rz(pi/2) q[0];
        rz(-pi/4) q[0];
        rz(3*pi/2) q[0];
        rz(2*(pi+1)) q[0];
        rz(1.5e-3) q[0];
    )";
    QuantumCircuit qc = from_qasm(text);
    ASSERT_EQ(qc.size(), 5u);
    EXPECT_DOUBLE_EQ(qc.gate(0).params[0], M_PI / 2.0);
    EXPECT_DOUBLE_EQ(qc.gate(1).params[0], -M_PI / 4.0);
    EXPECT_DOUBLE_EQ(qc.gate(2).params[0], 3.0 * M_PI / 2.0);
    EXPECT_DOUBLE_EQ(qc.gate(3).params[0], 2.0 * (M_PI + 1.0));
    EXPECT_DOUBLE_EQ(qc.gate(4).params[0], 1.5e-3);
}

TEST(Qasm, ParsesMultipleRegisters)
{
    std::string text = R"(
        OPENQASM 2.0;
        qreg a[2];
        qreg b[2];
        cx a[1], b[0];
    )";
    QuantumCircuit qc = from_qasm(text);
    EXPECT_EQ(qc.num_qubits(), 4);
    EXPECT_EQ(qc.gate(0).qubits, std::vector<int>({1, 2}));
}

TEST(Qasm, ParsesU2Alias)
{
    QuantumCircuit qc =
        from_qasm("qreg q[1]; u2(0.1, 0.2) q[0];");
    ASSERT_EQ(qc.size(), 1u);
    EXPECT_EQ(qc.gate(0).kind, OpKind::kU);
    EXPECT_DOUBLE_EQ(qc.gate(0).params[0], M_PI / 2.0);
}

TEST(Qasm, RejectsUnknownGate)
{
    EXPECT_THROW(from_qasm("qreg q[1]; frobnicate q[0];"),
                 std::runtime_error);
    EXPECT_THROW(from_qasm("qreg q[1]; h q[5];"), std::runtime_error);
}

TEST(Qasm, IgnoresComments)
{
    QuantumCircuit qc = from_qasm(
        "// header comment\nqreg q[1];\nh q[0]; // trailing\n");
    EXPECT_EQ(qc.size(), 1u);
}

} // namespace
} // namespace nassc
