// Tests for the optimization passes: basis translation, block
// collection/consolidation, commutation analysis, commutative
// cancellation, and SWAP decomposition.

#include <random>

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/passes/cancellation.h"
#include "nassc/passes/collect_blocks.h"
#include "nassc/passes/commutation.h"
#include "nassc/passes/decompose_swaps.h"
#include "nassc/passes/optimize_1q.h"
#include "nassc/sim/unitary.h"

namespace nassc {
namespace {

// ---- basis translation ------------------------------------------------------

TEST(BasisTranslation, DecomposesToffoli)
{
    QuantumCircuit qc(3);
    qc.ccx(0, 1, 2);
    QuantumCircuit low = decompose_to_2q(qc);
    for (const Gate &g : low.gates())
        EXPECT_LE(g.num_qubits(), 2);
    EXPECT_TRUE(circuits_equivalent(qc, low));
}

TEST(BasisTranslation, DecomposesMcxThroughCcx)
{
    QuantumCircuit qc(6);
    qc.mcx({0, 1, 2, 3}, 4);
    QuantumCircuit low = decompose_to_2q(qc);
    for (const Gate &g : low.gates())
        EXPECT_LE(g.num_qubits(), 2);
    EXPECT_TRUE(circuits_equivalent(qc, low));
}

TEST(BasisTranslation, TranslatesToIbmBasis)
{
    QuantumCircuit qc(3);
    qc.h(0);
    qc.t(1);
    qc.cz(0, 1);
    qc.cp(0.3, 1, 2);
    qc.swap(0, 2);
    qc.rzz(0.5, 0, 1);
    QuantumCircuit basis = translate_to_basis(qc);
    EXPECT_TRUE(is_basis_circuit(basis));
    EXPECT_TRUE(circuits_equivalent(qc, basis));
}

TEST(BasisTranslation, CzCostsOneCx)
{
    QuantumCircuit qc(2);
    qc.cz(0, 1);
    QuantumCircuit basis = translate_to_basis(qc);
    EXPECT_EQ(basis.cx_count(), 1);
}

TEST(BasisTranslation, CpCostsTwoCx)
{
    QuantumCircuit qc(2);
    qc.cp(0.4, 0, 1);
    QuantumCircuit basis = translate_to_basis(qc);
    EXPECT_EQ(basis.cx_count(), 2);
}

TEST(BasisTranslation, PreservesMeasure)
{
    QuantumCircuit qc(1);
    qc.h(0);
    qc.measure(0);
    QuantumCircuit basis = translate_to_basis(qc);
    EXPECT_EQ(basis.count(OpKind::kMeasure), 1);
}

// ---- block collection -------------------------------------------------------

TEST(CollectBlocks, SingleBlock)
{
    QuantumCircuit qc(2);
    qc.h(0);
    qc.cx(0, 1);
    qc.t(1);
    qc.cx(0, 1);
    auto blocks = collect_2q_blocks(qc);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].q0, 0);
    EXPECT_EQ(blocks[0].q1, 1);
    EXPECT_EQ(blocks[0].gate_indices.size(), 4u);
    EXPECT_EQ(blocks[0].num_2q, 2);
}

TEST(CollectBlocks, BrokenByThirdWire)
{
    QuantumCircuit qc(3);
    qc.cx(0, 1);
    qc.cx(1, 2); // touches wire 1 -> closes first block
    qc.cx(0, 1);
    auto blocks = collect_2q_blocks(qc);
    ASSERT_EQ(blocks.size(), 3u);
}

TEST(CollectBlocks, BrokenByBarrier)
{
    QuantumCircuit qc(2);
    qc.cx(0, 1);
    qc.barrier();
    qc.cx(0, 1);
    auto blocks = collect_2q_blocks(qc);
    ASSERT_EQ(blocks.size(), 2u);
}

TEST(Consolidate, CancelsDoubleCx)
{
    QuantumCircuit qc(2);
    qc.cx(0, 1);
    qc.cx(0, 1);
    auto stats = consolidate_2q_blocks(qc);
    EXPECT_EQ(stats.blocks_replaced, 1);
    EXPECT_EQ(qc.cx_count(), 0);
}

TEST(Consolidate, CompressesLongBlock)
{
    // Any block on one pair can be rewritten with <= 3 CNOTs.
    QuantumCircuit qc(2);
    for (int i = 0; i < 6; ++i) {
        qc.cx(i % 2, 1 - i % 2);
        qc.t(0);
        qc.rx(0.3 + i, 1);
    }
    QuantumCircuit before = qc;
    auto stats = consolidate_2q_blocks(qc);
    EXPECT_EQ(stats.blocks_replaced, 1);
    EXPECT_LE(qc.cx_count(), 3);
    EXPECT_TRUE(circuits_equivalent(before, qc));
}

TEST(Consolidate, AbsorbsSwapIntoRichBlock)
{
    // Paper Sec. III: a SWAP following a 3-CNOT block is free.
    QuantumCircuit qc(2);
    qc.cx(0, 1);
    qc.ry(0.4, 0);
    qc.cx(1, 0);
    qc.rz(0.7, 1);
    qc.cx(0, 1);
    qc.ry(1.1, 1);
    qc.swap(0, 1);
    QuantumCircuit before = qc;
    consolidate_2q_blocks(qc);
    EXPECT_LE(qc.cx_count() + 3 * qc.count(OpKind::kSwap), 3);
    EXPECT_TRUE(circuits_equivalent(before, qc));
}

TEST(Consolidate, SwapPlusCnotCostsTwo)
{
    QuantumCircuit qc(2);
    qc.cx(0, 1);
    qc.swap(0, 1);
    QuantumCircuit before = qc;
    consolidate_2q_blocks(qc);
    EXPECT_EQ(qc.cx_count() + 3 * qc.count(OpKind::kSwap), 2);
    EXPECT_TRUE(circuits_equivalent(before, qc));
}

TEST(Consolidate, LeavesSingleCheapGates)
{
    QuantumCircuit qc(2);
    qc.cx(0, 1);
    auto stats = consolidate_2q_blocks(qc);
    EXPECT_EQ(stats.blocks_replaced, 0);
    EXPECT_EQ(qc.cx_count(), 1);
}

TEST(Consolidate, PreservesSemanticsOnBenchmarks)
{
    QuantumCircuit qc = decompose_to_2q(grover(4));
    QuantumCircuit before = qc;
    consolidate_2q_blocks(qc);
    EXPECT_TRUE(circuits_equivalent(before, qc));
    QuantumCircuit qc2 = qft(4);
    QuantumCircuit before2 = qc2;
    consolidate_2q_blocks(qc2);
    EXPECT_TRUE(circuits_equivalent(before2, qc2));
}

// ---- commutation ------------------------------------------------------------

TEST(Commutation, DisjointGatesCommute)
{
    EXPECT_TRUE(gates_commute(Gate::one_q(OpKind::kH, 0),
                              Gate::one_q(OpKind::kX, 1)));
}

TEST(Commutation, CxSharingControlCommutes)
{
    EXPECT_TRUE(gates_commute(Gate::two_q(OpKind::kCX, 0, 1),
                              Gate::two_q(OpKind::kCX, 0, 2)));
}

TEST(Commutation, CxSharingTargetCommutes)
{
    // The paper's Fig. 4 example.
    EXPECT_TRUE(gates_commute(Gate::two_q(OpKind::kCX, 0, 2),
                              Gate::two_q(OpKind::kCX, 1, 2)));
}

TEST(Commutation, CxControlMeetingTargetDoesNot)
{
    EXPECT_FALSE(gates_commute(Gate::two_q(OpKind::kCX, 0, 1),
                               Gate::two_q(OpKind::kCX, 1, 2)));
    EXPECT_FALSE(gates_commute(Gate::two_q(OpKind::kCX, 0, 1),
                               Gate::two_q(OpKind::kCX, 1, 0)));
}

TEST(Commutation, RzOnControlCommutes)
{
    EXPECT_TRUE(gates_commute(Gate::one_q(OpKind::kRZ, 0, 0.3),
                              Gate::two_q(OpKind::kCX, 0, 1)));
    EXPECT_FALSE(gates_commute(Gate::one_q(OpKind::kRZ, 1, 0.3),
                               Gate::two_q(OpKind::kCX, 0, 1)));
}

TEST(Commutation, XOnTargetCommutes)
{
    EXPECT_TRUE(gates_commute(Gate::one_q(OpKind::kX, 1),
                              Gate::two_q(OpKind::kCX, 0, 1)));
    EXPECT_FALSE(gates_commute(Gate::one_q(OpKind::kX, 0),
                               Gate::two_q(OpKind::kCX, 0, 1)));
}

TEST(Commutation, MatrixFallbackCrx)
{
    // The controlled-Rx commutes with a CX sharing the control wire
    // (paper Sec. IV-B example) ...
    EXPECT_TRUE(gates_commute(Gate::two_q(OpKind::kCRX, 0, 1, 0.7),
                              Gate::two_q(OpKind::kCX, 0, 2)));
    // ... and with a CX sharing its *target* as the target.
    EXPECT_TRUE(gates_commute(Gate::two_q(OpKind::kCRX, 0, 1, 0.7),
                              Gate::two_q(OpKind::kCX, 2, 1)));
}

TEST(Commutation, AnalysisGroupsSets)
{
    QuantumCircuit qc(3);
    qc.cx(0, 2); // 0
    qc.cx(1, 2); // 1  (commutes with 0: shared target)
    qc.h(2);     // 2  (breaks the set on wire 2)
    qc.cx(0, 2); // 3
    CommutationInfo info = analyze_commutation(qc);
    EXPECT_EQ(info.set_of(2, 0), info.set_of(2, 1));
    EXPECT_NE(info.set_of(2, 1), info.set_of(2, 3));
    EXPECT_EQ(info.set_of(1, 1), 0);
    EXPECT_EQ(info.set_of(2, 2), info.set_of(2, 2));
}

// ---- cancellation -----------------------------------------------------------

TEST(Cancellation, AdjacentCxPair)
{
    QuantumCircuit qc(2);
    qc.cx(0, 1);
    qc.cx(0, 1);
    EXPECT_EQ(run_commutative_cancellation(qc), 2);
    EXPECT_EQ(qc.size(), 0u);
}

TEST(Cancellation, ThroughCommutingCx)
{
    // Paper Fig. 4: cx(0,2) cx(1,2) cx(0,2) -> cx(1,2).
    QuantumCircuit qc(3);
    qc.cx(0, 2);
    qc.cx(1, 2);
    qc.cx(0, 2);
    QuantumCircuit before = qc;
    run_commutative_cancellation(qc);
    EXPECT_EQ(qc.cx_count(), 1);
    EXPECT_TRUE(circuits_equivalent(before, qc));
}

TEST(Cancellation, BlockedByHadamard)
{
    QuantumCircuit qc(2);
    qc.cx(0, 1);
    qc.h(1);
    qc.cx(0, 1);
    run_commutative_cancellation(qc);
    EXPECT_EQ(qc.cx_count(), 2);
}

TEST(Cancellation, NotBlockedByRzOnControl)
{
    QuantumCircuit qc(2);
    qc.cx(0, 1);
    qc.rz(0.4, 0);
    qc.cx(0, 1);
    QuantumCircuit before = qc;
    run_commutative_cancellation(qc);
    EXPECT_EQ(qc.cx_count(), 0);
    EXPECT_TRUE(circuits_equivalent(before, qc));
}

TEST(Cancellation, MergesZRotations)
{
    QuantumCircuit qc(1);
    qc.t(0);
    qc.s(0);
    qc.rz(0.25, 0);
    QuantumCircuit before = qc;
    run_commutative_cancellation(qc);
    ASSERT_EQ(qc.size(), 1u);
    EXPECT_EQ(qc.gate(0).kind, OpKind::kRZ);
    EXPECT_NEAR(qc.gate(0).params[0], M_PI / 4 + M_PI / 2 + 0.25, 1e-12);
    EXPECT_TRUE(circuits_equivalent(before, qc));
}

TEST(Cancellation, MergesZRotationsAcrossControl)
{
    // rz . cx . rz(-) on the control wire merges to nothing.
    QuantumCircuit qc(2);
    qc.rz(0.8, 0);
    qc.cx(0, 1);
    qc.rz(-0.8, 0);
    QuantumCircuit before = qc;
    run_commutative_cancellation(qc);
    EXPECT_EQ(qc.size(), 1u);
    EXPECT_TRUE(circuits_equivalent(before, qc));
}

TEST(Cancellation, HadamardPairThroughNothing)
{
    QuantumCircuit qc(1);
    qc.h(0);
    qc.h(0);
    run_commutative_cancellation(qc);
    EXPECT_EQ(qc.size(), 0u);
}

TEST(Cancellation, PreservesSemanticsRandom)
{
    std::mt19937 rng(5);
    std::uniform_int_distribution<int> qd(0, 3), kd(0, 6);
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    for (int trial = 0; trial < 10; ++trial) {
        QuantumCircuit qc(4);
        for (int i = 0; i < 40; ++i) {
            switch (kd(rng)) {
              case 0: qc.h(qd(rng)); break;
              case 1: qc.t(qd(rng)); break;
              case 2: qc.z(qd(rng)); break;
              case 3: qc.rz(ang(rng), qd(rng)); break;
              default: {
                int a = qd(rng), b = qd(rng);
                if (a == b)
                    b = (b + 1) % 4;
                qc.cx(a, b);
              }
            }
        }
        QuantumCircuit before = qc;
        run_commutative_cancellation_to_fixpoint(qc);
        EXPECT_TRUE(circuits_equivalent(before, qc)) << trial;
        EXPECT_LE(qc.size(), before.size());
    }
}

// ---- swap decomposition -----------------------------------------------------

TEST(DecomposeSwaps, FixedTemplate)
{
    QuantumCircuit qc(2);
    qc.swap(0, 1);
    decompose_swaps(qc, false);
    ASSERT_EQ(qc.size(), 3u);
    EXPECT_EQ(qc.gate(0).qubits, std::vector<int>({0, 1}));
    EXPECT_EQ(qc.gate(1).qubits, std::vector<int>({1, 0}));
    EXPECT_EQ(qc.gate(2).qubits, std::vector<int>({0, 1}));
    QuantumCircuit sw(2);
    sw.swap(0, 1);
    EXPECT_TRUE(circuits_equivalent(sw, qc));
}

TEST(DecomposeSwaps, OrientationAware)
{
    QuantumCircuit qc(2);
    Gate sw = Gate::two_q(OpKind::kSwap, 0, 1);
    sw.swap_orient = SwapOrient::kSecond;
    qc.append(sw);
    decompose_swaps(qc, true);
    // First CNOT control must be operand 1.
    EXPECT_EQ(qc.gate(0).qubits, std::vector<int>({1, 0}));
    QuantumCircuit ref(2);
    ref.swap(0, 1);
    EXPECT_TRUE(circuits_equivalent(ref, qc));
}

TEST(DecomposeSwaps, FlagIgnoredWhenNotAware)
{
    QuantumCircuit qc(2);
    Gate sw = Gate::two_q(OpKind::kSwap, 0, 1);
    sw.swap_orient = SwapOrient::kSecond;
    qc.append(sw);
    decompose_swaps(qc, false);
    EXPECT_EQ(qc.gate(0).qubits, std::vector<int>({0, 1}));
}

TEST(DecomposeSwaps, EnablesPaperCancellation)
{
    // cx(1,0) . swap(0,1) with the right orientation cancels down to
    // 2 CNOTs after commutative cancellation (paper Fig. 7).
    QuantumCircuit qc(2);
    qc.cx(1, 0);
    Gate sw = Gate::two_q(OpKind::kSwap, 0, 1);
    sw.swap_orient = SwapOrient::kSecond; // first CNOT control = wire 1
    qc.append(sw);
    QuantumCircuit before = qc;
    decompose_swaps(qc, true);
    run_commutative_cancellation_to_fixpoint(qc);
    EXPECT_EQ(qc.cx_count(), 2);

    // The fixed orientation misses it.
    QuantumCircuit qc2(2);
    qc2.cx(1, 0);
    qc2.swap(0, 1);
    decompose_swaps(qc2, false);
    run_commutative_cancellation_to_fixpoint(qc2);
    EXPECT_EQ(qc2.cx_count(), 4);
}

TEST(Optimize1qPass, CollapsesInterleavedRuns)
{
    QuantumCircuit qc(2);
    qc.h(0);
    qc.t(0);
    qc.h(0);
    qc.cx(0, 1);
    qc.s(1);
    qc.sdg(1);
    QuantumCircuit before = qc;
    run_optimize_1q(qc, Basis1q::kZsx);
    EXPECT_TRUE(circuits_equivalent(before, qc));
    EXPECT_EQ(qc.cx_count(), 1);
    // s(1) sdg(1) must vanish entirely.
    for (const Gate &g : qc.gates())
        EXPECT_NE(g.qubits[0] == 1 && g.num_qubits() == 1, true);
}

} // namespace
} // namespace nassc
