// Tests for the parallel multi-trial layout search (LayoutSearch):
//
//  (a) layout_trials = 1 is bit-identical to the historical single-seed
//      sabre_initial_layout reverse traversal, on the full Table I
//      suite and both distance metrics;
//  (b) layout_trials = 4 returns the identical best layout, trial
//      outcomes, and downstream RoutingStats for 1, 2, and 8 worker
//      threads;
//  (c) trial-seed derivation is a pure function of (base seed, trial) —
//      independent of scheduling order, with trial 0 keeping the base
//      seed;
//  (d) every trial — including the single-trial fast path — carries a
//      scored (swaps, depth) outcome from one full-circuit routing
//      pass, and the scored numbers agree with an independent
//      route_circuit run;
//  (e) reuse equivalence: the retained routed pass (reuse_routing) is
//      bit-for-bit the circuit the non-reuse path computes with its
//      separate route_circuit call, for trials in {1, 4} x threads in
//      {1, 8}, on unitary and measure/barrier-bearing circuits alike,
//      and transpile() skips its routing step exactly when legal;
//  (f) trial diversity: when racing, trial 1 is seeded from a partial
//      perfect-layout embedding (zero scored SWAPs on an embeddable
//      chain) and trial 2 from the degree-matched heuristic.

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/ir/dag.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/route/layout_search.h"
#include "nassc/route/router.h"
#include "nassc/route/sabre.h"
#include "nassc/service/batch_transpiler.h"
#include "nassc/service/scheduler.h"
#include "nassc/topo/backends.h"
#include "nassc/transpile/transpile.h"

namespace nassc {
namespace {

/** FNV-1a over a routed gate stream and the layouts (the same
 *  construction as the golden-metrics suite). */
std::uint64_t
routing_fingerprint(const RoutingResult &res)
{
    std::uint64_t h = 14695981039346656037ull;
    auto mix_u64 = [&h](std::uint64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (8 * byte)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    for (const Gate &g : res.circuit.gates()) {
        mix_u64(static_cast<std::uint64_t>(g.kind));
        mix_u64(static_cast<std::uint64_t>(g.swap_orient) + 2);
        for (int q : g.qubits)
            mix_u64(static_cast<std::uint64_t>(q));
        for (double p : g.params) {
            std::uint64_t v;
            std::memcpy(&v, &p, sizeof(v));
            mix_u64(v);
        }
    }
    for (int p : res.initial_l2p)
        mix_u64(static_cast<std::uint64_t>(p));
    for (int p : res.final_l2p)
        mix_u64(static_cast<std::uint64_t>(p));
    return h;
}

/**
 * The pre-LayoutSearch reverse traversal, reproduced verbatim: one
 * random seed layout refined by alternating forward/backward passes.
 * Pinning against this keeps the engine's trials=1 path honest even if
 * the goldens are ever regenerated.
 */
Layout
reference_single_seed_layout(const QuantumCircuit &logical,
                             const CouplingMap &coupling,
                             const DistanceMatrix &dist,
                             const RoutingOptions &opts, int iterations = 3)
{
    std::mt19937 rng(opts.seed);
    Layout layout =
        Layout::random(logical.num_qubits(), coupling.num_qubits(), rng);

    QuantumCircuit fwd = logical.without_non_unitary();
    QuantumCircuit rev(fwd.num_qubits());
    for (auto it = fwd.gates().rbegin(); it != fwd.gates().rend(); ++it)
        rev.append(*it);

    RoutingOptions lopts = opts;
    lopts.algorithm = RoutingAlgorithm::kSabre;

    DagCircuit fwd_dag(fwd);
    DagCircuit rev_dag(rev);
    Router fwd_router(fwd_dag, coupling, dist, lopts);
    Router rev_router(rev_dag, coupling, dist, lopts);

    for (int iter = 0; iter < iterations; ++iter) {
        layout = fwd_router.route_to_layout(layout);
        layout = rev_router.route_to_layout(layout);
    }
    return layout;
}

/** Terminal measure_all plus a mid-circuit barrier, to exercise the
 *  non-unitary routing seam of the scoring pass. */
QuantumCircuit
with_measures_and_barrier(const QuantumCircuit &base)
{
    QuantumCircuit qc(base.num_qubits());
    std::size_t half = base.size() / 2;
    for (std::size_t i = 0; i < base.size(); ++i) {
        if (i == half)
            qc.barrier();
        qc.append(base.gate(i));
    }
    qc.barrier();
    qc.measure_all();
    return qc;
}

TEST(LayoutTrials, SingleTrialMatchesHistoricalSearchOnTableI)
{
    Backend dev = montreal_backend();
    for (bool noise : {false, true}) {
        const DistanceMatrix dist = noise ? noise_aware_distance(dev)
                                          : hop_distance(dev.coupling);
        for (const BenchmarkCase &bc : table_benchmarks()) {
            QuantumCircuit logical = decompose_to_2q(bc.circuit);
            RoutingOptions opts;
            opts.seed = 7;
            ASSERT_EQ(opts.layout_trials, 1);
            Layout engine =
                sabre_initial_layout(logical, dev.coupling, dist, opts);
            Layout reference = reference_single_seed_layout(
                logical, dev.coupling, dist, opts);
            EXPECT_EQ(engine.l2p(), reference.l2p())
                << bc.name << (noise ? " (noise)" : " (hops)");
        }
    }
}

TEST(LayoutTrials, SingleTrialOutcomesAreScored)
{
    // The single-trial fast path must populate LayoutTrial::swaps/depth
    // exactly like the racing path: one forward full-circuit routing
    // pass from the refined layout, with the SABRE mapping options.
    Backend dev = montreal_backend();
    const DistanceMatrix dist = hop_distance(dev.coupling);
    QuantumCircuit logical = decompose_to_2q(benchmark_by_name("qft_n15"));

    RoutingOptions opts;
    opts.seed = 7;
    opts.layout_trials = 1;
    LayoutSearchResult res =
        search_and_route(logical, dev.coupling, dist, opts);

    ASSERT_EQ(res.trials.size(), 1u);
    ASSERT_EQ(res.best_trial, 0);
    EXPECT_EQ(res.trials[0].kind, TrialSeedKind::kRandom);
    EXPECT_GE(res.trials[0].swaps, 0);
    EXPECT_GE(res.trials[0].depth, 0);

    // The scored numbers are real: an independent SABRE route from the
    // returned layout reproduces them.
    RoutingOptions sopts = opts;
    sopts.algorithm = RoutingAlgorithm::kSabre;
    RoutingResult check = route_circuit(logical, dev.coupling, dist,
                                        res.initial, sopts);
    EXPECT_EQ(res.trials[0].swaps, check.stats.num_swaps);
    EXPECT_EQ(res.trials[0].depth, check.circuit.depth());

    // Trial 0 refines identically whatever the trial count, so its
    // scored outcome is the same in a 1-trial and a 4-trial run —
    // outcomes are uniform across trial counts.
    RoutingOptions opts4 = opts;
    opts4.layout_trials = 4;
    opts4.layout_threads = 1;
    LayoutSearchResult res4 =
        search_and_route(logical, dev.coupling, dist, opts4);
    ASSERT_EQ(res4.trials.size(), 4u);
    EXPECT_EQ(res4.trials[0].swaps, res.trials[0].swaps);
    EXPECT_EQ(res4.trials[0].depth, res.trials[0].depth);
    EXPECT_EQ(res4.trials[0].layout.l2p(), res.trials[0].layout.l2p());

    // The pure-layout single-trial path (no race, no retention) skips
    // the scoring pass outright and marks the trial unscored — that is
    // the historical sabre_initial_layout cost, pinned here.
    RoutingOptions bare = opts;
    bare.reuse_routing = false;
    LayoutSearch layout_only(logical, dev.coupling, dist, bare);
    LayoutSearchResult unscored = layout_only.run();
    EXPECT_EQ(unscored.scoring_passes, 0);
    EXPECT_EQ(unscored.trials[0].swaps, -1);
    EXPECT_EQ(unscored.trials[0].depth, -1);
    EXPECT_EQ(unscored.initial.l2p(), res.initial.l2p());
    // Whereas the retained single-trial run reports its one pass.
    EXPECT_EQ(res.scoring_passes, 1);
    EXPECT_EQ(res4.scoring_passes, 4);
}

TEST(LayoutTrials, MultiTrialBitIdenticalAcrossThreadCounts)
{
    Backend dev = montreal_backend();
    const DistanceMatrix dist = hop_distance(dev.coupling);

    for (const char *name : {"qft_n15", "adder_n10", "grover_n8"}) {
        QuantumCircuit logical = decompose_to_2q(benchmark_by_name(name));

        std::vector<int> best_l2p;
        std::vector<LayoutTrial> first_trials;
        int first_best = -1;
        RoutingStats first_stats{};

        for (int threads : {1, 2, 8}) {
            RoutingOptions opts;
            opts.seed = 11;
            opts.layout_trials = 4;
            opts.layout_threads = threads;
            LayoutSearch search(logical, dev.coupling, dist, opts);
            LayoutSearchResult res = search.run();
            const Layout &best = res.initial;

            // Downstream routing from the winning layout: stats must be
            // identical too (the layout is, so this pins the full chain).
            RoutingOptions ropts;
            ropts.algorithm = RoutingAlgorithm::kNassc;
            RoutingResult routed = route_circuit(logical, dev.coupling,
                                                 dist, best, ropts);

            if (threads == 1) {
                best_l2p = best.l2p();
                first_trials = res.trials;
                first_best = res.best_trial;
                first_stats = routed.stats;
                ASSERT_EQ(first_trials.size(), 4u) << name;
                for (const LayoutTrial &t : first_trials) {
                    EXPECT_GE(t.swaps, 0) << name;
                    EXPECT_GE(t.depth, 0) << name;
                }
                EXPECT_EQ(first_trials[0].kind, TrialSeedKind::kRandom);
                EXPECT_EQ(first_trials[1].kind,
                          TrialSeedKind::kEmbedding);
                EXPECT_EQ(first_trials[2].kind, TrialSeedKind::kDegree);
                EXPECT_EQ(first_trials[3].kind, TrialSeedKind::kRandom);
                continue;
            }

            EXPECT_EQ(best.l2p(), best_l2p) << name << " x" << threads;
            EXPECT_EQ(res.best_trial, first_best)
                << name << " x" << threads;
            ASSERT_EQ(res.trials.size(), first_trials.size());
            for (std::size_t t = 0; t < first_trials.size(); ++t) {
                const LayoutTrial &a = res.trials[t];
                const LayoutTrial &b = first_trials[t];
                EXPECT_EQ(a.seed, b.seed) << name << " trial " << t;
                EXPECT_EQ(a.kind, b.kind) << name << " trial " << t;
                EXPECT_EQ(a.swaps, b.swaps) << name << " trial " << t;
                EXPECT_EQ(a.depth, b.depth) << name << " trial " << t;
                EXPECT_EQ(a.layout.l2p(), b.layout.l2p())
                    << name << " trial " << t;
            }
            EXPECT_EQ(routed.stats.num_swaps, first_stats.num_swaps);
            EXPECT_EQ(routed.stats.flagged_swaps, first_stats.flagged_swaps);
            EXPECT_EQ(routed.stats.c2q_hits, first_stats.c2q_hits);
            EXPECT_EQ(routed.stats.commute1_hits,
                      first_stats.commute1_hits);
            EXPECT_EQ(routed.stats.commute2_hits,
                      first_stats.commute2_hits);
            EXPECT_EQ(routed.stats.moved_1q, first_stats.moved_1q);
        }
    }
}

TEST(LayoutTrials, ReuseEquivalenceGoldens)
{
    // The retained routed pass must be bit-for-bit what the non-reuse
    // path computes with its separate route_circuit call — RoutingStats
    // and gate-stream/layout FNV fingerprints — for trials in {1, 4} x
    // threads in {1, 8}, on plain-unitary circuits and on circuits with
    // measures and barriers (the seam the scoring pass now routes).
    Backend dev = montreal_backend();
    const DistanceMatrix dist = hop_distance(dev.coupling);

    for (const char *name : {"qft_n15", "adder_n10"}) {
        for (bool measured : {false, true}) {
            QuantumCircuit logical =
                decompose_to_2q(benchmark_by_name(name));
            if (measured)
                logical = with_measures_and_barrier(logical);

            for (int trials : {1, 4}) {
                std::uint64_t want_fp = 0;
                bool have_want = false;
                for (int threads : {1, 8}) {
                    RoutingOptions opts;
                    opts.algorithm = RoutingAlgorithm::kSabre;
                    opts.seed = 5;
                    opts.layout_trials = trials;
                    opts.layout_threads = threads;

                    // Reuse path: the search hands the route back.
                    opts.reuse_routing = true;
                    LayoutSearchResult reused =
                        search_and_route(logical, dev.coupling, dist,
                                         opts);
                    ASSERT_TRUE(reused.routed.has_value())
                        << name << " trials=" << trials;

                    // Non-reuse path: layout only, then route afresh.
                    opts.reuse_routing = false;
                    LayoutSearchResult plain =
                        search_and_route(logical, dev.coupling, dist,
                                         opts);
                    ASSERT_FALSE(plain.routed.has_value());
                    RoutingResult rerouted = route_circuit(
                        logical, dev.coupling, dist, plain.initial, opts);

                    EXPECT_EQ(reused.best_trial, plain.best_trial);
                    EXPECT_EQ(reused.initial.l2p(), plain.initial.l2p());
                    const RoutingStats &a = reused.routed->stats;
                    const RoutingStats &b = rerouted.stats;
                    EXPECT_EQ(a.num_swaps, b.num_swaps);
                    EXPECT_EQ(a.forced_moves, b.forced_moves);
                    std::uint64_t fp_a =
                        routing_fingerprint(*reused.routed);
                    std::uint64_t fp_b = routing_fingerprint(rerouted);
                    EXPECT_EQ(fp_a, fp_b)
                        << name << (measured ? "+meas" : "")
                        << " trials=" << trials
                        << " threads=" << threads;
                    // And the whole cell is thread-count invariant.
                    if (!have_want) {
                        want_fp = fp_a;
                        have_want = true;
                    } else {
                        EXPECT_EQ(fp_a, want_fp)
                            << name << " trials=" << trials
                            << " threads=" << threads;
                    }
                }
            }
        }
    }
}

TEST(LayoutTrials, ReuseEquivalenceFullTableI)
{
    // Acceptance sweep: with layout_trials > 1 on a kSabre pipeline the
    // retained route must equal the non-reuse two-pass flow bit for bit
    // on the whole Table I suite, and stay invariant across 1/2/8
    // worker threads.  The non-reuse reference runs once (threads = 1);
    // winner selection is thread-invariant, so every reuse fingerprint
    // must match it.
    Backend dev = montreal_backend();
    const DistanceMatrix dist = hop_distance(dev.coupling);

    for (const BenchmarkCase &bc : table_benchmarks()) {
        QuantumCircuit logical = decompose_to_2q(bc.circuit);

        RoutingOptions opts;
        opts.algorithm = RoutingAlgorithm::kSabre;
        opts.seed = 13;
        opts.layout_trials = 4;
        opts.layout_threads = 1;
        opts.reuse_routing = false;
        LayoutSearchResult plain =
            search_and_route(logical, dev.coupling, dist, opts);
        ASSERT_FALSE(plain.routed.has_value());
        RoutingResult rerouted = route_circuit(logical, dev.coupling,
                                               dist, plain.initial, opts);
        const std::uint64_t want = routing_fingerprint(rerouted);

        opts.reuse_routing = true;
        for (int threads : {1, 2, 8}) {
            opts.layout_threads = threads;
            LayoutSearchResult reused =
                search_and_route(logical, dev.coupling, dist, opts);
            ASSERT_TRUE(reused.routed.has_value())
                << bc.name << " x" << threads;
            EXPECT_EQ(reused.best_trial, plain.best_trial)
                << bc.name << " x" << threads;
            EXPECT_EQ(reused.routed->stats.num_swaps,
                      rerouted.stats.num_swaps)
                << bc.name << " x" << threads;
            EXPECT_EQ(routing_fingerprint(*reused.routed), want)
                << bc.name << " x" << threads;
        }
    }
}

TEST(LayoutTrials, TranspileSkipsRoutingStepExactlyWhenLegal)
{
    // kSabre + reuse_routing: no separate post-search route (pass count
    // == trials).  Without reuse (or with NASSC) the pipeline pays the
    // separate final route on top of any racing-mode scoring passes —
    // one more pass whenever trials > 1.  The output circuit is
    // bit-identical in all cases where only the reuse switch differs.
    Backend dev = montreal_backend();
    QuantumCircuit logical = benchmark_by_name("adder_n10");

    for (int trials : {1, 4}) {
        TranspileOptions opts;
        opts.router = RoutingAlgorithm::kSabre;
        opts.layout_trials = trials;
        opts.layout_threads = 1;
        TranspileResult reused = transpile(logical, dev, opts);
        EXPECT_TRUE(reused.reused_search_route) << trials;
        EXPECT_EQ(reused.full_route_passes, trials);

        // Without retention the search only scores when racing, and
        // the pipeline pays one separate final route.
        opts.reuse_routing = false;
        TranspileResult plain = transpile(logical, dev, opts);
        EXPECT_FALSE(plain.reused_search_route);
        EXPECT_EQ(plain.full_route_passes, (trials > 1 ? trials : 0) + 1);

        EXPECT_EQ(reused.cx_total, plain.cx_total) << trials;
        EXPECT_EQ(reused.depth, plain.depth) << trials;
        EXPECT_EQ(reused.initial_l2p, plain.initial_l2p);
        EXPECT_EQ(reused.final_l2p, plain.final_l2p);
        EXPECT_EQ(reused.routing_stats.num_swaps,
                  plain.routing_stats.num_swaps);
        ASSERT_EQ(reused.circuit.size(), plain.circuit.size()) << trials;
        for (std::size_t i = 0; i < reused.circuit.size(); ++i)
            ASSERT_TRUE(reused.circuit.gate(i) == plain.circuit.gate(i))
                << trials << " gate " << i;

        // NASSC scores with the SABRE cost model, so its final route
        // can never be reused — whatever the switch says.
        TranspileOptions nassc = opts;
        nassc.router = RoutingAlgorithm::kNassc;
        nassc.reuse_routing = true;
        TranspileResult nres = transpile(logical, dev, nassc);
        EXPECT_FALSE(nres.reused_search_route);
        EXPECT_EQ(nres.full_route_passes, (trials > 1 ? trials : 0) + 1);
    }
}

TEST(LayoutTrials, TrialDiversityHeuristicSeeds)
{
    // A CX chain embeds perfectly into montreal's heavy-hex graph, so
    // the embedding-seeded trial must score zero SWAPs and the race
    // must return a zero-SWAP winner.
    Backend dev = montreal_backend();
    const DistanceMatrix dist = hop_distance(dev.coupling);
    QuantumCircuit chain(10);
    for (int q = 0; q + 1 < 10; ++q)
        chain.cx(q, q + 1);

    RoutingOptions opts;
    opts.seed = 3;
    opts.layout_trials = 3;
    opts.layout_threads = 1;
    LayoutSearchResult res =
        search_and_route(chain, dev.coupling, dist, opts);

    ASSERT_EQ(res.trials.size(), 3u);
    EXPECT_EQ(res.trials[0].kind, TrialSeedKind::kRandom);
    EXPECT_EQ(res.trials[1].kind, TrialSeedKind::kEmbedding);
    EXPECT_EQ(res.trials[2].kind, TrialSeedKind::kDegree);
    EXPECT_EQ(res.trials[1].swaps, 0);
    EXPECT_EQ(res.trials[res.best_trial].swaps, 0);
    ASSERT_TRUE(res.routed.has_value());
    EXPECT_EQ(res.routed->stats.num_swaps, 0);
}

TEST(LayoutTrials, MultiTrialNeverWorseThanItsOwnTrials)
{
    // The arg-min must actually pick the (swaps, depth)-minimal trial.
    Backend dev = montreal_backend();
    const DistanceMatrix dist = hop_distance(dev.coupling);
    QuantumCircuit logical = decompose_to_2q(benchmark_by_name("qft_n15"));

    RoutingOptions opts;
    opts.layout_trials = 6;
    LayoutSearch search(logical, dev.coupling, dist, opts);
    LayoutSearchResult res = search.run();

    const LayoutTrial &best = res.trials[res.best_trial];
    for (const LayoutTrial &t : res.trials) {
        EXPECT_TRUE(best.swaps < t.swaps ||
                    (best.swaps == t.swaps && best.depth < t.depth) ||
                    (best.swaps == t.swaps && best.depth == t.depth &&
                     best.trial <= t.trial));
    }
}

TEST(LayoutTrials, TrialSeedDerivationIsPureAndStable)
{
    // Trial 0 keeps the base seed: single-trial bit-compatibility.
    EXPECT_EQ(derive_trial_seed(0, 0), 0u);
    EXPECT_EQ(derive_trial_seed(1234, 0), 1234u);

    // Pure function: same inputs, same output, whatever order asked.
    std::vector<unsigned> forward, backward;
    for (int t = 0; t < 16; ++t)
        forward.push_back(derive_trial_seed(42, t));
    for (int t = 15; t >= 0; --t)
        backward.push_back(derive_trial_seed(42, t));
    for (int t = 0; t < 16; ++t)
        EXPECT_EQ(forward[t], backward[15 - t]);

    // Distinct trials decorrelate (no accidental collisions up front).
    for (int a = 0; a < 16; ++a)
        for (int b = a + 1; b < 16; ++b)
            EXPECT_NE(forward[a], forward[b]) << a << " vs " << b;

    // Distinct base seeds decorrelate the same trial.
    EXPECT_NE(derive_trial_seed(1, 3), derive_trial_seed(2, 3));
}

TEST(LayoutTrials, NestedInBatchRunsInlineAndMatchesSerial)
{
    // A batch whose jobs each race 4 layout trials: the inner searches
    // hit the pool's nested-parallelism guard and run inline, and the
    // metrics must match a fully serial batch bit for bit.
    Backend shared_dev = montreal_backend();
    auto dev = std::make_shared<Backend>(shared_dev);

    std::vector<TranspileJob> jobs;
    for (const char *name : {"qft_n15", "adder_n10", "bv_n19"}) {
        TranspileJob job;
        job.tag = name;
        job.circuit = benchmark_by_name(name);
        job.backend = dev;
        job.options.layout_trials = 4;
        job.options.layout_threads = 0; // whole pool, when available
        jobs.push_back(std::move(job));
    }

    BatchOptions serial;
    serial.num_threads = 1;
    BatchOptions parallel;
    parallel.num_threads = 8;

    BatchReport a = BatchTranspiler(serial).run(jobs);
    BatchReport b = BatchTranspiler(parallel).run(jobs);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        ASSERT_TRUE(a.results[i].ok) << a.results[i].error;
        ASSERT_TRUE(b.results[i].ok) << b.results[i].error;
        EXPECT_EQ(a.results[i].result.cx_total, b.results[i].result.cx_total);
        EXPECT_EQ(a.results[i].result.depth, b.results[i].result.depth);
        EXPECT_EQ(a.results[i].result.initial_l2p,
                  b.results[i].result.initial_l2p);
        EXPECT_EQ(a.results[i].result.routing_stats.num_swaps,
                  b.results[i].result.routing_stats.num_swaps);
    }
    // Per-job reuse stats aggregate deterministically too (default
    // router is kNassc, so nothing reuses; every job still reports its
    // per-trial scoring passes plus the final route).
    EXPECT_EQ(a.num_route_reused, b.num_route_reused);
    EXPECT_EQ(a.full_route_passes, b.full_route_passes);
    EXPECT_EQ(a.full_route_passes,
              static_cast<long>(jobs.size()) * (4 + 1));
}

TEST(LayoutTrials, MoreTrialsNotWorseOnAggregate)
{
    // Racing seeds exists to buy quality: over a few Table I circuits
    // the 4-trial winner must not lose to the single seed in total
    // routed SWAPs (that is the whole point of the knob).
    Backend dev = montreal_backend();
    const DistanceMatrix dist = hop_distance(dev.coupling);
    long swaps1 = 0, swaps4 = 0;
    for (const char *name : {"qft_n15", "adder_n10", "grover_n8"}) {
        QuantumCircuit logical = decompose_to_2q(benchmark_by_name(name));
        for (int trials : {1, 4}) {
            RoutingOptions opts;
            opts.layout_trials = trials;
            Layout init =
                sabre_initial_layout(logical, dev.coupling, dist, opts);
            RoutingOptions ropts;
            RoutingResult res =
                route_circuit(logical, dev.coupling, dist, init, ropts);
            (trials == 1 ? swaps1 : swaps4) += res.stats.num_swaps;
        }
    }
    EXPECT_LE(swaps4, swaps1);
}

} // namespace
} // namespace nassc
