// Tests for the parallel multi-trial layout search (LayoutSearch):
//
//  (a) layout_trials = 1 is bit-identical to the historical single-seed
//      sabre_initial_layout reverse traversal, on the full Table I
//      suite and both distance metrics;
//  (b) layout_trials = 4 returns the identical best layout, trial
//      outcomes, and downstream RoutingStats for 1, 2, and 8 worker
//      threads;
//  (c) trial-seed derivation is a pure function of (base seed, trial) —
//      independent of scheduling order, with trial 0 keeping the base
//      seed.

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/ir/dag.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/route/layout_search.h"
#include "nassc/route/router.h"
#include "nassc/route/sabre.h"
#include "nassc/service/batch_transpiler.h"
#include "nassc/service/thread_pool.h"
#include "nassc/topo/backends.h"

namespace nassc {
namespace {

/**
 * The pre-LayoutSearch reverse traversal, reproduced verbatim: one
 * random seed layout refined by alternating forward/backward passes.
 * Pinning against this keeps the engine's trials=1 path honest even if
 * the goldens are ever regenerated.
 */
Layout
reference_single_seed_layout(const QuantumCircuit &logical,
                             const CouplingMap &coupling,
                             const DistanceMatrix &dist,
                             const RoutingOptions &opts, int iterations = 3)
{
    std::mt19937 rng(opts.seed);
    Layout layout =
        Layout::random(logical.num_qubits(), coupling.num_qubits(), rng);

    QuantumCircuit fwd = logical.without_non_unitary();
    QuantumCircuit rev(fwd.num_qubits());
    for (auto it = fwd.gates().rbegin(); it != fwd.gates().rend(); ++it)
        rev.append(*it);

    RoutingOptions lopts = opts;
    lopts.algorithm = RoutingAlgorithm::kSabre;

    DagCircuit fwd_dag(fwd);
    DagCircuit rev_dag(rev);
    Router fwd_router(fwd_dag, coupling, dist, lopts);
    Router rev_router(rev_dag, coupling, dist, lopts);

    for (int iter = 0; iter < iterations; ++iter) {
        layout = fwd_router.route_to_layout(layout);
        layout = rev_router.route_to_layout(layout);
    }
    return layout;
}

TEST(LayoutTrials, SingleTrialMatchesHistoricalSearchOnTableI)
{
    Backend dev = montreal_backend();
    for (bool noise : {false, true}) {
        const DistanceMatrix dist = noise ? noise_aware_distance(dev)
                                          : hop_distance(dev.coupling);
        for (const BenchmarkCase &bc : table_benchmarks()) {
            QuantumCircuit logical = decompose_to_2q(bc.circuit);
            RoutingOptions opts;
            opts.seed = 7;
            ASSERT_EQ(opts.layout_trials, 1);
            Layout engine =
                sabre_initial_layout(logical, dev.coupling, dist, opts);
            Layout reference = reference_single_seed_layout(
                logical, dev.coupling, dist, opts);
            EXPECT_EQ(engine.l2p(), reference.l2p())
                << bc.name << (noise ? " (noise)" : " (hops)");
        }
    }
}

TEST(LayoutTrials, MultiTrialBitIdenticalAcrossThreadCounts)
{
    Backend dev = montreal_backend();
    const DistanceMatrix dist = hop_distance(dev.coupling);

    for (const char *name : {"qft_n15", "adder_n10", "grover_n8"}) {
        QuantumCircuit logical = decompose_to_2q(benchmark_by_name(name));

        std::vector<int> best_l2p;
        std::vector<LayoutTrial> first_trials;
        int first_best = -1;
        RoutingStats first_stats{};

        for (int threads : {1, 2, 8}) {
            RoutingOptions opts;
            opts.seed = 11;
            opts.layout_trials = 4;
            opts.layout_threads = threads;
            LayoutSearch search(logical, dev.coupling, dist, opts);
            Layout best = search.run();

            // Downstream routing from the winning layout: stats must be
            // identical too (the layout is, so this pins the full chain).
            RoutingOptions ropts;
            ropts.algorithm = RoutingAlgorithm::kNassc;
            RoutingResult routed = route_circuit(logical, dev.coupling,
                                                 dist, best, ropts);

            if (threads == 1) {
                best_l2p = best.l2p();
                first_trials = search.trials();
                first_best = search.best_trial();
                first_stats = routed.stats;
                ASSERT_EQ(first_trials.size(), 4u) << name;
                for (const LayoutTrial &t : first_trials) {
                    EXPECT_GE(t.swaps, 0) << name;
                    EXPECT_GE(t.depth, 0) << name;
                }
                continue;
            }

            EXPECT_EQ(best.l2p(), best_l2p) << name << " x" << threads;
            EXPECT_EQ(search.best_trial(), first_best)
                << name << " x" << threads;
            ASSERT_EQ(search.trials().size(), first_trials.size());
            for (std::size_t t = 0; t < first_trials.size(); ++t) {
                const LayoutTrial &a = search.trials()[t];
                const LayoutTrial &b = first_trials[t];
                EXPECT_EQ(a.seed, b.seed) << name << " trial " << t;
                EXPECT_EQ(a.swaps, b.swaps) << name << " trial " << t;
                EXPECT_EQ(a.depth, b.depth) << name << " trial " << t;
                EXPECT_EQ(a.layout.l2p(), b.layout.l2p())
                    << name << " trial " << t;
            }
            EXPECT_EQ(routed.stats.num_swaps, first_stats.num_swaps);
            EXPECT_EQ(routed.stats.flagged_swaps, first_stats.flagged_swaps);
            EXPECT_EQ(routed.stats.c2q_hits, first_stats.c2q_hits);
            EXPECT_EQ(routed.stats.commute1_hits,
                      first_stats.commute1_hits);
            EXPECT_EQ(routed.stats.commute2_hits,
                      first_stats.commute2_hits);
            EXPECT_EQ(routed.stats.moved_1q, first_stats.moved_1q);
        }
    }
}

TEST(LayoutTrials, MultiTrialNeverWorseThanItsOwnTrials)
{
    // The arg-min must actually pick the (swaps, depth)-minimal trial.
    Backend dev = montreal_backend();
    const DistanceMatrix dist = hop_distance(dev.coupling);
    QuantumCircuit logical = decompose_to_2q(benchmark_by_name("qft_n15"));

    RoutingOptions opts;
    opts.layout_trials = 6;
    LayoutSearch search(logical, dev.coupling, dist, opts);
    search.run();

    const LayoutTrial &best = search.trials()[search.best_trial()];
    for (const LayoutTrial &t : search.trials()) {
        EXPECT_TRUE(best.swaps < t.swaps ||
                    (best.swaps == t.swaps && best.depth < t.depth) ||
                    (best.swaps == t.swaps && best.depth == t.depth &&
                     best.trial <= t.trial));
    }
}

TEST(LayoutTrials, TrialSeedDerivationIsPureAndStable)
{
    // Trial 0 keeps the base seed: single-trial bit-compatibility.
    EXPECT_EQ(derive_trial_seed(0, 0), 0u);
    EXPECT_EQ(derive_trial_seed(1234, 0), 1234u);

    // Pure function: same inputs, same output, whatever order asked.
    std::vector<unsigned> forward, backward;
    for (int t = 0; t < 16; ++t)
        forward.push_back(derive_trial_seed(42, t));
    for (int t = 15; t >= 0; --t)
        backward.push_back(derive_trial_seed(42, t));
    for (int t = 0; t < 16; ++t)
        EXPECT_EQ(forward[t], backward[15 - t]);

    // Distinct trials decorrelate (no accidental collisions up front).
    for (int a = 0; a < 16; ++a)
        for (int b = a + 1; b < 16; ++b)
            EXPECT_NE(forward[a], forward[b]) << a << " vs " << b;

    // Distinct base seeds decorrelate the same trial.
    EXPECT_NE(derive_trial_seed(1, 3), derive_trial_seed(2, 3));
}

TEST(LayoutTrials, NestedInBatchRunsInlineAndMatchesSerial)
{
    // A batch whose jobs each race 4 layout trials: the inner searches
    // hit the pool's nested-parallelism guard and run inline, and the
    // metrics must match a fully serial batch bit for bit.
    Backend shared_dev = montreal_backend();
    auto dev = std::make_shared<Backend>(shared_dev);

    std::vector<TranspileJob> jobs;
    for (const char *name : {"qft_n15", "adder_n10", "bv_n19"}) {
        TranspileJob job;
        job.tag = name;
        job.circuit = benchmark_by_name(name);
        job.backend = dev;
        job.options.layout_trials = 4;
        job.options.layout_threads = 0; // whole pool, when available
        jobs.push_back(std::move(job));
    }

    BatchOptions serial;
    serial.num_threads = 1;
    BatchOptions parallel;
    parallel.num_threads = 8;

    BatchReport a = BatchTranspiler(serial).run(jobs);
    BatchReport b = BatchTranspiler(parallel).run(jobs);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        ASSERT_TRUE(a.results[i].ok) << a.results[i].error;
        ASSERT_TRUE(b.results[i].ok) << b.results[i].error;
        EXPECT_EQ(a.results[i].result.cx_total, b.results[i].result.cx_total);
        EXPECT_EQ(a.results[i].result.depth, b.results[i].result.depth);
        EXPECT_EQ(a.results[i].result.initial_l2p,
                  b.results[i].result.initial_l2p);
        EXPECT_EQ(a.results[i].result.routing_stats.num_swaps,
                  b.results[i].result.routing_stats.num_swaps);
    }
}

TEST(LayoutTrials, MoreTrialsNotWorseOnAggregate)
{
    // Racing seeds exists to buy quality: over a few Table I circuits
    // the 4-trial winner must not lose to the single seed in total
    // routed SWAPs (that is the whole point of the knob).
    Backend dev = montreal_backend();
    const DistanceMatrix dist = hop_distance(dev.coupling);
    long swaps1 = 0, swaps4 = 0;
    for (const char *name : {"qft_n15", "adder_n10", "grover_n8"}) {
        QuantumCircuit logical = decompose_to_2q(benchmark_by_name(name));
        for (int trials : {1, 4}) {
            RoutingOptions opts;
            opts.layout_trials = trials;
            Layout init =
                sabre_initial_layout(logical, dev.coupling, dist, opts);
            RoutingOptions ropts;
            RoutingResult res =
                route_circuit(logical, dev.coupling, dist, init, ropts);
            (trials == 1 ? swaps1 : swaps4) += res.stats.num_swaps;
        }
    }
    EXPECT_LE(swaps4, swaps1);
}

} // namespace
} // namespace nassc
