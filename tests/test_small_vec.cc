// Tests for the small-buffer operand storage (ir/small_vec.h) and the
// allocation-freedom it buys the routing hot path.
//
// This binary replaces the global operator new/delete with counting
// wrappers, so it can assert the central perf claim directly: after a
// warm-up pass, Router's decision loop performs ZERO heap allocations
// (SABRE end to end; NASSC's gate emission is covered through the
// SmallVec spill counter, since its tracker math owns separate
// buffers).

// The replaced operators below route through malloc/free; the
// compiler's new/delete pairing analysis cannot see that and misfires
// on every `new` in the TU (including gtest's registration machinery).
#if defined(__clang__)
#pragma clang diagnostic ignored "-Wmismatched-new-delete"
#elif defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "nassc/circuits/library.h"
#include "nassc/ir/dag.h"
#include "nassc/ir/gate.h"
#include "nassc/ir/small_vec.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/route/router.h"
#include "nassc/topo/backends.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
} // namespace

void *
operator new(std::size_t n)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace nassc {
namespace {

using IVec = SmallVec<int, 2>;

TEST(SmallVec, InlineUpToCapacityThenSpills)
{
    const std::uint64_t spills0 = IVec::heap_spills();
    IVec v;
    EXPECT_TRUE(v.empty());
    EXPECT_TRUE(v.is_inline());
    v.push_back(4);
    v.push_back(9);
    EXPECT_TRUE(v.is_inline());
    EXPECT_EQ(IVec::heap_spills(), spills0);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], 4);
    EXPECT_EQ(v[1], 9);

    v.push_back(16); // third element: must spill, exactly once
    EXPECT_FALSE(v.is_inline());
    EXPECT_EQ(IVec::heap_spills(), spills0 + 1);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], 4);
    EXPECT_EQ(v[1], 9);
    EXPECT_EQ(v[2], 16);
}

TEST(SmallVec, VectorInteropAndComparisons)
{
    IVec a{1, 2};
    EXPECT_EQ(a, (std::vector<int>{1, 2}));
    EXPECT_NE(a, (std::vector<int>{1, 3}));
    EXPECT_EQ((std::vector<int>{1, 2}), a);

    std::vector<int> wide{5, 6, 7, 8};
    IVec b(wide);
    EXPECT_EQ(b, wide);
    EXPECT_EQ(b.to_vector(), wide);

    IVec c{1, 2};
    IVec d{1, 3};
    EXPECT_TRUE(c < d);
    EXPECT_FALSE(d < c);
    IVec e{1, 2, 5};
    EXPECT_TRUE(c < e); // shorter prefix sorts first
    EXPECT_EQ(a, c);
    EXPECT_NE(c, d);
}

TEST(SmallVec, PushBackOfOwnElementAtCapacity)
{
    // std::vector guarantees v.push_back(v[0]) even when it triggers a
    // reallocation; SmallVec must too (the growth path frees the old
    // buffer, so the value has to be copied out first).
    IVec inline_full{3, 5}; // at inline capacity
    inline_full.push_back(inline_full[0]);
    EXPECT_EQ(inline_full, (std::vector<int>{3, 5, 3}));

    IVec heap_full{1, 2, 3, 4}; // spilled, and grown to exact powers
    while (heap_full.size() < heap_full.capacity())
        heap_full.push_back(0);
    const int first = heap_full[0];
    heap_full.push_back(heap_full[0]); // realloc + self-alias
    EXPECT_EQ(heap_full.back(), first);
}

TEST(SmallVec, CopyMoveAndAssignment)
{
    IVec small{1, 2};
    IVec big{1, 2, 3, 4, 5};

    IVec small_copy = small;
    EXPECT_EQ(small_copy, small);
    IVec big_copy = big;
    EXPECT_EQ(big_copy, big);

    IVec moved = std::move(big_copy);
    EXPECT_EQ(moved, big);
    EXPECT_TRUE(big_copy.empty()); // NOLINT: post-move probe is the test

    moved = small;
    EXPECT_EQ(moved, small);
    moved = {7, 8, 9};
    EXPECT_EQ(moved, (std::vector<int>{7, 8, 9}));

    IVec from_iters(big.begin(), big.end());
    EXPECT_EQ(from_iters, big);

    // clear() keeps the buffer; refilling within capacity cannot spill.
    const std::uint64_t spills0 = IVec::heap_spills();
    moved.clear();
    moved.push_back(1);
    moved.push_back(2);
    moved.push_back(3);
    EXPECT_EQ(IVec::heap_spills(), spills0);
}

TEST(SmallVec, GateConstructionIsAllocationFree)
{
    // The exact objects the router emits per SWAP decision.  All
    // assertions run after the counting window closes, so gtest's own
    // bookkeeping cannot leak into the measurement.
    const std::uint64_t allocs0 = g_allocations.load();
    int probe;
    {
        Gate sw = Gate::two_q(OpKind::kSwap, 3, 7);
        Gate copy = sw;
        Gate u = Gate::u(5, 0.1, 0.2, 0.3); // widest param list (kU)
        Gate moved = std::move(u);
        probe = copy.qubits[1] + static_cast<int>(moved.params.size());
    }
    const std::uint64_t allocs1 = g_allocations.load();
    EXPECT_EQ(allocs1, allocs0);
    EXPECT_EQ(probe, 7 + 3);
}

TEST(SmallVec, WideGatesStillWork)
{
    // MCX operand lists spill past the inline capacity but keep full
    // vector semantics (this is the cold path).
    Gate mcx = Gate::mcx({0, 1, 2, 3}, 4);
    EXPECT_EQ(mcx.num_qubits(), 5);
    EXPECT_EQ(mcx.qubits, (std::vector<int>{0, 1, 2, 3, 4}));
    Gate copy = mcx;
    EXPECT_EQ(copy, mcx);
}

TEST(AllocationFreeRouting, SabreDecisionLoopIsAllocationFreeAfterWarmup)
{
    // The acceptance criterion of the small-buffer Gate work: one
    // warm-up pass sizes every reused buffer, then an identical pass
    // must not touch the heap at all — no Gate vectors, no scratch
    // growth, nothing.
    Backend dev = montreal_backend();
    QuantumCircuit logical = decompose_to_2q(qft(16));
    DagCircuit dag(logical);
    const DistanceMatrix dist = hop_distance(dev.coupling);
    RoutingOptions opts; // SABRE
    Layout init(16, dev.coupling.num_qubits());

    Router router(dag, dev.coupling, dist, opts);
    Layout warm = router.route_to_layout(init); // warm-up pass (copied)

    const std::uint64_t allocs0 = g_allocations.load();
    const std::uint64_t spills0 = QubitVec::heap_spills();
    const Layout &second = router.route_to_layout(init);
    const std::uint64_t allocs1 = g_allocations.load();
    const std::uint64_t spills1 = QubitVec::heap_spills();
    EXPECT_EQ(allocs1, allocs0)
        << "SABRE decision loop allocated after warm-up";
    EXPECT_EQ(spills1, spills0);
    EXPECT_EQ(second.l2p(), warm.l2p()); // and stays deterministic
}

TEST(AllocationFreeRouting, NasscGateEmissionNeverSpills)
{
    // NASSC's tracker math owns growable windows, so total allocation
    // freedom is asserted for SABRE above; here we pin that the gates
    // themselves (emission, tracker records, moved 1q copies) never
    // leave their inline buffers across a full NASSC routing pass.
    Backend dev = montreal_backend();
    QuantumCircuit logical = decompose_to_2q(qft(16));
    DagCircuit dag(logical);
    const DistanceMatrix dist = hop_distance(dev.coupling);
    RoutingOptions opts;
    opts.algorithm = RoutingAlgorithm::kNassc;
    Layout init(16, dev.coupling.num_qubits());

    Router router(dag, dev.coupling, dist, opts);
    const std::uint64_t qspills0 = QubitVec::heap_spills();
    const std::uint64_t pspills0 = ParamVec::heap_spills();
    RoutingResult res = router.run(init);
    EXPECT_GT(res.stats.num_swaps, 0);
    EXPECT_EQ(QubitVec::heap_spills(), qspills0);
    EXPECT_EQ(ParamVec::heap_spills(), pspills0);
}

} // namespace
} // namespace nassc
