// Tests for the DistanceProvider abstraction (topo/distance_provider.h)
// and its integration through DistanceCache and transpile():
//
//  (a) metric equivalence — sparse hop rows are bit-identical to the
//      dense BFS matrix on every seed backend and on randomized graphs;
//      sparse noise rows (per-source Dijkstra) agree with the dense
//      Floyd-Warshall expansion to 1e-12;
//  (b) routing equivalence — transpiling through a forced-sparse
//      provider reproduces the dense pipeline's circuit fingerprint and
//      RoutingStats bit for bit on the hop metric;
//  (c) provider mechanics — row caching, LRU byte-budget eviction,
//      pinned rows surviving eviction, thread-safe concurrent fetch;
//  (d) cache integration — calibration rotation drops exactly the old
//      generation's rows (evictions_invalidated) and recomputes each
//      touched row exactly once in the new generation;
//  (e) scale — routing a 1123-qubit heavy-hex device end-to-end keeps
//      distance storage proportional to the rows actually touched, far
//      below the dense n^2 footprint.

#include <algorithm>
#include <atomic>
#include <climits>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/service/distance_cache.h"
#include "nassc/topo/backends.h"
#include "nassc/topo/distance_provider.h"
#include "nassc/transpile/transpile.h"

namespace nassc {
namespace {

// ---------------------------------------------------------------------
// (a) metric equivalence

void
expect_hop_rows_bit_identical(const CouplingMap &cm)
{
    const DistanceMatrix dense = hop_distance(cm);
    const SparseDistanceProvider sparse(cm);
    const int n = cm.num_qubits();
    ASSERT_EQ(sparse.num_qubits(), n);
    for (int i = 0; i < n; ++i) {
        const DistanceRow r = sparse.row(i);
        ASSERT_TRUE(static_cast<bool>(r));
        for (int j = 0; j < n; ++j) {
            // Bitwise: both sides are BFS hop counts stored as double.
            EXPECT_EQ(r[j], dense(i, j)) << "(" << i << "," << j << ")";
            EXPECT_EQ(sparse.at(i, j), dense(i, j));
        }
    }
}

TEST(SparseHops, BitIdenticalOnSeedBackends)
{
    expect_hop_rows_bit_identical(montreal_backend().coupling);
    expect_hop_rows_bit_identical(linear_backend(25).coupling);
    expect_hop_rows_bit_identical(grid_backend(5, 5).coupling);
    expect_hop_rows_bit_identical(heavy_hex_backend(3).coupling);
    expect_hop_rows_bit_identical(
        grid_of_grids_backend(2, 2, 3, 3).coupling);
}

/** Connected random graph: a shuffled spanning tree plus extra edges. */
CouplingMap
random_connected_map(int n, int extra_edges, unsigned seed,
                     int dense_limit = CouplingMap::kDenseDistanceLimit)
{
    std::mt19937 rng(seed);
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);
    std::vector<std::pair<int, int>> edges;
    for (int i = 1; i < n; ++i) {
        std::uniform_int_distribution<int> parent(0, i - 1);
        edges.emplace_back(order[static_cast<std::size_t>(parent(rng))],
                           order[static_cast<std::size_t>(i)]);
    }
    std::uniform_int_distribution<int> any(0, n - 1);
    for (int e = 0; e < extra_edges; ++e) {
        const int a = any(rng), b = any(rng);
        if (a != b)
            edges.emplace_back(a, b); // duplicates dedup in the ctor
    }
    return CouplingMap(n, std::move(edges), dense_limit);
}

TEST(SparseHops, BitIdenticalOnRandomGraphs)
{
    for (unsigned seed : {1u, 2u, 3u, 4u}) {
        expect_hop_rows_bit_identical(
            random_connected_map(40 + static_cast<int>(seed) * 7,
                                 /*extra_edges=*/30, seed));
    }
}

TEST(SparseNoise, MatchesDenseFloydWarshallTo1e12)
{
    // Dijkstra associates path sums differently from Floyd-Warshall, so
    // the contract is 1e-12 agreement, not bitwise (see the provider
    // header).  Both consume noise_edge_weights(), so edge weights are
    // identical by construction.
    for (const Backend &b : {montreal_backend(), heavy_hex_backend(3)}) {
        for (auto [a1, a2, a3] :
             {std::tuple{0.5, 0.0, 0.5}, std::tuple{1.0, 0.0, 0.0},
              std::tuple{0.3, 0.3, 0.4}}) {
            const DistanceMatrix dense =
                noise_aware_distance(b, a1, a2, a3);
            const SparseDistanceProvider sparse(b, a1, a2, a3);
            const int n = b.coupling.num_qubits();
            for (int i = 0; i < n; ++i) {
                const DistanceRow r = sparse.row(i);
                for (int j = 0; j < n; ++j)
                    EXPECT_NEAR(r[j], dense(i, j), 1e-12)
                        << b.name << " (" << i << "," << j << ")";
            }
        }
    }
}

// ---------------------------------------------------------------------
// (b) routing equivalence through transpile()

std::uint64_t
transpile_fingerprint(const QuantumCircuit &qc, const Backend &backend,
                      TranspileOptions opts, RoutingStats *stats = nullptr)
{
    DistanceCache cache; // private cache: no cross-test contamination
    const TranspileResult res = transpile(qc, backend, opts, cache);
    if (stats)
        *stats = res.routing_stats;
    return res.circuit.fingerprint();
}

TEST(ProviderRouting, SparseReproducesDenseBitForBit)
{
    const Backend montreal = montreal_backend();
    for (RoutingAlgorithm alg :
         {RoutingAlgorithm::kNassc, RoutingAlgorithm::kSabre}) {
        for (const QuantumCircuit &qc : {qft(10), ghz(12), qaoa_maxcut(12)}) {
            TranspileOptions dense;
            dense.router = alg;
            dense.sparse_distance_threshold = INT_MAX;
            TranspileOptions sparse = dense;
            sparse.sparse_distance_threshold = 0; // force the row provider

            RoutingStats ds, ss;
            const std::uint64_t dfp =
                transpile_fingerprint(qc, montreal, dense, &ds);
            const std::uint64_t sfp =
                transpile_fingerprint(qc, montreal, sparse, &ss);
            EXPECT_EQ(dfp, sfp);
            EXPECT_EQ(ds.num_swaps, ss.num_swaps);
            EXPECT_EQ(ds.flagged_swaps, ss.flagged_swaps);
            EXPECT_EQ(ds.c2q_hits, ss.c2q_hits);
            EXPECT_EQ(ds.commute1_hits, ss.commute1_hits);
            EXPECT_EQ(ds.commute2_hits, ss.commute2_hits);
            EXPECT_EQ(ds.moved_1q, ss.moved_1q);
            EXPECT_EQ(ds.forced_moves, ss.forced_moves);
        }
    }
}

TEST(ProviderRouting, SparseNoiseMetricReproducesDense)
{
    // The noise metrics differ by ~1 ulp per path, but routing decisions
    // go through a 1e-12 epsilon (router.cc), so the routed output is
    // still expected to match.  layout_trials stays 1: the embedding
    // seed layout's argmin has no epsilon, and this test pins the
    // default-trials configuration only.
    const Backend montreal = montreal_backend();
    TranspileOptions dense;
    dense.noise_aware = true;
    dense.layout_trials = 1;
    dense.sparse_distance_threshold = INT_MAX;
    TranspileOptions sparse = dense;
    sparse.sparse_distance_threshold = 0;
    for (const QuantumCircuit &qc : {qft(8), ghz(10)}) {
        EXPECT_EQ(transpile_fingerprint(qc, montreal, dense),
                  transpile_fingerprint(qc, montreal, sparse));
    }
}

TEST(ProviderRouting, RegionRadiusCoveringDeviceIsBitIdentical)
{
    // A radius at least the device diameter marks every qubit in-region,
    // so the extended set filter admits everything — bit-identical to
    // region_radius = 0.
    const Backend montreal = montreal_backend();
    TranspileOptions off;
    TranspileOptions wide;
    wide.region_radius = 64; // montreal diameter is far below this
    for (const QuantumCircuit &qc : {qft(10), qaoa_maxcut(12)}) {
        EXPECT_EQ(transpile_fingerprint(qc, montreal, off),
                  transpile_fingerprint(qc, montreal, wide));
    }
}

TEST(ProviderRouting, TightRegionRadiusStillRoutesValidCircuits)
{
    // A tight region prunes lookahead, never correctness: every 2q gate
    // in the routed circuit must still touch a coupled pair.
    const Backend backend = heavy_hex_backend(3);
    TranspileOptions opts;
    opts.region_radius = 2;
    DistanceCache cache;
    const TranspileResult res =
        transpile(qaoa_maxcut(14), backend, opts, cache);
    EXPECT_GT(res.circuit.size(), 0u);
    for (const Gate &g : res.circuit.gates()) {
        if (g.qubits.size() == 2 && g.kind != OpKind::kBarrier) {
            EXPECT_TRUE(
                backend.coupling.connected(g.qubits[0], g.qubits[1]))
                << "2q gate on uncoupled pair (" << g.qubits[0] << ","
                << g.qubits[1] << ")";
        }
    }
}

// ---------------------------------------------------------------------
// (c) provider mechanics

TEST(SparseProvider, CountsRowComputesAndHits)
{
    const CouplingMap cm = grid_backend(4, 4).coupling;
    const SparseDistanceProvider p(cm);
    EXPECT_EQ(p.stats().rows_computed, 0u);

    (void)p.row(3);
    (void)p.row(3);
    (void)p.row(7);
    const DistanceProviderStats s = p.stats();
    EXPECT_EQ(s.rows_computed, 2u);
    EXPECT_EQ(s.row_hits, 1u);
    EXPECT_EQ(s.rows_evicted, 0u);
    EXPECT_EQ(s.resident_bytes, 2 * p.row_bytes());
    EXPECT_EQ(s.peak_bytes, 2 * p.row_bytes());
}

TEST(SparseProvider, ByteBudgetEvictsLeastRecentlyUsed)
{
    const CouplingMap cm = grid_backend(4, 4).coupling;
    const SparseDistanceProvider p(cm, /*row_budget_bytes=*/2 *
                                           (16 * sizeof(double)));
    (void)p.row(0);
    (void)p.row(1);
    (void)p.row(2); // evicts row 0 (LRU)
    DistanceProviderStats s = p.stats();
    EXPECT_EQ(s.rows_computed, 3u);
    EXPECT_EQ(s.rows_evicted, 1u);
    EXPECT_EQ(s.resident_bytes, 2 * p.row_bytes());
    // The new row is published before the LRU trim, so the high-water
    // mark transiently held budget + one row.
    EXPECT_EQ(s.peak_bytes, 3 * p.row_bytes());

    // Row 0 was evicted: touching it again recomputes (not a hit)...
    (void)p.row(0);
    s = p.stats();
    EXPECT_EQ(s.rows_computed, 4u);
    EXPECT_EQ(s.row_hits, 0u);

    // ...and now that it is resident again, a re-touch is a pure hit.
    (void)p.row(0);
    EXPECT_EQ(p.stats().row_hits, 1u);
}

TEST(SparseProvider, PinnedRowSurvivesEviction)
{
    const CouplingMap cm = grid_backend(4, 4).coupling;
    const DistanceMatrix dense = hop_distance(cm);
    // Budget of ONE row: every new row evicts the previous one.
    const SparseDistanceProvider p(cm, 16 * sizeof(double));

    const DistanceRow pinned = p.row(5);
    for (int src : {1, 2, 3, 8, 9})
        (void)p.row(src); // churn the cache well past the budget
    EXPECT_GE(p.stats().rows_evicted, 4u);

    // The pin keeps the evicted row's storage alive and intact.
    for (int j = 0; j < 16; ++j)
        EXPECT_EQ(pinned[j], dense(5, j));
}

TEST(SparseProvider, ConcurrentRowFetchIsSafeAndPublishesOnce)
{
    const CouplingMap cm = grid_backend(5, 5).coupling;
    const DistanceMatrix dense = hop_distance(cm);
    const SparseDistanceProvider p(cm);
    const int n = cm.num_qubits();

    std::vector<std::thread> threads;
    std::atomic<int> mismatches{0};
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            for (int pass = 0; pass < 3; ++pass) {
                for (int i = 0; i < n; ++i) {
                    const int src = (i + t * 3) % n;
                    const DistanceRow r = p.row(src);
                    for (int j = 0; j < n; ++j)
                        if (r[j] != dense(src, j))
                            mismatches.fetch_add(1);
                }
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(mismatches.load(), 0);
    // Racing computes are benign duplicates; exactly one install per row
    // is ever counted.
    EXPECT_EQ(p.stats().rows_computed, static_cast<std::size_t>(n));
}

// ---------------------------------------------------------------------
// (d) DistanceCache integration: rotation invalidation

TEST(DistanceCacheRotation, DropsOldRowsAndRecomputesExactlyOnce)
{
    DistanceCache cache;
    Backend b = montreal_backend();
    const DistanceRequest req = DistanceRequest::hops().as_sparse();

    const SharedDistanceProvider p1 = cache.provider(b, req);
    for (int src : {0, 1, 2, 3, 4})
        (void)p1->row(src);
    DistanceCache::Stats s = cache.stats();
    EXPECT_EQ(s.rows_computed, 5u);
    EXPECT_EQ(s.evictions_invalidated, 0u);

    // Rotate the calibration: same backend NAME, different cache_key.
    b.calibration.error_cx.begin()->second *= 1.5;
    const SharedDistanceProvider p2 = cache.provider(b, req);
    s = cache.stats();
    EXPECT_EQ(s.evictions_invalidated, 1u);
    EXPECT_EQ(s.computations, 2u);

    // The new generation recomputes each touched row EXACTLY once: five
    // retired rows plus five fresh ones, and re-touching is a pure hit.
    for (int src : {0, 1, 2, 3, 4})
        (void)p2->row(src);
    EXPECT_EQ(cache.stats().rows_computed, 10u);
    for (int src : {0, 1, 2, 3, 4})
        (void)p2->row(src);
    s = cache.stats();
    EXPECT_EQ(s.rows_computed, 10u);
    EXPECT_EQ(s.row_hits, 5u);

    // Row counters are monotone across the rotation (retired rows stay
    // counted), and the old provider handle remains fully usable.
    EXPECT_EQ((*p1).row(0)[1], (*p2).row(0)[1]);
}

TEST(DistanceCacheRotation, SameKeyDoesNotInvalidate)
{
    DistanceCache cache;
    const Backend b = montreal_backend();
    const DistanceRequest req = DistanceRequest::hops().as_sparse();
    (void)cache.provider(b, req);
    (void)cache.provider(b, req);
    const DistanceCache::Stats s = cache.stats();
    EXPECT_EQ(s.computations, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.evictions_invalidated, 0u);
}

// ---------------------------------------------------------------------
// (e) scale: 1000+ qubits end to end

/** Route ghz(24) on heavy_hex(d); returns (rows touched, device size). */
std::pair<std::size_t, int>
routed_row_footprint(int d)
{
    const Backend device = heavy_hex_backend(d);
    const int n = device.coupling.num_qubits();
    DistanceCache cache;
    TranspileOptions opts;
    opts.router = RoutingAlgorithm::kSabre; // fastest full pipeline
    // Default sparse_distance_threshold (256) already puts these devices
    // on the sparse provider — this is the production configuration.
    const TranspileResult res = transpile(ghz(24), device, opts, cache);
    EXPECT_GT(res.circuit.size(), 0u);

    const DistanceCache::Stats s = cache.stats();
    const std::size_t row_bytes = static_cast<std::size_t>(n) * 8;
    // Distance storage is exactly proportional to rows touched, with no
    // eviction churn when no byte budget is set.
    EXPECT_EQ(s.row_bytes, s.rows_computed * row_bytes);
    EXPECT_EQ(s.row_bytes_peak, s.row_bytes);
    EXPECT_LT(s.rows_computed, static_cast<std::size_t>(n));
    return {s.rows_computed, n};
}

TEST(ProviderScale, HeavyHexRoutesWithRowProportionalMemory)
{
    // Routing a fixed 24-qubit workload end to end on Condor-class and
    // beyond-Condor-class lattices: the rows the pipeline touches track
    // the workload's walk, not the device, so the resident fraction of
    // the dense n^2 matrix SHRINKS as the topology axis scales (the
    // measured footprint is ~0.45 * dense at 1123 qubits and ~0.27 *
    // dense at 4243 — deterministic, seeded pipeline).
    const auto [rows_1k, n_1k] = routed_row_footprint(21);
    ASSERT_EQ(n_1k, 1123);
    EXPECT_LT(rows_1k, static_cast<std::size_t>(n_1k) / 2);

    const auto [rows_4k, n_4k] = routed_row_footprint(41);
    ASSERT_EQ(n_4k, 4243);
    EXPECT_LT(rows_4k, static_cast<std::size_t>(n_4k) / 3);

    // Sublinear growth across a 3.8x device-size jump.
    EXPECT_LT(static_cast<double>(rows_4k) / n_4k,
              static_cast<double>(rows_1k) / n_1k);
}

} // namespace
} // namespace nassc
