// Golden-metrics regression for the router core.
//
// The optimized router (flat DistanceMatrix, CSR DAG adjacency, epoch-
// stamped scratch buffers, delta scoring) must emit *bit-identical*
// results to the seed implementation: same RoutingStats, same physical
// gate sequence (including SWAP orientation flags), same initial and
// final layouts.  The golden values below were recorded by running the
// seed implementation over the Table I suite on ibmq_montreal for both
// SABRE and NASSC, with and without decay, on hop and noise-aware
// distances.
//
// Regenerate after an *intentional* behavior change with:
//
//   NASSC_REGEN_GOLDENS=1 ./test_router_equivalence | grep '^    {'
//
// and paste the output into kGoldens.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/route/sabre.h"
#include "nassc/topo/backends.h"

namespace nassc {
namespace {

/** FNV-1a over the routed gate stream and the layouts. */
class Fnv
{
  public:
    void
    mix_u64(std::uint64_t v)
    {
        for (int byte = 0; byte < 8; ++byte) {
            h_ ^= (v >> (8 * byte)) & 0xffu;
            h_ *= 1099511628211ull;
        }
    }

    void
    mix_double(double x)
    {
        std::uint64_t v;
        std::memcpy(&v, &x, sizeof(v));
        mix_u64(v);
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 14695981039346656037ull;
};

std::uint64_t
routing_fingerprint(const RoutingResult &res)
{
    Fnv f;
    for (const Gate &g : res.circuit.gates()) {
        f.mix_u64(static_cast<std::uint64_t>(g.kind));
        f.mix_u64(static_cast<std::uint64_t>(g.swap_orient) + 2);
        for (int q : g.qubits)
            f.mix_u64(static_cast<std::uint64_t>(q));
        for (double p : g.params)
            f.mix_double(p);
    }
    for (int p : res.initial_l2p)
        f.mix_u64(static_cast<std::uint64_t>(p));
    for (int p : res.final_l2p)
        f.mix_u64(static_cast<std::uint64_t>(p));
    return f.value();
}

struct Config
{
    const char *tag;
    RoutingAlgorithm algorithm;
    bool use_decay;
    bool noise_aware;
};

constexpr Config kConfigs[] = {
    {"sabre/decay/hops", RoutingAlgorithm::kSabre, true, false},
    {"sabre/nodecay/noise", RoutingAlgorithm::kSabre, false, true},
    {"nassc/decay/hops", RoutingAlgorithm::kNassc, true, false},
    {"nassc/nodecay/noise", RoutingAlgorithm::kNassc, false, true},
};

struct Golden
{
    const char *circuit;
    const char *config;
    RoutingStats stats;
    std::uint64_t fingerprint;
};

// clang-format off
const Golden kGoldens[] = {
    {"grover_n4", "sabre/decay/hops", {43, 0, 0, 0, 0, 0, 0}, 0xffc5126c5e224f57ull},
    {"grover_n4", "sabre/nodecay/noise", {52, 0, 0, 0, 0, 0, 0}, 0x700fadf0f2eacc54ull},
    {"grover_n4", "nassc/decay/hops", {31, 17, 24, 17, 0, 33, 0}, 0x50ca2b6c77ce0d06ull},
    {"grover_n4", "nassc/nodecay/noise", {29, 22, 22, 19, 3, 35, 0}, 0xb832d6afd77c6360ull},
    {"grover_n6", "sabre/decay/hops", {215, 0, 0, 0, 0, 0, 0}, 0x7a8d12302d3bf046ull},
    {"grover_n6", "sabre/nodecay/noise", {204, 0, 0, 0, 0, 0, 0}, 0x9dc0ce192f703db6ull},
    {"grover_n6", "nassc/decay/hops", {185, 93, 97, 93, 0, 165, 0}, 0x68703b1316114d10ull},
    {"grover_n6", "nassc/nodecay/noise", {193, 87, 91, 87, 0, 158, 0}, 0x34092e6bf17771dbull},
    {"grover_n8", "sabre/decay/hops", {733, 0, 0, 0, 0, 0, 0}, 0x8c495334138c3cb8ull},
    {"grover_n8", "sabre/nodecay/noise", {985, 0, 0, 0, 0, 0, 0}, 0xbf77a545fdd6919cull},
    {"grover_n8", "nassc/decay/hops", {727, 356, 343, 341, 15, 550, 0}, 0xee508ad625700ef3ull},
    {"grover_n8", "nassc/nodecay/noise", {902, 358, 355, 346, 12, 560, 0}, 0x65391c667be97c97ull},
    {"vqe_n8", "sabre/decay/hops", {85, 0, 0, 0, 0, 0, 0}, 0x96796306c5e435f7ull},
    {"vqe_n8", "sabre/nodecay/noise", {107, 0, 0, 0, 0, 0, 0}, 0x1a482dcffe224328ull},
    {"vqe_n8", "nassc/decay/hops", {73, 56, 41, 55, 1, 17, 0}, 0x71c019e10b48cae7ull},
    {"vqe_n8", "nassc/nodecay/noise", {80, 69, 67, 69, 0, 20, 0}, 0xb396697087d3a8caull},
    {"vqe_n12", "sabre/decay/hops", {260, 0, 0, 0, 0, 0, 0}, 0xaa62b56d81303a91ull},
    {"vqe_n12", "sabre/nodecay/noise", {315, 0, 0, 0, 0, 0, 0}, 0xe1f0f1f2450eefe1ull},
    {"vqe_n12", "nassc/decay/hops", {268, 162, 137, 153, 9, 29, 0}, 0xd74792b38d51d1ebull},
    {"vqe_n12", "nassc/nodecay/noise", {344, 168, 135, 128, 40, 20, 0}, 0x4f942a03794b337full},
    {"bv_n19", "sabre/decay/hops", {17, 0, 0, 0, 0, 0, 0}, 0xaaf5b08d8667a516ull},
    {"bv_n19", "sabre/nodecay/noise", {33, 0, 0, 0, 0, 0, 0}, 0x9631b2045e5249daull},
    {"bv_n19", "nassc/decay/hops", {23, 9, 7, 7, 2, 7, 0}, 0x29c0b7929cc80c3bull},
    {"bv_n19", "nassc/nodecay/noise", {28, 14, 11, 13, 1, 13, 0}, 0xc944bf30612d1b7eull},
    {"qft_n15", "sabre/decay/hops", {155, 0, 0, 0, 0, 0, 0}, 0xd6772d32acf3addeull},
    {"qft_n15", "sabre/nodecay/noise", {177, 0, 0, 0, 0, 0, 0}, 0x75ec18e733ef591eull},
    {"qft_n15", "nassc/decay/hops", {169, 13, 43, 0, 13, 0, 0}, 0x0e5e4a38b0a82348ull},
    {"qft_n15", "nassc/nodecay/noise", {168, 30, 38, 0, 30, 0, 0}, 0x1d6e23653ac441f9ull},
    {"qft_n20", "sabre/decay/hops", {318, 0, 0, 0, 0, 0, 0}, 0xf8ea8f6ddce453adull},
    {"qft_n20", "sabre/nodecay/noise", {379, 0, 0, 0, 0, 0, 0}, 0xf21f6c5ef960505cull},
    {"qft_n20", "nassc/decay/hops", {304, 42, 71, 0, 42, 0, 0}, 0xb6a9be76001bda55ull},
    {"qft_n20", "nassc/nodecay/noise", {476, 58, 113, 0, 58, 0, 0}, 0xd3dda62e6af59affull},
    {"qpe_n9", "sabre/decay/hops", {39, 0, 0, 0, 0, 0, 0}, 0x0a8f96a2688d3fa9ull},
    {"qpe_n9", "sabre/nodecay/noise", {39, 0, 0, 0, 0, 0, 0}, 0xd12e2295a7cae2a9ull},
    {"qpe_n9", "nassc/decay/hops", {47, 5, 23, 0, 5, 0, 0}, 0x31e948cbcefa76ddull},
    {"qpe_n9", "nassc/nodecay/noise", {48, 2, 23, 0, 2, 0, 0}, 0x15f262be7d556be1ull},
    {"adder_n10", "sabre/decay/hops", {25, 0, 0, 0, 0, 0, 0}, 0x72a41105b2a578faull},
    {"adder_n10", "sabre/nodecay/noise", {30, 0, 0, 0, 0, 0, 0}, 0xcc39b6df137d50e0ull},
    {"adder_n10", "nassc/decay/hops", {21, 8, 8, 8, 0, 12, 0}, 0xc3ee2e6ee7bb229dull},
    {"adder_n10", "nassc/nodecay/noise", {22, 9, 9, 9, 0, 12, 0}, 0x025a58b4086e805full},
    {"multiplier_n25", "sabre/decay/hops", {649, 0, 0, 0, 0, 0, 0}, 0xd147df97f9a5a5abull},
    {"multiplier_n25", "sabre/nodecay/noise", {928, 0, 0, 0, 0, 0, 0}, 0xa5cab9bdd99d8aafull},
    {"multiplier_n25", "nassc/decay/hops", {632, 281, 281, 281, 0, 407, 0}, 0x58feb58b9a923551ull},
    {"multiplier_n25", "nassc/nodecay/noise", {1351, 296, 291, 290, 6, 440, 0}, 0xd5df98a8875b9a77ull},
    {"sqn_258", "sabre/decay/hops", {2662, 0, 0, 0, 0, 0, 0}, 0x78a18f11e3c73acaull},
    {"sqn_258", "sabre/nodecay/noise", {4387, 0, 0, 0, 0, 0, 0}, 0x9ad06189d32c9277ull},
    {"sqn_258", "nassc/decay/hops", {2665, 1180, 1149, 1150, 30, 1900, 0}, 0xb1b6b08837b6eeecull},
    {"sqn_258", "nassc/nodecay/noise", {4646, 1381, 1323, 1313, 68, 2133, 0}, 0xd32cabb8cd0f7124ull},
    {"rd84_253", "sabre/decay/hops", {3760, 0, 0, 0, 0, 0, 0}, 0x5cac92044ad884abull},
    {"rd84_253", "sabre/nodecay/noise", {5940, 0, 0, 0, 0, 0, 0}, 0x8886f950b35c5106ull},
    {"rd84_253", "nassc/decay/hops", {3747, 1627, 1588, 1588, 39, 2598, 0}, 0xf7b5b3389e6ab203ull},
    {"rd84_253", "nassc/nodecay/noise", {6210, 1871, 1819, 1800, 71, 2877, 0}, 0x110c1ccee103f64full},
    {"co14_215", "sabre/decay/hops", {5571, 0, 0, 0, 0, 0, 0}, 0xf14d09c9779154e8ull},
    {"co14_215", "sabre/nodecay/noise", {8749, 0, 0, 0, 0, 0, 0}, 0x90e8914924adc299ull},
    {"co14_215", "nassc/decay/hops", {5484, 2157, 2131, 2131, 26, 3503, 0}, 0xb009155854124646ull},
    {"co14_215", "nassc/nodecay/noise", {10101, 2495, 2364, 2361, 134, 3799, 0}, 0x3f728a03338dcf61ull},
    {"sym9_193", "sabre/decay/hops", {11244, 0, 0, 0, 0, 0, 0}, 0x0795d24c55ebb134ull},
    {"sym9_193", "sabre/nodecay/noise", {15309, 0, 0, 0, 0, 0, 0}, 0x01a81ade71e4b28eull},
    {"sym9_193", "nassc/decay/hops", {11013, 4351, 4282, 4283, 68, 6960, 0}, 0x189d7eaed4bf5a50ull},
    {"sym9_193", "nassc/nodecay/noise", {15823, 4691, 4503, 4479, 212, 7279, 0}, 0xb8d2cd265a3c687full},
};
// clang-format on

RoutingResult
route_one(const QuantumCircuit &raw, unsigned seed, const Config &cfg)
{
    Backend dev = montreal_backend();
    QuantumCircuit logical = decompose_to_2q(raw);

    RoutingOptions opts;
    opts.algorithm = cfg.algorithm;
    opts.use_decay = cfg.use_decay;
    opts.seed = seed;

    const auto dist = cfg.noise_aware ? noise_aware_distance(dev)
                                      : hop_distance(dev.coupling);
    Layout init = sabre_initial_layout(logical, dev.coupling, dist, opts);
    return route_circuit(logical, dev.coupling, dist, init, opts);
}

TEST(RouterEquivalence, TableISuiteMatchesSeedGoldens)
{
    const bool regen = std::getenv("NASSC_REGEN_GOLDENS") != nullptr;
    auto suite = table_benchmarks();

    std::size_t golden_idx = 0;
    for (std::size_t ci = 0; ci < suite.size(); ++ci) {
        for (const Config &cfg : kConfigs) {
            RoutingResult res =
                route_one(suite[ci].circuit, static_cast<unsigned>(ci), cfg);
            const RoutingStats &s = res.stats;
            std::uint64_t fp = routing_fingerprint(res);

            if (regen) {
                std::printf("    {\"%s\", \"%s\", {%d, %d, %d, %d, %d, %d, "
                            "%d}, 0x%016" PRIx64 "ull},\n",
                            suite[ci].name.c_str(), cfg.tag, s.num_swaps,
                            s.flagged_swaps, s.c2q_hits, s.commute1_hits,
                            s.commute2_hits, s.moved_1q, s.forced_moves, fp);
                continue;
            }

            ASSERT_LT(golden_idx, std::size(kGoldens))
                << "golden table shorter than the suite — regenerate";
            const Golden &g = kGoldens[golden_idx++];
            SCOPED_TRACE(std::string(suite[ci].name) + " / " + cfg.tag);
            ASSERT_STREQ(g.circuit, suite[ci].name.c_str());
            ASSERT_STREQ(g.config, cfg.tag);
            EXPECT_EQ(g.stats.num_swaps, s.num_swaps);
            EXPECT_EQ(g.stats.flagged_swaps, s.flagged_swaps);
            EXPECT_EQ(g.stats.c2q_hits, s.c2q_hits);
            EXPECT_EQ(g.stats.commute1_hits, s.commute1_hits);
            EXPECT_EQ(g.stats.commute2_hits, s.commute2_hits);
            EXPECT_EQ(g.stats.moved_1q, s.moved_1q);
            EXPECT_EQ(g.stats.forced_moves, s.forced_moves);
            EXPECT_EQ(g.fingerprint, fp)
                << "routed gate stream / layouts diverged from seed";
        }
    }
    if (!regen) {
        EXPECT_EQ(golden_idx, std::size(kGoldens));
    }
}

} // namespace
} // namespace nassc
