// Tests for the router's robustness guards: reduction capping, partner
// consumption, no-undo rule, and deadlock breaking.

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/passes/decompose_swaps.h"
#include "nassc/route/nassc_router.h"
#include "nassc/route/sabre.h"
#include "nassc/sim/verify.h"
#include "nassc/transpile/transpile.h"

namespace nassc {
namespace {

TEST(RouterGuards, ReductionCappedAtSwapCost)
{
    RoutingOptions opts;
    opts.algorithm = RoutingAlgorithm::kNassc;
    OptAwareTracker tracker(4, opts);
    // Rich block (C2q = 3) plus a cancellable CX (Ccommute1 = 2): the
    // combined claim must still be <= 3.
    tracker.on_gate(Gate::two_q(OpKind::kCX, 0, 1), 0);
    tracker.on_gate(Gate::two_q(OpKind::kCX, 1, 0), 1);
    tracker.on_gate(Gate::two_q(OpKind::kCX, 0, 1), 2);
    SwapReduction red = tracker.evaluate_swap(0, 1);
    EXPECT_LE(red.total, 3.0);
    EXPECT_GT(red.total, 0.0);
}

TEST(RouterGuards, ConsumedRecordNotReused)
{
    RoutingOptions opts;
    opts.algorithm = RoutingAlgorithm::kNassc;
    opts.enable_c2q = false;
    OptAwareTracker tracker(3, opts);
    tracker.on_gate(Gate::two_q(OpKind::kCX, 0, 1), 0);
    SwapReduction first = tracker.evaluate_swap(0, 1);
    ASSERT_TRUE(first.commute1);
    EXPECT_EQ(first.used_record_idx, 0);
    tracker.consume_record(first.used_record_idx);
    SwapReduction second = tracker.evaluate_swap(0, 1);
    EXPECT_FALSE(second.commute1);
}

TEST(RouterGuards, ConsumeUnknownIndexIsNoop)
{
    RoutingOptions opts;
    OptAwareTracker tracker(2, opts);
    EXPECT_NO_THROW(tracker.consume_record(-1));
    EXPECT_NO_THROW(tracker.consume_record(999));
}

TEST(RouterGuards, RoutingTerminatesOnAdversarialCircuit)
{
    // Repeated far-apart pairs on a line maximize swap churn; the
    // watchdog and no-undo rule must keep the router finite.
    Backend dev = linear_backend(8);
    QuantumCircuit logical(8);
    for (int i = 0; i < 30; ++i) {
        logical.cx(0, 7);
        logical.cx(3, 6);
        logical.cx(1, 5);
    }
    RoutingOptions opts;
    opts.algorithm = RoutingAlgorithm::kNassc;
    Layout init(8, 8);
    RoutingResult res = route_circuit(logical, dev.coupling,
                                      hop_distance(dev.coupling), init, opts);
    EXPECT_EQ(res.circuit.size() - res.circuit.count(OpKind::kSwap),
              logical.size());
}

TEST(RouterGuards, ForcedSwapFailsLoudlyOnIsolatedQubit)
{
    // Qubit 3 has no coupling edges, so cx(3, 0) can never be routed.
    // Once the forced-swap watchdog fires, the blocked qubit has no
    // neighbor to move toward: the router must throw instead of calling
    // apply_swap(pa, -1, ...) and corrupting the layout.
    CouplingMap cm(4, {{0, 1}, {1, 2}});
    QuantumCircuit logical(4);
    logical.cx(3, 0);
    RoutingOptions opts;
    Layout init(4, 4);
    EXPECT_THROW(route_circuit(logical, cm, hop_distance(cm), init, opts),
                 std::logic_error);
}

TEST(RouterGuards, BestSwapFailsLoudlyWhenBothQubitsIsolated)
{
    // Both endpoints isolated: the candidate list itself is empty, which
    // must be a clean error rather than apply_swap(-1, -1).
    CouplingMap cm(4, {{0, 1}});
    QuantumCircuit logical(4);
    logical.cx(2, 3);
    RoutingOptions opts;
    Layout init(4, 4);
    EXPECT_THROW(route_circuit(logical, cm, hop_distance(cm), init, opts),
                 std::logic_error);
}

TEST(RouterGuards, ZeroExtendedSizeWorks)
{
    Backend dev = linear_backend(6);
    QuantumCircuit logical = decompose_to_2q(qft(6));
    RoutingOptions opts;
    opts.algorithm = RoutingAlgorithm::kNassc;
    opts.extended_size = 0;
    Layout init(6, 6);
    RoutingResult res = route_circuit(logical, dev.coupling,
                                      hop_distance(dev.coupling), init, opts);
    EXPECT_GT(res.stats.num_swaps, 0);
}

TEST(RouterGuards, SingleGateCircuit)
{
    Backend dev = linear_backend(3);
    QuantumCircuit logical(3);
    logical.cx(0, 2);
    RoutingOptions opts;
    opts.algorithm = RoutingAlgorithm::kNassc;
    Layout init(3, 3);
    RoutingResult res = route_circuit(logical, dev.coupling,
                                      hop_distance(dev.coupling), init, opts);
    EXPECT_GE(res.stats.num_swaps, 1);
    QuantumCircuit phys = res.circuit;
    TranspileResult fake;
    fake.circuit = translate_to_basis([&] {
        QuantumCircuit c = phys;
        decompose_swaps(c, true);
        return c;
    }());
    fake.initial_l2p = res.initial_l2p;
    fake.final_l2p = res.final_l2p;
    EXPECT_TRUE(verify_transpilation(logical, fake));
}

TEST(RouterGuards, EmptyCircuit)
{
    Backend dev = linear_backend(4);
    QuantumCircuit logical(3);
    RoutingOptions opts;
    Layout init(3, 4);
    RoutingResult res = route_circuit(logical, dev.coupling,
                                      hop_distance(dev.coupling), init, opts);
    EXPECT_EQ(res.circuit.size(), 0u);
    EXPECT_EQ(res.stats.num_swaps, 0);
}

TEST(RouterGuards, OneQubitOnlyCircuit)
{
    Backend dev = linear_backend(4);
    QuantumCircuit logical(2);
    logical.h(0);
    logical.rz(0.4, 1);
    RoutingOptions opts;
    Layout init(2, 4);
    RoutingResult res = route_circuit(logical, dev.coupling,
                                      hop_distance(dev.coupling), init, opts);
    EXPECT_EQ(res.stats.num_swaps, 0);
    EXPECT_EQ(res.circuit.size(), 2u);
}

} // namespace
} // namespace nassc
