// Tests for the serving layer's fingerprint keys:
//
//  (a) stability — exact pinned values for QuantumCircuit::fingerprint()
//      and TranspileOptions::fingerprint().  These hashes are persistent
//      cache-key material (TranspileService), so any change to the
//      encoding, the FNV constants, or the option field order is a
//      BREAKING change and must show up here;
//  (b) structural identity — independently built identical circuits
//      collide, any structural difference (order, operands, params,
//      width, orientation flags, gate grouping) separates;
//  (c) option field coverage — flipping EVERY TranspileOptions field,
//      one at a time, changes the fingerprint, and all the variants are
//      pairwise distinct.  Adding a field without extending the hash
//      fails the count check below.

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "nassc/ir/circuit.h"
#include "nassc/ir/qasm.h"
#include "nassc/transpile/transpile.h"

namespace nassc {
namespace {

QuantumCircuit
mixed_circuit()
{
    QuantumCircuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.rz(0.5, 2);
    c.swap(1, 2);
    c.mutable_gates().back().swap_orient = SwapOrient::kSecond;
    c.measure(0);
    c.barrier();
    return c;
}

TEST(CircuitFingerprint, PinnedStableValues)
{
    // Cache-key contract: these exact values must survive refactors.
    EXPECT_EQ(QuantumCircuit(0).fingerprint(), 0x5467b0da1d106495ull);
    EXPECT_EQ(mixed_circuit().fingerprint(), 0x262e293add70384bull);
}

TEST(CircuitFingerprint, IndependentlyBuiltTwinsCollide)
{
    EXPECT_EQ(mixed_circuit().fingerprint(), mixed_circuit().fingerprint());
}

TEST(CircuitFingerprint, StructuralDifferencesSeparate)
{
    const std::uint64_t base = mixed_circuit().fingerprint();

    { // gate order
        QuantumCircuit c(3);
        c.cx(0, 1);
        c.h(0);
        c.rz(0.5, 2);
        c.swap(1, 2);
        c.mutable_gates().back().swap_orient = SwapOrient::kSecond;
        c.measure(0);
        c.barrier();
        EXPECT_NE(c.fingerprint(), base);
    }
    { // operand order
        QuantumCircuit c = mixed_circuit();
        c.mutable_gates()[1] = Gate::two_q(OpKind::kCX, 1, 0);
        EXPECT_NE(c.fingerprint(), base);
    }
    { // parameter value
        QuantumCircuit c = mixed_circuit();
        c.mutable_gates()[2] = Gate::one_q(OpKind::kRZ, 2, 0.5000001);
        EXPECT_NE(c.fingerprint(), base);
    }
    { // SWAP orientation flag
        QuantumCircuit c = mixed_circuit();
        c.mutable_gates()[3].swap_orient = SwapOrient::kDefault;
        EXPECT_NE(c.fingerprint(), base);
    }
    { // register width (same gate stream)
        const QuantumCircuit m = mixed_circuit();
        QuantumCircuit c(4);
        for (const Gate &g : m.gates())
            c.append(g);
        EXPECT_NE(c.fingerprint(), base);
    }
    { // trailing gate dropped
        QuantumCircuit c = mixed_circuit();
        c.mutable_gates().pop_back();
        EXPECT_NE(c.fingerprint(), base);
    }
}

TEST(CircuitFingerprint, GateGroupingCannotAlias)
{
    // Same flat operand stream, different gate boundaries: the per-gate
    // operand-count mixing must separate them.
    QuantumCircuit a(3);
    a.append(Gate::barrier({0, 1}));
    a.append(Gate::barrier({2}));
    QuantumCircuit b(3);
    b.append(Gate::barrier({0}));
    b.append(Gate::barrier({1, 2}));
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(OptionsFingerprint, PinnedStableValues)
{
    EXPECT_EQ(TranspileOptions{}.fingerprint(), 0x4c60e4db5626fb3cull);
    TranspileOptions s;
    s.router = RoutingAlgorithm::kSabre;
    s.seed = 7;
    EXPECT_EQ(s.fingerprint(), 0x566bd1ae297254ceull);
}

TEST(OptionsFingerprint, EveryFieldIsCovered)
{
    // One variant per field, each differing from the default in exactly
    // that field.  If TranspileOptions grows a field, add a variant
    // here AND a line to fingerprint() — the count assert is the tripwire.
    std::vector<TranspileOptions> variants;
    auto vary = [&](auto &&set) {
        TranspileOptions o;
        set(o);
        variants.push_back(o);
    };
    vary([](TranspileOptions &o) { o.router = RoutingAlgorithm::kSabre; });
    vary([](TranspileOptions &o) { o.seed = 12345; });
    vary([](TranspileOptions &o) { o.noise_aware = true; });
    vary([](TranspileOptions &o) { o.enable_c2q = false; });
    vary([](TranspileOptions &o) { o.enable_commute1 = false; });
    vary([](TranspileOptions &o) { o.enable_commute2 = false; });
    vary([](TranspileOptions &o) { o.extended_size = 21; });
    vary([](TranspileOptions &o) { o.extended_weight = 0.25; });
    vary([](TranspileOptions &o) { o.layout_iterations = 4; });
    vary([](TranspileOptions &o) { o.layout_trials = 4; });
    vary([](TranspileOptions &o) { o.layout_threads = 2; });
    vary([](TranspileOptions &o) { o.opt_loop_rounds = 5; });
    vary([](TranspileOptions &o) { o.reuse_routing = false; });
    vary([](TranspileOptions &o) {
        o.orientation_aware_decomposition = false;
    });
    vary([](TranspileOptions &o) { o.use_decay = false; });
    vary([](TranspileOptions &o) { o.priority = 3; });
    vary([](TranspileOptions &o) { o.cache_ttl_seconds = 30.0; });
    vary([](TranspileOptions &o) { o.deadline_ms = 750; });
    vary([](TranspileOptions &o) { o.sparse_distance_threshold = 64; });
    vary([](TranspileOptions &o) {
        o.distance_row_budget_bytes = 1 << 20;
    });
    vary([](TranspileOptions &o) { o.region_radius = 4; });

    // Tripwire: sizeof changes when fields are added; update the variant
    // list, the hash, and this constant together.
    ASSERT_EQ(variants.size(), 21u);

    const std::uint64_t base = TranspileOptions{}.fingerprint();
    std::set<std::uint64_t> seen{base};
    for (const TranspileOptions &o : variants) {
        const std::uint64_t fp = o.fingerprint();
        EXPECT_NE(fp, base);
        EXPECT_TRUE(seen.insert(fp).second)
            << "fingerprint collision between option variants";
    }
}

// ---------------------------------------------------------------------
// QASM round-trip identity.  The daemon's wire format is OpenQASM 2.0
// (serve/protocol.h), and submit_qasm() keys requests by the PARSED
// circuit's fingerprint — so from_qasm(to_qasm(c)) must reproduce c's
// fingerprint exactly or text and object submissions of the same
// circuit would stop deduping against each other.

std::uint64_t
round_trip_fp(const QuantumCircuit &c)
{
    return from_qasm(to_qasm(c)).fingerprint();
}

TEST(QasmRoundTrip, EveryOpKindFingerprintIdentical)
{
    // One gate of every serializable kind, with params chosen so the
    // printed precision-17 doubles must survive stod exactly.
    QuantumCircuit c(4);
    c.id(0);
    c.x(1);
    c.y(2);
    c.z(3);
    c.h(0);
    c.s(1);
    c.sdg(2);
    c.t(3);
    c.tdg(0);
    c.sx(1);
    c.sxdg(2);
    c.rx(0.1, 0);
    c.ry(-2.0 / 3.0, 1);
    c.rz(3.14159265358979312, 2);
    c.p(1e-17, 3);
    c.u(0.5, -0.25, 0.125, 0);
    c.cx(0, 1);
    c.cy(1, 2);
    c.cz(2, 3);
    c.ch(3, 0);
    c.cp(0.7, 0, 2);
    c.crx(-0.3, 1, 3);
    c.cry(0.9, 2, 0);
    c.crz(-1.1, 3, 1);
    c.rzz(0.4, 0, 3);
    c.rxx(-0.6, 1, 2);
    c.swap(0, 2);
    c.iswap(1, 3);
    c.ccx(0, 1, 2);
    c.ccz(1, 2, 3);
    c.cswap(0, 2, 3);
    EXPECT_EQ(round_trip_fp(c), c.fingerprint());
}

TEST(QasmRoundTrip, MeasureAndBarrierCircuits)
{
    QuantumCircuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.barrier();
    c.append(Gate::barrier({1, 2})); // partial barrier
    c.measure(1);
    c.measure_all();
    EXPECT_EQ(round_trip_fp(c), c.fingerprint());
}

TEST(QasmRoundTrip, MultiRegisterFlattening)
{
    // Two qregs flatten into one contiguous index space in declaration
    // order: a[0..1] -> 0..1, b[0..2] -> 2..4.
    const std::string text = "OPENQASM 2.0;\n"
                             "include \"qelib1.inc\";\n"
                             "qreg a[2];\n"
                             "qreg b[3];\n"
                             "creg m[5];\n"
                             "h a[0];\n"
                             "cx a[1],b[0];\n"
                             "rz(0.25) b[2];\n"
                             "measure b[1] -> m[3];\n";
    QuantumCircuit expected(5);
    expected.h(0);
    expected.cx(1, 2);
    expected.rz(0.25, 4);
    expected.measure(3);
    const QuantumCircuit parsed = from_qasm(text);
    EXPECT_EQ(parsed.fingerprint(), expected.fingerprint());
    // And the flattened form is itself a fixed point.
    EXPECT_EQ(round_trip_fp(parsed), parsed.fingerprint());
}

TEST(QasmRoundTrip, McxNormalizesToCcx)
{
    // Documented carve-out: a 2-control kMCX prints as "ccx" (OpenQASM
    // has no mcx), so it round-trips as the EQUIVALENT kCCX gate — same
    // unitary, different OpKind tag, hence a different fingerprint from
    // the kMCX original.  Wire users see the normalized form.
    QuantumCircuit m(3);
    m.mcx({0, 1}, 2);
    QuantumCircuit c(3);
    c.ccx(0, 1, 2);
    EXPECT_EQ(round_trip_fp(m), c.fingerprint());
    EXPECT_NE(m.fingerprint(), c.fingerprint());
}

TEST(OptionsFingerprint, BoolFieldsDoNotAliasAcrossPositions)
{
    // Two single-bool flips in different fields must not cancel: flip
    // pairs and require distinctness from each other and the base.
    TranspileOptions a;
    a.enable_c2q = false;
    TranspileOptions b;
    b.enable_commute1 = false;
    TranspileOptions both;
    both.enable_c2q = false;
    both.enable_commute1 = false;
    std::set<std::uint64_t> s{TranspileOptions{}.fingerprint(),
                              a.fingerprint(), b.fingerprint(),
                              both.fingerprint()};
    EXPECT_EQ(s.size(), 4u);
}

} // namespace
} // namespace nassc
