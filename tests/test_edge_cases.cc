// Error-path and boundary-condition tests across modules: the places a
// downstream user will hit first when they hold the API wrong.

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/ir/qasm.h"
#include "nassc/math/weyl.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/passes/scheduling.h"
#include "nassc/sim/noise.h"
#include "nassc/sim/statevector.h"
#include "nassc/sim/unitary.h"
#include "nassc/synth/mct.h"
#include "nassc/transpile/transpile.h"

namespace nassc {
namespace {

// ---- construction errors ------------------------------------------------------

TEST(EdgeCases, CircuitRejectsNegativeRegister)
{
    EXPECT_THROW(QuantumCircuit(-1), std::invalid_argument);
}

TEST(EdgeCases, ComposeRejectsBiggerRegister)
{
    QuantumCircuit small(2), big(3);
    big.h(2);
    EXPECT_THROW(small.compose(big), std::invalid_argument);
}

TEST(EdgeCases, TranspileRejectsOversizedCircuit)
{
    Backend dev = linear_backend(3);
    QuantumCircuit qc(5);
    TranspileOptions opts;
    EXPECT_THROW(transpile(qc, dev, opts), std::invalid_argument);
}

TEST(EdgeCases, StatevectorRejectsHugeRegister)
{
    EXPECT_THROW(Statevector(27), std::invalid_argument);
}

// ---- degenerate circuits ------------------------------------------------------

TEST(EdgeCases, TranspileEmptyCircuit)
{
    Backend dev = linear_backend(4);
    QuantumCircuit qc(3);
    TranspileOptions opts;
    TranspileResult res = transpile(qc, dev, opts);
    EXPECT_EQ(res.cx_total, 0);
    EXPECT_EQ(res.depth, 0);
}

TEST(EdgeCases, TranspileMeasureOnlyCircuit)
{
    Backend dev = linear_backend(4);
    QuantumCircuit qc(2);
    qc.measure_all();
    TranspileOptions opts;
    TranspileResult res = transpile(qc, dev, opts);
    EXPECT_EQ(res.circuit.count(OpKind::kMeasure), 2);
}

TEST(EdgeCases, SingleQubitDevice)
{
    Backend dev = linear_backend(1);
    QuantumCircuit qc(1);
    qc.h(0);
    TranspileOptions opts;
    TranspileResult res = transpile(qc, dev, opts);
    EXPECT_TRUE(is_basis_circuit(res.circuit));
    EXPECT_EQ(res.routing_stats.num_swaps, 0);
}

TEST(EdgeCases, BarrierOnlyCircuit)
{
    Backend dev = linear_backend(3);
    QuantumCircuit qc(3);
    qc.barrier();
    TranspileOptions opts;
    TranspileResult res = transpile(qc, dev, opts);
    EXPECT_EQ(res.circuit.count(OpKind::kBarrier), 1);
}

// ---- qasm error paths ----------------------------------------------------------

TEST(EdgeCases, QasmMissingRegister)
{
    EXPECT_THROW(from_qasm("h q[0];"), std::runtime_error);
}

TEST(EdgeCases, QasmMalformedExpression)
{
    EXPECT_THROW(from_qasm("qreg q[1]; rz(pi*) q[0];"), std::runtime_error);
    EXPECT_THROW(from_qasm("qreg q[1]; rz(frob) q[0];"), std::runtime_error);
    EXPECT_THROW(from_qasm("qreg q[1]; rz((1+2) q[0];"), std::runtime_error);
}

TEST(EdgeCases, QasmWholeRegisterOperandUnsupported)
{
    EXPECT_THROW(from_qasm("qreg q[2]; h q;"), std::runtime_error);
}

TEST(EdgeCases, QasmEmptyInputGivesEmptyCircuit)
{
    QuantumCircuit qc = from_qasm("OPENQASM 2.0;\n");
    EXPECT_EQ(qc.num_qubits(), 0);
    EXPECT_EQ(qc.size(), 0u);
}

// ---- numerical boundaries -------------------------------------------------------

TEST(EdgeCases, KakAtChamberCorners)
{
    // Exact chamber corners: identity, CX class, iSWAP class, SWAP class,
    // B-gate (pi/4, pi/8, 0) and the chiral midpoint (pi/8, pi/8, pi/8).
    const double pi4 = M_PI / 4.0, pi8 = M_PI / 8.0;
    struct
    {
        double a, b, c;
        int cost;
    } cases[] = {
        {0, 0, 0, 0},          {pi4, 0, 0, 1},   {pi4, pi4, 0, 2},
        {pi4, pi4, pi4, 3},    {pi4, pi8, 0, 2}, {pi8, pi8, pi8, 3},
        {pi4, pi4, -pi4 + 1e-3, 3},
    };
    for (auto &cs : cases) {
        Mat4 u = canonical_gate(cs.a, cs.b, cs.c);
        EXPECT_EQ(cnot_cost(u), cs.cost)
            << cs.a << "," << cs.b << "," << cs.c;
        Kak k = kak_decompose(u);
        canonicalize(k);
        EXPECT_LT(frobenius_distance(u, kak_reconstruct(k)), 1e-6);
    }
}

TEST(EdgeCases, KakNearBoundaryPerturbations)
{
    // Tiny perturbations off chamber corners must not destabilize the
    // decomposition.
    std::mt19937 rng(4);
    std::uniform_real_distribution<double> eps(-1e-9, 1e-9);
    const double pi4 = M_PI / 4.0;
    for (int trial = 0; trial < 25; ++trial) {
        Mat4 u = canonical_gate(pi4 + eps(rng), eps(rng), eps(rng));
        Kak k = kak_decompose(u);
        canonicalize(k);
        EXPECT_LT(frobenius_distance(u, kak_reconstruct(k)), 1e-6);
        EXPECT_EQ(cnot_cost_coords(k.a, k.b, k.c), 1);
    }
}

TEST(EdgeCases, RzAnglePeriodicity)
{
    // rz(theta + 4pi) == rz(theta) exactly; 2pi differs by global phase
    // only, which synthesis treats as equal.
    QuantumCircuit a(1), b(1);
    a.rz(0.5, 0);
    b.rz(0.5 + 4.0 * M_PI, 0);
    EXPECT_TRUE(circuits_equivalent(a, b));
}

TEST(EdgeCases, NoiseModelZeroTrialGuard)
{
    Backend dev = linear_backend(3);
    NoiseModel nm = NoiseModel::from_backend(dev);
    QuantumCircuit qc(3);
    qc.h(0);
    SuccessRate sr = monte_carlo_success(qc, nm, {0, 1, 2}, 0, 1);
    EXPECT_EQ(sr.trials, 1);
}

TEST(EdgeCases, SchedulerHandlesEmptyCircuit)
{
    Backend dev = linear_backend(2);
    QuantumCircuit qc(2);
    Schedule s = schedule_asap(qc, dev);
    EXPECT_DOUBLE_EQ(s.total_ns, 0.0);
    EXPECT_TRUE(s.gates.empty());
}

TEST(EdgeCases, CalibrationRejectsUnknownEdge)
{
    Backend dev = linear_backend(4);
    EXPECT_THROW(dev.calibration.cx_error(0, 3), std::out_of_range);
}

TEST(EdgeCases, MctNoControlsIsX)
{
    auto gates = decompose_mcx({}, 2, 4);
    ASSERT_EQ(gates.size(), 1u);
    EXPECT_EQ(gates[0].kind, OpKind::kX);
}

} // namespace
} // namespace nassc
