// Unit tests for the small complex-matrix layer and the 1-qubit
// decompositions.

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "nassc/math/complex_mat.h"
#include "nassc/math/eig.h"
#include "nassc/math/su2.h"

namespace nassc {
namespace {

Mat2
random_su2(std::mt19937 &rng)
{
    std::uniform_real_distribution<double> ang(0.0, 2.0 * M_PI);
    Mat2 m = mul(rz_gate(ang(rng)), mul(ry_gate(ang(rng)), rz_gate(ang(rng))));
    return m;
}

TEST(Mat2, IdentityAndMul)
{
    Mat2 i = Mat2::identity();
    Mat2 x = pauli_x();
    EXPECT_TRUE(approx_equal(mul(i, x), x));
    EXPECT_TRUE(approx_equal(mul(x, x), i));
}

TEST(Mat2, PauliAlgebra)
{
    // XY = iZ, YZ = iX, ZX = iY.
    Cx i(0.0, 1.0);
    EXPECT_TRUE(approx_equal(mul(pauli_x(), pauli_y()),
                             scale(pauli_z(), i)));
    EXPECT_TRUE(approx_equal(mul(pauli_y(), pauli_z()),
                             scale(pauli_x(), i)));
    EXPECT_TRUE(approx_equal(mul(pauli_z(), pauli_x()),
                             scale(pauli_y(), i)));
}

TEST(Mat2, SxSquaredIsX)
{
    EXPECT_TRUE(equal_up_to_phase(mul(sx_gate(), sx_gate()), pauli_x()));
    EXPECT_FALSE(equal_up_to_phase(sx_gate(), pauli_x()));
}

TEST(Mat2, HadamardConjugatesXZ)
{
    Mat2 h = hadamard();
    EXPECT_TRUE(approx_equal(mul(h, mul(pauli_x(), h)), pauli_z()));
    EXPECT_TRUE(approx_equal(mul(h, mul(pauli_z(), h)), pauli_x()));
}

TEST(Mat2, SConjugatesXToY)
{
    Mat2 s = s_gate();
    EXPECT_TRUE(approx_equal(mul(s, mul(pauli_x(), adjoint(s))), pauli_y()));
}

TEST(Mat2, RotationsAreUnitary)
{
    for (double t : {0.0, 0.3, 1.0, M_PI, 5.0}) {
        EXPECT_TRUE(is_unitary(rx_gate(t)));
        EXPECT_TRUE(is_unitary(ry_gate(t)));
        EXPECT_TRUE(is_unitary(rz_gate(t)));
        EXPECT_TRUE(is_unitary(u3_gate(t, 0.4, 1.1)));
    }
}

TEST(Mat2, RzIsPhaseUpToGlobalPhase)
{
    EXPECT_TRUE(equal_up_to_phase(rz_gate(0.7), phase_gate(0.7)));
}

TEST(Mat2, DetAndTrace)
{
    EXPECT_NEAR(std::abs(det(hadamard()) - Cx(-1.0, 0.0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(trace(pauli_x())), 0.0, 1e-12);
}

TEST(Mat4, TensorConvention)
{
    // tensor2(X, I) must act on bit 0: it maps |b1 b0> -> |b1, !b0>,
    // i.e. swaps indices 0<->1 and 2<->3.
    Mat4 xi = tensor2(pauli_x(), pauli_i());
    EXPECT_EQ(xi(1, 0), Cx(1.0, 0.0));
    EXPECT_EQ(xi(0, 1), Cx(1.0, 0.0));
    EXPECT_EQ(xi(3, 2), Cx(1.0, 0.0));
    EXPECT_EQ(xi(2, 3), Cx(1.0, 0.0));
    EXPECT_EQ(xi(0, 0), Cx(0.0, 0.0));

    Mat4 ix = tensor2(pauli_i(), pauli_x());
    EXPECT_EQ(ix(2, 0), Cx(1.0, 0.0));
    EXPECT_EQ(ix(3, 1), Cx(1.0, 0.0));
}

TEST(Mat4, CxActsOnBasisStates)
{
    // Control = bit 0: |c=1, t=0> (index 1) -> |c=1, t=1> (index 3).
    Mat4 cx = cx_mat();
    EXPECT_EQ(cx(3, 1), Cx(1.0, 0.0));
    EXPECT_EQ(cx(1, 3), Cx(1.0, 0.0));
    EXPECT_EQ(cx(0, 0), Cx(1.0, 0.0));
    EXPECT_EQ(cx(2, 2), Cx(1.0, 0.0));
    EXPECT_TRUE(is_unitary(cx));
}

TEST(Mat4, SwapEqualsThreeCx)
{
    Mat4 prod = mul(cx_mat(), mul(cx_rev_mat(), cx_mat()));
    EXPECT_TRUE(approx_equal(prod, swap_mat()));
    Mat4 prod2 = mul(cx_rev_mat(), mul(cx_mat(), cx_rev_mat()));
    EXPECT_TRUE(approx_equal(prod2, swap_mat()));
}

TEST(Mat4, CzSymmetricUnderConjugationBySwap)
{
    Mat4 sw = swap_mat();
    EXPECT_TRUE(approx_equal(mul(sw, mul(cz_mat(), sw)), cz_mat()));
}

TEST(Mat4, DetOfKnownMatrices)
{
    EXPECT_NEAR(std::abs(det(cx_mat()) - Cx(-1.0, 0.0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(det(swap_mat()) - Cx(-1.0, 0.0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(det(Mat4::identity()) - Cx(1.0, 0.0)), 0.0, 1e-12);
}

TEST(Mat4, TensorOfUnitariesIsUnitary)
{
    std::mt19937 rng(7);
    for (int i = 0; i < 20; ++i) {
        Mat4 m = tensor2(random_su2(rng), random_su2(rng));
        EXPECT_TRUE(is_unitary(m));
        EXPECT_NEAR(std::abs(det(m) - Cx(1.0, 0.0)), 0.0, 1e-9);
    }
}

TEST(MatN, IdentityMul)
{
    MatN a = MatN::identity(8);
    EXPECT_TRUE(is_unitary(a));
    EXPECT_NEAR(frobenius_distance(mul(a, a), a), 0.0, 1e-12);
}

TEST(Eig, DiagonalizesKnownMatrix)
{
    // A = diag(1, 2, 3, 4) conjugated by a rotation in the (0,1) plane.
    RMat4 a{};
    a[0] = 1.5;
    a[1] = 0.5;
    a[4] = 0.5;
    a[5] = 1.5;
    a[10] = 3.0;
    a[15] = 4.0;
    RMat4 v;
    std::array<double, 4> w;
    jacobi_eig_sym4(a, v, w);
    EXPECT_NEAR(w[0], 1.0, 1e-10);
    EXPECT_NEAR(w[1], 2.0, 1e-10);
    EXPECT_NEAR(w[2], 3.0, 1e-10);
    EXPECT_NEAR(w[3], 4.0, 1e-10);
}

TEST(Eig, ReconstructsRandomSymmetric)
{
    std::mt19937 rng(3);
    std::uniform_real_distribution<double> d(-1.0, 1.0);
    for (int trial = 0; trial < 50; ++trial) {
        RMat4 a{};
        for (int i = 0; i < 4; ++i)
            for (int j = i; j < 4; ++j) {
                double x = d(rng);
                a[4 * i + j] = x;
                a[4 * j + i] = x;
            }
        RMat4 v;
        std::array<double, 4> w;
        jacobi_eig_sym4(a, v, w);
        // Check A V = V diag(w).
        for (int col = 0; col < 4; ++col) {
            for (int r = 0; r < 4; ++r) {
                double av = 0.0;
                for (int k = 0; k < 4; ++k)
                    av += a[4 * r + k] * v[4 * k + col];
                EXPECT_NEAR(av, w[col] * v[4 * r + col], 1e-9);
            }
        }
        // Eigenvalues sorted.
        EXPECT_LE(w[0], w[1]);
        EXPECT_LE(w[1], w[2]);
        EXPECT_LE(w[2], w[3]);
    }
}

TEST(Eig, Det4)
{
    RMat4 i{};
    for (int k = 0; k < 4; ++k)
        i[5 * k] = 1.0;
    EXPECT_NEAR(det4(i), 1.0, 1e-12);
    i[0] = 2.0;
    EXPECT_NEAR(det4(i), 2.0, 1e-12);
}

TEST(EulerZyz, RoundTripRandom)
{
    std::mt19937 rng(11);
    std::uniform_real_distribution<double> d(-1.0, 1.0);
    for (int trial = 0; trial < 100; ++trial) {
        // Random unitary with random global phase.
        Mat2 u = random_su2(rng);
        u = scale(u, std::exp(Cx(0.0, d(rng) * 3.0)));
        EulerZyz e = euler_zyz(u);
        Mat2 r = from_euler_zyz(e);
        EXPECT_LT(frobenius_distance(u, r), 1e-9) << to_string(u);
    }
}

TEST(EulerZyz, HandlesDiagonal)
{
    EulerZyz e = euler_zyz(rz_gate(0.8));
    EXPECT_NEAR(e.theta, 0.0, 1e-12);
    Mat2 r = from_euler_zyz(e);
    EXPECT_LT(frobenius_distance(rz_gate(0.8), r), 1e-10);
}

TEST(EulerZyz, HandlesAntiDiagonal)
{
    EulerZyz e = euler_zyz(pauli_x());
    EXPECT_NEAR(e.theta, M_PI, 1e-12);
    Mat2 r = from_euler_zyz(e);
    EXPECT_LT(frobenius_distance(pauli_x(), r), 1e-10);
}

TEST(EulerZyz, IdentityGivesZeroAngles)
{
    EulerZyz e = euler_zyz(Mat2::identity());
    EXPECT_NEAR(e.theta, 0.0, 1e-12);
    EXPECT_NEAR(std::fmod(std::abs(e.phi + e.lam), 2.0 * M_PI), 0.0, 1e-9);
}

TEST(DistanceFromIdentity, Basics)
{
    EXPECT_NEAR(distance_from_identity(Mat2::identity()), 0.0, 1e-12);
    EXPECT_NEAR(distance_from_identity(scale(Mat2::identity(),
                                             std::exp(Cx(0.0, 1.3)))),
                0.0, 1e-12);
    EXPECT_GT(distance_from_identity(pauli_x()), 0.5);
}

} // namespace
} // namespace nassc
