// Tests for layout, the SABRE router, and the NASSC optimization-aware
// routing extensions.

#include <random>

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/ir/dag.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/passes/decompose_swaps.h"
#include "nassc/route/nassc_router.h"
#include "nassc/route/sabre.h"
#include "nassc/sim/unitary.h"
#include "nassc/topo/backends.h"

namespace nassc {
namespace {

bool
respects_coupling(const QuantumCircuit &qc, const CouplingMap &cm)
{
    for (const Gate &g : qc.gates())
        if (g.num_qubits() == 2 && is_unitary_op(g.kind) &&
            !cm.connected(g.qubits[0], g.qubits[1]))
            return false;
    return true;
}

// ---- Layout -----------------------------------------------------------------

TEST(Layout, TrivialMapsIdentity)
{
    Layout l(3, 5);
    EXPECT_EQ(l.phys_of(2), 2);
    EXPECT_EQ(l.log_of(2), 2);
    EXPECT_EQ(l.log_of(4), -1);
}

TEST(Layout, SwapMovesLogicals)
{
    Layout l(2, 3);
    l.swap_physical(0, 2); // logical 0 moves to physical 2
    EXPECT_EQ(l.phys_of(0), 2);
    EXPECT_EQ(l.log_of(2), 0);
    EXPECT_EQ(l.log_of(0), -1);
    l.swap_physical(2, 1); // logical 0 -> physical 1; logical 1 -> 2
    EXPECT_EQ(l.phys_of(0), 1);
    EXPECT_EQ(l.phys_of(1), 2);
}

TEST(Layout, RandomIsInjective)
{
    std::mt19937 rng(9);
    for (int t = 0; t < 20; ++t) {
        Layout l = Layout::random(5, 9, rng);
        std::vector<bool> used(9, false);
        for (int i = 0; i < 5; ++i) {
            int p = l.phys_of(i);
            EXPECT_FALSE(used[p]);
            used[p] = true;
            EXPECT_EQ(l.log_of(p), i);
        }
    }
}

TEST(Layout, FromL2pRejectsDuplicates)
{
    EXPECT_THROW(Layout::from_l2p({0, 0}, 3), std::invalid_argument);
    EXPECT_THROW(Layout::from_l2p({0, 7}, 3), std::out_of_range);
}

// ---- SABRE routing ----------------------------------------------------------

class RouteBackend : public ::testing::TestWithParam<int>
{
  protected:
    Backend
    backend() const
    {
        switch (GetParam()) {
          case 0: return linear_backend(6);
          case 1: return grid_backend(2, 3);
          default: return montreal_backend();
        }
    }
};

TEST_P(RouteBackend, AllGatesRoutedAndCoupled)
{
    Backend dev = backend();
    QuantumCircuit logical = decompose_to_2q(qft(5));
    RoutingOptions opts;
    Layout init(logical.num_qubits(), dev.coupling.num_qubits());
    RoutingResult res = route_circuit(logical, dev.coupling,
                                      hop_distance(dev.coupling), init, opts);
    EXPECT_TRUE(respects_coupling(res.circuit, dev.coupling));
    // Every input gate must appear (swaps extra).
    EXPECT_EQ(res.circuit.size() - res.circuit.count(OpKind::kSwap),
              logical.size());
    EXPECT_EQ(res.stats.num_swaps, res.circuit.count(OpKind::kSwap));
}

INSTANTIATE_TEST_SUITE_P(Topologies, RouteBackend,
                         ::testing::Values(0, 1, 2));

TEST(Route, NoSwapsWhenAlreadyCompatible)
{
    Backend dev = linear_backend(4);
    QuantumCircuit logical(4);
    logical.cx(0, 1);
    logical.cx(1, 2);
    logical.cx(2, 3);
    RoutingOptions opts;
    Layout init(4, 4);
    RoutingResult res = route_circuit(logical, dev.coupling,
                                      hop_distance(dev.coupling), init, opts);
    EXPECT_EQ(res.stats.num_swaps, 0);
    EXPECT_EQ(res.circuit.size(), 3u);
}

TEST(Route, FullyConnectedNeverSwaps)
{
    Backend dev = fully_connected_backend(8);
    QuantumCircuit logical = decompose_to_2q(grover(6));
    RoutingOptions opts;
    Layout init(6, 8);
    RoutingResult res = route_circuit(logical, dev.coupling,
                                      hop_distance(dev.coupling), init, opts);
    EXPECT_EQ(res.stats.num_swaps, 0);
}

TEST(Route, EquivalenceUnderLayout)
{
    Backend dev = linear_backend(5);
    QuantumCircuit logical = decompose_to_2q(cuccaro_adder(1)); // 4 qubits
    for (unsigned seed = 0; seed < 4; ++seed) {
        RoutingOptions opts;
        opts.seed = seed;
        Layout init = sabre_initial_layout(logical, dev.coupling,
                                           hop_distance(dev.coupling), opts);
        RoutingResult res =
            route_circuit(logical, dev.coupling, hop_distance(dev.coupling),
                          init, opts);
        QuantumCircuit phys = res.circuit;
        decompose_swaps(phys, false);
        EXPECT_TRUE(equivalent_with_layout(logical, phys, res.initial_l2p,
                                           res.final_l2p))
            << seed;
    }
}

TEST(Route, HandlesMeasureAndBarrier)
{
    Backend dev = linear_backend(4);
    QuantumCircuit logical(3);
    logical.h(0);
    logical.cx(0, 2);
    logical.barrier();
    logical.cx(2, 0);
    logical.measure_all();
    RoutingOptions opts;
    Layout init(3, 4);
    RoutingResult res = route_circuit(logical, dev.coupling,
                                      hop_distance(dev.coupling), init, opts);
    EXPECT_EQ(res.circuit.count(OpKind::kMeasure), 3);
    EXPECT_EQ(res.circuit.count(OpKind::kBarrier), 1);
    EXPECT_TRUE(respects_coupling(res.circuit, dev.coupling));
}

TEST(Route, RejectsWideGates)
{
    Backend dev = linear_backend(4);
    QuantumCircuit logical(3);
    logical.ccx(0, 1, 2);
    RoutingOptions opts;
    Layout init(3, 4);
    EXPECT_THROW(route_circuit(logical, dev.coupling,
                               hop_distance(dev.coupling), init, opts),
                 std::invalid_argument);
}

TEST(Route, LookaheadReducesSwapsOnAverage)
{
    // With lookahead disabled (|E| = 0 weight), SABRE typically needs at
    // least as many swaps across seeds.
    Backend dev = linear_backend(8);
    QuantumCircuit logical = decompose_to_2q(qft(8));
    long with = 0, without = 0;
    for (unsigned seed = 0; seed < 5; ++seed) {
        RoutingOptions a;
        a.seed = seed;
        RoutingOptions b;
        b.seed = seed;
        b.extended_weight = 0.0;
        Layout ia = sabre_initial_layout(logical, dev.coupling,
                                         hop_distance(dev.coupling), a);
        with += route_circuit(logical, dev.coupling,
                              hop_distance(dev.coupling), ia, a)
                    .stats.num_swaps;
        without += route_circuit(logical, dev.coupling,
                                 hop_distance(dev.coupling), ia, b)
                       .stats.num_swaps;
    }
    EXPECT_LE(with, without + 3);
}

TEST(Route, SabreLayoutBeatsWorstRandom)
{
    // Reverse-traversal refinement should not be drastically worse than a
    // raw random layout.
    Backend dev = grid_backend(3, 3);
    QuantumCircuit logical = decompose_to_2q(grover(6));
    RoutingOptions opts;
    opts.seed = 42;
    std::mt19937 rng(99);
    Layout refined = sabre_initial_layout(logical, dev.coupling,
                                          hop_distance(dev.coupling), opts);
    Layout raw = Layout::random(6, 9, rng);
    int s_ref = route_circuit(logical, dev.coupling,
                              hop_distance(dev.coupling), refined, opts)
                    .stats.num_swaps;
    int s_raw = route_circuit(logical, dev.coupling,
                              hop_distance(dev.coupling), raw, opts)
                    .stats.num_swaps;
    EXPECT_LE(s_ref, s_raw + 5);
}

// ---- NASSC-specific ---------------------------------------------------------

TEST(Nassc, FlagsAndStatsPopulated)
{
    Backend dev = linear_backend(10);
    QuantumCircuit logical = decompose_to_2q(qft(10));
    RoutingOptions opts;
    opts.algorithm = RoutingAlgorithm::kNassc;
    Layout init = sabre_initial_layout(logical, dev.coupling,
                                       hop_distance(dev.coupling), opts);
    RoutingResult res = route_circuit(logical, dev.coupling,
                                      hop_distance(dev.coupling), init, opts);
    EXPECT_GT(res.stats.num_swaps, 0);
    // QFT has heavy CP structure: at least one optimization must fire.
    EXPECT_GT(res.stats.c2q_hits + res.stats.commute1_hits +
                  res.stats.commute2_hits,
              0);
}

TEST(Nassc, DisabledOptimizationsMatchSabreSwapCount)
{
    // With all b_k = 0, NASSC's cost function degenerates to SABRE's.
    Backend dev = grid_backend(3, 3);
    QuantumCircuit logical = decompose_to_2q(qft(7));
    RoutingOptions sabre;
    RoutingOptions nassc_off;
    nassc_off.algorithm = RoutingAlgorithm::kNassc;
    nassc_off.enable_c2q = false;
    nassc_off.enable_commute1 = false;
    nassc_off.enable_commute2 = false;
    Layout init = sabre_initial_layout(logical, dev.coupling,
                                       hop_distance(dev.coupling), sabre);
    RoutingResult rs = route_circuit(logical, dev.coupling,
                                     hop_distance(dev.coupling), init, sabre);
    RoutingResult rn = route_circuit(
        logical, dev.coupling, hop_distance(dev.coupling), init, nassc_off);
    EXPECT_EQ(rs.stats.num_swaps, rn.stats.num_swaps);
    EXPECT_EQ(rn.stats.flagged_swaps, 0);
}

TEST(Nassc, TrackerC2qDetectsRichBlock)
{
    RoutingOptions opts;
    opts.algorithm = RoutingAlgorithm::kNassc;
    OptAwareTracker tracker(4, opts);
    // Build a 3-CNOT-rich block on wires (0,1): a SWAP there is free.
    tracker.on_gate(Gate::two_q(OpKind::kCX, 0, 1), 0);
    tracker.on_gate(Gate::one_q(OpKind::kRY, 0, 0.3), 1);
    tracker.on_gate(Gate::two_q(OpKind::kCX, 1, 0), 2);
    tracker.on_gate(Gate::one_q(OpKind::kRZ, 1, 0.9), 3);
    tracker.on_gate(Gate::two_q(OpKind::kCX, 0, 1), 4);
    SwapReduction red = tracker.evaluate_swap(0, 1);
    EXPECT_EQ(red.c2q, 3);
    // No block on (2,3): no reduction there.
    SwapReduction none = tracker.evaluate_swap(2, 3);
    EXPECT_EQ(none.c2q, 0);
    EXPECT_FALSE(none.commute1);
}

TEST(Nassc, TrackerC2qSingleCx)
{
    RoutingOptions opts;
    opts.algorithm = RoutingAlgorithm::kNassc;
    opts.enable_commute1 = false; // isolate C2q
    OptAwareTracker tracker(2, opts);
    tracker.on_gate(Gate::two_q(OpKind::kCX, 0, 1), 0);
    SwapReduction red = tracker.evaluate_swap(0, 1);
    // SWAP * CX needs 2 CNOTs: C2q = 3 + 1 - 2 = 2.
    EXPECT_EQ(red.c2q, 2);
}

TEST(Nassc, TrackerCommute1FindsCancellableCnot)
{
    RoutingOptions opts;
    opts.algorithm = RoutingAlgorithm::kNassc;
    opts.enable_c2q = false;
    OptAwareTracker tracker(3, opts);
    tracker.on_gate(Gate::two_q(OpKind::kCX, 1, 0), 0);
    // A commuting CX in between (shared target with the first).
    tracker.on_gate(Gate::two_q(OpKind::kCX, 2, 0), 1);
    SwapReduction red = tracker.evaluate_swap(0, 1);
    EXPECT_TRUE(red.commute1);
    // Orientation: the found cx has control 1 = second operand of (0,1).
    EXPECT_EQ(red.orient, SwapOrient::kSecond);
}

TEST(Nassc, TrackerCommute1BlockedByH)
{
    RoutingOptions opts;
    opts.algorithm = RoutingAlgorithm::kNassc;
    OptAwareTracker tracker(3, opts);
    tracker.on_gate(Gate::two_q(OpKind::kCX, 1, 0), 0);
    tracker.on_gate(Gate::one_q(OpKind::kH, 0), 1);
    // The H becomes interior once another 2q gate lands on wire 0.
    tracker.on_gate(Gate::two_q(OpKind::kCX, 2, 0), 2);
    SwapReduction red = tracker.evaluate_swap(0, 1);
    EXPECT_FALSE(red.commute1);
}

TEST(Nassc, TrackerCommute2Sandwich)
{
    RoutingOptions opts;
    opts.algorithm = RoutingAlgorithm::kNassc;
    opts.enable_c2q = false;
    opts.enable_commute1 = false;
    OptAwareTracker tracker(3, opts);
    Gate sw = Gate::two_q(OpKind::kSwap, 0, 1);
    tracker.on_gate(sw, 0);
    // Commuting middle: cx sharing structure that commutes with cx(0,1).
    tracker.on_gate(Gate::two_q(OpKind::kCX, 0, 2), 1);
    SwapReduction red = tracker.evaluate_swap(0, 1);
    EXPECT_TRUE(red.commute2);
    EXPECT_EQ(red.partner_swap_out_idx, 0);
}

TEST(Nassc, EndToEndFlaggedSwapsDecomposeCorrectly)
{
    Backend dev = linear_backend(5);
    QuantumCircuit logical = decompose_to_2q(qft(5));
    RoutingOptions opts;
    opts.algorithm = RoutingAlgorithm::kNassc;
    Layout init = sabre_initial_layout(logical, dev.coupling,
                                       hop_distance(dev.coupling), opts);
    RoutingResult res = route_circuit(logical, dev.coupling,
                                      hop_distance(dev.coupling), init, opts);
    QuantumCircuit phys = res.circuit;
    decompose_swaps(phys, true);
    EXPECT_TRUE(equivalent_with_layout(logical, phys, res.initial_l2p,
                                       res.final_l2p));
}

TEST(Nassc, MovedOneQubitGatesPreserveSemantics)
{
    // Dense 1q + 2q mix maximizes move-through opportunities.
    std::mt19937 rng(31);
    std::uniform_int_distribution<int> qd(0, 4), kd(0, 5);
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    Backend dev = linear_backend(5);
    for (int trial = 0; trial < 5; ++trial) {
        QuantumCircuit logical(5);
        for (int i = 0; i < 60; ++i) {
            if (kd(rng) < 3) {
                logical.rz(ang(rng), qd(rng));
            } else {
                int a = qd(rng), b = qd(rng);
                if (a == b)
                    b = (b + 1) % 5;
                logical.cx(a, b);
            }
        }
        RoutingOptions opts;
        opts.algorithm = RoutingAlgorithm::kNassc;
        opts.seed = trial;
        Layout init = sabre_initial_layout(
            logical, dev.coupling, hop_distance(dev.coupling), opts);
        RoutingResult res =
            route_circuit(logical, dev.coupling, hop_distance(dev.coupling),
                          init, opts);
        QuantumCircuit phys = res.circuit;
        decompose_swaps(phys, true);
        EXPECT_TRUE(equivalent_with_layout(logical, phys, res.initial_l2p,
                                           res.final_l2p))
            << trial;
    }
}

} // namespace
} // namespace nassc
