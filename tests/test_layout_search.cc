// Tests for the perfect-layout (subgraph isomorphism) search and the
// closed-form fidelity estimator.

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/route/perfect_layout.h"
#include "nassc/route/sabre.h"
#include "nassc/sim/fidelity.h"
#include "nassc/topo/backends.h"
#include "nassc/transpile/transpile.h"

namespace nassc {
namespace {

TEST(InteractionEdges, DeduplicatesAndOrders)
{
    QuantumCircuit qc(3);
    qc.cx(0, 1);
    qc.cx(1, 0);
    qc.cz(2, 1);
    auto edges = interaction_edges(qc);
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0], std::make_pair(0, 1));
    EXPECT_EQ(edges[1], std::make_pair(1, 2));
}

TEST(PerfectLayout, ChainEmbedsInLine)
{
    Backend dev = linear_backend(6);
    QuantumCircuit qc = ghz(5); // chain interactions 0-1-2-3-4
    auto layout = find_perfect_layout(qc, dev.coupling);
    ASSERT_TRUE(layout.has_value());
    for (auto [a, b] : interaction_edges(qc))
        EXPECT_TRUE(dev.coupling.connected(layout->phys_of(a),
                                           layout->phys_of(b)));
}

TEST(PerfectLayout, ChainEmbedsInMontreal)
{
    Backend dev = montreal_backend();
    QuantumCircuit qc = ghz(10);
    auto layout = find_perfect_layout(qc, dev.coupling);
    ASSERT_TRUE(layout.has_value());
    for (auto [a, b] : interaction_edges(qc))
        EXPECT_TRUE(dev.coupling.connected(layout->phys_of(a),
                                           layout->phys_of(b)));
}

TEST(PerfectLayout, StarRejectsOnLine)
{
    // A degree-4 hub cannot embed into a line (max degree 2).
    Backend dev = linear_backend(8);
    QuantumCircuit qc(5);
    for (int i = 1; i < 5; ++i)
        qc.cx(0, i);
    EXPECT_FALSE(find_perfect_layout(qc, dev.coupling).has_value());
}

TEST(PerfectLayout, StarEmbedsInGrid)
{
    // Degree-4 hub fits a grid center.
    Backend dev = grid_backend(3, 3);
    QuantumCircuit qc(5);
    for (int i = 1; i < 5; ++i)
        qc.cx(0, i);
    auto layout = find_perfect_layout(qc, dev.coupling);
    ASSERT_TRUE(layout.has_value());
    EXPECT_EQ(layout->phys_of(0), 4); // only the center has degree 4
}

TEST(PerfectLayout, FullGraphRejectsQuickly)
{
    // K5 interaction graph cannot embed into any sparse topology.
    Backend dev = montreal_backend();
    QuantumCircuit qc = vqe_full(5, 1, 1);
    EXPECT_FALSE(find_perfect_layout(qc, dev.coupling).has_value());
}

TEST(PerfectLayout, PerfectLayoutNeedsNoSwaps)
{
    Backend dev = montreal_backend();
    QuantumCircuit qc = ghz(8);
    auto layout = find_perfect_layout(qc, dev.coupling);
    ASSERT_TRUE(layout.has_value());
    RoutingOptions opts;
    RoutingResult res = route_circuit(
        qc, dev.coupling, hop_distance(dev.coupling), *layout, opts);
    EXPECT_EQ(res.stats.num_swaps, 0);
}

TEST(Fidelity, EmptyCircuitIsPerfect)
{
    Backend dev = linear_backend(3);
    QuantumCircuit qc(3);
    EXPECT_DOUBLE_EQ(estimate_success_probability(qc, dev), 1.0);
}

TEST(Fidelity, RzIsFree)
{
    Backend dev = linear_backend(3);
    QuantumCircuit qc(3);
    qc.rz(0.3, 0);
    qc.t(1);
    EXPECT_DOUBLE_EQ(estimate_success_probability(qc, dev), 1.0);
}

TEST(Fidelity, MonotoneInCxCount)
{
    Backend dev = linear_backend(3);
    QuantumCircuit one(3);
    one.cx(0, 1);
    QuantumCircuit three = one;
    three.cx(0, 1);
    three.cx(0, 1);
    EXPECT_GT(estimate_success_probability(one, dev),
              estimate_success_probability(three, dev));
}

TEST(Fidelity, MatchesProductByHand)
{
    Backend dev = linear_backend(3);
    QuantumCircuit qc(3);
    qc.sx(0);
    qc.cx(0, 1);
    qc.measure(1);
    double expect = (1.0 - dev.calibration.error_1q[0]) *
                    (1.0 - dev.calibration.cx_error(0, 1)) *
                    (1.0 - dev.calibration.readout_error[1]);
    EXPECT_NEAR(estimate_success_probability(qc, dev), expect, 1e-12);
}

TEST(Fidelity, NasscRoutingNotWorseOnAggregate)
{
    Backend dev = montreal_backend();
    double sabre_p = 0.0, nassc_p = 0.0;
    for (auto &bc : fig11_benchmarks()) {
        TranspileOptions so;
        so.router = RoutingAlgorithm::kSabre;
        TranspileOptions no;
        no.router = RoutingAlgorithm::kNassc;
        sabre_p +=
            estimate_success_probability(transpile(bc.circuit, dev, so).circuit,
                                         dev);
        nassc_p +=
            estimate_success_probability(transpile(bc.circuit, dev, no).circuit,
                                         dev);
    }
    EXPECT_GT(nassc_p, sabre_p * 0.9);
}

} // namespace
} // namespace nassc
