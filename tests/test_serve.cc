// End-to-end tests for the nasscd serving stack:
//
//  (a) protocol codec — frame payloads round-trip and malformed input
//      fails loudly (serve/protocol.h);
//  (b) the daemon contract — concurrent socket clients receive routed
//      QASM BIT-IDENTICAL to an in-process transpile() of the same
//      circuit, and duplicated requests coalesce into one transpile;
//  (c) single-process hardening on TranspileService — the byte-bounded
//      result cache never exceeds its budget, TTL expiry and backend
//      rotation invalidate eagerly (split eviction counters), and
//      try_cancel() abandons queued requests cooperatively;
//  (d) graceful shutdown — stop() drains received requests to written
//      responses before the daemon exits.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/ir/qasm.h"
#include "nassc/serve/client.h"
#include "nassc/serve/protocol.h"
#include "nassc/serve/server.h"
#include "nassc/service/errors.h"
#include "nassc/service/failpoint.h"
#include "nassc/transpile/context.h"

namespace nassc {
namespace {

/** Spin until `pred` or ~10 s; returns whether pred came true. */
template <typename Pred>
bool
spin_until(Pred pred)
{
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::yield();
    }
    return true;
}

/** A short unix-socket path unique to this process + suffix (sun_path
 *  is only ~107 chars, so the build dir is not usable). */
std::string
socket_path(const std::string &suffix)
{
    return "/tmp/nassc_serve_" + std::to_string(::getpid()) + "_" + suffix +
           ".sock";
}

std::shared_ptr<const Backend>
shared_montreal()
{
    return std::make_shared<const Backend>(montreal_backend());
}

// ------------------------------------------------------------ protocol

TEST(ServeProtocol, RequestRoundTrip)
{
    ServeRequest req;
    req.verb = "transpile";
    req.backend = "ibmq_montreal";
    req.options = {{"router", "sabre"}, {"seed", "3"}};
    req.qasm = "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n";
    const ServeRequest back = parse_request(encode_request(req));
    EXPECT_EQ(back.verb, req.verb);
    EXPECT_EQ(back.backend, req.backend);
    EXPECT_EQ(back.options, req.options);
    EXPECT_EQ(back.qasm, req.qasm);

    ServeRequest ping;
    ping.verb = "ping";
    EXPECT_EQ(parse_request(encode_request(ping)).verb, "ping");
}

TEST(ServeProtocol, ResponseRoundTrip)
{
    ServeResponse resp;
    resp.status = "ok";
    resp.source = "cache_hit";
    resp.stats = {{"requests", "7"}, {"cache_bytes", "123"}};
    resp.qasm = "OPENQASM 2.0;\nqreg q[1];\nx q[0];\n";
    const ServeResponse back = parse_response(encode_response(resp));
    EXPECT_EQ(back.status, resp.status);
    EXPECT_EQ(back.source, resp.source);
    EXPECT_EQ(back.stats, resp.stats);
    EXPECT_EQ(back.qasm, resp.qasm);

    ServeResponse err;
    err.status = "error";
    err.error = "unknown backend 'x'";
    const ServeResponse eback = parse_response(encode_response(err));
    EXPECT_EQ(eback.status, "error");
    EXPECT_EQ(eback.error, err.error);
    EXPECT_TRUE(eback.qasm.empty());
}

TEST(ServeProtocol, MalformedPayloadsThrow)
{
    EXPECT_THROW(parse_request("launch\n"), std::runtime_error);
    EXPECT_THROW(parse_request("transpile\nbogus line\nqasm\n"),
                 std::runtime_error);
    EXPECT_THROW(parse_request("transpile\nbackend x\n"), // no qasm section
                 std::runtime_error);
    EXPECT_THROW(parse_response("status ok\nwat\n"), std::runtime_error);
}

TEST(ServeProtocol, OptionParsingIsStrictAndComplete)
{
    const TranspileOptions opts = parse_transpile_options(
        {{"router", "sabre"},
         {"seed", "11"},
         {"noise_aware", "1"},
         {"layout_trials", "4"},
         {"extended_weight", "0.25"},
         {"priority", "7"},
         {"cache_ttl_seconds", "2.5"}});
    EXPECT_EQ(opts.router, RoutingAlgorithm::kSabre);
    EXPECT_EQ(opts.seed, 11u);
    EXPECT_TRUE(opts.noise_aware);
    EXPECT_EQ(opts.layout_trials, 4);
    EXPECT_DOUBLE_EQ(opts.extended_weight, 0.25);
    EXPECT_EQ(opts.priority, 7);
    EXPECT_DOUBLE_EQ(opts.cache_ttl_seconds, 2.5);

    EXPECT_THROW(parse_transpile_options({{"routr", "sabre"}}),
                 std::runtime_error);
    EXPECT_THROW(parse_transpile_options({{"seed", "banana"}}),
                 std::runtime_error);
    EXPECT_THROW(parse_transpile_options({{"router", "magic"}}),
                 std::runtime_error);
    EXPECT_EQ(parse_transpile_options({{"deadline_ms", "250"}}).deadline_ms,
              250);
    EXPECT_THROW(parse_transpile_options({{"deadline_ms", "-1"}}),
                 std::runtime_error);
}

TEST(ServeProtocol, ResponseRoundTripsRetryHintAndDegraded)
{
    ServeResponse resp;
    resp.status = "overloaded";
    resp.error = "queue full";
    resp.retry_after_ms = 75;
    ServeResponse back = parse_response(encode_response(resp));
    EXPECT_EQ(back.status, "overloaded");
    EXPECT_EQ(back.retry_after_ms, 75);

    ServeResponse degraded;
    degraded.status = "ok";
    degraded.qasm = "OPENQASM 2.0;\nqreg q[1];\n";
    degraded.degraded = true;
    degraded.trials_consumed = 2;
    back = parse_response(encode_response(degraded));
    EXPECT_TRUE(back.degraded);
    EXPECT_EQ(back.trials_consumed, 2);

    // Unset, neither line is emitted and the parse defaults hold.
    ServeResponse plain;
    plain.status = "ok";
    const std::string encoded = encode_response(plain);
    EXPECT_EQ(encoded.find("retry-after-ms"), std::string::npos);
    EXPECT_EQ(encoded.find("degraded"), std::string::npos);
    back = parse_response(encoded);
    EXPECT_EQ(back.retry_after_ms, 0);
    EXPECT_FALSE(back.degraded);
    EXPECT_EQ(back.trials_consumed, -1);
}

TEST(ServeProtocol, FrameLengthParsingRejectsEveryMalformedClass)
{
    // The length field is attacker-controlled; each rejection class has
    // its own corpus entry so a laxer future parser fails this test.
    EXPECT_EQ(parse_frame_length("0"), 0u);
    EXPECT_EQ(parse_frame_length("123"), 123u);
    EXPECT_EQ(parse_frame_length("007"), 7u);

    EXPECT_THROW(parse_frame_length(""), std::runtime_error);      // empty
    EXPECT_THROW(parse_frame_length("abc"), std::runtime_error);   // alpha
    EXPECT_THROW(parse_frame_length("+5"), std::runtime_error);    // sign
    EXPECT_THROW(parse_frame_length("-1"), std::runtime_error);    // negative
    EXPECT_THROW(parse_frame_length(" 5"), std::runtime_error);    // space
    EXPECT_THROW(parse_frame_length("1 2"), std::runtime_error);   // embedded
    EXPECT_THROW(parse_frame_length("12x"), std::runtime_error);   // trailing
    EXPECT_THROW(parse_frame_length("0x10"), std::runtime_error);  // hex
    // One digit past SIZE_MAX: must throw, not wrap.
    EXPECT_THROW(parse_frame_length("99999999999999999999999999"),
                 std::runtime_error);
}

/** A connected socketpair whose ends close on scope exit. */
struct SocketPair
{
    int fds[2] = {-1, -1};
    SocketPair()
    {
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
            throw std::runtime_error("socketpair failed");
    }
    ~SocketPair()
    {
        for (int fd : fds)
            if (fd >= 0)
                ::close(fd);
    }
};

TEST(ServeProtocol, MalformedFrameHeadersFailLoudlyOnTheWire)
{
    auto reject = [](const std::string &raw) {
        SocketPair sp;
        ASSERT_EQ(::send(sp.fds[0], raw.data(), raw.size(), 0),
                  static_cast<ssize_t>(raw.size()));
        ::shutdown(sp.fds[0], SHUT_WR);
        std::string payload;
        EXPECT_THROW(read_frame(sp.fds[1], payload), std::runtime_error)
            << "header accepted: " << raw;
    };
    reject("BOGUS/9 5\nhello");        // wrong magic
    reject("NASSC/1 +5\nhello");       // signed length
    reject("NASSC/1 -5\nhello");       // negative length
    reject("NASSC/1 5x\nhello");       // trailing junk
    reject("NASSC/1 \nhello");         // empty length
    reject("NASSC/1 99999999999999999999999999\n"); // overflow
    reject("NASSC/1 5\nhi");           // truncated payload (EOF inside)
}

TEST(ServeProtocol, ShortReadAndEintrFailpointsStillReassemble)
{
    failpoint::disarm_all();
    const std::string payload(300, 'x');
    {
        // Every recv clamped to 1 byte: the reassembly loop must still
        // deliver the payload intact.
        failpoint::ScopedFailpoint shortread("protocol.read.short",
                                             "trigger");
        SocketPair sp;
        write_frame(sp.fds[0], payload);
        std::string got;
        ASSERT_TRUE(read_frame(sp.fds[1], got));
        EXPECT_EQ(got, payload);
        EXPECT_GE(failpoint::hit_count("protocol.read.short"),
                  payload.size());
    }
    failpoint::disarm_all();
    {
        // An EINTR storm: five spurious loop re-entries, then normal
        // progress — the reader must neither error nor lose bytes.
        failpoint::ScopedFailpoint storm("protocol.read.eintr",
                                         "5*trigger");
        SocketPair sp;
        write_frame(sp.fds[0], payload);
        std::string got;
        ASSERT_TRUE(read_frame(sp.fds[1], got));
        EXPECT_EQ(got, payload);
        EXPECT_EQ(failpoint::hit_count("protocol.read.eintr"), 5u);
    }
    failpoint::disarm_all();
}

TEST(ServeProtocol, ShortWriteFailpointStillDeliversTheFrame)
{
    failpoint::disarm_all();
    failpoint::ScopedFailpoint shortwrite("protocol.write.short",
                                          "trigger");
    const std::string payload(200, 'y');
    SocketPair sp;
    write_frame(sp.fds[0], payload); // 1 byte per send()
    std::string got;
    ASSERT_TRUE(read_frame(sp.fds[1], got));
    EXPECT_EQ(got, payload);
    EXPECT_GE(failpoint::hit_count("protocol.write.short"),
              payload.size());
}

TEST(ServeProtocol, MidFrameDisconnectFailsBothEndsCleanly)
{
    failpoint::disarm_all();
    failpoint::ScopedFailpoint drop("protocol.write.disconnect",
                                    "1*trigger");
    const std::string payload(400, 'z'); // half-frame > header line
    SocketPair sp;
    EXPECT_THROW(write_frame(sp.fds[0], payload), std::runtime_error);
    // The reader sees a truncated payload and must FAIL, never hang.
    std::string got;
    EXPECT_THROW(read_frame(sp.fds[1], got), std::runtime_error);
    EXPECT_EQ(failpoint::hit_count("protocol.write.disconnect"), 1u);
}

// ------------------------------------------------------- daemon e2e

TEST(NasscServer, ConcurrentClientsGetBitIdenticalQasmAndDedup)
{
    ServerOptions options;
    options.unix_path = socket_path("e2e");
    NasscServer server(options);
    server.start();

    // Workload: 2 circuits x 2 routers, each submitted by BOTH client
    // threads (duplicates must coalesce or hit).
    struct Item
    {
        std::string qasm;
        std::vector<std::pair<std::string, std::string>> options;
        std::string expected;
    };
    std::vector<Item> items;
    for (const QuantumCircuit &qc : {ghz(8), qft(5)}) {
        for (const char *router : {"nassc", "sabre"}) {
            Item item;
            item.qasm = to_qasm(qc);
            item.options = {{"router", router}, {"seed", "1"}};
            const TranspileResult local =
                TranspileContext::global().transpile(
                    from_qasm(item.qasm), montreal_backend(),
                    parse_transpile_options(item.options));
            item.expected = to_qasm(local.circuit);
            items.push_back(std::move(item));
        }
    }

    const ServiceStats before = server.service().stats();
    std::vector<std::string> errors;
    std::mutex mu;
    std::vector<std::thread> clients;
    for (int t = 0; t < 2; ++t) {
        clients.emplace_back([&] {
            try {
                ServeClient client =
                    ServeClient::connect_unix(options.unix_path);
                for (const Item &item : items) {
                    const ServeResponse resp = client.transpile_qasm(
                        item.qasm, "ibmq_montreal", item.options);
                    if (resp.qasm != item.expected) {
                        std::lock_guard<std::mutex> lk(mu);
                        errors.push_back("daemon QASM differs (source=" +
                                         resp.source + ")");
                    }
                }
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lk(mu);
                errors.push_back(e.what());
            }
        });
    }
    for (std::thread &th : clients)
        th.join();
    for (const std::string &e : errors)
        ADD_FAILURE() << e;

    // Dedup invariant: 8 requests, 4 distinct keys -> exactly 4
    // transpiles; every duplicate was a hit or coalesced.
    const ServiceStats after = server.service().stats();
    EXPECT_EQ(after.requests - before.requests, 8u);
    EXPECT_EQ(after.transpiles_ok - before.transpiles_ok, 4u);
    EXPECT_EQ((after.cache_hits + after.coalesced) -
                  (before.cache_hits + before.coalesced),
              4u);
    EXPECT_EQ(after.transpiles_failed, before.transpiles_failed);

    server.stop();
}

TEST(NasscServer, TcpTransportServesPingStatsAndTranspile)
{
    ServerOptions options;
    options.tcp_port = 0; // ephemeral
    NasscServer server(options);
    server.start();
    ASSERT_GT(server.tcp_port(), 0);

    ServeClient client = ServeClient::connect_tcp("127.0.0.1",
                                                  server.tcp_port());
    EXPECT_TRUE(client.ping());

    const std::string qasm = to_qasm(ghz(5));
    const ServeResponse resp =
        client.transpile_qasm(qasm, "grid_5x5", {{"router", "nassc"}});
    EXPECT_EQ(resp.status, "ok");
    EXPECT_EQ(resp.source, "transpiled");
    const TranspileResult local = TranspileContext::global().transpile(
        from_qasm(qasm), grid_backend(), TranspileOptions{});
    EXPECT_EQ(resp.qasm, to_qasm(local.circuit));

    const auto stats = client.stats();
    EXPECT_GE(stats.at("requests"), 1u);
    EXPECT_EQ(stats.at("transpiles_ok"), 1u);
    // Distance-cache observability rides on the same verb: the one
    // transpile above computed grid_5x5's dense hop matrix (25 qubits
    // is below the sparse threshold, so every row materializes).
    EXPECT_GE(stats.at("distance_entries"), 1u);
    EXPECT_GE(stats.at("distance_computations"), 1u);
    EXPECT_GE(stats.at("distance_rows_computed"), 25u);
    EXPECT_GT(stats.at("distance_row_bytes"), 0u);
    EXPECT_GE(stats.at("distance_row_bytes_peak"),
              stats.at("distance_row_bytes"));
    server.stop();
}

TEST(NasscServer, BadRequestsGetErrorStatusAndConnectionSurvives)
{
    ServerOptions options;
    options.unix_path = socket_path("err");
    NasscServer server(options);
    server.start();
    ServeClient client = ServeClient::connect_unix(options.unix_path);

    ServeRequest req;
    req.verb = "transpile";
    req.backend = "no_such_device";
    req.qasm = to_qasm(ghz(3));
    ServeResponse resp = client.request(req);
    EXPECT_EQ(resp.status, "error");
    EXPECT_NE(resp.error.find("unknown backend"), std::string::npos);

    req.backend = "ibmq_montreal";
    req.options = {{"router", "warp_drive"}};
    resp = client.request(req);
    EXPECT_EQ(resp.status, "error");

    req.options.clear();
    req.qasm = "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n";
    resp = client.request(req);
    EXPECT_EQ(resp.status, "error");

    // The connection survives application errors: a good request after
    // three bad ones still works.
    req.qasm = to_qasm(ghz(3));
    resp = client.request(req);
    EXPECT_EQ(resp.status, "ok");
    server.stop();
}

TEST(NasscServer, StopDrainsReceivedRequestsToResponses)
{
    ServerOptions options;
    options.unix_path = socket_path("drain");
    NasscServer server(options);
    server.start();

    // Client sends one request, then the server is stopped while it is
    // (likely still) transpiling; the response must arrive anyway.
    std::string got_qasm;
    std::string got_status;
    std::thread client_thread([&] {
        try {
            ServeClient client =
                ServeClient::connect_unix(options.unix_path);
            const ServeResponse resp = client.transpile_qasm(
                to_qasm(qft(6)), "ibmq_montreal", {{"router", "nassc"}});
            got_status = resp.status;
            got_qasm = resp.qasm;
        } catch (const std::exception &e) {
            got_status = std::string("exception: ") + e.what();
        }
    });

    // Wait until the daemon has DECODED the frame, then stop: the
    // request is in flight and must drain.
    ASSERT_TRUE(spin_until([&] { return server.requests_seen() >= 1; }));
    server.stop();
    client_thread.join();

    EXPECT_EQ(got_status, "ok");
    const TranspileResult local = TranspileContext::global().transpile(
        qft(6), montreal_backend(), TranspileOptions{});
    EXPECT_EQ(got_qasm, to_qasm(local.circuit));

    // And the listener is really gone.
    EXPECT_THROW(ServeClient::connect_unix(options.unix_path),
                 std::runtime_error);
}

TEST(NasscServer, RegisteredBackendRotationInvalidatesEagerly)
{
    ServerOptions options;
    options.unix_path = socket_path("rot");
    NasscServer server(options);
    server.start();
    ServeClient client = ServeClient::connect_unix(options.unix_path);

    const std::string qasm = to_qasm(ghz(6));
    ServeResponse first =
        client.transpile_qasm(qasm, "ibmq_montreal", {});
    EXPECT_EQ(first.source, "transpiled");
    ServeResponse again =
        client.transpile_qasm(qasm, "ibmq_montreal", {});
    EXPECT_EQ(again.source, "cache_hit");

    // Rotate the calibration under the same name (new cache_key).
    Backend rotated = montreal_backend();
    rotated.calibration.error_cx.begin()->second *= 2.0;
    server.register_backend(std::make_shared<const Backend>(rotated));

    ServeResponse after =
        client.transpile_qasm(qasm, "ibmq_montreal", {});
    EXPECT_EQ(after.source, "transpiled"); // stale generation swept
    const ServiceStats stats = server.service().stats();
    EXPECT_GE(stats.evictions_invalidated, 1u);
    server.stop();
}

TEST(NasscServer, DeadlineExceededAndDegradedMapOntoTheWire)
{
    // One scheduler worker keeps the layout trials sequential, so the
    // failpoint-slowed first trial deterministically overruns the
    // request deadline (no sleep race).
    failpoint::disarm_all();
    ServerOptions options;
    options.unix_path = socket_path("deadline");
    options.service.scheduler = std::make_shared<Scheduler>(1);
    NasscServer server(options);
    server.start();
    ServeClient client = ServeClient::connect_unix(options.unix_path);
    const std::string qasm = to_qasm(ghz(5));

    {
        // Budget burned before any trial completes -> typed status.
        failpoint::ScopedFailpoint stall("service.transpile",
                                         "1*sleep(1500)");
        ServeRequest req;
        req.verb = "transpile";
        req.backend = "ibmq_montreal";
        req.options = {{"router", "sabre"}, {"deadline_ms", "1000"},
                       {"layout_trials", "1"}};
        req.qasm = qasm;
        const auto t0 = std::chrono::steady_clock::now();
        const ServeResponse resp = client.request(req);
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0);
        EXPECT_EQ(resp.status, "deadline_exceeded");
        EXPECT_FALSE(resp.error.empty());
        EXPECT_TRUE(resp.qasm.empty());
        EXPECT_LT(elapsed.count(), 2000); // settles within 2x deadline
    }
    {
        // First trial overruns, three are skipped -> a DEGRADED ok.
        failpoint::ScopedFailpoint slow("layout.trial", "1*sleep(1500)");
        ServeRequest req;
        req.verb = "transpile";
        req.backend = "ibmq_montreal";
        req.options = {{"router", "sabre"}, {"deadline_ms", "1000"},
                       {"layout_trials", "4"}};
        req.qasm = qasm;
        const auto t0 = std::chrono::steady_clock::now();
        const ServeResponse resp = client.request(req);
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0);
        EXPECT_EQ(resp.status, "ok");
        EXPECT_TRUE(resp.degraded);
        EXPECT_GE(resp.trials_consumed, 1);
        EXPECT_LT(resp.trials_consumed, 4);
        EXPECT_FALSE(resp.qasm.empty());
        EXPECT_LT(elapsed.count(), 2000);
    }
    // Deadline-free requests are untouched by any of this machinery:
    // same bytes as an in-process transpile.
    const ServeResponse plain =
        client.transpile_qasm(qasm, "ibmq_montreal", {{"router", "sabre"}});
    TranspileOptions lopts;
    lopts.router = RoutingAlgorithm::kSabre;
    const TranspileResult local = TranspileContext::global().transpile(
        from_qasm(qasm), montreal_backend(), lopts);
    EXPECT_EQ(plain.qasm, to_qasm(local.circuit));
    EXPECT_FALSE(plain.degraded);
    server.stop();
    failpoint::disarm_all();
}

TEST(NasscServer, QueueSaturationShedsWithRetryHintAndClientRecovers)
{
    // Pin the service's only worker so the first request stays queued;
    // with max_queued=1 the second DISTINCT request must be shed with
    // `status overloaded` + the configured retry hint, while the
    // accepted request completes once the worker frees up.
    failpoint::disarm_all();
    auto sched = std::make_shared<Scheduler>(1);
    std::atomic<bool> release{false};
    std::atomic<int> pinned{0};
    Scheduler::JobHandle hostage = sched->submit(1, [&](std::size_t, int) {
        pinned.fetch_add(1);
        while (!release.load())
            std::this_thread::yield();
    });
    ASSERT_TRUE(spin_until([&] { return pinned.load() == 1; }));

    ServerOptions options;
    options.unix_path = socket_path("shed");
    options.service.scheduler = sched;
    options.service.max_queued = 1;
    options.retry_after_ms = 75;
    NasscServer server(options);
    server.start();

    // Accepted request, on its own connection thread (it blocks).
    std::string accepted_status, accepted_qasm;
    std::thread first([&] {
        try {
            ServeClient c = ServeClient::connect_unix(options.unix_path);
            const ServeResponse resp = c.transpile_qasm(
                to_qasm(ghz(5)), "ibmq_montreal", {{"router", "sabre"}});
            accepted_status = resp.status;
            accepted_qasm = resp.qasm;
        } catch (const std::exception &e) {
            accepted_status = std::string("exception: ") + e.what();
        }
    });
    ASSERT_TRUE(
        spin_until([&] { return server.service().stats().misses >= 1; }));

    // Distinct request while the queue is full: shed, not queued.
    ServeClient shed_client = ServeClient::connect_unix(options.unix_path);
    ServeRequest req;
    req.verb = "transpile";
    req.backend = "ibmq_montreal";
    req.options = {{"router", "sabre"}};
    req.qasm = to_qasm(qft(5));
    const ServeResponse shed = shed_client.request(req);
    EXPECT_EQ(shed.status, "overloaded");
    EXPECT_EQ(shed.retry_after_ms, 75);
    EXPECT_EQ(server.service().stats().shed, 1u);

    // A retrying client parked on the same request succeeds once the
    // worker frees up — the overloaded responses are absorbed by its
    // backoff loop (which honors the 75 ms hint).
    std::string retried_status;
    std::thread retrier([&] {
        ServeEndpoint ep;
        ep.unix_path = options.unix_path;
        RetryPolicy policy;
        policy.max_attempts = 20;
        policy.base_backoff_ms = 5;
        policy.max_backoff_ms = 200;
        RetryingServeClient rc(ep, policy);
        try {
            retried_status = rc.request(req).status;
        } catch (const std::exception &e) {
            retried_status = std::string("exception: ") + e.what();
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release = true;
    hostage.wait();
    first.join();
    retrier.join();

    EXPECT_EQ(accepted_status, "ok");
    TranspileOptions lopts;
    lopts.router = RoutingAlgorithm::kSabre;
    const TranspileResult local = TranspileContext::global().transpile(
        ghz(5), montreal_backend(), lopts);
    EXPECT_EQ(accepted_qasm, to_qasm(local.circuit));
    EXPECT_EQ(retried_status, "ok");
    server.stop();
}

TEST(NasscServer, ConnectionCapShedsWithOneOverloadedFrame)
{
    ServerOptions options;
    options.unix_path = socket_path("conncap");
    options.max_connections = 1;
    options.retry_after_ms = 30;
    NasscServer server(options);
    server.start();

    // First connection occupies the one slot (ping proves it is live
    // and registered server-side).
    ServeClient keeper = ServeClient::connect_unix(options.unix_path);
    EXPECT_TRUE(keeper.ping());

    // Second connection: accepted then immediately shed.  The client
    // MAY see the courtesy overloaded frame or may lose the race to the
    // close (EPIPE/reset); the shed counter is the reliable signal.
    {
        ServeClient extra = ServeClient::connect_unix(options.unix_path);
        ASSERT_TRUE(spin_until([&] {
            return server.connections_shed() >= 1;
        }));
        try {
            std::string payload;
            if (read_frame(extra.fd(), payload)) {
                const ServeResponse resp = parse_response(payload);
                EXPECT_EQ(resp.status, "overloaded");
                EXPECT_EQ(resp.retry_after_ms, 30);
            }
        } catch (const std::exception &) {
            // Connection already torn down: equally acceptable.
        }
    }
    // The kept connection was never disturbed.
    EXPECT_TRUE(keeper.ping());

    // Dropping it frees the slot; a retrying client gets through even
    // if it first races the server's reaping of the dead connection.
    { ServeClient gone = std::move(keeper); } // close
    ServeEndpoint ep;
    ep.unix_path = options.unix_path;
    RetryPolicy policy;
    policy.max_attempts = 20;
    policy.base_backoff_ms = 5;
    policy.max_backoff_ms = 100;
    RetryingServeClient rc(ep, policy);
    EXPECT_TRUE(rc.ping());
    server.stop();
}

// --------------------------------------- service hardening (no sockets)

TEST(TranspileService, CacheByteBudgetIsNeverExceeded)
{
    // Measure one entry's cost with an unbounded service first.
    std::size_t one_entry = 0;
    {
        ServiceOptions unbounded;
        unbounded.cache_max_bytes = 0;
        TranspileService probe(unbounded);
        probe.submit(ghz(6), shared_montreal()).get();
        one_entry = probe.stats().cache_bytes;
        ASSERT_GT(one_entry, 0u);
    }

    // Budget for ~1.5 similar entries: the second insert must evict the
    // first (capacity eviction), never exceed the budget.
    ServiceOptions opts;
    opts.cache_max_bytes = one_entry + one_entry / 2;
    TranspileService service(opts);
    service.submit(ghz(6), shared_montreal()).get();
    EXPECT_LE(service.stats().cache_bytes, opts.cache_max_bytes);
    service.submit(ghz(7), shared_montreal()).get();
    const ServiceStats stats = service.stats();
    EXPECT_LE(stats.cache_bytes, opts.cache_max_bytes);
    EXPECT_EQ(stats.cache_size, 1u);
    EXPECT_GE(stats.evictions_capacity, 1u);
    EXPECT_EQ(stats.evictions_invalidated, 0u);

    // An entry larger than the WHOLE budget is served but never cached.
    ServiceOptions tiny;
    tiny.cache_max_bytes = 64; // smaller than any real entry
    TranspileService crumbs(tiny);
    TranspileTicket t = crumbs.submit(ghz(6), shared_montreal());
    EXPECT_FALSE(t.get()->circuit.empty());
    EXPECT_EQ(crumbs.stats().cache_size, 0u);
    EXPECT_EQ(crumbs.stats().cache_bytes, 0u);
    // ...and the next identical request is a miss, not a hit.
    TranspileTicket r = crumbs.submit(ghz(6), shared_montreal());
    r.get();
    EXPECT_EQ(crumbs.stats().cache_hits, 0u);
}

TEST(TranspileService, TtlExpiryInvalidatesLazilyAndViaPurge)
{
    TranspileService service;
    TranspileOptions opts;
    opts.cache_ttl_seconds = 0.05;

    service.submit(ghz(5), shared_montreal(), opts).get();
    EXPECT_EQ(service.stats().cache_size, 1u);
    std::this_thread::sleep_for(std::chrono::milliseconds(80));

    // Lazy path: the lookup notices the expiry, counts an invalidation
    // eviction, and recomputes.
    TranspileTicket t = service.submit(ghz(5), shared_montreal(), opts);
    t.get();
    EXPECT_EQ(t.source(), TicketSource::kScheduled);
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache_hits, 0u);
    EXPECT_EQ(stats.evictions_invalidated, 1u);

    // Sweep path: purge_expired() drops it without a lookup.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    EXPECT_EQ(service.purge_expired(), 1u);
    stats = service.stats();
    EXPECT_EQ(stats.cache_size, 0u);
    EXPECT_EQ(stats.evictions_invalidated, 2u);
    EXPECT_EQ(stats.evictions_capacity, 0u);

    // Within the TTL the entry is a normal hit.
    service.submit(ghz(5), shared_montreal(), opts).get();
    TranspileTicket hit = service.submit(ghz(5), shared_montreal(), opts);
    hit.get();
    EXPECT_EQ(hit.source(), TicketSource::kCacheHit);

    // default_ttl_seconds applies when the request sets none.
    ServiceOptions sopts;
    sopts.default_ttl_seconds = 0.05;
    TranspileService dservice(sopts);
    dservice.submit(ghz(5), shared_montreal()).get();
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    EXPECT_EQ(dservice.purge_expired(), 1u);
}

TEST(TranspileService, InvalidateBackendDropsByName)
{
    TranspileService service;
    service.submit(ghz(5), shared_montreal()).get();
    service.submit(qft(4), shared_montreal()).get();
    auto grid = std::make_shared<const Backend>(grid_backend());
    service.submit(ghz(5), grid).get();
    EXPECT_EQ(service.stats().cache_size, 3u);

    EXPECT_EQ(service.invalidate_backend("ibmq_montreal"), 2u);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache_size, 1u);
    EXPECT_EQ(stats.evictions_invalidated, 2u);
    EXPECT_EQ(service.invalidate_backend("ibmq_montreal"), 0u);

    // The grid entry survived and still hits.
    TranspileTicket t = service.submit(ghz(5), grid);
    t.get();
    EXPECT_EQ(t.source(), TicketSource::kCacheHit);
}

TEST(TranspileService, SubmitQasmSharesKeysWithObjectSubmits)
{
    TranspileService service;
    const QuantumCircuit qc = qft(4);
    const auto backend = shared_montreal();

    EXPECT_EQ(TranspileService::request_key(from_qasm(to_qasm(qc)),
                                            *backend, TranspileOptions{}),
              TranspileService::request_key(qc, *backend,
                                            TranspileOptions{}));

    TranspileTicket object = service.submit(qc, backend);
    object.get();
    TranspileTicket text = service.submit_qasm(to_qasm(qc), backend);
    text.get();
    EXPECT_EQ(text.source(), TicketSource::kCacheHit);
    EXPECT_EQ(object.key(), text.key());
    EXPECT_EQ(text.get_qasm(), to_qasm(object.get()->circuit));

    // Parse errors surface at submit time, before anything enqueues.
    const ServiceStats before = service.stats();
    EXPECT_THROW(service.submit_qasm("OPENQASM 2.0;\nnope;\n", backend),
                 std::runtime_error);
    EXPECT_EQ(service.stats().requests, before.requests);
}

TEST(TranspileService, TryCancelAbandonsQueuedRequests)
{
    // A 1-worker scheduler whose worker is pinned: the submitted
    // request stays unclaimed, so try_cancel must succeed and the
    // ticket must throw TranspileCancelled.
    auto sched = std::make_shared<Scheduler>(1);
    std::atomic<bool> release{false};
    std::atomic<int> pinned{0};
    Scheduler::JobHandle hostage = sched->submit(1, [&](std::size_t, int) {
        pinned.fetch_add(1);
        while (!release.load())
            std::this_thread::yield();
    });
    ASSERT_TRUE(spin_until([&] { return pinned.load() == 1; }));

    ServiceOptions opts;
    opts.scheduler = sched;
    TranspileService service(opts);

    TranspileTicket queued = service.submit(ghz(5), shared_montreal());
    EXPECT_EQ(queued.source(), TicketSource::kScheduled);
    EXPECT_TRUE(service.try_cancel(queued));
    EXPECT_THROW(queued.get(), TranspileCancelled);
    EXPECT_EQ(service.stats().cancelled, 1u);
    EXPECT_EQ(service.stats().transpiles_ok, 0u);

    // Second cancel of the same ticket: the request is gone.
    EXPECT_FALSE(service.try_cancel(queued));

    // A request someone coalesced onto is NOT cancellable.
    TranspileTicket owner = service.submit(qft(4), shared_montreal());
    TranspileTicket twin = service.submit(qft(4), shared_montreal());
    EXPECT_EQ(twin.source(), TicketSource::kCoalesced);
    EXPECT_FALSE(service.try_cancel(owner));
    EXPECT_FALSE(service.try_cancel(twin)); // only owners cancel

    release = true;
    hostage.wait();
    EXPECT_FALSE(owner.get()->circuit.empty()); // it ran normally
    EXPECT_EQ(service.stats().cancelled, 1u);

    // A completed request is not cancellable either.
    EXPECT_FALSE(service.try_cancel(owner));
}

TEST(TranspileService, CancelledKeyCanBeResubmitted)
{
    auto sched = std::make_shared<Scheduler>(1);
    std::atomic<bool> release{false};
    std::atomic<int> pinned{0};
    Scheduler::JobHandle hostage = sched->submit(1, [&](std::size_t, int) {
        pinned.fetch_add(1);
        while (!release.load())
            std::this_thread::yield();
    });
    ASSERT_TRUE(spin_until([&] { return pinned.load() == 1; }));

    ServiceOptions opts;
    opts.scheduler = sched;
    TranspileService service(opts);
    TranspileTicket first = service.submit(ghz(4), shared_montreal());
    ASSERT_TRUE(service.try_cancel(first));
    release = true;
    hostage.wait();

    // The key is free again: a fresh submit computes a result.
    TranspileTicket second = service.submit(ghz(4), shared_montreal());
    EXPECT_EQ(second.source(), TicketSource::kScheduled);
    EXPECT_FALSE(second.get()->circuit.empty());
}

} // namespace
} // namespace nassc