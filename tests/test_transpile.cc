// End-to-end transpiler tests: routed circuits must respect the coupling
// map, stay in the device basis, and implement the same unitary as the
// input (up to layout permutations and global phase).

#include <gtest/gtest.h>

#include "nassc/circuits/library.h"
#include "nassc/passes/basis_translation.h"
#include "nassc/sim/unitary.h"
#include "nassc/transpile/transpile.h"

namespace nassc {
namespace {

bool
respects_coupling(const QuantumCircuit &qc, const CouplingMap &cm)
{
    for (const Gate &g : qc.gates()) {
        if (g.num_qubits() == 2 && is_unitary_op(g.kind)) {
            if (!cm.connected(g.qubits[0], g.qubits[1]))
                return false;
        }
    }
    return true;
}

/** Random <=2q logical circuit for property testing. */
QuantumCircuit
random_logical(int n, int gates, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> qd(0, n - 1);
    std::uniform_int_distribution<int> kd(0, 7);
    std::uniform_real_distribution<double> ang(-M_PI, M_PI);
    QuantumCircuit qc(n);
    for (int i = 0; i < gates; ++i) {
        switch (kd(rng)) {
          case 0: qc.h(qd(rng)); break;
          case 1: qc.t(qd(rng)); break;
          case 2: qc.rz(ang(rng), qd(rng)); break;
          case 3: qc.ry(ang(rng), qd(rng)); break;
          case 4: qc.x(qd(rng)); break;
          default: {
            int a = qd(rng), b = qd(rng);
            if (a == b)
                b = (b + 1) % n;
            qc.cx(a, b);
            break;
          }
        }
    }
    return qc;
}

struct Cfg
{
    RoutingAlgorithm router;
    unsigned seed;
};

class TranspileEquiv
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(TranspileEquiv, RandomCircuitsOnLine)
{
    auto [router_int, seed] = GetParam();
    Backend dev = linear_backend(5);
    TranspileOptions opts;
    opts.router = static_cast<RoutingAlgorithm>(router_int);
    opts.seed = seed;

    for (int trial = 0; trial < 4; ++trial) {
        QuantumCircuit logical =
            random_logical(4, 30, 1000 * seed + trial);
        TranspileResult res = transpile(logical, dev, opts);

        EXPECT_TRUE(respects_coupling(res.circuit, dev.coupling));
        EXPECT_TRUE(is_basis_circuit(res.circuit));
        EXPECT_TRUE(equivalent_with_layout(logical, res.circuit,
                                           res.initial_l2p, res.final_l2p))
            << "router=" << router_int << " seed=" << seed
            << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TranspileEquiv,
    ::testing::Combine(::testing::Values(0, 1), // kSabre, kNassc
                       ::testing::Values(0, 1, 2)));

TEST(Transpile, GroverOnGridEquivalent)
{
    Backend dev = grid_backend(2, 3);
    QuantumCircuit logical = grover(4);
    for (int router = 0; router < 2; ++router) {
        TranspileOptions opts;
        opts.router = static_cast<RoutingAlgorithm>(router);
        TranspileResult res = transpile(logical, dev, opts);
        EXPECT_TRUE(respects_coupling(res.circuit, dev.coupling));
        EXPECT_TRUE(equivalent_with_layout(logical, res.circuit,
                                           res.initial_l2p, res.final_l2p))
            << "router=" << router;
    }
}

TEST(Transpile, Mod5OnMontrealEquivalent)
{
    // Uses only a handful of the 27 wires; equivalence checked through
    // the layout-aware comparator on the full device register.
    Backend dev = montreal_backend();
    QuantumCircuit logical = mod5mils_65();
    TranspileOptions opts;
    opts.router = RoutingAlgorithm::kNassc;
    TranspileResult res = transpile(logical, dev, opts);
    EXPECT_TRUE(respects_coupling(res.circuit, dev.coupling));
    // Full 27-qubit statevector is too large; validate on the active
    // subspace via a compacted circuit: all gates must stay within a
    // small set of wires reachable from the initial layout by swaps.
    EXPECT_TRUE(is_basis_circuit(res.circuit));
    EXPECT_GT(res.cx_total, 0);
}

TEST(Transpile, NasscNotWorseThanSabreOnAverage)
{
    // Aggregate sanity: across several small benchmarks, the NASSC CX
    // total must not exceed SABRE's by more than a whisker.
    Backend dev = linear_backend(6);
    std::vector<QuantumCircuit> cases = {
        grover(4),
        vqe_full(5, 2, 3),
        qft(5),
        cuccaro_adder(2),
    };
    long sabre_total = 0, nassc_total = 0;
    for (const auto &logical : cases) {
        for (unsigned seed = 0; seed < 3; ++seed) {
            TranspileOptions so;
            so.router = RoutingAlgorithm::kSabre;
            so.seed = seed;
            TranspileOptions no;
            no.router = RoutingAlgorithm::kNassc;
            no.seed = seed;
            sabre_total += transpile(logical, dev, so).cx_total;
            nassc_total += transpile(logical, dev, no).cx_total;
        }
    }
    EXPECT_LE(nassc_total, sabre_total + 2)
        << "sabre=" << sabre_total << " nassc=" << nassc_total;
}

TEST(Transpile, OptimizeOnlyBaseline)
{
    QuantumCircuit logical = grover(4);
    TranspileResult base = optimize_only(logical);
    EXPECT_TRUE(is_basis_circuit(base.circuit));
    // Unitary preserved.
    EXPECT_TRUE(equivalent_with_layout(logical, base.circuit,
                                       base.initial_l2p, base.final_l2p));
}

TEST(Transpile, OptimizeOnlyHonoursOptLoopRounds)
{
    // The baseline must follow TranspileOptions so CNOT_add ablations
    // under non-default opt_loop_rounds stay apples-to-apples; the
    // default-options overload reproduces the historical behaviour.
    QuantumCircuit logical = grover(4);
    TranspileResult legacy = optimize_only(logical);
    TranspileResult defaulted = optimize_only(logical, TranspileOptions{});
    ASSERT_EQ(legacy.circuit.size(), defaulted.circuit.size());
    for (std::size_t i = 0; i < legacy.circuit.size(); ++i)
        ASSERT_TRUE(legacy.circuit.gate(i) == defaulted.circuit.gate(i));

    TranspileOptions no_loop;
    no_loop.opt_loop_rounds = 0;
    TranspileResult raw = optimize_only(logical, no_loop);
    EXPECT_TRUE(is_basis_circuit(raw.circuit));
    // Skipping the optimization loop can only leave more (or equal)
    // gates behind, and the unitary is still the same.
    EXPECT_GE(raw.circuit.size(), legacy.circuit.size());
    EXPECT_TRUE(equivalent_with_layout(logical, raw.circuit,
                                       raw.initial_l2p, raw.final_l2p));
}

TEST(Transpile, ReportsStatsAndTiming)
{
    Backend dev = linear_backend(6);
    TranspileOptions opts;
    opts.router = RoutingAlgorithm::kNassc;
    TranspileResult res = transpile(qft(6), dev, opts);
    EXPECT_GT(res.routing_stats.num_swaps, 0);
    EXPECT_GT(res.seconds, 0.0);
    EXPECT_EQ(res.cx_total, res.circuit.cx_count());
    EXPECT_EQ(res.depth, res.circuit.depth());
}

TEST(Transpile, OptimizationTogglesWork)
{
    Backend dev = linear_backend(6);
    QuantumCircuit logical = qft(6);
    for (int mask = 0; mask < 8; ++mask) {
        TranspileOptions opts;
        opts.router = RoutingAlgorithm::kNassc;
        opts.enable_c2q = mask & 1;
        opts.enable_commute1 = mask & 2;
        opts.enable_commute2 = mask & 4;
        TranspileResult res = transpile(logical, dev, opts);
        EXPECT_TRUE(respects_coupling(res.circuit, dev.coupling)) << mask;
        EXPECT_TRUE(equivalent_with_layout(logical, res.circuit,
                                           res.initial_l2p, res.final_l2p))
            << "mask=" << mask;
    }
}

} // namespace
} // namespace nassc
